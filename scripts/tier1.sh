#!/usr/bin/env bash
# Tier-1 verification: the regular build + full test suite, lint, the
# MorphSan hazard-sanitizer smoke, then ThreadSanitizer and ASan+UBSan
# builds of the concurrency-sensitive suites (the gpu/core/dmr labels cover
# the worklists, the block-parallel Device, the conflict protocol, and the
# refinement drivers that exercise them under host_workers > 1).
#
# Usage: scripts/tier1.sh [build-dir] [tsan-build-dir] [asan-build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
TSAN_BUILD="${2:-build-tsan}"
ASAN_BUILD="${3:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier 1: regular build + full ctest =="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo "== tier 1: lint (clang-tidy; skips when absent) =="
scripts/lint.sh "$BUILD"

echo "== tier 1: telemetry smoke (bench report determinism) =="
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
"$BUILD"/bench/fig6_dmr_runtime --scale=64 --json="$SMOKE/a.json" > /dev/null
"$BUILD"/bench/fig6_dmr_runtime --scale=64 --json="$SMOKE/b.json" > /dev/null
"$BUILD"/tools/morph-report diff "$SMOKE/a.json" "$SMOKE/b.json"

echo "== tier 1: fault campaign (deterministic injection + recovery) =="
# A canned campaign must (a) recover to a successful run and (b) produce
# bit-identical modeled metrics for serial and block-parallel execution —
# armed devices pin block order precisely so campaigns replay.
FAULTS='launch@2x2,arena@3x2,barrier@1'
"$BUILD"/bench/fig6_dmr_runtime --scale=64 --faults="$FAULTS" \
    --host-workers=1 --json="$SMOKE/f1.json" > /dev/null
"$BUILD"/bench/fig6_dmr_runtime --scale=64 --faults="$FAULTS" \
    --host-workers=4 --json="$SMOKE/f4.json" > /dev/null
"$BUILD"/tools/morph-report diff "$SMOKE/f1.json" "$SMOKE/f4.json"
"$BUILD"/bench/fig11_mst --scale=16 --faults="$FAULTS" \
    --host-workers=1 --json="$SMOKE/m1.json" > /dev/null
"$BUILD"/bench/fig11_mst --scale=16 --faults="$FAULTS" \
    --host-workers=4 --json="$SMOKE/m4.json" > /dev/null
"$BUILD"/tools/morph-report diff "$SMOKE/m1.json" "$SMOKE/m4.json"
# A malformed spec must fail loudly with the parse exit code (2).
if "$BUILD"/bench/fig11_mst --faults=bogus > /dev/null 2>&1; then
  echo "ERROR: malformed --faults spec was accepted" >&2
  exit 1
fi

echo "== tier 1: sharded worklist (cross-worker byte-identity) =="
# The sharded fast path's contract: answers, modeled stats, and telemetry
# traces are byte-identical for any --host-workers value (owner-only pops,
# block-order publication, host-side rebalance — DESIGN.md 6.1).
for spec in "fig6_dmr_runtime --scale=64" "fig9_sp --scale=400" "fig10_pta" \
            "fig11_mst --scale=16"; do
  set -- $spec
  name="$1"; shift
  "$BUILD/bench/$name" "$@" --worklist-mode=sharded --host-workers=1 \
      --json="$SMOKE/s1.json" > /dev/null
  "$BUILD/bench/$name" "$@" --worklist-mode=sharded --host-workers=4 \
      --json="$SMOKE/s4.json" > /dev/null
  "$BUILD"/tools/morph-report diff "$SMOKE/s1.json" "$SMOKE/s4.json"
done
"$BUILD"/bench/fig6_dmr_runtime --scale=64 --worklist-mode=sharded \
    --host-workers=1 --trace="$SMOKE/t1.json" > /dev/null 2>&1
"$BUILD"/bench/fig6_dmr_runtime --scale=64 --worklist-mode=sharded \
    --host-workers=4 --trace="$SMOKE/t4.json" > /dev/null 2>&1
cmp "$SMOKE/t1.json" "$SMOKE/t4.json"
# SP joined the byte-identity gate when its sweep moved to snapshot reads
# with a block-ordered max reduction: even the telemetry traces must match.
"$BUILD"/bench/fig9_sp --scale=400 --worklist-mode=sharded \
    --host-workers=1 --trace="$SMOKE/sp1.json" > /dev/null 2>&1
"$BUILD"/bench/fig9_sp --scale=400 --worklist-mode=sharded \
    --host-workers=4 --trace="$SMOKE/sp4.json" > /dev/null 2>&1
cmp "$SMOKE/sp1.json" "$SMOKE/sp4.json"
# A bad mode must fail loudly with the parse exit code (2).
if "$BUILD"/bench/fig11_mst --worklist-mode=bogus > /dev/null 2>&1; then
  echo "ERROR: malformed --worklist-mode was accepted" >&2
  exit 1
fi

echo "== tier 1: hazard sanitizer (MorphSan clean paths + byte-identity) =="
# Every app must be hazard-clean under --sanitize=all at the default bench
# scales (exit 4 = findings), and attaching the sanitizer must not perturb
# a single modeled metric: the JSON reports diff clean against unsanitized
# runs (wall-clock metrics carry the diff tool's default tolerance).
for spec in "fig6_dmr_runtime --scale=64" "fig9_sp --scale=400" "fig10_pta" \
            "fig10_pta --worklist-mode=sharded" "fig11_mst --scale=16"; do
  set -- $spec
  name="$1"; shift
  "$BUILD/bench/$name" "$@" --json="$SMOKE/plain.json" > /dev/null
  "$BUILD/bench/$name" "$@" --sanitize=all --json="$SMOKE/san.json" > /dev/null
  "$BUILD"/tools/morph-report diff "$SMOKE/plain.json" "$SMOKE/san.json"
done
# A bad class list must fail loudly with the parse exit code (2).
if "$BUILD"/bench/fig11_mst --sanitize=bogus > /dev/null 2>&1; then
  echo "ERROR: malformed --sanitize spec was accepted" >&2
  exit 1
fi

echo "== tier 1: job server (daemon smoke + serving determinism) =="
# The serving contract (docs/SERVER.md): for a fixed arrival order, per-job
# results and modeled serving stats are byte-identical across pool sizes and
# --host-workers, and identical to running the same admitted jobs one-shot.
SERVE_SOCK="$SMOKE/served.sock"
"$BUILD"/tools/morph-served --socket="$SERVE_SOCK" --pool=2 > "$SMOKE/served.log" 2>&1 &
SERVED_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$SMOKE/served.log" 2>/dev/null && break
  sleep 0.1
done
grep -q "listening on" "$SMOKE/served.log" || {
  echo "ERROR: morph-served failed to start" >&2; cat "$SMOKE/served.log" >&2
  exit 1
}
# Mixed batch through the daemon (the client sends shutdown when done).
"$BUILD"/bench/serve_loadtest --connect="$SERVE_SOCK" --jobs=48 --clients=3 \
    --shutdown --jobs-json="$SMOKE/lt_daemon.json" > /dev/null
wait "$SERVED_PID"
# One-shot equivalence: same arrival order, no server — byte-identical.
"$BUILD"/bench/serve_loadtest --oneshot --jobs=48 --clients=3 \
    --jobs-json="$SMOKE/lt_oneshot.json" > /dev/null
cmp "$SMOKE/lt_daemon.json" "$SMOKE/lt_oneshot.json"
# Replay at two pool sizes (embedded server): per-job stats byte-identical.
"$BUILD"/bench/serve_loadtest --jobs=64 --clients=4 --pool=1 \
    --socket="$SMOKE/lt1.sock" --jobs-json="$SMOKE/lt_p1.json" > /dev/null
"$BUILD"/bench/serve_loadtest --jobs=64 --clients=4 --pool=3 \
    --socket="$SMOKE/lt3.sock" --jobs-json="$SMOKE/lt_p3.json" > /dev/null
cmp "$SMOKE/lt_p1.json" "$SMOKE/lt_p3.json"
# And across host workers, including the modeled serving report.
"$BUILD"/bench/serve_loadtest --jobs=64 --clients=4 --pool=2 --host-workers=4 \
    --socket="$SMOKE/lt4.sock" --jobs-json="$SMOKE/lt_hw4.json" \
    --json="$SMOKE/lt_hw4_rep.json" > /dev/null
"$BUILD"/bench/serve_loadtest --jobs=64 --clients=4 --pool=2 --host-workers=1 \
    --socket="$SMOKE/lt1b.sock" --jobs-json="$SMOKE/lt_hw1.json" \
    --json="$SMOKE/lt_hw1_rep.json" > /dev/null
cmp "$SMOKE/lt_hw1.json" "$SMOKE/lt_hw4.json"
"$BUILD"/tools/morph-report diff "$SMOKE/lt_hw1_rep.json" "$SMOKE/lt_hw4_rep.json"

echo "== tier 1: durability (crash campaign + graceful drain) =="
# Crash campaign (docs/SERVER.md, "Durability & operations"): SIGKILL the
# forked server after N replies, restart it on the same journal, reconnect
# and resubmit what went unanswered. At every kill point the merged per-job
# stats must be byte-identical to the uninterrupted one-shot run — recovery
# replays the journaled arrival sequence, and the arrival sequence decides
# everything else.
for kill_after in 3 12 40; do
  rm -f "$SMOKE/lt_crash.wal"
  "$BUILD"/bench/serve_loadtest --jobs=48 --clients=3 \
      --socket="$SMOKE/lt_crash.sock" --journal="$SMOKE/lt_crash.wal" \
      --crash-after="$kill_after" \
      --jobs-json="$SMOKE/lt_crash_$kill_after.json" > /dev/null
  cmp "$SMOKE/lt_oneshot.json" "$SMOKE/lt_crash_$kill_after.json"
done
# Graceful drain: SIGTERM finishes every admitted job, resets the journal
# to its 8-byte magic header, and exits 0 (set -e enforces the exit code).
"$BUILD"/tools/morph-served --socket="$SMOKE/drain.sock" \
    --journal="$SMOKE/drain.wal" > "$SMOKE/drain.log" 2>&1 &
DRAIN_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$SMOKE/drain.log" 2>/dev/null && break
  sleep 0.1
done
grep -q "listening on" "$SMOKE/drain.log" || {
  echo "ERROR: morph-served (drain check) failed to start" >&2
  cat "$SMOKE/drain.log" >&2
  exit 1
}
"$BUILD"/bench/serve_loadtest --connect="$SMOKE/drain.sock" --jobs=8 \
    --clients=2 > /dev/null
kill -TERM "$DRAIN_PID"
wait "$DRAIN_PID"
grep -q "drained" "$SMOKE/drain.log" || {
  echo "ERROR: SIGTERM did not drain gracefully" >&2
  cat "$SMOKE/drain.log" >&2
  exit 1
}
if [[ "$(stat -c%s "$SMOKE/drain.wal")" -ne 8 ]]; then
  echo "ERROR: drain left a non-empty journal behind" >&2
  exit 1
fi

echo "== tier 1: incremental recompute (O(changes) + session durability) =="
# incremental_bench self-gates (exit 1 on failure): digest streams for the
# same update sequence are byte-identical across device shapes and worklist
# modes, the final state matches a from-scratch solve, and batch cost scales
# with the change set, not the graph (>= 100k-element inputs at the default
# scale — docs/SERVER.md, "Sessions").
"$BUILD"/bench/incremental_bench > /dev/null
# session_crash self-gates too: SIGKILL a session-serving child at several
# kill points (including mid-checkpoint-compaction), restart it on the same
# journal, and require every session reply — digests, outputs, exec-stats
# deltas, parked replays — byte-identical to an uninterrupted journal-less
# run.
"$BUILD"/bench/session_crash --socket="$SMOKE/sc.sock" \
    --journal="$SMOKE/sc.wal" > /dev/null

echo "== tier 1: perf (bench snapshot vs committed baseline) =="
# Full CI-sized bench sweep diffed against the committed snapshot. Modeled
# metrics are deterministic, so any drift is a real change: the default gate
# is tight, with a little slack on the aggregate cycle counts so a
# legitimately-moved metric points at the PR that moved it (regenerate the
# baseline with scripts/bench_snapshot.sh when the move is intentional).
BASELINE="BENCH_2026-08-09.json"
if [[ -f "$BASELINE" ]]; then
  scripts/bench_snapshot.sh "$BUILD" "$SMOKE/snapshot.json" > /dev/null
  "$BUILD"/tools/morph-report diff "$BASELINE" "$SMOKE/snapshot.json" \
      --threshold=0.02 \
      --threshold-modeled_cycles=0.05 \
      --threshold-model_ms=0.05 \
      --threshold-total_work=0.05 \
      --threshold-warp_steps=0.05
else
  echo "baseline $BASELINE missing; skipping perf gate" >&2
fi

if echo 'int main(){return 0;}' | g++ -x c++ -fsanitize=thread - -o /dev/null 2>/dev/null; then
  echo "== tier 1: TSan build + ctest -L 'gpu|core|dmr' =="
  cmake -B "$TSAN_BUILD" -S . -DMORPH_TSAN=ON
  cmake --build "$TSAN_BUILD" -j "$JOBS" --target test_gpu test_core test_dmr test_resilience test_sancheck test_sp test_pta test_serve test_incremental
  ctest --test-dir "$TSAN_BUILD" --output-on-failure -j "$JOBS" -L 'gpu|core|dmr'
else
  echo "== tier 1: libtsan not available; skipping TSan pass =="
fi

if echo 'int main(){return 0;}' | g++ -x c++ -fsanitize=address,undefined - -o /dev/null 2>/dev/null; then
  echo "== tier 1: ASan+UBSan build (simulator suite + one bench) =="
  cmake -B "$ASAN_BUILD" -S . -DMORPH_ASAN=ON -DMORPH_UBSAN=ON
  cmake --build "$ASAN_BUILD" -j "$JOBS" --target test_gpu test_sancheck fig6_dmr_runtime
  ctest --test-dir "$ASAN_BUILD" --output-on-failure -j "$JOBS" -R 'test_gpu|Sanitize|Seeded|CleanApps|Reporting'
  "$ASAN_BUILD"/bench/fig6_dmr_runtime --scale=64 --sanitize=all > /dev/null
else
  echo "== tier 1: libasan/libubsan not available; skipping ASan+UBSan pass =="
fi

echo "tier 1 OK"
