#!/usr/bin/env bash
# Runs every bench at fast (CI-sized) settings with --json and consolidates
# the reports into BENCH_<date>.json via `morph-report merge`. Check the
# output file in to track the modeled-performance trajectory of the repo;
# `morph-report diff BENCH_old.json BENCH_new.json` gates regressions.
#
# Usage: scripts/bench_snapshot.sh [build-dir] [out.json]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
OUT="${2:-BENCH_$(date +%F).json}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# bench -> fast arguments (micro_primitives is google-benchmark and has its
# own JSON output; it is not part of the snapshot).
benches=(
  "fig2_parallelism --scale=16"
  "fig6_dmr_runtime --scale=64"
  "fig7_dmr_speedup --scale=64"
  "fig8_dmr_ablation --scale=400"
  "fig9_sp --scale=400"
  "fig10_pta"
  "fig11_mst --scale=256"
  "ablate_conflict --scale=8"
  "ablate_memory --triangles=10000 --vars=2000 --cons=2500"
  "ablate_pushpull"
  "ablate_worklist --triangles=10000"
  "incremental_bench"
  "serve_loadtest --jobs=48 --clients=3 --pool=2 --deadline-every=7 --deadline-ms=0.5 --socket=/tmp/morph_snapshot_loadtest.sock"
  "session_crash --socket=/tmp/morph_snapshot_session.sock --journal=/tmp/morph_snapshot_session.wal"
)

reports=()
for spec in "${benches[@]}"; do
  set -- $spec
  name="$1"; shift
  echo "== $name $* =="
  # Fail loudly, naming the bench: a partial snapshot silently narrows the
  # perf gate, so a bench that dies must kill the whole run.
  status=0
  "$BUILD/bench/$name" "$@" --json="$TMP/$name.json" > /dev/null || status=$?
  if [[ "$status" -ne 0 ]]; then
    echo "ERROR: bench '$name' exited with status $status; no snapshot written" >&2
    exit "$status"
  fi
  if [[ ! -s "$TMP/$name.json" ]]; then
    echo "ERROR: bench '$name' produced no JSON report; no snapshot written" >&2
    exit 1
  fi
  reports+=("$TMP/$name.json")
done

"$BUILD"/tools/morph-report merge "$OUT" "${reports[@]}"
echo "snapshot written to $OUT"
