#!/usr/bin/env bash
# clang-tidy over the library and tool sources, driven by the compilation
# database (CMAKE_EXPORT_COMPILE_COMMANDS is always on; see CMakeLists.txt).
# The check profile lives in .clang-tidy.
#
# Usage: scripts/lint.sh [build-dir] [source-glob...]
#
# Exits 0 and prints a notice when clang-tidy is not installed, so the lint
# stage degrades gracefully on toolchains that only ship gcc (the tier-1
# runner treats "linter absent" as "stage skipped", not as a failure).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
shift || true

TIDY="$(command -v clang-tidy || true)"
if [[ -z "$TIDY" ]]; then
  echo "lint: clang-tidy not found on PATH; skipping (install clang-tidy to enable)"
  exit 0
fi

if [[ ! -f "$BUILD/compile_commands.json" ]]; then
  echo "lint: $BUILD/compile_commands.json missing; configure first:" >&2
  echo "  cmake -B $BUILD -S ." >&2
  exit 1
fi

# Default scope: every library/tool translation unit. Tests and benches are
# included when present in the database; third-party code never is.
if [[ $# -gt 0 ]]; then
  FILES=("$@")
else
  mapfile -t FILES < <(find src tools bench -name '*.cpp' | sort)
fi

echo "lint: clang-tidy ($("$TIDY" --version | grep -o 'version [0-9.]*')) over ${#FILES[@]} files"
"$TIDY" -p "$BUILD" --quiet "${FILES[@]}"
echo "lint OK"
