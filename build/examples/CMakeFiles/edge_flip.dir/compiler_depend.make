# Empty compiler generated dependencies file for edge_flip.
# This may be replaced when dependencies are built.
