file(REMOVE_RECURSE
  "CMakeFiles/edge_flip.dir/edge_flip.cpp.o"
  "CMakeFiles/edge_flip.dir/edge_flip.cpp.o.d"
  "edge_flip"
  "edge_flip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_flip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
