# Empty compiler generated dependencies file for mst_demo.
# This may be replaced when dependencies are built.
