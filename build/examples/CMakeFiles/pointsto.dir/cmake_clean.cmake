file(REMOVE_RECURSE
  "CMakeFiles/pointsto.dir/pointsto.cpp.o"
  "CMakeFiles/pointsto.dir/pointsto.cpp.o.d"
  "pointsto"
  "pointsto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointsto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
