# Empty compiler generated dependencies file for morph_support.
# This may be replaced when dependencies are built.
