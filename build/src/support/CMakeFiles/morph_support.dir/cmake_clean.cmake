file(REMOVE_RECURSE
  "CMakeFiles/morph_support.dir/cli.cpp.o"
  "CMakeFiles/morph_support.dir/cli.cpp.o.d"
  "CMakeFiles/morph_support.dir/stats.cpp.o"
  "CMakeFiles/morph_support.dir/stats.cpp.o.d"
  "CMakeFiles/morph_support.dir/table.cpp.o"
  "CMakeFiles/morph_support.dir/table.cpp.o.d"
  "libmorph_support.a"
  "libmorph_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
