file(REMOVE_RECURSE
  "libmorph_support.a"
)
