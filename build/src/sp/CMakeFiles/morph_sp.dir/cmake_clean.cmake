file(REMOVE_RECURSE
  "CMakeFiles/morph_sp.dir/cnf.cpp.o"
  "CMakeFiles/morph_sp.dir/cnf.cpp.o.d"
  "CMakeFiles/morph_sp.dir/factor_graph.cpp.o"
  "CMakeFiles/morph_sp.dir/factor_graph.cpp.o.d"
  "CMakeFiles/morph_sp.dir/survey.cpp.o"
  "CMakeFiles/morph_sp.dir/survey.cpp.o.d"
  "libmorph_sp.a"
  "libmorph_sp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
