# Empty compiler generated dependencies file for morph_sp.
# This may be replaced when dependencies are built.
