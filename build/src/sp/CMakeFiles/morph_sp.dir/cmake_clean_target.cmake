file(REMOVE_RECURSE
  "libmorph_sp.a"
)
