file(REMOVE_RECURSE
  "CMakeFiles/morph_graph.dir/csr.cpp.o"
  "CMakeFiles/morph_graph.dir/csr.cpp.o.d"
  "CMakeFiles/morph_graph.dir/generators.cpp.o"
  "CMakeFiles/morph_graph.dir/generators.cpp.o.d"
  "CMakeFiles/morph_graph.dir/io.cpp.o"
  "CMakeFiles/morph_graph.dir/io.cpp.o.d"
  "CMakeFiles/morph_graph.dir/layout.cpp.o"
  "CMakeFiles/morph_graph.dir/layout.cpp.o.d"
  "CMakeFiles/morph_graph.dir/scc.cpp.o"
  "CMakeFiles/morph_graph.dir/scc.cpp.o.d"
  "libmorph_graph.a"
  "libmorph_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
