file(REMOVE_RECURSE
  "libmorph_graph.a"
)
