# Empty compiler generated dependencies file for morph_graph.
# This may be replaced when dependencies are built.
