file(REMOVE_RECURSE
  "CMakeFiles/morph_dmr.dir/cavity.cpp.o"
  "CMakeFiles/morph_dmr.dir/cavity.cpp.o.d"
  "CMakeFiles/morph_dmr.dir/delaunay.cpp.o"
  "CMakeFiles/morph_dmr.dir/delaunay.cpp.o.d"
  "CMakeFiles/morph_dmr.dir/flip.cpp.o"
  "CMakeFiles/morph_dmr.dir/flip.cpp.o.d"
  "CMakeFiles/morph_dmr.dir/mesh.cpp.o"
  "CMakeFiles/morph_dmr.dir/mesh.cpp.o.d"
  "CMakeFiles/morph_dmr.dir/mesh_io.cpp.o"
  "CMakeFiles/morph_dmr.dir/mesh_io.cpp.o.d"
  "CMakeFiles/morph_dmr.dir/quality.cpp.o"
  "CMakeFiles/morph_dmr.dir/quality.cpp.o.d"
  "CMakeFiles/morph_dmr.dir/refine.cpp.o"
  "CMakeFiles/morph_dmr.dir/refine.cpp.o.d"
  "libmorph_dmr.a"
  "libmorph_dmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_dmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
