
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dmr/cavity.cpp" "src/dmr/CMakeFiles/morph_dmr.dir/cavity.cpp.o" "gcc" "src/dmr/CMakeFiles/morph_dmr.dir/cavity.cpp.o.d"
  "/root/repo/src/dmr/delaunay.cpp" "src/dmr/CMakeFiles/morph_dmr.dir/delaunay.cpp.o" "gcc" "src/dmr/CMakeFiles/morph_dmr.dir/delaunay.cpp.o.d"
  "/root/repo/src/dmr/flip.cpp" "src/dmr/CMakeFiles/morph_dmr.dir/flip.cpp.o" "gcc" "src/dmr/CMakeFiles/morph_dmr.dir/flip.cpp.o.d"
  "/root/repo/src/dmr/mesh.cpp" "src/dmr/CMakeFiles/morph_dmr.dir/mesh.cpp.o" "gcc" "src/dmr/CMakeFiles/morph_dmr.dir/mesh.cpp.o.d"
  "/root/repo/src/dmr/mesh_io.cpp" "src/dmr/CMakeFiles/morph_dmr.dir/mesh_io.cpp.o" "gcc" "src/dmr/CMakeFiles/morph_dmr.dir/mesh_io.cpp.o.d"
  "/root/repo/src/dmr/quality.cpp" "src/dmr/CMakeFiles/morph_dmr.dir/quality.cpp.o" "gcc" "src/dmr/CMakeFiles/morph_dmr.dir/quality.cpp.o.d"
  "/root/repo/src/dmr/refine.cpp" "src/dmr/CMakeFiles/morph_dmr.dir/refine.cpp.o" "gcc" "src/dmr/CMakeFiles/morph_dmr.dir/refine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/morph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/morph_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/morph_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
