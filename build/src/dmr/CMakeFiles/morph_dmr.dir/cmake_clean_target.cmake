file(REMOVE_RECURSE
  "libmorph_dmr.a"
)
