# Empty compiler generated dependencies file for morph_dmr.
# This may be replaced when dependencies are built.
