file(REMOVE_RECURSE
  "CMakeFiles/morph_gpu.dir/device.cpp.o"
  "CMakeFiles/morph_gpu.dir/device.cpp.o.d"
  "CMakeFiles/morph_gpu.dir/thread_pool.cpp.o"
  "CMakeFiles/morph_gpu.dir/thread_pool.cpp.o.d"
  "libmorph_gpu.a"
  "libmorph_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
