# Empty dependencies file for morph_gpu.
# This may be replaced when dependencies are built.
