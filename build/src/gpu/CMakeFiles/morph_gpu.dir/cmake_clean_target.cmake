file(REMOVE_RECURSE
  "libmorph_gpu.a"
)
