file(REMOVE_RECURSE
  "CMakeFiles/morph_core.dir/conflict.cpp.o"
  "CMakeFiles/morph_core.dir/conflict.cpp.o.d"
  "libmorph_core.a"
  "libmorph_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
