# Empty dependencies file for morph_core.
# This may be replaced when dependencies are built.
