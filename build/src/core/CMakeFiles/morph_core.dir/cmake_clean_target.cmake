file(REMOVE_RECURSE
  "libmorph_core.a"
)
