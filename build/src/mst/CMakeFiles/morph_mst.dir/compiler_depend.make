# Empty compiler generated dependencies file for morph_mst.
# This may be replaced when dependencies are built.
