file(REMOVE_RECURSE
  "libmorph_mst.a"
)
