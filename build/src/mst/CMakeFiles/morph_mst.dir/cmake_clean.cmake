file(REMOVE_RECURSE
  "CMakeFiles/morph_mst.dir/cpu_boruvka.cpp.o"
  "CMakeFiles/morph_mst.dir/cpu_boruvka.cpp.o.d"
  "CMakeFiles/morph_mst.dir/gpu_boruvka.cpp.o"
  "CMakeFiles/morph_mst.dir/gpu_boruvka.cpp.o.d"
  "CMakeFiles/morph_mst.dir/kruskal.cpp.o"
  "CMakeFiles/morph_mst.dir/kruskal.cpp.o.d"
  "CMakeFiles/morph_mst.dir/verify.cpp.o"
  "CMakeFiles/morph_mst.dir/verify.cpp.o.d"
  "libmorph_mst.a"
  "libmorph_mst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
