# Empty dependencies file for morph_pta.
# This may be replaced when dependencies are built.
