file(REMOVE_RECURSE
  "CMakeFiles/morph_pta.dir/constraints.cpp.o"
  "CMakeFiles/morph_pta.dir/constraints.cpp.o.d"
  "CMakeFiles/morph_pta.dir/cycle_elim.cpp.o"
  "CMakeFiles/morph_pta.dir/cycle_elim.cpp.o.d"
  "CMakeFiles/morph_pta.dir/gpu.cpp.o"
  "CMakeFiles/morph_pta.dir/gpu.cpp.o.d"
  "CMakeFiles/morph_pta.dir/serial.cpp.o"
  "CMakeFiles/morph_pta.dir/serial.cpp.o.d"
  "libmorph_pta.a"
  "libmorph_pta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_pta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
