file(REMOVE_RECURSE
  "libmorph_pta.a"
)
