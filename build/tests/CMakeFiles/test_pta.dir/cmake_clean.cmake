file(REMOVE_RECURSE
  "CMakeFiles/test_pta.dir/test_pta.cpp.o"
  "CMakeFiles/test_pta.dir/test_pta.cpp.o.d"
  "test_pta"
  "test_pta.pdb"
  "test_pta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
