file(REMOVE_RECURSE
  "CMakeFiles/test_dmr.dir/test_dmr.cpp.o"
  "CMakeFiles/test_dmr.dir/test_dmr.cpp.o.d"
  "test_dmr"
  "test_dmr.pdb"
  "test_dmr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
