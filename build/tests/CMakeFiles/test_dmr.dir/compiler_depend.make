# Empty compiler generated dependencies file for test_dmr.
# This may be replaced when dependencies are built.
