file(REMOVE_RECURSE
  "CMakeFiles/fig6_dmr_runtime.dir/fig6_dmr_runtime.cpp.o"
  "CMakeFiles/fig6_dmr_runtime.dir/fig6_dmr_runtime.cpp.o.d"
  "fig6_dmr_runtime"
  "fig6_dmr_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dmr_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
