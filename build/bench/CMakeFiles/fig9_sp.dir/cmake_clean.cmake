file(REMOVE_RECURSE
  "CMakeFiles/fig9_sp.dir/fig9_sp.cpp.o"
  "CMakeFiles/fig9_sp.dir/fig9_sp.cpp.o.d"
  "fig9_sp"
  "fig9_sp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
