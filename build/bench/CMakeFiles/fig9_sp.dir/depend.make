# Empty dependencies file for fig9_sp.
# This may be replaced when dependencies are built.
