# Empty dependencies file for fig11_mst.
# This may be replaced when dependencies are built.
