file(REMOVE_RECURSE
  "CMakeFiles/fig11_mst.dir/fig11_mst.cpp.o"
  "CMakeFiles/fig11_mst.dir/fig11_mst.cpp.o.d"
  "fig11_mst"
  "fig11_mst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
