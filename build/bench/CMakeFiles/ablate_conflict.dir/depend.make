# Empty dependencies file for ablate_conflict.
# This may be replaced when dependencies are built.
