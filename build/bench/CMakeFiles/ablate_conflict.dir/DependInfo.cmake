
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablate_conflict.cpp" "bench/CMakeFiles/ablate_conflict.dir/ablate_conflict.cpp.o" "gcc" "bench/CMakeFiles/ablate_conflict.dir/ablate_conflict.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dmr/CMakeFiles/morph_dmr.dir/DependInfo.cmake"
  "/root/repo/build/src/sp/CMakeFiles/morph_sp.dir/DependInfo.cmake"
  "/root/repo/build/src/pta/CMakeFiles/morph_pta.dir/DependInfo.cmake"
  "/root/repo/build/src/mst/CMakeFiles/morph_mst.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/morph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/morph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/morph_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/morph_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
