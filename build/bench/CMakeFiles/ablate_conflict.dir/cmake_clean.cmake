file(REMOVE_RECURSE
  "CMakeFiles/ablate_conflict.dir/ablate_conflict.cpp.o"
  "CMakeFiles/ablate_conflict.dir/ablate_conflict.cpp.o.d"
  "ablate_conflict"
  "ablate_conflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
