file(REMOVE_RECURSE
  "CMakeFiles/ablate_worklist.dir/ablate_worklist.cpp.o"
  "CMakeFiles/ablate_worklist.dir/ablate_worklist.cpp.o.d"
  "ablate_worklist"
  "ablate_worklist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_worklist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
