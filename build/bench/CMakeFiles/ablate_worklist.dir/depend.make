# Empty dependencies file for ablate_worklist.
# This may be replaced when dependencies are built.
