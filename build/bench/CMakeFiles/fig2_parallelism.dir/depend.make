# Empty dependencies file for fig2_parallelism.
# This may be replaced when dependencies are built.
