# Empty compiler generated dependencies file for ablate_memory.
# This may be replaced when dependencies are built.
