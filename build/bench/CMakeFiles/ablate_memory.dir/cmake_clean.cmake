file(REMOVE_RECURSE
  "CMakeFiles/ablate_memory.dir/ablate_memory.cpp.o"
  "CMakeFiles/ablate_memory.dir/ablate_memory.cpp.o.d"
  "ablate_memory"
  "ablate_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
