# Empty compiler generated dependencies file for fig10_pta.
# This may be replaced when dependencies are built.
