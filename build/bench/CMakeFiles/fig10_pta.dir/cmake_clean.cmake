file(REMOVE_RECURSE
  "CMakeFiles/fig10_pta.dir/fig10_pta.cpp.o"
  "CMakeFiles/fig10_pta.dir/fig10_pta.cpp.o.d"
  "fig10_pta"
  "fig10_pta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
