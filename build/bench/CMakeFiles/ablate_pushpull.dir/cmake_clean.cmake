file(REMOVE_RECURSE
  "CMakeFiles/ablate_pushpull.dir/ablate_pushpull.cpp.o"
  "CMakeFiles/ablate_pushpull.dir/ablate_pushpull.cpp.o.d"
  "ablate_pushpull"
  "ablate_pushpull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_pushpull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
