# Empty compiler generated dependencies file for ablate_pushpull.
# This may be replaced when dependencies are built.
