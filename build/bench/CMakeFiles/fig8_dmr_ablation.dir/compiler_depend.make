# Empty compiler generated dependencies file for fig8_dmr_ablation.
# This may be replaced when dependencies are built.
