// Compiler points-to analysis (the paper's PTA application): builds the
// constraint set of a small C program by hand — the paper's Figure 5 — and
// analyzes a larger synthetic program on the simulated GPU, comparing the
// pull-based solution with the serial reference.
//
//   ./build/examples/pointsto --vars=6126 --cons=6768
#include <iostream>

#include "example_common.hpp"
#include "pta/solve.hpp"
#include "support/cli.hpp"

int run(int argc, char** argv) {
  using namespace morph;
  examples::ExampleCli cli(argc, argv, {"vars", "cons"});
  CliArgs& args = cli.args();

  // --- the paper's Figure 5 program ---
  //   a = &x; b = &y; p = &a; *p = b; c = a;
  enum : pta::Var { A, B, C, P, X, Y, kVars };
  pta::ConstraintSet fig5;
  fig5.num_vars = kVars;
  fig5.constraints = {
      {pta::ConstraintKind::kAddressOf, A, X},
      {pta::ConstraintKind::kAddressOf, B, Y},
      {pta::ConstraintKind::kAddressOf, P, A},
      {pta::ConstraintKind::kStore, P, B},
      {pta::ConstraintKind::kCopy, C, A},
  };
  gpu::Device device(gpu::DeviceConfig{.host_workers = host_workers_arg(args),
                                       .faults = cli.faults()});
  const pta::PtsSets pts = pta::solve_gpu(fig5, device);
  const char* names = "abcpxy";
  std::cout << "paper Fig. 5 fixed point:\n";
  for (pta::Var v = 0; v < kVars; ++v) {
    std::cout << "  pts(" << names[v] << ") = {";
    for (std::size_t i = 0; i < pts[v].size(); ++i) {
      std::cout << (i ? ", " : "") << names[pts[v][i]];
    }
    std::cout << "}\n";
  }

  // --- a crafty-sized synthetic program ---
  const auto vars = static_cast<std::uint32_t>(args.get_int("vars", 6126));
  const auto cons = static_cast<std::uint32_t>(args.get_int("cons", 6768));
  const pta::ConstraintSet big = pta::synthetic_program(vars, cons, 17);

  pta::PtaStats st;
  gpu::Device dev2(gpu::DeviceConfig{.host_workers = host_workers_arg(args),
                                     .faults = cli.faults()});
  const pta::PtsSets gpu_pts = pta::solve_gpu(big, dev2, {}, &st);
  const pta::PtsSets ref = pta::solve_serial(big);

  std::cout << "\nsynthetic program (" << vars << " vars, " << cons
            << " constraints):\n"
            << "  fixed-point iterations: " << st.iterations << '\n'
            << "  graph edges added:      " << st.edges_added << '\n'
            << "  points-to facts:        " << st.pts_total << '\n'
            << "  chunk mallocs (device): " << st.device_mallocs << '\n'
            << "  matches serial solver:  "
            << (pta::equal_pts(gpu_pts, ref) ? "yes" : "NO") << '\n';
  return 0;
}

int main(int argc, char** argv) {
  return morph::examples::guarded_main([&] { return run(argc, argv); });
}
