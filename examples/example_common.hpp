// Shared CLI plumbing for the examples: strict flag checking (a typo like
// --fault=... gets a did-you-mean pointing at --faults), the
// --faults/--fault-seed campaign flags of docs/RESILIENCE.md, and a guarded
// main that turns an unrecovered injected fault into a clean nonzero exit.
#pragma once

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "gpu/config.hpp"
#include "resilience/fault.hpp"
#include "support/cli.hpp"
#include "support/status.hpp"

namespace morph::examples {

/// CliArgs plus the flags every example shares. `known` lists the example's
/// own flags; --host-workers, --faults and --fault-seed are added here, and
/// anything else warns with a closest-match suggestion.
class ExampleCli {
 public:
  ExampleCli(int argc, char** argv, std::vector<std::string> known)
      : args_(argc, argv) {
    known.push_back("host-workers");
    known.push_back("worklist-mode");
    known.push_back("worklist-shards");
    const auto& fault_flags = resilience::fault_cli_flags();
    known.insert(known.end(), fault_flags.begin(), fault_flags.end());
    args_.warn_unknown(known, std::cerr);
    plan_ = resilience::fault_plan_from_args(
        args_.get("faults", ""),
        static_cast<std::uint64_t>(args_.get_int("fault-seed", 1)));
  }

  CliArgs& args() { return args_; }
  const CliArgs& args() const { return args_; }

  /// The armed campaign, or null when --faults is absent. Plumb into
  /// gpu::DeviceConfig::faults; this object must outlive the devices.
  const resilience::FaultPlan* faults() const {
    return plan_ ? &*plan_ : nullptr;
  }

  /// Applies --worklist-mode / --worklist-shards to a device configuration
  /// (exit 2 on a bad value), same semantics as the bench harness.
  void apply_worklist_flags(gpu::DeviceConfig& cfg) const {
    const std::string wm = args_.get("worklist-mode", "centralized");
    if (!gpu::parse_worklist_mode(wm, &cfg.worklist_mode)) {
      std::cerr << "error: --worklist-mode must be 'centralized' or "
                   "'sharded' (got '"
                << wm << "')\n";
      std::exit(2);
    }
    const int ws = args_.get_int("worklist-shards", 0);
    if (ws < 0) {
      std::cerr << "error: --worklist-shards must be >= 0 (0 = auto)\n";
      std::exit(2);
    }
    cfg.worklist_shards = static_cast<std::uint32_t>(ws);
  }

 private:
  CliArgs args_;
  std::optional<resilience::FaultPlan> plan_;
};

/// Runs the example body; an unrecovered injected fault (exhausted retries,
/// watchdog give-up, invariant violation) exits 3 with the fault's status
/// line instead of terminating on an uncaught exception.
template <typename F>
int guarded_main(F&& body) {
  try {
    return body();
  } catch (const FaultError& e) {
    std::cerr << "fault campaign failed: " << e.status().to_string() << "\n";
    return 3;
  }
}

}  // namespace morph::examples
