// Shared CLI plumbing for the examples: strict flag checking (a typo like
// --fault=... gets a did-you-mean pointing at --faults), the
// --faults/--fault-seed campaign flags of docs/RESILIENCE.md, and a guarded
// main that turns an unrecovered injected fault into a clean nonzero exit.
#pragma once

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "resilience/fault.hpp"
#include "support/cli.hpp"
#include "support/status.hpp"

namespace morph::examples {

/// CliArgs plus the flags every example shares. `known` lists the example's
/// own flags; --host-workers, --faults and --fault-seed are added here, and
/// anything else warns with a closest-match suggestion.
class ExampleCli {
 public:
  ExampleCli(int argc, char** argv, std::vector<std::string> known)
      : args_(argc, argv) {
    known.push_back("host-workers");
    const auto& fault_flags = resilience::fault_cli_flags();
    known.insert(known.end(), fault_flags.begin(), fault_flags.end());
    args_.warn_unknown(known, std::cerr);
    plan_ = resilience::fault_plan_from_args(
        args_.get("faults", ""),
        static_cast<std::uint64_t>(args_.get_int("fault-seed", 1)));
  }

  CliArgs& args() { return args_; }
  const CliArgs& args() const { return args_; }

  /// The armed campaign, or null when --faults is absent. Plumb into
  /// gpu::DeviceConfig::faults; this object must outlive the devices.
  const resilience::FaultPlan* faults() const {
    return plan_ ? &*plan_ : nullptr;
  }

 private:
  CliArgs args_;
  std::optional<resilience::FaultPlan> plan_;
};

/// Runs the example body; an unrecovered injected fault (exhausted retries,
/// watchdog give-up, invariant violation) exits 3 with the fault's status
/// line instead of terminating on an uncaught exception.
template <typename F>
int guarded_main(F&& body) {
  try {
    return body();
  } catch (const FaultError& e) {
    std::cerr << "fault campaign failed: " << e.status().to_string() << "\n";
    return 3;
  }
}

}  // namespace morph::examples
