// File-based pipeline: exercises every interchange format end to end.
//
//   1. generates a mesh, writes it as Triangle .node/.ele, reads it back,
//      refines it on the simulated GPU, and reports the quality change;
//   2. generates a hard 3-SAT formula, round-trips it through DIMACS CNF,
//      and solves it;
//   3. generates a road-like graph, round-trips it through DIMACS .gr, and
//      verifies the MST.
//
// Files are written under --dir (default: the current directory).
#include <filesystem>
#include <fstream>
#include <iostream>

#include "dmr/delaunay.hpp"
#include "dmr/mesh_io.hpp"
#include "dmr/quality.hpp"
#include "dmr/refine.hpp"
#include "example_common.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mst/mst.hpp"
#include "sp/cnf.hpp"
#include "sp/survey.hpp"
#include "support/cli.hpp"

int run(int argc, char** argv) {
  using namespace morph;
  examples::ExampleCli cli(argc, argv, {"dir"});
  CliArgs& args = cli.args();
  const std::filesystem::path dir = args.get("dir", ".");

  // --- mesh through .node/.ele ---
  {
    dmr::Mesh m = dmr::generate_input_mesh(8000, 1);
    {
      std::ofstream node(dir / "pipeline.node"), ele(dir / "pipeline.ele");
      dmr::write_triangle_format(m, node, ele);
    }
    std::ifstream node(dir / "pipeline.node"), ele(dir / "pipeline.ele");
    dmr::Mesh back = dmr::read_triangle_format(node, ele);
    const double before = dmr::measure_quality(back).min_angle_deg;
    gpu::Device dev(gpu::DeviceConfig{.host_workers = host_workers_arg(args),
                                      .faults = cli.faults()});
    dmr::refine_gpu(back, dev);
    std::cout << "mesh:  " << m.num_live() << " triangles round-tripped; "
              << "min angle " << before << " -> "
              << dmr::measure_quality(back).min_angle_deg
              << " deg after GPU refinement\n";
  }

  // --- formula through DIMACS CNF ---
  {
    auto f = sp::random_ksat(1500, 5850, 3, 2);  // ratio 3.9
    {
      std::ofstream cnf(dir / "pipeline.cnf");
      sp::write_dimacs_cnf(f, cnf);
    }
    std::ifstream cnf(dir / "pipeline.cnf");
    const sp::Formula back = sp::read_dimacs_cnf(cnf);
    const sp::SpResult r = sp::solve_serial(back, {.seed = 3});
    std::cout << "cnf:   " << back.num_clauses()
              << " clauses round-tripped; solver says "
              << (r.solved ? "SATISFIABLE (verified)" : "gave up") << '\n';
  }

  // --- graph through DIMACS .gr ---
  {
    auto edges = graph::gen_road_like(5000, 2.4, 4);
    {
      std::ofstream gr(dir / "pipeline.gr");
      graph::write_dimacs(gr, 5000, edges);
    }
    std::ifstream gr(dir / "pipeline.gr");
    graph::Node n = 0;
    auto back = graph::read_dimacs(gr, n);
    auto g = graph::CsrGraph::from_undirected_edges(n, back);
    gpu::Device dev(gpu::DeviceConfig{.host_workers = host_workers_arg(args),
                                      .faults = cli.faults()});
    const mst::MstResult r = mst::mst_gpu(g, dev);
    std::cout << "graph: " << n << " nodes round-tripped; MST weight "
              << r.total_weight << ", "
              << (mst::verify_forest(g, r) ? "forest verified"
                                           : "VERIFICATION FAILED")
              << '\n';
  }
  return 0;
}

int main(int argc, char** argv) {
  return morph::examples::guarded_main([&] { return run(argc, argv); });
}
