// Minimum spanning trees with Boruvka edge contraction (the paper's MST
// application): computes the MST of several graph families with the
// component-based GPU algorithm and both CPU baselines, verifying against
// Kruskal and showing the density-dependent crossover of Fig. 11.
//
//   ./build/examples/mst_demo --nodes=20000
#include <cmath>
#include <iostream>

#include "example_common.hpp"
#include "graph/generators.hpp"
#include "mst/mst.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int run(int argc, char** argv) {
  using namespace morph;
  examples::ExampleCli cli(argc, argv, {"nodes"});
  CliArgs& args = cli.args();
  const auto n = static_cast<graph::Node>(args.get_int("nodes", 20000));

  struct Family {
    std::string name;
    std::vector<graph::Edge> edges;
    graph::Node nodes;
  };
  std::vector<Family> families;
  families.push_back({"road-like (sparse)", graph::gen_road_like(n, 2.4, 1), n});
  families.push_back(
      {"grid 2-d", graph::gen_grid2d(static_cast<std::uint32_t>(std::sqrt(n)),
                                     1000, 2),
       static_cast<graph::Node>(std::uint64_t(std::sqrt(n)) *
                                std::uint64_t(std::sqrt(n)))});
  families.push_back(
      {"random (dense)", graph::gen_random_uniform(n, 8ull * n, 100000, 3),
       n});

  Table t({"graph", "nodes", "edges", "MST weight", "gpu model-ms",
           "edge-merge model-ms", "union-find model-ms", "verified"});
  for (const Family& fam : families) {
    auto g = graph::CsrGraph::from_undirected_edges(fam.nodes, fam.edges);
    const mst::MstResult kr = mst::mst_kruskal(g);
    gpu::Device dev(gpu::DeviceConfig{.host_workers = host_workers_arg(args),
                                      .faults = cli.faults()});
    const mst::MstResult gp = mst::mst_gpu(g, dev);
    cpu::ParallelRunner r1({.workers = 48}), r2({.workers = 48});
    const mst::MstResult em = mst::mst_edge_merge(g, r1);
    const mst::MstResult uf = mst::mst_union_find(g, r2);
    const bool ok = gp.total_weight == kr.total_weight &&
                    em.total_weight == kr.total_weight &&
                    uf.total_weight == kr.total_weight;
    t.add_row({fam.name, std::to_string(g.num_nodes()),
               std::to_string(g.num_edges() / 2),
               std::to_string(kr.total_weight),
               Table::num(gp.modeled_cycles * 1e-6, 2),
               Table::num(em.modeled_cycles * 1e-6, 2),
               Table::num(uf.modeled_cycles * 1e-6, 2), ok ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nNote the crossover: explicit edge merging wins on the "
               "sparse families but\ndegrades as density grows — the "
               "component-based GPU algorithm does not.\n";
  return 0;
}

int main(int argc, char** argv) {
  return morph::examples::guarded_main([&] { return run(argc, argv); });
}
