// Mesh refinement for numerical simulation (the paper's DMR motivation):
// compares the three drivers — sequential (Triangle-like), speculative
// multicore (Galois-like), and the GPU algorithm — on one input, verifying
// they reach the same mesh quality, and shows the ablation knobs.
//
//   ./build/examples/mesh_refinement --triangles=50000 --min-angle=28
#include <iostream>

#include "dmr/delaunay.hpp"
#include "dmr/refine.hpp"
#include "example_common.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int run(int argc, char** argv) {
  using namespace morph;
  examples::ExampleCli cli(argc, argv, {"triangles", "min-angle", "seed"});
  CliArgs& args = cli.args();
  const std::size_t n =
      static_cast<std::size_t>(args.get_int("triangles", 30000));
  const double min_angle = args.get_double("min-angle", 30.0);

  dmr::Mesh base = dmr::generate_input_mesh(n, args.get_int("seed", 3));
  dmr::RefineOptions opts;
  opts.min_angle_deg = min_angle;
  std::cout << "input mesh: " << base.num_live() << " triangles\n\n";

  Table t({"driver", "final triangles", "processed", "aborted", "wall-s",
           "min angle met"});

  {
    dmr::Mesh m = base;
    const dmr::RefineStats st = dmr::refine_serial(m, opts);
    t.add_row({"serial (Triangle-like)", std::to_string(m.num_live()),
               std::to_string(st.processed), "0",
               Table::num(st.wall_seconds, 2),
               m.compute_all_bad(min_angle) == 0 ? "yes" : "NO"});
  }
  {
    dmr::Mesh m = base;
    cpu::ParallelRunner runner({.workers = 48});
    const dmr::RefineStats st = dmr::refine_multicore(m, runner, opts);
    t.add_row({"multicore (Galois-like, 48w)", std::to_string(m.num_live()),
               std::to_string(st.processed), std::to_string(st.aborted),
               Table::num(st.wall_seconds, 2),
               m.compute_all_bad(min_angle) == 0 ? "yes" : "NO"});
  }
  {
    dmr::Mesh m = base;
    gpu::Device dev(gpu::DeviceConfig{.host_workers = host_workers_arg(args),
                                      .faults = cli.faults()});
    const dmr::RefineStats st = dmr::refine_gpu(m, dev, opts);
    t.add_row({"GPU (3-phase, adaptive)", std::to_string(m.num_live()),
               std::to_string(st.processed), std::to_string(st.aborted),
               Table::num(st.wall_seconds, 2),
               m.compute_all_bad(min_angle) == 0 ? "yes" : "NO"});
  }
  t.print(std::cout);

  std::cout << "\nAll drivers guarantee the quality bound; they differ in "
               "schedule, so the\nmeshes differ triangle-by-triangle but "
               "satisfy the same constraints.\n";
  return 0;
}

int main(int argc, char** argv) {
  return morph::examples::guarded_main([&] { return run(argc, argv); });
}
