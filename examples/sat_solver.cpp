// Survey-propagation SAT solving (the paper's SP application): generates a
// random 3-SAT instance near the hard threshold and solves it with SP +
// decimation + WalkSAT on the simulated GPU, printing the decimation
// trajectory.
//
//   ./build/examples/sat_solver --lits=4000 --ratio=4.1 --k=3
#include <iostream>

#include "example_common.hpp"
#include "gpu/device.hpp"
#include "sp/survey.hpp"
#include "support/cli.hpp"

int run(int argc, char** argv) {
  using namespace morph;
  examples::ExampleCli cli(argc, argv, {"lits", "k", "ratio", "seed"});
  CliArgs& args = cli.args();
  const auto n = static_cast<std::uint32_t>(args.get_int("lits", 3000));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 3));
  const double ratio = args.get_double("ratio", 4.0);
  const auto m = static_cast<std::uint32_t>(ratio * n);

  std::cout << "random " << k << "-SAT: " << n << " literals, " << m
            << " clauses (ratio " << ratio << ", hard at "
            << sp::hard_ratio(k) << ")\n";

  const sp::Formula f =
      sp::random_ksat(n, m, k, static_cast<std::uint64_t>(
                                   args.get_int("seed", 11)));

  gpu::Device device(gpu::DeviceConfig{.host_workers = host_workers_arg(args),
                                       .faults = cli.faults()});
  sp::SpOptions opts;
  opts.seed = 99;
  const sp::SpResult r = sp::solve_gpu(f, device, opts);

  std::cout << "survey sweeps:        " << r.sweeps << '\n'
            << "decimation phases:    " << r.phases << '\n'
            << "literals fixed by SP: " << r.fixed_by_sp << " of " << n
            << '\n'
            << "WalkSAT flips:        " << r.walksat_flips_used << '\n'
            << "kernel launches:      " << device.stats().launches << '\n';
  if (r.solved) {
    std::cout << "SATISFIABLE — assignment verified against all " << m
              << " clauses\n";
  } else if (r.contradiction) {
    std::cout << "gave up: decimation reached a contradiction (SP is a "
                 "heuristic; rerun with another seed)\n";
  } else {
    std::cout << "gave up: endgame did not converge\n";
  }
  return r.solved ? 0 : 2;
}

int main(int argc, char** argv) {
  return morph::examples::guarded_main([&] { return run(argc, argv); });
}
