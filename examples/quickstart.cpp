// Quickstart: the smallest end-to-end use of the library.
//
// Creates a simulated GPU device, generates a small triangulated mesh,
// refines it with the paper's 3-phase GPU algorithm, and prints what the
// device did. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "dmr/delaunay.hpp"
#include "dmr/refine.hpp"
#include "example_common.hpp"

int run(int argc, char** argv) {
  using namespace morph;
  examples::ExampleCli cli(argc, argv, {});

  // 1. A simulated Fermi-class device (14 SMs, 32-wide warps). Simulated
  //    blocks execute on one host worker per hardware thread (0 = auto);
  //    modeled statistics are identical for any worker count. --faults=<spec>
  //    arms a deterministic fault-injection campaign (docs/RESILIENCE.md).
  gpu::Device device(
      gpu::DeviceConfig{.host_workers = 0, .faults = cli.faults()});

  // 2. A random input mesh: ~20k triangles, roughly half of them "bad"
  //    (some angle below 30 degrees), like the paper's DMR inputs.
  dmr::Mesh mesh = dmr::generate_input_mesh(20000, /*seed=*/1);
  std::cout << "input:   " << mesh.num_live() << " triangles, "
            << mesh.compute_all_bad(30.0) << " bad\n";

  // 3. Refine on the device. Options default to the paper's full
  //    configuration: 3-phase conflict resolution, hierarchical barriers,
  //    memory-layout scan, adaptive kernel configuration, divergence
  //    sorting, slot recycling.
  const dmr::RefineStats stats = dmr::refine_gpu(mesh, device);

  std::cout << "refined: " << mesh.num_live() << " triangles, "
            << mesh.compute_all_bad(30.0) << " bad\n"
            << "rounds:  " << stats.rounds << ", cavities applied "
            << stats.processed << ", aborted " << stats.aborted
            << " (abort ratio " << stats.abort_ratio() << ")\n"
            << "device:  " << device.stats().launches << " kernel launches, "
            << device.stats().barriers << " global barriers, "
            << device.stats().modeled_cycles << " modeled cycles\n";

  std::string why;
  if (!mesh.validate(&why)) {
    std::cerr << "mesh invalid: " << why << '\n';
    return 1;
  }
  std::cout << "mesh is a valid conforming triangulation; Delaunay: "
            << (dmr::is_delaunay(mesh) ? "yes" : "no") << '\n';
  return 0;
}

int main(int argc, char** argv) {
  return morph::examples::guarded_main([&] { return run(argc, argv); });
}
