// Delaunay edge flipping (library extension): scrambles a Delaunay mesh
// with random legal flips, then restores the Delaunay property with
// Lawson's algorithm — serially and on the simulated GPU, where flips use
// the same 3-phase conflict-resolution protocol as mesh refinement.
//
//   ./build/examples/edge_flip --triangles=20000 --scrambles=8000
#include <iostream>

#include "dmr/delaunay.hpp"
#include "dmr/flip.hpp"
#include "dmr/quality.hpp"
#include "example_common.hpp"
#include "support/cli.hpp"

int run(int argc, char** argv) {
  using namespace morph;
  examples::ExampleCli cli(argc, argv, {"triangles", "scrambles"});
  CliArgs& args = cli.args();
  const std::size_t n =
      static_cast<std::size_t>(args.get_int("triangles", 20000));
  const std::size_t scrambles =
      static_cast<std::size_t>(args.get_int("scrambles", n / 3));

  dmr::Mesh base = dmr::generate_input_mesh(n, 5);
  const std::size_t done = dmr::random_legal_flips(base, scrambles, 7);
  std::cout << "scrambled " << done << " edges; Delaunay now: "
            << (dmr::is_delaunay(base) ? "yes" : "no")
            << ", mean min angle "
            << dmr::measure_quality(base).mean_min_angle_deg << " deg\n";

  {
    dmr::Mesh m = base;
    const dmr::FlipStats st = dmr::flip_serial(m);
    std::cout << "serial: " << st.flips << " flips, "
              << (dmr::is_delaunay(m) ? "Delaunay restored" : "FAILED")
              << ", mean min angle "
              << dmr::measure_quality(m).mean_min_angle_deg << " deg\n";
  }
  {
    dmr::Mesh m = base;
    gpu::Device dev(gpu::DeviceConfig{.host_workers = host_workers_arg(args),
                                      .faults = cli.faults()});
    const dmr::FlipStats st = dmr::flip_gpu(m, dev);
    std::cout << "GPU:    " << st.flips << " flips in " << st.rounds
              << " rounds (" << st.aborted << " aborted), "
              << (dmr::is_delaunay(m) ? "Delaunay restored" : "FAILED")
              << ", " << dev.stats().barriers << " global barriers\n";
  }
  return 0;
}

int main(int argc, char** argv) {
  return morph::examples::guarded_main([&] { return run(argc, argv); });
}
