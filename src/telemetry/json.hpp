// Minimal JSON document model for the telemetry subsystem.
//
// The repo bakes in no JSON dependency, and the telemetry formats (Chrome
// trace events, BenchReport) need both deterministic serialization — byte
// identical output for bit-identical inputs, which is what lets tier-1 diff
// two traces — and parsing (morph-report reads reports back). This is a
// deliberately small value type: null/bool/number/string/array/object,
// insertion-ordered object keys, and shortest-round-trip number printing.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace morph::telemetry {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(std::int64_t v)
      : type_(Type::kNumber), num_(static_cast<double>(v)), int_(v),
        is_int_(true) {}
  Json(std::uint64_t v)
      : type_(Type::kNumber), num_(static_cast<double>(v)),
        int_(static_cast<std::int64_t>(v)), is_int_(true) {}
  Json(int v) : Json(static_cast<std::int64_t>(v)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}

  static Json array() { return Json(Type::kArray); }
  static Json object() { return Json(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  // Typed accessors; MORPH_CHECK on type mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  // --- arrays ---
  void push_back(Json v);
  std::size_t size() const;
  const Json& at(std::size_t i) const;

  // --- objects (insertion-ordered) ---
  Json& set(const std::string& key, Json v);  ///< insert or overwrite
  const Json* find(const std::string& key) const;  ///< nullptr when absent
  const Json& at(const std::string& key) const;    ///< MORPH_CHECK when absent
  const std::vector<std::pair<std::string, Json>>& items() const;

  /// Deterministic serialization; indent < 0 is compact single-line,
  /// indent >= 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parses a complete JSON document; throws morph::CheckError on malformed
  /// input or trailing garbage.
  static Json parse(const std::string& text);

  /// Shortest decimal form of `v` that parses back to the same double
  /// (integers without exponent when exact). Used for all number output.
  static std::string number_to_string(double v);

 private:
  explicit Json(Type t) : type_(t) {}
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool is_int_ = false;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace morph::telemetry
