#include "telemetry/trace.hpp"

#include <algorithm>
#include <tuple>

#include "support/check.hpp"

namespace morph::telemetry {

bool trace_event_order(const TraceEvent& a, const TraceEvent& b) {
  const auto ka = static_cast<std::uint8_t>(a.kind);
  const auto kb = static_cast<std::uint8_t>(b.kind);
  return std::tie(a.device, a.launch, a.phase, ka, a.block, a.seq, a.name) <
         std::tie(b.device, b.launch, b.phase, kb, b.block, b.seq, b.name);
}

TraceSink::TraceSink() : TraceSink(Options{}) {}

TraceSink::TraceSink(Options opts) : opts_(opts) {
  MORPH_CHECK(opts_.ring_capacity > 0);
}

std::uint32_t TraceSink::register_device(std::uint32_t host_workers) {
  std::scoped_lock lock(mu_);
  const std::size_t want = static_cast<std::size_t>(host_workers) + 1;
  while (rings_.size() < want) rings_.push_back(std::make_unique<Ring>());
  return devices_++;
}

void TraceSink::record(std::uint32_t worker, TraceEvent ev) {
  Ring* ring;
  {
    std::scoped_lock lock(mu_);
    MORPH_CHECK_MSG(worker < rings_.size(),
                    "TraceSink: worker " << worker
                                         << " has no ring (register_device "
                                            "with enough host_workers first)");
    ring = rings_[worker].get();
  }
  if (ring->events.size() < opts_.ring_capacity) {
    ring->events.push_back(std::move(ev));
  } else {
    ring->events[ring->written % opts_.ring_capacity] = std::move(ev);
    ++ring->dropped;
  }
  ++ring->written;
}

std::uint64_t TraceSink::dropped() const {
  std::scoped_lock lock(mu_);
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r->dropped;
  return n;
}

std::vector<TraceEvent> TraceSink::merged() const {
  std::scoped_lock lock(mu_);
  std::vector<TraceEvent> out;
  std::size_t total = 0;
  for (const auto& r : rings_) total += r->events.size();
  out.reserve(total);
  for (const auto& r : rings_) {
    out.insert(out.end(), r->events.begin(), r->events.end());
  }
  std::sort(out.begin(), out.end(), trace_event_order);
  return out;
}

void TraceSink::clear() {
  std::scoped_lock lock(mu_);
  for (auto& r : rings_) *r = Ring{};
}

}  // namespace morph::telemetry
