#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/check.hpp"

namespace morph::telemetry {

bool Json::as_bool() const {
  MORPH_CHECK_MSG(type_ == Type::kBool, "JSON value is not a bool");
  return bool_;
}

double Json::as_double() const {
  MORPH_CHECK_MSG(type_ == Type::kNumber, "JSON value is not a number");
  return num_;
}

std::int64_t Json::as_int() const {
  MORPH_CHECK_MSG(type_ == Type::kNumber, "JSON value is not a number");
  return is_int_ ? int_ : static_cast<std::int64_t>(num_);
}

const std::string& Json::as_string() const {
  MORPH_CHECK_MSG(type_ == Type::kString, "JSON value is not a string");
  return str_;
}

void Json::push_back(Json v) {
  MORPH_CHECK_MSG(type_ == Type::kArray, "JSON value is not an array");
  arr_.push_back(std::move(v));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  MORPH_CHECK_MSG(false, "JSON value has no size");
  return 0;
}

const Json& Json::at(std::size_t i) const {
  MORPH_CHECK_MSG(type_ == Type::kArray, "JSON value is not an array");
  MORPH_CHECK_MSG(i < arr_.size(), "JSON array index out of range");
  return arr_[i];
}

Json& Json::set(const std::string& key, Json v) {
  MORPH_CHECK_MSG(type_ == Type::kObject, "JSON value is not an object");
  for (auto& [k, val] : obj_) {
    if (k == key) {
      val = std::move(v);
      return val;
    }
  }
  obj_.emplace_back(key, std::move(v));
  return obj_.back().second;
}

const Json* Json::find(const std::string& key) const {
  MORPH_CHECK_MSG(type_ == Type::kObject, "JSON value is not an object");
  for (const auto& [k, val] : obj_) {
    if (k == key) return &val;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  MORPH_CHECK_MSG(v != nullptr, "JSON object has no key \"" << key << "\"");
  return *v;
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  MORPH_CHECK_MSG(type_ == Type::kObject, "JSON value is not an object");
  return obj_;
}

std::string Json::number_to_string(double v) {
  MORPH_CHECK_MSG(std::isfinite(v), "JSON cannot represent non-finite number");
  // Exact integers in the double-exact range print without a fraction.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  // Shortest form that round-trips through strtod.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

namespace {

void escape_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        // Escape control bytes and everything >= 0x80: the escape keeps the
        // emitted JSON plain ASCII whatever bytes a caller-supplied string
        // holds. The cast through unsigned char matters — passing a plain
        // (signed) char >= 0x80 to %x sign-extends into "￿ffXX".
        const unsigned char uc = static_cast<unsigned char>(c);
        if (uc < 0x20 || uc >= 0x80) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", uc);
          out += buf;
        } else {
          out += c;
        }
      }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber:
      out += is_int_ ? std::to_string(int_) : number_to_string(num_);
      break;
    case Type::kString: escape_string(out, str_); break;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        escape_string(out, obj_[i].first);
        out += indent < 0 ? ":" : ": ";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over the raw text.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    MORPH_CHECK_MSG(pos_ == s_.size(), "JSON: trailing garbage at byte "
                                           << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    MORPH_CHECK_MSG(pos_ < s_.size(), "JSON: unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    MORPH_CHECK_MSG(peek() == c, "JSON: expected '" << c << "' at byte "
                                                    << pos_);
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        MORPH_CHECK_MSG(consume_literal("true"), "JSON: bad literal");
        return Json(true);
      case 'f':
        MORPH_CHECK_MSG(consume_literal("false"), "JSON: bad literal");
        return Json(false);
      case 'n':
        MORPH_CHECK_MSG(consume_literal("null"), "JSON: bad literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      const std::string key = parse_string();
      expect(':');
      obj.set(key, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      MORPH_CHECK_MSG(c == ',', "JSON: expected ',' or '}' at byte " << pos_);
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      MORPH_CHECK_MSG(c == ',', "JSON: expected ',' or ']' at byte " << pos_);
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      MORPH_CHECK_MSG(pos_ < s_.size(), "JSON: unterminated escape");
      c = s_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          MORPH_CHECK_MSG(pos_ + 4 <= s_.size(), "JSON: bad \\u escape");
          const unsigned code = static_cast<unsigned>(
              std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          // Single-byte escapes only (all this codebase ever emits — the
          // writer escapes each byte separately); wider code points are
          // passed through as '?' rather than mis-encoded.
          out += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default: MORPH_CHECK_MSG(false, "JSON: bad escape '\\" << c << "'");
      }
    }
    MORPH_CHECK_MSG(pos_ < s_.size(), "JSON: unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Json parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    if (integral) {
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      MORPH_CHECK_MSG(end && *end == '\0' && !tok.empty(),
                      "JSON: bad number \"" << tok << "\"");
      return Json(static_cast<std::int64_t>(v));
    }
    const double v = std::strtod(tok.c_str(), &end);
    MORPH_CHECK_MSG(end && *end == '\0' && !tok.empty(),
                    "JSON: bad number \"" << tok << "\"");
    return Json(v);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace morph::telemetry
