#include "telemetry/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>

#include "support/check.hpp"
#include "telemetry/json.hpp"

namespace morph::telemetry {

namespace {

const char* kind_label(EventKind k) {
  switch (k) {
    case EventKind::kLaunch: return "launch";
    case EventKind::kPhase: return "phase";
    case EventKind::kBarrier: return "barrier";
    case EventKind::kBlock: return "block";
    case EventKind::kCounter: return "counter";
    case EventKind::kFault: return "fault";
    case EventKind::kRecovery: return "recovery";
  }
  return "?";
}

Json span_event(const TraceEvent& ev, std::uint32_t tid, double ts_cycles,
                double us_per_cycle) {
  Json e = Json::object();
  e.set("name", ev.name.empty() ? kind_label(ev.kind) : ev.name);
  e.set("cat", kind_label(ev.kind));
  e.set("ph", "X");
  e.set("pid", static_cast<std::int64_t>(ev.device));
  e.set("tid", static_cast<std::int64_t>(tid));
  e.set("ts", ts_cycles * us_per_cycle);
  e.set("dur", ev.dur_cycles * us_per_cycle);
  Json args = Json::object();
  args.set("launch", static_cast<std::int64_t>(ev.launch));
  if (ev.kind != EventKind::kLaunch) {
    args.set("phase", static_cast<std::int64_t>(ev.phase));
  }
  if (ev.kind == EventKind::kBlock) {
    args.set("block", static_cast<std::int64_t>(ev.block));
  }
  args.set("work", ev.work);
  args.set("warp_steps", ev.warp_steps);
  args.set("atomics", ev.atomics);
  args.set("global_accesses", ev.global_accesses);
  args.set("modeled_cycles", ev.dur_cycles);
  e.set("args", std::move(args));
  return e;
}

Json metadata_event(const char* what, std::uint32_t pid, std::uint32_t tid,
                    const std::string& name) {
  Json e = Json::object();
  e.set("name", what);
  e.set("ph", "M");
  e.set("pid", static_cast<std::int64_t>(pid));
  e.set("tid", static_cast<std::int64_t>(tid));
  Json args = Json::object();
  args.set("name", name);
  e.set("args", std::move(args));
  return e;
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const ChromeTraceOptions& opts) {
  MORPH_CHECK(opts.clock_ghz > 0.0);
  std::vector<TraceEvent> evs = events;
  std::sort(evs.begin(), evs.end(), trace_event_order);
  const double us_per_cycle = 1.0 / (opts.clock_ghz * 1000.0);

  // Track inventory per device for the metadata header.
  std::map<std::uint32_t, std::uint32_t> device_max_track;
  for (const TraceEvent& ev : evs) {
    auto it = device_max_track.try_emplace(ev.device, 0u).first;
    if (ev.kind == EventKind::kBlock) {
      it->second = std::max(it->second, ev.track + 1);
    }
  }

  Json trace_events = Json::array();
  for (const auto& [dev, tracks] : device_max_track) {
    trace_events.push_back(metadata_event(
        "process_name", dev, 0, "morph gpu::Device " + std::to_string(dev)));
    trace_events.push_back(metadata_event("thread_name", dev, 0, "kernel timeline"));
    for (std::uint32_t s = 0; s < tracks; ++s) {
      trace_events.push_back(
          metadata_event("thread_name", dev, 1 + s, "sm " + std::to_string(s)));
    }
  }

  // Per-block spans are laid out by prefix-summing durations per SM track of
  // the current (device, launch, phase): evs is sorted so all blocks of a
  // phase directly follow that phase's span event, in ascending block order.
  double phase_start_cycles = 0.0;
  std::map<std::uint32_t, double> track_offset;
  for (const TraceEvent& ev : evs) {
    switch (ev.kind) {
      case EventKind::kLaunch:
        trace_events.push_back(span_event(ev, 0, ev.ts_cycles, us_per_cycle));
        break;
      case EventKind::kPhase:
        phase_start_cycles = ev.ts_cycles;
        track_offset.clear();
        trace_events.push_back(span_event(ev, 0, ev.ts_cycles, us_per_cycle));
        break;
      case EventKind::kBarrier:
      case EventKind::kFault:
      case EventKind::kRecovery:
        trace_events.push_back(span_event(ev, 0, ev.ts_cycles, us_per_cycle));
        break;
      case EventKind::kBlock: {
        double& off = track_offset[ev.track];
        trace_events.push_back(span_event(ev, 1 + ev.track,
                                          phase_start_cycles + off,
                                          us_per_cycle));
        off += ev.dur_cycles;
        break;
      }
      case EventKind::kCounter: {
        Json e = Json::object();
        e.set("name", ev.name);
        e.set("ph", "C");
        e.set("pid", static_cast<std::int64_t>(ev.device));
        e.set("tid", std::int64_t{0});
        e.set("ts", ev.ts_cycles * us_per_cycle);
        Json args = Json::object();
        args.set("value", ev.value);
        e.set("args", std::move(args));
        trace_events.push_back(std::move(e));
        break;
      }
    }
  }

  Json doc = Json::object();
  doc.set("displayTimeUnit", "ms");
  Json other = Json::object();
  other.set("schema", "morph-chrome-trace");
  other.set("version", std::int64_t{1});
  other.set("clock_ghz", opts.clock_ghz);
  if (opts.dropped_events > 0) {
    other.set("dropped_events", opts.dropped_events);
  }
  doc.set("otherData", std::move(other));
  doc.set("traceEvents", std::move(trace_events));
  return doc.dump();
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        const ChromeTraceOptions& opts) {
  std::ofstream os(path, std::ios::binary);
  MORPH_CHECK_MSG(os.good(), "cannot open trace output \"" << path << "\"");
  os << chrome_trace_json(events, opts) << "\n";
  MORPH_CHECK_MSG(os.good(), "failed writing trace \"" << path << "\"");
}

}  // namespace morph::telemetry
