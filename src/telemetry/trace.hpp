// Trace collection: structured events from the simulated device.
//
// A TraceSink is attached to one or more gpu::Device instances through
// DeviceConfig::trace (off by default; a null sink costs a single branch per
// launch). The device records launch / phase / barrier spans — and, when
// Options::block_spans is set, one span per executed block — with the
// KernelStats deltas of each span. Events carry *modeled-cycle* timestamps,
// never wall clock, so a trace is a pure function of the simulated
// execution: bit-identical modeled stats produce byte-identical traces.
//
// Concurrency: each host worker appends to its own ring buffer (worker 0 is
// the launching thread, 1..N the pool threads), so recording takes no lock
// on the hot path beyond a pointer fetch. merged() sorts the union of all
// rings by a deterministic key — (device, launch, phase, kind, block, seq)
// — which makes the flushed trace independent of which worker executed
// which block, i.e. stable across host_workers values.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace morph::telemetry {

enum class EventKind : std::uint8_t {
  kLaunch = 0,   ///< whole kernel launch (all phases + barriers)
  kPhase = 1,    ///< one phase of a launch
  kBarrier = 2,  ///< intra-kernel global barrier after a phase
  kBlock = 3,    ///< one block's execution within a phase (optional)
  kCounter = 4,  ///< sampled counter (worklist occupancy, device memory)
  kFault = 5,    ///< injected fault (resilience campaign)
  kRecovery = 6, ///< recovery action taken for an earlier fault
};

struct TraceEvent {
  EventKind kind = EventKind::kCounter;
  std::uint32_t device = 0;  ///< ordinal from TraceSink::register_device
  std::uint32_t launch = 0;  ///< launch ordinal within the device
  std::uint32_t phase = 0;   ///< phase index within the launch
  std::uint32_t block = 0;   ///< block id (kBlock only)
  std::uint32_t track = 0;   ///< render track: simulated SM id (kBlock only)
  std::uint64_t seq = 0;     ///< device-assigned tiebreaker (serial events)
  std::string name;
  double ts_cycles = 0.0;    ///< modeled-cycle start (kBlock: laid out at export)
  double dur_cycles = 0.0;

  // Counted deltas of the span (spans), or the sampled value (counters).
  std::uint64_t work = 0;
  std::uint64_t warp_steps = 0;
  std::uint64_t atomics = 0;
  std::uint64_t global_accesses = 0;
  double value = 0.0;
};

/// The deterministic total order merged() flushes in. Public so tests and
/// exporters can re-sort event subsets consistently.
bool trace_event_order(const TraceEvent& a, const TraceEvent& b);

class TraceSink {
 public:
  struct Options {
    /// Events retained per worker ring; when a ring overflows the oldest
    /// events of that ring are overwritten (and counted in dropped()).
    /// Overflow can make the merged trace depend on the worker count, so
    /// size generously; exporters surface dropped() loudly.
    std::size_t ring_capacity = 1u << 20;
    /// Record one span per executed block (one track per simulated SM).
    bool block_spans = false;
  };

  TraceSink();  ///< default Options
  explicit TraceSink(Options opts);

  bool block_spans() const { return opts_.block_spans; }

  /// Called by each Device on construction: returns the device ordinal used
  /// in its events and ensures rings exist for `host_workers` pool threads.
  /// Not safe concurrently with record() (attach devices before launching).
  std::uint32_t register_device(std::uint32_t host_workers);

  /// Appends to worker `worker`'s ring (0 = launching thread, 1..N = pool
  /// threads, the value of ThreadPool::current_worker()). A given worker
  /// index must only be used by one thread at a time (which the pool
  /// guarantees).
  void record(std::uint32_t worker, TraceEvent ev);

  /// Total events overwritten by ring overflow across all rings.
  std::uint64_t dropped() const;

  /// Union of all rings in the deterministic trace_event_order.
  std::vector<TraceEvent> merged() const;

  void clear();

 private:
  struct Ring {
    std::vector<TraceEvent> events;  ///< ring storage, at most ring_capacity
    std::uint64_t written = 0;       ///< total appends (wraps the ring)
    std::uint64_t dropped = 0;
  };

  Options opts_;
  mutable std::mutex mu_;  ///< guards rings_ growth and whole-sink reads
  std::vector<std::unique_ptr<Ring>> rings_;
  std::uint32_t devices_ = 0;
};

}  // namespace morph::telemetry
