// Versioned machine-readable bench output ("morph-bench-report").
//
// Every bench in bench/ emits one of these via --json=<path> (see
// bench_common.hpp); morph-report pretty-prints, diffs, and merges them, and
// scripts/bench_snapshot.sh consolidates a full run into BENCH_<date>.json.
// The schema is documented in docs/TELEMETRY.md; bump kSchemaVersion on any
// incompatible change and keep from_json able to reject what it can't read.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"

namespace morph::telemetry {

struct BenchReport {
  static constexpr std::int64_t kSchemaVersion = 1;
  static constexpr const char* kSchemaName = "morph-bench-report";

  struct Row {
    std::string name;
    /// Insertion-ordered (metric name, value) pairs; names are stable
    /// identifiers like "modeled_cycles", "atomics", "wall_seconds".
    std::vector<std::pair<std::string, double>> metrics;

    Row& metric(const std::string& key, double value);  ///< insert/overwrite
    const double* find(const std::string& key) const;   ///< nullptr if absent
  };

  /// Hazard-sanitizer summary (analysis/sanitizer.hpp). Serialized as an
  /// optional "sanitizer" object — emitted only when `enabled`, so reports
  /// from unsanitized runs stay byte-identical to schema v1 output.
  struct SanitizerSection {
    bool enabled = false;
    std::string spec;  ///< the --sanitize value, e.g. "races,worklist"
    /// (class name, finding count) pairs, e.g. ("races", 0).
    std::vector<std::pair<std::string, double>> counts;
    std::vector<std::string> findings;  ///< formatted diagnostics (capped)
    double suppressed = 0;              ///< findings beyond the report cap
  };

  /// Job-server serving-layer summary (src/serve, bench/serve_loadtest).
  /// Serialized as an optional "serve" object — emitted only when `enabled`,
  /// like the sanitizer section, so non-serving reports are unchanged.
  /// Metric names are stable identifiers ("throughput_jobs_per_model_s",
  /// "queue_p99_model_ms", "batch_occupancy", "rejected", "poisonings").
  struct ServeSection {
    bool enabled = false;
    /// Insertion-ordered (metric name, value) pairs.
    std::vector<std::pair<std::string, double>> metrics;

    ServeSection& metric(const std::string& key, double value);
    const double* find(const std::string& key) const;
  };

  std::string bench;   ///< binary name, e.g. "fig6_dmr_runtime"
  std::string title;   ///< human title, e.g. "Fig. 6 — DMR runtime"
  double clock_ghz = 1.0;
  /// CLI flags the run was invoked with (output paths excluded so reruns of
  /// the same configuration produce comparable reports).
  std::vector<std::pair<std::string, std::string>> args;
  std::vector<Row> rows;
  SanitizerSection sanitizer;
  ServeSection serve;

  Row& add_row(const std::string& name);
  const Row* find_row(const std::string& name) const;

  Json to_json() const;
  static BenchReport from_json(const Json& doc);  ///< throws CheckError

  std::string to_json_text() const { return to_json().dump(2) + "\n"; }
  static BenchReport parse(const std::string& text) {
    return from_json(Json::parse(text));
  }

  void save(const std::string& path) const;       ///< throws on IO error
  static BenchReport load(const std::string& path);
};

/// Consolidates many reports into one (rows renamed "<bench>/<row>"); used
/// by `morph-report merge` for the BENCH_<date>.json perf-trajectory files.
BenchReport merge_reports(const std::vector<BenchReport>& reports,
                          const std::string& name);

}  // namespace morph::telemetry
