// Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).
//
// Mapping (see docs/TELEMETRY.md):
//   - one process (pid) per registered Device,
//   - tid 0 is the launch/phase/barrier timeline,
//   - tid 1+s is simulated SM `s` (per-block spans, when recorded),
//   - counters (worklist occupancy, device memory) render as counter tracks.
// Timestamps are modeled cycles converted to microseconds at the device's
// nominal clock, so the export is deterministic and byte-identical across
// host_workers values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/trace.hpp"

namespace morph::telemetry {

struct ChromeTraceOptions {
  double clock_ghz = 1.0;  ///< cycles -> microseconds conversion
  std::uint64_t dropped_events = 0;  ///< surfaced in otherData when nonzero
};

/// Serializes merged events as a Chrome trace-event document (JSON object
/// format with a "traceEvents" array). Per-block spans are laid out on their
/// SM track by prefix-summing block durations in ascending block order,
/// which is deterministic regardless of the real execution interleaving.
std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const ChromeTraceOptions& opts = {});

/// chrome_trace_json + write to `path`; throws morph::CheckError on IO error.
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        const ChromeTraceOptions& opts = {});

}  // namespace morph::telemetry
