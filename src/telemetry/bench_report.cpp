#include "telemetry/bench_report.hpp"

#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace morph::telemetry {

BenchReport::Row& BenchReport::Row::metric(const std::string& key,
                                           double value) {
  for (auto& [k, v] : metrics) {
    if (k == key) {
      v = value;
      return *this;
    }
  }
  metrics.emplace_back(key, value);
  return *this;
}

const double* BenchReport::Row::find(const std::string& key) const {
  for (const auto& [k, v] : metrics) {
    if (k == key) return &v;
  }
  return nullptr;
}

BenchReport::ServeSection& BenchReport::ServeSection::metric(
    const std::string& key, double value) {
  for (auto& [k, v] : metrics) {
    if (k == key) {
      v = value;
      return *this;
    }
  }
  metrics.emplace_back(key, value);
  return *this;
}

const double* BenchReport::ServeSection::find(const std::string& key) const {
  for (const auto& [k, v] : metrics) {
    if (k == key) return &v;
  }
  return nullptr;
}

BenchReport::Row& BenchReport::add_row(const std::string& name) {
  rows.push_back(Row{name, {}});
  return rows.back();
}

const BenchReport::Row* BenchReport::find_row(const std::string& name) const {
  for (const Row& r : rows) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

Json BenchReport::to_json() const {
  Json doc = Json::object();
  doc.set("schema", kSchemaName);
  doc.set("version", kSchemaVersion);
  doc.set("bench", bench);
  doc.set("title", title);
  doc.set("clock_ghz", clock_ghz);
  Json jargs = Json::object();
  for (const auto& [k, v] : args) jargs.set(k, v);
  doc.set("args", std::move(jargs));
  Json jrows = Json::array();
  for (const Row& r : rows) {
    Json jr = Json::object();
    jr.set("name", r.name);
    Json jm = Json::object();
    for (const auto& [k, v] : r.metrics) jm.set(k, v);
    jr.set("metrics", std::move(jm));
    jrows.push_back(std::move(jr));
  }
  doc.set("rows", std::move(jrows));
  if (sanitizer.enabled) {
    Json js = Json::object();
    js.set("spec", sanitizer.spec);
    Json jc = Json::object();
    for (const auto& [k, v] : sanitizer.counts) jc.set(k, v);
    js.set("counts", std::move(jc));
    Json jf = Json::array();
    for (const std::string& f : sanitizer.findings) jf.push_back(Json(f));
    js.set("findings", std::move(jf));
    js.set("suppressed", sanitizer.suppressed);
    doc.set("sanitizer", std::move(js));
  }
  if (serve.enabled) {
    Json js = Json::object();
    for (const auto& [k, v] : serve.metrics) js.set(k, v);
    doc.set("serve", std::move(js));
  }
  return doc;
}

BenchReport BenchReport::from_json(const Json& doc) {
  MORPH_CHECK_MSG(doc.is_object(), "bench report: not a JSON object");
  MORPH_CHECK_MSG(doc.at("schema").as_string() == kSchemaName,
                  "bench report: unexpected schema \""
                      << doc.at("schema").as_string() << "\"");
  const std::int64_t version = doc.at("version").as_int();
  MORPH_CHECK_MSG(version == kSchemaVersion,
                  "bench report: unsupported schema version "
                      << version << " (this build reads version "
                      << kSchemaVersion
                      << "); regenerate the report with current tools");
  BenchReport r;
  r.bench = doc.at("bench").as_string();
  r.title = doc.at("title").as_string();
  r.clock_ghz = doc.at("clock_ghz").as_double();
  for (const auto& [k, v] : doc.at("args").items()) {
    r.args.emplace_back(k, v.as_string());
  }
  const Json& jrows = doc.at("rows");
  MORPH_CHECK_MSG(jrows.is_array(), "bench report: rows is not an array");
  for (std::size_t i = 0; i < jrows.size(); ++i) {
    const Json& jr = jrows.at(i);
    Row& row = r.add_row(jr.at("name").as_string());
    for (const auto& [k, v] : jr.at("metrics").items()) {
      row.metric(k, v.as_double());
    }
  }
  if (const Json* js = doc.find("sanitizer")) {
    r.sanitizer.enabled = true;
    r.sanitizer.spec = js->at("spec").as_string();
    for (const auto& [k, v] : js->at("counts").items()) {
      r.sanitizer.counts.emplace_back(k, v.as_double());
    }
    const Json& jf = js->at("findings");
    for (std::size_t i = 0; i < jf.size(); ++i) {
      r.sanitizer.findings.push_back(jf.at(i).as_string());
    }
    r.sanitizer.suppressed = js->at("suppressed").as_double();
  }
  if (const Json* js = doc.find("serve")) {
    r.serve.enabled = true;
    for (const auto& [k, v] : js->items()) {
      r.serve.metrics.emplace_back(k, v.as_double());
    }
  }
  return r;
}

void BenchReport::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  MORPH_CHECK_MSG(os.good(), "cannot open report output \"" << path << "\"");
  os << to_json_text();
  MORPH_CHECK_MSG(os.good(), "failed writing report \"" << path << "\"");
}

BenchReport BenchReport::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  MORPH_CHECK_MSG(is.good(), "cannot open report \"" << path << "\"");
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse(buf.str());
}

BenchReport merge_reports(const std::vector<BenchReport>& reports,
                          const std::string& name) {
  MORPH_CHECK_MSG(!reports.empty(), "merge_reports: nothing to merge");
  BenchReport out;
  out.bench = name;
  out.title = "consolidated bench snapshot";
  out.clock_ghz = reports.front().clock_ghz;
  for (const BenchReport& r : reports) {
    MORPH_CHECK_MSG(r.clock_ghz == out.clock_ghz,
                    "merge_reports: clock_ghz mismatch between reports");
    for (const BenchReport::Row& row : r.rows) {
      out.rows.push_back(
          BenchReport::Row{r.bench + "/" + row.name, row.metrics});
    }
    // Serving metrics survive consolidation so snapshot diffs can gate
    // them; the first serving report wins (in practice there is one:
    // serve_loadtest).
    if (r.serve.enabled && !out.serve.enabled) out.serve = r.serve;
  }
  return out;
}

}  // namespace morph::telemetry
