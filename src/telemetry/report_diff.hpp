// Regression diffing between two BenchReports.
//
// The gate is asymmetric on purpose: all gated metrics are "higher is
// worse" (modeled_cycles, atomics, divergence, ...), improvements are
// reported but never fail, and non-deterministic metrics (wall clock) are
// informational only. morph-report maps DiffResult::exit_code() to the
// process exit status so CI can use `morph-report diff` as a perf gate.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "telemetry/bench_report.hpp"

namespace morph::telemetry {

struct DiffThresholds {
  /// Allowed relative increase (0.02 = +2%) for gated metrics without a
  /// per-metric override.
  double default_rel = 0.02;
  /// Per-metric overrides, e.g. {"modeled_cycles", 0.05}.
  std::vector<std::pair<std::string, double>> per_metric;
  /// Absolute fallback for a zero baseline, where a relative threshold is
  /// meaningless (any increase is +inf percent). A gated metric growing
  /// from 0 regresses only when it grows by more than this. The default 0
  /// keeps zero-baselines strict — health counters (poisonings, deadline
  /// misses) must never grow — while letting CI grant slack explicitly
  /// (--threshold-abs=N) instead of tripping on 0 -> epsilon.
  double default_abs = 0.0;
  /// Per-metric absolute overrides, consulted only for zero baselines.
  std::vector<std::pair<std::string, double>> per_metric_abs;
  /// Metrics that can fail the diff. Everything else (wall_seconds, ...) is
  /// compared for the report but never regresses.
  /// Serve-section latency percentiles are modeled cycles (deterministic),
  /// so they gate like any other modeled metric; poisonings, quarantined
  /// devices, and deadline misses are deterministic health counters that
  /// must never grow.
  std::vector<std::string> gated = {
      "modeled_cycles",      "model_ms",
      "atomics",             "divergence",
      "warp_steps",          "global_accesses",
      "total_work",          "queue_p50_model_ms",
      "queue_p90_model_ms",  "queue_p99_model_ms",
      "poisonings",          "quarantined_devices",
      "deadline_exceeded"};

  double threshold_for(const std::string& metric) const;
  double abs_threshold_for(const std::string& metric) const;
  bool gates(const std::string& metric) const;
};

struct MetricDelta {
  std::string row;
  std::string metric;
  double base = 0.0;
  double current = 0.0;
  double rel_change = 0.0;  ///< (current - base) / base; +-inf when base == 0
                            ///< (display only; zero baselines gate on the
                            ///< absolute threshold, never on rel_change)
  bool gated = false;
  bool regression = false;
};

struct DiffResult {
  std::vector<MetricDelta> deltas;  ///< every metric whose value changed
  /// Rows/metrics present on one side only, and header mismatches.
  std::vector<std::string> structural;
  bool regressed = false;

  bool clean() const { return !regressed && structural.empty(); }
  /// 0 = within thresholds, 1 = regression or structural change.
  int exit_code() const { return clean() ? 0 : 1; }
};

DiffResult diff_reports(const BenchReport& base, const BenchReport& current,
                        const DiffThresholds& thresholds = {});

}  // namespace morph::telemetry
