#include "telemetry/report_diff.hpp"

#include <limits>

namespace morph::telemetry {

double DiffThresholds::threshold_for(const std::string& metric) const {
  for (const auto& [name, rel] : per_metric) {
    if (name == metric) return rel;
  }
  return default_rel;
}

double DiffThresholds::abs_threshold_for(const std::string& metric) const {
  for (const auto& [name, abs] : per_metric_abs) {
    if (name == metric) return abs;
  }
  return default_abs;
}

bool DiffThresholds::gates(const std::string& metric) const {
  for (const std::string& g : gated) {
    if (g == metric) return true;
  }
  return false;
}

namespace {

// One changed metric (caller guarantees cval != bval). A zero baseline
// makes the relative change +-inf whatever the magnitude, so the gate
// falls back to the absolute threshold there; rel_change keeps the inf for
// display.
MetricDelta make_delta(const std::string& row, const std::string& metric,
                       double bval, double cval,
                       const DiffThresholds& thresholds) {
  MetricDelta d;
  d.row = row;
  d.metric = metric;
  d.base = bval;
  d.current = cval;
  d.gated = thresholds.gates(metric);
  if (bval != 0.0) {
    d.rel_change = (cval - bval) / bval;
    d.regression =
        d.gated && d.rel_change > thresholds.threshold_for(metric);
  } else {
    d.rel_change = cval > bval ? std::numeric_limits<double>::infinity()
                               : -std::numeric_limits<double>::infinity();
    d.regression = d.gated && cval > thresholds.abs_threshold_for(metric);
  }
  return d;
}

}  // namespace

DiffResult diff_reports(const BenchReport& base, const BenchReport& current,
                        const DiffThresholds& thresholds) {
  DiffResult out;
  if (base.bench != current.bench) {
    out.structural.push_back("bench name changed: \"" + base.bench +
                             "\" -> \"" + current.bench + "\"");
  }
  if (base.clock_ghz != current.clock_ghz) {
    out.structural.push_back(
        "clock_ghz changed: " + Json::number_to_string(base.clock_ghz) +
        " -> " + Json::number_to_string(current.clock_ghz));
  }

  for (const BenchReport::Row& brow : base.rows) {
    const BenchReport::Row* crow = current.find_row(brow.name);
    if (!crow) {
      out.structural.push_back("row missing in current: \"" + brow.name +
                               "\"");
      continue;
    }
    for (const auto& [metric, bval] : brow.metrics) {
      const double* cptr = crow->find(metric);
      if (!cptr) {
        out.structural.push_back("metric missing in current: \"" + brow.name +
                                 "\" / " + metric);
        continue;
      }
      const double cval = *cptr;
      if (cval == bval) continue;
      MetricDelta d = make_delta(brow.name, metric, bval, cval, thresholds);
      out.regressed = out.regressed || d.regression;
      out.deltas.push_back(std::move(d));
    }
    for (const auto& [metric, cval] : crow->metrics) {
      (void)cval;
      if (!brow.find(metric)) {
        out.structural.push_back("metric new in current: \"" + brow.name +
                                 "\" / " + metric);
      }
    }
  }
  for (const BenchReport::Row& crow : current.rows) {
    if (!base.find_row(crow.name)) {
      out.structural.push_back("row new in current: \"" + crow.name + "\"");
    }
  }

  if (base.serve.enabled != current.serve.enabled) {
    out.structural.push_back(std::string("serve section ") +
                             (current.serve.enabled ? "new in current"
                                                    : "missing in current"));
  } else if (base.serve.enabled) {
    // The serve section diffs like a row named "(serve)".
    for (const auto& [metric, bval] : base.serve.metrics) {
      const double* cptr = current.serve.find(metric);
      if (!cptr) {
        out.structural.push_back("serve metric missing in current: " + metric);
        continue;
      }
      const double cval = *cptr;
      if (cval == bval) continue;
      MetricDelta d = make_delta("(serve)", metric, bval, cval, thresholds);
      out.regressed = out.regressed || d.regression;
      out.deltas.push_back(std::move(d));
    }
    for (const auto& [metric, cval] : current.serve.metrics) {
      (void)cval;
      if (!base.serve.find(metric)) {
        out.structural.push_back("serve metric new in current: " + metric);
      }
    }
  }
  return out;
}

}  // namespace morph::telemetry
