#include "core/conflict.hpp"

namespace morph::core {

MarkTable::MarkTable(std::size_t num_elements) : marks_(num_elements) {
  reset();
}

void MarkTable::resize(std::size_t n) {
  // std::atomic is not movable; rebuild. Resizing happens between rounds,
  // never while a kernel is marking.
  std::vector<std::atomic<std::uint32_t>> bigger(n);
  for (auto& m : bigger) m.store(kNoOwner, std::memory_order_relaxed);
  marks_.swap(bigger);
}

void MarkTable::reset() {
  for (auto& m : marks_) m.store(kNoOwner, std::memory_order_relaxed);
}

void MarkTable::race_mark(gpu::ThreadCtx& ctx, std::uint32_t tid,
                          std::span<const std::uint32_t> elements) {
  for (std::uint32_t e : elements) {
    ctx.global_access();
    marks_[e].store(tid, std::memory_order_relaxed);
  }
  ctx.work(elements.size());
}

bool MarkTable::priority_check(gpu::ThreadCtx& ctx, std::uint32_t tid,
                               std::span<const std::uint32_t> elements) {
  bool owns = true;
  for (std::uint32_t e : elements) {
    ctx.global_access();
    const std::uint32_t tm = marks_[e].load(std::memory_order_relaxed);
    if (tm == tid) continue;
    if (tid < tm && tm != kNoOwner) {
      owns = false;  // higher-id thread has priority; back off
      break;
    }
    // tid > tm (or the mark was cleared): take priority.
    ctx.global_access();
    marks_[e].store(tid, std::memory_order_relaxed);
  }
  ctx.work(elements.size());
  return owns;
}

bool MarkTable::exact_check(gpu::ThreadCtx& ctx, std::uint32_t tid,
                            std::span<const std::uint32_t> elements) const {
  ctx.work(elements.size());
  for (std::uint32_t e : elements) {
    ctx.global_access();
    if (marks_[e].load(std::memory_order_relaxed) != tid) return false;
  }
  return true;
}

bool MarkTable::final_check(gpu::ThreadCtx& ctx, std::uint32_t tid,
                            std::span<const std::uint32_t> elements) const {
  return exact_check(ctx, tid, elements);
}

bool MarkTable::try_claim(gpu::ThreadCtx& ctx, std::uint32_t tid,
                          std::span<const std::uint32_t> elements) {
  // Elements are expected in ascending order (callers sort neighborhoods);
  // claiming in a global order makes lock acquisition deadlock-free.
  std::size_t taken = 0;
  for (; taken < elements.size(); ++taken) {
    std::uint32_t expected = kNoOwner;
    ctx.atomic_op();
    if (!marks_[elements[taken]].compare_exchange_strong(
            expected, tid, std::memory_order_acq_rel)) {
      if (expected != tid) break;  // held by someone else
    }
  }
  if (taken == elements.size()) return true;
  release(ctx, tid, elements.subspan(0, taken));
  return false;
}

void MarkTable::release(gpu::ThreadCtx& ctx, std::uint32_t tid,
                        std::span<const std::uint32_t> elements) {
  for (std::uint32_t e : elements) {
    std::uint32_t expected = tid;
    ctx.atomic_op();
    marks_[e].compare_exchange_strong(expected, kNoOwner,
                                      std::memory_order_acq_rel);
  }
}

}  // namespace morph::core
