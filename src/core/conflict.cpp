#include "core/conflict.hpp"

namespace morph::core {

MarkTable::MarkTable(std::size_t num_elements) : marks_(num_elements) {
  reset();
}

MarkTable::~MarkTable() {
  if (analysis::Sanitizer* s = san_.load(std::memory_order_relaxed)) {
    s->reset_ownership(this);
  }
}

void MarkTable::resize(std::size_t n) {
  // std::atomic is not movable; rebuild. Resizing happens between rounds,
  // never while a kernel is marking.
  std::vector<std::atomic<std::uint32_t>> bigger(n);
  for (auto& m : bigger) m.store(kNoOwner, std::memory_order_relaxed);
  marks_.swap(bigger);
}

void MarkTable::reset() {
  for (auto& m : marks_) m.store(kNoOwner, std::memory_order_relaxed);
  // Round boundary: every neighborhood grant of the finished round is void.
  if (analysis::Sanitizer* s = san_.load(std::memory_order_relaxed)) {
    s->reset_ownership(this);
  }
}

void MarkTable::race_mark(gpu::ThreadCtx& ctx, std::uint32_t tid,
                          std::span<const std::uint32_t> elements) {
  analysis::Sanitizer* const s = observe(ctx);
  for (std::uint32_t e : elements) {
    ctx.global_access();
    // The race phase's contention is resolved by CAS-max: both sides of any
    // overlap are atomic RMWs, which the race check recognizes as ordered.
    if (s) {
      s->on_access(ctx.block(), &marks_[e], sizeof(std::uint32_t),
                   analysis::Sanitizer::Access::kAtomic);
    }
    mark_max(e, tid);
  }
  ctx.work(elements.size());
}

void MarkTable::mark_max(std::uint32_t element, std::uint32_t tid) {
  // Highest-id-wins resolution of the race phase's write contention. The
  // serial simulator's last-writer-wins already picks the highest tid
  // (threads execute in ascending order), so this is behavior-preserving
  // there, and under block-parallel host execution the same winner emerges
  // for every interleaving — the prerequisite for deterministic modeled
  // cycles with host_workers > 1. kNoOwner (all-ones) means "unclaimed",
  // not "maximal", so it is always replaced.
  std::uint32_t cur = marks_[element].load(std::memory_order_relaxed);
  while ((cur == kNoOwner || cur < tid) &&
         !marks_[element].compare_exchange_weak(cur, tid,
                                                std::memory_order_relaxed)) {
  }
}

bool MarkTable::priority_check(gpu::ThreadCtx& ctx, std::uint32_t tid,
                               std::span<const std::uint32_t> elements) {
  if (force_ties_.load(std::memory_order_relaxed)) {
    // Injected livelock: behave as if a higher-priority thread holds an
    // element of every neighborhood. The full inspection work is still
    // charged, as a real tied round would be.
    ctx.work(elements.size());
    return false;
  }
  bool owns = true;
  for (std::uint32_t e : elements) {
    ctx.global_access();
    const std::uint32_t tm = marks_[e].load(std::memory_order_relaxed);
    if (tm == tid) continue;
    if (tid < tm && tm != kNoOwner) {
      owns = false;  // higher-id thread has priority; back off
      break;
    }
    // tid > tm (or the mark was cleared): take priority. After a max-wins
    // race phase this branch is unreachable (every mark a thread wrote is
    // at least its own id); the max-claim keeps it safe for callers that
    // enter the priority phase without racing first.
    ctx.global_access();
    mark_max(e, tid);
  }
  ctx.work(elements.size());
  // A surviving activity believes it owns its neighborhood; record the
  // grant so commit-side on_guarded_write can validate it. With the CAS-max
  // race phase only the maximal tid of each overlap survives, so the
  // overlapping-grant check stays meaningful for the 2-phase ablation arm.
  if (owns) {
    if (analysis::Sanitizer* s = observe(ctx)) {
      s->on_ownership_granted(this, tid, elements);
    }
  }
  return owns;
}

bool MarkTable::exact_check(gpu::ThreadCtx& ctx, std::uint32_t tid,
                            std::span<const std::uint32_t> elements) const {
  ctx.work(elements.size());
  if (force_ties_.load(std::memory_order_relaxed)) return false;
  for (std::uint32_t e : elements) {
    ctx.global_access();
    if (marks_[e].load(std::memory_order_relaxed) != tid) return false;
  }
  if (analysis::Sanitizer* s = observe(ctx)) {
    s->on_ownership_granted(this, tid, elements);
  }
  return true;
}

bool MarkTable::final_check(gpu::ThreadCtx& ctx, std::uint32_t tid,
                            std::span<const std::uint32_t> elements) const {
  return exact_check(ctx, tid, elements);
}

bool MarkTable::try_claim(gpu::ThreadCtx& ctx, std::uint32_t tid,
                          std::span<const std::uint32_t> elements) {
  // Elements are expected in ascending order (callers sort neighborhoods);
  // claiming in a global order makes lock acquisition deadlock-free.
  if (force_ties_.load(std::memory_order_relaxed)) {
    ctx.work(elements.size());
    return false;  // injected livelock: every lock appears contended
  }
  std::size_t taken = 0;
  for (; taken < elements.size(); ++taken) {
    std::uint32_t expected = kNoOwner;
    ctx.atomic_op();
    if (!marks_[elements[taken]].compare_exchange_strong(
            expected, tid, std::memory_order_acq_rel)) {
      if (expected != tid) break;  // held by someone else
    }
  }
  if (taken == elements.size()) {
    if (analysis::Sanitizer* s = observe(ctx)) {
      s->on_ownership_granted(this, tid, elements);
    }
    return true;
  }
  release(ctx, tid, elements.subspan(0, taken));
  return false;
}

void MarkTable::release(gpu::ThreadCtx& ctx, std::uint32_t tid,
                        std::span<const std::uint32_t> elements) {
  for (std::uint32_t e : elements) {
    std::uint32_t expected = tid;
    ctx.atomic_op();
    marks_[e].compare_exchange_strong(expected, kNoOwner,
                                      std::memory_order_acq_rel);
  }
  if (analysis::Sanitizer* s = observe(ctx)) {
    s->on_ownership_released(this, tid, elements);
  }
}

}  // namespace morph::core
