// Thread-divergence reduction (paper Sec. 7.6): move the active elements
// (bad triangles, enabled pointer nodes) to one side of the work array so
// that the threads of a warp either all have work or all don't.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

namespace morph::core {

/// Stable-partitions `ids` so elements satisfying `is_active` come first;
/// returns the number of active elements. Stability keeps spatial locality
/// (important for the pseudo-partitioning of Sec. 7.5).
template <typename Pred>
std::uint32_t pack_active(std::span<std::uint32_t> ids, Pred is_active) {
  auto mid = std::stable_partition(ids.begin(), ids.end(),
                                   [&](std::uint32_t id) { return is_active(id); });
  return static_cast<std::uint32_t>(mid - ids.begin());
}

}  // namespace morph::core
