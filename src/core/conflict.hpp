// Probabilistic 3-phase conflict resolution (paper Sec. 7.3).
//
// Activities whose neighborhoods (sets of graph elements) must be disjoint
// claim their elements through a shared mark table:
//
//   phase 1 (race):          every thread writes its id on every element of
//                            its neighborhood; contention resolves
//                            highest-id-wins (deterministic; see race_mark).
//   phase 2 (prioritycheck): a thread inspects each mark; equal -> keep,
//                            higher id present -> back off, lower id present
//                            -> overwrite with own id.
//   phase 3 (check):         read-only pass; a thread owns its neighborhood
//                            iff every mark equals its id.
//
// A global barrier separates the phases (Device::launch_phases). The paper
// shows the 2-phase race-and-prioritycheck variant admits a race in which
// two overlapping cavities are both accepted; the read-only third phase
// removes it. MarkTable exposes each phase separately so both the correct
// protocol and the racy variants can be exercised and measured.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "gpu/device.hpp"

namespace morph::core {

/// Conflict-resolution schemes compared in the ablation bench.
enum class ConflictScheme {
  kLocks,                 ///< per-element CAS locks (mutual exclusion)
  kTwoPhaseRaceCheck,     ///< race, then exact-match check (no priorities)
  kTwoPhasePriority,      ///< race, then prioritycheck (racy; for study)
  kThreePhase,            ///< race, prioritycheck, read-only check (correct)
};

/// Shared mark table over `num_elements` graph elements.
class MarkTable {
 public:
  static constexpr std::uint32_t kNoOwner = 0xffffffffu;

  explicit MarkTable(std::size_t num_elements);

  /// The ownership shadow is keyed by the table address; a successor table
  /// constructed at the same address must not inherit this one's grants.
  ~MarkTable();
  MarkTable(const MarkTable&) = delete;
  MarkTable& operator=(const MarkTable&) = delete;

  std::size_t size() const { return marks_.size(); }
  void resize(std::size_t n);
  void reset();

  std::uint32_t owner(std::uint32_t element) const {
    return marks_[element].load(std::memory_order_relaxed);
  }

  /// Livelock-injection mode (FaultClass::kLivelock): while set, every
  /// ownership check reports a priority tie, so no activity wins its
  /// neighborhood and a conflict-resolution round makes no progress — the
  /// "terminates only with high probability" edge of the paper's Sec. 7.2
  /// protocol made deterministic. Drivers arm it per round from the fault
  /// injector; the livelock watchdog must then detect the stall.
  void set_force_ties(bool on) {
    force_ties_.store(on, std::memory_order_relaxed);
  }
  bool force_ties() const {
    return force_ties_.load(std::memory_order_relaxed);
  }

  /// Phase 1: mark every element of the neighborhood with `tid`. Contention
  /// resolves highest-id-wins (a CAS-max), which matches the serial
  /// execution order's last-writer-wins and is deterministic under any
  /// host-thread interleaving.
  void race_mark(gpu::ThreadCtx& ctx, std::uint32_t tid,
                 std::span<const std::uint32_t> elements);

  /// Phase 2: priority re-mark. Returns false if a higher-priority thread
  /// holds any element (the caller should back off); true means the thread
  /// still believes it owns the neighborhood. Mutates marks.
  bool priority_check(gpu::ThreadCtx& ctx, std::uint32_t tid,
                      std::span<const std::uint32_t> elements);

  /// Phase 2 without priorities (the plain race-and-check protocol):
  /// read-only; owns iff every mark equals tid.
  bool exact_check(gpu::ThreadCtx& ctx, std::uint32_t tid,
                   std::span<const std::uint32_t> elements) const;

  /// Phase 3: read-only final check; identical predicate to exact_check but
  /// kept separate so call sites document the protocol they implement.
  bool final_check(gpu::ThreadCtx& ctx, std::uint32_t tid,
                   std::span<const std::uint32_t> elements) const;

  // --- mutual-exclusion alternative (the scheme the paper argues is
  // ill-suited to GPUs; kept for the ablation bench) ---

  /// Attempts to CAS-claim every element from kNoOwner to tid, in ascending
  /// id order (deadlock-free). On failure releases what was taken and
  /// returns false. Every CAS and release is an atomic charged to ctx.
  bool try_claim(gpu::ThreadCtx& ctx, std::uint32_t tid,
                 std::span<const std::uint32_t> elements);

  /// Releases elements owned by tid (after a successful claim).
  void release(gpu::ThreadCtx& ctx, std::uint32_t tid,
               std::span<const std::uint32_t> elements);

 private:
  /// CAS-max claim of one element (kNoOwner counts as unclaimed).
  void mark_max(std::uint32_t element, std::uint32_t tid);

  /// Latches the sanitizer of the device driving this table (hooks only see
  /// a ThreadCtx) so reset()/resize() — which have no ctx — can clear the
  /// ownership shadow. Same value from every worker; atomic for TSan.
  analysis::Sanitizer* observe(const gpu::ThreadCtx& ctx) const {
    analysis::Sanitizer* s = ctx.san();
    if (s) san_.store(s, std::memory_order_relaxed);
    return s;
  }

  // Atomics: on the real GPU the race phase is a benign word-sized data
  // race; under host threads we need defined behaviour.
  std::vector<std::atomic<std::uint32_t>> marks_;
  std::atomic<bool> force_ties_{false};
  mutable std::atomic<analysis::Sanitizer*> san_{nullptr};
};

}  // namespace morph::core
