// Subgraph addition and deletion strategies (paper Sec. 7.1 / 7.2).
//
// The mechanics live in gpu::DeviceBuffer (Pre-allocation / Host-Only /
// Kernel-Host growth) and gpu::DeviceHeap (Kernel-Only chunked malloc). This
// header names the strategies, and provides SlotRecycler, the "Recycle"
// deletion strategy DMR uses: deleted element slots are remembered and
// handed back to threads creating new elements, trading compaction overhead
// against allocation cost.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/sanitizer.hpp"
#include "support/check.hpp"

namespace morph::core {

enum class AdditionStrategy {
  kPreAlloc,    ///< allocate the maximum up front
  kHostOnly,    ///< host pre-calculates the next kernel's needs
  kKernelHost,  ///< kernel piggybacks the size computation, host allocates
  kKernelOnly,  ///< device-side malloc (chunked)
};

enum class DeletionStrategy {
  kMark,      ///< tombstone flags; space is never reclaimed
  kExplicit,  ///< free the memory (DeviceHeap::free_chunk)
  kRecycle,   ///< reuse deleted slots for new elements (SlotRecycler)
};

/// Lock-free pool of recyclable element slots. Threads freeing slots push
/// them; threads creating elements try take() before extending the array.
///
/// Concurrency: multi-producer multi-consumer, with the same claim-then-
/// publish index protocol as gpu::GlobalWorklist. A give() claims a slot
/// with a capacity-bounded CAS on `tail_` (so a full pool never publishes
/// an index past capacity, even transiently, under any number of
/// overflowing producers), writes the entry, then publishes it by advancing
/// `commit_` in claim order; take() is bounded by `commit_`, so it can
/// neither overrun the published entries nor read a write in flight.
class SlotRecycler {
 public:
  explicit SlotRecycler(std::size_t capacity)
      : slots_(capacity), tail_(0), commit_(0), head_(0) {}

  /// Shadow state is keyed by the pool address; a successor SlotRecycler
  /// constructed at this address must not inherit this pool's slots.
  ~SlotRecycler() {
    if (analysis::Sanitizer* s = sanitizer()) s->forget_pool(this);
  }
  SlotRecycler(const SlotRecycler&) = delete;
  SlotRecycler& operator=(const SlotRecycler&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Attaches the hazard sanitizer (analysis/sanitizer.hpp): give/take then
  /// maintain the free-pool shadow, so a slot recycled twice — or mutated
  /// while sitting in the pool (on_slot_write from the owning app) — is
  /// reported. Null detaches. The sanitizer must outlive the pool (the
  /// destructor tells it to forget this address).
  void set_sanitizer(analysis::Sanitizer* s) {
    san_.store(s, std::memory_order_relaxed);
    if (s) s->forget_pool(this);
  }
  analysis::Sanitizer* sanitizer() const {
    return san_.load(std::memory_order_relaxed);
  }

  /// Records a freed slot. Returns false if the pool is full (the slot is
  /// then simply leaked to the mark strategy — safe, just less thrifty).
  bool give(std::uint32_t slot) {
    std::uint64_t t = tail_.load(std::memory_order_relaxed);
    do {
      if (t >= slots_.size()) return false;
    } while (!tail_.compare_exchange_weak(t, t + 1,
                                          std::memory_order_relaxed));
    if (analysis::Sanitizer* s = sanitizer()) s->on_slot_recycled(this, slot);
    slots_[t].store(slot, std::memory_order_relaxed);
    std::uint64_t expected = t;
    while (!commit_.compare_exchange_weak(expected, t + 1,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
      expected = t;
    }
    return true;
  }

  /// Takes a recycled slot if one is available.
  std::optional<std::uint32_t> take() {
    for (;;) {
      std::uint64_t h = head_.load(std::memory_order_relaxed);
      const std::uint64_t c =
          std::min<std::uint64_t>(commit_.load(std::memory_order_acquire),
                                  slots_.size());
      if (h >= c) return std::nullopt;
      if (head_.compare_exchange_weak(h, h + 1, std::memory_order_acq_rel)) {
        const std::uint32_t slot = slots_[h].load(std::memory_order_relaxed);
        if (analysis::Sanitizer* s = sanitizer()) {
          s->on_slot_reclaimed(this, slot);
        }
        return slot;
      }
    }
  }

  std::size_t available() const {
    const std::uint64_t c =
        std::min<std::uint64_t>(commit_.load(std::memory_order_relaxed),
                                slots_.size());
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    return c > h ? static_cast<std::size_t>(c - h) : 0;
  }

  void clear() {
    tail_.store(0, std::memory_order_relaxed);
    commit_.store(0, std::memory_order_relaxed);
    head_.store(0, std::memory_order_relaxed);
    if (analysis::Sanitizer* s = sanitizer()) s->forget_pool(this);
  }

 private:
  std::vector<std::atomic<std::uint32_t>> slots_;
  std::atomic<std::uint64_t> tail_;    ///< next slot to reserve
  std::atomic<std::uint64_t> commit_;  ///< entries published, <= tail_
  std::atomic<std::uint64_t> head_;    ///< next index to take, <= commit_
  std::atomic<analysis::Sanitizer*> san_{nullptr};
};

}  // namespace morph::core
