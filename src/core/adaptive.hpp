// Adaptive parallelism (paper Sec. 7.4).
//
// Morph algorithms' available parallelism changes over the run (Fig. 2), so
// a fixed kernel configuration wastes the machine early or thrashes it with
// conflicts late. The paper's scheme: start with a modest threads-per-block,
// double it on each of the first few iterations, and set the block count
// once per run proportional to the input size (3x..50x the SM count).
#pragma once

#include <algorithm>
#include <cstdint>

#include "gpu/config.hpp"

namespace morph::core {

class AdaptiveLauncher {
 public:
  /// `initial_tpb` threads per block, doubled after each of the first
  /// `doubling_iters` calls to next(), capped at `max_tpb`. `sm_factor`
  /// blocks per SM (paper: 3..50 depending on algorithm and input).
  AdaptiveLauncher(std::uint32_t initial_tpb, std::uint32_t doubling_iters,
                   double sm_factor, std::uint32_t max_tpb = 1024)
      : tpb_(initial_tpb),
        max_tpb_(max_tpb),
        doubling_left_(doubling_iters),
        sm_factor_(sm_factor) {
    MORPH_CHECK(initial_tpb >= 1 && initial_tpb <= max_tpb);
    MORPH_CHECK(sm_factor > 0.0);
  }

  /// Configuration for the next kernel invocation. The block count is fixed
  /// per run (set on the first call from the device's SM count); only the
  /// threads-per-block adapts.
  gpu::LaunchConfig next(const gpu::DeviceConfig& dev) {
    if (blocks_ == 0) {
      blocks_ = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(sm_factor_ * dev.num_sms));
    }
    gpu::LaunchConfig lc{blocks_, tpb_};
    if (doubling_left_ > 0) {
      --doubling_left_;
      tpb_ = std::min(max_tpb_, tpb_ * 2);
    }
    return lc;
  }

  std::uint32_t current_tpb() const { return tpb_; }
  std::uint32_t blocks() const { return blocks_; }

 private:
  std::uint32_t tpb_;
  std::uint32_t max_tpb_;
  std::uint32_t doubling_left_;
  double sm_factor_;
  std::uint32_t blocks_ = 0;
};

/// Fixed configuration helper for the non-adaptive ablation arm.
inline gpu::LaunchConfig fixed_config(const gpu::DeviceConfig& dev,
                                      double sm_factor, std::uint32_t tpb) {
  return {std::max<std::uint32_t>(
              1, static_cast<std::uint32_t>(sm_factor * dev.num_sms)),
          tpb};
}

}  // namespace morph::core
