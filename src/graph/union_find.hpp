// Disjoint-set union-find with path compression and union by size.
//
// Used by the Kruskal verifier and by the "Galois 2.1.5" MST baseline the
// paper describes ("a fast union-find data structure that maintains groups
// of nodes [and] keeps the graph unmodified").
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "support/check.hpp"

namespace morph::graph {

class UnionFind {
 public:
  explicit UnionFind(std::uint32_t n) : parent_(n), size_(n, 1), sets_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    MORPH_CHECK(x < parent_.size());
    std::uint32_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {  // path compression
      const std::uint32_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Returns true if x and y were in different sets (and merges them).
  bool unite(std::uint32_t x, std::uint32_t y) {
    std::uint32_t rx = find(x), ry = find(y);
    if (rx == ry) return false;
    if (size_[rx] < size_[ry]) std::swap(rx, ry);
    parent_[ry] = rx;
    size_[rx] += size_[ry];
    --sets_;
    return true;
  }

  bool same(std::uint32_t x, std::uint32_t y) { return find(x) == find(y); }
  std::uint32_t num_sets() const { return sets_; }
  std::uint32_t set_size(std::uint32_t x) { return size_[find(x)]; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::uint32_t sets_;
};

}  // namespace morph::graph
