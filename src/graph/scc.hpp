// Strongly connected components (iterative Tarjan).
//
// Used by the points-to analysis' offline cycle-elimination pass: variables
// on a copy-edge cycle provably share their points-to sets, so the whole
// cycle can be collapsed into one representative before solving — the
// optimization the paper notes its CPU baselines perform ("online cycle
// elimination and topological sort") but its GPU code omits.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace morph::graph {

struct SccResult {
  /// Component id of each node (ids are dense, 0..num_components-1, in
  /// reverse topological order of the condensation).
  std::vector<std::uint32_t> component;
  std::uint32_t num_components = 0;
};

/// Tarjan's algorithm, iterative (safe for deep graphs).
SccResult strongly_connected_components(const CsrGraph& g);

}  // namespace morph::graph
