// Compressed-sparse-row graph (paper Sec. 6).
//
// All edges are stored contiguously, with the edges of a node stored
// together; each node records a start offset into the edge array. Directed
// by construction; undirected graphs store each edge twice (once per
// direction), as the paper does for MST and SP.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace morph::graph {

using Node = std::uint32_t;
using EdgeId = std::uint64_t;
using Weight = std::uint32_t;

/// One directed edge of an edge list (input to the CSR builder).
struct Edge {
  Node src = 0;
  Node dst = 0;
  Weight weight = 1;
};

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds a directed CSR from an edge list. Node count must bound all ids.
  static CsrGraph from_edges(Node num_nodes, std::span<const Edge> edges,
                             bool with_weights = true);

  /// Builds an undirected CSR: each input edge is inserted in both
  /// directions. Self loops are rejected.
  static CsrGraph from_undirected_edges(Node num_nodes,
                                        std::span<const Edge> edges,
                                        bool with_weights = true);

  Node num_nodes() const { return static_cast<Node>(row_.size() - 1); }
  EdgeId num_edges() const { return static_cast<EdgeId>(col_.size()); }
  bool has_weights() const { return !weight_.empty(); }

  EdgeId row_begin(Node n) const { return row_[n]; }
  EdgeId row_end(Node n) const { return row_[n + 1]; }
  std::uint32_t degree(Node n) const {
    return static_cast<std::uint32_t>(row_[n + 1] - row_[n]);
  }

  Node edge_dst(EdgeId e) const { return col_[e]; }
  Weight edge_weight(EdgeId e) const {
    return weight_.empty() ? 1 : weight_[e];
  }

  std::span<const Node> neighbors(Node n) const {
    return {col_.data() + row_[n], col_.data() + row_[n + 1]};
  }
  std::span<const Weight> weights(Node n) const {
    MORPH_CHECK(has_weights());
    return {weight_.data() + row_[n], weight_.data() + row_[n + 1]};
  }

  /// Average degree; the density measure behind the paper's MST crossover.
  double avg_degree() const {
    return num_nodes() == 0
               ? 0.0
               : static_cast<double>(num_edges()) / num_nodes();
  }

  /// Returns the graph with node ids renumbered by `perm` (new id =
  /// perm[old id]). Used by the memory-layout optimization.
  CsrGraph permuted(std::span<const Node> perm) const;

  /// Structural sanity: offsets monotone, targets in range, and (optionally)
  /// symmetric — every edge (u,v,w) has a matching (v,u,w).
  bool validate(bool require_symmetric = false) const;

 private:
  std::vector<EdgeId> row_{0};  ///< size num_nodes+1
  std::vector<Node> col_;
  std::vector<Weight> weight_;
};

}  // namespace morph::graph
