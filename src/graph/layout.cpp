#include "graph/layout.hpp"

#include <cmath>
#include <deque>

namespace morph::graph {

std::vector<Node> bfs_order(const CsrGraph& g) {
  const Node n = g.num_nodes();
  std::vector<Node> perm(n, n);  // n = unvisited sentinel
  Node next_id = 0;
  std::deque<Node> queue;
  for (Node root = 0; root < n; ++root) {
    if (perm[root] != n) continue;
    perm[root] = next_id++;
    queue.push_back(root);
    while (!queue.empty()) {
      const Node u = queue.front();
      queue.pop_front();
      for (Node v : g.neighbors(u)) {
        if (perm[v] == n) {
          perm[v] = next_id++;
          queue.push_back(v);
        }
      }
    }
  }
  return perm;
}

double layout_cost(const CsrGraph& g) {
  if (g.num_edges() == 0) return 0.0;
  double sum = 0.0;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (Node v : g.neighbors(u)) {
      sum += std::abs(static_cast<double>(u) - static_cast<double>(v));
    }
  }
  return sum / static_cast<double>(g.num_edges());
}

}  // namespace morph::graph
