#include "graph/csr.hpp"

#include <algorithm>
#include <map>

namespace morph::graph {

CsrGraph CsrGraph::from_edges(Node num_nodes, std::span<const Edge> edges,
                              bool with_weights) {
  CsrGraph g;
  g.row_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const Edge& e : edges) {
    MORPH_CHECK_MSG(e.src < num_nodes && e.dst < num_nodes,
                    "edge endpoint out of range");
    ++g.row_[e.src + 1];
  }
  for (std::size_t i = 1; i < g.row_.size(); ++i) g.row_[i] += g.row_[i - 1];

  g.col_.resize(edges.size());
  if (with_weights) g.weight_.resize(edges.size());
  std::vector<EdgeId> cursor(g.row_.begin(), g.row_.end() - 1);
  for (const Edge& e : edges) {
    const EdgeId slot = cursor[e.src]++;
    g.col_[slot] = e.dst;
    if (with_weights) g.weight_[slot] = e.weight;
  }
  return g;
}

CsrGraph CsrGraph::from_undirected_edges(Node num_nodes,
                                         std::span<const Edge> edges,
                                         bool with_weights) {
  std::vector<Edge> both;
  both.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    MORPH_CHECK_MSG(e.src != e.dst, "self loop in undirected graph");
    both.push_back(e);
    both.push_back({e.dst, e.src, e.weight});
  }
  return from_edges(num_nodes, both, with_weights);
}

CsrGraph CsrGraph::permuted(std::span<const Node> perm) const {
  MORPH_CHECK(perm.size() == num_nodes());
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (Node u = 0; u < num_nodes(); ++u) {
    for (EdgeId e = row_begin(u); e < row_end(u); ++e) {
      edges.push_back({perm[u], perm[edge_dst(e)], edge_weight(e)});
    }
  }
  return from_edges(num_nodes(), edges, has_weights());
}

bool CsrGraph::validate(bool require_symmetric) const {
  for (std::size_t i = 1; i < row_.size(); ++i) {
    if (row_[i] < row_[i - 1]) return false;
  }
  if (row_.back() != col_.size()) return false;
  for (Node c : col_) {
    if (c >= num_nodes()) return false;
  }
  if (require_symmetric) {
    // Multiset of (u,v,w) must equal multiset of (v,u,w).
    std::map<std::tuple<Node, Node, Weight>, std::int64_t> count;
    for (Node u = 0; u < num_nodes(); ++u) {
      for (EdgeId e = row_begin(u); e < row_end(u); ++e) {
        const Node v = edge_dst(e);
        const Weight w = edge_weight(e);
        count[{u, v, w}] += 1;
        count[{v, u, w}] -= 1;
      }
    }
    for (const auto& [key, c] : count) {
      if (c != 0) return false;
    }
  }
  return true;
}

}  // namespace morph::graph
