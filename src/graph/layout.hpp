// Memory-layout optimization (paper Sec. 6.1): renumber nodes so that
// neighbors in the graph are also neighbors in memory, improving spatial
// locality and making local-worklist chunks behave like graph partitions
// (Sec. 7.5). We implement the scan as a BFS traversal, which assigns
// consecutive ids to topologically adjacent nodes.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace morph::graph {

/// Returns perm with perm[old] = new, from a BFS over the graph (all
/// components, lowest-id roots first).
std::vector<Node> bfs_order(const CsrGraph& g);

/// Locality score: mean |new(u) - new(v)| over all edges under the identity
/// layout (lower is better). Used to verify the optimization in tests and
/// the ablation bench.
double layout_cost(const CsrGraph& g);

}  // namespace morph::graph
