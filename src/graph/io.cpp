#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <unordered_set>

#include "support/check.hpp"

namespace morph::graph {

void write_dimacs(std::ostream& os, Node num_nodes,
                  const std::vector<Edge>& edges) {
  os << "p sp " << num_nodes << ' ' << edges.size() << '\n';
  for (const Edge& e : edges) {
    os << "a " << (e.src + 1) << ' ' << (e.dst + 1) << ' ' << e.weight
       << '\n';
  }
}

std::vector<Edge> read_dimacs(std::istream& is, Node& num_nodes) {
  num_nodes = 0;
  std::vector<Edge> edges;
  std::unordered_set<std::uint64_t> seen;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char kind;
    ls >> kind;
    if (kind == 'p') {
      std::string tag;
      std::uint64_t n = 0, m = 0;
      ls >> tag >> n >> m;
      MORPH_CHECK_MSG(n > 0, "bad DIMACS problem line");
      num_nodes = static_cast<Node>(n);
      edges.reserve(m);
    } else if (kind == 'a') {
      std::uint64_t u = 0, v = 0, w = 1;
      ls >> u >> v >> w;
      MORPH_CHECK_MSG(u >= 1 && v >= 1, "DIMACS nodes are 1-indexed");
      if (u == v) continue;
      Node a = static_cast<Node>(u - 1), b = static_cast<Node>(v - 1);
      const std::uint64_t key =
          (static_cast<std::uint64_t>(std::min(a, b)) << 32) |
          std::max(a, b);
      if (!seen.insert(key).second) continue;
      edges.push_back({a, b, static_cast<Weight>(w)});
    }
  }
  return edges;
}

}  // namespace morph::graph
