#include "graph/generators.hpp"

#include "support/morton.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace morph::graph {

namespace {

/// Canonical key of an undirected edge for dedup.
std::uint64_t edge_key(Node a, Node b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

std::vector<Edge> gen_random_uniform(Node num_nodes, EdgeId num_edges,
                                     Weight max_weight, std::uint64_t seed) {
  MORPH_CHECK(num_nodes >= 2);
  MORPH_CHECK_MSG(num_edges <= static_cast<EdgeId>(num_nodes) *
                                   (num_nodes - 1) / 2,
                  "more edges than a simple graph admits");
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  while (edges.size() < num_edges) {
    const Node a = static_cast<Node>(rng.next_below(num_nodes));
    const Node b = static_cast<Node>(rng.next_below(num_nodes));
    if (a == b) continue;
    if (!seen.insert(edge_key(a, b)).second) continue;
    edges.push_back(
        {a, b, static_cast<Weight>(1 + rng.next_below(max_weight))});
  }
  return edges;
}

std::vector<Edge> gen_rmat(std::uint32_t scale, EdgeId num_edges,
                           std::uint64_t seed, RmatParams p) {
  MORPH_CHECK(scale >= 1 && scale <= 30);
  MORPH_CHECK(p.a + p.b + p.c < 1.0);
  const Node n = Node{1} << scale;
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = num_edges * 64;
  while (edges.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    Node lo_r = 0, lo_c = 0;
    Node size = n;
    while (size > 1) {
      const double u = rng.next_double();
      size /= 2;
      if (u < p.a) {
        // top-left quadrant
      } else if (u < p.a + p.b) {
        lo_c += size;
      } else if (u < p.a + p.b + p.c) {
        lo_r += size;
      } else {
        lo_r += size;
        lo_c += size;
      }
    }
    if (lo_r == lo_c) continue;
    if (!seen.insert(edge_key(lo_r, lo_c)).second) continue;
    edges.push_back({lo_r, lo_c,
                     static_cast<Weight>(1 + rng.next_below(p.max_weight))});
  }
  return edges;
}

std::vector<Edge> gen_grid2d(std::uint32_t side, Weight max_weight,
                             std::uint64_t seed) {
  MORPH_CHECK(side >= 2);
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(side) * side * 2);
  auto id = [side](std::uint32_t r, std::uint32_t c) {
    return static_cast<Node>(r * side + c);
  };
  for (std::uint32_t r = 0; r < side; ++r) {
    for (std::uint32_t c = 0; c < side; ++c) {
      if (c + 1 < side)
        edges.push_back({id(r, c), id(r, c + 1),
                         static_cast<Weight>(1 + rng.next_below(max_weight))});
      if (r + 1 < side)
        edges.push_back({id(r, c), id(r + 1, c),
                         static_cast<Weight>(1 + rng.next_below(max_weight))});
    }
  }
  return edges;
}

std::vector<Edge> gen_road_like(Node num_nodes, double avg_degree,
                                std::uint64_t seed) {
  MORPH_CHECK(num_nodes >= 2);
  MORPH_CHECK(avg_degree >= 2.0);
  Rng rng(seed);
  std::vector<double> xs(num_nodes), ys(num_nodes);
  for (Node i = 0; i < num_nodes; ++i) {
    xs[i] = rng.next_double();
    ys[i] = rng.next_double();
  }
  // Sort nodes along a Morton curve: spatially close nodes become close in
  // the order, so "connect to nearby order positions" approximates a planar
  // near-neighbor graph.
  std::vector<Node> order(num_nodes);
  for (Node i = 0; i < num_nodes; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](Node a, Node b) {
    return morton_unit(xs[a], ys[a]) < morton_unit(xs[b], ys[b]);
  });

  std::unordered_set<std::uint64_t> seen;
  std::vector<Edge> edges;
  auto euclid_weight = [&](Node a, Node b) {
    const double dx = xs[a] - xs[b], dy = ys[a] - ys[b];
    const double d = std::sqrt(dx * dx + dy * dy);
    return static_cast<Weight>(1 + d * 100000.0);
  };
  auto add = [&](Node a, Node b) {
    if (a == b) return;
    if (!seen.insert(edge_key(a, b)).second) return;
    edges.push_back({a, b, euclid_weight(a, b)});
  };
  // Backbone: consecutive Morton neighbors (guarantees connectivity).
  for (Node i = 0; i + 1 < num_nodes; ++i) add(order[i], order[i + 1]);
  // Extra local links until the target density is met.
  const EdgeId target =
      static_cast<EdgeId>(avg_degree * num_nodes / 2.0);
  std::uint64_t attempts = 0;
  while (edges.size() < target && attempts < target * 64) {
    ++attempts;
    const Node i = static_cast<Node>(rng.next_below(num_nodes));
    const std::int64_t offset = rng.next_range(2, 8);
    if (static_cast<std::uint64_t>(i) + offset >= num_nodes) continue;
    add(order[i], order[i + static_cast<Node>(offset)]);
  }
  return edges;
}

std::vector<Edge> gen_clustered(Node num_nodes, std::uint32_t cluster,
                                double avg_degree, Weight max_weight,
                                std::uint64_t seed) {
  MORPH_CHECK(num_nodes >= 2);
  MORPH_CHECK_MSG(cluster >= 2 && cluster <= 4096 &&
                      (cluster & (cluster - 1)) == 0,
                  "cluster must be a power of two in [2, 4096]");
  MORPH_CHECK(avg_degree >= 1.0 && max_weight >= 1);
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_nodes * avg_degree / 2) +
                num_nodes);
  const auto weight = [&] {
    return static_cast<Weight>(1 + rng.next_below(max_weight));
  };
  for (Node start = 0; start < num_nodes; start += cluster) {
    const Node end = std::min<Node>(start + cluster, num_nodes);
    const Node size = end - start;
    if (size < 2) continue;
    // Backbone: each node attaches to an earlier node in its block, so the
    // block starts connected.
    for (Node i = start + 1; i < end; ++i) {
      const Node j = start + static_cast<Node>(rng.next_below(i - start));
      seen.insert(edge_key(i, j));
      edges.push_back({i, j, weight()});
    }
    // Extra intra-block edges up to the target degree.
    const std::uint64_t target =
        static_cast<std::uint64_t>(size * avg_degree / 2);
    std::uint64_t attempts = 0;
    while (edges.size() < target * (start / cluster + 1) &&
           attempts < target * 16) {
      ++attempts;
      const Node a = start + static_cast<Node>(rng.next_below(size));
      const Node b = start + static_cast<Node>(rng.next_below(size));
      if (a == b) continue;
      if (!seen.insert(edge_key(a, b)).second) continue;
      edges.push_back({a, b, weight()});
    }
  }
  return edges;
}

Node max_node_plus_one(const std::vector<Edge>& edges) {
  Node m = 0;
  for (const Edge& e : edges) m = std::max({m, e.src, e.dst});
  return m + 1;
}

}  // namespace morph::graph
