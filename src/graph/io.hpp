// DIMACS-style graph IO (the format the paper's road-network inputs ship
// in): "p sp <n> <m>" header and "a <u> <v> <w>" arc lines, 1-indexed.
#pragma once

#include <iosfwd>
#include <vector>

#include "graph/csr.hpp"

namespace morph::graph {

/// Writes an undirected edge list as DIMACS (each edge once).
void write_dimacs(std::ostream& os, Node num_nodes,
                  const std::vector<Edge>& edges);

/// Reads a DIMACS file; returns the edge list and sets num_nodes. Arcs that
/// appear in both directions are collapsed to one undirected edge.
std::vector<Edge> read_dimacs(std::istream& is, Node& num_nodes);

}  // namespace morph::graph
