// Workload graph generators matching the paper's MST inputs (Fig. 11):
// road networks (USA, W), RMAT, uniform random, and 2-d grids. All
// generators are deterministic in the seed and produce undirected,
// self-loop-free weighted edge lists.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "support/rng.hpp"

namespace morph::graph {

/// Uniform random graph: `num_edges` distinct undirected edges over
/// `num_nodes` nodes (the paper's Random4-20 family: n=2^20, m=4n).
std::vector<Edge> gen_random_uniform(Node num_nodes, EdgeId num_edges,
                                     Weight max_weight, std::uint64_t seed);

/// RMAT generator (a=0.45, b=0.22, c=0.22, d=0.11 by default), producing a
/// skewed-degree "denser" graph like the paper's RMAT20.
struct RmatParams {
  double a = 0.45, b = 0.22, c = 0.22;  // d = 1-a-b-c
  Weight max_weight = 100;
};
std::vector<Edge> gen_rmat(std::uint32_t scale, EdgeId num_edges,
                           std::uint64_t seed, RmatParams params = {});

/// 2-d grid with 4-neighborhood (grid-2d-k has 2^k nodes in the paper; here
/// the side length is given directly). Weights uniform in [1, max_weight].
std::vector<Edge> gen_grid2d(std::uint32_t side, Weight max_weight,
                             std::uint64_t seed);

/// Road-network-like graph: random points in the unit square, each connected
/// to a few spatial near-neighbors, plus a Morton-order backbone that makes
/// the graph connected. Low average degree (~2.4 per the DIMACS USA network)
/// and Euclidean-correlated weights.
std::vector<Edge> gen_road_like(Node num_nodes, double avg_degree,
                                std::uint64_t seed);

/// Clustered graph for the incremental-MST workloads: nodes are partitioned
/// into aligned blocks of `cluster` nodes (a power of two <= 4096) and every
/// edge stays inside its block, each block connected by a random backbone
/// plus extra edges up to ~`avg_degree`. The alignment keeps every
/// endpoint-pair xor under 4096, which makes mst's 64-bit edge_key
/// collision-free — the MSF is then unique, the precondition for
/// byte-identical incremental-vs-scratch comparisons (mst/incremental.hpp).
std::vector<Edge> gen_clustered(Node num_nodes, std::uint32_t cluster,
                                double avg_degree, Weight max_weight,
                                std::uint64_t seed);

/// Number of nodes an edge list spans (max endpoint + 1); convenience for
/// generator output.
Node max_node_plus_one(const std::vector<Edge>& edges);

}  // namespace morph::graph
