#include "graph/scc.hpp"

namespace morph::graph {

SccResult strongly_connected_components(const CsrGraph& g) {
  const Node n = g.num_nodes();
  SccResult res;
  res.component.assign(n, ~0u);

  constexpr std::uint32_t kUnvisited = ~0u;
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<Node> stack;          // Tarjan's component stack
  std::uint32_t next_index = 0;

  // Explicit DFS frame: node and the position within its neighbor list.
  struct Frame {
    Node node;
    EdgeId next_edge;
  };
  std::vector<Frame> dfs;

  for (Node root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, g.row_begin(root)});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;

    while (!dfs.empty()) {
      Frame& f = dfs.back();
      if (f.next_edge < g.row_end(f.node)) {
        const Node w = g.edge_dst(f.next_edge++);
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          dfs.push_back({w, g.row_begin(w)});
        } else if (on_stack[w]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[w]);
        }
      } else {
        const Node v = f.node;
        dfs.pop_back();
        if (!dfs.empty()) {
          lowlink[dfs.back().node] =
              std::min(lowlink[dfs.back().node], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          // v is a component root; pop the component.
          for (;;) {
            const Node w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            res.component[w] = res.num_components;
            if (w == v) break;
          }
          ++res.num_components;
        }
      }
    }
  }
  return res;
}

}  // namespace morph::graph
