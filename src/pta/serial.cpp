// Serial reference solver and the multicore (push-based) baseline.
#include <algorithm>

#include "pta/solve.hpp"
#include "support/timer.hpp"

namespace morph::pta {

namespace {

/// dst |= src (sorted-set union). Returns true if dst grew; adds the
/// traversal cost to *ops.
bool union_into(std::vector<Var>& dst, const std::vector<Var>& src,
                std::uint64_t* ops) {
  if (ops) *ops += dst.size() + src.size() + 1;
  if (src.empty()) return false;
  std::vector<Var> merged;
  merged.reserve(dst.size() + src.size());
  std::set_union(dst.begin(), dst.end(), src.begin(), src.end(),
                 std::back_inserter(merged));
  if (merged.size() == dst.size()) return false;
  dst.swap(merged);
  return true;
}

bool insert_into(std::vector<Var>& dst, Var v, std::uint64_t* ops) {
  if (ops) *ops += 1;
  auto it = std::lower_bound(dst.begin(), dst.end(), v);
  if (it != dst.end() && *it == v) return false;
  dst.insert(it, v);
  return true;
}

}  // namespace

PtsSets solve_serial(const ConstraintSet& cs, PtaStats* stats) {
  Timer timer;
  PtaStats st;
  PtsSets pts(cs.num_vars);

  for (const Constraint& c : cs.constraints) {
    if (c.kind == ConstraintKind::kAddressOf) {
      insert_into(pts[c.dst], c.src, &st.counted_work);
    }
  }

  std::vector<Var> snapshot;
  bool changed = true;
  while (changed) {
    changed = false;
    ++st.iterations;
    for (const Constraint& c : cs.constraints) {
      switch (c.kind) {
        case ConstraintKind::kAddressOf:
          break;
        case ConstraintKind::kCopy:
          if (c.dst != c.src) {
            changed |= union_into(pts[c.dst], pts[c.src], &st.counted_work);
          }
          break;
        case ConstraintKind::kLoad:
          // p = *q: pts(p) |= pts(v) for v in pts(q).
          snapshot = pts[c.src];
          for (Var v : snapshot) {
            if (v != c.dst) {
              changed |= union_into(pts[c.dst], pts[v], &st.counted_work);
            }
          }
          break;
        case ConstraintKind::kStore:
          // *p = q: pts(v) |= pts(q) for v in pts(p).
          snapshot = pts[c.dst];
          for (Var v : snapshot) {
            if (v != c.src) {
              changed |= union_into(pts[v], pts[c.src], &st.counted_work);
            }
          }
          break;
      }
    }
  }

  for (const auto& s : pts) st.pts_total += s.size();
  st.wall_seconds = timer.seconds();
  st.modeled_cycles = static_cast<double>(st.counted_work);
  if (stats) *stats = st;
  return pts;
}

PtsSets solve_multicore(const ConstraintSet& cs, cpu::ParallelRunner& runner,
                        PtaStats* stats) {
  Timer timer;
  PtaStats st;
  PtsSets pts(cs.num_vars);

  runner.round(cs.constraints.size(), [&](cpu::WorkerCtx& ctx,
                                          std::uint64_t i) {
    const Constraint& c = cs.constraints[i];
    ctx.work(1);
    if (c.kind == ConstraintKind::kAddressOf) {
      ctx.sync_op();  // push into a shared set
      insert_into(pts[c.dst], c.src, &st.counted_work);
    }
  });

  std::vector<Var> snapshot;
  bool changed = true;
  while (changed) {
    changed = false;
    ++st.iterations;
    runner.round(cs.constraints.size(), [&](cpu::WorkerCtx& ctx,
                                            std::uint64_t i) {
      const Constraint& c = cs.constraints[i];
      std::uint64_t ops = 0;
      bool grew = false;
      switch (c.kind) {
        case ConstraintKind::kAddressOf:
          break;
        case ConstraintKind::kCopy:
          if (c.dst != c.src) {
            ctx.sync_op();  // push-based: the target set is shared
            grew |= union_into(pts[c.dst], pts[c.src], &ops);
          }
          break;
        case ConstraintKind::kLoad:
          snapshot = pts[c.src];
          for (Var v : snapshot) {
            if (v != c.dst) {
              ctx.sync_op();
              grew |= union_into(pts[c.dst], pts[v], &ops);
            }
          }
          break;
        case ConstraintKind::kStore:
          snapshot = pts[c.dst];
          for (Var v : snapshot) {
            if (v != c.src) {
              ctx.sync_op();
              grew |= union_into(pts[v], pts[c.src], &ops);
            }
          }
          break;
      }
      ctx.work(ops);
      st.counted_work += ops;
      if (grew) changed = true;
    });
  }

  for (const auto& s : pts) st.pts_total += s.size();
  st.wall_seconds = timer.seconds();
  st.modeled_cycles = runner.stats().modeled_cycles;
  if (stats) *stats = st;
  return pts;
}

bool equal_pts(const PtsSets& a, const PtsSets& b) {
  return a == b;
}

}  // namespace morph::pta
