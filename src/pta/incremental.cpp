#include "pta/incremental.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace morph::pta {

namespace {

gpu::LaunchConfig inc_lc(std::size_t n, const char* label) {
  const auto blocks =
      static_cast<std::uint32_t>(std::min<std::size_t>(64, n / 256 + 1));
  return {std::max(1u, blocks), 256, label};
}

/// Charges one work unit plus `reads` global accesses per element over `n`
/// elements; per-thread charges are a pure function of tid and n, so stats
/// are bit-identical for any host worker count.
void charge(gpu::Device& dev, std::size_t n, const char* label,
            std::uint64_t reads, std::uint64_t atomics) {
  if (n == 0) return;
  const gpu::LaunchConfig lc = inc_lc(n, label);
  dev.launch(lc, [&](gpu::ThreadCtx& ctx) {
    for (std::size_t i = ctx.tid(); i < n; i += ctx.grid_threads()) {
      ctx.work(1);
      ctx.global_access(reads);
      if (atomics != 0) ctx.atomic_op(atomics);
    }
  });
}

/// Sorted-set insert; returns true when `x` was new.
bool insert_sorted(std::vector<Var>& set, Var x) {
  const auto it = std::lower_bound(set.begin(), set.end(), x);
  if (it != set.end() && *it == x) return false;
  set.insert(it, x);
  return true;
}

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
}

}  // namespace

PtaState make_pta_state(std::uint32_t num_vars) {
  PtaState st;
  st.cs.num_vars = num_vars;
  st.pts.resize(num_vars);
  st.edges_out.resize(num_vars);
  st.loads_from.resize(num_vars);
  st.stores_to.resize(num_vars);
  return st;
}

PtaDelta apply_updates(PtaState& st, std::span<const Constraint> updates,
                       gpu::Device& dev) {
  const double cycles_before = dev.stats().modeled_cycles;
  const std::uint32_t n = st.cs.num_vars;
  PtaDelta delta_out;

  // Per-var unpropagated facts; `pending` records empty->nonempty
  // transitions (a var can re-enter after its delta is consumed).
  std::vector<std::vector<Var>> delta(n);
  std::vector<Var> pending;
  std::uint64_t ops = 0;

  const auto add_pts = [&](Var v, Var x) {
    ++ops;
    if (!insert_sorted(st.pts[v], x)) return;
    ++st.pts_total;
    ++delta_out.pts_added;
    if (delta[v].empty()) pending.push_back(v);
    delta[v].push_back(x);
  };
  // Materializes the subset edge src -> dst and pushes src's *entire*
  // current set across it — this is how a new constraint resumes the fixed
  // point without a teardown.
  const auto add_edge = [&](Var src, Var dst) {
    ++ops;
    if (!insert_sorted(st.edges_out[src], dst)) return;
    ++st.edges_added;
    ++delta_out.edges_added;
    for (const Var x : st.pts[src]) add_pts(dst, x);
  };

  // Ingest the batch: each constraint seeds only its own endpoints.
  for (const Constraint& c : updates) {
    MORPH_CHECK(c.dst < n && c.src < n);
    st.cs.constraints.push_back(c);
    switch (c.kind) {
      case ConstraintKind::kAddressOf:
        add_pts(c.dst, c.src);
        break;
      case ConstraintKind::kCopy:
        add_edge(c.src, c.dst);
        break;
      case ConstraintKind::kLoad: {  // dst = *src
        if (!insert_sorted(st.loads_from[c.src], c.dst)) break;
        // Snapshot: add_edge can grow pts[c.src] when src aliases dst.
        const std::vector<Var> snap = st.pts[c.src];
        for (const Var v : snap) add_edge(v, c.dst);
        break;
      }
      case ConstraintKind::kStore: {  // *dst = src
        if (!insert_sorted(st.stores_to[c.dst], c.src)) break;
        const std::vector<Var> snap = st.pts[c.dst];
        for (const Var v : snap) add_edge(c.src, v);
        break;
      }
    }
  }
  charge(dev, updates.size() + ops, "pta.inc.ingest", 2, 0);

  // Semi-naive rounds: propagate only each var's delta, in ascending var
  // order. All mutation is sequential host code; the device launches charge
  // the modeled cost of the round's operations.
  while (!pending.empty()) {
    ++delta_out.rounds;
    std::vector<Var> batch_vars;
    batch_vars.swap(pending);
    std::sort(batch_vars.begin(), batch_vars.end());
    batch_vars.erase(std::unique(batch_vars.begin(), batch_vars.end()),
                     batch_vars.end());
    ops = 0;
    for (const Var v : batch_vars) {
      std::vector<Var> d;
      d.swap(delta[v]);
      if (d.empty()) continue;
      for (const Var dst : st.edges_out[v])
        for (const Var x : d) add_pts(dst, x);
      for (const Var p : st.loads_from[v])
        for (const Var x : d) add_edge(x, p);  // new pointee: edge x -> p
      for (const Var q : st.stores_to[v])
        for (const Var x : d) add_edge(q, x);  // new pointee: edge q -> x
    }
    charge(dev, ops, "pta.inc.round", 2, 1);
  }

  st.rounds += delta_out.rounds;
  delta_out.pts_total = st.pts_total;
  delta_out.modeled_cycles = dev.stats().modeled_cycles - cycles_before;
  return delta_out;
}

std::uint64_t state_digest(const PtaState& st) {
  std::uint64_t h = 1469598103934665603ull;
  fnv_mix(h, st.cs.num_vars);
  for (const std::vector<Var>& set : st.pts) {
    fnv_mix(h, set.size());
    for (const Var x : set) fnv_mix(h, x);
  }
  return h;
}

}  // namespace morph::pta
