// Points-to solvers: serial reference, multicore push-based baseline, and
// the paper's GPU implementation (pull-based, two-phase, with Kernel-Only
// chunked storage for the dynamically growing incoming-edge lists).
#pragma once

#include <cstdint>
#include <vector>

#include "gpu/cpu_runner.hpp"
#include "gpu/device.hpp"
#include "pta/constraints.hpp"
#include "resilience/recovery.hpp"

namespace morph::pta {

/// Final solution: pts[v] is the sorted set of variables v may point to.
using PtsSets = std::vector<std::vector<Var>>;

struct PtaStats {
  std::uint64_t iterations = 0;   ///< fixed-point rounds
  std::uint64_t edges_added = 0;  ///< constraint-graph edges materialized
  std::uint64_t pts_total = 0;    ///< sum of final set sizes
  std::uint64_t counted_work = 0;
  std::uint64_t device_mallocs = 0;  ///< GPU driver: chunk allocations
  double wall_seconds = 0.0;
  double modeled_cycles = 0.0;
};

struct PtaOptions {
  bool push_based = false;      ///< ablation: push (atomics) vs pull
  bool divergence_sort = true;  ///< pack enabled pointer nodes (Sec. 7.6)
  std::uint32_t chunk_elems = 1024;  ///< Kernel-Only chunk size (512..4096)
  std::uint32_t initial_tpb = 128;   ///< paper: PTA starts at 128, doubles
  /// Pointer-representative table from offline cycle elimination
  /// (pta/cycle_elim.hpp): dynamically discovered edges route their
  /// pointer endpoint through it. Null = identity.
  const std::vector<Var>* pointer_rep = nullptr;

  // --- resilience (docs/RESILIENCE.md) ---

  /// Kernel-Only arena budget in chunks; 0 = unbounded (no degradation
  /// needed). When the budget — or an injected kArenaExhaust fault — denies
  /// a kernel-side chunk allocation, the solver degrades to the paper's
  /// Kernel-Host strategy: the host grows the arena between launches and
  /// the denied inserts replay on the next sweep.
  std::uint64_t arena_max_chunks = 0;
  /// Chunks added per Kernel-Host growth step; 0 = half the current budget
  /// (at least one chunk).
  std::uint64_t arena_growth_chunks = 0;
  /// Bounded retry + exponential backoff for arena growth; retries count
  /// consecutive pressured launches and reset once a launch completes
  /// without allocation pressure.
  resilience::RetryPolicy arena_retry = {};
};

/// Naive iterate-to-fixpoint reference solver (the "Serial" column).
PtsSets solve_serial(const ConstraintSet& cs, PtaStats* stats = nullptr);

/// Galois-like multicore baseline: rounds over constraints, push-based
/// propagation with synchronized target updates.
PtsSets solve_multicore(const ConstraintSet& cs, cpu::ParallelRunner& runner,
                        PtaStats* stats = nullptr);

/// The paper's GPU algorithm on the simulator.
PtsSets solve_gpu(const ConstraintSet& cs, gpu::Device& dev,
                  const PtaOptions& opts = {}, PtaStats* stats = nullptr);

/// Set equality of two solutions (the fixed point is unique).
bool equal_pts(const PtsSets& a, const PtsSets& b);

/// Soundness check of a solution against the constraint set: every set is
/// sorted and duplicate-free and the subset-closure of all four constraint
/// kinds holds (edges routed through `pointer_rep` exactly as solve_gpu
/// routes them). Used to gate recovery under fault campaigns.
bool check_solution(const ConstraintSet& cs, const PtsSets& pts,
                    const std::vector<Var>* pointer_rep = nullptr);

}  // namespace morph::pta
