// Points-to soundness checker (docs/RESILIENCE.md): validates that a
// solution is a sound fixed point of the constraint set, i.e. every
// subset edge the solver materializes — including the dynamic load/store
// edges routed through the cycle-elimination representative table exactly
// as solve_gpu routes them — is closed under the final sets. Used to gate
// recovery after a fault campaign; a run that survived injected arena
// exhaustion must still pass.
#include <algorithm>

#include "pta/solve.hpp"

namespace morph::pta {

namespace {

bool sorted_unique(const std::vector<Var>& s) {
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (s[i - 1] >= s[i]) return false;
  }
  return true;
}

bool subset_of(const std::vector<Var>& a, const std::vector<Var>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

bool check_solution(const ConstraintSet& cs, const PtsSets& pts,
                    const std::vector<Var>* pointer_rep) {
  if (pts.size() != cs.num_vars) return false;
  for (const auto& s : pts) {
    if (!sorted_unique(s)) return false;
  }
  auto rep = [&](Var v) { return pointer_rep ? (*pointer_rep)[v] : v; };
  for (const Constraint& c : cs.constraints) {
    switch (c.kind) {
      case ConstraintKind::kAddressOf:
        if (!std::binary_search(pts[c.dst].begin(), pts[c.dst].end(), c.src))
          return false;
        break;
      case ConstraintKind::kCopy:
        if (c.dst != c.src && !subset_of(pts[c.src], pts[c.dst]))
          return false;
        break;
      case ConstraintKind::kLoad:
        // p = *q: for every v in pts(q), pts(v) must flow into pts(p).
        for (Var raw : pts[c.src]) {
          const Var v = rep(raw);
          if (v == c.dst) continue;
          if (!subset_of(pts[v], pts[c.dst])) return false;
        }
        break;
      case ConstraintKind::kStore:
        // *p = q: for every v in pts(p), pts(q) must flow into pts(v).
        for (Var raw : pts[c.dst]) {
          const Var v = rep(raw);
          if (v == c.src) continue;
          if (!subset_of(pts[c.src], pts[v])) return false;
        }
        break;
    }
  }
  return true;
}

}  // namespace morph::pta
