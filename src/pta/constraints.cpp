#include "pta/constraints.hpp"

#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace morph::pta {

namespace {

/// Approximate Zipf sampler over [0, n): inverse-power transform of a
/// uniform draw. Skews accesses toward low ids ("hot" variables).
Var zipfish(Rng& rng, std::uint32_t n, double exponent = 0.6) {
  const double u = rng.next_double();
  const double x = std::pow(u, 1.0 / (1.0 - exponent));  // in (0,1]
  auto v = static_cast<std::uint64_t>(x * n);
  if (v >= n) v = n - 1;
  return static_cast<Var>(v);
}

}  // namespace

ConstraintSet synthetic_program(std::uint32_t num_vars,
                                std::uint32_t num_cons, std::uint64_t seed) {
  MORPH_CHECK(num_vars >= 8);
  Rng rng(seed);
  ConstraintSet cs;
  cs.num_vars = num_vars;
  cs.constraints.reserve(num_cons);
  for (std::uint32_t i = 0; i < num_cons; ++i) {
    const double kind_draw = rng.next_double();
    Constraint c{};
    c.dst = zipfish(rng, num_vars);
    c.src = zipfish(rng, num_vars);
    if (kind_draw < 0.30) {
      c.kind = ConstraintKind::kAddressOf;
    } else if (kind_draw < 0.70) {
      c.kind = ConstraintKind::kCopy;
    } else if (kind_draw < 0.85) {
      c.kind = ConstraintKind::kLoad;
    } else {
      c.kind = ConstraintKind::kStore;
    }
    cs.constraints.push_back(c);
  }
  return cs;
}

ConstraintSet clustered_program(std::uint32_t num_vars, std::uint32_t block,
                                std::uint32_t cons_per_block,
                                std::uint64_t seed) {
  MORPH_CHECK(num_vars >= block && block >= 4);
  Rng rng(seed);
  ConstraintSet cs;
  cs.num_vars = num_vars;
  for (std::uint32_t start = 0; start < num_vars; start += block) {
    const std::uint32_t size = std::min(block, num_vars - start);
    if (size < 4) continue;
    for (std::uint32_t i = 0; i < cons_per_block; ++i) {
      const double kind_draw = rng.next_double();
      Constraint c{};
      c.dst = start + static_cast<Var>(rng.next_below(size));
      c.src = start + static_cast<Var>(rng.next_below(size));
      if (kind_draw < 0.35) {
        c.kind = ConstraintKind::kAddressOf;
      } else if (kind_draw < 0.75) {
        c.kind = ConstraintKind::kCopy;
      } else if (kind_draw < 0.875) {
        c.kind = ConstraintKind::kLoad;
      } else {
        c.kind = ConstraintKind::kStore;
      }
      cs.constraints.push_back(c);
    }
  }
  return cs;
}

const std::vector<SpecWorkload>& spec2000_workloads() {
  static const std::vector<SpecWorkload> table = {
      {"186.crafty", 6126, 6768}, {"164.gzip", 1595, 1773},
      {"256.bzip2", 1147, 1081},  {"181.mcf", 1230, 1509},
      {"183.equake", 1317, 1279}, {"179.art", 586, 603},
  };
  return table;
}

ConstraintSet spec_like(const SpecWorkload& w) {
  // Seed derived from the name so each benchmark is a distinct instance.
  std::uint64_t seed = 0xcbf29ce484222325ull;
  for (char ch : w.name) seed = (seed ^ static_cast<unsigned char>(ch)) * 0x100000001b3ull;
  return synthetic_program(w.vars, w.cons, seed);
}

}  // namespace morph::pta
