// The paper's GPU points-to analysis (Sec. 4 / 6.4): pull-based two-phase
// fixed-point iteration. Each node keeps a linked list of chunks of
// incoming neighbors allocated by kernel-side malloc (the Kernel-Only
// strategy of Sec. 7.1); chunk contents are sorted by id for fast lookup.
// Propagation is pull-based: only the owning thread writes a node's
// points-to set, so no synchronization is needed (monotonicity makes stale
// reads safe). The push-based variant is kept for the ablation bench.
#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <optional>

#include "core/adaptive.hpp"
#include "gpu/memory.hpp"
#include "gpu/worklist.hpp"
#include "pta/solve.hpp"
#include "support/status.hpp"
#include "support/timer.hpp"

namespace morph::pta {

namespace {

bool union_into(std::vector<Var>& dst, const std::vector<Var>& src,
                std::uint64_t* ops) {
  if (ops) *ops += dst.size() + src.size() + 1;
  if (src.empty()) return false;
  std::vector<Var> merged;
  merged.reserve(dst.size() + src.size());
  std::set_union(dst.begin(), dst.end(), src.begin(), src.end(),
                 std::back_inserter(merged));
  if (merged.size() == dst.size()) return false;
  dst.swap(merged);
  return true;
}

/// Per-node chunked neighbor list backed by device-heap chunks.
class ChunkList {
 public:
  bool contains(Var u, std::uint32_t used_in_last,
                std::uint64_t* ops) const {
    for (std::size_t i = 0; i < chunks_.size(); ++i) {
      const std::size_t n =
          (i + 1 == chunks_.size()) ? used_in_last : chunks_[i].size();
      if (ops) *ops += 1;
      if (std::binary_search(chunks_[i].begin(), chunks_[i].begin() + n, u))
        return true;
    }
    return false;
  }

  /// Inserts u if absent; allocates a new chunk from the heap when the
  /// current one is full. Sets *added when u is new. A denied allocation
  /// (arena budget or injected exhaustion) leaves the list untouched and
  /// returns kArenaExhausted so the caller can degrade to Kernel-Host
  /// growth instead of dying mid-kernel.
  Status try_insert(gpu::DeviceHeap<Var>& heap, Var u, std::uint64_t* ops,
                    bool* added) {
    *added = false;
    if (contains(u, used_, ops)) return Status::Ok();
    if (chunks_.empty() || used_ == chunks_.back().size()) {
      std::span<Var> chunk;
      if (Status s = heap.try_alloc_chunk(&chunk); !s.ok()) return s;
      chunks_.push_back(chunk);
      used_ = 0;
      if (ops) *ops += 8;  // device malloc path
    }
    auto& last = chunks_.back();
    auto end = last.begin() + used_;
    auto it = std::lower_bound(last.begin(), end, u);
    // Shadow the chunk write so a freed-then-reused chunk is caught as a
    // use-after-free. Host agent: the write is serialized under the caller's
    // list_mu, so it is never part of an inter-block race.
    if (analysis::Sanitizer* s = heap.device()->sanitizer()) {
      s->on_access(analysis::Sanitizer::kHostAgent, &*it,
                   static_cast<std::size_t>(end - it + 1) * sizeof(Var),
                   analysis::Sanitizer::Access::kWrite);
    }
    std::copy_backward(it, end, end + 1);
    *it = u;
    ++used_;
    if (ops) *ops += 2;
    *added = true;
    return Status::Ok();
  }

  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < chunks_.size(); ++i) {
      const std::size_t n =
          (i + 1 == chunks_.size()) ? used_ : chunks_[i].size();
      for (std::size_t q = 0; q < n; ++q) f(chunks_[i][q]);
    }
  }

  std::size_t size() const {
    if (chunks_.empty()) return 0;
    return (chunks_.size() - 1) * chunks_.front().size() + used_;
  }

 private:
  std::vector<std::span<Var>> chunks_;
  std::uint32_t used_ = 0;
};

}  // namespace

PtsSets solve_gpu(const ConstraintSet& cs, gpu::Device& dev,
                  const PtaOptions& opts, PtaStats* stats) {
  Timer timer;
  PtaStats st;
  const std::uint32_t n = cs.num_vars;

  PtsSets pts(n);
  // The pull model's defining shortcut is a benign race on real hardware;
  // on the host it is guarded (striped mutexes below), so the sanitizer
  // only needs the intent on record for the clean report.
  if (analysis::Sanitizer* s = dev.sanitizer()) {
    s->note_intentional(
        "pta.pull-stale-reads",
        "pull-model readers may observe stale points-to sets; safe because "
        "set growth is monotonic and the fixed point is unique");
  }
  gpu::DeviceHeap<Var> heap(dev, opts.chunk_elems);
  if (opts.arena_max_chunks > 0) heap.set_max_chunks(opts.arena_max_chunks);
  std::vector<ChunkList> nbr(n);  // incoming (pull) or outgoing (push)
  std::vector<std::uint8_t> changed_cur(n, 0), changed_next(n, 0);
  std::vector<std::uint8_t> touched(n, 0);  // got a new edge this round
  std::mutex list_mu;  // host-side guard; cost is charged via the model

  // --- Kernel-Only -> Kernel-Host degradation (docs/RESILIENCE.md) ---
  // A denied chunk allocation sets allocation pressure (under list_mu) and
  // skips that edge; between launches the host grows the arena under the
  // bounded-retry policy and the denied inserts replay on a full sweep.
  // The fixed point is unique, so the degraded run converges to the same
  // solution.
  bool arena_pressure = false;
  std::uint64_t arena_attempt = 0;
  auto insert_edge = [&](Var list, Var value, std::uint64_t* ops) {
    bool added = false;
    if (!nbr[list].try_insert(heap, value, ops, &added).ok()) {
      arena_pressure = true;
    }
    return added;
  };
  auto recover_arena = [&] {
    arena_pressure = false;
    ++arena_attempt;
    if (opts.arena_retry.exhausted(arena_attempt)) {
      throw FaultError(Status(
          StatusCode::kRetriesExhausted,
          "pta::solve_gpu: arena growth retries exhausted — Kernel-Host "
          "degradation could not satisfy chunk demand"));
    }
    dev.note_stall(opts.arena_retry.backoff_for(arena_attempt));
    if (heap.max_chunks() > 0) {
      const std::uint64_t extra =
          opts.arena_growth_chunks > 0
              ? opts.arena_growth_chunks
              : std::max<std::uint64_t>(heap.max_chunks() / 2, 1);
      heap.grow_arena(extra);
    }
    dev.note_recovery(
        "pta arena exhausted: degraded to Kernel-Host growth, replaying "
        "denied inserts");
  };

  // Pull-phase guard for the points-to sets: on the GPU the pull model needs
  // no synchronization (stale reads are safe under monotonicity), but on the
  // host a reader of pts[u] must not observe the owner's vector mid-swap.
  // Striped mutexes keep contention low; the cost model is unaffected (the
  // stripes model what the GPU gets for free from word-atomic loads).
  constexpr std::size_t kPtsStripes = 64;
  std::array<std::mutex, kPtsStripes> pts_mu;
  auto locked_union = [&](Var v, Var u, std::uint64_t* ops) {
    std::mutex& mv = pts_mu[v % kPtsStripes];
    std::mutex& mu = pts_mu[u % kPtsStripes];
    if (&mv == &mu) {
      std::scoped_lock lock(mv);
      return union_into(pts[v], pts[u], ops);
    }
    std::scoped_lock lock(mv, mu);
    return union_into(pts[v], pts[u], ops);
  };

  // Transfer the constraints to the device (main()).
  dev.note_copy(cs.constraints.size() * sizeof(Constraint));

  // Partition constraints by kind.
  std::vector<Constraint> addr, copy, loadstore;
  for (const Constraint& c : cs.constraints) {
    switch (c.kind) {
      case ConstraintKind::kAddressOf: addr.push_back(c); break;
      case ConstraintKind::kCopy: copy.push_back(c); break;
      default: loadstore.push_back(c); break;
    }
  }
  // Group address-of constraints by destination so the init kernel can be
  // per-variable (one writer per points-to set, as in the pull model).
  std::vector<std::vector<Var>> seeds(n);
  for (const Constraint& c : addr) seeds[c.dst].push_back(c.src);

  core::AdaptiveLauncher launcher(
      opts.initial_tpb, 3,
      std::clamp(n / (512.0 * dev.config().num_sms), 3.0, 50.0));

  // WorklistMode::kSharded: the rule sweep (phase A) becomes data-driven.
  // Enabled load/store constraint indices are seeded host-side into shards
  // (pseudo-partitioned by constraint index, then rebalanced — the
  // deterministic steal), and the kernel pops from the shards its block
  // owns instead of striding all constraints and skipping disabled ones.
  // The phases that mutate shared lists/sets run as sequential phases in
  // this mode: claims are published in block order (PR 2's commit
  // protocol), which is what keeps answers, op accounting and modeled
  // stats bit-identical for any --host-workers value.
  const bool sharded =
      dev.config().worklist_mode == gpu::WorklistMode::kSharded;
  std::optional<gpu::ShardedWorklist<std::uint32_t>> swl;
  if (sharded) {
    const std::size_t S = dev.config().resolved_worklist_shards();
    swl.emplace(S, loadstore.size() / S + 2, &dev);
  }

  // Phase 1 (init): seed points-to sets from address-of constraints.
  {
    gpu::LaunchConfig lc = launcher.next(dev.config());
    lc.label = "pta.init";
    const std::uint64_t T = lc.total_threads();
    dev.launch(lc, [&](gpu::ThreadCtx& ctx) {
      for (std::uint64_t v = ctx.tid(); v < n; v += T) {
        ctx.work(1);
        if (seeds[v].empty()) continue;
        std::sort(seeds[v].begin(), seeds[v].end());
        seeds[v].erase(std::unique(seeds[v].begin(), seeds[v].end()),
                       seeds[v].end());
        pts[v] = seeds[v];
        changed_cur[v] = 1;
        ctx.work(seeds[v].size());
        ctx.global_access(seeds[v].size());
      }
    });
  }

  // Static copy edges (evaluate phase of the first iteration). Replayed
  // under allocation pressure: try_insert is idempotent, so a re-run only
  // adds the edges the previous attempt was denied.
  {
    gpu::LaunchConfig lc = launcher.next(dev.config());
    lc.label = "pta.copy";
    const std::uint64_t T = lc.total_threads();
    bool rerun = true;
    // Sequential under sharded mode: insert_edge's op count includes the
    // contains() walk over whatever the target list holds at lock
    // acquisition, so it depends on insertion order across threads.
    const auto copy_kernel = [&](gpu::ThreadCtx& ctx) {
      for (std::uint64_t i = ctx.tid(); i < copy.size(); i += T) {
        const Constraint& c = copy[i];
        ctx.work(1);
        if (c.dst == c.src) continue;
        std::uint64_t ops = 0;
        std::scoped_lock lock(list_mu);
        const bool added = opts.push_based
                               ? insert_edge(c.src, c.dst, &ops)
                               : insert_edge(c.dst, c.src, &ops);
        if (added) {
          ++st.edges_added;
          touched[opts.push_based ? c.src : c.dst] = 1;
        }
        ctx.work(ops);
        if (opts.push_based) ctx.atomic_op();  // shared target list
      }
    };
    while (rerun) {
      const gpu::Phase pc[1] = {{copy_kernel, /*sequential=*/sharded}};
      dev.launch_phases(lc, std::span<const gpu::Phase>(pc));
      rerun = arena_pressure;
      if (arena_pressure) recover_arena();
    }
    arena_attempt = 0;
  }

  std::vector<Var> snapshot;
  bool progress = true;
  bool full_sweep = false;  // replay all constraints after a pressured round
  while (progress) {
    ++st.iterations;
    gpu::LaunchConfig lc = launcher.next(dev.config());
    lc.label = "pta.solve";
    const std::uint64_t T = lc.total_threads();
    std::uint64_t round_added = 0;          // bumped under list_mu only
    std::atomic<std::uint64_t> round_grew{0};

    // Sharded: seed this round's enabled constraints (the same predicate
    // the strided kernel applies inline), then rebalance so starved shards
    // are fed before the launch.
    if (sharded) {
      swl->reset();
      gpu::ThreadCtx host;  // host-side fill; charges discarded
      for (std::uint32_t i = 0; i < loadstore.size(); ++i) {
        const Constraint& c = loadstore[i];
        const Var ptr = (c.kind == ConstraintKind::kLoad) ? c.src : c.dst;
        if (full_sweep || changed_cur[ptr] || st.iterations == 1) {
          (void)swl->push(host, swl->partition_shard(i, loadstore.size()), i);
        }
      }
      swl->rebalance();
      dev.note_counter("worklist.occupancy",
                       static_cast<double>(swl->size()));
    }

    // --- phase A: load/store constraints add edges (Sec. 4: "constraints
    // are evaluated"; edges go to the incoming list in the pull model) ---
    const auto phase_a = [&](gpu::ThreadCtx& ctx) {
      const auto evaluate = [&](const Constraint& c) {
        ctx.work(1);
        const Var ptr = (c.kind == ConstraintKind::kLoad) ? c.src : c.dst;
        if (!sharded && !full_sweep && !changed_cur[ptr] &&
            st.iterations > 1) {
          return;
        }
        ctx.global_access();
        std::scoped_lock lock(list_mu);
        for (Var raw : pts[ptr]) {
          // With offline cycle elimination, an element acting as a pointer
          // endpoint is represented by its copy-cycle representative.
          const Var v = opts.pointer_rep ? (*opts.pointer_rep)[raw] : raw;
          std::uint64_t ops = 0;
          bool added = false;
          if (c.kind == ConstraintKind::kLoad) {
            // p = *q: edge v -> p.
            if (v == c.dst) continue;
            added = opts.push_based ? insert_edge(v, c.dst, &ops)
                                    : insert_edge(c.dst, v, &ops);
            if (added) touched[opts.push_based ? v : c.dst] = 1;
          } else {
            // *p = q: edge q -> v.
            if (v == c.src) continue;
            added = opts.push_based ? insert_edge(c.src, v, &ops)
                                    : insert_edge(v, c.src, &ops);
            if (added) touched[opts.push_based ? c.src : v] = 1;
          }
          if (added) {
            ++st.edges_added;
            ++round_added;
          }
          ctx.work(ops + 1);
          if (opts.push_based) ctx.atomic_op();
        }
      };
      if (sharded) {
        while (auto idx = swl->pop_owned(ctx, lc.blocks)) {
          evaluate(loadstore[*idx]);
        }
      } else {
        for (std::uint64_t i = ctx.tid(); i < loadstore.size(); i += T) {
          evaluate(loadstore[i]);
        }
      }
    };
    {
      const gpu::Phase pa[1] = {{phase_a, /*sequential=*/sharded}};
      dev.launch_phases(lc, std::span<const gpu::Phase>(pa));
    }

    // Kernel-Host fallback: grow the arena before the next sweep, which
    // will re-evaluate every constraint so the denied inserts replay.
    full_sweep = arena_pressure;
    if (arena_pressure) {
      recover_arena();
    } else {
      arena_attempt = 0;
    }

    // --- phase B: propagate points-to information along the edges ---
    if (!opts.push_based) {
      // Pull: one thread per node; no synchronization (Sec. 6.4). With
      // divergence sorting the enabled nodes are packed first (Sec. 7.6).
      std::vector<Var> active;
      if (opts.divergence_sort) {
        for (Var v = 0; v < n; ++v) {
          bool enabled = touched[v] != 0;
          nbr[v].for_each([&](Var u) { enabled |= changed_cur[u] != 0; });
          if (enabled) active.push_back(v);
        }
      }
      const std::uint64_t todo = opts.divergence_sort ? active.size() : n;
      // Sequential under sharded mode: a pull reader charges ops against
      // pts[u] snapshots, so the counts depend on whether u's owner already
      // ran this round — block order pins that (the cost model is identical
      // for sequential phases).
      const auto phase_b = [&](gpu::ThreadCtx& ctx) {
        for (std::uint64_t i = ctx.tid(); i < todo; i += T) {
          const Var v = opts.divergence_sort ? active[i]
                                             : static_cast<Var>(i);
          ctx.work(1);
          bool enabled = touched[v] != 0;
          if (!opts.divergence_sort) {
            nbr[v].for_each([&](Var u) {
              ctx.work(1);
              enabled |= changed_cur[u] != 0;
            });
            if (!enabled) continue;
          }
          bool grew = false;
          std::uint64_t ops = 0;
          nbr[v].for_each([&](Var u) {
            grew |= locked_union(v, u, &ops);
          });
          ctx.work(ops);
          ctx.global_access(nbr[v].size());
          if (grew) {
            changed_next[v] = 1;
            round_grew.fetch_add(1, std::memory_order_relaxed);
          }
        }
      };
      const gpu::Phase pb[1] = {{phase_b, /*sequential=*/sharded}};
      dev.launch_phases(lc, std::span<const gpu::Phase>(pb));
    } else {
      // Push: a node writes into its successors' sets; every update is
      // synchronized (the cost the pull model avoids).
      const auto phase_b = [&](gpu::ThreadCtx& ctx) {
        for (std::uint64_t u = ctx.tid(); u < n; u += T) {
          ctx.work(1);
          if (!changed_cur[u] && !touched[u]) continue;
          std::uint64_t ops = 0;
          std::scoped_lock lock(list_mu);
          nbr[u].for_each([&](Var v) {
            ctx.atomic_op();
            if (union_into(pts[v], pts[u], &ops)) {
              changed_next[v] = 1;
              round_grew.fetch_add(1, std::memory_order_relaxed);
            }
          });
          ctx.work(ops);
        }
      };
      const gpu::Phase pb[1] = {{phase_b, /*sequential=*/sharded}};
      dev.launch_phases(lc, std::span<const gpu::Phase>(pb));
    }

    st.counted_work = dev.stats().total_work;
    std::fill(touched.begin(), touched.end(), 0);
    changed_cur.swap(changed_next);
    std::fill(changed_next.begin(), changed_next.end(), 0);
    progress = round_added > 0 || round_grew.load() > 0 || full_sweep;
  }

  // Invariant gate under fault campaigns: the survived run must still be a
  // sound fixed point. Checked only when a campaign is armed — the closure
  // walk re-visits every constraint.
  if (dev.faults_armed()) {
    if (!check_solution(cs, pts, opts.pointer_rep)) {
      throw FaultError(
          Status(StatusCode::kInvariantViolation,
                 "pta::solve_gpu: recovered solution violates points-to "
                 "soundness"));
    }
    dev.note_recovery("points-to soundness verified after fault campaign");
  }

  // Copy the solution back to the host.
  for (const auto& s : pts) st.pts_total += s.size();
  dev.note_copy(st.pts_total * sizeof(Var));

  st.device_mallocs = dev.stats().device_mallocs;
  st.wall_seconds = timer.seconds();
  st.modeled_cycles = dev.stats().modeled_cycles;
  if (stats) *stats = st;
  return pts;
}

}  // namespace morph::pta
