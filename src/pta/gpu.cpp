// The paper's GPU points-to analysis (Sec. 4 / 6.4): pull-based two-phase
// fixed-point iteration. Each node keeps a linked list of chunks of
// incoming neighbors allocated by kernel-side malloc (the Kernel-Only
// strategy of Sec. 7.1); chunk contents are sorted by id for fast lookup.
// Propagation is pull-based: only the owning thread writes a node's
// points-to set. The push-based variant is kept for the ablation bench.
//
// Every phase runs block-parallel under any worklist mode and stays
// bit-deterministic across host worker counts: list growth is parked in
// per-list pending buffers and merged between launches (ChunkList), the
// propagation phase reads the round-start points-to image and commits grown
// sets host-side in deterministic order, and every op charge is computed
// against pre-phase state (the snapshot-charging rule, DESIGN.md §6.1).
#include <algorithm>
#include <mutex>
#include <optional>
#include <utility>

#include "core/adaptive.hpp"
#include "gpu/memory.hpp"
#include "gpu/reduce.hpp"
#include "gpu/worklist.hpp"
#include "pta/solve.hpp"
#include "support/status.hpp"
#include "support/timer.hpp"

namespace morph::pta {

namespace {

bool union_into(std::vector<Var>& dst, const std::vector<Var>& src,
                std::uint64_t* ops) {
  if (ops) *ops += dst.size() + src.size() + 1;
  if (src.empty()) return false;
  std::vector<Var> merged;
  merged.reserve(dst.size() + src.size());
  std::set_union(dst.begin(), dst.end(), src.begin(), src.end(),
                 std::back_inserter(merged));
  if (merged.size() == dst.size()) return false;
  dst.swap(merged);
  return true;
}

/// Per-node chunked neighbor list backed by device-heap chunks.
///
/// Determinism contract (DESIGN.md §6.1): during a launch the *canonical*
/// chunks are immutable — same-phase inserts are parked in a host-side
/// pending buffer — so a membership walk, and the ops it charges, is a pure
/// function of the pre-phase snapshot, never of cross-thread interleaving.
/// The host merges the pending values back into the chunks between launches
/// (merge_pending, called per list in ascending node order), which also
/// moves every chunk allocation to a deterministic point. Canonical chunk
/// contents are globally sorted (merge_pending rewrites them that way), so
/// lookups binary-search each chunk exactly as the paper's kernel does.
class ChunkList {
 public:
  /// Membership against the canonical snapshot: 1 op per chunk probed.
  bool contains_canonical(Var u, std::uint64_t* ops) const {
    std::size_t left = csize_;
    for (const std::span<Var>& ch : chunks_) {
      if (left == 0) break;
      const std::size_t n = std::min(left, ch.size());
      if (ops) *ops += 1;
      if (std::binary_search(ch.begin(), ch.begin() + n, u)) return true;
      left -= n;
    }
    return false;
  }

  /// Inserts u into the pending buffer if absent from canonical ∪ pending.
  /// Sets *added when u is new to this phase. Deterministic charging: the
  /// canonical walk plus, for any value not already canonical, a flat
  /// probe-and-insert charge — identical whether this thread pends the
  /// value first or loses that race, so op totals are schedule-independent.
  void insert_pending(Var u, std::uint64_t* ops, bool* added) {
    *added = false;
    if (contains_canonical(u, ops)) return;
    if (ops) *ops += 3;
    const auto it = std::lower_bound(pending_.begin(), pending_.end(), u);
    if (it != pending_.end() && *it == u) return;
    pending_.insert(it, u);
    *added = true;
  }

  bool has_pending() const { return !pending_.empty(); }

  /// Host-side fix-up (between launches): folds the pending buffer into the
  /// canonical chunks, allocating from the heap as needed. Charges 8 ops
  /// per fresh chunk (the device-malloc path) plus one per element the
  /// rewrite moves; *merged counts the values that became canonical. A
  /// denied allocation (arena budget or injected exhaustion) drops the
  /// whole pending buffer and returns kArenaExhausted — the caller degrades
  /// to Kernel-Host growth and the dropped inserts replay on a full sweep.
  Status merge_pending(gpu::DeviceHeap<Var>& heap, std::uint64_t* ops,
                       std::uint64_t* merged) {
    if (pending_.empty()) return Status::Ok();
    const std::size_t total = csize_ + pending_.size();
    while (chunks_.size() * heap.chunk_elems() < total) {
      std::span<Var> chunk;
      if (Status s = heap.try_alloc_chunk(&chunk); !s.ok()) {
        pending_.clear();
        return s;
      }
      chunks_.push_back(chunk);
      if (ops) *ops += 8;  // device malloc path
    }
    std::vector<Var> all;
    all.reserve(total);
    {
      std::vector<Var> canon;
      canon.reserve(csize_);
      for_each([&](Var x) { canon.push_back(x); });
      std::merge(canon.begin(), canon.end(), pending_.begin(),
                 pending_.end(), std::back_inserter(all));
    }
    std::size_t w = 0;
    for (const std::span<Var>& ch : chunks_) {
      const std::size_t n = std::min(ch.size(), total - w);
      if (n == 0) break;
      // Shadow the chunk rewrite so a freed-then-reused chunk is caught as
      // a use-after-free. Host agent: the merge runs between launches, so
      // it is never part of an inter-block race.
      if (analysis::Sanitizer* s = heap.device()->sanitizer()) {
        s->on_access(analysis::Sanitizer::kHostAgent, ch.data(),
                     n * sizeof(Var), analysis::Sanitizer::Access::kWrite);
      }
      std::copy(all.begin() + w, all.begin() + w + n, ch.begin());
      w += n;
    }
    if (ops) *ops += total;
    if (merged) *merged += pending_.size();
    csize_ = total;
    pending_.clear();
    return Status::Ok();
  }

  template <typename F>
  void for_each(F&& f) const {
    std::size_t left = csize_;
    for (const std::span<Var>& ch : chunks_) {
      const std::size_t n = std::min(left, ch.size());
      for (std::size_t q = 0; q < n; ++q) f(ch[q]);
      left -= n;
      if (left == 0) break;
    }
  }

  std::size_t size() const { return csize_; }

 private:
  std::vector<std::span<Var>> chunks_;
  std::size_t csize_ = 0;          ///< canonical element count
  std::vector<Var> pending_;       ///< same-phase inserts, sorted unique
};

}  // namespace

PtsSets solve_gpu(const ConstraintSet& cs, gpu::Device& dev,
                  const PtaOptions& opts, PtaStats* stats) {
  Timer timer;
  PtaStats st;
  const std::uint32_t n = cs.num_vars;

  PtsSets pts(n);
  // No "stale reads" waiver is needed any more: during a propagation launch
  // the points-to sets are frozen (readers see the round-start image) and
  // grown sets are staged and committed host-side in deterministic order
  // between launches — so there is nothing racy, intentional or otherwise,
  // for the sanitizer to look past.
  gpu::DeviceHeap<Var> heap(dev, opts.chunk_elems);
  if (opts.arena_max_chunks > 0) heap.set_max_chunks(opts.arena_max_chunks);
  std::vector<ChunkList> nbr(n);  // incoming (pull) or outgoing (push)
  std::vector<std::uint8_t> changed_cur(n, 0), changed_next(n, 0);
  std::vector<std::uint8_t> touched(n, 0);  // got a new edge this round
  std::mutex list_mu;  // host-side guard; cost is charged via the model

  // --- Kernel-Only -> Kernel-Host degradation (docs/RESILIENCE.md) ---
  // Chunk allocation happens only in the between-launch fix-up pass. A
  // denied allocation there sets allocation pressure and drops that list's
  // pending inserts; the host then grows the arena under the bounded-retry
  // policy and the dropped inserts replay on a full sweep. The fixed point
  // is unique, so the degraded run converges to the same solution.
  bool arena_pressure = false;
  std::uint64_t arena_attempt = 0;
  auto insert_edge = [&](Var list, Var value, std::uint64_t* ops) {
    bool added = false;
    nbr[list].insert_pending(value, ops, &added);
    return added;
  };
  // Fix-up pass, run after every list-mutating launch: folds each list's
  // pending buffer into its canonical chunks, in ascending node order.
  // Returns the number of edges that became canonical; their count (and
  // the arena-pressure outcome) is a pure function of the pre-launch state,
  // so rounds and stats stay bit-identical across host worker counts. The
  // merge traffic is charged through a dedicated single-block launch so it
  // lands in the model and the trace at a deterministic point.
  auto fixup_lists = [&]() -> std::uint64_t {
    std::uint64_t ops = 0;
    std::uint64_t merged = 0;
    for (Var v = 0; v < n; ++v) {
      if (!nbr[v].has_pending()) continue;
      if (!nbr[v].merge_pending(heap, &ops, &merged).ok()) {
        arena_pressure = true;
      }
    }
    if (ops > 0) {
      const gpu::LaunchConfig flc{1, 1, "pta.fixup"};
      dev.launch(flc, [&](gpu::ThreadCtx& ctx) { ctx.work(ops); });
    }
    st.edges_added += merged;
    return merged;
  };
  auto recover_arena = [&] {
    arena_pressure = false;
    ++arena_attempt;
    if (opts.arena_retry.exhausted(arena_attempt)) {
      throw FaultError(Status(
          StatusCode::kRetriesExhausted,
          "pta::solve_gpu: arena growth retries exhausted — Kernel-Host "
          "degradation could not satisfy chunk demand"));
    }
    dev.note_stall(opts.arena_retry.backoff_for(arena_attempt));
    if (heap.max_chunks() > 0) {
      const std::uint64_t extra =
          opts.arena_growth_chunks > 0
              ? opts.arena_growth_chunks
              : std::max<std::uint64_t>(heap.max_chunks() / 2, 1);
      heap.grow_arena(extra);
    }
    dev.note_recovery(
        "pta arena exhausted: degraded to Kernel-Host growth, replaying "
        "denied inserts");
  };

  // Transfer the constraints to the device (main()).
  dev.note_copy(cs.constraints.size() * sizeof(Constraint));

  // Partition constraints by kind.
  std::vector<Constraint> addr, copy, loadstore;
  for (const Constraint& c : cs.constraints) {
    switch (c.kind) {
      case ConstraintKind::kAddressOf: addr.push_back(c); break;
      case ConstraintKind::kCopy: copy.push_back(c); break;
      default: loadstore.push_back(c); break;
    }
  }
  // Group address-of constraints by destination so the init kernel can be
  // per-variable (one writer per points-to set, as in the pull model).
  std::vector<std::vector<Var>> seeds(n);
  for (const Constraint& c : addr) seeds[c.dst].push_back(c.src);

  core::AdaptiveLauncher launcher(
      opts.initial_tpb, 3,
      std::clamp(n / (512.0 * dev.config().num_sms), 3.0, 50.0));

  // WorklistMode::kSharded: the rule sweep (phase A) becomes data-driven.
  // Enabled load/store constraint indices are seeded host-side into shards
  // (pseudo-partitioned by constraint index, then rebalanced — the
  // deterministic steal), and the kernel pops from the shards its block
  // owns instead of striding all constraints and skipping disabled ones.
  // Every phase runs block-parallel in every mode: list growth pends and is
  // merged between launches, propagation reads the round-start snapshot and
  // commits in node order, and all op charging is against pre-phase state —
  // which is what keeps answers, op accounting and modeled stats
  // bit-identical for any --host-workers value (DESIGN.md §6.1).
  const bool sharded =
      dev.config().worklist_mode == gpu::WorklistMode::kSharded;
  std::optional<gpu::ShardedWorklist<std::uint32_t>> swl;
  if (sharded) {
    const std::size_t S = dev.config().resolved_worklist_shards();
    swl.emplace(S, loadstore.size() / S + 2, &dev);
  }

  // Phase 1 (init): seed points-to sets from address-of constraints.
  {
    gpu::LaunchConfig lc = launcher.next(dev.config());
    lc.label = "pta.init";
    const std::uint64_t T = lc.total_threads();
    dev.launch(lc, [&](gpu::ThreadCtx& ctx) {
      for (std::uint64_t v = ctx.tid(); v < n; v += T) {
        ctx.work(1);
        if (seeds[v].empty()) continue;
        std::sort(seeds[v].begin(), seeds[v].end());
        seeds[v].erase(std::unique(seeds[v].begin(), seeds[v].end()),
                       seeds[v].end());
        pts[v] = seeds[v];
        changed_cur[v] = 1;
        ctx.work(seeds[v].size());
        ctx.global_access(seeds[v].size());
      }
    });
  }

  // Static copy edges (evaluate phase of the first iteration). Replayed
  // under allocation pressure: insert_pending is idempotent against the
  // canonical set, so a re-run only pends the edges a denied merge dropped.
  {
    gpu::LaunchConfig lc = launcher.next(dev.config());
    lc.label = "pta.copy";
    const std::uint64_t T = lc.total_threads();
    bool rerun = true;
    // Block-parallel in every mode: inserts pend (canonical lists are
    // immutable during the launch), so insert_edge's op count is charged
    // against the pre-launch snapshot and cannot depend on the order
    // threads reach the lock.
    const auto copy_kernel = [&](gpu::ThreadCtx& ctx) {
      for (std::uint64_t i = ctx.tid(); i < copy.size(); i += T) {
        const Constraint& c = copy[i];
        ctx.work(1);
        if (c.dst == c.src) continue;
        std::uint64_t ops = 0;
        std::scoped_lock lock(list_mu);
        const bool added = opts.push_based
                               ? insert_edge(c.src, c.dst, &ops)
                               : insert_edge(c.dst, c.src, &ops);
        if (added) touched[opts.push_based ? c.src : c.dst] = 1;
        ctx.work(ops);
        if (opts.push_based) ctx.atomic_op();  // shared target list
      }
    };
    while (rerun) {
      const gpu::Phase pc[1] = {{copy_kernel, /*sequential=*/false}};
      dev.launch_phases(lc, std::span<const gpu::Phase>(pc));
      (void)fixup_lists();
      rerun = arena_pressure;
      if (arena_pressure) recover_arena();
    }
    arena_attempt = 0;
  }

  bool progress = true;
  bool full_sweep = false;  // replay all constraints after a pressured round
  while (progress) {
    ++st.iterations;
    gpu::LaunchConfig lc = launcher.next(dev.config());
    lc.label = "pta.solve";
    const std::uint64_t T = lc.total_threads();
    std::uint64_t round_grew = 0;  // committed host-side, between launches

    // Sharded: seed this round's enabled constraints (the same predicate
    // the strided kernel applies inline), then rebalance so starved shards
    // are fed before the launch.
    if (sharded) {
      swl->reset();
      gpu::ThreadCtx host;  // host-side fill; charges discarded
      for (std::uint32_t i = 0; i < loadstore.size(); ++i) {
        const Constraint& c = loadstore[i];
        const Var ptr = (c.kind == ConstraintKind::kLoad) ? c.src : c.dst;
        if (full_sweep || changed_cur[ptr] || st.iterations == 1) {
          (void)swl->push(host, swl->partition_shard(i, loadstore.size()), i);
        }
      }
      swl->rebalance();
      dev.note_counter("worklist.occupancy",
                       static_cast<double>(swl->size()));
    }

    // --- phase A: load/store constraints add edges (Sec. 4: "constraints
    // are evaluated"; edges go to the incoming list in the pull model) ---
    const auto phase_a = [&](gpu::ThreadCtx& ctx) {
      const auto evaluate = [&](const Constraint& c) {
        ctx.work(1);
        const Var ptr = (c.kind == ConstraintKind::kLoad) ? c.src : c.dst;
        if (!sharded && !full_sweep && !changed_cur[ptr] &&
            st.iterations > 1) {
          return;
        }
        ctx.global_access();
        std::scoped_lock lock(list_mu);
        for (Var raw : pts[ptr]) {
          // With offline cycle elimination, an element acting as a pointer
          // endpoint is represented by its copy-cycle representative.
          const Var v = opts.pointer_rep ? (*opts.pointer_rep)[raw] : raw;
          std::uint64_t ops = 0;
          bool added = false;
          if (c.kind == ConstraintKind::kLoad) {
            // p = *q: edge v -> p.
            if (v == c.dst) continue;
            added = opts.push_based ? insert_edge(v, c.dst, &ops)
                                    : insert_edge(c.dst, v, &ops);
            if (added) touched[opts.push_based ? v : c.dst] = 1;
          } else {
            // *p = q: edge q -> v.
            if (v == c.src) continue;
            added = opts.push_based ? insert_edge(c.src, v, &ops)
                                    : insert_edge(v, c.src, &ops);
            if (added) touched[opts.push_based ? c.src : v] = 1;
          }
          ctx.work(ops + 1);
          if (opts.push_based) ctx.atomic_op();
        }
      };
      if (sharded) {
        while (auto idx = swl->pop_owned(ctx, lc.blocks)) {
          evaluate(loadstore[*idx]);
        }
      } else {
        for (std::uint64_t i = ctx.tid(); i < loadstore.size(); i += T) {
          evaluate(loadstore[i]);
        }
      }
    };
    {
      const gpu::Phase pa[1] = {{phase_a, /*sequential=*/false}};
      dev.launch_phases(lc, std::span<const gpu::Phase>(pa));
    }
    const std::uint64_t round_added = fixup_lists();

    // Kernel-Host fallback: grow the arena before the next sweep, which
    // will re-evaluate every constraint so the dropped inserts replay.
    full_sweep = arena_pressure;
    if (arena_pressure) {
      recover_arena();
    } else {
      arena_attempt = 0;
    }

    // --- phase B: propagate points-to information along the edges ---
    if (!opts.push_based) {
      // Pull: one thread per node; no synchronization (Sec. 6.4). With
      // divergence sorting the enabled nodes are packed first (Sec. 7.6).
      std::vector<Var> active;
      if (opts.divergence_sort) {
        for (Var v = 0; v < n; ++v) {
          bool enabled = touched[v] != 0;
          nbr[v].for_each([&](Var u) { enabled |= changed_cur[u] != 0; });
          if (enabled) active.push_back(v);
        }
      }
      const std::uint64_t todo = opts.divergence_sort ? active.size() : n;
      // Jacobi round: every reader sees the round-start points-to image
      // (pts is frozen for the whole launch), grown sets are staged per
      // node, and the host commits them in ascending node order after the
      // launch. Values, op charges and the grew count are all pure
      // functions of the round-start state, so the phase runs
      // block-parallel in every mode with no locks at all. The staging
      // copy is simulation bookkeeping: the modeled union charge is the
      // same in-place sequence the GPU kernel would execute.
      std::vector<std::vector<Var>> staged(todo);
      std::vector<std::uint8_t> grew_at(todo, 0);
      const auto phase_b = [&](gpu::ThreadCtx& ctx) {
        for (std::uint64_t i = ctx.tid(); i < todo; i += T) {
          const Var v = opts.divergence_sort ? active[i]
                                             : static_cast<Var>(i);
          ctx.work(1);
          bool enabled = touched[v] != 0;
          if (!opts.divergence_sort) {
            nbr[v].for_each([&](Var u) {
              ctx.work(1);
              enabled |= changed_cur[u] != 0;
            });
            if (!enabled) continue;
          }
          bool grew = false;
          std::uint64_t ops = 0;
          std::vector<Var> acc = pts[v];
          nbr[v].for_each([&](Var u) {
            grew |= union_into(acc, pts[u], &ops);
          });
          ctx.work(ops);
          ctx.global_access(nbr[v].size());
          if (grew) {
            staged[i].swap(acc);
            grew_at[i] = 1;
          }
        }
      };
      const gpu::Phase pb[1] = {{phase_b, /*sequential=*/false}};
      dev.launch_phases(lc, std::span<const gpu::Phase>(pb));
      for (std::uint64_t i = 0; i < todo; ++i) {
        if (!grew_at[i]) continue;
        const Var v =
            opts.divergence_sort ? active[i] : static_cast<Var>(i);
        pts[v].swap(staged[i]);
        changed_next[v] = 1;
        ++round_grew;
      }
    } else {
      // Push: a node writes into its successors' sets; every update is
      // synchronized (the cost the pull model avoids — the atomics are
      // charged in-kernel, against the round-start set sizes). The writes
      // themselves are staged in per-block buffers and committed in
      // (block, program) order after the launch, which pins the union
      // order — and with it changed_next and the grew count — without any
      // lock.
      gpu::BlockReduce<std::vector<std::pair<Var, Var>>> staged(lc.blocks,
                                                                {});
      const auto phase_b = [&](gpu::ThreadCtx& ctx) {
        for (std::uint64_t u = ctx.tid(); u < n; u += T) {
          ctx.work(1);
          if (!changed_cur[u] && !touched[u]) continue;
          std::uint64_t ops = 0;
          nbr[u].for_each([&](Var v) {
            ctx.atomic_op();
            ops += pts[v].size() + pts[u].size() + 1;
            staged.slot(ctx.block()).push_back(
                {v, static_cast<Var>(u)});
          });
          ctx.work(ops);
        }
      };
      const gpu::Phase pb[1] = {{phase_b, /*sequential=*/false}};
      dev.launch_phases(lc, std::span<const gpu::Phase>(pb));
      for (std::uint32_t b = 0; b < staged.num_blocks(); ++b) {
        for (const auto& [v, u] : staged.slot(b)) {
          if (union_into(pts[v], pts[u], nullptr)) {
            changed_next[v] = 1;
            ++round_grew;
          }
        }
      }
    }

    st.counted_work = dev.stats().total_work;
    std::fill(touched.begin(), touched.end(), 0);
    changed_cur.swap(changed_next);
    std::fill(changed_next.begin(), changed_next.end(), 0);
    progress = round_added > 0 || round_grew > 0 || full_sweep;
  }

  // Invariant gate under fault campaigns: the survived run must still be a
  // sound fixed point. Checked only when a campaign is armed — the closure
  // walk re-visits every constraint.
  if (dev.faults_armed()) {
    if (!check_solution(cs, pts, opts.pointer_rep)) {
      throw FaultError(
          Status(StatusCode::kInvariantViolation,
                 "pta::solve_gpu: recovered solution violates points-to "
                 "soundness"));
    }
    dev.note_recovery("points-to soundness verified after fault campaign");
  }

  // Copy the solution back to the host.
  for (const auto& s : pts) st.pts_total += s.size();
  dev.note_copy(st.pts_total * sizeof(Var));

  st.device_mallocs = dev.stats().device_mallocs;
  st.wall_seconds = timer.seconds();
  st.modeled_cycles = dev.stats().modeled_cycles;
  if (stats) *stats = st;
  return pts;
}

}  // namespace morph::pta
