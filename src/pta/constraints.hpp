// Andersen-style inclusion-based points-to analysis: constraints and
// workloads (paper Sec. 4).
//
// Four constraint kinds over program variables:
//   address-of  p = &q    seeds pts(p) with q
//   copy        p = q     subset edge q -> p
//   load        p = *q    for every v in pts(q), edge v -> p
//   store       *p = q    for every v in pts(p), edge q -> v
//
// The paper evaluates on constraint files extracted from six SPEC 2000
// programs; those files are proprietary to the original toolchain, so we
// generate synthetic constraint sets with the *published* variable and
// constraint counts (Fig. 10) and a realistic kind mix / degree skew (see
// DESIGN.md, Substitutions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace morph::pta {

using Var = std::uint32_t;

enum class ConstraintKind : std::uint8_t {
  kAddressOf,
  kCopy,
  kLoad,
  kStore,
};

struct Constraint {
  ConstraintKind kind;
  Var dst;  ///< p in the table above
  Var src;  ///< q
};

struct ConstraintSet {
  std::uint32_t num_vars = 0;
  std::vector<Constraint> constraints;
};

/// Random constraint set: `num_cons` constraints over `num_vars` variables
/// with a C-like kind mix (address-of 30%, copy 40%, load 15%, store 15%)
/// and Zipf-skewed variable usage (a few hot globals, many locals).
ConstraintSet synthetic_program(std::uint32_t num_vars,
                                std::uint32_t num_cons, std::uint64_t seed);

/// Block-local constraint program for the incremental-PTA workloads: vars
/// are partitioned into blocks of `block` and every constraint stays inside
/// its block (uniform endpoints, C-like kind mix). The points-to closure of
/// a block is independent of the rest, so an update batch touching a few
/// blocks resolves in O(changes) — the clustered counterpart of
/// graph::gen_clustered (pta/incremental.hpp).
ConstraintSet clustered_program(std::uint32_t num_vars, std::uint32_t block,
                                std::uint32_t cons_per_block,
                                std::uint64_t seed);

/// One row of the paper's Fig. 10: benchmark name with its published
/// variable / constraint counts.
struct SpecWorkload {
  std::string name;
  std::uint32_t vars;
  std::uint32_t cons;
};

/// The six SPEC 2000 workloads of Fig. 10 (sizes from the paper).
const std::vector<SpecWorkload>& spec2000_workloads();

/// Synthetic stand-in for a Fig. 10 benchmark (sizes match; contents are
/// generated with the benchmark's index as seed).
ConstraintSet spec_like(const SpecWorkload& w);

}  // namespace morph::pta
