// Incremental Andersen points-to analysis (ROADMAP: incremental recompute
// for dynamic inputs). The inclusion fixed point is monotone — points-to
// sets only grow — so new constraints never require a teardown: they seed a
// worklist with just their endpoints and propagation resumes from the
// current solution. Since the fixed point of a constraint set is unique,
// the resumed solution is exactly `solve_gpu` of the accumulated set, for
// any `--host-workers` count and worklist mode.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpu/device.hpp"
#include "pta/constraints.hpp"
#include "pta/solve.hpp"

namespace morph::pta {

/// Persistent solver state between constraint batches. Treat as opaque;
/// mutate only through make_pta_state / apply_updates.
struct PtaState {
  ConstraintSet cs;  ///< accumulated constraints
  PtsSets pts;       ///< current fixed point (sorted, duplicate-free sets)
  /// Materialized subset edges, outgoing: edges_out[src] is the sorted set
  /// of dst vars (copy constraints plus edges derived from loads/stores).
  std::vector<std::vector<Var>> edges_out;
  std::vector<std::vector<Var>> loads_from;  ///< q -> {p : p = *q}
  std::vector<std::vector<Var>> stores_to;   ///< p -> {q : *p = q}
  std::uint64_t rounds = 0;       ///< cumulative propagation rounds
  std::uint64_t edges_added = 0;  ///< cumulative materialized edges
  std::uint64_t pts_total = 0;    ///< current sum of set sizes
};

/// Result of one batch: sizes after the batch plus this batch's cost.
struct PtaDelta {
  std::uint64_t pts_total = 0;    ///< post-batch sum of set sizes
  std::uint64_t pts_added = 0;    ///< facts discovered by this batch
  std::uint64_t edges_added = 0;  ///< edges materialized by this batch
  std::uint64_t rounds = 0;       ///< propagation rounds this batch
  double modeled_cycles = 0.0;
};

/// Empty state over `num_vars` variables (no constraints, all sets empty).
PtaState make_pta_state(std::uint32_t num_vars);

/// Folds a batch of new constraints into the fixed point. Only the batch's
/// endpoints seed the worklist; propagation touches the affected closure.
PtaDelta apply_updates(PtaState& st, std::span<const Constraint> updates,
                       gpu::Device& dev);

/// FNV-1a digest of (num_vars, all points-to sets); the session replies'
/// byte-identity token.
std::uint64_t state_digest(const PtaState& st);

}  // namespace morph::pta
