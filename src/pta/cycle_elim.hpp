// Offline cycle elimination for points-to analysis.
//
// Variables on a cycle of copy edges provably have equal points-to sets, so
// the cycle can be collapsed to one representative before solving. The
// paper notes its CPU baselines perform (online) cycle elimination while
// its GPU code does not; this pass provides the offline variant as an
// optional extension, letting the ablation bench quantify what the GPU
// implementation left on the table.
//
// Soundness: only *pointer positions* are rewritten to representatives.
// Address-taken operands (the elements inside points-to sets) keep their
// original ids; the solver maps a dynamically discovered edge's pointer
// endpoint through the representative table (PtaOptions::pointer_rep).
// After solving, every collapsed variable inherits its representative's
// set, giving a fixed point identical to the unreduced solver's.
#pragma once

#include <vector>

#include "pta/constraints.hpp"
#include "pta/solve.hpp"

namespace morph::pta {

struct ReducedProgram {
  ConstraintSet reduced;   ///< constraints rewritten onto representatives
  std::vector<Var> rep;    ///< original var -> representative (same space)
  std::uint32_t cycles_collapsed = 0;  ///< SCCs with more than one member
};

/// Collapses the strongly connected components of the static copy-edge
/// graph. Trivial (singleton) components keep their variable.
ReducedProgram collapse_copy_cycles(const ConstraintSet& cs);

/// solve_gpu with the offline cycle-elimination pre-pass and solution
/// expansion. Produces the same fixed point as solve_serial(cs).
PtsSets solve_gpu_cycle_elim(const ConstraintSet& cs, gpu::Device& dev,
                             PtaOptions opts = {}, PtaStats* stats = nullptr,
                             std::uint32_t* cycles_collapsed = nullptr);

}  // namespace morph::pta
