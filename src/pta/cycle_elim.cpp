#include "pta/cycle_elim.hpp"

#include <algorithm>

#include "graph/scc.hpp"

namespace morph::pta {

ReducedProgram collapse_copy_cycles(const ConstraintSet& cs) {
  // Static copy-edge graph: src -> dst per copy constraint.
  std::vector<graph::Edge> edges;
  for (const Constraint& c : cs.constraints) {
    if (c.kind == ConstraintKind::kCopy && c.src != c.dst) {
      edges.push_back({c.src, c.dst, 1});
    }
  }
  const graph::CsrGraph g =
      graph::CsrGraph::from_edges(cs.num_vars, edges, /*with_weights=*/false);
  const graph::SccResult scc = graph::strongly_connected_components(g);

  // Representative of each SCC: its minimum member.
  std::vector<Var> comp_rep(scc.num_components, ~0u);
  for (Var v = 0; v < cs.num_vars; ++v) {
    Var& r = comp_rep[scc.component[v]];
    r = std::min(r, v);
  }

  ReducedProgram out;
  out.rep.resize(cs.num_vars);
  for (Var v = 0; v < cs.num_vars; ++v) {
    out.rep[v] = comp_rep[scc.component[v]];
  }
  std::vector<std::uint32_t> members(scc.num_components, 0);
  for (Var v = 0; v < cs.num_vars; ++v) ++members[scc.component[v]];
  for (std::uint32_t m : members) out.cycles_collapsed += (m > 1) ? 1 : 0;

  out.reduced.num_vars = cs.num_vars;
  out.reduced.constraints.reserve(cs.constraints.size());
  for (Constraint c : cs.constraints) {
    switch (c.kind) {
      case ConstraintKind::kAddressOf:
        c.dst = out.rep[c.dst];  // src is an element: keep the original id
        break;
      case ConstraintKind::kCopy:
        c.dst = out.rep[c.dst];
        c.src = out.rep[c.src];
        if (c.dst == c.src) continue;  // intra-cycle copy: now vacuous
        break;
      case ConstraintKind::kLoad:
      case ConstraintKind::kStore:
        c.dst = out.rep[c.dst];
        c.src = out.rep[c.src];
        break;
    }
    out.reduced.constraints.push_back(c);
  }
  return out;
}

PtsSets solve_gpu_cycle_elim(const ConstraintSet& cs, gpu::Device& dev,
                             PtaOptions opts, PtaStats* stats,
                             std::uint32_t* cycles_collapsed) {
  const ReducedProgram r = collapse_copy_cycles(cs);
  if (cycles_collapsed) *cycles_collapsed = r.cycles_collapsed;
  opts.pointer_rep = &r.rep;
  PtsSets pts = solve_gpu(r.reduced, dev, opts, stats);
  // Expansion: collapsed variables inherit their representative's set.
  for (Var v = 0; v < cs.num_vars; ++v) {
    if (r.rep[v] != v) pts[v] = pts[r.rep[v]];
  }
  return pts;
}

}  // namespace morph::pta
