// MorphSan: an opt-in shadow-state hazard checker for the SIMT simulator.
//
// The paper's morph kernels live or die on disciplined concurrent structure
// mutation: the 3-phase conflict protocol must make cavity commits disjoint,
// worklist slots must follow the claim -> publish -> pop protocol, recycled
// memory must not be touched in flight, and every thread of a launch must
// cross the same barriers. Nothing in the simulator *checked* those
// disciplines — a violation surfaced only when an answer or the byte-identity
// gate broke. The Sanitizer turns each discipline into shadow state with
// machine-checked transitions, attached per device via
// gpu::DeviceConfig::sanitize (and `--sanitize=<classes>` in the benches).
//
// Hazard classes (SanitizeOptions selects any subset):
//   races     inter-block conflicting non-atomic accesses to the same word
//             within one parallel phase (no barrier orders them), plus the
//             lockset-style checks over MarkTable ownership: overlapping
//             neighborhoods accepted by two activities, and cavity commits
//             not covered by the committing thread's ownership.
//   worklist  lost updates / ABA on claim-commit slots: double claims,
//             publication of unclaimed slots, pops of unpublished (in-flight)
//             slots, double pops.
//   memory    use-after-free / double-free on DeviceHeap chunks,
//             use-after-recycle / double-recycle on SlotRecycler slots.
//   barriers  threads of one launch reaching different barrier sequences
//             (ThreadCtx::sync_block annotations).
//
// The checker is pure shadow state: it charges nothing to the cost model and
// mutates nothing it observes, so modeled statistics are identical with and
// without it, and a detached device (DeviceConfig::sanitize == nullptr) costs
// one branch per hook. Thread-safe: hooks are called concurrently from
// block-parallel host workers. See docs/ANALYSIS.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace morph::analysis {

/// The four hazard classes `--sanitize=` selects between.
enum class HazardClass : std::uint8_t {
  kRaces = 0,
  kWorklist = 1,
  kMemory = 2,
  kBarriers = 3,
};
inline constexpr std::size_t kNumHazardClasses = 4;

const char* hazard_class_name(HazardClass c);

/// Which hazard classes are armed. Parsed from `--sanitize=` specs like
/// "races,worklist" or "all".
struct SanitizeOptions {
  bool races = false;
  bool worklist = false;
  bool memory = false;
  bool barriers = false;

  bool any() const { return races || worklist || memory || barriers; }
  bool enabled(HazardClass c) const {
    switch (c) {
      case HazardClass::kRaces: return races;
      case HazardClass::kWorklist: return worklist;
      case HazardClass::kMemory: return memory;
      case HazardClass::kBarriers: return barriers;
    }
    return false;
  }

  static SanitizeOptions all() { return {true, true, true, true}; }

  /// Parses a comma-separated class list ("races,worklist,memory,barriers")
  /// or "all". Returns false (leaving *out untouched) on any unknown token
  /// or an empty spec.
  static bool parse(std::string_view spec, SanitizeOptions* out);

  /// Canonical spec string ("races,memory"; "all" when everything is on).
  std::string to_string() const;
};

/// One detected hazard. `kernel`/`launch`/`phase` locate the offending
/// launch (kernel is the LaunchConfig::label, or "launch#<n>" when the call
/// site did not label it; "<host>" for hooks hit between launches); `addr`
/// is the offending shadow address (a word, a worklist slot id, a chunk
/// base, or a recycler slot id, depending on `kind`).
struct Finding {
  HazardClass cls = HazardClass::kRaces;
  std::string kind;    ///< stable slug, e.g. "inter-block-race", "double-pop"
  std::string kernel;  ///< launch label of the offending launch
  std::uint32_t launch = 0;
  std::uint32_t phase = 0;
  std::uintptr_t addr = 0;
  std::string detail;  ///< human-readable specifics (blocks, tids, states)

  /// "[races] inter-block-race: kernel 'dmr.refine' launch 3 phase 0
  ///  addr 0x...: ..." — the diagnostic format the seeded-bug suite matches.
  std::string to_string() const;
};

/// The shadow-state checker. One instance may be shared by several devices
/// (findings then aggregate); every hook is thread-safe.
class Sanitizer {
 public:
  /// Agent id for host-side (between-launch) accesses: ordered with respect
  /// to everything, so never part of a race, but still subject to the
  /// memory-shadow (use-after-free) checks.
  static constexpr std::uint32_t kHostAgent = 0xffffffffu;

  enum class Access : std::uint8_t { kRead, kWrite, kAtomic };

  explicit Sanitizer(SanitizeOptions opts = SanitizeOptions::all());

  const SanitizeOptions& options() const { return opts_; }

  // --- launch lifecycle (called by gpu::Device) -------------------------

  void begin_launch(const std::string& label, std::uint32_t launch_ord,
                    std::uint32_t blocks, std::uint32_t threads_per_block,
                    std::uint32_t phases);
  /// `ordered` means the phase's blocks are executed in a defined total
  /// order (Phase::sequential, or an armed fault campaign pinning block
  /// order): inter-block accesses within it are ordered by construction and
  /// are exempt from the race check.
  void begin_phase(std::uint32_t phase, bool ordered);
  /// The inter-phase global barrier: orders everything, so the per-phase
  /// access history is resolved (barrier-divergence check) and cleared.
  void end_phase();
  void end_launch();

  // --- data races (races) ----------------------------------------------

  /// Records one access to [addr, addr+bytes) by `block` (kHostAgent for
  /// host-side accesses). Two accesses to the same word from different
  /// blocks in the same unordered phase conflict unless both are reads or
  /// both are atomic. Also runs the use-after-free check (memory class).
  void on_access(std::uint32_t block, const void* addr, std::size_t bytes,
                 Access access);

  /// Marks [addr, addr+bytes) as an intentional race (e.g. PTA's monotonic
  /// pull updates, SP's relaxed eta cells): accesses are exempt from the
  /// race check. `why` is kept for the annotation report.
  void annotate_racy(const void* addr, std::size_t bytes, std::string why);
  void clear_racy(const void* addr);

  /// Free-form intent annotation (no address): records that a deliberately
  /// unsynchronized pattern exists, so a clean report still documents it.
  void note_intentional(std::string what, std::string why);

  // --- ownership / lockset (races) --------------------------------------
  // `domain` namespaces element ids (callers pass the MarkTable address).

  /// An activity (thread `tid`) won its neighborhood (try_claim success,
  /// exact/final check success). Granting an element currently granted to a
  /// different live tid is the paper's overlapping-cavity race.
  void on_ownership_granted(const void* domain, std::uint32_t tid,
                            std::span<const std::uint32_t> elements);
  void on_ownership_released(const void* domain, std::uint32_t tid,
                             std::span<const std::uint32_t> elements);
  /// Round boundary (MarkTable::reset): all grants are forgotten.
  void reset_ownership(const void* domain);
  /// A guarded mutation (cavity commit): every element must currently be
  /// granted to `tid` in `domain`, else an "unguarded-write" is reported.
  void on_guarded_write(const void* domain, std::uint32_t block,
                        std::uint32_t tid,
                        std::span<const std::uint32_t> elements);

  // --- worklist claim-commit slots (worklist) ---------------------------
  // `list` identifies the ring (callers pass the worklist / shard address);
  // slots follow Free -> Claimed -> Published -> Popped.

  void on_wl_claim(const void* list, const char* name, std::uint32_t block,
                   std::uint64_t slot);
  void on_wl_publish(const void* list, const char* name, std::uint64_t slot);
  void on_wl_pop(const void* list, const char* name, std::uint32_t block,
                 std::uint64_t slot);
  /// Ring discarded (GlobalWorklist::reset): every slot returns to Free.
  void on_wl_reset(const void* list);
  /// Host-side compaction (ShardedWorklist::compact): the live window
  /// [head, commit) moves to the front of the ring; slot states follow.
  void on_wl_compact(const void* list, std::uint64_t head,
                     std::uint64_t commit);

  // --- allocator shadow (memory) ----------------------------------------

  void on_heap_alloc(const void* base, std::size_t bytes);
  void on_heap_free(const void* base, std::size_t bytes);

  /// The allocation at `base` ceased to exist (allocator teardown): drop it
  /// from both the live and the freed shadow without reporting. Without
  /// this, a later unrelated allocation reusing the address would inherit
  /// stale freed-interval state and produce false use-after-free findings.
  void forget_heap(const void* base, std::size_t bytes);

  /// SlotRecycler shadow: a slot handed back (give) must not be given again
  /// or written before it is re-claimed (take). `pool` namespaces slot ids.
  void on_slot_recycled(const void* pool, std::uint32_t slot);
  void on_slot_reclaimed(const void* pool, std::uint32_t slot);
  void on_slot_write(const void* pool, std::uint32_t slot);
  /// The pool at this address was cleared or destroyed: forget its slots.
  /// Shadow state is keyed by object address, and a successor object
  /// constructed at the same address must start from a clean slate.
  void forget_pool(const void* pool);

  // --- barrier divergence (barriers) ------------------------------------

  /// A thread reached block-level barrier `barrier_id`
  /// (gpu::ThreadCtx::sync_block). At the end of the phase, every thread of
  /// every block must have arrived at the same barrier sequence; the
  /// launches modeled here are bulk-synchronous, so the check is
  /// launch-wide, not merely block-wide.
  void on_barrier_arrive(std::uint32_t block, std::uint32_t thread_in_block,
                         std::uint32_t barrier_id);

  // --- results ----------------------------------------------------------

  bool clean() const;
  /// Findings retained verbatim (capped; see suppressed()).
  std::vector<Finding> findings() const;
  std::uint64_t finding_count(HazardClass c) const;
  std::uint64_t total_findings() const;
  /// Findings beyond the retention cap (counted, not stored).
  std::uint64_t suppressed() const;
  std::vector<std::pair<std::string, std::string>> intentional_notes() const;

  /// Human-readable report ("sanitizer: clean (4 classes armed)" or the
  /// finding list); benches print it to stderr.
  void report(std::ostream& os) const;

  /// Clears findings and all shadow state (not the armed classes).
  void reset();

 private:
  struct WordState {
    std::uint32_t block = 0;
    bool multi_block = false;  ///< compatible accesses from several blocks
    bool has_write = false;
    bool all_atomic = true;
  };
  struct ListShadow {
    enum class Slot : std::uint8_t { kClaimed, kPublished, kPopped };
    std::string name;
    std::unordered_map<std::uint64_t, Slot> slots;  ///< absent == Free
  };

  void add_finding(HazardClass cls, std::string kind, std::uintptr_t addr,
                   std::string detail);  // requires mu_ held
  bool racy_annotated(std::uintptr_t lo, std::uintptr_t hi) const;
  std::string launch_label() const;  // requires mu_ held
  void resolve_barriers();           // requires mu_ held

  SanitizeOptions opts_;
  mutable std::mutex mu_;

  // Launch context.
  bool in_launch_ = false;
  bool phase_ordered_ = true;
  std::string label_;
  std::uint32_t launch_ord_ = 0;
  std::uint32_t blocks_ = 0;
  std::uint32_t tpb_ = 0;
  std::uint32_t phase_ = 0;

  // races: per-phase word shadow + annotations + ownership.
  std::unordered_map<std::uintptr_t, WordState> words_;
  std::map<std::uintptr_t, std::pair<std::uintptr_t, std::string>> racy_;
  std::unordered_map<const void*,
                     std::unordered_map<std::uint32_t, std::uint32_t>>
      owners_;

  // worklist: per-list slot shadow.
  std::unordered_map<const void*, ListShadow> lists_;

  // memory: live/freed heap intervals + recycler slot sets.
  std::map<std::uintptr_t, std::size_t> heap_live_;
  std::map<std::uintptr_t, std::size_t> heap_freed_;
  std::unordered_map<const void*, std::unordered_set<std::uint32_t>>
      recycled_;

  // barriers: per (block, thread) arrival sequences of the current phase.
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::vector<std::uint32_t>>
      arrivals_;

  // Results.
  static constexpr std::size_t kMaxFindings = 256;
  std::vector<Finding> findings_;
  std::uint64_t counts_[kNumHazardClasses] = {0, 0, 0, 0};
  std::uint64_t suppressed_ = 0;
  std::vector<std::pair<std::string, std::string>> notes_;
};

}  // namespace morph::analysis
