#include "analysis/sanitizer.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace morph::analysis {

namespace {

/// Word granularity of the race shadow: accesses within the same 8-byte
/// word conflict (the simulator's "global memory word").
constexpr std::uintptr_t kWordBytes = 8;

std::uintptr_t word_of(std::uintptr_t addr) { return addr / kWordBytes; }

std::string hex(std::uintptr_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

const char* access_name(Sanitizer::Access a) {
  switch (a) {
    case Sanitizer::Access::kRead: return "read";
    case Sanitizer::Access::kWrite: return "write";
    case Sanitizer::Access::kAtomic: return "atomic";
  }
  return "?";
}

std::string seq_string(const std::vector<std::uint32_t>& seq) {
  std::string s = "[";
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(seq[i]);
  }
  return s + "]";
}

}  // namespace

const char* hazard_class_name(HazardClass c) {
  switch (c) {
    case HazardClass::kRaces: return "races";
    case HazardClass::kWorklist: return "worklist";
    case HazardClass::kMemory: return "memory";
    case HazardClass::kBarriers: return "barriers";
  }
  return "unknown";
}

bool SanitizeOptions::parse(std::string_view spec, SanitizeOptions* out) {
  if (spec.empty()) return false;
  SanitizeOptions o;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view tok =
        spec.substr(pos, comma == std::string_view::npos ? spec.size() - pos
                                                         : comma - pos);
    if (tok == "all") {
      o = SanitizeOptions::all();
    } else if (tok == "races") {
      o.races = true;
    } else if (tok == "worklist") {
      o.worklist = true;
    } else if (tok == "memory") {
      o.memory = true;
    } else if (tok == "barriers") {
      o.barriers = true;
    } else {
      return false;  // unknown token (includes empty tokens from ",,")
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  *out = o;
  return true;
}

std::string SanitizeOptions::to_string() const {
  if (races && worklist && memory && barriers) return "all";
  std::string s;
  const auto add = [&s](bool on, const char* name) {
    if (!on) return;
    if (!s.empty()) s += ",";
    s += name;
  };
  add(races, "races");
  add(worklist, "worklist");
  add(memory, "memory");
  add(barriers, "barriers");
  return s.empty() ? "none" : s;
}

std::string Finding::to_string() const {
  std::string s = "[";
  s += hazard_class_name(cls);
  s += "] ";
  s += kind;
  s += ": kernel '";
  s += kernel;
  s += "' launch ";
  s += std::to_string(launch);
  s += " phase ";
  s += std::to_string(phase);
  s += " addr ";
  s += hex(addr);
  if (!detail.empty()) {
    s += ": ";
    s += detail;
  }
  return s;
}

Sanitizer::Sanitizer(SanitizeOptions opts) : opts_(opts) {}

std::string Sanitizer::launch_label() const {
  if (!in_launch_) return "<host>";
  if (!label_.empty()) return label_;
  return "launch#" + std::to_string(launch_ord_);
}

void Sanitizer::add_finding(HazardClass cls, std::string kind,
                            std::uintptr_t addr, std::string detail) {
  ++counts_[static_cast<std::size_t>(cls)];
  if (findings_.size() >= kMaxFindings) {
    ++suppressed_;
    return;
  }
  Finding f;
  f.cls = cls;
  f.kind = std::move(kind);
  f.kernel = launch_label();
  f.launch = in_launch_ ? launch_ord_ : 0;
  f.phase = in_launch_ ? phase_ : 0;
  f.addr = addr;
  f.detail = std::move(detail);
  findings_.push_back(std::move(f));
}

// --- launch lifecycle ----------------------------------------------------

void Sanitizer::begin_launch(const std::string& label,
                             std::uint32_t launch_ord, std::uint32_t blocks,
                             std::uint32_t threads_per_block,
                             std::uint32_t phases) {
  std::scoped_lock lock(mu_);
  (void)phases;
  in_launch_ = true;
  label_ = label;
  launch_ord_ = launch_ord;
  blocks_ = blocks;
  tpb_ = threads_per_block;
  phase_ = 0;
  words_.clear();
  arrivals_.clear();
}

void Sanitizer::begin_phase(std::uint32_t phase, bool ordered) {
  std::scoped_lock lock(mu_);
  phase_ = phase;
  phase_ordered_ = ordered;
  words_.clear();
  arrivals_.clear();
}

void Sanitizer::end_phase() {
  std::scoped_lock lock(mu_);
  if (opts_.barriers) resolve_barriers();
  // The global barrier orders every access of this phase before every
  // access of the next: the word shadow resets.
  words_.clear();
  arrivals_.clear();
}

void Sanitizer::end_launch() {
  std::scoped_lock lock(mu_);
  in_launch_ = false;
  label_.clear();
}

// --- races ---------------------------------------------------------------

bool Sanitizer::racy_annotated(std::uintptr_t lo, std::uintptr_t hi) const {
  auto it = racy_.upper_bound(lo);
  if (it != racy_.begin()) {
    --it;
    if (it->second.first > lo) return true;  // interval covering lo
  }
  it = racy_.upper_bound(lo);
  return it != racy_.end() && it->first < hi;
}

void Sanitizer::on_access(std::uint32_t block, const void* addr,
                          std::size_t bytes, Access access) {
  if (!opts_.races && !opts_.memory) return;
  if (bytes == 0) return;
  const auto lo = reinterpret_cast<std::uintptr_t>(addr);
  const auto hi = lo + bytes;
  std::scoped_lock lock(mu_);

  if (opts_.memory && !heap_freed_.empty()) {
    auto it = heap_freed_.upper_bound(lo);
    if (it != heap_freed_.begin()) --it;
    for (; it != heap_freed_.end() && it->first < hi; ++it) {
      if (it->first + it->second <= lo) continue;
      add_finding(HazardClass::kMemory, "use-after-free", lo,
                  std::string(access_name(access)) + " of " +
                      std::to_string(bytes) + " bytes inside freed chunk " +
                      hex(it->first) + "+" + std::to_string(it->second) +
                      " by block " +
                      (block == kHostAgent ? "<host>"
                                           : std::to_string(block)));
      break;
    }
  }

  if (!opts_.races) return;
  // Host-side accesses and ordered (sequential / campaign-pinned) phases
  // are totally ordered with respect to everything in the launch.
  if (block == kHostAgent || !in_launch_ || phase_ordered_) return;
  if (racy_annotated(lo, hi)) return;

  const bool is_write = access != Access::kRead;
  const bool is_atomic = access == Access::kAtomic;
  for (std::uintptr_t w = word_of(lo); w <= word_of(hi - 1); ++w) {
    auto [it, fresh] = words_.try_emplace(w);
    WordState& ws = it->second;
    if (fresh) {
      ws.block = block;
      ws.has_write = is_write;
      ws.all_atomic = is_atomic;
      continue;
    }
    if (ws.block == block && !ws.multi_block) {
      ws.has_write |= is_write;
      ws.all_atomic &= is_atomic;
      continue;
    }
    // Inter-block pair within one unordered phase: conflict unless both
    // sides are reads or both sides are atomic.
    const bool conflict =
        (is_write || ws.has_write) && !(is_atomic && ws.all_atomic);
    if (conflict) {
      add_finding(
          HazardClass::kRaces, "inter-block-race", w * kWordBytes,
          std::string(access_name(access)) + " by block " +
              std::to_string(block) + " conflicts with prior " +
              (ws.has_write ? (ws.all_atomic ? "atomic write" : "write")
                            : "read") +
              " by block " +
              (ws.multi_block ? std::string("(several)")
                              : std::to_string(ws.block)) +
              " in the same unordered phase");
      // Keep reporting per word at most once per phase.
      ws.multi_block = true;
      ws.all_atomic = true;
      ws.has_write = false;
      continue;
    }
    ws.multi_block = true;
    ws.has_write |= is_write;
    ws.all_atomic &= is_atomic;
  }
}

void Sanitizer::annotate_racy(const void* addr, std::size_t bytes,
                              std::string why) {
  std::scoped_lock lock(mu_);
  const auto lo = reinterpret_cast<std::uintptr_t>(addr);
  racy_[lo] = {lo + bytes, std::move(why)};
}

void Sanitizer::clear_racy(const void* addr) {
  std::scoped_lock lock(mu_);
  racy_.erase(reinterpret_cast<std::uintptr_t>(addr));
}

void Sanitizer::note_intentional(std::string what, std::string why) {
  std::scoped_lock lock(mu_);
  for (const auto& [w, _] : notes_) {
    if (w == what) return;  // once per pattern, not per call
  }
  notes_.emplace_back(std::move(what), std::move(why));
}

void Sanitizer::on_ownership_granted(const void* domain, std::uint32_t tid,
                                     std::span<const std::uint32_t> elements) {
  if (!opts_.races) return;
  std::scoped_lock lock(mu_);
  auto& owned = owners_[domain];
  for (std::uint32_t e : elements) {
    auto [it, fresh] = owned.try_emplace(e, tid);
    if (!fresh && it->second != tid) {
      add_finding(HazardClass::kRaces, "overlapping-ownership", e,
                  "element " + std::to_string(e) + " granted to activity " +
                      std::to_string(tid) + " while still owned by " +
                      std::to_string(it->second) +
                      " (overlapping neighborhoods both accepted)");
      it->second = tid;
    }
  }
}

void Sanitizer::on_ownership_released(const void* domain, std::uint32_t tid,
                                      std::span<const std::uint32_t> elements) {
  if (!opts_.races) return;
  std::scoped_lock lock(mu_);
  auto dom = owners_.find(domain);
  if (dom == owners_.end()) return;
  for (std::uint32_t e : elements) {
    auto it = dom->second.find(e);
    if (it != dom->second.end() && it->second == tid) dom->second.erase(it);
  }
}

void Sanitizer::reset_ownership(const void* domain) {
  std::scoped_lock lock(mu_);
  owners_.erase(domain);
}

void Sanitizer::on_guarded_write(const void* domain, std::uint32_t block,
                                 std::uint32_t tid,
                                 std::span<const std::uint32_t> elements) {
  if (!opts_.races) return;
  std::scoped_lock lock(mu_);
  const auto dom = owners_.find(domain);
  for (std::uint32_t e : elements) {
    std::uint32_t owner = kHostAgent;
    bool has_owner = false;
    if (dom != owners_.end()) {
      const auto it = dom->second.find(e);
      if (it != dom->second.end()) {
        owner = it->second;
        has_owner = true;
      }
    }
    if (has_owner && owner == tid) continue;
    add_finding(
        HazardClass::kRaces, "unguarded-write", e,
        "block " + std::to_string(block) + " activity " +
            std::to_string(tid) + " mutates element " + std::to_string(e) +
            " without owning it (" +
            (has_owner ? "owned by " + std::to_string(owner)
                       : "no grant recorded") +
            ") — cavity commit outside the race/prioritycheck/check "
            "protocol");
  }
}

// --- worklist ------------------------------------------------------------

void Sanitizer::on_wl_claim(const void* list, const char* name,
                            std::uint32_t block, std::uint64_t slot) {
  if (!opts_.worklist) return;
  std::scoped_lock lock(mu_);
  ListShadow& sh = lists_[list];
  if (sh.name.empty()) sh.name = name;
  auto [it, fresh] = sh.slots.try_emplace(slot, ListShadow::Slot::kClaimed);
  if (fresh) return;
  const char* state = it->second == ListShadow::Slot::kClaimed
                          ? "claimed (write in flight)"
                          : it->second == ListShadow::Slot::kPublished
                                ? "published"
                                : "popped";
  add_finding(HazardClass::kWorklist, "slot-claim-collision", slot,
              std::string(sh.name) + " slot " + std::to_string(slot) +
                  " claimed by block " +
                  (block == kHostAgent ? "<host>" : std::to_string(block)) +
                  " while already " + state +
                  " — a lost update: the first writer's item is "
                  "overwritten");
  it->second = ListShadow::Slot::kClaimed;
}

void Sanitizer::on_wl_publish(const void* list, const char* name,
                              std::uint64_t slot) {
  if (!opts_.worklist) return;
  std::scoped_lock lock(mu_);
  ListShadow& sh = lists_[list];
  if (sh.name.empty()) sh.name = name;
  auto it = sh.slots.find(slot);
  if (it == sh.slots.end() || it->second != ListShadow::Slot::kClaimed) {
    add_finding(HazardClass::kWorklist, "publish-unclaimed", slot,
                std::string(sh.name) + " slot " + std::to_string(slot) +
                    " published without a preceding claim — the index "
                    "protocol skipped the reservation CAS");
  }
  sh.slots[slot] = ListShadow::Slot::kPublished;
}

void Sanitizer::on_wl_pop(const void* list, const char* name,
                          std::uint32_t block, std::uint64_t slot) {
  if (!opts_.worklist) return;
  std::scoped_lock lock(mu_);
  ListShadow& sh = lists_[list];
  if (sh.name.empty()) sh.name = name;
  const std::string agent =
      block == kHostAgent ? "<host>" : std::to_string(block);
  auto it = sh.slots.find(slot);
  if (it == sh.slots.end()) {
    add_finding(HazardClass::kWorklist, "pop-unwritten", slot,
                std::string(sh.name) + " slot " + std::to_string(slot) +
                    " popped by block " + agent +
                    " but never claimed or written");
    return;
  }
  switch (it->second) {
    case ListShadow::Slot::kClaimed:
      add_finding(HazardClass::kWorklist, "pop-inflight-write", slot,
                  std::string(sh.name) + " slot " + std::to_string(slot) +
                      " popped by block " + agent +
                      " while its item write is still in flight "
                      "(claimed but not published)");
      break;
    case ListShadow::Slot::kPopped:
      add_finding(HazardClass::kWorklist, "double-pop", slot,
                  std::string(sh.name) + " slot " + std::to_string(slot) +
                      " popped twice (second pop by block " + agent +
                      ") — ABA on the head index delivers one item to two "
                      "consumers");
      break;
    case ListShadow::Slot::kPublished:
      break;  // the legal transition
  }
  it->second = ListShadow::Slot::kPopped;
}

void Sanitizer::on_wl_reset(const void* list) {
  std::scoped_lock lock(mu_);
  auto it = lists_.find(list);
  if (it != lists_.end()) it->second.slots.clear();
}

void Sanitizer::on_wl_compact(const void* list, std::uint64_t head,
                              std::uint64_t commit) {
  std::scoped_lock lock(mu_);
  auto it = lists_.find(list);
  if (it == lists_.end()) return;
  std::unordered_map<std::uint64_t, ListShadow::Slot> moved;
  for (std::uint64_t s = head; s < commit; ++s) {
    auto slot = it->second.slots.find(s);
    if (slot != it->second.slots.end()) {
      moved.emplace(s - head, slot->second);
    }
  }
  it->second.slots = std::move(moved);
}

// --- memory --------------------------------------------------------------

void Sanitizer::on_heap_alloc(const void* base, std::size_t bytes) {
  if (!opts_.memory) return;
  std::scoped_lock lock(mu_);
  const auto lo = reinterpret_cast<std::uintptr_t>(base);
  heap_freed_.erase(lo);  // recycled chunk returns to life
  heap_live_[lo] = bytes;
}

void Sanitizer::on_heap_free(const void* base, std::size_t bytes) {
  if (!opts_.memory) return;
  std::scoped_lock lock(mu_);
  const auto lo = reinterpret_cast<std::uintptr_t>(base);
  if (heap_freed_.count(lo)) {
    add_finding(HazardClass::kMemory, "double-free", lo,
                "chunk " + hex(lo) + "+" + std::to_string(bytes) +
                    " freed twice without an intervening allocation");
    return;
  }
  if (!heap_live_.count(lo)) {
    add_finding(HazardClass::kMemory, "invalid-free", lo,
                "chunk " + hex(lo) + " freed but never allocated from the "
                    "device heap");
    return;
  }
  heap_live_.erase(lo);
  heap_freed_[lo] = bytes;
}

void Sanitizer::on_slot_recycled(const void* pool, std::uint32_t slot) {
  if (!opts_.memory) return;
  std::scoped_lock lock(mu_);
  auto [it, fresh] = recycled_[pool].insert(slot);
  (void)it;
  if (!fresh) {
    add_finding(HazardClass::kMemory, "double-recycle", slot,
                "slot " + std::to_string(slot) +
                    " handed to the recycler twice without being "
                    "re-claimed — two future allocations will alias it");
  }
}

void Sanitizer::on_slot_reclaimed(const void* pool, std::uint32_t slot) {
  if (!opts_.memory) return;
  std::scoped_lock lock(mu_);
  auto it = recycled_.find(pool);
  if (it != recycled_.end()) it->second.erase(slot);
}

void Sanitizer::forget_heap(const void* base, std::size_t bytes) {
  if (!opts_.memory) return;
  std::scoped_lock lock(mu_);
  (void)bytes;
  heap_live_.erase(reinterpret_cast<std::uintptr_t>(base));
  heap_freed_.erase(reinterpret_cast<std::uintptr_t>(base));
}

void Sanitizer::forget_pool(const void* pool) {
  if (!opts_.memory) return;
  std::scoped_lock lock(mu_);
  recycled_.erase(pool);
}

void Sanitizer::on_slot_write(const void* pool, std::uint32_t slot) {
  if (!opts_.memory) return;
  std::scoped_lock lock(mu_);
  auto it = recycled_.find(pool);
  if (it != recycled_.end() && it->second.count(slot)) {
    add_finding(HazardClass::kMemory, "use-after-recycle", slot,
                "slot " + std::to_string(slot) +
                    " written while sitting in the recycler free pool — a "
                    "future take() will hand out a clobbered slot");
  }
}

// --- barriers ------------------------------------------------------------

void Sanitizer::on_barrier_arrive(std::uint32_t block,
                                  std::uint32_t thread_in_block,
                                  std::uint32_t barrier_id) {
  if (!opts_.barriers) return;
  std::scoped_lock lock(mu_);
  arrivals_[{block, thread_in_block}].push_back(barrier_id);
}

void Sanitizer::resolve_barriers() {
  if (arrivals_.empty()) return;
  // The reference sequence: the first arriving thread of the launch. Every
  // thread of every block must match it — the launches modeled here are
  // bulk-synchronous, so a barrier skipped by one thread (or one block)
  // hangs the launch on real hardware.
  const auto& ref = arrivals_.begin()->second;
  const auto ref_key = arrivals_.begin()->first;
  bool reported = false;
  for (std::uint32_t b = 0; b < blocks_ && !reported; ++b) {
    for (std::uint32_t t = 0; t < tpb_; ++t) {
      const auto it = arrivals_.find({b, t});
      const std::vector<std::uint32_t> empty;
      const auto& seq = it == arrivals_.end() ? empty : it->second;
      if (seq == ref) continue;
      add_finding(
          HazardClass::kBarriers, "barrier-divergence", b,
          "block " + std::to_string(b) + " thread " + std::to_string(t) +
              " reached barrier sequence " + seq_string(seq) +
              " but block " + std::to_string(ref_key.first) + " thread " +
              std::to_string(ref_key.second) + " reached " +
              seq_string(ref) + " — the launch deadlocks on real hardware");
      reported = true;  // one finding per phase is enough to localize it
      break;
    }
  }
}

// --- results -------------------------------------------------------------

bool Sanitizer::clean() const {
  std::scoped_lock lock(mu_);
  for (std::uint64_t c : counts_) {
    if (c != 0) return false;
  }
  return true;
}

std::vector<Finding> Sanitizer::findings() const {
  std::scoped_lock lock(mu_);
  return findings_;
}

std::uint64_t Sanitizer::finding_count(HazardClass c) const {
  std::scoped_lock lock(mu_);
  return counts_[static_cast<std::size_t>(c)];
}

std::uint64_t Sanitizer::total_findings() const {
  std::scoped_lock lock(mu_);
  std::uint64_t n = 0;
  for (std::uint64_t c : counts_) n += c;
  return n;
}

std::uint64_t Sanitizer::suppressed() const {
  std::scoped_lock lock(mu_);
  return suppressed_;
}

std::vector<std::pair<std::string, std::string>> Sanitizer::intentional_notes()
    const {
  std::scoped_lock lock(mu_);
  return notes_;
}

void Sanitizer::report(std::ostream& os) const {
  std::scoped_lock lock(mu_);
  std::uint64_t total = 0;
  for (std::uint64_t c : counts_) total += c;
  if (total == 0) {
    os << "sanitizer: clean (--sanitize=" << opts_.to_string() << ")\n";
  } else {
    os << "sanitizer: " << total << " finding(s) (--sanitize="
       << opts_.to_string() << ")\n";
    for (const Finding& f : findings_) os << "  " << f.to_string() << "\n";
    if (suppressed_ > 0) {
      os << "  ... and " << suppressed_ << " more (suppressed)\n";
    }
  }
  for (const auto& [what, why] : notes_) {
    os << "  note: intentional race '" << what << "': " << why << "\n";
  }
}

void Sanitizer::reset() {
  std::scoped_lock lock(mu_);
  words_.clear();
  owners_.clear();
  lists_.clear();
  heap_live_.clear();
  heap_freed_.clear();
  recycled_.clear();
  arrivals_.clear();
  findings_.clear();
  for (std::uint64_t& c : counts_) c = 0;
  suppressed_ = 0;
  notes_.clear();
}

}  // namespace morph::analysis
