// Device memory management for the simulator.
//
// DeviceBuffer models cudaMalloc'd storage with host-driven growth — the
// *Pre-allocation*, *Host-Only* and *Kernel-Host* subgraph-addition
// strategies of paper Sec. 7.1 all manage their storage through it (they
// differ in who computes the new size). DeviceHeap models CUDA 2.x
// kernel-side malloc and implements the *Kernel-Only* strategy: linked
// chunks of a fixed element count, with a free list so explicit deletion
// (Sec. 7.2) can recycle chunks.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "gpu/device.hpp"
#include "support/check.hpp"
#include "support/status.hpp"

namespace morph::gpu {

/// A typed device allocation whose growth is accounted against a Device.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer(Device& dev, std::size_t n = 0) : dev_(&dev), data_(n) {
    if (n) dev_->note_host_alloc(n * sizeof(T));
  }

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  std::size_t capacity() const { return data_.capacity(); }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::span<T> span() { return {data_.data(), data_.size()}; }
  std::span<const T> span() const { return {data_.data(), data_.size()}; }

  /// Optional hard capacity limit in elements (0 = unlimited): growth beyond
  /// it returns kCapacityExceeded from try_grow instead of allocating.
  /// Models a device with finite memory so recovery ladders can be tested.
  void set_limit(std::size_t limit_elems) { limit_elems_ = limit_elems; }
  std::size_t limit() const { return limit_elems_; }

  /// Host-driven growth to at least `n` elements. If the current capacity is
  /// insufficient, a reallocation (alloc + device-to-device copy) is charged;
  /// `slack` over-allocates by that factor to amortize future growth, which
  /// is the knob the paper tunes to "greatly reduce" reallocations.
  /// Returns kCapacityExceeded (leaving the buffer unchanged) when `n`
  /// exceeds the configured limit, so callers can degrade instead of dying.
  Status try_grow(std::size_t n, double slack = 1.5) {
    if (n <= data_.size()) return Status::Ok();
    if (limit_elems_ != 0 && n > limit_elems_) {
      return Status(StatusCode::kCapacityExceeded,
                    "DeviceBuffer growth to " + std::to_string(n) +
                        " elems exceeds limit " +
                        std::to_string(limit_elems_));
    }
    if (n > data_.capacity()) {
      // Clamp so slack < 1.0 can't shrink the request below n (the resize
      // below would then reallocate again, uncharged and unmodeled). The
      // realloc's device-to-device copy moves the old *logical* contents.
      std::size_t new_cap = std::max(
          n, static_cast<std::size_t>(
                 static_cast<double>(std::max(n, data_.capacity())) * slack));
      if (limit_elems_ != 0) new_cap = std::min(new_cap, limit_elems_);
      dev_->note_realloc(data_.size() * sizeof(T));
      dev_->note_host_alloc(new_cap * sizeof(T));
      data_.reserve(new_cap);
    }
    data_.resize(n);
    return Status::Ok();
  }

  /// try_grow that throws morph::FaultError on failure — for call sites with
  /// no recovery ladder (the historical aborting behaviour, now typed).
  void grow(std::size_t n, double slack = 1.5) {
    throw_if_error(try_grow(n, slack));
  }

  /// Models an explicit cudaMemcpy of the whole buffer.
  void transfer() const { dev_->note_copy(data_.size() * sizeof(T)); }

 private:
  Device* dev_;
  std::vector<T> data_;
  std::size_t limit_elems_ = 0;
};

/// Kernel-side chunked allocator (the paper's Kernel-Only strategy, used for
/// PTA's per-node incoming-neighbor lists). Thread-safe.
template <typename T>
class DeviceHeap {
 public:
  DeviceHeap(Device& dev, std::size_t chunk_elems)
      : dev_(&dev), chunk_elems_(chunk_elems) {
    MORPH_CHECK(chunk_elems_ > 0);
  }

  /// The chunk allocations die with the heap; tell the sanitizer to drop
  /// their shadow intervals so a later allocation reusing an address does
  /// not inherit stale freed-chunk state (false use-after-free).
  ~DeviceHeap() {
    if (analysis::Sanitizer* s = dev_->sanitizer()) {
      for (const auto& c : chunks_) {
        s->forget_heap(c.get(), chunk_elems_ * sizeof(T));
      }
    }
  }
  DeviceHeap(const DeviceHeap&) = delete;
  DeviceHeap& operator=(const DeviceHeap&) = delete;

  std::size_t chunk_elems() const { return chunk_elems_; }
  std::uint64_t chunks_live() const { return live_; }
  std::uint64_t chunks_recycled() const { return recycled_; }

  /// The accounting device; apps use it to reach the attached sanitizer for
  /// access annotations on heap-backed structures.
  Device* device() const { return dev_; }

  /// Arena budget: total chunks the kernel-side heap may hold (0 =
  /// unlimited, the historical behaviour). A budget models the fixed-size
  /// malloc arena CUDA gives kernel-side malloc; exceeding it is the
  /// Kernel-Only failure the paper's Sec. 6.2 Kernel-Host fallback exists
  /// for.
  void set_max_chunks(std::uint64_t max_chunks) { max_chunks_ = max_chunks; }
  std::uint64_t max_chunks() const { return max_chunks_; }
  std::uint64_t chunks_total() const {
    std::scoped_lock lock(mu_);
    return static_cast<std::uint64_t>(chunks_.size());
  }

  /// Host-side arena growth (the Kernel-Host degradation step): raises the
  /// chunk budget by `extra_chunks` and charges the host-side allocation.
  /// Only meaningful when a budget is set.
  void grow_arena(std::uint64_t extra_chunks) {
    std::scoped_lock lock(mu_);
    MORPH_CHECK(max_chunks_ > 0);
    max_chunks_ += extra_chunks;
    dev_->note_host_alloc(extra_chunks * chunk_elems_ * sizeof(T));
  }

  /// Allocates one chunk; reuses a freed chunk when available. Returns
  /// kArenaExhausted (and allocates nothing) when the arena budget is
  /// reached — or when an armed fault campaign injects exhaustion at this
  /// opportunity. The caller is a kernel thread and should charge
  /// ctx.atomic_op() — device malloc serializes — which we leave to the call
  /// site since not all callers hold a ThreadCtx.
  Status try_alloc_chunk(std::span<T>* out) {
    std::scoped_lock lock(mu_);
    const bool fresh_needed = free_.empty();
    if (fresh_needed) {
      if (dev_->fault_should_fire(resilience::FaultClass::kArenaExhaust)) {
        dev_->note_fault(resilience::FaultClass::kArenaExhaust,
                         "device-malloc arena exhausted (injected), " +
                             std::to_string(chunks_.size()) + " chunks held");
        return Status(StatusCode::kArenaExhausted,
                      "kernel-side malloc arena exhausted (injected)");
      }
      if (max_chunks_ != 0 && chunks_.size() >= max_chunks_) {
        return Status(StatusCode::kArenaExhausted,
                      "kernel-side malloc arena at budget (" +
                          std::to_string(max_chunks_) + " chunks)");
      }
    }
    ++live_;
    if (!fresh_needed) {
      T* p = free_.back();
      free_.pop_back();
      ++recycled_;
      *out = {p, chunk_elems_};
      if (analysis::Sanitizer* s = dev_->sanitizer()) {
        s->on_heap_alloc(p, chunk_elems_ * sizeof(T));
      }
      return Status::Ok();
    }
    dev_->note_device_malloc(chunk_elems_ * sizeof(T));
    chunks_.push_back(std::make_unique<T[]>(chunk_elems_));
    *out = {chunks_.back().get(), chunk_elems_};
    if (analysis::Sanitizer* s = dev_->sanitizer()) {
      s->on_heap_alloc(chunks_.back().get(), chunk_elems_ * sizeof(T));
    }
    return Status::Ok();
  }

  /// try_alloc_chunk that throws morph::FaultError on exhaustion — for call
  /// sites without a Kernel-Host recovery ladder.
  std::span<T> alloc_chunk() {
    std::span<T> chunk;
    throw_if_error(try_alloc_chunk(&chunk));
    return chunk;
  }

  /// Returns a chunk to the free list (Explicit deletion, Sec. 7.2). The
  /// shadow hook runs before the free-list push so a double-free is caught
  /// against the *previous* free, not the state this call creates.
  void free_chunk(std::span<T> chunk) {
    MORPH_CHECK(chunk.size() == chunk_elems_);
    std::scoped_lock lock(mu_);
    MORPH_CHECK(live_ > 0);
    if (analysis::Sanitizer* s = dev_->sanitizer()) {
      s->on_heap_free(chunk.data(), chunk.size() * sizeof(T));
    }
    --live_;
    free_.push_back(chunk.data());
  }

 private:
  Device* dev_;
  std::size_t chunk_elems_;
  std::uint64_t max_chunks_ = 0;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<T*> free_;
  std::uint64_t live_ = 0;
  std::uint64_t recycled_ = 0;
};

}  // namespace morph::gpu
