// Device memory management for the simulator.
//
// DeviceBuffer models cudaMalloc'd storage with host-driven growth — the
// *Pre-allocation*, *Host-Only* and *Kernel-Host* subgraph-addition
// strategies of paper Sec. 7.1 all manage their storage through it (they
// differ in who computes the new size). DeviceHeap models CUDA 2.x
// kernel-side malloc and implements the *Kernel-Only* strategy: linked
// chunks of a fixed element count, with a free list so explicit deletion
// (Sec. 7.2) can recycle chunks.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "gpu/device.hpp"
#include "support/check.hpp"

namespace morph::gpu {

/// A typed device allocation whose growth is accounted against a Device.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer(Device& dev, std::size_t n = 0) : dev_(&dev), data_(n) {
    if (n) dev_->note_host_alloc(n * sizeof(T));
  }

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  std::size_t capacity() const { return data_.capacity(); }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::span<T> span() { return {data_.data(), data_.size()}; }
  std::span<const T> span() const { return {data_.data(), data_.size()}; }

  /// Host-driven growth to at least `n` elements. If the current capacity is
  /// insufficient, a reallocation (alloc + device-to-device copy) is charged;
  /// `slack` over-allocates by that factor to amortize future growth, which
  /// is the knob the paper tunes to "greatly reduce" reallocations.
  void grow(std::size_t n, double slack = 1.5) {
    if (n <= data_.size()) return;
    if (n > data_.capacity()) {
      // Clamp so slack < 1.0 can't shrink the request below n (the resize
      // below would then reallocate again, uncharged and unmodeled). The
      // realloc's device-to-device copy moves the old *logical* contents.
      const std::size_t new_cap = std::max(
          n, static_cast<std::size_t>(
                 static_cast<double>(std::max(n, data_.capacity())) * slack));
      dev_->note_realloc(data_.size() * sizeof(T));
      dev_->note_host_alloc(new_cap * sizeof(T));
      data_.reserve(new_cap);
    }
    data_.resize(n);
  }

  /// Models an explicit cudaMemcpy of the whole buffer.
  void transfer() const { dev_->note_copy(data_.size() * sizeof(T)); }

 private:
  Device* dev_;
  std::vector<T> data_;
};

/// Kernel-side chunked allocator (the paper's Kernel-Only strategy, used for
/// PTA's per-node incoming-neighbor lists). Thread-safe.
template <typename T>
class DeviceHeap {
 public:
  DeviceHeap(Device& dev, std::size_t chunk_elems)
      : dev_(&dev), chunk_elems_(chunk_elems) {
    MORPH_CHECK(chunk_elems_ > 0);
  }

  std::size_t chunk_elems() const { return chunk_elems_; }
  std::uint64_t chunks_live() const { return live_; }
  std::uint64_t chunks_recycled() const { return recycled_; }

  /// Allocates one chunk; reuses a freed chunk when available. The caller is
  /// a kernel thread and should charge ctx.atomic_op() — device malloc
  /// serializes — which we leave to the call site since not all callers hold
  /// a ThreadCtx.
  std::span<T> alloc_chunk() {
    std::scoped_lock lock(mu_);
    ++live_;
    if (!free_.empty()) {
      T* p = free_.back();
      free_.pop_back();
      ++recycled_;
      return {p, chunk_elems_};
    }
    dev_->note_device_malloc(chunk_elems_ * sizeof(T));
    chunks_.push_back(std::make_unique<T[]>(chunk_elems_));
    return {chunks_.back().get(), chunk_elems_};
  }

  /// Returns a chunk to the free list (Explicit deletion, Sec. 7.2).
  void free_chunk(std::span<T> chunk) {
    MORPH_CHECK(chunk.size() == chunk_elems_);
    std::scoped_lock lock(mu_);
    MORPH_CHECK(live_ > 0);
    --live_;
    free_.push_back(chunk.data());
  }

 private:
  Device* dev_;
  std::size_t chunk_elems_;
  std::mutex mu_;
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<T*> free_;
  std::uint64_t live_ = 0;
  std::uint64_t recycled_ = 0;
};

}  // namespace morph::gpu
