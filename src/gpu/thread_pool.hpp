// A small fixed-size thread pool used to execute simulated GPU blocks (and
// CPU-baseline workers) on real host threads.
//
// Follows the Core Guidelines concurrency rules: threads are joined in the
// destructor (RAII), work items are tasks, no detached threads, waiting is
// always under a condition.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace morph {

class ThreadPool {
 public:
  /// Creates `workers` threads. A pool of size 0 or 1 executes submitted
  /// tasks inline on the calling thread in run_all(); this is the
  /// deterministic default used by tests.
  explicit ThreadPool(std::uint32_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::uint32_t workers() const { return worker_count_; }

  /// Index of the pool worker executing the calling thread: 1..workers() on
  /// pool threads, 0 on any other thread (including the caller of run_all,
  /// which executes tasks itself in inline mode). Telemetry uses this to
  /// pick the per-worker event ring.
  static std::uint32_t current_worker();

  /// Runs `n` tasks f(0..n-1) across the pool and blocks until all complete.
  /// Tasks must not themselves call run_all on the same pool.
  void run_all(std::uint64_t n, const std::function<void(std::uint64_t)>& f);

 private:
  void worker_loop();

  std::uint32_t worker_count_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  // Current batch: tasks are indices [0, batch_n_) claimed via next_.
  const std::function<void(std::uint64_t)>* batch_fn_ = nullptr;
  std::uint64_t batch_n_ = 0;
  std::uint64_t next_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace morph
