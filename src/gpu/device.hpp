// The SIMT bulk-synchronous execution-model simulator.
//
// This module stands in for the CUDA runtime + Fermi GPU the paper evaluates
// on (see DESIGN.md, "Substitutions"). A kernel is a C++ callable invoked
// once per logical thread of a (blocks x threads_per_block) grid. A
// multi-phase launch models a kernel containing intra-kernel *global
// barriers* (the race / prioritycheck / check phases of the paper's 3-phase
// conflict-resolution scheme): all logical threads complete phase i before
// any runs phase i+1, exactly the semantics the paper's global barrier
// provides.
//
// The simulator charges a cost model (DeviceConfig) per launch: warp steps
// are the max of the counted work over each warp's 32 lanes (so divergence
// is penalized), atomics carry a serialization surcharge, and each barrier
// flavour has the cost profile the paper describes (naive atomic barriers
// serialize every thread on one variable; hierarchical and lock-free
// barriers only involve block representatives).
//
// Logical threads may be executed by multiple host threads (block-parallel)
// when DeviceConfig::host_workers != 1; this is the standard fast path (the
// drivers and benches default to one worker per hardware thread). Stats are
// accumulated per block and reduced in block order, so every KernelStats
// field — including modeled_cycles — is bit-identical for any host_workers
// value. Phases that mutate shared state in an order-dependent way can be
// marked Phase::sequential: they run blocks in ascending order on one host
// thread, which keeps whole-algorithm runs deterministic (see DESIGN.md,
// "Block-parallel execution").
//
// When DeviceConfig::trace points at a telemetry::TraceSink, every launch,
// phase, and barrier (and optionally every block execution) is recorded as
// a structured event on the modeled-cycle timeline; see docs/TELEMETRY.md.
// With the sink unset, collection costs one branch per launch and the
// modeled statistics are bit-identical to an untraced run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "analysis/sanitizer.hpp"
#include "gpu/config.hpp"
#include "gpu/stats.hpp"
#include "gpu/thread_pool.hpp"
#include "resilience/fault.hpp"

namespace morph::gpu {

class Device;

/// Handle given to each logical GPU thread; identifies the thread within the
/// grid and accumulates its counted work for the cost model.
class ThreadCtx {
 public:
  /// Global thread id in [0, grid threads).
  std::uint32_t tid() const { return tid_; }
  std::uint32_t block() const { return block_; }
  std::uint32_t thread_in_block() const { return tib_; }
  /// Lane within the 32-wide warp.
  std::uint32_t lane() const { return tib_ % warp_size_; }
  std::uint32_t grid_threads() const { return grid_threads_; }
  std::uint32_t threads_per_block() const { return tpb_; }

  /// Charge `units` of plain compute work.
  void work(std::uint64_t units = 1) { work_ += units; }
  /// Charge an atomic read-modify-write (also counts as work).
  void atomic_op(std::uint64_t n = 1) {
    atomics_ += n;
    work_ += n;
  }
  /// Charge an un-coalesced global memory access.
  void global_access(std::uint64_t n = 1) { mem_ += n; }

  /// Charge one worklist operation. A contended op claims a shared atomic
  /// index (centralized list, spill, steal) and costs an atomic_op(); a
  /// local op touches a ring no other block pops during the phase and costs
  /// plain work(). Both classes are tallied separately so benches can
  /// attribute the contention bill (KernelStats::wl_*_ops).
  void worklist_op(bool contended) {
    if (contended) {
      ++wl_contended_;
      atomic_op();
    } else {
      ++wl_local_;
      work();
    }
  }

  std::uint64_t counted_work() const { return work_; }

  /// The device executing this thread; null for ThreadCtx values constructed
  /// outside a launch (host-side protocol drivers, tests).
  Device* device() const { return dev_; }

  /// The attached hazard sanitizer, or null (detached / host-side ctx). The
  /// accessor is the one branch a detached device pays per hook site.
  analysis::Sanitizer* san() const;

  /// Annotates a block-level barrier (__syncthreads) for the sanitizer's
  /// barrier-divergence check. Charges nothing: the cost model already
  /// prices barriers per phase, and the simulator runs a block's threads to
  /// completion sequentially, so this is an annotation, not a control-flow
  /// construct. Every thread of a launch must announce the same sequence of
  /// `id`s — a divergent or skipped sync is reported at the phase boundary.
  void sync_block(std::uint32_t id);

 private:
  friend class Device;
  std::uint32_t tid_ = 0;
  std::uint32_t block_ = 0;
  std::uint32_t tib_ = 0;
  std::uint32_t tpb_ = 0;
  std::uint32_t warp_size_ = 32;
  std::uint32_t grid_threads_ = 0;
  std::uint64_t work_ = 0;
  std::uint64_t atomics_ = 0;
  std::uint64_t mem_ = 0;
  std::uint64_t wl_local_ = 0;
  std::uint64_t wl_contended_ = 0;
  Device* dev_ = nullptr;
};

using KernelFn = std::function<void(ThreadCtx&)>;

/// One phase of a multi-phase launch. A sequential phase executes its blocks
/// in ascending order on the calling host thread regardless of host_workers;
/// the cost model is unchanged (the same work is counted), only the *host*
/// execution is serialized. Use it for commit steps whose host-side effect
/// is inherently serialized anyway (e.g. retriangulation under a lock) so
/// the mutation order — and thus the whole run — is deterministic.
struct Phase {
  KernelFn fn;
  bool sequential = false;
};

/// The simulated device. Thread-safe for the memory-accounting hooks; launch
/// calls must not overlap.
class Device {
 public:
  explicit Device(DeviceConfig cfg = {});

  const DeviceConfig& config() const { return cfg_; }
  DeviceConfig& config() { return cfg_; }

  /// Number of host worker threads actually executing blocks (the resolved
  /// value of DeviceConfig::host_workers; 0 resolves to the hardware
  /// concurrency).
  std::uint32_t host_workers() const { return pool_.workers(); }

  /// Launches a single-phase kernel and returns its statistics.
  KernelStats launch(const LaunchConfig& lc, const KernelFn& fn);

  /// Launches a kernel with global barriers between consecutive phases.
  KernelStats launch_phases(const LaunchConfig& lc,
                            std::span<const KernelFn> phases,
                            BarrierKind barrier = BarrierKind::kHierarchical);

  /// As above, with per-phase execution control (Phase::sequential).
  KernelStats launch_phases(const LaunchConfig& lc,
                            std::span<const Phase> phases,
                            BarrierKind barrier = BarrierKind::kHierarchical);

  const DeviceStats& stats() const { return stats_; }
  /// Also rewinds the telemetry timestamp cursor (trace timestamps are the
  /// accumulated modeled cycles).
  void reset_stats() { stats_ = DeviceStats{}; }

  /// Records a named counter sample (e.g. worklist occupancy) on the trace
  /// at the current modeled-cycle timestamp. No-op when tracing is off.
  void note_counter(const std::string& name, double value);

  /// Records the outcome of a ShardedWorklist host-side rebalance: bumps
  /// DeviceStats::wl_steals / wl_spills and (when tracing) emits cumulative
  /// "worklist.steals" / "worklist.spills" counter samples. Called between
  /// launches only, so the counts are deterministic for any host_workers.
  void note_worklist_rebalance(std::uint64_t steals, std::uint64_t spills);

  // --- fault injection (resilience campaigns) ---

  /// True when DeviceConfig::faults armed a non-empty campaign. Components
  /// with injection points check this first so the disabled path stays at
  /// one branch per injection point.
  bool faults_armed() const { return injector_ != nullptr; }

  /// The campaign's injection state; null unless faults_armed().
  resilience::FaultInjector* fault_injector() { return injector_.get(); }

  /// Counts one opportunity for `cls` against the armed campaign; false when
  /// no campaign is armed or no clause fires.
  bool fault_should_fire(resilience::FaultClass cls) {
    return injector_ && injector_->should_fire(cls);
  }

  /// Records an injected fault / a recovery action: bumps the DeviceStats
  /// counter and (when tracing) emits a kFault / kRecovery trace event at
  /// the current modeled-cycle timestamp.
  void note_fault(resilience::FaultClass cls, const std::string& what);
  void note_recovery(const std::string& what);

  /// Charges host-side stall cycles (recovery backoff between launches) to
  /// the modeled timeline.
  void note_stall(double cycles) { stats_.modeled_cycles += cycles; }

  // --- memory accounting hooks (used by DeviceBuffer / DeviceHeap) ---
  void note_host_alloc(std::uint64_t bytes);
  void note_realloc(std::uint64_t bytes_copied);
  void note_device_malloc(std::uint64_t bytes);
  void note_copy(std::uint64_t bytes);

  /// Cost of one global barrier for this launch geometry (model only).
  double barrier_cycles(BarrierKind kind, const LaunchConfig& lc) const;

  /// The attached hazard sanitizer (DeviceConfig::sanitize), or null. Every
  /// instrumented component checks this first so a detached device pays one
  /// branch per hook site.
  analysis::Sanitizer* sanitizer() const { return cfg_.sanitize; }

 private:
  DeviceConfig cfg_;
  DeviceStats stats_;
  ThreadPool pool_;
  std::unique_ptr<resilience::FaultInjector> injector_;
  std::uint32_t trace_device_ = 0;  ///< ordinal in the attached TraceSink
  std::uint64_t trace_seq_ = 0;     ///< tiebreaker for serially recorded events
  std::uint32_t launch_ord_ = 0;    ///< launches issued (sanitizer context)
};

inline analysis::Sanitizer* ThreadCtx::san() const {
  return dev_ ? dev_->sanitizer() : nullptr;
}

inline void ThreadCtx::sync_block(std::uint32_t id) {
  if (analysis::Sanitizer* s = san()) s->on_barrier_arrive(block_, tib_, id);
}

}  // namespace morph::gpu
