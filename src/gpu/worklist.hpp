// Worklists (paper Sec. 7.5).
//
// A centralized GlobalWorklist requires an atomic index per push/pop, which
// the paper identifies as a bottleneck; a LocalWorklist is a fixed-capacity
// per-thread queue that lives in (simulated) shared memory and needs no
// synchronization. The pseudo-partitioning produced by the memory-layout
// optimization (graph/layout.hpp) makes a thread's new work likely to land
// in its own local queue.
//
// GlobalWorklist is safe for concurrent push/pop from any number of host
// threads (block-parallel execution, DeviceConfig::host_workers > 1). Index
// claims are CAS-bounded: a push can never reserve a slot past the capacity
// and an empty pop can never advance the head, so the invariant
// head <= commit <= tail <= capacity holds at all times.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "gpu/device.hpp"
#include "support/check.hpp"
#include "support/status.hpp"

namespace morph::gpu {

template <typename T>
class GlobalWorklist;

/// Per-thread queue with bounded capacity (shared-memory budget). push()
/// returns false on overflow and counts the spill; callers fall back to the
/// global list or to the next topology-driven sweep — or, when a spill
/// target is attached (set_spill_target), the overflowing item is pushed to
/// the global worklist instead of being dropped, the graceful-degradation
/// ladder for local-worklist overflow. Not thread-safe: a local worklist
/// belongs to exactly one logical thread.
template <typename T>
class LocalWorklist {
 public:
  explicit LocalWorklist(std::size_t capacity) : cap_(capacity) {
    items_.reserve(capacity);
  }

  std::size_t capacity() const { return cap_; }
  std::size_t size() const { return items_.size() - head_; }
  bool empty() const { return size() == 0; }
  std::uint64_t spills() const { return spills_; }
  std::uint64_t spilled_to_global() const { return spilled_to_global_; }

  /// Arms the overflow ladder: items that do not fit locally go to `global`
  /// (the push is charged to the spilling thread). `dev` additionally lets
  /// an armed fault campaign force overflow at any push opportunity
  /// (FaultClass::kLocalWlOverflow).
  void set_spill_target(GlobalWorklist<T>* global, Device* dev = nullptr) {
    spill_ = global;
    dev_ = dev;
  }

  bool push(const T& v) {
    // Capacity bounds the number of *live* items, not the number of slots
    // ever written: popped entries are reclaimed by compacting the consumed
    // prefix, so pop/push cycles never cause spurious spills.
    if (size() >= cap_) {
      ++spills_;
      return false;
    }
    if (items_.size() >= cap_) {
      items_.erase(items_.begin(),
                   items_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    items_.push_back(v);
    return true;
  }

  /// Push with the overflow ladder: a full queue (or an injected overflow)
  /// spills to the attached global worklist instead of dropping the item.
  /// Returns kWorklistFull only when the item was truly dropped (no spill
  /// target, or the global list is itself full).
  Status push(ThreadCtx& ctx, const T& v);

  std::optional<T> pop() {
    if (empty()) return std::nullopt;
    return items_[head_++];
  }

  void clear() {
    items_.clear();
    head_ = 0;
  }

 private:
  std::size_t cap_;
  std::size_t head_ = 0;
  std::vector<T> items_;
  std::uint64_t spills_ = 0;
  std::uint64_t spilled_to_global_ = 0;
  GlobalWorklist<T>* spill_ = nullptr;
  Device* dev_ = nullptr;
};

/// Centralized worklist; every push/pop is an atomic index claim charged to
/// the calling thread. Fixed capacity chosen at construction.
///
/// Concurrency: multi-producer multi-consumer. A push claims a slot with a
/// capacity-bounded CAS on `tail_`, writes the item, then publishes it by
/// advancing `commit_` in slot order; a pop claims an index with a
/// commit-bounded CAS on `head_`, so it can neither overrun the published
/// items nor observe a slot whose write is still in flight.
template <typename T>
class GlobalWorklist {
 public:
  /// `dev` (optional) arms fault injection: an armed campaign can force
  /// kWorklistFull at any push opportunity (FaultClass::kGlobalWlOverflow).
  explicit GlobalWorklist(std::size_t capacity, Device* dev = nullptr)
      : items_(capacity), dev_(dev), tail_(0), commit_(0), head_(0) {}

  std::size_t capacity() const { return items_.size(); }

  /// Discards all content. Must not race with push/pop (call between
  /// kernel launches only).
  void reset() {
    tail_.store(0, std::memory_order_relaxed);
    commit_.store(0, std::memory_order_relaxed);
    head_.store(0, std::memory_order_relaxed);
  }

  /// Returns false when full (work is dropped to the next sweep). A failed
  /// push leaves the indices untouched.
  bool push(ThreadCtx& ctx, const T& v) { return try_push(ctx, v).ok(); }

  /// Typed-status push: kWorklistFull when the capacity is reached or when
  /// an armed fault campaign injects an overflow at this opportunity. A
  /// failed push leaves the indices untouched.
  Status try_push(ThreadCtx& ctx, const T& v) {
    ctx.atomic_op();
    if (dev_ &&
        dev_->fault_should_fire(resilience::FaultClass::kGlobalWlOverflow)) {
      dev_->note_fault(resilience::FaultClass::kGlobalWlOverflow,
                       "global worklist overflow (injected), " +
                           std::to_string(size()) + " items enqueued");
      return Status(StatusCode::kWorklistFull,
                    "global worklist overflow (injected)");
    }
    std::uint64_t slot = tail_.load(std::memory_order_relaxed);
    do {
      if (slot >= items_.size()) {
        return Status(StatusCode::kWorklistFull,
                      "global worklist at capacity (" +
                          std::to_string(items_.size()) + ")");
      }
    } while (!tail_.compare_exchange_weak(slot, slot + 1,
                                          std::memory_order_relaxed));
    items_[slot] = v;
    // Publish in slot order so a concurrent pop never claims an index whose
    // item write has not completed.
    std::uint64_t expected = slot;
    while (!commit_.compare_exchange_weak(expected, slot + 1,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
      expected = slot;
    }
    return Status::Ok();
  }

  /// Claims and returns the oldest published item, or nullopt when empty.
  /// An empty pop never advances the head, so items pushed later are
  /// still delivered.
  std::optional<T> pop(ThreadCtx& ctx) {
    ctx.atomic_op();
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    for (;;) {
      if (h >= commit_.load(std::memory_order_acquire)) return std::nullopt;
      if (head_.compare_exchange_weak(h, h + 1, std::memory_order_relaxed)) {
        return items_[h];
      }
    }
  }

  /// Number of published elements currently enqueued. Safe to call
  /// concurrently; the head-behind-commit invariant is checked.
  std::size_t size() const {
    const std::uint64_t c = commit_.load(std::memory_order_acquire);
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    MORPH_CHECK_MSG(h <= c, "GlobalWorklist: head overran committed tail");
    return static_cast<std::size_t>(c - h);
  }

 private:
  std::vector<T> items_;
  Device* dev_ = nullptr;
  std::atomic<std::uint64_t> tail_;    ///< next slot to reserve
  std::atomic<std::uint64_t> commit_;  ///< slots published, <= tail_
  std::atomic<std::uint64_t> head_;    ///< next index to pop, <= commit_
};

template <typename T>
Status LocalWorklist<T>::push(ThreadCtx& ctx, const T& v) {
  const bool injected =
      dev_ && dev_->fault_should_fire(resilience::FaultClass::kLocalWlOverflow);
  if (!injected && push(v)) return Status::Ok();
  if (injected) {
    ++spills_;
    dev_->note_fault(resilience::FaultClass::kLocalWlOverflow,
                     "local worklist overflow (injected), " +
                         std::to_string(size()) + " items held");
  }
  if (!spill_) {
    return Status(StatusCode::kWorklistFull,
                  "local worklist full and no spill target attached");
  }
  // Degradation ladder: overflow goes to the centralized list (paper
  // Sec. 7.5's fallback), costing the atomic the local queue exists to
  // avoid.
  Status s = spill_->try_push(ctx, v);
  if (s.ok()) {
    ++spilled_to_global_;
    if (injected) dev_->note_recovery("local worklist spilled item to global");
  }
  return s;
}

}  // namespace morph::gpu
