// Worklists (paper Sec. 7.5).
//
// A centralized GlobalWorklist requires an atomic index per push/pop, which
// the paper identifies as a bottleneck; a LocalWorklist is a fixed-capacity
// per-thread queue that lives in (simulated) shared memory and needs no
// synchronization. The pseudo-partitioning produced by the memory-layout
// optimization (graph/layout.hpp) makes a thread's new work likely to land
// in its own local queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "gpu/device.hpp"
#include "support/check.hpp"

namespace morph::gpu {

/// Per-thread queue with bounded capacity (shared-memory budget). push()
/// returns false on overflow and counts the spill; callers fall back to the
/// global list or to the next topology-driven sweep.
template <typename T>
class LocalWorklist {
 public:
  explicit LocalWorklist(std::size_t capacity) : cap_(capacity) {
    items_.reserve(capacity);
  }

  std::size_t capacity() const { return cap_; }
  std::size_t size() const { return items_.size() - head_; }
  bool empty() const { return size() == 0; }
  std::uint64_t spills() const { return spills_; }

  bool push(const T& v) {
    if (items_.size() >= cap_) {
      ++spills_;
      return false;
    }
    items_.push_back(v);
    return true;
  }

  std::optional<T> pop() {
    if (empty()) return std::nullopt;
    return items_[head_++];
  }

  void clear() {
    items_.clear();
    head_ = 0;
  }

 private:
  std::size_t cap_;
  std::size_t head_ = 0;
  std::vector<T> items_;
  std::uint64_t spills_ = 0;
};

/// Centralized worklist; every push/pop is an atomic fetch-add charged to
/// the calling thread. Fixed capacity chosen at construction.
template <typename T>
class GlobalWorklist {
 public:
  explicit GlobalWorklist(std::size_t capacity)
      : items_(capacity), tail_(0), head_(0) {}

  std::size_t capacity() const { return items_.size(); }

  void reset() {
    tail_.store(0, std::memory_order_relaxed);
    head_.store(0, std::memory_order_relaxed);
  }

  /// Returns false when full (work is dropped to the next sweep).
  bool push(ThreadCtx& ctx, const T& v) {
    ctx.atomic_op();
    const std::uint64_t slot = tail_.fetch_add(1, std::memory_order_relaxed);
    if (slot >= items_.size()) {
      tail_.store(items_.size(), std::memory_order_relaxed);
      return false;
    }
    items_[slot] = v;
    return true;
  }

  std::optional<T> pop(ThreadCtx& ctx) {
    ctx.atomic_op();
    const std::uint64_t slot = head_.fetch_add(1, std::memory_order_relaxed);
    if (slot >= tail_.load(std::memory_order_relaxed)) return std::nullopt;
    return items_[slot];
  }

  /// Number of elements currently enqueued (single-threaded contexts only).
  std::size_t size() const {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    return t > h ? static_cast<std::size_t>(t - h) : 0;
  }

 private:
  std::vector<T> items_;
  std::atomic<std::uint64_t> tail_;
  std::atomic<std::uint64_t> head_;
};

}  // namespace morph::gpu
