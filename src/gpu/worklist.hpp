// Worklists (paper Sec. 7.5).
//
// A centralized GlobalWorklist requires an atomic index per push/pop, which
// the paper identifies as a bottleneck; a LocalWorklist is a fixed-capacity
// per-thread queue that lives in (simulated) shared memory and needs no
// synchronization. The pseudo-partitioning produced by the memory-layout
// optimization (graph/layout.hpp) makes a thread's new work likely to land
// in its own local queue.
//
// GlobalWorklist is safe for concurrent push/pop from any number of host
// threads (block-parallel execution, DeviceConfig::host_workers > 1). Index
// claims are CAS-bounded: a push can never reserve a slot past the capacity
// and an empty pop can never advance the head, so the invariant
// head <= commit <= tail <= capacity holds at all times.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "gpu/device.hpp"
#include "support/check.hpp"
#include "support/status.hpp"

namespace morph::gpu {

template <typename T>
class GlobalWorklist;

/// Per-thread queue with bounded capacity (shared-memory budget). push()
/// returns false on overflow and counts the spill; callers fall back to the
/// global list or to the next topology-driven sweep — or, when a spill
/// target is attached (set_spill_target), the overflowing item is pushed to
/// the global worklist instead of being dropped, the graceful-degradation
/// ladder for local-worklist overflow. Not thread-safe: a local worklist
/// belongs to exactly one logical thread.
template <typename T>
class LocalWorklist {
 public:
  explicit LocalWorklist(std::size_t capacity) : cap_(capacity) {
    items_.reserve(capacity);
  }

  std::size_t capacity() const { return cap_; }
  std::size_t size() const { return items_.size() - head_; }
  bool empty() const { return size() == 0; }
  std::uint64_t spills() const { return spills_; }
  std::uint64_t spilled_to_global() const { return spilled_to_global_; }

  /// Arms the overflow ladder: items that do not fit locally go to `global`
  /// (the push is charged to the spilling thread). `dev` additionally lets
  /// an armed fault campaign force overflow at any push opportunity
  /// (FaultClass::kLocalWlOverflow).
  void set_spill_target(GlobalWorklist<T>* global, Device* dev = nullptr) {
    spill_ = global;
    dev_ = dev;
  }

  bool push(const T& v) {
    // Capacity bounds the number of *live* items, not the number of slots
    // ever written: popped entries are reclaimed by compacting the consumed
    // prefix, so pop/push cycles never cause spurious spills.
    if (size() >= cap_) {
      ++spills_;
      return false;
    }
    if (items_.size() >= cap_) {
      items_.erase(items_.begin(),
                   items_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    items_.push_back(v);
    return true;
  }

  /// Push with the overflow ladder: a full queue (or an injected overflow)
  /// spills to the attached global worklist instead of dropping the item.
  /// Returns kWorklistFull only when the item was truly dropped (no spill
  /// target, or the global list is itself full).
  Status push(ThreadCtx& ctx, const T& v);

  std::optional<T> pop() {
    if (empty()) return std::nullopt;
    return items_[head_++];
  }

  void clear() {
    items_.clear();
    head_ = 0;
  }

 private:
  std::size_t cap_;
  std::size_t head_ = 0;
  std::vector<T> items_;
  std::uint64_t spills_ = 0;
  std::uint64_t spilled_to_global_ = 0;
  GlobalWorklist<T>* spill_ = nullptr;
  Device* dev_ = nullptr;
};

/// Centralized worklist; every push/pop is an atomic index claim charged to
/// the calling thread. Fixed capacity chosen at construction.
///
/// Concurrency: multi-producer multi-consumer. A push claims a slot with a
/// capacity-bounded CAS on `tail_`, writes the item, then publishes it by
/// advancing `commit_` in slot order; a pop claims an index with a
/// commit-bounded CAS on `head_`, so it can neither overrun the published
/// items nor observe a slot whose write is still in flight.
template <typename T>
class GlobalWorklist {
 public:
  /// `dev` (optional) arms fault injection: an armed campaign can force
  /// kWorklistFull at any push opportunity (FaultClass::kGlobalWlOverflow).
  explicit GlobalWorklist(std::size_t capacity, Device* dev = nullptr)
      : items_(capacity), dev_(dev), tail_(0), commit_(0), head_(0) {}

  /// Slot shadow is keyed by the list address; a successor list constructed
  /// at the same address must not inherit this one's slot states.
  ~GlobalWorklist() {
    if (analysis::Sanitizer* s = san()) s->on_wl_reset(this);
  }
  GlobalWorklist(const GlobalWorklist&) = delete;
  GlobalWorklist& operator=(const GlobalWorklist&) = delete;

  std::size_t capacity() const { return items_.size(); }

  /// Discards all content. Must not race with push/pop (call between
  /// kernel launches only).
  void reset() {
    tail_.store(0, std::memory_order_relaxed);
    commit_.store(0, std::memory_order_relaxed);
    head_.store(0, std::memory_order_relaxed);
    if (analysis::Sanitizer* s = san()) s->on_wl_reset(this);
  }

  /// Returns false when full (work is dropped to the next sweep). A failed
  /// push leaves the indices untouched.
  bool push(ThreadCtx& ctx, const T& v) { return try_push(ctx, v).ok(); }

  /// Typed-status push: kWorklistFull when the capacity is reached or when
  /// an armed fault campaign injects an overflow at this opportunity. A
  /// failed push leaves the indices untouched.
  Status try_push(ThreadCtx& ctx, const T& v) {
    // A contended worklist op: the shared-index claim costs an atomic (the
    // paper's Sec. 7.5 bottleneck), tallied as such for the contention bill.
    ctx.worklist_op(/*contended=*/true);
    if (dev_ &&
        dev_->fault_should_fire(resilience::FaultClass::kGlobalWlOverflow)) {
      dev_->note_fault(resilience::FaultClass::kGlobalWlOverflow,
                       "global worklist overflow (injected), " +
                           std::to_string(size()) + " items enqueued");
      return Status(StatusCode::kWorklistFull,
                    "global worklist overflow (injected)");
    }
    std::uint64_t slot = tail_.load(std::memory_order_relaxed);
    do {
      if (slot >= items_.size()) {
        return Status(StatusCode::kWorklistFull,
                      "global worklist at capacity (" +
                          std::to_string(items_.size()) + ")");
      }
    } while (!tail_.compare_exchange_weak(slot, slot + 1,
                                          std::memory_order_relaxed));
    if (analysis::Sanitizer* s = san()) {
      s->on_wl_claim(this, "global", agent_of(ctx), slot);
    }
    items_[slot] = v;
    // The publish hook precedes the commit CAS: once commit_ covers the
    // slot a concurrent pop may legally claim it, so the shadow transition
    // must already have happened.
    if (analysis::Sanitizer* s = san()) s->on_wl_publish(this, "global", slot);
    // Publish in slot order so a concurrent pop never claims an index whose
    // item write has not completed.
    std::uint64_t expected = slot;
    while (!commit_.compare_exchange_weak(expected, slot + 1,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
      expected = slot;
    }
    return Status::Ok();
  }

  /// Claims and returns the oldest published item, or nullopt when empty.
  /// An empty pop never advances the head, so items pushed later are
  /// still delivered.
  std::optional<T> pop(ThreadCtx& ctx) {
    ctx.worklist_op(/*contended=*/true);
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    for (;;) {
      if (h >= commit_.load(std::memory_order_acquire)) return std::nullopt;
      if (head_.compare_exchange_weak(h, h + 1, std::memory_order_relaxed)) {
        if (analysis::Sanitizer* s = san()) {
          s->on_wl_pop(this, "global", agent_of(ctx), h);
        }
        return items_[h];
      }
    }
  }

  /// Number of published elements currently enqueued. Safe to call
  /// concurrently; the head-behind-commit invariant is checked.
  std::size_t size() const {
    const std::uint64_t c = commit_.load(std::memory_order_acquire);
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    MORPH_CHECK_MSG(h <= c, "GlobalWorklist: head overran committed tail");
    return static_cast<std::size_t>(c - h);
  }

 private:
  analysis::Sanitizer* san() const {
    return dev_ ? dev_->sanitizer() : nullptr;
  }
  /// Shadow-state agent: the executing block for device-side ops, the host
  /// sentinel for protocol-driving code running outside a launch.
  static std::uint32_t agent_of(const ThreadCtx& ctx) {
    return ctx.device() ? ctx.block() : analysis::Sanitizer::kHostAgent;
  }

  std::vector<T> items_;
  Device* dev_ = nullptr;
  std::atomic<std::uint64_t> tail_;    ///< next slot to reserve
  std::atomic<std::uint64_t> commit_;  ///< slots published, <= tail_
  std::atomic<std::uint64_t> head_;    ///< next index to pop, <= commit_
};

/// Sharded worklist: the paper's pseudo-partitioning (Sec. 7.5) lifted to
/// the block-parallel host path. Work lives in `num_shards()` fixed-capacity
/// rings; each ring uses the same claim-then-publish index protocol as
/// GlobalWorklist, so any mix of concurrent push / pop / steal is safe. The
/// point of sharding is that the *common* op touches a ring no other block
/// claims from, so it is charged as plain work instead of an atomic
/// (ThreadCtx::worklist_op), and the centralized list survives only as the
/// spill target of last resort.
///
/// Determinism discipline (how stealing survives bit-reproducibility — see
/// DESIGN.md, "Sharded worklists"): a launch of B blocks assigns every shard
/// a unique owner block (owned_range); during parallel phases a block pops
/// only from shards it owns (pop_owned), and pushes happen only in
/// sequential commit phases or host-side, in block order — exactly PR 2's
/// commit protocol. Stealing and spill-draining are performed *between*
/// launches by the host (rebalance()), which walks shards in index order, so
/// steal/spill counts and every modeled stat are identical for any
/// host_workers value. steal() exists for callers that accept a
/// nondeterministic schedule (and for the stress tests); the deterministic
/// drivers never call it from a parallel phase.
template <typename T>
class ShardedWorklist {
 public:
  struct ShardRange {
    std::size_t lo = 0;
    std::size_t hi = 0;  ///< half-open; lo == hi means "owns nothing"
    bool empty() const { return lo == hi; }
  };

  /// `spill` (optional) arms the overflow ladder: pushes that miss a full
  /// ring go to the centralized list and are drained back by rebalance().
  /// `dev` receives steal/spill deltas at each rebalance.
  ShardedWorklist(std::size_t shards, std::size_t shard_capacity,
                  Device* dev = nullptr, GlobalWorklist<T>* spill = nullptr)
      : dev_(dev), spill_(spill), shards_(new Shard[shards]), count_(shards) {
    MORPH_CHECK(shards > 0);
    MORPH_CHECK(shard_capacity > 0);
    for (std::size_t s = 0; s < shards; ++s) {
      shards_[s].items.resize(shard_capacity);
    }
  }

  /// Same address-keyed shadow rule as GlobalWorklist, per shard ring.
  ~ShardedWorklist() {
    if (analysis::Sanitizer* s = san()) {
      for (std::size_t i = 0; i < count_; ++i) s->on_wl_reset(&shards_[i]);
    }
  }
  ShardedWorklist(const ShardedWorklist&) = delete;
  ShardedWorklist& operator=(const ShardedWorklist&) = delete;

  std::size_t num_shards() const { return count_; }
  std::size_t shard_capacity() const { return shards_[0].items.size(); }
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }
  std::uint64_t spills() const {
    return spills_.load(std::memory_order_relaxed);
  }

  /// Discards all ring content (not the spill list, not the counters).
  /// Must not race with device-side ops (call between launches only).
  void reset() {
    analysis::Sanitizer* const sa = san();
    for (std::size_t s = 0; s < count_; ++s) {
      shards_[s].tail.store(0, std::memory_order_relaxed);
      shards_[s].commit.store(0, std::memory_order_relaxed);
      shards_[s].head.store(0, std::memory_order_relaxed);
      if (sa) sa->on_wl_reset(&shards_[s]);
    }
  }

  // --- launch geometry: the per-launch shard-ownership map ---

  /// Shards owned by `block` of a `blocks`-block launch: a contiguous range
  /// when blocks <= shards (the ranges partition [0, shards)), the single
  /// shard `block` when blocks > shards and block < shards, else nothing.
  /// Every shard has exactly one owner, which is what makes parallel-phase
  /// pops race-free by construction.
  ShardRange owned_range(std::uint32_t block, std::uint32_t blocks) const {
    const std::size_t s = count_;
    if (blocks == 0) return {};
    if (static_cast<std::size_t>(blocks) >= s) {
      if (block < s) return {block, block + 1};
      return {};
    }
    return {block * s / blocks, (block + 1) * s / blocks};
  }

  /// The shard a block's *new* work targets (pseudo-partition locality):
  /// the first shard it owns, or block % shards for surplus blocks.
  std::size_t home_shard(std::uint32_t block, std::uint32_t blocks) const {
    const ShardRange r = owned_range(block, blocks);
    return r.empty() ? block % count_ : r.lo;
  }

  /// The shard item `i` of an `n`-item pseudo-partitioned seed belongs to:
  /// contiguous index ranges map to contiguous shards, so work stays next
  /// to the block that owns its partition after the layout pass.
  std::size_t partition_shard(std::uint64_t i, std::uint64_t n) const {
    if (n == 0) return 0;
    const std::uint64_t s = i * count_ / n;
    return static_cast<std::size_t>(s < count_ ? s : count_ - 1);
  }

  // --- device-side operations ---

  /// Pushes to `shard`; on a full ring falls through the spill ladder to the
  /// centralized list (charged as the contended op it is). kWorklistFull
  /// only when the item was truly dropped.
  Status push(ThreadCtx& ctx, std::size_t shard, const T& v) {
    ctx.worklist_op(/*contended=*/false);
    if (ring_push(shard, v, agent_of(ctx))) return Status::Ok();
    if (!spill_) {
      return Status(StatusCode::kWorklistFull,
                    "worklist shard full and no spill target attached");
    }
    Status s = spill_->try_push(ctx, v);
    if (s.ok()) spills_.fetch_add(1, std::memory_order_relaxed);
    return s;
  }

  /// Pops the oldest published item of `shard`, or nullopt when empty.
  std::optional<T> pop(ThreadCtx& ctx, std::size_t shard) {
    ctx.worklist_op(/*contended=*/false);
    return ring_pop(shard, agent_of(ctx));
  }

  /// Pops from the shards owned by the calling thread's block, in ascending
  /// shard order. The deterministic dispensing primitive: no other block
  /// claims from these rings during a parallel phase.
  std::optional<T> pop_owned(ThreadCtx& ctx, std::uint32_t blocks) {
    const ShardRange r = owned_range(ctx.block(), blocks);
    for (std::size_t s = r.lo; s < r.hi; ++s) {
      if (auto v = pop(ctx, s)) return v;
    }
    return std::nullopt;
  }

  /// Lock-free steal from an arbitrary shard: a contended claim on a ring
  /// another block owns. Safe under any interleaving (the rings are MPMC),
  /// but the *schedule* of successful steals is timing-dependent, so
  /// deterministic drivers only steal via rebalance().
  std::optional<T> steal(ThreadCtx& ctx, std::size_t victim_shard) {
    ctx.worklist_op(/*contended=*/true);
    auto v = ring_pop(victim_shard, agent_of(ctx));
    if (v) steals_.fetch_add(1, std::memory_order_relaxed);
    return v;
  }

  // --- non-consuming iteration (round-based drivers keep their live set
  //     in the shards and sweep it in place) ---

  /// Published items currently in `shard`. Stable only while no pops run.
  std::size_t shard_size(std::size_t s) const {
    const std::uint64_t c = shards_[s].commit.load(std::memory_order_acquire);
    const std::uint64_t h = shards_[s].head.load(std::memory_order_relaxed);
    return static_cast<std::size_t>(c - h);
  }

  /// The i-th live item of `shard` (0 = oldest). Valid while no pops run.
  const T& item(std::size_t s, std::size_t i) const {
    const std::uint64_t h = shards_[s].head.load(std::memory_order_relaxed);
    return shards_[s].items[static_cast<std::size_t>(h) + i];
  }

  /// Total published items across all shards (excludes the spill list).
  std::size_t size() const {
    std::size_t n = 0;
    for (std::size_t s = 0; s < count_; ++s) n += shard_size(s);
    return n;
  }

  // --- host-side redistribution (the deterministic steal path) ---

  /// Drains the spill list back into the rings and feeds starved shards
  /// from rich ones. Host-side, between launches only; shards are walked in
  /// index order, so the redistribution — and the steal/spill counters it
  /// reports to the Device — is a pure function of the worklist content,
  /// independent of host_workers. Each item moved between shards counts as
  /// one steal.
  void rebalance() {
    ThreadCtx host;  // host-side charges are discarded
    // Compact first: ring slots are claimed monotonically during a launch,
    // so without reclamation a long round-based run would exhaust slots (and
    // spill) while the rings sit near-empty.
    for (std::size_t s = 0; s < count_; ++s) compact(s);
    // Spill drain: recovered items go to the emptiest shard (lowest index
    // on ties) so one overloaded partition cannot re-absorb its overflow.
    if (spill_) {
      while (spill_->size() > 0) {
        const std::size_t dst = emptiest_shard();
        if (shard_size(dst) >= shard_capacity()) break;  // everything full
        auto v = spill_->pop(host);
        if (!v) break;
        if (!ring_push(dst, *v)) {
          // The chosen shard filled up concurrently-with-nothing (we are
          // single-threaded here): only possible via capacity; put it back.
          spill_->try_push(host, *v);
          break;
        }
      }
    }
    // Even-out pass: fill each empty shard with half the richest shard's
    // items. Bounded by the shard count; richest is lowest-index on ties.
    std::uint64_t moved = 0;
    for (std::size_t dst = 0; dst < count_; ++dst) {
      if (shard_size(dst) != 0) continue;
      const std::size_t src = richest_shard();
      const std::size_t avail = shard_size(src);
      if (avail < 2) break;  // nothing worth splitting anywhere
      const std::size_t take = avail / 2;
      for (std::size_t i = 0; i < take; ++i) {
        auto v = ring_pop(src);
        if (!v) break;
        ring_push(dst, *v);
        ++moved;
      }
    }
    steals_.fetch_add(moved, std::memory_order_relaxed);
    if (dev_) {
      const std::uint64_t st = steals_.load(std::memory_order_relaxed);
      const std::uint64_t sp = spills_.load(std::memory_order_relaxed);
      dev_->note_worklist_rebalance(st - reported_steals_,
                                    sp - reported_spills_);
      reported_steals_ = st;
      reported_spills_ = sp;
    }
  }

 private:
  struct Shard {
    std::vector<T> items;
    std::atomic<std::uint64_t> tail{0};    ///< next slot to reserve
    std::atomic<std::uint64_t> commit{0};  ///< slots published, <= tail
    std::atomic<std::uint64_t> head{0};    ///< next index to pop, <= commit
  };

  analysis::Sanitizer* san() const {
    return dev_ ? dev_->sanitizer() : nullptr;
  }
  static std::uint32_t agent_of(const ThreadCtx& ctx) {
    return ctx.device() ? ctx.block() : analysis::Sanitizer::kHostAgent;
  }

  /// Capacity-bounded claim + in-order publication (GlobalWorklist's
  /// protocol, per ring). False when the ring is at capacity. The shadow
  /// publish precedes the commit CAS for the same reason as GlobalWorklist.
  bool ring_push(std::size_t s, const T& v,
                 std::uint32_t agent = analysis::Sanitizer::kHostAgent) {
    Shard& sh = shards_[s];
    std::uint64_t slot = sh.tail.load(std::memory_order_relaxed);
    do {
      if (slot >= sh.items.size()) return false;
    } while (!sh.tail.compare_exchange_weak(slot, slot + 1,
                                            std::memory_order_relaxed));
    if (analysis::Sanitizer* sa = san()) {
      sa->on_wl_claim(&sh, "shard", agent, slot);
    }
    sh.items[slot] = v;
    if (analysis::Sanitizer* sa = san()) sa->on_wl_publish(&sh, "shard", slot);
    std::uint64_t expected = slot;
    while (!sh.commit.compare_exchange_weak(expected, slot + 1,
                                            std::memory_order_release,
                                            std::memory_order_relaxed)) {
      expected = slot;
    }
    return true;
  }

  /// Host-side slot reclamation: shifts the live window to the front of the
  /// ring. Quiescent only (no concurrent device-side ops).
  void compact(std::size_t s) {
    Shard& sh = shards_[s];
    const std::uint64_t h = sh.head.load(std::memory_order_relaxed);
    const std::uint64_t c = sh.commit.load(std::memory_order_relaxed);
    if (h == 0) return;
    if (analysis::Sanitizer* sa = san()) sa->on_wl_compact(&sh, h, c);
    std::move(sh.items.begin() + static_cast<std::ptrdiff_t>(h),
              sh.items.begin() + static_cast<std::ptrdiff_t>(c),
              sh.items.begin());
    sh.head.store(0, std::memory_order_relaxed);
    sh.commit.store(c - h, std::memory_order_relaxed);
    sh.tail.store(c - h, std::memory_order_relaxed);
  }

  std::optional<T> ring_pop(std::size_t s,
                            std::uint32_t agent =
                                analysis::Sanitizer::kHostAgent) {
    Shard& sh = shards_[s];
    std::uint64_t h = sh.head.load(std::memory_order_relaxed);
    for (;;) {
      if (h >= sh.commit.load(std::memory_order_acquire)) return std::nullopt;
      if (sh.head.compare_exchange_weak(h, h + 1,
                                        std::memory_order_relaxed)) {
        if (analysis::Sanitizer* sa = san()) {
          sa->on_wl_pop(&sh, "shard", agent, h);
        }
        return sh.items[h];
      }
    }
  }

  std::size_t emptiest_shard() const {
    std::size_t best = 0;
    for (std::size_t s = 1; s < count_; ++s) {
      if (shard_size(s) < shard_size(best)) best = s;
    }
    return best;
  }

  std::size_t richest_shard() const {
    std::size_t best = 0;
    for (std::size_t s = 1; s < count_; ++s) {
      if (shard_size(s) > shard_size(best)) best = s;
    }
    return best;
  }

  Device* dev_ = nullptr;
  GlobalWorklist<T>* spill_ = nullptr;
  std::unique_ptr<Shard[]> shards_;
  std::size_t count_;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> spills_{0};
  std::uint64_t reported_steals_ = 0;  ///< host-side (rebalance) only
  std::uint64_t reported_spills_ = 0;
};

template <typename T>
Status LocalWorklist<T>::push(ThreadCtx& ctx, const T& v) {
  const bool injected =
      dev_ && dev_->fault_should_fire(resilience::FaultClass::kLocalWlOverflow);
  if (!injected && push(v)) return Status::Ok();
  if (injected) {
    ++spills_;
    dev_->note_fault(resilience::FaultClass::kLocalWlOverflow,
                     "local worklist overflow (injected), " +
                         std::to_string(size()) + " items held");
  }
  if (!spill_) {
    return Status(StatusCode::kWorklistFull,
                  "local worklist full and no spill target attached");
  }
  // Degradation ladder: overflow goes to the centralized list (paper
  // Sec. 7.5's fallback), costing the atomic the local queue exists to
  // avoid.
  Status s = spill_->try_push(ctx, v);
  if (s.ok()) {
    ++spilled_to_global_;
    if (injected) dev_->note_recovery("local worklist spilled item to global");
  }
  return s;
}

}  // namespace morph::gpu
