// Per-launch and per-device statistics produced by the simulator.
#pragma once

#include <cstdint>

namespace morph::gpu {

/// Statistics of a single kernel launch (all phases included).
struct KernelStats {
  std::uint64_t logical_threads = 0;
  std::uint64_t warps = 0;
  std::uint32_t phases = 0;

  std::uint64_t total_work = 0;      ///< sum of per-thread counted work units
  std::uint64_t max_thread_work = 0; ///< slowest logical thread
  std::uint64_t warp_steps = 0;      ///< sum over warps of max-lane work
  std::uint64_t atomics = 0;         ///< counted atomic operations
  std::uint64_t global_accesses = 0; ///< counted global-memory accesses

  // Worklist traffic split by contention class (ThreadCtx::worklist_op):
  // local ops touch a ring no other block pops during the phase, contended
  // ops claim a shared atomic index (the centralized list, spills, steals).
  std::uint64_t wl_local_ops = 0;
  std::uint64_t wl_contended_ops = 0;

  double modeled_cycles = 0.0;       ///< cost-model makespan of this launch

  /// SIMD inefficiency due to divergence: lane-steps issued / useful work.
  /// 1.0 means perfectly converged warps; larger means more wasted lanes.
  double divergence(std::uint32_t warp_size) const {
    if (total_work == 0) return 1.0;
    return static_cast<double>(warp_steps) * warp_size /
           static_cast<double>(total_work);
  }
};

/// Accumulated statistics for a device across launches.
struct DeviceStats {
  std::uint64_t launches = 0;
  std::uint64_t barriers = 0;        ///< intra-kernel global barriers crossed
  std::uint64_t total_work = 0;
  std::uint64_t warp_steps = 0;
  std::uint64_t atomics = 0;
  std::uint64_t global_accesses = 0;
  double modeled_cycles = 0.0;

  // Device memory-management activity (Sec. 7.1/7.2 strategies).
  std::uint64_t device_mallocs = 0;  ///< kernel-side allocations
  std::uint64_t host_allocs = 0;     ///< cudaMalloc-style allocations
  std::uint64_t reallocs = 0;        ///< buffer growth events (with copy)
  std::uint64_t bytes_allocated = 0;
  std::uint64_t bytes_copied = 0;    ///< host<->device + realloc copies

  // Worklist activity (paper Sec. 7.5). Ops are absorbed from KernelStats;
  // steals/spills are counted by the host-side rebalance of a
  // ShardedWorklist (Device::note_worklist_rebalance) and stay zero in
  // centralized mode.
  std::uint64_t wl_local_ops = 0;     ///< uncontended per-shard ring ops
  std::uint64_t wl_contended_ops = 0; ///< shared-index claims (central/steal)
  std::uint64_t wl_steals = 0;        ///< items moved between shards
  std::uint64_t wl_spills = 0;        ///< items spilled to the global list

  // Resilience activity (zero unless a fault campaign is armed).
  std::uint64_t faults_injected = 0;  ///< injected fault events
  std::uint64_t faults_recovered = 0; ///< recovery actions taken

  /// Whole-run SIMD inefficiency, same definition as KernelStats::divergence.
  double divergence(std::uint32_t warp_size) const {
    if (total_work == 0) return 1.0;
    return static_cast<double>(warp_steps) * warp_size /
           static_cast<double>(total_work);
  }

  void absorb(const KernelStats& k) {
    ++launches;
    barriers += (k.phases > 0 ? k.phases - 1 : 0);
    total_work += k.total_work;
    warp_steps += k.warp_steps;
    atomics += k.atomics;
    global_accesses += k.global_accesses;
    wl_local_ops += k.wl_local_ops;
    wl_contended_ops += k.wl_contended_ops;
    modeled_cycles += k.modeled_cycles;
  }

  /// Field-wise `*this - base`. A persistent device (serve sessions)
  /// accumulates across requests; the per-request exec stats reported to
  /// clients are the delta against the stats captured before the request.
  DeviceStats delta_since(const DeviceStats& base) const {
    DeviceStats d = *this;
    d.launches -= base.launches;
    d.barriers -= base.barriers;
    d.total_work -= base.total_work;
    d.warp_steps -= base.warp_steps;
    d.atomics -= base.atomics;
    d.global_accesses -= base.global_accesses;
    d.modeled_cycles -= base.modeled_cycles;
    d.device_mallocs -= base.device_mallocs;
    d.host_allocs -= base.host_allocs;
    d.reallocs -= base.reallocs;
    d.bytes_allocated -= base.bytes_allocated;
    d.bytes_copied -= base.bytes_copied;
    d.wl_local_ops -= base.wl_local_ops;
    d.wl_contended_ops -= base.wl_contended_ops;
    d.wl_steals -= base.wl_steals;
    d.wl_spills -= base.wl_spills;
    d.faults_injected -= base.faults_injected;
    d.faults_recovered -= base.faults_recovered;
    return d;
  }

  /// Modeled cycles spent on contended worklist index claims — the
  /// contention bill the sharded mode exists to shrink. Derived, not
  /// additive into modeled_cycles (those ops are already charged as
  /// atomics by the cost model).
  double wl_contention_cycles(double atomic_cost,
                              double atomic_concurrency) const {
    return static_cast<double>(wl_contended_ops) * atomic_cost /
           (atomic_concurrency > 0 ? atomic_concurrency : 1.0);
  }
};

}  // namespace morph::gpu
