// Configuration of the simulated GPU device and of kernel launches.
//
// The simulator models the machine the paper evaluates on: an NVIDIA Tesla
// C2070 (Fermi) with 14 SMs, 32-wide warps, and up to 48 resident warps per
// SM. Cost parameters are expressed in abstract "cycles"; only *relative*
// costs matter for reproducing the paper's comparisons (e.g., atomics are an
// order of magnitude more expensive than plain steps, which is what makes the
// naive global barrier lose to the hierarchical one).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "resilience/recovery.hpp"
#include "support/check.hpp"

namespace morph::telemetry {
class TraceSink;
}

namespace morph::resilience {
struct FaultPlan;
}

namespace morph::analysis {
class Sanitizer;
}

namespace morph::gpu {

/// Flavours of intra-kernel global barrier (paper Sec. 7.3, "Barrier
/// implementation").
enum class BarrierKind {
  /// Every thread atomically decrements a global counter and spins.
  kNaiveAtomic,
  /// Threads synchronize within a block (__syncthreads) and one
  /// representative per block joins a global atomic barrier.
  kHierarchical,
  /// Xiao & Feng's lock-free barrier, augmented with __threadfence() for
  /// cached (Fermi) GPUs as the paper describes.
  kLockFree,
};

/// Worklist organization used by the data-driven drivers (paper Sec. 7.5).
enum class WorklistMode {
  /// One GlobalWorklist; every push/pop is an atomic index claim on shared
  /// indices. The paper's baseline and the ablation arm.
  kCentralized,
  /// ShardedWorklist: per-shard rings fed by the layout pass's
  /// pseudo-partition, blocks pop only from the shards they own, stealing
  /// and spill-draining happen deterministically at launch boundaries, and
  /// the GlobalWorklist is demoted to spill-of-last-resort.
  kSharded,
};

/// Parses a --worklist-mode value; returns false on anything other than
/// "centralized" or "sharded".
inline bool parse_worklist_mode(std::string_view s, WorklistMode* out) {
  if (s == "centralized") {
    *out = WorklistMode::kCentralized;
    return true;
  }
  if (s == "sharded") {
    *out = WorklistMode::kSharded;
    return true;
  }
  return false;
}

inline const char* worklist_mode_name(WorklistMode m) {
  return m == WorklistMode::kSharded ? "sharded" : "centralized";
}

/// Simulated device parameters and cost model.
struct DeviceConfig {
  std::uint32_t num_sms = 14;
  std::uint32_t warp_size = 32;
  std::uint32_t max_warps_per_sm = 48;

  // --- cost model (abstract cycles) ---
  double step_cost = 1.0;            ///< one counted unit of thread work
  double global_mem_cost = 4.0;      ///< one counted global-memory access
  /// Memory-level parallelism for uncoalesced accesses: they consume
  /// device-wide bandwidth, far below the compute warp concurrency.
  double mem_concurrency = 32.0;
  double atomic_cost = 32.0;         ///< one atomic RMW (serialized)
  double atomic_concurrency = 4.0;   ///< effective parallelism of atomics
  double kernel_launch_overhead = 4000.0;
  double syncthreads_cost = 8.0;     ///< per block, per barrier
  double alloc_overhead = 2000.0;    ///< per cudaMalloc-style allocation
  double copy_cost_per_byte = 0.002; ///< realloc / explicit transfer copies

  /// Nominal device clock used to express modeled cycles as seconds — the
  /// single source of truth for every "model-ms" column and JSON report
  /// (1 GHz matches the paper-era Fermi ballpark). Purely a display/export
  /// scale: it never feeds back into the cost model.
  double clock_ghz = 1.0;

  std::uint64_t shared_mem_bytes = 48 * 1024;  ///< per block (48 KB config)

  /// Number of host worker threads used to execute blocks. 0 means "auto":
  /// one worker per hardware thread (std::thread::hardware_concurrency).
  /// Modeled statistics are reduced per block in block order, so KernelStats
  /// (including modeled_cycles) are bit-identical for every value; larger
  /// values exercise real concurrency between logical GPU threads and are
  /// the standard fast path for the drivers and benches (--host-workers).
  std::uint32_t host_workers = 1;

  /// Worklist organization for the data-driven drivers. kCentralized keeps
  /// the single GlobalWorklist (and is bit-identical to builds predating the
  /// knob); kSharded routes work through a ShardedWorklist whose pops are
  /// owner-block-only during parallel phases, so answers, modeled stats and
  /// traces stay bit-identical for every host_workers value while the
  /// centralized atomic index disappears from the hot path.
  WorklistMode worklist_mode = WorklistMode::kCentralized;

  /// Shard count for kSharded; 0 means "auto" (4 shards per SM, enough to
  /// keep every block of a typical launch fed while bounding the stealing
  /// scan). See resolved_worklist_shards().
  std::uint32_t worklist_shards = 0;

  std::uint32_t resolved_worklist_shards() const {
    return worklist_shards != 0 ? worklist_shards : 4 * num_sms;
  }

  /// When true, logical threads within a phase run in a seeded pseudo-random
  /// order instead of ascending id, to exercise order-independence.
  bool shuffle_threads = false;
  std::uint64_t shuffle_seed = 1;

  /// Telemetry event sink (telemetry/trace.hpp); null disables collection
  /// entirely — a disabled device takes one branch per launch and its
  /// modeled statistics are bit-identical to a build without telemetry.
  telemetry::TraceSink* trace = nullptr;

  /// Fault-injection campaign (resilience/fault.hpp); null (or an empty
  /// plan) disables injection entirely — like `trace`, the disabled path is
  /// one branch per injection point and modeled statistics are bit-identical
  /// to a build without the resilience subsystem. While a plan is armed the
  /// device pins every phase to sequential block order so the campaign — and
  /// its trace — replays bit-identically for any host_workers value.
  const resilience::FaultPlan* faults = nullptr;

  /// Hazard sanitizer (analysis/sanitizer.hpp); null disables checking
  /// entirely — like `trace` and `faults`, a detached device takes one
  /// branch per hook and modeled statistics, answers, and traces are
  /// bit-identical to a build without the analysis subsystem. The sanitizer
  /// is pure shadow state: it charges nothing to the cost model.
  analysis::Sanitizer* sanitize = nullptr;

  /// Recovery policy for injected transient launch failures: each failed
  /// attempt charges the wasted launch overhead plus an exponentially
  /// growing modeled-cycle backoff; exhausting it throws morph::FaultError.
  resilience::RetryPolicy launch_retry = {};

  /// Modeled-cycle cost of one injected barrier stall, as a multiple of the
  /// stalled barrier's own cost (the watchdog timeout a real runtime would
  /// burn before releasing the barrier).
  double barrier_stall_factor = 8.0;

  /// Injected barrier stalls tolerated within a single launch before the
  /// barrier is declared hung and the launch fails loudly with
  /// morph::FaultError (kRetriesExhausted). 0 = unlimited (every stall is
  /// absorbed as modeled watchdog timeouts).
  std::uint32_t barrier_stall_budget = 0;

  /// Total concurrently resident warps (device-wide occupancy bound).
  double warp_slots() const {
    return static_cast<double>(num_sms) * static_cast<double>(max_warps_per_sm);
  }
};

/// Grid geometry of one kernel launch.
struct LaunchConfig {
  std::uint32_t blocks = 1;
  std::uint32_t threads_per_block = 32;
  /// Kernel label used by sanitizer diagnostics ("dmr.refine.commit"); never
  /// fed into telemetry event names, so traces are unaffected by labeling.
  std::string label;

  LaunchConfig() = default;
  LaunchConfig(std::uint32_t b, std::uint32_t tpb, std::string lbl = {})
      : blocks(b), threads_per_block(tpb), label(std::move(lbl)) {}

  std::uint64_t total_threads() const {
    return static_cast<std::uint64_t>(blocks) * threads_per_block;
  }

  void validate() const {
    MORPH_CHECK(blocks > 0);
    MORPH_CHECK(threads_per_block > 0);
    MORPH_CHECK(threads_per_block <= 1024);  // Fermi limit
  }
};

}  // namespace morph::gpu
