// Multicore-CPU baseline execution model.
//
// The paper's CPU comparisons run Galois on a 48-core Xeon E7540. We model a
// T-worker shared-memory machine the same way the GPU simulator models the
// Fermi: algorithm code is executed for real, per-(virtual-)worker work is
// counted, and the modeled round time is the slowest worker (bulk-
// synchronous makespan) plus synchronization surcharges. Work items are
// distributed cyclically, approximating Galois's dynamic load balancing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace morph::cpu {

struct CpuConfig {
  std::uint32_t workers = 48;
  double step_cost = 1.0;
  double sync_cost = 24.0;      ///< lock acquire / CAS on shared data
  double round_overhead = 500.0;  ///< per-round barrier + scheduling
};

/// Handle given to the function processing one work item.
class WorkerCtx {
 public:
  std::uint32_t worker() const { return worker_; }
  void work(std::uint64_t units = 1) { work_ += units; }
  void sync_op(std::uint64_t n = 1) {
    syncs_ += n;
    work_ += n;
  }
  std::uint64_t counted_work() const { return work_; }

 private:
  friend class ParallelRunner;
  std::uint32_t worker_ = 0;
  std::uint64_t work_ = 0;
  std::uint64_t syncs_ = 0;
};

struct RoundStats {
  std::uint64_t items = 0;
  std::uint64_t total_work = 0;
  std::uint64_t max_worker_work = 0;
  std::uint64_t sync_ops = 0;
  double modeled_cycles = 0.0;
};

struct CpuStats {
  std::uint64_t rounds = 0;
  std::uint64_t total_work = 0;
  std::uint64_t sync_ops = 0;
  double modeled_cycles = 0.0;
};

/// Executes rounds of work items over `workers` virtual workers.
class ParallelRunner {
 public:
  explicit ParallelRunner(CpuConfig cfg = {}) : cfg_(cfg) {
    MORPH_CHECK(cfg_.workers > 0);
  }

  const CpuConfig& config() const { return cfg_; }
  const CpuStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CpuStats{}; }

  /// Runs f(ctx, i) for i in [0, n), item i on worker i % workers.
  template <typename F>
  RoundStats round(std::uint64_t n, F&& f) {
    RoundStats rs;
    rs.items = n;
    std::vector<std::uint64_t> worker_work(cfg_.workers, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
      WorkerCtx ctx;
      ctx.worker_ = static_cast<std::uint32_t>(i % cfg_.workers);
      f(ctx, i);
      worker_work[ctx.worker_] += ctx.work_;
      rs.total_work += ctx.work_;
      rs.sync_ops += ctx.syncs_;
    }
    rs.max_worker_work =
        *std::max_element(worker_work.begin(), worker_work.end());
    rs.modeled_cycles =
        cfg_.round_overhead +
        static_cast<double>(rs.max_worker_work) * cfg_.step_cost +
        static_cast<double>(rs.sync_ops) * cfg_.sync_cost /
            static_cast<double>(cfg_.workers);
    stats_.rounds += 1;
    stats_.total_work += rs.total_work;
    stats_.sync_ops += rs.sync_ops;
    stats_.modeled_cycles += rs.modeled_cycles;
    return rs;
  }

 private:
  CpuConfig cfg_;
  CpuStats stats_;
};

}  // namespace morph::cpu
