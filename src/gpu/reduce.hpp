// Deterministic block-ordered reductions for unordered (block-parallel)
// phases.
//
// The pattern: during a launch every thread folds its contribution into its
// *block's* private slot — race-free because the simulator executes all
// threads of one block sequentially on a single host worker (device.cpp,
// run_block) — and the host folds the slots in ascending block order after
// the launch returns. The result is bit-identical for every host_workers
// value, which is the same discipline the Device itself uses for per-block
// KernelStats, and the trick dmr::refine_gpu uses for its per-round
// reductions. SP's sweep (max delta) and PTA's push-phase commit buffers
// share this one implementation.
//
// Cost model: folding into the block slot is shared-memory-priced (free —
// the work producing the value is already charged); the per-block winner
// hits the global accumulator once, so the block representative charges a
// single global atomic via charge().
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gpu/device.hpp"
#include "support/check.hpp"

namespace morph::gpu {

template <typename T>
class BlockReduce {
 public:
  BlockReduce(std::uint32_t blocks, T identity)
      : identity_(identity),
        slots_(static_cast<std::size_t>(blocks), identity) {
    MORPH_CHECK(blocks > 0);
  }

  std::uint32_t num_blocks() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

  /// Folds v into the calling block's slot with `fold` (device-side).
  template <typename Fold>
  void combine(const ThreadCtx& ctx, const T& v, Fold&& fold) {
    T& s = slot(ctx.block());
    s = fold(s, v);
  }

  /// Models the block representative's single update of the global
  /// accumulator: call from every thread, only thread 0 of a block pays.
  void charge(ThreadCtx& ctx) const {
    if (ctx.thread_in_block() == 0) ctx.atomic_op();
  }

  /// Host-side (between launches): folds the slots in ascending block
  /// order. Deterministic for any host_workers value.
  template <typename Fold>
  T reduce(Fold&& fold) const {
    T acc = identity_;
    for (const T& s : slots_) acc = fold(acc, s);
    return acc;
  }

  /// Direct slot access, for drivers that commit per-block buffers in block
  /// order instead of folding to a scalar (e.g. PTA's push phase).
  T& slot(std::uint32_t block) {
    MORPH_CHECK(block < slots_.size());
    return slots_[block];
  }
  const T& slot(std::uint32_t block) const {
    MORPH_CHECK(block < slots_.size());
    return slots_[block];
  }

  void reset() { std::fill(slots_.begin(), slots_.end(), identity_); }

 private:
  T identity_;
  std::vector<T> slots_;
};

}  // namespace morph::gpu
