#include "gpu/device.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "support/rng.hpp"

namespace morph::gpu {

Device::Device(DeviceConfig cfg) : cfg_(cfg), pool_(cfg.host_workers) {}

KernelStats Device::launch(const LaunchConfig& lc, const KernelFn& fn) {
  const KernelFn phases[1] = {fn};
  return launch_phases(lc, std::span<const KernelFn>(phases, 1));
}

double Device::barrier_cycles(BarrierKind kind, const LaunchConfig& lc) const {
  const double threads = static_cast<double>(lc.total_threads());
  const double blocks = static_cast<double>(lc.blocks);
  switch (kind) {
    case BarrierKind::kNaiveAtomic:
      // Every thread performs an atomic RMW on one global counter (the
      // hardware coalesces same-address atomics somewhat, hence the
      // concurrency divisor), plus spinning on the shared variable.
      return threads * cfg_.atomic_cost / cfg_.atomic_concurrency;
    case BarrierKind::kHierarchical:
      // __syncthreads per block, then one atomic per block representative.
      return blocks * (cfg_.syncthreads_cost + cfg_.atomic_cost);
    case BarrierKind::kLockFree:
      // Xiao-Feng: block representatives write/poll distinct slots (no
      // atomics); plus a __threadfence per representative on Fermi.
      return blocks * (cfg_.syncthreads_cost + 3.0 * cfg_.global_mem_cost);
  }
  return 0.0;
}

KernelStats Device::launch_phases(const LaunchConfig& lc,
                                  std::span<const KernelFn> phases,
                                  BarrierKind barrier) {
  lc.validate();
  MORPH_CHECK(!phases.empty());

  const std::uint64_t total_threads = lc.total_threads();
  const std::uint32_t warps_per_block =
      (lc.threads_per_block + cfg_.warp_size - 1) / cfg_.warp_size;
  const std::uint64_t total_warps =
      static_cast<std::uint64_t>(lc.blocks) * warps_per_block;

  KernelStats ks;
  ks.logical_threads = total_threads;
  ks.warps = total_warps;
  ks.phases = static_cast<std::uint32_t>(phases.size());

  // Thread execution order within a phase. Blocks are the unit of host
  // parallelism; within a block threads run in ascending (or shuffled) order.
  std::vector<std::uint32_t> order;
  if (cfg_.shuffle_threads) {
    order.resize(lc.threads_per_block);
    std::iota(order.begin(), order.end(), 0u);
    Rng rng(cfg_.shuffle_seed);
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.next_below(i)]);
  }

  double compute_cycles = 0.0;
  for (const KernelFn& phase : phases) {
    // Per-warp maxima and per-phase totals, gathered per block then reduced.
    std::atomic<std::uint64_t> phase_work{0};
    std::atomic<std::uint64_t> phase_atomics{0};
    std::atomic<std::uint64_t> phase_mem{0};
    std::atomic<std::uint64_t> phase_warp_steps{0};
    std::atomic<std::uint64_t> phase_max_thread{0};

    pool_.run_all(lc.blocks, [&](std::uint64_t b) {
      std::uint64_t block_work = 0, block_atomics = 0, block_mem = 0;
      std::uint64_t block_warp_steps = 0, block_max_thread = 0;
      std::vector<std::uint64_t> warp_max(warps_per_block, 0);

      for (std::uint32_t i = 0; i < lc.threads_per_block; ++i) {
        const std::uint32_t tib = cfg_.shuffle_threads ? order[i] : i;
        ThreadCtx ctx;
        ctx.tid_ = static_cast<std::uint32_t>(b) * lc.threads_per_block + tib;
        ctx.block_ = static_cast<std::uint32_t>(b);
        ctx.tib_ = tib;
        ctx.tpb_ = lc.threads_per_block;
        ctx.warp_size_ = cfg_.warp_size;
        ctx.grid_threads_ = static_cast<std::uint32_t>(total_threads);
        phase(ctx);
        block_work += ctx.work_;
        block_atomics += ctx.atomics_;
        block_mem += ctx.mem_;
        block_max_thread = std::max(block_max_thread, ctx.work_);
        auto& wm = warp_max[tib / cfg_.warp_size];
        wm = std::max(wm, ctx.work_);
      }
      for (std::uint64_t wm : warp_max) block_warp_steps += wm;

      phase_work.fetch_add(block_work, std::memory_order_relaxed);
      phase_atomics.fetch_add(block_atomics, std::memory_order_relaxed);
      phase_mem.fetch_add(block_mem, std::memory_order_relaxed);
      phase_warp_steps.fetch_add(block_warp_steps, std::memory_order_relaxed);
      std::uint64_t prev = phase_max_thread.load(std::memory_order_relaxed);
      while (prev < block_max_thread &&
             !phase_max_thread.compare_exchange_weak(
                 prev, block_max_thread, std::memory_order_relaxed)) {
      }
    });

    ks.total_work += phase_work.load();
    ks.atomics += phase_atomics.load();
    ks.global_accesses += phase_mem.load();
    ks.warp_steps += phase_warp_steps.load();
    ks.max_thread_work = std::max(ks.max_thread_work, phase_max_thread.load());

    // Makespan of this phase: warp steps spread over the device's resident
    // warp slots (but never better than the slowest warp), plus serialized
    // atomic and memory surcharges.
    const double concurrency =
        std::min(cfg_.warp_slots(), static_cast<double>(total_warps));
    const double steps = static_cast<double>(phase_warp_steps.load());
    compute_cycles += steps * cfg_.step_cost / std::max(concurrency, 1.0);
    compute_cycles += static_cast<double>(phase_atomics.load()) *
                      cfg_.atomic_cost / cfg_.atomic_concurrency;
    compute_cycles += static_cast<double>(phase_mem.load()) *
                      cfg_.global_mem_cost /
                      std::min(cfg_.mem_concurrency, concurrency);
  }

  ks.modeled_cycles = cfg_.kernel_launch_overhead + compute_cycles +
                      static_cast<double>(phases.size() - 1) *
                          barrier_cycles(barrier, lc);
  stats_.absorb(ks);
  return ks;
}

void Device::note_host_alloc(std::uint64_t bytes) {
  ++stats_.host_allocs;
  stats_.bytes_allocated += bytes;
  stats_.modeled_cycles += cfg_.alloc_overhead;
}

void Device::note_realloc(std::uint64_t bytes_copied) {
  ++stats_.reallocs;
  stats_.bytes_copied += bytes_copied;
  stats_.modeled_cycles +=
      static_cast<double>(bytes_copied) * cfg_.copy_cost_per_byte;
}

void Device::note_device_malloc(std::uint64_t bytes) {
  ++stats_.device_mallocs;
  stats_.bytes_allocated += bytes;
  stats_.modeled_cycles += cfg_.alloc_overhead / 4.0;  // heap suballocation
}

void Device::note_copy(std::uint64_t bytes) {
  stats_.bytes_copied += bytes;
  stats_.modeled_cycles +=
      static_cast<double>(bytes) * cfg_.copy_cost_per_byte;
}

}  // namespace morph::gpu
