#include "gpu/device.hpp"

#include <algorithm>
#include <numeric>
#include <thread>

#include "support/rng.hpp"
#include "telemetry/trace.hpp"

namespace morph::gpu {

namespace {

std::uint32_t resolve_host_workers(std::uint32_t requested) {
  if (requested != 0) return requested;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<std::uint32_t>(hc) : 1u;
}

}  // namespace

Device::Device(DeviceConfig cfg)
    : cfg_(cfg), pool_(resolve_host_workers(cfg.host_workers)) {
  if (cfg_.trace) {
    trace_device_ = cfg_.trace->register_device(pool_.workers());
  }
  if (cfg_.faults && !cfg_.faults->empty()) {
    injector_ = std::make_unique<resilience::FaultInjector>(*cfg_.faults);
  }
}

KernelStats Device::launch(const LaunchConfig& lc, const KernelFn& fn) {
  const KernelFn phases[1] = {fn};
  return launch_phases(lc, std::span<const KernelFn>(phases, 1));
}

double Device::barrier_cycles(BarrierKind kind, const LaunchConfig& lc) const {
  const double threads = static_cast<double>(lc.total_threads());
  const double blocks = static_cast<double>(lc.blocks);
  switch (kind) {
    case BarrierKind::kNaiveAtomic:
      // Every thread performs an atomic RMW on one global counter (the
      // hardware coalesces same-address atomics somewhat, hence the
      // concurrency divisor), plus spinning on the shared variable.
      return threads * cfg_.atomic_cost / cfg_.atomic_concurrency;
    case BarrierKind::kHierarchical:
      // __syncthreads per block, then one atomic per block representative.
      return blocks * (cfg_.syncthreads_cost + cfg_.atomic_cost);
    case BarrierKind::kLockFree:
      // Xiao-Feng: block representatives write/poll distinct slots (no
      // atomics); plus a __threadfence per representative on Fermi.
      return blocks * (cfg_.syncthreads_cost + 3.0 * cfg_.global_mem_cost);
  }
  return 0.0;
}

KernelStats Device::launch_phases(const LaunchConfig& lc,
                                  std::span<const KernelFn> phases,
                                  BarrierKind barrier) {
  std::vector<Phase> specs(phases.size());
  for (std::size_t i = 0; i < phases.size(); ++i) specs[i].fn = phases[i];
  return launch_phases(lc, std::span<const Phase>(specs), barrier);
}

namespace {

const char* barrier_label(BarrierKind kind) {
  switch (kind) {
    case BarrierKind::kNaiveAtomic: return "barrier/naive-atomic";
    case BarrierKind::kHierarchical: return "barrier/hierarchical";
    case BarrierKind::kLockFree: return "barrier/lock-free";
  }
  return "barrier";
}

}  // namespace

KernelStats Device::launch_phases(const LaunchConfig& lc,
                                  std::span<const Phase> phases,
                                  BarrierKind barrier) {
  lc.validate();
  MORPH_CHECK(!phases.empty());

  // Injected transient launch failure: each failed attempt burns the launch
  // overhead plus an exponentially growing backoff (DeviceConfig::
  // launch_retry) before the retry; exhausting the policy fails loudly.
  // Retries are fresh injection opportunities, so a clause like launch@1x2
  // recovers on the 3rd attempt while launch@1x9 exhausts the default
  // 3-retry budget.
  if (injector_) {
    std::uint32_t attempt = 0;
    while (injector_->should_fire(resilience::FaultClass::kLaunchFail)) {
      ++attempt;
      note_fault(resilience::FaultClass::kLaunchFail,
                 "transient launch failure (attempt " +
                     std::to_string(attempt) + ")");
      if (cfg_.launch_retry.exhausted(attempt)) {
        throw FaultError(Status(
            StatusCode::kRetriesExhausted,
            "kernel launch failed after " + std::to_string(attempt) +
                " attempts (launch_retry.max_retries=" +
                std::to_string(cfg_.launch_retry.max_retries) + ")"));
      }
      stats_.modeled_cycles +=
          cfg_.kernel_launch_overhead + cfg_.launch_retry.backoff_for(attempt);
    }
    if (attempt > 0) {
      note_recovery("launch retry succeeded after " +
                    std::to_string(attempt) + " failed attempt(s)");
    }
  }

  // Telemetry is dormant unless a sink is attached; all event timestamps are
  // modeled cycles (the launch starts where the device's accumulated cycles
  // left off), never wall clock, so traces are deterministic.
  telemetry::TraceSink* const sink = cfg_.trace;
  const bool trace_blocks = sink && sink->block_spans();
  const auto launch_ord = static_cast<std::uint32_t>(stats_.launches);
  const double launch_start = stats_.modeled_cycles;
  const double barrier_cost = barrier_cycles(barrier, lc);
  double phase_ts = launch_start + cfg_.kernel_launch_overhead;

  const std::uint64_t total_threads = lc.total_threads();
  const std::uint32_t warps_per_block =
      (lc.threads_per_block + cfg_.warp_size - 1) / cfg_.warp_size;
  const std::uint64_t total_warps =
      static_cast<std::uint64_t>(lc.blocks) * warps_per_block;

  KernelStats ks;
  ks.logical_threads = total_threads;
  ks.warps = total_warps;
  ks.phases = static_cast<std::uint32_t>(phases.size());

  // Hazard-sanitizer launch context. Shadow state only: nothing below
  // charges the cost model, so modeled statistics are bit-identical with
  // and without an attached sanitizer.
  analysis::Sanitizer* const san = cfg_.sanitize;
  const std::uint32_t san_launch_ord = launch_ord_++;
  if (san) {
    san->begin_launch(lc.label, san_launch_ord, lc.blocks,
                      lc.threads_per_block,
                      static_cast<std::uint32_t>(phases.size()));
  }

  // Thread execution order within a phase. Blocks are the unit of host
  // parallelism; within a block threads run in ascending (or shuffled) order.
  std::vector<std::uint32_t> order;
  if (cfg_.shuffle_threads) {
    order.resize(lc.threads_per_block);
    std::iota(order.begin(), order.end(), 0u);
    Rng rng(cfg_.shuffle_seed);
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.next_below(i)]);
  }

  // Per-block accumulators, written only by the (unique) executor of each
  // block and reduced in ascending block order afterwards: the reduction is
  // race-free and bit-identical for any host_workers value.
  struct BlockAcc {
    std::uint64_t work = 0;
    std::uint64_t atomics = 0;
    std::uint64_t mem = 0;
    std::uint64_t warp_steps = 0;
    std::uint64_t max_thread = 0;
    std::uint64_t wl_local = 0;
    std::uint64_t wl_contended = 0;
  };
  std::vector<BlockAcc> acc(lc.blocks);

  double compute_cycles = 0.0;
  double stall_cycles = 0.0;
  std::uint32_t stalls_this_launch = 0;
  for (std::size_t pi = 0; pi < phases.size(); ++pi) {
    const Phase& phase = phases[pi];
    std::fill(acc.begin(), acc.end(), BlockAcc{});

    const auto run_block = [&](std::uint64_t b) {
      BlockAcc& a = acc[b];
      std::vector<std::uint64_t> warp_max(warps_per_block, 0);

      for (std::uint32_t i = 0; i < lc.threads_per_block; ++i) {
        const std::uint32_t tib = cfg_.shuffle_threads ? order[i] : i;
        ThreadCtx ctx;
        ctx.tid_ = static_cast<std::uint32_t>(b) * lc.threads_per_block + tib;
        ctx.block_ = static_cast<std::uint32_t>(b);
        ctx.tib_ = tib;
        ctx.tpb_ = lc.threads_per_block;
        ctx.warp_size_ = cfg_.warp_size;
        ctx.grid_threads_ = static_cast<std::uint32_t>(total_threads);
        ctx.dev_ = this;
        phase.fn(ctx);
        a.work += ctx.work_;
        a.atomics += ctx.atomics_;
        a.mem += ctx.mem_;
        a.wl_local += ctx.wl_local_;
        a.wl_contended += ctx.wl_contended_;
        a.max_thread = std::max(a.max_thread, ctx.work_);
        auto& wm = warp_max[tib / cfg_.warp_size];
        wm = std::max(wm, ctx.work_);
      }
      for (std::uint64_t wm : warp_max) a.warp_steps += wm;

      // Recorded from the executing host worker into its own ring; the
      // flush order is deterministic regardless of which worker ran b.
      if (trace_blocks) {
        telemetry::TraceEvent ev;
        ev.kind = telemetry::EventKind::kBlock;
        ev.device = trace_device_;
        ev.launch = launch_ord;
        ev.phase = static_cast<std::uint32_t>(pi);
        ev.block = static_cast<std::uint32_t>(b);
        ev.track = static_cast<std::uint32_t>(b % cfg_.num_sms);
        ev.name = "block";
        ev.work = a.work;
        ev.warp_steps = a.warp_steps;
        ev.atomics = a.atomics;
        ev.global_accesses = a.mem;
        ev.dur_cycles = static_cast<double>(a.warp_steps) * cfg_.step_cost;
        sink->record(ThreadPool::current_worker(), std::move(ev));
      }
    };

    // An armed fault campaign pins every phase to sequential block order:
    // injection opportunities are then hit in one deterministic program
    // order, so a failing campaign (and its trace) replays bit-identically
    // across host_workers values. The cost model is unchanged.
    const bool ordered_phase = phase.sequential || injector_ != nullptr;
    if (san) san->begin_phase(static_cast<std::uint32_t>(pi), ordered_phase);
    if (ordered_phase) {
      for (std::uint64_t b = 0; b < lc.blocks; ++b) run_block(b);
    } else {
      pool_.run_all(lc.blocks, run_block);
    }
    if (san) san->end_phase();

    BlockAcc ph;
    for (const BlockAcc& a : acc) {
      ph.work += a.work;
      ph.atomics += a.atomics;
      ph.mem += a.mem;
      ph.warp_steps += a.warp_steps;
      ph.wl_local += a.wl_local;
      ph.wl_contended += a.wl_contended;
      ph.max_thread = std::max(ph.max_thread, a.max_thread);
    }

    ks.total_work += ph.work;
    ks.atomics += ph.atomics;
    ks.global_accesses += ph.mem;
    ks.wl_local_ops += ph.wl_local;
    ks.wl_contended_ops += ph.wl_contended;
    ks.warp_steps += ph.warp_steps;
    ks.max_thread_work = std::max(ks.max_thread_work, ph.max_thread);

    // Makespan of this phase: warp steps spread over the device's resident
    // warp slots (but never better than the slowest warp), plus serialized
    // atomic and memory surcharges. The three terms are accumulated into
    // compute_cycles one at a time, exactly as before telemetry existed, so
    // modeled_cycles stays bit-identical whether or not a sink is attached.
    const double concurrency =
        std::min(cfg_.warp_slots(), static_cast<double>(total_warps));
    const double steps = static_cast<double>(ph.warp_steps);
    const double step_cycles =
        steps * cfg_.step_cost / std::max(concurrency, 1.0);
    const double atomic_cycles = static_cast<double>(ph.atomics) *
                                 cfg_.atomic_cost / cfg_.atomic_concurrency;
    const double mem_cycles = static_cast<double>(ph.mem) *
                              cfg_.global_mem_cost /
                              std::min(cfg_.mem_concurrency, concurrency);
    compute_cycles += step_cycles;
    compute_cycles += atomic_cycles;
    compute_cycles += mem_cycles;

    if (sink) {
      telemetry::TraceEvent ev;
      ev.kind = telemetry::EventKind::kPhase;
      ev.device = trace_device_;
      ev.launch = launch_ord;
      ev.phase = static_cast<std::uint32_t>(pi);
      ev.seq = trace_seq_++;
      ev.name = "phase " + std::to_string(pi);
      ev.ts_cycles = phase_ts;
      ev.dur_cycles = step_cycles + atomic_cycles + mem_cycles;
      ev.work = ph.work;
      ev.warp_steps = ph.warp_steps;
      ev.atomics = ph.atomics;
      ev.global_accesses = ph.mem;
      phase_ts += ev.dur_cycles;
      sink->record(0, std::move(ev));
      if (pi + 1 < phases.size()) {
        telemetry::TraceEvent bev;
        bev.kind = telemetry::EventKind::kBarrier;
        bev.device = trace_device_;
        bev.launch = launch_ord;
        bev.phase = static_cast<std::uint32_t>(pi);
        bev.seq = trace_seq_++;
        bev.name = barrier_label(barrier);
        bev.ts_cycles = phase_ts;
        bev.dur_cycles = barrier_cost;
        phase_ts += barrier_cost;
        sink->record(0, std::move(bev));
      }
    }

    // Injected barrier stall: one barrier crossing burns the watchdog
    // timeout (barrier_stall_factor x its own cost) before the runtime
    // releases it. Checked per crossing so opportunity counting matches the
    // number of barriers a campaign can target.
    if (injector_ && pi + 1 < phases.size() &&
        injector_->should_fire(resilience::FaultClass::kBarrierStall)) {
      const double extra = barrier_cost * cfg_.barrier_stall_factor;
      stall_cycles += extra;
      note_fault(resilience::FaultClass::kBarrierStall,
                 "barrier stall after phase " + std::to_string(pi));
      ++stalls_this_launch;
      if (cfg_.barrier_stall_budget > 0 &&
          stalls_this_launch > cfg_.barrier_stall_budget) {
        stats_.modeled_cycles += stall_cycles;
        throw FaultError(Status(
            StatusCode::kRetriesExhausted,
            "global barrier declared hung after " +
                std::to_string(stalls_this_launch) +
                " stalls in one launch (barrier_stall_budget=" +
                std::to_string(cfg_.barrier_stall_budget) + ")"));
      }
      phase_ts += extra;
      note_recovery("barrier released after modeled watchdog timeout");
    }
  }

  ks.modeled_cycles = cfg_.kernel_launch_overhead + compute_cycles +
                      static_cast<double>(phases.size() - 1) * barrier_cost +
                      stall_cycles;

  if (sink) {
    telemetry::TraceEvent ev;
    ev.kind = telemetry::EventKind::kLaunch;
    ev.device = trace_device_;
    ev.launch = launch_ord;
    ev.seq = trace_seq_++;
    ev.name = "launch " + std::to_string(lc.blocks) + "x" +
              std::to_string(lc.threads_per_block);
    ev.ts_cycles = launch_start;
    ev.dur_cycles = ks.modeled_cycles;
    ev.work = ks.total_work;
    ev.warp_steps = ks.warp_steps;
    ev.atomics = ks.atomics;
    ev.global_accesses = ks.global_accesses;
    sink->record(0, std::move(ev));
  }
  stats_.absorb(ks);
  if (sink) {
    note_counter("device.bytes_allocated",
                 static_cast<double>(stats_.bytes_allocated));
    note_counter("device.bytes_copied",
                 static_cast<double>(stats_.bytes_copied));
  }
  if (san) {
    san->end_launch();
    // Only emitted while a sanitizer is armed, so traces without --sanitize
    // stay byte-identical.
    if (sink) {
      note_counter("sanitizer.findings",
                   static_cast<double>(san->total_findings()));
    }
  }
  return ks;
}

void Device::note_counter(const std::string& name, double value) {
  if (!cfg_.trace) return;
  telemetry::TraceEvent ev;
  ev.kind = telemetry::EventKind::kCounter;
  ev.device = trace_device_;
  ev.launch = static_cast<std::uint32_t>(stats_.launches);
  ev.seq = trace_seq_++;
  ev.name = name;
  ev.ts_cycles = stats_.modeled_cycles;
  ev.value = value;
  cfg_.trace->record(0, std::move(ev));
}

void Device::note_worklist_rebalance(std::uint64_t steals,
                                     std::uint64_t spills) {
  stats_.wl_steals += steals;
  stats_.wl_spills += spills;
  if (!cfg_.trace) return;
  note_counter("worklist.steals", static_cast<double>(stats_.wl_steals));
  note_counter("worklist.spills", static_cast<double>(stats_.wl_spills));
}

void Device::note_fault(resilience::FaultClass cls, const std::string& what) {
  ++stats_.faults_injected;
  if (!cfg_.trace) return;
  telemetry::TraceEvent ev;
  ev.kind = telemetry::EventKind::kFault;
  ev.device = trace_device_;
  ev.launch = static_cast<std::uint32_t>(stats_.launches);
  ev.seq = trace_seq_++;
  ev.name = std::string("fault/") + resilience::fault_class_name(cls) +
            ": " + what;
  ev.ts_cycles = stats_.modeled_cycles;
  cfg_.trace->record(0, std::move(ev));
}

void Device::note_recovery(const std::string& what) {
  ++stats_.faults_recovered;
  if (!cfg_.trace) return;
  telemetry::TraceEvent ev;
  ev.kind = telemetry::EventKind::kRecovery;
  ev.device = trace_device_;
  ev.launch = static_cast<std::uint32_t>(stats_.launches);
  ev.seq = trace_seq_++;
  ev.name = "recover/" + what;
  ev.ts_cycles = stats_.modeled_cycles;
  cfg_.trace->record(0, std::move(ev));
}

void Device::note_host_alloc(std::uint64_t bytes) {
  ++stats_.host_allocs;
  stats_.bytes_allocated += bytes;
  stats_.modeled_cycles += cfg_.alloc_overhead;
}

void Device::note_realloc(std::uint64_t bytes_copied) {
  ++stats_.reallocs;
  stats_.bytes_copied += bytes_copied;
  stats_.modeled_cycles +=
      static_cast<double>(bytes_copied) * cfg_.copy_cost_per_byte;
}

void Device::note_device_malloc(std::uint64_t bytes) {
  ++stats_.device_mallocs;
  stats_.bytes_allocated += bytes;
  stats_.modeled_cycles += cfg_.alloc_overhead / 4.0;  // heap suballocation
}

void Device::note_copy(std::uint64_t bytes) {
  stats_.bytes_copied += bytes;
  stats_.modeled_cycles +=
      static_cast<double>(bytes) * cfg_.copy_cost_per_byte;
}

}  // namespace morph::gpu
