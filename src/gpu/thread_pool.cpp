#include "gpu/thread_pool.hpp"

#include "support/check.hpp"

namespace morph {

namespace {
// 1-based pool-worker index of the current thread; 0 outside any pool.
thread_local std::uint32_t tls_pool_worker = 0;
}  // namespace

std::uint32_t ThreadPool::current_worker() { return tls_pool_worker; }

ThreadPool::ThreadPool(std::uint32_t workers) : worker_count_(workers) {
  if (worker_count_ <= 1) return;  // inline mode
  threads_.reserve(worker_count_);
  for (std::uint32_t i = 0; i < worker_count_; ++i) {
    threads_.emplace_back([this, i] {
      tls_pool_worker = i + 1;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_all(std::uint64_t n,
                         const std::function<void(std::uint64_t)>& f) {
  if (n == 0) return;
  if (threads_.empty()) {
    for (std::uint64_t i = 0; i < n; ++i) f(i);
    return;
  }
  std::unique_lock lock(mu_);
  MORPH_CHECK_MSG(batch_fn_ == nullptr, "nested run_all on the same pool");
  batch_fn_ = &f;
  batch_n_ = n;
  next_ = 0;
  done_ = 0;
  ++generation_;
  cv_task_.notify_all();
  cv_done_.wait(lock, [this] { return done_ == batch_n_; });
  batch_fn_ = nullptr;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::unique_lock lock(mu_);
    cv_task_.wait(lock, [&] {
      return stop_ || (batch_fn_ != nullptr && generation_ != seen_generation);
    });
    if (stop_) return;
    seen_generation = generation_;
    // Claim and run tasks until the batch is exhausted.
    while (batch_fn_ != nullptr && next_ < batch_n_) {
      const std::uint64_t i = next_++;
      const auto* fn = batch_fn_;
      lock.unlock();
      (*fn)(i);
      lock.lock();
      if (++done_ == batch_n_) cv_done_.notify_all();
    }
  }
}

}  // namespace morph
