// Delaunay mesh refinement drivers.
//
// Three implementations of the same refinement algorithm, mirroring the
// paper's comparison:
//   refine_serial    — the "Triangle program" stand-in: one cavity at a time.
//   refine_multicore — Galois-style optimistic speculation over T virtual
//                      workers with per-element CAS locks and aborts.
//   refine_gpu       — the paper's GPU algorithm (Fig. 3): rounds of
//                      3-phase race / prioritycheck / check conflict
//                      resolution with a global barrier between phases,
//                      adaptive kernel configuration, divergence sorting,
//                      memory-layout optimization, and slot recycling.
#pragma once

#include <cstdint>

#include "core/conflict.hpp"
#include "dmr/mesh.hpp"
#include "gpu/cpu_runner.hpp"
#include "gpu/device.hpp"
#include "resilience/recovery.hpp"

namespace morph::dmr {

struct RefineOptions {
  double min_angle_deg = 30.0;

  // GPU-implementation toggles (Fig. 8 ablation arms).
  core::ConflictScheme scheme = core::ConflictScheme::kThreePhase;
  gpu::BarrierKind barrier = gpu::BarrierKind::kHierarchical;
  bool layout_opt = true;       ///< BFS-reorder the mesh first (Sec. 6.1)
  bool adaptive = true;         ///< adaptive kernel configuration (Sec. 7.4)
  bool divergence_sort = true;  ///< pack bad triangles first (Sec. 7.6)
  bool use_float = false;       ///< single-precision cavity tests
  bool recycle = true;          ///< reuse deleted slots (Sec. 7.2 Recycle)
  bool prealloc = false;        ///< pre-allocate max storage vs on-demand

  std::uint32_t initial_tpb = 64;  ///< paper: DMR starts at 64 and doubles
  /// Static threads-per-block used when `adaptive` is off. A fixed
  /// configuration must be provisioned for the peak parallelism, which is
  /// exactly what the adaptive scheme avoids early on (Sec. 7.4).
  std::uint32_t fixed_tpb = 512;
  /// Blocks per SM; <= 0 selects automatically from the input size
  /// (proportional, clamped to the paper's 3x..50x SM range).
  double sm_factor = 0.0;
  std::uint64_t max_rounds = 1u << 20;

  // --- resilience (docs/RESILIENCE.md) ---

  /// Livelock watchdog thresholds. `watchdog_escalate_after` consecutive
  /// no-progress rounds trigger the serialized-arbitration fallback (the
  /// default of 1 is the historical behaviour: a fully aborted round falls
  /// back immediately). `watchdog_give_up_after` no-progress rounds abort
  /// the run with morph::FaultError (kLivelock); 0 never gives up.
  std::uint32_t watchdog_escalate_after = 1;
  std::uint32_t watchdog_give_up_after = 0;

  /// Run the mesh-validity invariant checker to gate recovery: the mesh is
  /// checkpointed before each serialized-arbitration fallback and validated
  /// after it — a corrupt result rolls back to the checkpoint and fails with
  /// kInvariantViolation — and validated once more after refinement
  /// converges. Off by default (full validation is O(mesh)).
  bool validate_invariants = false;

  /// Data-driven driver only: give each thread a bounded per-thread local
  /// worklist whose overflow spills to the centralized list (Sec. 7.5
  /// fallback ladder) instead of pushing globally every time.
  bool local_queues = false;
  std::size_t local_queue_cap = 16;
};

struct RefineStats {
  std::uint64_t rounds = 0;
  std::uint64_t processed = 0;       ///< cavities successfully applied
  std::uint64_t aborted = 0;         ///< cavities built but lost to conflict
  std::uint64_t fallbacks = 0;       ///< serial live-lock fallback rounds
  std::uint64_t initial_bad = 0;
  std::uint64_t final_triangles = 0;
  double wall_seconds = 0.0;
  double modeled_cycles = 0.0;

  double abort_ratio() const {
    const double total = static_cast<double>(processed + aborted);
    return total > 0 ? static_cast<double>(aborted) / total : 0.0;
  }
};

/// Sequential refinement; processes bad triangles with a LIFO worklist.
RefineStats refine_serial(Mesh& m, const RefineOptions& opts = {});

/// Round-based optimistic multicore refinement on the given runner.
RefineStats refine_multicore(Mesh& m, cpu::ParallelRunner& runner,
                             const RefineOptions& opts = {});

/// The paper's GPU implementation on the SIMT simulator.
RefineStats refine_gpu(Mesh& m, gpu::Device& dev,
                       const RefineOptions& opts = {});

/// The *data-driven* alternative the paper rejects (Sec. 2): bad triangles
/// are dispensed from a centralized worklist whose every push and pop is an
/// atomic operation. Same 3-phase conflict resolution, same result; kept so
/// the worklist ablation can quantify the centralized-queue bottleneck
/// against the topology-driven local-worklist design.
RefineStats refine_gpu_datadriven(Mesh& m, gpu::Device& dev,
                                  const RefineOptions& opts = {});

}  // namespace morph::dmr
