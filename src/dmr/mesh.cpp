#include "dmr/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numbers>
#include <sstream>
#include <string>

#include "support/morton.hpp"
#include "support/rng.hpp"

namespace morph::dmr {

double cos_of_deg(double deg) {
  return std::cos(deg * std::numbers::pi / 180.0);
}

Tri Mesh::add_triangle(Vtx a, Vtx b, Vtx c) {
  tri_.push_back({a, b, c});
  nbr_.push_back({kNone, kNone, kNone});
  deleted_.push_back(0);
  bad_.push_back(0);
  ++live_;
  const Tri t = static_cast<Tri>(tri_.size() - 1);
  write_triangle(t, a, b, c);
  return t;
}

void Mesh::write_triangle(Tri slot, Vtx a, Vtx b, Vtx c) {
  if (orient2d(point(a), point(b), point(c)) < 0) std::swap(b, c);
  MORPH_CHECK_MSG(orient2d(point(a), point(b), point(c)) > 0,
                  "degenerate triangle");
  if (deleted_[slot]) {
    deleted_[slot] = 0;
    ++live_;
  }
  tri_[slot] = {a, b, c};
  nbr_[slot] = {kNone, kNone, kNone};
  bad_[slot] = 0;
}

std::size_t Mesh::compute_all_bad(double min_angle_deg) {
  const double cb = cos_of_deg(min_angle_deg);
  std::size_t n = 0;
  for (Tri t = 0; t < tri_.size(); ++t) {
    if (deleted_[t]) {
      bad_[t] = 0;
      continue;
    }
    bad_[t] = check_bad(t, cb) ? 1 : 0;
    n += bad_[t];
  }
  return n;
}

int Mesh::edge_index(Tri t, Vtx a, Vtx b) const {
  for (int i = 0; i < 3; ++i) {
    const Vtx u = tri_[t][(i + 1) % 3];
    const Vtx v = tri_[t][(i + 2) % 3];
    if ((u == a && v == b) || (u == b && v == a)) return i;
  }
  MORPH_CHECK_MSG(false, "edge (" << a << "," << b << ") not in triangle "
                                  << t);
  return -1;
}

void Mesh::replace_neighbor(Tri t_from, Tri t_old, Tri t_new) {
  for (int i = 0; i < 3; ++i) {
    if (nbr_[t_from][i] == t_old) {
      nbr_[t_from][i] = t_new;
      return;
    }
  }
  MORPH_CHECK_MSG(false, "triangle " << t_old << " is not a neighbor of "
                                     << t_from);
}

bool Mesh::validate(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  for (Tri t = 0; t < tri_.size(); ++t) {
    if (deleted_[t]) continue;
    const auto& v = tri_[t];
    if (v[0] >= px_.size() || v[1] >= px_.size() || v[2] >= px_.size())
      return fail("vertex out of range");
    if (orient2d(point(v[0]), point(v[1]), point(v[2])) <= 0) {
      std::ostringstream os;
      os << "triangle " << t << " not CCW";
      return fail(os.str());
    }
    for (int e = 0; e < 3; ++e) {
      const Tri o = nbr_[t][e];
      if (o == kBoundary) continue;
      if (o == kNone) return fail("unset neighbor slot");
      if (o >= tri_.size()) return fail("neighbor out of range");
      if (deleted_[o]) {
        std::ostringstream os;
        os << "triangle " << t << " references deleted neighbor " << o;
        return fail(os.str());
      }
      // Symmetry: o must have an edge with the same endpoints back to t.
      const auto [a, b] = edge_verts(t, e);
      bool found = false;
      for (int eo = 0; eo < 3; ++eo) {
        if (nbr_[o][eo] == t) {
          const auto [oa, ob] = edge_verts(o, eo);
          if ((oa == a && ob == b) || (oa == b && ob == a)) found = true;
        }
      }
      if (!found) {
        std::ostringstream os;
        os << "asymmetric adjacency " << t << " -> " << o;
        return fail(os.str());
      }
    }
  }
  return true;
}

std::size_t Mesh::count_hull_edges() const {
  std::size_t n = 0;
  for (Tri t = 0; t < tri_.size(); ++t) {
    if (deleted_[t]) continue;
    for (int e = 0; e < 3; ++e)
      if (nbr_[t][e] == kBoundary) ++n;
  }
  return n;
}

std::size_t Mesh::compact_and_reorder(bool reorder) {
  const Tri n = static_cast<Tri>(tri_.size());
  std::vector<Tri> order;  // old ids in their new order
  order.reserve(live_);
  for (Tri t = 0; t < n; ++t) {
    if (!deleted_[t]) order.push_back(t);
  }
  if (reorder) {
    // Space-filling-curve scan over triangle centroids: geometrically
    // adjacent triangles (hence a cavity's triangles) land on nearby slot
    // ids, which is what makes the local-worklist chunks of Sec. 7.5 a
    // pseudo-partitioning of the mesh.
    std::vector<std::uint64_t> key(n, 0);
    for (Tri t : order) {
      const auto& v = tri_[t];
      const double cx = (px_[v[0]] + px_[v[1]] + px_[v[2]]) / 3.0;
      const double cy = (py_[v[0]] + py_[v[1]] + py_[v[2]]) / 3.0;
      key[t] = morton_unit(cx, cy);
    }
    std::sort(order.begin(), order.end(),
              [&](Tri a, Tri b) { return key[a] < key[b]; });
  }
  apply_order(order);
  return tri_.size();
}

void Mesh::shuffle_slots(std::uint64_t seed) {
  std::vector<Tri> order;
  order.reserve(live_);
  for (Tri t = 0; t < tri_.size(); ++t) {
    if (!deleted_[t]) order.push_back(t);
  }
  Rng rng(seed);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.next_below(i)]);
  apply_order(order);
}

void Mesh::apply_order(const std::vector<Tri>& order) {
  const Tri n = static_cast<Tri>(tri_.size());
  std::vector<Tri> new_id(n, kNone);
  for (Tri i = 0; i < order.size(); ++i) new_id[order[i]] = i;

  std::vector<std::array<Vtx, 3>> tri2(order.size());
  std::vector<std::array<Tri, 3>> nbr2(order.size());
  std::vector<std::uint8_t> bad2(order.size());
  for (Tri i = 0; i < order.size(); ++i) {
    const Tri t = order[i];
    tri2[i] = tri_[t];
    bad2[i] = bad_[t];
    for (int e = 0; e < 3; ++e) {
      const Tri o = nbr_[t][e];
      nbr2[i][e] = (o == kBoundary || o == kNone) ? o : new_id[o];
    }
  }
  tri_.swap(tri2);
  nbr_.swap(nbr2);
  bad_.swap(bad2);
  deleted_.assign(tri_.size(), 0);
  live_ = tri_.size();
}

}  // namespace morph::dmr
