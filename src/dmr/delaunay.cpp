#include "dmr/delaunay.hpp"

#include <algorithm>

#include "support/morton.hpp"
#include "support/rng.hpp"

namespace morph::dmr {

Mesh triangulate_square(std::span<const Pt64> points) {
  Mesh m;
  const Vtx c0 = m.add_point(0.0, 0.0);
  const Vtx c1 = m.add_point(1.0, 0.0);
  const Vtx c2 = m.add_point(1.0, 1.0);
  const Vtx c3 = m.add_point(0.0, 1.0);
  const Tri t0 = m.add_triangle(c0, c1, c2);
  const Tri t1 = m.add_triangle(c0, c2, c3);
  m.set_neighbor(t0, m.edge_index(t0, c0, c2), t1);
  m.set_neighbor(t1, m.edge_index(t1, c0, c2), t0);
  m.set_neighbor(t0, m.edge_index(t0, c0, c1), Mesh::kBoundary);
  m.set_neighbor(t0, m.edge_index(t0, c1, c2), Mesh::kBoundary);
  m.set_neighbor(t1, m.edge_index(t1, c2, c3), Mesh::kBoundary);
  m.set_neighbor(t1, m.edge_index(t1, c3, c0), Mesh::kBoundary);

  // Morton-sort the insertion order so each walk starts near its target.
  std::vector<std::uint32_t> order(points.size());
  for (std::uint32_t i = 0; i < points.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return morton_unit(points[a].x, points[a].y) <
           morton_unit(points[b].x, points[b].y);
  });

  Tri hint = t0;
  std::vector<Tri> created;
  const double cos_bound = cos_of_deg(30.0);
  for (std::uint32_t idx : order) {
    const Pt64 p = points[idx];
    MORPH_CHECK_MSG(p.x > 0.0 && p.x < 1.0 && p.y > 0.0 && p.y < 1.0,
                    "point outside the unit square");
    const Tri at = locate_triangle(m, hint, p, nullptr);
    MORPH_CHECK_MSG(at != Mesh::kNone, "point location failed");
    Cavity c = build_insertion_cavity(m, at, p);
    created.clear();
    retriangulate(m, c, cos_bound, nullptr, &created);
    hint = created.empty() ? Mesh::kNone : created.front();
  }
  return m;
}

Mesh generate_input_mesh(std::size_t target_triangles, std::uint64_t seed) {
  MORPH_CHECK(target_triangles >= 8);
  // A triangulation of n interior points + 4 corners of a square has
  // 2(n+4) - 2 - hull triangles ~= 2n + 2.
  const std::size_t n = target_triangles / 2;
  Rng rng(seed);
  std::vector<Pt64> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({0.001 + 0.998 * rng.next_double(),
                   0.001 + 0.998 * rng.next_double()});
  }
  Mesh m = triangulate_square(pts);
  // Randomize the slot order (this also drops Bowyer-Watson's tombstones):
  // meshes read from files carry no spatial locality in their on-disk
  // order; the Sec. 6.1 layout optimization is what repairs it.
  m.shuffle_slots(seed ^ 0x5eedu);
  return m;
}

bool is_delaunay(const Mesh& m, double eps) {
  for (Tri t = 0; t < m.num_slots(); ++t) {
    if (m.is_deleted(t)) continue;
    const auto& v = m.verts(t);
    for (int e = 0; e < 3; ++e) {
      const Tri o = m.across(t, e);
      if (o == Mesh::kBoundary || o == Mesh::kNone) continue;
      if (m.is_deleted(o)) return false;
      // Apex of o opposite the shared edge.
      const auto [a, b] = m.edge_verts(t, e);
      Vtx apex = Mesh::kNone;
      for (Vtx w : m.verts(o)) {
        if (w != a && w != b) apex = w;
      }
      if (apex == Mesh::kNone) return false;
      if (incircle(m.point(v[0]), m.point(v[1]), m.point(v[2]),
                   m.point(apex)) > eps)
        return false;
    }
  }
  return true;
}

}  // namespace morph::dmr
