#include "dmr/flip.hpp"

#include "core/conflict.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace morph::dmr {

namespace {

/// The flip quadrilateral around edge e of t: t = (a, b, c) CCW with the
/// shared edge (b, c); o = across(t, e) with apex d.
struct Quad {
  Tri t = Mesh::kNone, o = Mesh::kNone;
  Vtx a = 0, b = 0, c = 0, d = 0;
  bool valid = false;
};

Quad quad_of(const Mesh& m, Tri t, int e) {
  Quad q;
  const Tri o = m.across(t, e);
  if (o == Mesh::kBoundary || o == Mesh::kNone) return q;
  q.t = t;
  q.o = o;
  q.a = m.verts(t)[e];
  const auto [b, c] = m.edge_verts(t, e);
  q.b = b;
  q.c = c;
  q.d = Mesh::kNone;
  for (Vtx w : m.verts(o)) {
    if (w != b && w != c) q.d = w;
  }
  MORPH_CHECK(q.d != Mesh::kNone);
  q.valid = true;
  return q;
}

bool flip_legal(const Mesh& m, const Quad& q) {
  // The replacement triangles (a,b,d) and (a,d,c) must be positively
  // oriented, i.e. the quadrilateral a-b-d-c is convex.
  return q.valid &&
         orient2d(m.point(q.a), m.point(q.b), m.point(q.d)) > 0 &&
         orient2d(m.point(q.a), m.point(q.d), m.point(q.c)) > 0;
}

/// The conflict neighborhood of a flip: both triangles and the four outer
/// neighbors whose adjacency slots are rewired.
std::vector<Tri> flip_neighborhood(const Mesh& m, const Quad& q) {
  std::vector<Tri> hood{q.t, q.o};
  for (Tri s : {q.t, q.o}) {
    for (Tri nb : m.neighbors(s)) {
      if (nb != q.t && nb != q.o && nb != Mesh::kBoundary &&
          nb != Mesh::kNone) {
        hood.push_back(nb);
      }
    }
  }
  std::sort(hood.begin(), hood.end());
  hood.erase(std::unique(hood.begin(), hood.end()), hood.end());
  return hood;
}

}  // namespace

bool edge_locally_delaunay(const Mesh& m, Tri t, int e) {
  const Quad q = quad_of(m, t, e);
  if (!q.valid) return true;  // hull edges are always fine
  const auto& v = m.verts(t);
  return incircle(m.point(v[0]), m.point(v[1]), m.point(v[2]),
                  m.point(q.d)) <= 0;
}

bool flip_edge(Mesh& m, Tri t, int e) {
  const Quad q = quad_of(m, t, e);
  if (!flip_legal(m, q)) return false;

  // Outer neighbors before rewiring.
  const Tri n_ab = m.across(q.t, m.edge_index(q.t, q.a, q.b));
  const Tri n_ac = m.across(q.t, m.edge_index(q.t, q.a, q.c));
  const Tri n_bd = m.across(q.o, m.edge_index(q.o, q.b, q.d));
  const Tri n_cd = m.across(q.o, m.edge_index(q.o, q.c, q.d));

  // Rewrite the two triangles in place (no slots added or deleted — the
  // node/edge-count-preserving morph the paper contrasts with DMR).
  m.write_triangle(q.t, q.a, q.b, q.d);
  m.write_triangle(q.o, q.a, q.d, q.c);

  auto wire = [&m](Tri x, Vtx u, Vtx v, Tri other) {
    m.set_neighbor(x, m.edge_index(x, u, v), other);
    if (other != Mesh::kBoundary && other != Mesh::kNone) {
      m.set_neighbor(other, m.edge_index(other, u, v), x);
    }
  };
  wire(q.t, q.a, q.b, n_ab);
  wire(q.t, q.b, q.d, n_bd);
  wire(q.o, q.c, q.d, n_cd);
  wire(q.o, q.a, q.c, n_ac);
  wire(q.t, q.a, q.d, q.o);
  return true;
}

FlipStats flip_serial(Mesh& m) {
  Timer timer;
  FlipStats st;
  std::vector<Tri> work;
  for (Tri t = 0; t < m.num_slots(); ++t) {
    if (!m.is_deleted(t)) work.push_back(t);
  }
  while (!work.empty()) {
    const Tri t = work.back();
    work.pop_back();
    if (m.is_deleted(t)) continue;
    for (int e = 0; e < 3; ++e) {
      if (edge_locally_delaunay(m, t, e)) continue;
      const Quad q = quad_of(m, t, e);
      if (!flip_edge(m, t, e)) continue;
      ++st.flips;
      work.push_back(q.t);
      work.push_back(q.o);
      break;  // t's edges changed; revisit via the worklist
    }
  }
  st.wall_seconds = timer.seconds();
  return st;
}

FlipStats flip_gpu(Mesh& m, gpu::Device& dev, gpu::BarrierKind barrier) {
  Timer timer;
  FlipStats st;
  const std::uint64_t nslots = m.num_slots();
  core::MarkTable marks(nslots);
  const std::uint32_t sm = dev.config().num_sms;
  const gpu::LaunchConfig lc{
      std::clamp<std::uint32_t>(static_cast<std::uint32_t>(nslots / 1024 + 1),
                                3 * sm, 50 * sm),
      256, "dmr.flip"};
  const std::uint64_t T = lc.total_threads();
  const std::uint64_t chunk = (nslots + T - 1) / T;

  bool changed = true;
  while (changed) {
    ++st.rounds;
    changed = false;
    marks.reset();
    std::vector<Tri> target(T, Mesh::kNone);
    std::vector<int> target_edge(T, -1);
    std::vector<std::vector<Tri>> hood(T);
    std::vector<std::uint8_t> owns(T, 0);
    // Touched only in the sequential commit phase: plain counters.
    std::uint64_t flips = 0, aborted = 0;

    const gpu::Phase phases[3] = {
        // race: find a flippable edge in my chunk, mark its neighborhood.
        {[&](gpu::ThreadCtx& ctx) {
          const std::uint32_t tid = ctx.tid();
          const std::uint64_t lo = static_cast<std::uint64_t>(tid) * chunk;
          const std::uint64_t hi = std::min<std::uint64_t>(lo + chunk, nslots);
          for (std::uint64_t i = lo; i < hi; ++i) {
            ctx.work(1);
            const Tri t = static_cast<Tri>(i);
            if (m.is_deleted(t)) continue;
            for (int e = 0; e < 3; ++e) {
              ctx.work(1);
              if (edge_locally_delaunay(m, t, e)) continue;
              const Quad q = quad_of(m, t, e);
              if (!flip_legal(m, q)) continue;
              target[tid] = t;
              target_edge[tid] = e;
              hood[tid] = flip_neighborhood(m, q);
              marks.race_mark(ctx, tid, hood[tid]);
              return;
            }
          }
        }, /*sequential=*/false},
        // prioritycheck
        {[&](gpu::ThreadCtx& ctx) {
          const std::uint32_t tid = ctx.tid();
          if (target[tid] == Mesh::kNone) return;
          owns[tid] = marks.priority_check(ctx, tid, hood[tid]) ? 1 : 0;
        }, /*sequential=*/false},
        // check + apply. Sequential commit: the host-serialized mesh
        // rewiring runs in ascending thread order, so the surviving flips
        // (and hence the modeled cost of every later round) are identical
        // for any host_workers value.
        {[&](gpu::ThreadCtx& ctx) {
          const std::uint32_t tid = ctx.tid();
          if (target[tid] == Mesh::kNone) return;
          if (owns[tid] && marks.final_check(ctx, tid, hood[tid])) {
            if (flip_edge(m, target[tid], target_edge[tid])) {
              ctx.work(8);
              ++flips;
            }
          } else {
            ++aborted;
          }
        }, /*sequential=*/true},
    };
    dev.launch_phases(lc, std::span<const gpu::Phase>(phases), barrier);
    st.flips += flips;
    st.aborted += aborted;
    changed = flips > 0;

    // Live-lock fallback, as in DMR: if every candidate aborted, flip one
    // edge serially.
    if (!changed && aborted > 0) {
      dev.launch({1, 1, "dmr.flip.escalate"}, [&](gpu::ThreadCtx& ctx) {
        for (Tri t = 0; t < m.num_slots(); ++t) {
          ctx.work(1);
          if (m.is_deleted(t)) continue;
          for (int e = 0; e < 3; ++e) {
            if (!edge_locally_delaunay(m, t, e) && flip_edge(m, t, e)) {
              ++st.flips;
              changed = true;
              return;
            }
          }
        }
      });
    }
  }
  st.wall_seconds = timer.seconds();
  st.modeled_cycles = dev.stats().modeled_cycles;
  return st;
}

std::size_t random_legal_flips(Mesh& m, std::size_t count,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::size_t done = 0;
  std::size_t attempts = 0;
  while (done < count && attempts < count * 64) {
    ++attempts;
    const Tri t = static_cast<Tri>(rng.next_below(m.num_slots()));
    if (m.is_deleted(t)) continue;
    const int e = static_cast<int>(rng.next_below(3));
    if (flip_edge(m, t, e)) ++done;
  }
  return done;
}

}  // namespace morph::dmr
