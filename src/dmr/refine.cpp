#include "dmr/refine.hpp"

#include <algorithm>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/adaptive.hpp"
#include "gpu/worklist.hpp"
#include "dmr/cavity.hpp"
#include "support/status.hpp"
#include "support/timer.hpp"

namespace morph::dmr {

namespace {

/// Charges one uncoalesced global access per neighborhood element whose slot
/// id is far from the candidate's — the effect the memory-layout
/// optimization (Sec. 6.1) buys back: after the BFS reorder, a cavity's
/// triangles have nearby ids and hit the same cache lines.
void charge_locality(gpu::ThreadCtx& ctx, Tri candidate,
                     std::span<const Tri> hood) {
  constexpr std::int64_t kWindow = 256;
  for (Tri t : hood) {
    const std::int64_t d = static_cast<std::int64_t>(t) -
                           static_cast<std::int64_t>(candidate);
    if (d > kWindow || d < -kWindow) ctx.global_access();
  }
}

/// Arms MarkTable::force_ties for one round when the campaign injects a
/// livelock at this round's opportunity. Returns whether it fired.
bool inject_livelock_round(gpu::Device& dev, core::MarkTable& marks,
                           std::uint64_t round) {
  if (!dev.fault_should_fire(resilience::FaultClass::kLivelock)) return false;
  marks.set_force_ties(true);
  dev.note_fault(resilience::FaultClass::kLivelock,
                 "forced priority ties for round " + std::to_string(round));
  return true;
}

/// The invariant gate for serialized-arbitration recovery: validates the
/// mesh, rolling back to `checkpoint` (when present) and failing with
/// kInvariantViolation if refinement corrupted it.
void gate_mesh_invariants(Mesh& m, std::optional<Mesh>& checkpoint,
                          const char* when) {
  std::string why;
  if (m.validate(&why)) return;
  if (checkpoint) m = std::move(*checkpoint);
  throw FaultError(Status(StatusCode::kInvariantViolation,
                          std::string(when) + ": mesh invalid: " + why +
                              (checkpoint ? " (rolled back to checkpoint)"
                                          : "")));
}

}  // namespace

RefineStats refine_serial(Mesh& m, const RefineOptions& opts) {
  Timer timer;
  RefineStats st;
  const double cb = cos_of_deg(opts.min_angle_deg);
  st.initial_bad = m.compute_all_bad(opts.min_angle_deg);

  core::SlotRecycler recycler(opts.recycle ? 1u << 22 : 0u);
  std::vector<Tri> work;
  work.reserve(st.initial_bad);
  for (Tri t = 0; t < m.num_slots(); ++t) {
    if (!m.is_deleted(t) && m.is_bad(t)) work.push_back(t);
  }

  std::vector<Tri> added;
  while (!work.empty()) {
    const Tri t = work.back();
    work.pop_back();
    if (m.is_deleted(t) || !m.is_bad(t)) continue;
    Cavity c = build_refinement_cavity(m, t, opts.use_float);
    added.clear();
    retriangulate(m, c, cb, opts.recycle ? &recycler : nullptr, &added);
    if (opts.recycle) {
      for (Tri d : c.tris) recycler.give(d);
    }
    for (Tri a : added) {
      if (m.is_bad(a)) work.push_back(a);
    }
    // A segment split's cavity need not contain the bad triangle that
    // triggered it; requeue it until it is actually fixed.
    if (!m.is_deleted(t) && m.is_bad(t)) work.push_back(t);
    ++st.processed;
  }
  st.rounds = st.processed;
  st.final_triangles = m.num_live();
  st.wall_seconds = timer.seconds();
  return st;
}

RefineStats refine_multicore(Mesh& m, cpu::ParallelRunner& runner,
                             const RefineOptions& opts) {
  Timer timer;
  RefineStats st;
  const double cb = cos_of_deg(opts.min_angle_deg);
  st.initial_bad = m.compute_all_bad(opts.min_angle_deg);

  core::SlotRecycler recycler(opts.recycle ? 1u << 22 : 0u);
  std::vector<Tri> candidates;
  for (Tri t = 0; t < m.num_slots(); ++t) {
    if (!m.is_deleted(t) && m.is_bad(t)) candidates.push_back(t);
  }

  std::vector<Tri> next;
  std::vector<Tri> added;
  while (!candidates.empty() && st.rounds < opts.max_rounds) {
    ++st.rounds;
    next.clear();
    // Per-round speculation state: element -> claiming item index.
    std::unordered_map<Tri, std::uint64_t> claims;
    runner.round(candidates.size(), [&](cpu::WorkerCtx& ctx,
                                        std::uint64_t i) {
      const Tri t = candidates[i];
      ctx.work(1);
      if (m.is_deleted(t) || !m.is_bad(t)) return;
      Cavity c = build_refinement_cavity(m, t, opts.use_float);
      ctx.work(c.steps);
      const std::vector<Tri> hood = c.neighborhood(m);
      // Optimistic per-element locking, Galois style: abort on conflict.
      ctx.sync_op(hood.size());
      for (Tri e : hood) {
        auto it = claims.find(e);
        if (it != claims.end() && it->second != i) {
          ++st.aborted;
          next.push_back(t);  // retry next round
          return;
        }
      }
      for (Tri e : hood) claims[e] = i;
      added.clear();
      retriangulate(m, c, cb, opts.recycle ? &recycler : nullptr, &added);
      ctx.work(c.tris.size() + added.size());
      if (opts.recycle) {
        for (Tri d : c.tris) recycler.give(d);
      }
      for (Tri a : added) {
        if (m.is_bad(a)) next.push_back(a);
      }
      // Requeue a triangle left bad by a segment split (see refine_serial).
      if (!m.is_deleted(t) && m.is_bad(t)) next.push_back(t);
      ++st.processed;
    });
    candidates.swap(next);
  }
  st.final_triangles = m.num_live();
  st.wall_seconds = timer.seconds();
  st.modeled_cycles = runner.stats().modeled_cycles;
  return st;
}

RefineStats refine_gpu(Mesh& m, gpu::Device& dev, const RefineOptions& opts) {
  Timer timer;
  RefineStats st;
  const double cb = cos_of_deg(opts.min_angle_deg);

  if (opts.layout_opt) m.compact_and_reorder();

  // Block count proportional to the input size (Sec. 7.4). The divisor is
  // chosen so a thread's local worklist (its contiguous chunk, Sec. 7.5)
  // covers a few dozen triangles at full occupancy — the proportion the
  // paper's 3x..50x SM range implies for its inputs.
  const double sm_factor =
      opts.sm_factor > 0.0
          ? opts.sm_factor
          : std::clamp(static_cast<double>(m.num_slots()) /
                           (16384.0 * dev.config().num_sms),
                       3.0, 50.0);

  // Transfer of the initial mesh (main() in Fig. 3).
  dev.note_copy(m.num_slots() * (3 * sizeof(Vtx) + 3 * sizeof(Tri)) +
                m.num_points() * 2 * sizeof(double));

  // Memory strategy (Sec. 7.1). `reserved_slots` is the model-side view of
  // how much device storage has been cudaMalloc'ed for triangles.
  std::uint64_t reserved_slots;
  if (opts.prealloc) {
    reserved_slots = m.num_slots() * 12;  // generous static bound
    dev.note_host_alloc(reserved_slots * (3 * sizeof(Vtx) + 3 * sizeof(Tri)));
  } else {
    reserved_slots = m.num_slots();
    dev.note_host_alloc(reserved_slots * (3 * sizeof(Vtx) + 3 * sizeof(Tri)));
  }
  auto ensure_reserved = [&](std::uint64_t needed) {
    if (needed <= reserved_slots) return;
    const std::uint64_t bytes_now =
        m.num_slots() * (3 * sizeof(Vtx) + 3 * sizeof(Tri));
    reserved_slots = needed + needed / 2;
    dev.note_realloc(bytes_now);
    dev.note_host_alloc(reserved_slots * (3 * sizeof(Vtx) + 3 * sizeof(Tri)));
  };

  // initialize_kernel: compute bad flags (real work, charged per slot).
  std::int64_t bad_count = 0;
  {
    gpu::LaunchConfig lc = core::fixed_config(dev.config(), sm_factor, 256);
    lc.label = "dmr.init";
    const std::uint64_t n = m.num_slots();
    const std::uint64_t T = lc.total_threads();
    std::atomic<std::int64_t> bad_total{0};
    dev.launch(lc, [&](gpu::ThreadCtx& ctx) {
      std::int64_t local = 0;
      for (std::uint64_t i = ctx.tid(); i < n; i += T) {
        ctx.work(1);
        if (m.is_deleted(static_cast<Tri>(i))) continue;
        const bool bad = opts.use_float
                             ? m.check_bad_f(static_cast<Tri>(i),
                                             static_cast<float>(cb))
                             : m.check_bad(static_cast<Tri>(i), cb);
        m.set_bad(static_cast<Tri>(i), bad);
        local += bad ? 1 : 0;
      }
      if (local) bad_total.fetch_add(local, std::memory_order_relaxed);
    });
    bad_count = bad_total.load();
  }
  st.initial_bad = static_cast<std::uint64_t>(bad_count);

  core::SlotRecycler recycler(opts.recycle ? 1u << 22 : 0u);
  recycler.set_sanitizer(dev.sanitizer());
  core::MarkTable marks(m.num_slots());
  core::AdaptiveLauncher launcher(opts.initial_tpb, 3, sm_factor);
  resilience::LivelockWatchdog watchdog(opts.watchdog_escalate_after,
                                        opts.watchdog_give_up_after);

  while (bad_count > 0 && st.rounds < opts.max_rounds) {
    ++st.rounds;
    const bool injected_livelock =
        inject_livelock_round(dev, marks, st.rounds);
    const std::uint64_t nslots = m.num_slots();
    gpu::LaunchConfig lc =
        opts.adaptive ? launcher.next(dev.config())
                      : core::fixed_config(dev.config(), sm_factor,
                                           opts.fixed_tpb);
    lc.label = "dmr.refine";
    const std::uint64_t T = lc.total_threads();

    if (marks.size() < nslots) marks.resize(nslots + nslots / 2);
    marks.reset();

    // Host pre-calculation of the next kernel's memory needs (Host-Only).
    ensure_reserved(m.num_slots() +
                    static_cast<std::uint64_t>(
                        std::min<std::int64_t>(bad_count,
                                               static_cast<std::int64_t>(T))) *
                        8);

    const std::uint64_t chunk = (nslots + T - 1) / T;
    std::vector<Cavity> cav(T);
    std::vector<std::vector<Tri>> hood(T);
    std::vector<std::uint8_t> active(T, 0), owns(T, 0);
    // Touched only in sequential commit phases (see below): plain counters.
    std::uint64_t round_processed = 0, round_aborted = 0;

    // --- phase 1: find a bad triangle, build its cavity, race-mark ---
    //
    // Topology-driven with local worklists (Sec. 7.5): thread t owns the
    // contiguous chunk [t*chunk, (t+1)*chunk) of the triangle array — a
    // pseudo-partition of the mesh after the layout optimization — and
    // refines the first bad triangle in it. With divergence sorting
    // (Sec. 7.6) the block has moved its bad triangles to one side, so the
    // pickup is O(1) + the thread's share of the block-level sort; without
    // it the thread scans its chunk, and scan lengths diverge across the
    // warp.
    auto phase_race = [&](gpu::ThreadCtx& ctx) {
      const std::uint32_t t = ctx.tid();
      Tri target = Mesh::kNone;
      const std::uint64_t lo = static_cast<std::uint64_t>(t) * chunk;
      const std::uint64_t hi = std::min<std::uint64_t>(lo + chunk, nslots);
      std::uint64_t scanned = 0;
      for (std::uint64_t i = lo; i < hi; ++i) {
        ++scanned;
        if (!m.is_deleted(static_cast<Tri>(i)) &&
            m.is_bad(static_cast<Tri>(i))) {
          target = static_cast<Tri>(i);
          break;
        }
      }
      if (opts.divergence_sort) {
        // Uniform per-thread cost: sorted pickup plus sort share.
        std::uint64_t sort_share = 1;
        for (std::uint64_t c = chunk; c > 1; c >>= 1) ++sort_share;
        ctx.work(sort_share);
      } else {
        ctx.work(scanned);
      }
      if (target == Mesh::kNone) return;
      cav[t] = build_refinement_cavity(m, target, opts.use_float);
      // Single-precision containment tests (Fig. 8 row 7): half the
      // arithmetic and memory traffic of the double-precision path.
      ctx.work(opts.use_float ? cav[t].steps / 2 : cav[t].steps);
      hood[t] = cav[t].neighborhood(m);
      charge_locality(ctx, target, hood[t]);
      active[t] = 1;
      if (opts.scheme != core::ConflictScheme::kLocks) {
        marks.race_mark(ctx, t, hood[t]);
      }
    };

    // --- the apply step shared by all schemes ---
    //
    // Mesh mutation (and the slot allocation it performs) is inherently
    // serialized on the host, so every phase that calls apply() runs as a
    // *sequential* phase: blocks execute in ascending order on one host
    // thread. The modeled cost is unchanged; what it buys is a commit order
    // that does not depend on host-thread interleaving, which makes whole
    // refinement runs (mesh, stats, modeled cycles) deterministic for any
    // host_workers value. All parallel wall-clock gain lives in the cavity
    // building of the race phase, which stays block-parallel.
    auto apply = [&](gpu::ThreadCtx& ctx, std::uint32_t t) {
      // The guarded mutation the 3-phase protocol exists to protect: every
      // cavity element must be owned by this activity in the mark table.
      if (analysis::Sanitizer* s = ctx.san()) {
        s->on_guarded_write(&marks, ctx.block(), t, hood[t]);
      }
      std::int64_t bad_in_cavity = 0;
      for (Tri d : cav[t].tris) bad_in_cavity += m.is_bad(d) ? 1 : 0;
      std::vector<Tri> added;
      const RetriangulateResult res = retriangulate(
          m, cav[t], cb, opts.recycle ? &recycler : nullptr, &added);
      ctx.work(cav[t].tris.size() + added.size());
      if (opts.recycle) {
        for (Tri d : cav[t].tris) recycler.give(d);
      }
      bad_count += static_cast<std::int64_t>(res.new_bad) - bad_in_cavity;
      ++round_processed;
    };

    std::vector<gpu::Phase> phases;
    phases.push_back({phase_race, /*sequential=*/false});
    switch (opts.scheme) {
      case core::ConflictScheme::kLocks: {
        // Single phase: claim per-element locks in id order, apply, done.
        // Lock claiming + apply is mutual exclusion — fully sequential.
        phases.clear();
        phases.push_back({[&](gpu::ThreadCtx& ctx) {
          phase_race(ctx);
          const std::uint32_t t = ctx.tid();
          if (!active[t]) return;
          if (marks.try_claim(ctx, t, hood[t])) {
            owns[t] = 1;
            apply(ctx, t);
            // Unlock at the end of the operation.
            ctx.atomic_op(hood[t].size());
          } else {
            // A real lock-based kernel spins before giving up; charge the
            // retries that make mutual exclusion "ill-suited for GPUs".
            constexpr std::uint64_t kSpinRetries = 8;
            ctx.atomic_op(kSpinRetries * hood[t].size());
            ++round_aborted;
          }
        }, /*sequential=*/true});
        break;
      }
      case core::ConflictScheme::kTwoPhaseRaceCheck:
        phases.push_back({[&](gpu::ThreadCtx& ctx) {
          const std::uint32_t t = ctx.tid();
          if (!active[t]) return;
          if (marks.exact_check(ctx, t, hood[t])) {
            owns[t] = 1;
            apply(ctx, t);
          } else {
            ++round_aborted;
          }
        }, /*sequential=*/true});
        break;
      case core::ConflictScheme::kTwoPhasePriority:
        phases.push_back({[&](gpu::ThreadCtx& ctx) {
          const std::uint32_t t = ctx.tid();
          if (!active[t]) return;
          if (marks.priority_check(ctx, t, hood[t])) {
            owns[t] = 1;
            apply(ctx, t);
          } else {
            ++round_aborted;
          }
        }, /*sequential=*/true});
        break;
      case core::ConflictScheme::kThreePhase:
        phases.push_back({[&](gpu::ThreadCtx& ctx) {
          const std::uint32_t t = ctx.tid();
          if (!active[t]) return;
          owns[t] = marks.priority_check(ctx, t, hood[t]) ? 1 : 0;
        }, /*sequential=*/false});
        phases.push_back({[&](gpu::ThreadCtx& ctx) {
          const std::uint32_t t = ctx.tid();
          if (!active[t]) return;
          if (owns[t] && marks.final_check(ctx, t, hood[t])) {
            apply(ctx, t);
          } else {
            owns[t] = 0;
            ++round_aborted;
          }
        }, /*sequential=*/true});
        break;
    }
    dev.launch_phases(lc, std::span<const gpu::Phase>(phases), opts.barrier);
    if (injected_livelock) marks.set_force_ties(false);
    st.processed += round_processed;
    st.aborted += round_aborted;

    // Live-lock watchdog (Sec. 7.3 + docs/RESILIENCE.md): the 3-phase
    // protocol only terminates with high probability, so no-progress rounds
    // are tracked and escalated. The default thresholds escalate on the
    // first fully aborted round — the historical fallback — and never give
    // up; campaigns tighten them to exercise the whole ladder.
    const auto action = watchdog.observe(round_processed > 0);
    if (action == resilience::LivelockWatchdog::Action::kGiveUp &&
        bad_count > 0) {
      throw FaultError(watchdog.give_up_status("dmr::refine_gpu"));
    }
    if (action == resilience::LivelockWatchdog::Action::kEscalate &&
        bad_count > 0) {
      // Serialized priority arbitration: refine one bad triangle with a
      // single-thread kernel — trivially tie-free. When the invariant gate
      // is on, the mesh is checkpointed first and rolled back if the
      // escalation corrupts it.
      ++st.fallbacks;
      std::optional<Mesh> checkpoint;
      if (opts.validate_invariants) checkpoint = m;
      dev.launch({1, 1, "dmr.escalate"}, [&](gpu::ThreadCtx& ctx) {
        for (Tri t = 0; t < m.num_slots(); ++t) {
          ctx.work(1);
          if (m.is_deleted(t) || !m.is_bad(t)) continue;
          Cavity c = build_refinement_cavity(m, t, opts.use_float);
          ctx.work(c.steps);
          std::int64_t bad_in_cavity = 0;
          for (Tri d : c.tris) bad_in_cavity += m.is_bad(d) ? 1 : 0;
          const RetriangulateResult res = retriangulate(
              m, c, cb, opts.recycle ? &recycler : nullptr, nullptr);
          if (opts.recycle) {
            for (Tri d : c.tris) recycler.give(d);
          }
          bad_count += static_cast<std::int64_t>(res.new_bad) - bad_in_cavity;
          ++st.processed;
          break;
        }
      });
      if (opts.validate_invariants) {
        gate_mesh_invariants(m, checkpoint, "dmr::refine_gpu escalation");
      }
      if (injected_livelock) {
        dev.note_recovery(
            "livelock watchdog escalated to serialized arbitration");
      }
    } else if (injected_livelock) {
      dev.note_recovery("retrying round after forced priority ties");
    }
  }
  MORPH_CHECK_MSG(bad_count == 0, "refinement hit the round limit");
  if (opts.validate_invariants) {
    std::optional<Mesh> no_checkpoint;
    gate_mesh_invariants(m, no_checkpoint, "dmr::refine_gpu result");
  }

  // Transfer of the refined mesh back to the host.
  dev.note_copy(m.num_slots() * (3 * sizeof(Vtx) + 3 * sizeof(Tri)) +
                m.num_points() * 2 * sizeof(double));

  st.final_triangles = m.num_live();
  st.wall_seconds = timer.seconds();
  st.modeled_cycles = dev.stats().modeled_cycles;
  return st;
}

RefineStats refine_gpu_datadriven(Mesh& m, gpu::Device& dev,
                                  const RefineOptions& opts) {
  Timer timer;
  RefineStats st;
  const double cb = cos_of_deg(opts.min_angle_deg);
  if (opts.layout_opt) m.compact_and_reorder();

  std::int64_t bad_count =
      static_cast<std::int64_t>(m.compute_all_bad(opts.min_angle_deg));
  st.initial_bad = static_cast<std::uint64_t>(bad_count);

  // The centralized worklist. Sized generously; push failures fall back to
  // the next refill sweep. Attaching the device arms the overflow fault
  // class when a campaign is running. Under WorklistMode::kSharded it is
  // demoted to the shards' spill target: work normally lives in the
  // ShardedWorklist, partitioned so a block pops (and requeues to) its own
  // shards, and the centralized atomic index is off the hot path.
  const bool sharded =
      dev.config().worklist_mode == gpu::WorklistMode::kSharded;
  const std::size_t wl_cap =
      std::max<std::size_t>(1u << 16, m.num_slots() * 4);
  gpu::GlobalWorklist<Tri> worklist(wl_cap, &dev);
  std::optional<gpu::ShardedWorklist<Tri>> shards;
  if (sharded) {
    const std::size_t S = dev.config().resolved_worklist_shards();
    shards.emplace(S, wl_cap / S + 1, &dev, &worklist);
  }
  // Host-side fill (charges are discarded): bad triangles go to the shard of
  // their pseudo-partition (slot ranges are spatial after the layout pass),
  // or to the centralized list.
  const auto seed_worklist = [&] {
    gpu::ThreadCtx seed_ctx;
    for (Tri t = 0; t < m.num_slots(); ++t) {
      if (m.is_deleted(t) || !m.is_bad(t)) continue;
      if (sharded) {
        (void)shards->push(seed_ctx, shards->partition_shard(t, m.num_slots()),
                           t);
      } else {
        worklist.push(seed_ctx, t);
      }
    }
  };
  seed_worklist();

  core::SlotRecycler recycler(opts.recycle ? 1u << 22 : 0u);
  recycler.set_sanitizer(dev.sanitizer());
  core::MarkTable marks(m.num_slots());
  core::AdaptiveLauncher launcher(
      opts.initial_tpb, 3,
      std::clamp(static_cast<double>(m.num_slots()) /
                     (16384.0 * dev.config().num_sms),
                 3.0, 50.0));

  resilience::LivelockWatchdog watchdog(opts.watchdog_escalate_after,
                                        opts.watchdog_give_up_after);

  while (bad_count > 0 && st.rounds < opts.max_rounds) {
    ++st.rounds;
    const bool injected_livelock =
        inject_livelock_round(dev, marks, st.rounds);
    const std::uint64_t nslots = m.num_slots();
    gpu::LaunchConfig lc = launcher.next(dev.config());
    lc.label = "dmr.refine.dd";
    const std::uint64_t T = lc.total_threads();
    if (marks.size() < nslots) marks.resize(nslots + nslots / 2);
    marks.reset();

    std::vector<Cavity> cav(T);
    std::vector<std::vector<Tri>> hood(T);
    std::vector<Tri> cand(T, Mesh::kNone);
    std::vector<std::uint8_t> owns(T, 0);
    // Touched only in the sequential commit phase: plain counters.
    std::uint64_t round_processed = 0, round_aborted = 0;

    // Per-thread bounded queues for the requeue pushes (Sec. 7.5): a full —
    // or fault-injected — local queue spills to the centralized list
    // instead of dropping the item. Drained back into the global list after
    // the launch (local queues are per-round temporaries here).
    std::vector<gpu::LocalWorklist<Tri>> locals;
    if (opts.local_queues) {
      locals.reserve(T);
      for (std::uint64_t t = 0; t < T; ++t) {
        locals.emplace_back(opts.local_queue_cap);
        locals.back().set_spill_target(&worklist, &dev);
      }
    }
    // Requeue a triangle for a later round; Status intentionally dropped on
    // a full list — the refill sweep below re-discovers lost work. Sharded:
    // new work targets the committing block's own shard (pseudo-partition
    // locality); a full shard spills to the centralized list and is drained
    // back by the post-launch rebalance.
    auto requeue = [&](gpu::ThreadCtx& ctx, std::uint32_t t, Tri v) {
      if (sharded) {
        (void)shards->push(ctx, shards->home_shard(ctx.block(), lc.blocks), v);
      } else if (opts.local_queues) {
        (void)locals[t].push(ctx, v);
      } else {
        (void)worklist.push(ctx, v);
      }
    };

    const gpu::Phase phases[3] = {
        // Pop + cavity building: block-parallel. Centralized: which thread
        // pops which item depends on the pop interleaving, so the schedule
        // is not bit-deterministic across host_workers values; the worklist
        // guarantees only that no item is lost or duplicated. Sharded: a
        // block pops only from the shards it owns and its threads run in
        // ascending order on one host worker, so the whole schedule — and
        // every downstream stat — is bit-identical for any host_workers.
        {[&](gpu::ThreadCtx& ctx) {
          const std::uint32_t t = ctx.tid();
          // Pop until a live bad triangle appears (stale ids are skipped).
          for (;;) {
            const auto popped =
                sharded ? shards->pop_owned(ctx, lc.blocks) : worklist.pop(ctx);
            if (!popped) return;
            const Tri x = *popped;
            ctx.work(1);
            if (x < m.num_slots() && !m.is_deleted(x) && m.is_bad(x)) {
              cand[t] = x;
              break;
            }
          }
          cav[t] = build_refinement_cavity(m, cand[t], opts.use_float);
          ctx.work(opts.use_float ? cav[t].steps / 2 : cav[t].steps);
          hood[t] = cav[t].neighborhood(m);
          charge_locality(ctx, cand[t], hood[t]);
          marks.race_mark(ctx, t, hood[t]);
        }, /*sequential=*/false},
        {[&](gpu::ThreadCtx& ctx) {
          const std::uint32_t t = ctx.tid();
          if (cand[t] == Mesh::kNone) return;
          owns[t] = marks.priority_check(ctx, t, hood[t]) ? 1 : 0;
        }, /*sequential=*/false},
        // Commit: mesh mutation and requeue pushes, in ascending thread
        // order on one host thread (see the topology-driven driver).
        {[&](gpu::ThreadCtx& ctx) {
          const std::uint32_t t = ctx.tid();
          if (cand[t] == Mesh::kNone) return;
          if (owns[t] && marks.final_check(ctx, t, hood[t])) {
            if (analysis::Sanitizer* s = ctx.san()) {
              s->on_guarded_write(&marks, ctx.block(), t, hood[t]);
            }
            std::int64_t bad_in_cavity = 0;
            for (Tri d : cav[t].tris) bad_in_cavity += m.is_bad(d) ? 1 : 0;
            std::vector<Tri> added;
            const RetriangulateResult res = retriangulate(
                m, cav[t], cb, opts.recycle ? &recycler : nullptr, &added);
            ctx.work(cav[t].tris.size() + added.size());
            if (opts.recycle) {
              for (Tri d : cav[t].tris) recycler.give(d);
            }
            for (Tri a : added) {
              if (m.is_bad(a)) requeue(ctx, t, a);
            }
            if (!m.is_deleted(cand[t]) && m.is_bad(cand[t])) {
              requeue(ctx, t, cand[t]);  // segment-split leftovers
            }
            bad_count += static_cast<std::int64_t>(res.new_bad) -
                         bad_in_cavity;
            ++round_processed;
          } else {
            requeue(ctx, t, cand[t]);  // aborted: requeue
            ++round_aborted;
          }
        }, /*sequential=*/true},
    };
    dev.launch_phases(lc, phases, opts.barrier);
    if (injected_livelock) marks.set_force_ties(false);
    st.processed += round_processed;
    st.aborted += round_aborted;

    // Hand leftover local-queue items back to the centralized list (they
    // are per-round temporaries; anything that does not fit is recovered by
    // the refill sweep).
    if (opts.local_queues) {
      gpu::ThreadCtx drain_ctx;
      for (auto& lq : locals) {
        while (auto v = lq.pop()) (void)worklist.push(drain_ctx, *v);
      }
    }
    // Sharded: the deterministic steal. Spilled items are drained back from
    // the centralized list and starved shards are fed from rich ones, all
    // host-side in shard order, so the redistribution (and its steal/spill
    // counters) replays identically for any host_workers value.
    if (sharded) shards->rebalance();
    dev.note_counter("worklist.occupancy",
                     static_cast<double>(sharded ? shards->size()
                                                 : worklist.size()));

    // Refill sweep when pushes were dropped or the queue ran dry while bad
    // triangles remain (also the live-lock escape: the refill reorders).
    // This sweep is the recovery ladder for dropped/overflowed pushes: no
    // work is ever lost, because every still-bad triangle is rediscovered
    // from the mesh itself.
    const std::size_t wl_remaining =
        (sharded ? shards->size() : worklist.size()) +
        (sharded ? worklist.size() : 0);
    if (bad_count > 0 && wl_remaining == 0) {
      worklist.reset();
      if (sharded) shards->reset();
      seed_worklist();
      ++st.fallbacks;
      if (dev.faults_armed()) {
        dev.note_recovery("worklist refill sweep rediscovered bad triangles");
      }
    }
    // Live-lock watchdog, as in the topology-driven driver.
    const auto action = watchdog.observe(round_processed > 0);
    if (action == resilience::LivelockWatchdog::Action::kGiveUp &&
        bad_count > 0) {
      throw FaultError(watchdog.give_up_status("dmr::refine_gpu_datadriven"));
    }
    if (action == resilience::LivelockWatchdog::Action::kEscalate &&
        bad_count > 0) {
      ++st.fallbacks;
      std::optional<Mesh> checkpoint;
      if (opts.validate_invariants) checkpoint = m;
      dev.launch({1, 1, "dmr.escalate"}, [&](gpu::ThreadCtx& ctx) {
        for (Tri t = 0; t < m.num_slots(); ++t) {
          ctx.work(1);
          if (m.is_deleted(t) || !m.is_bad(t)) continue;
          Cavity c = build_refinement_cavity(m, t, opts.use_float);
          std::int64_t bad_in_cavity = 0;
          for (Tri d : c.tris) bad_in_cavity += m.is_bad(d) ? 1 : 0;
          const RetriangulateResult res = retriangulate(
              m, c, cb, opts.recycle ? &recycler : nullptr, nullptr);
          if (opts.recycle) {
            for (Tri d : c.tris) recycler.give(d);
          }
          bad_count += static_cast<std::int64_t>(res.new_bad) - bad_in_cavity;
          ++st.processed;
          break;
        }
      });
      if (opts.validate_invariants) {
        gate_mesh_invariants(m, checkpoint,
                             "dmr::refine_gpu_datadriven escalation");
      }
      if (injected_livelock) {
        dev.note_recovery(
            "livelock watchdog escalated to serialized arbitration");
      }
    } else if (injected_livelock) {
      dev.note_recovery("retrying round after forced priority ties");
    }
  }
  MORPH_CHECK_MSG(bad_count == 0, "data-driven refinement stalled");
  if (opts.validate_invariants) {
    std::optional<Mesh> no_checkpoint;
    gate_mesh_invariants(m, no_checkpoint,
                         "dmr::refine_gpu_datadriven result");
  }

  st.final_triangles = m.num_live();
  st.wall_seconds = timer.seconds();
  st.modeled_cycles = dev.stats().modeled_cycles;
  return st;
}

}  // namespace morph::dmr
