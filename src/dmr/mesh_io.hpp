// Triangle-format mesh IO (.node / .ele), the format of Shewchuk's Triangle
// program the paper uses as its sequential baseline. Lets meshes be saved,
// inspected with standard tools, and re-loaded (neighbor links are
// reconstructed from shared edges).
#pragma once

#include <iosfwd>

#include "dmr/mesh.hpp"

namespace morph::dmr {

/// Writes the live triangles as a .node + .ele pair onto two streams.
void write_triangle_format(const Mesh& m, std::ostream& node_os,
                           std::ostream& ele_os);

/// Reads a .node/.ele pair and reconstructs the mesh, including the
/// neighbor matrix and boundary markers. Throws CheckError on malformed
/// input or non-manifold connectivity (an edge shared by more than two
/// triangles).
Mesh read_triangle_format(std::istream& node_is, std::istream& ele_is);

}  // namespace morph::dmr
