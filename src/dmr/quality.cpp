#include "dmr/quality.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace morph::dmr {

namespace {

double angle_deg(Pt64 a, Pt64 b, Pt64 c) {
  const double cosv = std::clamp(angle_cos_at(a, b, c), -1.0, 1.0);
  return std::acos(cosv) * 180.0 / std::numbers::pi;
}

}  // namespace

QualityReport measure_quality(const Mesh& m) {
  QualityReport q;
  q.min_angle_deg = 180.0;
  for (Tri t = 0; t < m.num_slots(); ++t) {
    if (m.is_deleted(t)) continue;
    ++q.triangles;
    const auto& v = m.verts(t);
    const Pt64 a = m.point(v[0]), b = m.point(v[1]), c = m.point(v[2]);
    const double angles[3] = {angle_deg(a, b, c), angle_deg(b, c, a),
                              angle_deg(c, a, b)};
    const double tri_min = std::min({angles[0], angles[1], angles[2]});
    const double tri_max = std::max({angles[0], angles[1], angles[2]});
    q.min_angle_deg = std::min(q.min_angle_deg, tri_min);
    q.max_angle_deg = std::max(q.max_angle_deg, tri_max);
    q.mean_min_angle_deg += tri_min;
    q.total_area += orient2d(a, b, c) / 2.0;
    const auto bucket = std::min<std::size_t>(
        5, static_cast<std::size_t>(tri_min / 10.0));
    ++q.min_angle_histogram[bucket];
  }
  if (q.triangles > 0) {
    q.mean_min_angle_deg /= static_cast<double>(q.triangles);
  } else {
    q.min_angle_deg = 0.0;
  }
  return q;
}

double total_area(const Mesh& m) {
  double area = 0.0;
  for (Tri t = 0; t < m.num_slots(); ++t) {
    if (m.is_deleted(t)) continue;
    const auto& v = m.verts(t);
    area += orient2d(m.point(v[0]), m.point(v[1]), m.point(v[2])) / 2.0;
  }
  return area;
}

}  // namespace morph::dmr
