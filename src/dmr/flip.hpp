// Delaunay edge flipping (Lawson's algorithm) — an extension beyond the
// paper's four applications.
//
// The paper's related work cites Navarro et al.'s GPU edge-flip
// triangulator and notes it is a morph algorithm whose node/edge counts do
// not change; it is nonetheless a perfect additional client for the generic
// machinery: a flip's neighborhood is the two triangles sharing the edge
// plus their four outer neighbors, conflicts are resolved with the same
// 3-phase race / prioritycheck / check protocol, and the same worklist and
// layout machinery applies. flip_gpu restores the Delaunay property of an
// arbitrary triangulation.
#pragma once

#include <cstdint>

#include "dmr/mesh.hpp"
#include "gpu/device.hpp"

namespace morph::dmr {

struct FlipStats {
  std::uint64_t flips = 0;
  std::uint64_t rounds = 0;
  std::uint64_t aborted = 0;
  double wall_seconds = 0.0;
  double modeled_cycles = 0.0;
};

/// True iff edge `e` of t is locally Delaunay (or a hull edge).
bool edge_locally_delaunay(const Mesh& m, Tri t, int e);

/// Flips the edge shared by t and across(t, e); the caller must ensure the
/// surrounding quadrilateral is convex (flip_legal). Adjacencies of the
/// four outer neighbors are rewired. Returns false (and changes nothing)
/// for hull edges or non-convex quads.
bool flip_edge(Mesh& m, Tri t, int e);

/// Lawson's algorithm, sequential: flip non-locally-Delaunay edges until
/// none remain.
FlipStats flip_serial(Mesh& m);

/// The same on the simulated GPU with 3-phase conflict resolution.
FlipStats flip_gpu(Mesh& m, gpu::Device& dev,
                   gpu::BarrierKind barrier = gpu::BarrierKind::kHierarchical);

/// Test/bench helper: performs up to `count` random legal flips, typically
/// destroying the Delaunay property. Returns the number performed.
std::size_t random_legal_flips(Mesh& m, std::size_t count,
                               std::uint64_t seed);

}  // namespace morph::dmr
