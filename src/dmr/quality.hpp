// Mesh quality metrics: the quantities refinement is supposed to improve.
// Used by tests (quality must strictly improve), examples, and the
// experiment log.
#pragma once

#include <array>
#include <cstddef>

#include "dmr/mesh.hpp"

namespace morph::dmr {

struct QualityReport {
  std::size_t triangles = 0;
  double min_angle_deg = 0.0;   ///< smallest angle anywhere in the mesh
  double max_angle_deg = 0.0;   ///< largest angle anywhere in the mesh
  double mean_min_angle_deg = 0.0;  ///< mean of per-triangle minimum angles
  double total_area = 0.0;
  /// Histogram of per-triangle minimum angles in 10-degree buckets
  /// [0,10), [10,20), ... [50,60].
  std::array<std::size_t, 6> min_angle_histogram{};
};

/// Scans all live triangles.
QualityReport measure_quality(const Mesh& m);

/// Sum of live triangle areas; for a refined unit square this must stay 1
/// (a stronger no-overlap/no-hole check than adjacency validation alone).
double total_area(const Mesh& m);

}  // namespace morph::dmr
