#include "dmr/mesh_io.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace morph::dmr {

void write_triangle_format(const Mesh& m, std::ostream& node_os,
                           std::ostream& ele_os) {
  // .node: <#points> <dim> <#attrs> <#boundary markers>
  node_os << m.num_points() << " 2 0 0\n";
  node_os.precision(17);
  for (Vtx v = 0; v < m.num_points(); ++v) {
    const Pt64 p = m.point(v);
    node_os << (v + 1) << ' ' << p.x << ' ' << p.y << '\n';
  }
  // .ele: <#triangles> <nodes per tri> <#attrs>; live triangles only,
  // renumbered densely.
  ele_os << m.num_live() << " 3 0\n";
  std::size_t id = 1;
  for (Tri t = 0; t < m.num_slots(); ++t) {
    if (m.is_deleted(t)) continue;
    const auto& v = m.verts(t);
    ele_os << id++ << ' ' << (v[0] + 1) << ' ' << (v[1] + 1) << ' '
           << (v[2] + 1) << '\n';
  }
}

namespace {

/// Reads the next non-comment, non-blank line.
bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

Mesh read_triangle_format(std::istream& node_is, std::istream& ele_is) {
  Mesh m;
  std::string line;

  MORPH_CHECK_MSG(next_line(node_is, line), "empty .node file");
  std::istringstream header(line);
  std::size_t npoints = 0;
  int dim = 0;
  header >> npoints >> dim;
  MORPH_CHECK_MSG(dim == 2, ".node dimension must be 2");
  for (std::size_t i = 0; i < npoints; ++i) {
    MORPH_CHECK_MSG(next_line(node_is, line), "truncated .node file");
    std::istringstream ls(line);
    std::size_t idx = 0;
    double x = 0, y = 0;
    ls >> idx >> x >> y;
    MORPH_CHECK_MSG(idx == i + 1, ".node indices must be dense, 1-based");
    m.add_point(x, y);
  }

  MORPH_CHECK_MSG(next_line(ele_is, line), "empty .ele file");
  std::istringstream ele_header(line);
  std::size_t ntris = 0;
  int per = 0;
  ele_header >> ntris >> per;
  MORPH_CHECK_MSG(per == 3, ".ele must have 3 nodes per triangle");

  // Shared-edge map for neighbor reconstruction: (lo,hi) -> (tri, edge).
  std::map<std::pair<Vtx, Vtx>, std::pair<Tri, int>> half;
  for (std::size_t i = 0; i < ntris; ++i) {
    MORPH_CHECK_MSG(next_line(ele_is, line), "truncated .ele file");
    std::istringstream ls(line);
    std::size_t idx = 0, a = 0, b = 0, c = 0;
    ls >> idx >> a >> b >> c;
    MORPH_CHECK_MSG(a >= 1 && b >= 1 && c >= 1 && a <= npoints &&
                        b <= npoints && c <= npoints,
                    ".ele vertex out of range");
    const Tri t = m.add_triangle(static_cast<Vtx>(a - 1),
                                 static_cast<Vtx>(b - 1),
                                 static_cast<Vtx>(c - 1));
    for (int e = 0; e < 3; ++e) {
      const auto [u, v] = m.edge_verts(t, e);
      const auto key = std::minmax(u, v);
      auto [it, fresh] = half.try_emplace({key.first, key.second},
                                          std::pair<Tri, int>{t, e});
      if (!fresh) {
        const auto [ot, oe] = it->second;
        MORPH_CHECK_MSG(m.across(ot, oe) == Mesh::kNone,
                        "non-manifold edge in .ele");
        m.set_neighbor(t, e, ot);
        m.set_neighbor(ot, oe, t);
      }
    }
  }
  // Unmatched edges are the boundary.
  for (Tri t = 0; t < m.num_slots(); ++t) {
    for (int e = 0; e < 3; ++e) {
      if (m.across(t, e) == Mesh::kNone) m.set_neighbor(t, e, Mesh::kBoundary);
    }
  }
  return m;
}

}  // namespace morph::dmr
