// The triangulated mesh (paper Sec. 6.2).
//
// Triangle vertices live in two coordinate arrays; the n triangles are an
// n x 3 matrix of indices into them. Because a triangle has at most three
// neighbors, connectivity is an n x 3 matrix too: neighbors_[t][i] is the
// triangle across edge i of t, where edge i is the edge *opposite* vertex i
// (so edge i connects vertices (i+1)%3 and (i+2)%3). kBoundary marks a hull
// edge. Per-triangle flags record deleted (tombstones / recycling, Sec. 7.2)
// and bad (quality) status.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "dmr/geometry.hpp"
#include "support/check.hpp"

namespace morph::dmr {

using Tri = std::uint32_t;
using Vtx = std::uint32_t;

class Mesh {
 public:
  static constexpr Tri kBoundary = 0xfffffffeu;
  static constexpr Tri kNone = 0xffffffffu;

  Mesh() = default;

  // --- points ---
  Vtx add_point(double x, double y) {
    px_.push_back(x);
    py_.push_back(y);
    return static_cast<Vtx>(px_.size() - 1);
  }
  std::size_t num_points() const { return px_.size(); }
  Pt64 point(Vtx v) const { return {px_[v], py_[v]}; }
  Pt<float> point_f(Vtx v) const {
    return {static_cast<float>(px_[v]), static_cast<float>(py_[v])};
  }

  // --- triangles ---
  /// Appends a triangle (vertices are reordered to CCW) with no neighbors.
  Tri add_triangle(Vtx a, Vtx b, Vtx c);

  /// Overwrites a (deleted) slot with a fresh triangle — the Recycle
  /// deletion strategy.
  void write_triangle(Tri slot, Vtx a, Vtx b, Vtx c);

  std::size_t num_slots() const { return tri_.size(); }
  std::size_t num_live() const { return live_; }

  const std::array<Vtx, 3>& verts(Tri t) const { return tri_[t]; }
  const std::array<Tri, 3>& neighbors(Tri t) const { return nbr_[t]; }

  bool is_deleted(Tri t) const { return deleted_[t] != 0; }
  void mark_deleted(Tri t) {
    MORPH_CHECK(!is_deleted(t));
    deleted_[t] = 1;
    --live_;
  }

  bool is_bad(Tri t) const { return bad_[t] != 0; }
  void set_bad(Tri t, bool b) { bad_[t] = b ? 1 : 0; }

  /// Recomputes the bad flag of t under the quality bound (cos of the
  /// minimum-angle constraint; bad iff some angle < bound).
  bool check_bad(Tri t, double cos_bound) const {
    const auto& v = tri_[t];
    return has_small_angle(point(v[0]), point(v[1]), point(v[2]), cos_bound);
  }
  bool check_bad_f(Tri t, float cos_bound) const {
    const auto& v = tri_[t];
    return has_small_angle(point_f(v[0]), point_f(v[1]), point_f(v[2]),
                           cos_bound);
  }

  /// Sets every live triangle's bad flag; returns the number of bad ones.
  std::size_t compute_all_bad(double min_angle_deg);

  // --- connectivity ---
  void set_neighbor(Tri t, int edge, Tri other) { nbr_[t][edge] = other; }

  /// Index (0..2) of the edge of t connecting vertices a and b.
  int edge_index(Tri t, Vtx a, Vtx b) const;

  /// Triangle across edge `edge` of t (kBoundary for hull edges).
  Tri across(Tri t, int edge) const { return nbr_[t][edge]; }

  /// Re-points the (t_from -> t_old) adjacency to t_new: finds the edge of
  /// t_from whose neighbor is t_old and replaces it.
  void replace_neighbor(Tri t_from, Tri t_old, Tri t_new);

  /// Endpoints of edge `edge` of t, ordered (so that together with vertex
  /// `edge` they form the CCW triangle).
  std::pair<Vtx, Vtx> edge_verts(Tri t, int edge) const {
    return {tri_[t][(edge + 1) % 3], tri_[t][(edge + 2) % 3]};
  }

  /// Structural validation: CCW orientation, neighbor symmetry, shared
  /// edges agree, no live triangle references a deleted neighbor.
  bool validate(std::string* why = nullptr) const;

  /// Euler-style sanity for a triangulation of a convex region:
  /// #triangles = 2*interior + hull - 2 vertices. Checked in tests.
  std::size_t count_hull_edges() const;

  /// Drops deleted slots and renumbers the triangles — with `bfs` set, in
  /// space-filling-curve order over triangle centroids (the Sec. 6.1
  /// memory-layout optimization); otherwise keeping the existing order
  /// (compaction only). Returns the new number of slots.
  std::size_t compact_and_reorder(bool bfs = true);

  /// Randomly permutes the live triangle slots (dropping tombstones) —
  /// models a mesh loaded from a file whose on-disk order has no spatial
  /// locality, the situation the Sec. 6.1 scan repairs.
  void shuffle_slots(std::uint64_t seed);

 private:
  /// Rebuilds the slot arrays with slot i holding old triangle order[i].
  void apply_order(const std::vector<Tri>& order);

  std::vector<double> px_, py_;
  std::vector<std::array<Vtx, 3>> tri_;
  std::vector<std::array<Tri, 3>> nbr_;
  std::vector<std::uint8_t> deleted_;
  std::vector<std::uint8_t> bad_;
  std::size_t live_ = 0;
};

/// cos of an angle bound given in degrees.
double cos_of_deg(double deg);

}  // namespace morph::dmr
