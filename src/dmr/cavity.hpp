// Cavity construction and re-triangulation (paper Sec. 2, Fig. 1).
//
// A cavity is the connected set of triangles whose circumcircle contains the
// point about to be inserted. Re-triangulating connects the point to every
// edge of the cavity's boundary polygon ("frontier"). The same machinery
// serves Bowyer-Watson construction of the initial Delaunay mesh (insertion
// cavities) and mesh refinement (circumcenter cavities, with Ruppert-style
// boundary-segment splitting when the circumcenter encroaches the hull).
#pragma once

#include <cstdint>
#include <vector>

#include "core/strategies.hpp"
#include "dmr/mesh.hpp"

namespace morph::dmr {

struct FrontierEdge {
  Vtx a = 0, b = 0;       ///< endpoints, ordered CCW as seen from inside
  Tri outside = Mesh::kBoundary;  ///< triangle across, or kBoundary
};

struct Cavity {
  bool ok = false;
  Pt64 center{};               ///< point to insert
  std::vector<Tri> tris;       ///< triangles to delete
  std::vector<FrontierEdge> frontier;
  bool open_fan = false;       ///< true for a boundary-segment split
  Vtx fan_start = 0, fan_end = 0;  ///< split-segment endpoints (open fan)
  std::uint64_t steps = 0;     ///< counted work (for the cost model)

  /// The conflict neighborhood: cavity triangles plus the ring of outside
  /// triangles whose adjacency slots re-triangulation writes.
  std::vector<Tri> neighborhood(const Mesh& m) const;
};

/// Cavity for inserting point p, starting from a triangle whose circumcircle
/// contains p (for Bowyer-Watson, the triangle containing p). No boundary
/// encroachment handling: p must lie strictly inside the hull.
Cavity build_insertion_cavity(const Mesh& m, Tri start, Pt64 p);

/// Cavity for refining bad triangle `bad`: tries the circumcenter; if it
/// encroaches a boundary segment on the cavity frontier, switches to
/// splitting that segment at its midpoint (possibly cascading). When
/// `use_float` is set the containment tests run in single precision (the
/// Fig. 8 row-7 optimization).
Cavity build_refinement_cavity(const Mesh& m, Tri bad, bool use_float = false);

struct RetriangulateResult {
  Vtx new_vertex = 0;
  std::uint32_t new_tris = 0;
  std::uint32_t new_bad = 0;
};

/// Deletes the cavity triangles, inserts the center point, creates the fan
/// of new triangles and wires all adjacencies. New-triangle slots come from
/// `recycler` when provided (the Recycle strategy), else are appended. New
/// triangle ids are appended to *out_new when non-null. cos_bound classifies
/// the new triangles' bad flags.
RetriangulateResult retriangulate(Mesh& m, const Cavity& c, double cos_bound,
                                  core::SlotRecycler* recycler = nullptr,
                                  std::vector<Tri>* out_new = nullptr);

/// Walks from `hint` to the triangle containing p (orientation walk with a
/// linear-scan fallback). Used by the Bowyer-Watson triangulator.
Tri locate_triangle(const Mesh& m, Tri hint, Pt64 p, std::uint64_t* steps);

}  // namespace morph::dmr
