// 2-d geometric predicates and constructions for Delaunay meshing.
//
// Templated on the coordinate type so the single-precision arithmetic
// optimization of the paper's Fig. 8 (row 7) can be measured: the GPU code
// computed cavity tests in float. Predicates are epsilon-free floating-point
// evaluations — the same choice the CUDA implementation made — which is
// adequate for the random, non-degenerate inputs the paper uses.
#pragma once

#include <cmath>

namespace morph::dmr {

template <typename Real>
struct Pt {
  Real x{}, y{};
};

using Pt64 = Pt<double>;

/// Twice the signed area of triangle abc; > 0 iff abc is counter-clockwise.
template <typename Real>
Real orient2d(Pt<Real> a, Pt<Real> b, Pt<Real> c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

/// Incircle determinant. Requires abc counter-clockwise; > 0 iff d lies
/// strictly inside the circumcircle of abc.
template <typename Real>
Real incircle(Pt<Real> a, Pt<Real> b, Pt<Real> c, Pt<Real> d) {
  const Real adx = a.x - d.x, ady = a.y - d.y;
  const Real bdx = b.x - d.x, bdy = b.y - d.y;
  const Real cdx = c.x - d.x, cdy = c.y - d.y;
  const Real ad2 = adx * adx + ady * ady;
  const Real bd2 = bdx * bdx + bdy * bdy;
  const Real cd2 = cdx * cdx + cdy * cdy;
  return adx * (bdy * cd2 - cdy * bd2) - ady * (bdx * cd2 - cdx * bd2) +
         ad2 * (bdx * cdy - cdx * bdy);
}

/// Circumcenter of triangle abc (assumed non-degenerate).
template <typename Real>
Pt<Real> circumcenter(Pt<Real> a, Pt<Real> b, Pt<Real> c) {
  const Real abx = b.x - a.x, aby = b.y - a.y;
  const Real acx = c.x - a.x, acy = c.y - a.y;
  const Real ab2 = abx * abx + aby * aby;
  const Real ac2 = acx * acx + acy * acy;
  const Real d = Real(2) * (abx * acy - aby * acx);
  return {a.x + (acy * ab2 - aby * ac2) / d,
          a.y + (abx * ac2 - acx * ab2) / d};
}

template <typename Real>
Real dist2(Pt<Real> a, Pt<Real> b) {
  const Real dx = a.x - b.x, dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Cosine of the angle at vertex a of triangle abc.
template <typename Real>
Real angle_cos_at(Pt<Real> a, Pt<Real> b, Pt<Real> c) {
  const Real ux = b.x - a.x, uy = b.y - a.y;
  const Real vx = c.x - a.x, vy = c.y - a.y;
  const Real dot = ux * vx + uy * vy;
  const Real len = std::sqrt((ux * ux + uy * uy) * (vx * vx + vy * vy));
  return len > Real(0) ? dot / len : Real(1);
}

/// True iff some angle of abc is smaller than the quality bound, i.e. the
/// largest angle cosine exceeds cos(bound). This is the paper's "bad
/// triangle" test at a 30-degree bound.
template <typename Real>
bool has_small_angle(Pt<Real> a, Pt<Real> b, Pt<Real> c, Real cos_bound) {
  return angle_cos_at(a, b, c) > cos_bound ||
         angle_cos_at(b, c, a) > cos_bound ||
         angle_cos_at(c, a, b) > cos_bound;
}

/// p lies strictly inside the diametral circle of segment ab (the
/// encroachment test used for boundary segments).
template <typename Real>
bool in_diametral_circle(Pt<Real> a, Pt<Real> b, Pt<Real> p) {
  return (a.x - p.x) * (b.x - p.x) + (a.y - p.y) * (b.y - p.y) < Real(0);
}

/// Midpoint of segment ab.
template <typename Real>
Pt<Real> midpoint(Pt<Real> a, Pt<Real> b) {
  return {(a.x + b.x) / Real(2), (a.y + b.y) / Real(2)};
}

}  // namespace morph::dmr
