// Bowyer-Watson Delaunay triangulation and input-mesh generation.
//
// The paper's DMR inputs are "randomly generated" meshes with roughly half
// the triangles bad at the 30-degree bound; we reproduce them by uniformly
// sampling points in the unit square and Delaunay-triangulating them
// (incremental insertion with Morton-ordered points and walk-based point
// location, reusing the cavity machinery of cavity.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dmr/cavity.hpp"
#include "dmr/mesh.hpp"

namespace morph::dmr {

/// Triangulates the given points (each strictly inside the unit square).
/// The four square corners are added as mesh vertices; the square border
/// forms the boundary segments.
Mesh triangulate_square(std::span<const Pt64> points);

/// Generates a random input mesh with approximately `target_triangles`
/// triangles (a triangulation of n points has ~2n triangles).
Mesh generate_input_mesh(std::size_t target_triangles, std::uint64_t seed);

/// True iff every pair of adjacent live triangles satisfies the (locally)
/// Delaunay property: neither triangle's apex lies strictly inside the
/// other's circumcircle. Local Delaunayhood of all edges implies global.
bool is_delaunay(const Mesh& m, double eps = 1e-12);

}  // namespace morph::dmr
