#include "dmr/cavity.hpp"

#include <algorithm>
#include <unordered_map>

namespace morph::dmr {

namespace {

/// Containment test used for cavity expansion: p strictly inside the
/// circumcircle of triangle t.
bool circum_contains(const Mesh& m, Tri t, Pt64 p, bool use_float) {
  const auto& v = m.verts(t);
  if (use_float) {
    const Pt<float> pf{static_cast<float>(p.x), static_cast<float>(p.y)};
    return incircle(m.point_f(v[0]), m.point_f(v[1]), m.point_f(v[2]), pf) >
           0.0f;
  }
  return incircle(m.point(v[0]), m.point(v[1]), m.point(v[2]), p) > 0.0;
}

struct ExpandResult {
  bool ok = true;
  // When a boundary frontier edge is encroached, the triangle/edge to split:
  bool encroached = false;
  Tri seg_tri = Mesh::kNone;
  int seg_edge = -1;
};

/// BFS expansion of the cavity of p from `start`. Fills c.tris/frontier.
/// If `skip_tri/skip_edge` names a boundary segment (the one being split),
/// that edge is excluded from the frontier. `check_encroachment` is set for
/// refinement cavities only: a circumcenter inside the diametral circle of
/// a hull segment forces a segment split, whereas Bowyer-Watson insertion
/// points are real input points and never move.
ExpandResult expand(const Mesh& m, Pt64 p, Tri start, bool use_float,
                    Tri skip_tri, int skip_edge, bool check_encroachment,
                    Cavity& c) {
  ExpandResult r;
  c.tris.clear();
  c.frontier.clear();
  std::vector<Tri> stack{start};
  // Small meshes: a flat visited map is fine and keeps this allocation-light.
  std::unordered_map<Tri, bool> in_cavity;
  in_cavity[start] = true;
  while (!stack.empty()) {
    const Tri t = stack.back();
    stack.pop_back();
    c.tris.push_back(t);
    for (int e = 0; e < 3; ++e) {
      ++c.steps;
      const auto [a, b] = m.edge_verts(t, e);
      const Tri o = m.across(t, e);
      if (t == skip_tri && e == skip_edge) continue;  // segment being split
      if (o == Mesh::kBoundary) {
        // Hull edge on the frontier: check encroachment. (a,b) is ordered so
        // the interior is on its left; p beyond or inside the diametral
        // circle forces a segment split.
        const bool beyond = orient2d(m.point(a), m.point(b), p) <= 0;
        if (check_encroachment &&
            (beyond || in_diametral_circle(m.point(a), m.point(b), p))) {
          r.ok = false;
          r.encroached = true;
          r.seg_tri = t;
          r.seg_edge = e;
          return r;
        }
        c.frontier.push_back({a, b, Mesh::kBoundary});
        continue;
      }
      MORPH_CHECK(o != Mesh::kNone);
      auto it = in_cavity.find(o);
      if (it != in_cavity.end()) continue;  // already enqueued/visited
      if (circum_contains(m, o, p, use_float)) {
        in_cavity[o] = true;
        stack.push_back(o);
      } else {
        c.frontier.push_back({a, b, o});
      }
    }
  }
  return r;
}

}  // namespace

std::vector<Tri> Cavity::neighborhood(const Mesh&) const {
  std::vector<Tri> n = tris;
  for (const FrontierEdge& f : frontier) {
    if (f.outside != Mesh::kBoundary) n.push_back(f.outside);
  }
  std::sort(n.begin(), n.end());
  n.erase(std::unique(n.begin(), n.end()), n.end());
  return n;
}

Cavity build_insertion_cavity(const Mesh& m, Tri start, Pt64 p) {
  Cavity c;
  c.center = p;
  const ExpandResult r = expand(m, p, start, /*use_float=*/false, Mesh::kNone,
                                -1, /*check_encroachment=*/false, c);
  MORPH_CHECK_MSG(r.ok, "insertion cavity expansion failed");
  c.ok = true;
  return c;
}

Cavity build_refinement_cavity(const Mesh& m, Tri bad, bool use_float) {
  Cavity c;
  // First attempt: the circumcenter of the bad triangle.
  const auto& v = m.verts(bad);
  c.center = circumcenter(m.point(v[0]), m.point(v[1]), m.point(v[2]));
  Tri start = bad;
  Tri skip_tri = Mesh::kNone;
  int skip_edge = -1;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const ExpandResult r = expand(m, c.center, start, use_float, skip_tri,
                                  skip_edge, /*check_encroachment=*/true, c);
    if (r.ok) {
      c.ok = true;
      if (skip_edge >= 0) {
        c.open_fan = true;
        const auto [a, b] = m.edge_verts(skip_tri, skip_edge);
        c.fan_start = a;
        c.fan_end = b;
      }
      return c;
    }
    // Encroached boundary segment: split it at its midpoint instead
    // (Ruppert's rule; may cascade to another segment).
    MORPH_CHECK(r.encroached);
    skip_tri = r.seg_tri;
    skip_edge = r.seg_edge;
    const auto [a, b] = m.edge_verts(skip_tri, skip_edge);
    c.center = midpoint(m.point(a), m.point(b));
    start = skip_tri;
  }
  MORPH_CHECK_MSG(false, "segment-split cascade did not settle");
  return c;
}

RetriangulateResult retriangulate(Mesh& m, const Cavity& c, double cos_bound,
                                  core::SlotRecycler* recycler,
                                  std::vector<Tri>* out_new) {
  MORPH_CHECK(c.ok);
  MORPH_CHECK(!c.tris.empty());
  RetriangulateResult res;
  const Vtx p = m.add_point(c.center.x, c.center.y);
  res.new_vertex = p;

  for (Tri t : c.tris) m.mark_deleted(t);

  // Create the fan of new triangles, one per frontier edge.
  std::vector<Tri> created;
  created.reserve(c.frontier.size());
  for (const FrontierEdge& f : c.frontier) {
    Tri slot = Mesh::kNone;
    if (recycler) {
      if (auto s = recycler->take()) slot = *s;
    }
    if (slot == Mesh::kNone) {
      slot = m.add_triangle(p, f.a, f.b);
    } else {
      m.write_triangle(slot, p, f.a, f.b);
    }
    created.push_back(slot);
  }

  // Wire adjacencies. Across the frontier edge: the outside triangle (or
  // boundary). Around the fan: triangles sharing a (p, w) edge pair up; in
  // an open fan the two extreme (p, w) edges become new hull edges.
  std::unordered_map<Vtx, std::pair<Tri, Tri>> fan;  // vertex -> up to 2 tris
  for (std::size_t i = 0; i < created.size(); ++i) {
    const Tri nt = created[i];
    const FrontierEdge& f = c.frontier[i];
    const int outer_edge = m.edge_index(nt, f.a, f.b);
    m.set_neighbor(nt, outer_edge, f.outside);
    if (f.outside != Mesh::kBoundary) {
      const int back = m.edge_index(f.outside, f.a, f.b);
      m.set_neighbor(f.outside, back, nt);
    }
    for (Vtx w : {f.a, f.b}) {
      auto [it, fresh] = fan.try_emplace(w, std::pair<Tri, Tri>{nt, Mesh::kNone});
      if (!fresh) {
        MORPH_CHECK_MSG(it->second.second == Mesh::kNone,
                        "fan vertex shared by more than two new triangles");
        it->second.second = nt;
      }
    }
  }
  for (const auto& [w, pair] : fan) {
    const auto [t1, t2] = pair;
    if (t2 == Mesh::kNone) {
      // Open-fan extreme: (p, w) is a new hull edge.
      MORPH_CHECK_MSG(c.open_fan && (w == c.fan_start || w == c.fan_end),
                      "dangling fan edge in a closed cavity");
      m.set_neighbor(t1, m.edge_index(t1, p, w), Mesh::kBoundary);
    } else {
      m.set_neighbor(t1, m.edge_index(t1, p, w), t2);
      m.set_neighbor(t2, m.edge_index(t2, p, w), t1);
    }
  }

  for (Tri nt : created) {
    const bool bad = m.check_bad(nt, cos_bound);
    m.set_bad(nt, bad);
    res.new_bad += bad ? 1 : 0;
  }
  res.new_tris = static_cast<std::uint32_t>(created.size());
  if (out_new) out_new->insert(out_new->end(), created.begin(), created.end());
  return res;
}

Tri locate_triangle(const Mesh& m, Tri hint, Pt64 p, std::uint64_t* steps) {
  Tri t = hint;
  if (t == Mesh::kNone || t >= m.num_slots() || m.is_deleted(t)) t = Mesh::kNone;
  if (t != Mesh::kNone) {
    const std::uint64_t cap = 4 * (m.num_live() + 16);
    std::uint64_t walked = 0;
    while (walked++ < cap) {
      if (steps) ++*steps;
      bool moved = false;
      for (int e = 0; e < 3; ++e) {
        const auto [a, b] = m.edge_verts(t, e);
        if (orient2d(m.point(a), m.point(b), p) < 0) {
          const Tri o = m.across(t, e);
          if (o == Mesh::kBoundary) return Mesh::kNone;  // p outside hull
          t = o;
          moved = true;
          break;
        }
      }
      if (!moved) return t;  // p on the inside of all three edges
    }
  }
  // Fallback: linear scan (also covers a bad hint).
  for (Tri s = 0; s < m.num_slots(); ++s) {
    if (m.is_deleted(s)) continue;
    const auto& v = m.verts(s);
    if (orient2d(m.point(v[0]), m.point(v[1]), p) >= 0 &&
        orient2d(m.point(v[1]), m.point(v[2]), p) >= 0 &&
        orient2d(m.point(v[2]), m.point(v[0]), p) >= 0)
      return s;
  }
  return Mesh::kNone;
}

}  // namespace morph::dmr
