// Multicore Boruvka baselines.
//
// mst_edge_merge reproduces the Galois 2.1.4 algorithm the paper measured:
// edge contraction literally merges the adjacency lists of the fused
// endpoints. Merge cost is proportional to the node degrees, so dense
// graphs (RMAT, random) collapse — especially in late rounds when the
// contracted graph is small but dense and one giant component's list
// dominates a single worker (Fig. 11's 1393 s row).
//
// mst_union_find reproduces Galois 2.1.5: a bulk-synchronous executor over
// a union-find that keeps the graph unmodified — the variant the paper
// reports as beating the GPU after the rewrite.
#include <algorithm>
#include <unordered_map>

#include "graph/union_find.hpp"
#include "mst/mst.hpp"
#include "support/timer.hpp"

namespace morph::mst {

namespace {

using graph::EdgeId;
using graph::Node;
using graph::Weight;

struct Rec {
  Weight w;
  Node a, b;  ///< original endpoints (canonical tiebreak & output)
};

bool rec_less(const Rec& x, const Rec& y) {
  const Node xa = std::min(x.a, x.b), xb = std::max(x.a, x.b);
  const Node ya = std::min(y.a, y.b), yb = std::max(y.a, y.b);
  return std::tie(x.w, xa, xb) < std::tie(y.w, ya, yb);
}

}  // namespace

MstResult mst_edge_merge(const graph::CsrGraph& g,
                         cpu::ParallelRunner& runner) {
  Timer timer;
  MstResult res;
  const Node n = g.num_nodes();
  if (n == 0) return res;

  // Super-node adjacency lists (explicitly merged on contraction).
  std::vector<std::vector<Rec>> adj(n);
  std::vector<Node> comp(n);
  for (Node u = 0; u < n; ++u) {
    comp[u] = u;
    adj[u].reserve(g.degree(u));
    for (EdgeId e = g.row_begin(u); e < g.row_end(u); ++e) {
      adj[u].push_back({g.edge_weight(e), u, g.edge_dst(e)});
    }
  }
  std::vector<Node> alive;
  for (Node u = 0; u < n; ++u) alive.push_back(u);

  std::vector<Rec> best(n);
  std::vector<std::uint8_t> has_best(n);
  std::vector<Node> partner(n);

  bool progress = true;
  while (progress) {
    ++res.rounds;
    // Step 1: per super-node minimum edge leaving the component; self
    // loops accumulated by merging are purged here (the scan *is* the
    // merge cost the paper describes).
    runner.round(alive.size(), [&](cpu::WorkerCtx& ctx, std::uint64_t i) {
      const Node c = alive[i];
      has_best[c] = 0;
      auto& list = adj[c];
      std::size_t keep = 0;
      Rec b{};
      bool found = false;
      for (const Rec& r : list) {
        ctx.work(1);
        if (comp[r.b] == c) continue;  // self loop after contraction
        list[keep++] = r;
        if (!found || rec_less(r, b)) {
          b = r;
          found = true;
        }
      }
      list.resize(keep);
      res.counted_work += list.size() + 1;
      if (found) {
        best[c] = b;
        has_best[c] = 1;
      }
    });

    // Step 2: partner resolution and cycle breaking (as in the GPU code:
    // mutual pairs keep the minimum id).
    for (Node c : alive) partner[c] = has_best[c] ? comp[best[c].b] : c;
    for (Node c : alive) {
      if (partner[partner[c]] == c && c < partner[c]) partner[c] = c;
    }
    bool jumped = true;
    while (jumped) {
      jumped = false;
      for (Node c : alive) {
        const Node p = partner[c];
        if (partner[p] != p) {
          partner[c] = partner[p];
          jumped = true;
        }
      }
    }

    // Step 3: contract — merge adjacency lists into the representative.
    // The merge is the synchronization-heavy part in Galois; every copied
    // record charges work to the representative's worker.
    std::uint64_t merged = 0;
    runner.round(alive.size(), [&](cpu::WorkerCtx& ctx, std::uint64_t i) {
      const Node c = alive[i];
      const Node r = partner[c];
      if (r == c) return;
      ctx.sync_op();  // lock the representative's list
      // Merging into an ordered adjacency structure walks the
      // representative's existing list as well as the child's — the cost
      // "directly proportional to the node degrees" that makes this
      // implementation collapse once a dense hub component forms.
      ctx.work(adj[c].size() + adj[r].size());
      res.counted_work += adj[c].size() + adj[r].size();
      res.total_weight += best[c].w;
      ++res.tree_edges;
      res.edges.emplace_back(best[c].a, best[c].b);
      ++merged;
      auto& dst = adj[r];
      dst.insert(dst.end(), adj[c].begin(), adj[c].end());
      std::vector<Rec>().swap(adj[c]);
    });
    // Relabel nodes (bulk pass).
    runner.round(n, [&](cpu::WorkerCtx& ctx, std::uint64_t u) {
      ctx.work(1);
      comp[u] = partner[comp[u]];
    });

    std::vector<Node> next_alive;
    for (Node c : alive) {
      if (partner[c] == c && has_best[c]) {
        next_alive.push_back(c);
      } else if (partner[c] == c) {
        ++res.components;
      }
    }
    alive.swap(next_alive);
    progress = merged > 0 && !alive.empty();
  }
  res.components += static_cast<std::uint32_t>(alive.size());

  res.wall_seconds = timer.seconds();
  res.modeled_cycles = runner.stats().modeled_cycles;
  return res;
}

MstResult mst_union_find(const graph::CsrGraph& g,
                         cpu::ParallelRunner& runner) {
  Timer timer;
  MstResult res;
  const Node n = g.num_nodes();
  if (n == 0) return res;

  graph::UnionFind uf(n);
  std::vector<Rec> best(n);
  std::vector<std::uint8_t> has_best(n);
  // A node whose neighbors all share its set can never contribute again;
  // retiring it keeps sparse graphs cheap in late rounds.
  std::vector<std::uint8_t> retired(n, 0);

  bool progress = true;
  while (progress) {
    ++res.rounds;
    std::fill(has_best.begin(), has_best.end(), 0);

    // Per-node candidate edges, reduced per set at the representatives.
    runner.round(n, [&](cpu::WorkerCtx& ctx, std::uint64_t ui) {
      const Node u = static_cast<Node>(ui);
      if (retired[u]) return;
      const Node cu = uf.find(u);
      Rec b{};
      bool found = false;
      for (EdgeId e = g.row_begin(u); e < g.row_end(u); ++e) {
        ctx.work(1);
        const Node v = g.edge_dst(e);
        if (uf.find(v) == cu) continue;
        const Rec r{g.edge_weight(e), u, v};
        if (!found || rec_less(r, b)) {
          b = r;
          found = true;
        }
      }
      if (!found) {
        retired[u] = 1;
        return;
      }
      ctx.sync_op();  // CAS-style min update at the representative
      if (!has_best[cu] || rec_less(b, best[cu])) {
        best[cu] = b;
        has_best[cu] = 1;
      }
    });

    // Contract: unite along every chosen edge (the second member of a
    // mutual pair finds them already united).
    std::uint64_t merged = 0;
    for (Node c = 0; c < n; ++c) {
      if (!has_best[c]) continue;
      if (uf.unite(best[c].a, best[c].b)) {
        res.total_weight += best[c].w;
        ++res.tree_edges;
        res.edges.emplace_back(best[c].a, best[c].b);
        ++merged;
      }
    }
    res.counted_work = runner.stats().total_work;
    progress = merged > 0;
  }
  res.components = uf.num_sets();

  res.wall_seconds = timer.seconds();
  res.modeled_cycles = runner.stats().modeled_cycles;
  return res;
}

}  // namespace morph::mst
