#include "mst/incremental.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/union_find.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace morph::mst {

namespace {

using graph::Node;
using graph::Weight;

constexpr std::uint64_t kNoEdge = ~0ull;

/// Same total order as gpu_boruvka.cpp: weight, then canonical endpoints.
std::uint64_t edge_key(Weight w, Node u, Node v) {
  const Node a = u < v ? u : v;
  return (static_cast<std::uint64_t>(w) << 36) |
         (static_cast<std::uint64_t>(a & 0xffffffu) << 12) |
         ((u ^ v) & 0xfffu);
}

struct Candidate {
  std::uint64_t key = kNoEdge;
  Node u = 0;
  Node v = 0;
  Weight w = 0;
};

gpu::LaunchConfig inc_lc(std::size_t n, const char* label) {
  const auto blocks =
      static_cast<std::uint32_t>(std::min<std::size_t>(64, n / 256 + 1));
  return {std::max(1u, blocks), 256, label};
}

/// Charges `per_item` cost units per element over `n` elements; the charge
/// per thread is a pure function of tid and n, so stats are bit-identical
/// for any host worker count.
void charge(gpu::Device& dev, std::size_t n, const char* label,
            std::uint64_t reads, std::uint64_t atomics) {
  if (n == 0) return;
  const gpu::LaunchConfig lc = inc_lc(n, label);
  dev.launch(lc, [&](gpu::ThreadCtx& ctx) {
    for (std::size_t i = ctx.tid(); i < n; i += ctx.grid_threads()) {
      ctx.work(1);
      ctx.global_access(reads);
      if (atomics != 0) ctx.atomic_op(atomics);
    }
  });
}

/// Removes the first (v, w) entry from `list`; returns false when absent.
bool erase_entry(std::vector<std::pair<Node, Weight>>& list, Node v,
                 Weight w) {
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i].first == v && list[i].second == w) {
      list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
}

}  // namespace

MstState make_mst_state(std::uint32_t num_nodes,
                        std::span<const graph::Edge> edges, gpu::Device& dev) {
  MstState st;
  st.n = num_nodes;
  st.adj.resize(num_nodes);
  st.fadj.resize(num_nodes);
  st.comp.resize(num_nodes);
  for (Node u = 0; u < num_nodes; ++u) st.comp[u] = u;
  st.components = num_nodes;
  std::vector<EdgeUpdate> batch;
  batch.reserve(edges.size());
  for (const graph::Edge& e : edges)
    batch.push_back({true, e.src, e.dst, e.weight});
  apply_updates(st, batch, dev);
  return st;
}

MstResult apply_updates(MstState& st, std::span<const EdgeUpdate> updates,
                        gpu::Device& dev) {
  Timer timer;
  const double cycles_before = dev.stats().modeled_cycles;
  MstResult res;
  res.components = st.components;
  res.total_weight = st.total_weight;
  res.tree_edges = st.tree_edges;
  if (updates.empty()) return res;

  // Seed: every update endpoint's *current* component is touched.
  charge(dev, updates.size(), "mst.inc.seed", 2, 0);
  std::vector<Node> seed_comps;
  for (const EdgeUpdate& e : updates) {
    MORPH_CHECK(e.u < st.n && e.v < st.n && e.u != e.v);
    seed_comps.push_back(st.comp[e.u]);
    seed_comps.push_back(st.comp[e.v]);
  }
  std::sort(seed_comps.begin(), seed_comps.end());
  seed_comps.erase(std::unique(seed_comps.begin(), seed_comps.end()),
                   seed_comps.end());
  const std::uint32_t old_region_comps =
      static_cast<std::uint32_t>(seed_comps.size());

  // Enumerate the touched components' nodes by walking the forest (it spans
  // each component; a component label is the minimum node id, so the label
  // is itself a node inside the component). Indices into `affected` are the
  // local node ids for the regional union-find.
  std::vector<Node> affected;
  std::unordered_map<Node, std::uint32_t> local;
  for (const Node root : seed_comps) {
    std::vector<Node> stack = {root};
    local.emplace(root, 0);  // placeholder; reindexed after the sort
    affected.push_back(root);
    while (!stack.empty()) {
      const Node x = stack.back();
      stack.pop_back();
      for (const auto& [y, w] : st.fadj[x]) {
        (void)w;
        if (local.emplace(y, 0).second) {
          affected.push_back(y);
          stack.push_back(y);
        }
      }
    }
  }
  std::sort(affected.begin(), affected.end());
  for (std::uint32_t i = 0; i < affected.size(); ++i) local[affected[i]] = i;
  charge(dev, affected.size(), "mst.inc.gather", 1, 0);

  // Apply deletes; a forest-edge delete marks its component for rebuild.
  std::vector<Node> rebuild_comps;
  std::vector<const EdgeUpdate*> inserts;
  for (const EdgeUpdate& e : updates) {
    if (e.insert) {
      inserts.push_back(&e);
      continue;
    }
    if (!erase_entry(st.adj[e.u], e.v, e.w)) continue;  // absent: ignore
    MORPH_CHECK(erase_entry(st.adj[e.v], e.u, e.w));
    if (erase_entry(st.fadj[e.u], e.v, e.w)) {
      MORPH_CHECK(erase_entry(st.fadj[e.v], e.u, e.w));
      st.total_weight -= e.w;
      --st.tree_edges;
      rebuild_comps.push_back(st.comp[e.u]);
    }
    ++st.updates_applied;
  }
  std::sort(rebuild_comps.begin(), rebuild_comps.end());
  rebuild_comps.erase(std::unique(rebuild_comps.begin(), rebuild_comps.end()),
                      rebuild_comps.end());
  const auto needs_rebuild = [&](Node comp_label) {
    return std::binary_search(rebuild_comps.begin(), rebuild_comps.end(),
                              comp_label);
  };
  for (const EdgeUpdate* e : inserts) {
    st.adj[e->u].push_back({e->v, e->w});
    st.adj[e->v].push_back({e->u, e->w});
    ++st.updates_applied;
  }

  // Candidate edges: all surviving edges inside rebuild components; only
  // forest edges elsewhere (composition identity); plus the inserted edges
  // whose canonical endpoint sits in a non-rebuild component (the rebuild
  // scan already picked up the others from the adjacency).
  std::vector<Candidate> cand;
  for (const Node x : affected) {
    const auto& src = needs_rebuild(st.comp[x]) ? st.adj[x] : st.fadj[x];
    for (const auto& [y, w] : src)
      if (x < y) cand.push_back({edge_key(w, x, y), x, y, w});
  }
  for (const EdgeUpdate* e : inserts) {
    const Node a = std::min(e->u, e->v);
    if (!needs_rebuild(st.comp[a]))
      cand.push_back({edge_key(e->w, e->u, e->v), e->u, e->v, e->w});
  }

  // Component-aware Boruvka over the touched region only.
  graph::UnionFind uf(static_cast<std::uint32_t>(affected.size()));
  std::vector<Candidate> best(affected.size());
  std::vector<Candidate> delta;
  std::uint64_t rounds = 0;
  for (;;) {
    ++rounds;
    std::fill(best.begin(), best.end(), Candidate{});
    charge(dev, cand.size(), "mst.inc.best", 2, 1);
    for (const Candidate& c : cand) {
      const std::uint32_t ru = uf.find(local[c.u]);
      const std::uint32_t rv = uf.find(local[c.v]);
      if (ru == rv) continue;
      if (c.key < best[ru].key) best[ru] = c;
      if (c.key < best[rv].key) best[rv] = c;
    }
    charge(dev, affected.size(), "mst.inc.merge", 1, 1);
    bool merged = false;
    for (std::uint32_t r = 0; r < affected.size(); ++r) {
      const Candidate& b = best[r];
      if (b.key == kNoEdge || uf.find(r) != r) continue;
      if (uf.unite(local[b.u], local[b.v])) {
        delta.push_back(b);
        merged = true;
      }
    }
    if (!merged) break;
  }
  res.rounds = rounds;
  st.rounds += rounds;

  // Commit: drop the touched region's old forest, install the new one, and
  // relabel components by minimum node id.
  charge(dev, delta.size() + affected.size(), "mst.inc.commit", 2, 0);
  for (const Node x : affected) {
    for (const auto& [y, w] : st.fadj[x]) {
      if (x < y) {
        st.total_weight -= w;
        --st.tree_edges;
      }
    }
    st.fadj[x].clear();
  }
  std::sort(delta.begin(), delta.end(),
            [](const Candidate& a, const Candidate& b) {
              const std::pair<Node, Node> ca = std::minmax(a.u, a.v);
              const std::pair<Node, Node> cb = std::minmax(b.u, b.v);
              return ca < cb;
            });
  for (const Candidate& c : delta) {
    st.fadj[c.u].push_back({c.v, c.w});
    st.fadj[c.v].push_back({c.u, c.w});
    st.total_weight += c.w;
    ++st.tree_edges;
    res.edges.push_back(std::minmax(c.u, c.v));
  }
  std::uint32_t new_region_comps = 0;
  std::vector<Node> root_label(affected.size(), ~0u);
  for (std::uint32_t i = 0; i < affected.size(); ++i) {
    const std::uint32_t r = uf.find(i);
    if (root_label[r] == ~0u) {
      root_label[r] = affected[i];  // ascending scan: first hit is the min
      ++new_region_comps;
    }
    st.comp[affected[i]] = root_label[r];
  }
  st.components += new_region_comps;
  st.components -= old_region_comps;

  res.total_weight = st.total_weight;
  res.tree_edges = st.tree_edges;
  res.components = st.components;
  res.counted_work = cand.size() * rounds;
  res.modeled_cycles = dev.stats().modeled_cycles - cycles_before;
  res.wall_seconds = timer.seconds();
  return res;
}

std::vector<std::pair<Node, Node>> forest_pairs(const MstState& st) {
  std::vector<std::pair<Node, Node>> out;
  out.reserve(st.tree_edges);
  for (Node x = 0; x < st.n; ++x)
    for (const auto& [y, w] : st.fadj[x]) {
      (void)w;
      if (x < y) out.push_back({x, y});
    }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t state_digest(const MstState& st) {
  std::uint64_t h = 1469598103934665603ull;
  fnv_mix(h, st.n);
  fnv_mix(h, st.total_weight);
  fnv_mix(h, st.tree_edges);
  fnv_mix(h, st.components);
  for (Node x = 0; x < st.n; ++x)
    for (const auto& [y, w] : st.fadj[x])
      if (x < y) {
        fnv_mix(h, x);
        fnv_mix(h, y);
        fnv_mix(h, w);
      }
  return h;
}

}  // namespace morph::mst
