// The paper's component-based GPU Boruvka (Sec. 5).
//
// Components partition the nodes (a many-to-one node->component mapping and
// a one-to-many component->nodes mapping rebuilt by reshuffling an array of
// nodes, per Sec. 6.5 / 7.1 Pre-allocation). Each round runs four kernels:
//   1. per node: minimum-weight edge whose endpoint lies in another
//      component,
//   2. per component: minimum of its nodes' candidate edges,
//   3. per component: cycle breaking — ties are ordered by the canonical
//      original endpoint pair, so the partner graph's cycles are mutual
//      pairs; the minimum component id becomes the representative, and
//      pointer jumping resolves chains,
//   4. per node: merge (relabel to the representative).
// Adjacency lists are never merged; the cost of merging scales with nodes.
#include <atomic>
#include <optional>

#include "gpu/worklist.hpp"
#include "mst/mst.hpp"
#include "support/status.hpp"
#include "support/timer.hpp"

namespace morph::mst {

namespace {

using graph::EdgeId;
using graph::Node;
using graph::Weight;

constexpr std::uint64_t kNoEdge = ~0ull;

/// Total-order key of an undirected edge: weight, then canonical endpoints.
std::uint64_t edge_key(Weight w, Node u, Node v) {
  const Node a = u < v ? u : v;
  // 24 bits of endpoint tiebreak keep the key in 64 bits for weights below
  // 2^28; inputs in this repo use weights <= 2^20.
  return (static_cast<std::uint64_t>(w) << 36) |
         (static_cast<std::uint64_t>(a & 0xffffffu) << 12) |
         ((u ^ v) & 0xfffu);
}

struct Best {
  std::uint64_t key = kNoEdge;
  Node u = 0;       ///< edge endpoints (original graph)
  Node v = 0;
  Weight w = 0;
};

}  // namespace

MstResult mst_gpu(const graph::CsrGraph& g, gpu::Device& dev) {
  Timer timer;
  MstResult res;
  const Node n = g.num_nodes();
  if (n == 0) return res;
  // The pointer-jumping convergence flag is a deliberate one-way race:
  // many threads store `true`, nobody reads until the launch returns.
  if (analysis::Sanitizer* s = dev.sanitizer()) {
    s->note_intentional(
        "mst.jump-converged-flag",
        "relaxed many-writer convergence flag; only ever set to true within "
        "a launch and read after the launch completes");
  }

  std::vector<Node> comp(n);
  for (Node u = 0; u < n; ++u) comp[u] = u;

  // component -> nodes mapping (reshuffled each round; pre-allocated since
  // the total node count is invariant).
  std::vector<Node> comp_nodes(n);
  std::vector<std::uint32_t> comp_off;
  std::vector<Node> alive;  // canonical ids of active components
  alive.reserve(n);
  for (Node u = 0; u < n; ++u) alive.push_back(u);

  std::vector<Best> node_best(n);
  std::vector<Best> comp_best(n);
  std::vector<Node> partner(n);
  // Frozen pre-phase view of partner[] for the cycle-breaking and
  // pointer-jumping kernels. On the GPU the in-place accesses are benign
  // word-sized races; reading a snapshot gives the host threads defined
  // behaviour AND pins the number of jumping iterations, so modeled cycles
  // are identical for any host_workers value.
  std::vector<Node> partner_prev(n);
  std::vector<std::uint32_t> comp_index(n, ~0u);

  const std::uint32_t sm = dev.config().num_sms;
  const gpu::LaunchConfig lc{
      std::clamp<std::uint32_t>(n / 256 + 1, 3 * sm, 50 * sm), 256,
      "mst.boruvka"};
  const std::uint64_t T = lc.total_threads();

  // WorklistMode::kSharded: the alive list is mirrored into a sharded
  // worklist, pseudo-partitioned so each block sweeps a contiguous slice of
  // components (rebuilt host-side every round, like comp_index). The
  // per-component kernels then iterate the shards their block owns instead
  // of striding the whole alive array.
  const bool sharded =
      dev.config().worklist_mode == gpu::WorklistMode::kSharded;
  std::optional<gpu::ShardedWorklist<Node>> swl;
  if (sharded) {
    const std::size_t S = dev.config().resolved_worklist_shards();
    swl.emplace(S, static_cast<std::size_t>(n) / S + 2, &dev);
  }
  // Per-component sweep under either worklist mode. The body sees each
  // alive component exactly once; sharded iteration is non-consuming (the
  // set is reused by every kernel of the round).
  const auto for_each_comp = [&](gpu::ThreadCtx& ctx, auto&& body) {
    if (sharded) {
      const auto r = swl->owned_range(ctx.block(), lc.blocks);
      for (std::size_t s = r.lo; s < r.hi; ++s) {
        const std::size_t sz = swl->shard_size(s);
        for (std::size_t i = ctx.thread_in_block(); i < sz;
             i += lc.threads_per_block) {
          body(swl->item(s, i));
        }
      }
    } else {
      for (std::uint64_t ci = ctx.tid(); ci < alive.size(); ci += T) {
        body(alive[ci]);
      }
    }
  };

  dev.note_host_alloc(static_cast<std::uint64_t>(n) *
                      (sizeof(Node) * 2 + sizeof(Best) * 2));

  bool progress = true;
  while (progress) {
    ++res.rounds;
    progress = false;

    // Reshuffle: rebuild the component->nodes mapping (counting sort over
    // nodes of *alive* components; finished components keep their labels
    // but take no further part).
    std::fill(comp_index.begin(), comp_index.end(), ~0u);
    for (std::uint32_t i = 0; i < alive.size(); ++i) comp_index[alive[i]] = i;
    comp_off.assign(alive.size() + 1, 0);
    for (Node u = 0; u < n; ++u) {
      if (comp_index[comp[u]] != ~0u) ++comp_off[comp_index[comp[u]] + 1];
    }
    for (std::size_t i = 1; i < comp_off.size(); ++i)
      comp_off[i] += comp_off[i - 1];
    {
      std::vector<std::uint32_t> cursor(comp_off.begin(), comp_off.end() - 1);
      for (Node u = 0; u < n; ++u) {
        const std::uint32_t ci = comp_index[comp[u]];
        if (ci != ~0u) comp_nodes[cursor[ci]++] = u;
      }
    }
    // The reshuffle is itself a kernel-side scatter; charge it.
    dev.launch(lc, [&](gpu::ThreadCtx& ctx) {
      for (std::uint64_t u = ctx.tid(); u < n; u += T) ctx.work(1);
    });
    if (sharded) {
      swl->reset();
      gpu::ThreadCtx host;  // host-side mirror of alive; charges discarded
      for (std::uint32_t i = 0; i < alive.size(); ++i) {
        (void)swl->push(host, swl->partition_shard(i, alive.size()), alive[i]);
      }
      dev.note_counter("worklist.occupancy",
                       static_cast<double>(swl->size()));
    }

    // Kernel 1: per-node minimum edge leaving the component.
    dev.launch(lc, [&](gpu::ThreadCtx& ctx) {
      for (std::uint64_t ui = ctx.tid(); ui < n; ui += T) {
        const Node u = static_cast<Node>(ui);
        Best b;
        const Node cu = comp[u];
        for (EdgeId e = g.row_begin(u); e < g.row_end(u); ++e) {
          ctx.work(1);
          const Node v = g.edge_dst(e);
          if (comp[v] == cu) continue;
          const Weight w = g.edge_weight(e);
          const std::uint64_t key = edge_key(w, u, v);
          if (key < b.key) b = {key, u, v, w};
        }
        ctx.global_access();
        node_best[u] = b;
      }
    });

    // Kernel 2: per-component minimum over its nodes.
    dev.launch(lc, [&](gpu::ThreadCtx& ctx) {
      for_each_comp(ctx, [&](Node c) {
        const std::uint32_t ci = comp_index[c];
        Best b;
        for (std::uint32_t x = comp_off[ci]; x < comp_off[ci + 1]; ++x) {
          ctx.work(1);
          const Best& nb = node_best[comp_nodes[x]];
          if (nb.key < b.key) b = nb;
        }
        comp_best[c] = b;
      });
    });

    // Kernel 3: cycle breaking. partner[c] = component of the chosen edge's
    // far endpoint; mutual pairs keep the minimum id as representative.
    dev.launch(lc, [&](gpu::ThreadCtx& ctx) {
      for_each_comp(ctx, [&](Node c) {
        ctx.work(1);
        // b.u lies inside c (kernel 1), so comp[b.v] is the far component.
        const Best& b = comp_best[c];
        partner[c] = (b.key == kNoEdge) ? c : comp[b.v];
      });
    });
    partner_prev = partner;
    dev.launch(lc, [&](gpu::ThreadCtx& ctx) {
      for_each_comp(ctx, [&](Node c) {
        ctx.work(1);
        const Node p = partner_prev[c];
        if (partner_prev[p] == c && c < p) {
          // Representative of the mutual pair.
          partner[c] = c;
        }
      });
    });
    // Pointer jumping until the partner chains settle on representatives.
    // Jumping halves chain lengths, so it must converge within
    // ceil(log2(|alive|)) + 1 iterations; a bounded loop turns a corrupted
    // partner graph (a cycle longer than the mutual pairs cycle breaking
    // guarantees) into a loud kLivelock failure instead of a hang.
    {
      std::uint64_t jump_budget = 2;
      for (std::size_t a = alive.size(); a > 1; a >>= 1) ++jump_budget;
      bool jumped = true;
      while (jumped) {
        if (jump_budget-- == 0) {
          throw FaultError(Status(
              StatusCode::kLivelock,
              "mst_gpu: pointer jumping failed to converge within its "
              "log-bound — partner graph corrupt"));
        }
        std::atomic<bool> any{false};
        partner_prev = partner;
        dev.launch(lc, [&](gpu::ThreadCtx& ctx) {
          for_each_comp(ctx, [&](Node c) {
            ctx.work(1);
            const Node p = partner_prev[c];
            const Node pp = partner_prev[p];
            if (p != pp) {
              partner[c] = pp;
              any.store(true, std::memory_order_relaxed);
            }
          });
        });
        jumped = any.load();
      }
    }

    // Kernel 4: merge. Non-representative components contribute their
    // minimum edge to the MST; nodes relabel to the representative.
    std::uint64_t merged = 0;
    for (Node c : alive) {
      if (partner[c] != c) {
        const Best& b = comp_best[c];
        MORPH_CHECK(b.key != kNoEdge);
        res.total_weight += b.w;
        ++res.tree_edges;
        res.edges.emplace_back(b.u, b.v);
        ++merged;
      }
    }
    dev.launch(lc, [&](gpu::ThreadCtx& ctx) {
      for (std::uint64_t u = ctx.tid(); u < n; u += T) {
        ctx.work(1);
        ctx.global_access();
        comp[u] = partner[comp[u]];
      }
    });

    // Shrink the alive list to representatives that still have candidate
    // outgoing edges (host side, like the paper's do-while driver).
    std::vector<Node> next_alive;
    for (Node c : alive) {
      if (partner[c] == c && comp_best[c].key != kNoEdge) {
        next_alive.push_back(c);
      } else if (partner[c] == c) {
        ++res.components;  // isolated: a finished forest component
      }
    }
    progress = merged > 0;
    alive.swap(next_alive);
    if (alive.empty()) progress = false;
  }
  res.components += static_cast<std::uint32_t>(alive.size());

  // Invariant gate under fault campaigns: a run that survived injected
  // faults must still have produced a genuine minimum spanning forest
  // (acyclic, right component count, edges present in g). Checked only when
  // a campaign is armed — verification walks the whole forest.
  if (dev.faults_armed()) {
    if (!verify_forest(g, res)) {
      throw FaultError(Status(
          StatusCode::kInvariantViolation,
          "mst_gpu: recovered run did not produce a valid spanning forest"));
    }
    dev.note_recovery("forest invariants verified after fault campaign");
  }

  res.counted_work = dev.stats().total_work;
  res.wall_seconds = timer.seconds();
  res.modeled_cycles = dev.stats().modeled_cycles;
  return res;
}

}  // namespace morph::mst
