// Kruskal reference implementation (verifier for the Boruvka variants).
#include <algorithm>

#include "graph/union_find.hpp"
#include "mst/mst.hpp"
#include "support/timer.hpp"

namespace morph::mst {

MstResult mst_kruskal(const graph::CsrGraph& g) {
  Timer timer;
  MstResult res;

  struct E {
    graph::Weight w;
    graph::Node a, b;
  };
  std::vector<E> edges;
  edges.reserve(g.num_edges() / 2);
  for (graph::Node u = 0; u < g.num_nodes(); ++u) {
    for (graph::EdgeId e = g.row_begin(u); e < g.row_end(u); ++e) {
      const graph::Node v = g.edge_dst(e);
      if (u < v) edges.push_back({g.edge_weight(e), u, v});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const E& x, const E& y) {
    return std::tie(x.w, x.a, x.b) < std::tie(y.w, y.a, y.b);
  });

  graph::UnionFind uf(g.num_nodes());
  for (const E& e : edges) {
    if (uf.unite(e.a, e.b)) {
      res.total_weight += e.w;
      ++res.tree_edges;
      res.edges.emplace_back(e.a, e.b);
    }
  }
  res.components = uf.num_sets();
  res.counted_work = edges.size();
  res.wall_seconds = timer.seconds();
  return res;
}

}  // namespace morph::mst
