// Structural verification of spanning forests (beyond weight equality).
#include <algorithm>

#include "graph/union_find.hpp"
#include "mst/mst.hpp"

namespace morph::mst {

bool verify_forest(const graph::CsrGraph& g, const MstResult& r) {
  if (r.edges.size() != r.tree_edges) return false;
  graph::UnionFind uf(g.num_nodes());
  std::uint64_t weight = 0;
  for (const auto& [u, v] : r.edges) {
    if (u >= g.num_nodes() || v >= g.num_nodes()) return false;
    // The edge must exist in the graph; take its minimum weight (parallel
    // edges allowed).
    graph::Weight w = 0;
    bool found = false;
    for (graph::EdgeId e = g.row_begin(u); e < g.row_end(u); ++e) {
      if (g.edge_dst(e) == v) {
        w = found ? std::min(w, g.edge_weight(e)) : g.edge_weight(e);
        found = true;
      }
    }
    if (!found) return false;
    if (!uf.unite(u, v)) return false;  // cycle
    weight += w;
  }
  if (weight != r.total_weight) return false;
  return uf.num_sets() == r.components;
}

}  // namespace morph::mst
