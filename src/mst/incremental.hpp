// Incremental minimum-spanning-forest maintenance (ROADMAP: incremental
// recompute for dynamic inputs; cf. Hong, Dhulipala & Shun, arXiv:2008.11839).
//
// `MstState` keeps the current edge multiset, the chosen forest, and a
// component label per node. `apply_updates` folds a batch of edge inserts
// and deletes into the forest by running component-aware Boruvka rounds over
// only the *touched* components:
//
//   insert (u, v, w)  — candidates are the touched components' forest edges
//                       plus the inserted edges (MSF(MSF(E) ∪ ΔE) =
//                       MSF(E ∪ ΔE), so untouched edges never re-enter);
//   delete (u, v, w)  — a non-forest edge leaves the forest unchanged; a
//                       forest edge marks its component for a rebuild from
//                       all surviving edges inside that component.
//
// Modeled cost therefore scales with the size of the touched components
// (O(changes) on clustered inputs), not with the whole graph. Edges are
// totally ordered by the same `edge_key` as `mst_gpu` (weight, then
// canonical endpoints), so whenever that key is collision-free — endpoint
// pairs within 4096-aligned clusters, weights < 2^28 — the maintained
// forest is *the* unique MSF and byte-identical to a from-scratch
// `mst_gpu` solve of the same final edge set, for any `--host-workers`
// count and worklist mode.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "gpu/device.hpp"
#include "graph/csr.hpp"
#include "mst/mst.hpp"

namespace morph::mst {

/// One edge mutation. `insert` adds the undirected edge (u, v, w); delete
/// removes one copy of exactly (u, v, w) and is ignored when absent.
struct EdgeUpdate {
  bool insert = true;
  graph::Node u = 0;
  graph::Node v = 0;
  graph::Weight w = 0;
};

/// Persistent state between update batches. Treat as opaque; mutate only
/// through make_mst_state / apply_updates.
struct MstState {
  std::uint32_t n = 0;
  /// Current edge multiset, adjacency form (both directions).
  std::vector<std::vector<std::pair<graph::Node, graph::Weight>>> adj;
  /// Chosen forest edges, adjacency form (both directions).
  std::vector<std::vector<std::pair<graph::Node, graph::Weight>>> fadj;
  /// Component label per node: the minimum node id in the component.
  std::vector<graph::Node> comp;
  std::uint64_t total_weight = 0;
  std::uint64_t tree_edges = 0;
  std::uint32_t components = 0;
  std::uint64_t rounds = 0;           ///< cumulative Boruvka rounds
  std::uint64_t updates_applied = 0;  ///< cumulative accepted updates
};

/// Fresh state over `num_nodes` isolated nodes, then folds `edges` in as one
/// insert batch (the initial full solve).
MstState make_mst_state(std::uint32_t num_nodes,
                        std::span<const graph::Edge> edges, gpu::Device& dev);

/// Applies one batch. The returned MstResult carries the *post-batch*
/// aggregate forest (total_weight / tree_edges / components), this batch's
/// Boruvka `rounds` and modeled cycles, and `edges` = the delta forest (the
/// forest edges chosen anew in the touched region, canonically sorted).
MstResult apply_updates(MstState& st, std::span<const EdgeUpdate> updates,
                        gpu::Device& dev);

/// The maintained forest as canonically sorted (min, max) endpoint pairs —
/// directly comparable against a sorted `mst_gpu` edge list.
std::vector<std::pair<graph::Node, graph::Node>> forest_pairs(
    const MstState& st);

/// FNV-1a digest of (n, totals, sorted forest triples); the session replies'
/// byte-identity token.
std::uint64_t state_digest(const MstState& st);

}  // namespace morph::mst
