// Boruvka minimum-spanning-tree/forest algorithms (paper Sec. 5).
//
// Three implementations of the comparison in Fig. 11:
//   mst_gpu        — the paper's component-based GPU algorithm: four kernels
//                    per round (per-node min edge, per-component min edge,
//                    cycle breaking by minimum component id, merge). Edge
//                    contraction is *pseudo*: components partition the
//                    nodes; adjacency lists are never merged.
//   mst_edge_merge — the Galois 2.1.4 stand-in: explicit adjacency-list
//                    merging, whose cost grows with node degrees (the reason
//                    it collapses on dense RMAT/random graphs).
//   mst_union_find — the Galois 2.1.5 stand-in: bulk-synchronous rounds over
//                    a union-find, graph kept unmodified.
//   mst_kruskal    — sort-based verifier.
//
// All return the forest's total weight and edge count; on a connected graph
// the forest is a spanning tree. Edge weights need not be distinct: every
// implementation breaks ties by the canonical endpoint pair, which makes
// the minimum-edge functional graph's cycles have length exactly two.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "gpu/cpu_runner.hpp"
#include "gpu/device.hpp"

namespace morph::mst {

struct MstResult {
  std::uint64_t total_weight = 0;
  std::uint64_t tree_edges = 0;
  std::uint32_t components = 0;  ///< forest components at the end
  std::uint64_t rounds = 0;
  std::uint64_t counted_work = 0;
  double wall_seconds = 0.0;
  double modeled_cycles = 0.0;
  /// The chosen edges as (u, v) original endpoints, filled when the caller
  /// requests them (collect_edges on the entry points that support it).
  std::vector<std::pair<graph::Node, graph::Node>> edges;
};

/// Structural verification that `r.edges` forms a spanning forest of g of
/// the stated weight: acyclic (union-find accepts every edge), the right
/// component count, and each listed edge exists in g with a weight summing
/// to total_weight.
bool verify_forest(const graph::CsrGraph& g, const MstResult& r);

/// The paper's component-based GPU Boruvka on the simulator. The graph must
/// be undirected (symmetric CSR with weights).
MstResult mst_gpu(const graph::CsrGraph& g, gpu::Device& dev);

/// Explicit edge-merging Boruvka (Galois 2.1.4 stand-in) on the multicore
/// model.
MstResult mst_edge_merge(const graph::CsrGraph& g,
                         cpu::ParallelRunner& runner);

/// Union-find bulk-synchronous Boruvka (Galois 2.1.5 stand-in).
MstResult mst_union_find(const graph::CsrGraph& g,
                         cpu::ParallelRunner& runner);

/// Kruskal reference (serial; used to verify the others).
MstResult mst_kruskal(const graph::CsrGraph& g);

}  // namespace morph::mst
