// k-SAT formulas and the bipartite factor graph (paper Sec. 3 / 6.3).
//
// Clause and literal nodes are stored in separate arrays. Every clause has
// exactly K literal slots, so the clause-to-literal mapping is a direct
// offset calculation (c*K + k); the literal-to-clause mapping is CSR since a
// literal's occurrence count is unbounded. Edges carry the occurrence sign
// (-1 if negated). Decimation deletes nodes by *marking* (Sec. 7.2: SP
// deletes rarely, so tombstones beat compaction).
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace morph::sp {

using Lit = std::uint32_t;
using Clause = std::uint32_t;

/// A K-SAT formula over literals 0..num_lits-1.
struct Formula {
  std::uint32_t num_lits = 0;
  std::uint32_t k = 3;
  /// num_clauses*k literal ids.
  std::vector<Lit> clause_lit;
  /// num_clauses*k sign flags; true = negated occurrence.
  std::vector<std::uint8_t> negated;

  std::uint32_t num_clauses() const {
    return static_cast<std::uint32_t>(clause_lit.size() / k);
  }

  Lit lit(Clause c, std::uint32_t slot) const {
    return clause_lit[static_cast<std::size_t>(c) * k + slot];
  }
  bool neg(Clause c, std::uint32_t slot) const {
    return negated[static_cast<std::size_t>(c) * k + slot] != 0;
  }
};

/// Uniform random K-SAT: each clause draws K distinct literals, each negated
/// with probability 1/2 (the paper's workload; hard at the Mertens et al.
/// ratios M/N = 4.2 / 9.9 / 21.1 / 43.4 for K = 3..6).
Formula random_ksat(std::uint32_t num_lits, std::uint32_t num_clauses,
                    std::uint32_t k, std::uint64_t seed);

/// The hard clause-to-literal ratio for K in 3..6 (Mertens et al. values
/// used in the paper's Fig. 9).
double hard_ratio(std::uint32_t k);

/// True iff `assignment` (one value per literal, 0/1) satisfies f.
bool check_assignment(const Formula& f,
                      const std::vector<std::uint8_t>& assignment);

/// The bipartite factor graph with per-edge survey storage and liveness.
struct FactorGraph {
  explicit FactorGraph(const Formula& f);

  const Formula* formula;
  std::uint32_t k;

  // Edge (c, slot) state; index = c*k + slot.
  std::vector<double> eta;               ///< surveys in [0,1]
  std::vector<std::uint8_t> edge_alive;

  std::vector<std::uint8_t> clause_alive;
  std::vector<std::uint8_t> lit_alive;
  /// -1 unfixed, else 0/1.
  std::vector<std::int8_t> assignment;

  // Literal -> (clause, slot) CSR.
  std::vector<std::uint32_t> lit_off;    ///< size num_lits+1
  std::vector<std::uint32_t> lit_edge;   ///< packed edge index c*k+slot

  std::size_t num_edges() const { return eta.size(); }
  std::uint32_t clause_of_edge(std::uint32_t e) const { return e / k; }
  std::uint32_t slot_of_edge(std::uint32_t e) const { return e % k; }

  void init_surveys(Rng& rng);

  /// Fixes literal i to value v and simplifies: satisfied clauses die with
  /// all their edges; falsified occurrences just lose their edge. Returns
  /// false on an emptied (contradicted) clause.
  bool fix_literal(Lit i, bool v);

  /// Unit propagation: while some alive clause has exactly one alive
  /// occurrence, fix that literal to satisfy it. Returns false on
  /// contradiction. Run after every decimation batch so the WalkSAT
  /// endgame never faces hidden conflicting units.
  bool propagate_units();

  std::uint32_t alive_lits() const;
  std::uint32_t alive_clauses() const;
};

/// Factor-graph consistency invariant (docs/RESILIENCE.md): tombstone
/// marking must be coherent — an alive edge implies an alive clause and an
/// alive literal endpoint, a decimated literal carries a definite 0/1
/// assignment, alive surveys stay in [0,1], and the literal->edge CSR
/// still inverts the clause->literal table. Gates recovery after a fault
/// campaign.
bool check_graph_consistent(const FactorGraph& g);

}  // namespace morph::sp
