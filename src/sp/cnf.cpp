#include "sp/cnf.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace morph::sp {

void write_dimacs_cnf(const Formula& f, std::ostream& os) {
  os << "p cnf " << f.num_lits << ' ' << f.num_clauses() << '\n';
  for (Clause c = 0; c < f.num_clauses(); ++c) {
    for (std::uint32_t s = 0; s < f.k; ++s) {
      const std::int64_t lit = static_cast<std::int64_t>(f.lit(c, s)) + 1;
      os << (f.neg(c, s) ? -lit : lit) << ' ';
    }
    os << "0\n";
  }
}

Formula read_dimacs_cnf(std::istream& is) {
  Formula f;
  std::string line;
  bool have_header = false;
  std::uint64_t expected_clauses = 0;
  std::vector<std::int64_t> clause;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    if (line[0] == 'p') {
      std::string p, cnf;
      std::uint64_t vars = 0;
      ls >> p >> cnf >> vars >> expected_clauses;
      MORPH_CHECK_MSG(cnf == "cnf", "not a DIMACS CNF file");
      MORPH_CHECK_MSG(vars > 0, "CNF without variables");
      f.num_lits = static_cast<std::uint32_t>(vars);
      have_header = true;
      continue;
    }
    MORPH_CHECK_MSG(have_header, "clause before the p-line");
    std::int64_t v = 0;
    while (ls >> v) {
      if (v == 0) {
        MORPH_CHECK_MSG(!clause.empty(), "empty clause");
        if (f.clause_lit.empty()) {
          f.k = static_cast<std::uint32_t>(clause.size());
        }
        MORPH_CHECK_MSG(clause.size() == f.k,
                        "mixed clause lengths are not supported (K="
                            << f.k << ", got " << clause.size() << ")");
        for (std::int64_t lit : clause) {
          const std::uint64_t var = static_cast<std::uint64_t>(
              lit > 0 ? lit : -lit) - 1;
          MORPH_CHECK_MSG(var < f.num_lits, "literal out of range");
          f.clause_lit.push_back(static_cast<Lit>(var));
          f.negated.push_back(lit < 0 ? 1 : 0);
        }
        clause.clear();
      } else {
        clause.push_back(v);
      }
    }
  }
  MORPH_CHECK_MSG(clause.empty(), "unterminated clause");
  MORPH_CHECK_MSG(f.num_clauses() == expected_clauses,
                  "clause count disagrees with the p-line");
  return f;
}

}  // namespace morph::sp
