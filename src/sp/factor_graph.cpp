#include "sp/factor_graph.hpp"

#include <algorithm>

namespace morph::sp {

Formula random_ksat(std::uint32_t num_lits, std::uint32_t num_clauses,
                    std::uint32_t k, std::uint64_t seed) {
  MORPH_CHECK(k >= 2 && k <= 8);
  MORPH_CHECK(num_lits >= k);
  Rng rng(seed);
  Formula f;
  f.num_lits = num_lits;
  f.k = k;
  f.clause_lit.reserve(static_cast<std::size_t>(num_clauses) * k);
  f.negated.reserve(static_cast<std::size_t>(num_clauses) * k);
  std::vector<Lit> picked(k);
  for (std::uint32_t c = 0; c < num_clauses; ++c) {
    for (std::uint32_t s = 0; s < k; ++s) {
      Lit cand;
      bool fresh;
      do {
        cand = static_cast<Lit>(rng.next_below(num_lits));
        fresh = true;
        for (std::uint32_t q = 0; q < s; ++q) {
          if (picked[q] == cand) fresh = false;
        }
      } while (!fresh);
      picked[s] = cand;
      f.clause_lit.push_back(cand);
      f.negated.push_back(rng.next_bool(0.5) ? 1 : 0);
    }
  }
  return f;
}

double hard_ratio(std::uint32_t k) {
  switch (k) {
    case 3: return 4.2;
    case 4: return 9.9;
    case 5: return 21.1;
    case 6: return 43.4;
    default: MORPH_CHECK_MSG(false, "no hard ratio tabulated for K=" << k);
  }
  return 0.0;
}

bool check_assignment(const Formula& f,
                      const std::vector<std::uint8_t>& assignment) {
  MORPH_CHECK(assignment.size() == f.num_lits);
  const std::uint32_t m = f.num_clauses();
  for (Clause c = 0; c < m; ++c) {
    bool sat = false;
    for (std::uint32_t s = 0; s < f.k && !sat; ++s) {
      const bool value = assignment[f.lit(c, s)] != 0;
      sat = f.neg(c, s) ? !value : value;
    }
    if (!sat) return false;
  }
  return true;
}

FactorGraph::FactorGraph(const Formula& f)
    : formula(&f),
      k(f.k),
      eta(f.clause_lit.size(), 0.0),
      edge_alive(f.clause_lit.size(), 1),
      clause_alive(f.num_clauses(), 1),
      lit_alive(f.num_lits, 1),
      assignment(f.num_lits, -1) {
  // Build the literal -> edges CSR.
  lit_off.assign(f.num_lits + 1, 0);
  for (Lit l : f.clause_lit) ++lit_off[l + 1];
  for (std::size_t i = 1; i < lit_off.size(); ++i)
    lit_off[i] += lit_off[i - 1];
  lit_edge.resize(f.clause_lit.size());
  std::vector<std::uint32_t> cursor(lit_off.begin(), lit_off.end() - 1);
  for (std::uint32_t e = 0; e < f.clause_lit.size(); ++e) {
    lit_edge[cursor[f.clause_lit[e]]++] = e;
  }
}

void FactorGraph::init_surveys(Rng& rng) {
  for (std::size_t e = 0; e < eta.size(); ++e) {
    eta[e] = edge_alive[e] ? rng.next_double() : 0.0;
  }
}

bool FactorGraph::fix_literal(Lit i, bool v) {
  MORPH_CHECK(lit_alive[i]);
  lit_alive[i] = 0;
  assignment[i] = v ? 1 : 0;
  const Formula& f = *formula;
  bool ok = true;
  for (std::uint32_t x = lit_off[i]; x < lit_off[i + 1]; ++x) {
    const std::uint32_t e = lit_edge[x];
    if (!edge_alive[e]) continue;
    const Clause c = clause_of_edge(e);
    if (!clause_alive[c]) continue;
    const bool satisfies = f.negated[e] ? !v : v;
    if (satisfies) {
      // The whole clause is satisfied: delete the clause node (marking).
      clause_alive[c] = 0;
      for (std::uint32_t s = 0; s < k; ++s) edge_alive[c * k + s] = 0;
    } else {
      // Only this occurrence dies.
      edge_alive[e] = 0;
      bool any = false;
      for (std::uint32_t s = 0; s < k; ++s) {
        if (edge_alive[c * k + s]) any = true;
      }
      if (!any) {
        clause_alive[c] = 0;
        ok = false;  // contradiction: clause has no satisfiable literal left
      }
    }
  }
  return ok;
}

bool FactorGraph::propagate_units() {
  const Formula& f = *formula;
  bool changed = true;
  while (changed) {
    changed = false;
    for (Clause c = 0; c < f.num_clauses(); ++c) {
      if (!clause_alive[c]) continue;
      std::uint32_t alive_slot = k, count = 0;
      for (std::uint32_t s = 0; s < k; ++s) {
        if (edge_alive[c * k + s]) {
          alive_slot = s;
          ++count;
        }
      }
      if (count == 1) {
        const Lit i = f.lit(c, alive_slot);
        MORPH_CHECK(lit_alive[i]);
        if (!fix_literal(i, !f.neg(c, alive_slot))) return false;
        changed = true;
      }
    }
  }
  return true;
}

std::uint32_t FactorGraph::alive_lits() const {
  std::uint32_t n = 0;
  for (std::uint8_t a : lit_alive) n += a;
  return n;
}

std::uint32_t FactorGraph::alive_clauses() const {
  std::uint32_t n = 0;
  for (std::uint8_t a : clause_alive) n += a;
  return n;
}

bool check_graph_consistent(const FactorGraph& g) {
  const Formula& f = *g.formula;
  for (std::uint32_t e = 0; e < g.num_edges(); ++e) {
    if (!g.edge_alive[e]) continue;
    if (!g.clause_alive[g.clause_of_edge(e)]) return false;
    if (!g.lit_alive[f.clause_lit[e]]) return false;
    if (!(g.eta[e] >= 0.0 && g.eta[e] <= 1.0)) return false;  // also NaN
  }
  for (Clause c = 0; c < f.num_clauses(); ++c) {
    if (!g.clause_alive[c]) continue;
    bool any = false;
    for (std::uint32_t s = 0; s < g.k; ++s) {
      if (g.edge_alive[c * g.k + s]) any = true;
    }
    if (!any) return false;  // alive clause with no satisfiable occurrence
  }
  for (Lit i = 0; i < f.num_lits; ++i) {
    // A decimated (dead) literal must carry a definite value; an alive one
    // may be -1 or already filled by the WalkSAT endgame.
    if (!g.lit_alive[i] && g.assignment[i] != 0 && g.assignment[i] != 1) {
      return false;
    }
    for (std::uint32_t x = g.lit_off[i]; x < g.lit_off[i + 1]; ++x) {
      if (f.clause_lit[g.lit_edge[x]] != i) return false;
    }
  }
  return true;
}

}  // namespace morph::sp
