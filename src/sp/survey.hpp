// Survey Propagation (Braunstein, Mezard, Zecchina) — the paper's SP
// application (Sec. 3).
//
// The solver alternates: (1) iterate the survey update equations on the
// factor graph until the maximum change drops below epsilon, (2) compute
// literal biases and fix ("decimate") the most biased literals, deleting
// the affected subgraph by marking, (3) repeat on the reduced graph; when
// only trivial surveys remain or few literals are left, hand the residual
// formula to a WalkSAT endgame.
//
// The per-literal product cache (`SurveyCache`) is the paper's "caches
// computations along the edges" optimization — without it every edge update
// re-walks its literals' clause lists, which is what makes the multicore
// version blow up for K >= 4 (Fig. 9).
#pragma once

#include <cstdint>
#include <vector>

#include "gpu/cpu_runner.hpp"
#include "gpu/device.hpp"
#include "sp/factor_graph.hpp"

namespace morph::sp {

struct SpOptions {
  double eps = 1e-3;              ///< survey convergence threshold
  std::uint32_t max_sweeps = 300; ///< per decimation phase
  double decimate_frac = 0.01;    ///< fraction of literals fixed per phase
  double trivial_bias = 0.02;     ///< below this max bias, surveys are trivial
  std::uint32_t endgame_lits = 64;      ///< hand to WalkSAT below this
  std::uint64_t walksat_flips = 2'000'000;
  /// Scale the flip budget with the residual size (4000 x unfixed vars).
  /// Benches measuring only the survey iteration turn this off together
  /// with a tiny walksat_flips.
  bool walksat_auto_budget = true;
  double walksat_p = 0.5;
  std::uint32_t max_phases = 1u << 20;
  bool cache_products = true;     ///< the edge-caching optimization
  std::uint64_t work_budget = ~0ull;  ///< counted ops before declaring OOT
  std::uint64_t seed = 1;
};

struct SpResult {
  bool solved = false;
  bool contradiction = false;  ///< decimation emptied a clause
  bool out_of_time = false;    ///< exceeded work_budget
  std::vector<std::uint8_t> assignment;  ///< meaningful when solved
  std::uint64_t sweeps = 0;
  std::uint64_t phases = 0;
  std::uint64_t fixed_by_sp = 0;
  std::uint64_t walksat_flips_used = 0;
  std::uint64_t counted_work = 0;
  double wall_seconds = 0.0;
  double modeled_cycles = 0.0;
};

/// Per-literal survey product cache: prod(1-eta) over the literal's alive
/// edges, split by occurrence sign.
struct SurveyCache {
  std::vector<double> pos;  ///< prod over positive occurrences
  std::vector<double> neg;  ///< prod over negated occurrences
};

// --- algorithm core (shared by every driver) ---

/// Recomputes the cache entry of literal i. Returns counted ops.
std::uint64_t refresh_cache_lit(const FactorGraph& g, Lit i, SurveyCache& c);

/// Updates the surveys of all alive edges of clause c in place. Returns the
/// max |delta| over its edges; adds counted ops to *ops. `cache` may be
/// null (the uncached variant walks the literal clause lists directly).
///
/// `eta_prev` (optional) is a pre-sweep snapshot of g.eta: when set, every
/// cross-clause survey read goes through it (Jacobi iteration), which makes
/// the sweep's values *and op counts* independent of the order clauses are
/// visited in — the property the block-parallel GPU driver's cross-worker
/// byte-identity rests on. Null keeps the classic in-place Gauss-Seidel
/// reads (the serial uncached reference and the multicore baseline).
double update_clause(FactorGraph& g, Clause c, const SurveyCache* cache,
                     std::uint64_t* ops, const double* eta_prev = nullptr);

struct Bias {
  double magnitude = 0.0;
  bool value = false;  ///< the side the literal is biased toward
};

/// Bias of literal i from the current surveys. Adds ops to *ops.
Bias literal_bias(const FactorGraph& g, Lit i, std::uint64_t* ops);

/// WalkSAT over the residual (alive) part of g; fills g.assignment for the
/// remaining literals. Returns flips used, or ~0ull on failure.
std::uint64_t walksat_residual(FactorGraph& g, const SpOptions& opts,
                               Rng& rng);

// --- drivers ---

/// Single-threaded reference implementation. With the product cache on it
/// sweeps against a pre-sweep eta snapshot (Jacobi) — the same trajectory
/// the GPU driver reproduces bit-for-bit; with the cache off it is the
/// classic in-place (Gauss-Seidel) iteration.
SpResult solve_serial(const Formula& f, const SpOptions& opts = {});

/// Multicore baseline (Galois stand-in): same schedule, per-clause work
/// over virtual workers, *no* product cache (matching the paper's multicore
/// version, which repeats graph traversals).
SpResult solve_multicore(const Formula& f, cpu::ParallelRunner& runner,
                         SpOptions opts = {});

/// The paper's GPU implementation on the simulator: clause-update, cache,
/// bias and decimation kernels, fixed 1024-thread blocks.
SpResult solve_gpu(const Formula& f, gpu::Device& dev,
                   const SpOptions& opts = {});

}  // namespace morph::sp
