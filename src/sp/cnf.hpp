// DIMACS CNF import/export for the SAT formulas, so instances can be
// exchanged with standard SAT tooling. Only uniform-K formulas are
// representable in this library; read_dimacs_cnf rejects mixed clause
// lengths.
#pragma once

#include <iosfwd>

#include "sp/factor_graph.hpp"

namespace morph::sp {

/// Writes "p cnf <vars> <clauses>" followed by clause lines (1-based,
/// negative literal = negated occurrence).
void write_dimacs_cnf(const Formula& f, std::ostream& os);

/// Parses a DIMACS CNF whose clauses all have the same length K.
Formula read_dimacs_cnf(std::istream& is);

}  // namespace morph::sp
