#include "sp/survey.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <optional>

#include "gpu/reduce.hpp"
#include "gpu/worklist.hpp"
#include "support/status.hpp"
#include "support/timer.hpp"

namespace morph::sp {

namespace {

constexpr double kTinySurvivor = 1e-12;

/// Products over literal j's alive edges other than `self`, split by
/// occurrence sign *relative to* `sgn` (j's sign in the clause being
/// updated). Direct walk of j's clause list — the uncached path. With
/// `eta_prev` set the walk reads the pre-sweep snapshot (Jacobi; see
/// update_clause in survey.hpp); otherwise it reads g.eta in place. In a
/// snapshot sweep no thread ever reads another clause's live eta cells, so
/// the sweep kernel is race-free by access pattern, not by atomics —
/// MorphSan checks this instead of waiving it.
void walk_products(const FactorGraph& g, Lit j, std::uint32_t self, bool sgn,
                   const double* eta_prev, double& prod_same,
                   double& prod_opp, std::uint64_t* ops) {
  prod_same = 1.0;
  prod_opp = 1.0;
  std::uint64_t n = 0;
  for (std::uint32_t x = g.lit_off[j]; x < g.lit_off[j + 1]; ++x) {
    const std::uint32_t b = g.lit_edge[x];
    ++n;
    if (!g.edge_alive[b] || b == self) continue;
    const bool bsgn = g.formula->negated[b] != 0;
    const double v = 1.0 - (eta_prev ? eta_prev[b] : g.eta[b]);
    if (bsgn == sgn) {
      prod_same *= v;
    } else {
      prod_opp *= v;
    }
  }
  if (ops) *ops += n;
}

}  // namespace

std::uint64_t refresh_cache_lit(const FactorGraph& g, Lit i, SurveyCache& c) {
  double pos = 1.0, neg = 1.0;
  std::uint64_t n = 0;
  for (std::uint32_t x = g.lit_off[i]; x < g.lit_off[i + 1]; ++x) {
    const std::uint32_t b = g.lit_edge[x];
    ++n;
    if (!g.edge_alive[b]) continue;
    const double v = 1.0 - g.eta[b];
    if (g.formula->negated[b]) {
      neg *= v;
    } else {
      pos *= v;
    }
  }
  c.pos[i] = pos;
  c.neg[i] = neg;
  return n;
}

double update_clause(FactorGraph& g, Clause c, const SurveyCache* cache,
                     std::uint64_t* ops, const double* eta_prev) {
  if (!g.clause_alive[c]) return 0.0;
  const std::uint32_t k = g.k;
  double pterm[8];
  bool alive[8];

  for (std::uint32_t s = 0; s < k; ++s) {
    const std::uint32_t e = c * k + s;
    alive[s] = g.edge_alive[e] != 0;
    pterm[s] = 0.0;
    if (!alive[s]) continue;
    const Lit j = g.formula->clause_lit[e];
    const bool sgn = g.formula->negated[e] != 0;

    // Own-edge reads: each edge is written exactly once per sweep, by this
    // clause's updater, and only after all its reads — so the live value
    // still equals the snapshot here and either source is exact.
    double prod_same, prod_opp;
    if (cache) {
      const double mine = 1.0 - (eta_prev ? eta_prev[e] : g.eta[e]);
      const double same_all = sgn ? cache->neg[j] : cache->pos[j];
      prod_opp = sgn ? cache->pos[j] : cache->neg[j];
      if (mine > kTinySurvivor) {
        prod_same = same_all / mine;
        if (ops) *ops += 4;
      } else {
        walk_products(g, j, e, sgn, eta_prev, prod_same, prod_opp, ops);
      }
    } else {
      walk_products(g, j, e, sgn, eta_prev, prod_same, prod_opp, ops);
    }
    // Clamp tiny negative dust from the division.
    prod_same = std::max(prod_same, 0.0);

    // Paper Sec. 3 / BMZ eq. (SP): probability that j is forced to violate
    // clause c (warned by opposite-sign clauses, not by same-sign ones).
    const double pu = (1.0 - prod_opp) * prod_same;
    const double ps = (1.0 - prod_same) * prod_opp;
    const double p0 = prod_same * prod_opp;
    const double denom = pu + ps + p0;
    pterm[s] = denom > 0.0 ? pu / denom : 0.0;
  }

  // eta_{c->i} = prod over the other alive slots of pterm.
  double maxd = 0.0;
  for (std::uint32_t s = 0; s < k; ++s) {
    if (!alive[s]) continue;
    double v = 1.0;
    for (std::uint32_t q = 0; q < k; ++q) {
      if (q == s || !alive[q]) continue;
      v *= pterm[q];
    }
    const std::uint32_t e = c * k + s;
    // Keep surveys strictly below 1 so the cached-product division stays
    // well-defined (a saturated eta would force every later update of this
    // literal onto the slow re-walk path).
    v = std::min(v, 1.0 - 1e-9);
    maxd = std::max(maxd, std::abs(v - g.eta[e]));
    g.eta[e] = v;
  }
  if (ops) *ops += static_cast<std::uint64_t>(k) * k;
  return maxd;
}

Bias literal_bias(const FactorGraph& g, Lit i, std::uint64_t* ops) {
  double pp = 1.0, pm = 1.0;
  std::uint64_t n = 0;
  for (std::uint32_t x = g.lit_off[i]; x < g.lit_off[i + 1]; ++x) {
    const std::uint32_t b = g.lit_edge[x];
    ++n;
    if (!g.edge_alive[b]) continue;
    const double v = 1.0 - g.eta[b];
    if (g.formula->negated[b]) {
      pm *= v;
    } else {
      pp *= v;
    }
  }
  if (ops) *ops += n;
  const double wplus_raw = (1.0 - pp) * pm;   // pushed toward true
  const double wminus_raw = (1.0 - pm) * pp;  // pushed toward false
  const double w0 = pp * pm;
  const double denom = wplus_raw + wminus_raw + w0;
  Bias b;
  if (denom > 0.0) {
    const double wp = wplus_raw / denom;
    const double wm = wminus_raw / denom;
    b.magnitude = std::abs(wp - wm);
    b.value = wp >= wm;
  }
  return b;
}

std::uint64_t walksat_residual(FactorGraph& g, const SpOptions& opts,
                               Rng& rng) {
  const Formula& f = *g.formula;
  const std::uint32_t k = g.k;

  // Gather residual clauses (alive, with >= 1 alive edge).
  std::vector<Clause> clauses;
  for (Clause c = 0; c < f.num_clauses(); ++c) {
    if (g.clause_alive[c]) clauses.push_back(c);
  }
  // Unfixed literals (to randomize on each restart).
  std::vector<Lit> unfixed;
  for (Lit i = 0; i < f.num_lits; ++i) {
    if (g.assignment[i] < 0) unfixed.push_back(i);
  }
  for (Lit i : unfixed) g.assignment[i] = rng.next_bool(0.5) ? 1 : 0;
  if (clauses.empty()) return 0;

  // SP-decimated residuals can be glassy even at low clause density; give
  // the endgame a budget proportional to its size, with restarts.
  const std::uint64_t budget =
      opts.walksat_auto_budget
          ? std::max<std::uint64_t>(opts.walksat_flips,
                                    4000ull * unfixed.size())
          : opts.walksat_flips;
  constexpr int kRestarts = 3;

  auto occurrence_sat = [&](std::uint32_t e) {
    const Lit j = f.clause_lit[e];
    const bool v = g.assignment[j] != 0;
    return f.negated[e] ? !v : v;
  };

  // Satisfier counts and the unsat-clause list.
  std::vector<std::uint32_t> clause_pos(f.num_clauses(), ~0u);
  std::vector<std::uint32_t> sat_count(clauses.size(), 0);
  std::vector<std::uint32_t> unsat;
  std::vector<std::uint32_t> unsat_pos(clauses.size(), ~0u);
  for (std::uint32_t ci = 0; ci < clauses.size(); ++ci) {
    clause_pos[clauses[ci]] = ci;
  }
  auto reinit = [&] {
    unsat.clear();
    std::fill(unsat_pos.begin(), unsat_pos.end(), ~0u);
    for (std::uint32_t ci = 0; ci < clauses.size(); ++ci) {
      sat_count[ci] = 0;
      for (std::uint32_t s = 0; s < k; ++s) {
        const std::uint32_t e = clauses[ci] * k + s;
        if (g.edge_alive[e] && occurrence_sat(e)) ++sat_count[ci];
      }
      if (sat_count[ci] == 0) {
        unsat_pos[ci] = static_cast<std::uint32_t>(unsat.size());
        unsat.push_back(ci);
      }
    }
  };
  reinit();

  auto set_unsat = [&](std::uint32_t ci, bool is_unsat) {
    const bool was = unsat_pos[ci] != ~0u;
    if (was == is_unsat) return;
    if (is_unsat) {
      unsat_pos[ci] = static_cast<std::uint32_t>(unsat.size());
      unsat.push_back(ci);
    } else {
      const std::uint32_t at = unsat_pos[ci];
      unsat_pos[ci] = ~0u;
      unsat[at] = unsat.back();
      if (at != unsat.size() - 1) unsat_pos[unsat[at]] = at;
      unsat.pop_back();
    }
  };

  auto flip = [&](Lit v) {
    g.assignment[v] = g.assignment[v] ? 0 : 1;
    for (std::uint32_t x = g.lit_off[v]; x < g.lit_off[v + 1]; ++x) {
      const std::uint32_t e = g.lit_edge[x];
      if (!g.edge_alive[e]) continue;
      const std::uint32_t ci = clause_pos[g.clause_of_edge(e)];
      if (ci == ~0u) continue;
      if (occurrence_sat(e)) {
        if (++sat_count[ci] == 1) set_unsat(ci, false);
      } else {
        if (--sat_count[ci] == 0) set_unsat(ci, true);
      }
    }
  };

  auto break_count = [&](Lit v) {
    // Clauses that v currently satisfies alone.
    std::uint32_t n = 0;
    for (std::uint32_t x = g.lit_off[v]; x < g.lit_off[v + 1]; ++x) {
      const std::uint32_t e = g.lit_edge[x];
      if (!g.edge_alive[e]) continue;
      const std::uint32_t ci = clause_pos[g.clause_of_edge(e)];
      if (ci == ~0u) continue;
      if (occurrence_sat(e) && sat_count[ci] == 1) ++n;
    }
    return n;
  };

  std::uint64_t used = 0;
  for (int restart = 0; restart < kRestarts; ++restart) {
    if (restart > 0) {
      for (Lit i : unfixed) g.assignment[i] = rng.next_bool(0.5) ? 1 : 0;
      reinit();
    }
    for (std::uint64_t flips = 0; flips < budget; ++flips, ++used) {
      if (unsat.empty()) return used;
      const std::uint32_t ci = unsat[rng.next_below(unsat.size())];
      const Clause c = clauses[ci];
      // Candidate variables: the alive literals of this unsat clause.
      Lit cand[8];
      std::uint32_t ncand = 0;
      for (std::uint32_t s = 0; s < k; ++s) {
        const std::uint32_t e = c * k + s;
        if (g.edge_alive[e]) cand[ncand++] = f.clause_lit[e];
      }
      MORPH_CHECK(ncand > 0);
      Lit pick;
      if (rng.next_bool(opts.walksat_p)) {
        pick = cand[rng.next_below(ncand)];
      } else {
        std::uint32_t best = ~0u;
        pick = cand[0];
        for (std::uint32_t q = 0; q < ncand; ++q) {
          const std::uint32_t bc = break_count(cand[q]);
          if (bc < best) {
            best = bc;
            pick = cand[q];
          }
        }
      }
      flip(pick);
    }
  }
  return unsat.empty() ? used : ~0ull;
}

namespace {

/// Shared decimation schedule. The three drivers differ only in how each
/// bulk step executes/charges; this functor-based skeleton keeps the
/// algorithm identical across them.
struct Hooks {
  // Run one survey sweep over all clauses; returns max delta.
  std::function<double()> sweep;
  // Refresh the product cache (no-op when caching is off).
  std::function<void()> refresh;
  // Compute biases of all alive literals into the given arrays.
  std::function<void(std::vector<double>&, std::vector<std::uint8_t>&)> bias;
  // Invoked after each decimation step (literal fixes + unit propagation);
  // lets a driver prune its live-literal worklist. Optional.
  std::function<void()> after_decimation;
};

SpResult run_schedule(FactorGraph& g, const SpOptions& opts,
                      const Hooks& hooks, const std::uint64_t& work,
                      Rng& rng) {
  SpResult res;
  const Formula& f = *g.formula;
  std::vector<double> bias_mag(f.num_lits);
  std::vector<std::uint8_t> bias_val(f.num_lits);
  std::vector<Lit> order;

  for (std::uint32_t phase = 0; phase < opts.max_phases; ++phase) {
    ++res.phases;
    // Survey iteration.
    double maxd = 0.0;
    for (std::uint32_t sweep = 0; sweep < opts.max_sweeps; ++sweep) {
      hooks.refresh();
      maxd = hooks.sweep();
      ++res.sweeps;
      if (work > opts.work_budget) {
        res.out_of_time = true;
        return res;
      }
      if (maxd < opts.eps) break;
    }

    // Decimation.
    hooks.bias(bias_mag, bias_val);
    order.clear();
    double max_bias = 0.0;
    for (Lit i = 0; i < f.num_lits; ++i) {
      if (!g.lit_alive[i]) continue;
      order.push_back(i);
      max_bias = std::max(max_bias, bias_mag[i]);
    }
    if (order.size() <= opts.endgame_lits || max_bias < opts.trivial_bias) {
      break;  // trivial surveys or small enough: WalkSAT endgame
    }
    const std::size_t nfix = std::max<std::size_t>(
        1, static_cast<std::size_t>(opts.decimate_frac *
                                    static_cast<double>(order.size())));
    std::partial_sort(order.begin(), order.begin() + nfix, order.end(),
                      [&](Lit a, Lit b) { return bias_mag[a] > bias_mag[b]; });
    for (std::size_t q = 0; q < nfix; ++q) {
      const Lit i = order[q];
      if (!g.lit_alive[i]) continue;
      if (!g.fix_literal(i, bias_val[i] != 0)) {
        res.contradiction = true;
        return res;
      }
      ++res.fixed_by_sp;
    }
    if (!g.propagate_units()) {
      res.contradiction = true;
      return res;
    }
    if (hooks.after_decimation) hooks.after_decimation();
  }

  const std::uint64_t flips = walksat_residual(g, opts, rng);
  if (flips == ~0ull) return res;  // endgame failed
  res.walksat_flips_used = flips;

  res.assignment.resize(f.num_lits);
  for (Lit i = 0; i < f.num_lits; ++i) {
    res.assignment[i] = g.assignment[i] > 0 ? 1 : 0;
  }
  res.solved = check_assignment(f, res.assignment);
  return res;
}

}  // namespace

SpResult solve_serial(const Formula& f, const SpOptions& opts) {
  Timer timer;
  FactorGraph g(f);
  Rng rng(opts.seed);
  g.init_surveys(rng);
  SurveyCache cache;
  if (opts.cache_products) {
    cache.pos.assign(f.num_lits, 1.0);
    cache.neg.assign(f.num_lits, 1.0);
  }
  std::uint64_t work = 0;
  std::vector<double> eta_prev;

  Hooks hooks;
  hooks.refresh = [&] {
    if (!opts.cache_products) return;
    for (Lit i = 0; i < f.num_lits; ++i) {
      if (g.lit_alive[i]) work += refresh_cache_lit(g, i, cache);
    }
  };
  hooks.sweep = [&] {
    double maxd = 0.0;
    const SurveyCache* cp = opts.cache_products ? &cache : nullptr;
    // The cached solver sweeps against a pre-sweep snapshot (Jacobi): the
    // cache already holds pre-sweep products, so the tiny-survivor re-walk
    // must read the same image or the two paths would mix freshness. This
    // makes the cached trajectory independent of clause visit order — the
    // contract the GPU driver's cross-worker byte-identity relies on, and
    // what keeps it bit-equal to this serial reference. The uncached
    // reference stays classic in-place Gauss-Seidel (eta_prev empty).
    if (opts.cache_products) eta_prev = g.eta;
    const double* snap = opts.cache_products ? eta_prev.data() : nullptr;
    for (Clause c = 0; c < f.num_clauses(); ++c) {
      maxd = std::max(maxd, update_clause(g, c, cp, &work, snap));
    }
    return maxd;
  };
  hooks.bias = [&](std::vector<double>& mag, std::vector<std::uint8_t>& val) {
    for (Lit i = 0; i < f.num_lits; ++i) {
      if (!g.lit_alive[i]) continue;
      const Bias b = literal_bias(g, i, &work);
      mag[i] = b.magnitude;
      val[i] = b.value ? 1 : 0;
    }
  };

  SpResult res = run_schedule(g, opts, hooks, work, rng);
  res.counted_work = work;
  res.wall_seconds = timer.seconds();
  res.modeled_cycles = static_cast<double>(work);
  return res;
}

SpResult solve_multicore(const Formula& f, cpu::ParallelRunner& runner,
                         SpOptions opts) {
  Timer timer;
  // The paper's multicore version has no edge cache — its per-edge updates
  // re-traverse the literals' clause lists, which is exactly why it stops
  // scaling for K >= 4 (Fig. 9).
  opts.cache_products = false;
  FactorGraph g(f);
  Rng rng(opts.seed);
  g.init_surveys(rng);
  std::uint64_t work = 0;

  // Per-worker accumulators, reduced in worker-index order after each
  // round. The former shared `maxd`/`work` variables were mutated straight
  // from the round callback — a data race the moment a runner executes
  // workers concurrently, and (worse for the model) a sync_op count that
  // depended on which worker happened to observe the running maximum. Each
  // worker now tracks its own running max and charges a sync only when that
  // local max advances — the CAS it would actually issue against the shared
  // cell — so the schedule and its modeled stats are deterministic.
  const std::uint32_t workers = runner.config().workers;
  std::vector<double> worker_maxd(workers, 0.0);
  std::vector<std::uint64_t> worker_ops(workers, 0);
  const auto drain_worker_ops = [&] {
    for (std::uint64_t& o : worker_ops) {
      work += o;
      o = 0;
    }
  };

  Hooks hooks;
  hooks.refresh = [] {};
  hooks.sweep = [&] {
    std::fill(worker_maxd.begin(), worker_maxd.end(), 0.0);
    runner.round(f.num_clauses(), [&](cpu::WorkerCtx& ctx, std::uint64_t c) {
      std::uint64_t ops = 0;
      const double d =
          update_clause(g, static_cast<Clause>(c), nullptr, &ops);
      double& local = worker_maxd[ctx.worker()];
      if (d > local) {
        local = d;
        ctx.sync_op();
      }
      ctx.work(ops);
      worker_ops[ctx.worker()] += ops;
    });
    drain_worker_ops();
    double maxd = 0.0;
    for (const double d : worker_maxd) maxd = std::max(maxd, d);
    return maxd;
  };
  hooks.bias = [&](std::vector<double>& mag, std::vector<std::uint8_t>& val) {
    runner.round(f.num_lits, [&](cpu::WorkerCtx& ctx, std::uint64_t i) {
      if (!g.lit_alive[i]) return;
      std::uint64_t ops = 0;
      const Bias b = literal_bias(g, static_cast<Lit>(i), &ops);
      ctx.work(ops);
      worker_ops[ctx.worker()] += ops;
      mag[i] = b.magnitude;
      val[i] = b.value ? 1 : 0;
    });
    drain_worker_ops();
  };

  SpResult res = run_schedule(g, opts, hooks, work, rng);
  res.counted_work = work;
  res.wall_seconds = timer.seconds();
  res.modeled_cycles = runner.stats().modeled_cycles;
  return res;
}

SpResult solve_gpu(const Formula& f, gpu::Device& dev,
                   const SpOptions& opts) {
  Timer timer;
  // No sanitizer waiver here: the sweep reads cross-clause surveys through
  // a pre-sweep snapshot (Jacobi — see update_clause in survey.hpp), so its
  // only shared-state writes are each clause's own eta row, shadowed below
  // for MorphSan's inter-block race check. SP is *checked*, not exempted.
  FactorGraph g(f);
  Rng rng(opts.seed);
  g.init_surveys(rng);
  const bool cached = opts.cache_products;
  SurveyCache cache;
  if (cached) {
    cache.pos.assign(f.num_lits, 1.0);
    cache.neg.assign(f.num_lits, 1.0);
  }
  std::vector<double> eta_prev;
  std::uint64_t work = 0;

  // Fixed kernel configuration: SP's graph size is roughly constant, so the
  // paper pins 1024 threads per block (Sec. 7.4).
  const std::uint32_t blocks = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(
             50 * dev.config().num_sms,
             static_cast<std::uint32_t>(f.num_clauses() / 1024 + 1)));
  const gpu::LaunchConfig lc{blocks, 1024, "sp.survey"};
  const std::uint64_t T = lc.total_threads();

  // Transfer the formula once (main(): CPU -> GPU).
  dev.note_copy(f.clause_lit.size() * (sizeof(Lit) + 1));

  // Kernel threads run on several host workers; they tally ops into an
  // atomic that is drained into the schedule's plain `work` counter between
  // launches (run_schedule only reads it there).
  std::atomic<std::uint64_t> launch_ops{0};
  auto drain_ops = [&] { work += launch_ops.exchange(0); };

  // WorklistMode::kSharded: the alive literals *and* the alive clauses live
  // in sharded worklists, pseudo-partitioned by index and rebuilt host-side
  // after every decimation step — so all three kernels (sweep, refresh,
  // bias) sweep only work that is still alive, each block its own shards,
  // instead of striding everything and paying a step per tombstone. Op
  // charging follows ownership: which items a thread visits is a function
  // of (block, shard map), never of host-thread interleaving. Iteration is
  // non-consuming.
  const bool sharded =
      dev.config().worklist_mode == gpu::WorklistMode::kSharded;
  std::optional<gpu::ShardedWorklist<Lit>> lit_wl;
  std::optional<gpu::ShardedWorklist<Clause>> clause_wl;
  if (sharded) {
    const std::size_t S = dev.config().resolved_worklist_shards();
    lit_wl.emplace(S, static_cast<std::size_t>(f.num_lits) / S + 2, &dev);
    clause_wl.emplace(S, static_cast<std::size_t>(f.num_clauses()) / S + 2,
                      &dev);
  }
  const auto seed_alive = [](auto& wl, std::uint32_t total, auto&& alive) {
    wl.reset();
    gpu::ThreadCtx host;  // host-side fill; charges discarded
    std::uint32_t na = 0;
    for (std::uint32_t i = 0; i < total; ++i) na += alive(i) ? 1 : 0;
    std::uint32_t idx = 0;
    for (std::uint32_t i = 0; i < total; ++i) {
      if (alive(i)) (void)wl.push(host, wl.partition_shard(idx++, na), i);
    }
  };
  const auto rebuild_worklists = [&] {
    if (!sharded) return;
    seed_alive(*lit_wl, f.num_lits,
               [&](std::uint32_t i) { return g.lit_alive[i] != 0; });
    seed_alive(*clause_wl, f.num_clauses(),
               [&](std::uint32_t c) { return g.clause_alive[c] != 0; });
    dev.note_counter("worklist.occupancy",
                     static_cast<double>(lit_wl->size() + clause_wl->size()));
  };
  rebuild_worklists();
  // Sweep over the live items a block owns (threads stride the shard
  // contents). The charging rule is uniform across the sharded and strided
  // paths: one step per visited item — tombstone or live — plus the
  // algorithmic ops of live items, so sharded vs centralized modeled cycles
  // differ only by the tombstones the worklist skips.
  const auto for_each_owned = [&](auto& wl, gpu::ThreadCtx& ctx,
                                  auto&& alive, auto&& body) {
    const auto r = wl.owned_range(ctx.block(), lc.blocks);
    for (std::size_t s = r.lo; s < r.hi; ++s) {
      const std::size_t sz = wl.shard_size(s);
      for (std::size_t x = ctx.thread_in_block(); x < sz;
           x += lc.threads_per_block) {
        const auto i = wl.item(s, x);
        ctx.work(1);
        if (!alive(i)) continue;  // stale tombstone (possible mid-rebuild)
        body(i);
      }
    }
  };
  const auto lit_alive = [&](Lit i) { return g.lit_alive[i] != 0; };
  const auto clause_alive = [&](Clause c) { return g.clause_alive[c] != 0; };

  Hooks hooks;
  hooks.after_decimation = rebuild_worklists;
  hooks.refresh = [&] {
    if (!cached) return;
    dev.launch(lc, [&](gpu::ThreadCtx& ctx) {
      const auto refresh = [&](Lit i) {
        const std::uint64_t ops = refresh_cache_lit(g, i, cache);
        ctx.work(ops);
        launch_ops.fetch_add(ops, std::memory_order_relaxed);
      };
      if (sharded) {
        for_each_owned(*lit_wl, ctx, lit_alive, refresh);
        return;
      }
      for (std::uint64_t i = ctx.tid(); i < f.num_lits; i += T) {
        ctx.work(1);
        if (!g.lit_alive[i]) continue;
        refresh(static_cast<Lit>(i));
      }
    });
    drain_ops();
  };
  hooks.sweep = [&] {
    // Jacobi snapshot: every cross-clause survey read in this launch goes
    // through the pre-sweep eta image, so values and op counts do not
    // depend on the order blocks run clauses in. The host-side copy is
    // simulation bookkeeping (the cache refresh models the real transfer).
    eta_prev = g.eta;
    // Per-block local maxima, folded in ascending block order after the
    // launch — the deterministic replacement for a mutex-guarded global.
    gpu::BlockReduce<double> max_delta(lc.blocks, 0.0);
    const auto fold_max = [](double a, double b) { return std::max(a, b); };
    dev.launch(lc, [&](gpu::ThreadCtx& ctx) {
      double local = 0.0;
      std::uint64_t ops = 0;
      const auto update = [&](Clause c) {
        // Shadow the eta-row write: the worklists must hand every alive
        // clause to exactly one thread, and MorphSan verifies it (two
        // blocks updating one clause would be an inter-block race finding).
        if (analysis::Sanitizer* s = ctx.san()) {
          s->on_access(ctx.block(),
                       &g.eta[static_cast<std::size_t>(c) * g.k],
                       g.k * sizeof(double),
                       analysis::Sanitizer::Access::kWrite);
        }
        local = std::max(local, update_clause(g, c, cached ? &cache : nullptr,
                                              &ops, eta_prev.data()));
      };
      if (sharded) {
        for_each_owned(*clause_wl, ctx, clause_alive, update);
      } else {
        for (std::uint64_t c = ctx.tid(); c < f.num_clauses(); c += T) {
          ctx.work(1);
          if (!g.clause_alive[c]) continue;
          update(static_cast<Clause>(c));
        }
      }
      ctx.work(ops);
      launch_ops.fetch_add(ops, std::memory_order_relaxed);
      max_delta.combine(ctx, local, fold_max);
      max_delta.charge(ctx);
    });
    drain_ops();
    return max_delta.reduce(fold_max);
  };
  hooks.bias = [&](std::vector<double>& mag, std::vector<std::uint8_t>& val) {
    dev.launch(lc, [&](gpu::ThreadCtx& ctx) {
      const auto bias_of = [&](Lit i) {
        std::uint64_t ops = 0;
        const Bias b = literal_bias(g, i, &ops);
        ctx.work(ops);
        launch_ops.fetch_add(ops, std::memory_order_relaxed);
        mag[i] = b.magnitude;
        val[i] = b.value ? 1 : 0;
      };
      if (sharded) {
        for_each_owned(*lit_wl, ctx, lit_alive, bias_of);
        return;
      }
      for (std::uint64_t i = ctx.tid(); i < f.num_lits; i += T) {
        ctx.work(1);
        if (!g.lit_alive[i]) continue;
        bias_of(static_cast<Lit>(i));
      }
    });
    drain_ops();
  };

  SpResult res = run_schedule(g, opts, hooks, work, rng);

  // Invariant gate under fault campaigns: the factor graph's tombstone
  // marking must still be coherent, and a claimed solution must actually
  // satisfy the formula.
  if (dev.faults_armed()) {
    if (!check_graph_consistent(g) ||
        (res.solved && !check_assignment(f, res.assignment))) {
      throw FaultError(
          Status(StatusCode::kInvariantViolation,
                 "sp::solve_gpu: factor-graph consistency violated after "
                 "fault campaign"));
    }
    dev.note_recovery(
        "factor-graph consistency verified after fault campaign");
  }

  res.counted_work = work;
  res.wall_seconds = timer.seconds();
  res.modeled_cycles = dev.stats().modeled_cycles;
  return res;
}

}  // namespace morph::sp
