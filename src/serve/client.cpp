#include "serve/client.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace morph::serve {

using telemetry::Json;

namespace {

Status io_error(const std::string& what) {
  return Status(StatusCode::kIoError, what + ": " + std::strerror(errno));
}

}  // namespace

Status Client::connect(const std::string& socket_path) {
  close();
  path_ = socket_path;
  Status s = connect_unix(socket_path, &fd_);
  if (!s.ok()) return s;
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    s = io_error("fcntl O_NONBLOCK");
    close();
    return s;
  }

  Json hello = Json::object();
  hello.set("type", "hello");
  hello.set("proto", kProtocolVersion);
  if (!(s = send_message(hello)).ok()) return s;
  Json reply;
  if (!(s = next_message(&reply)).ok()) return s;
  const Json* type = reply.find("type");
  const Json* proto = reply.find("proto");
  if (type == nullptr || !type->is_string() || type->as_string() != "hello" ||
      proto == nullptr || !proto->is_number() ||
      proto->as_int() != kProtocolVersion) {
    close();
    return Status(StatusCode::kBadRequest,
                  "server handshake failed (wrong protocol version?)");
  }
  return Status::Ok();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  outbuf_.clear();
  decoder_ = FrameDecoder{};
  inbox_.clear();
  peer_closed_ = false;
}

Status Client::submit(const JobRequest& req, std::int64_t arrival) {
  Json m = req.to_json();
  if (arrival >= 0) m.set("arrival", static_cast<std::uint64_t>(arrival));
  return send_message(m);
}

Status Client::resubmit_after_failure(const JobRequest& req,
                                      std::int64_t arrival) {
  const std::string path = path_;
  if (path.empty()) {
    return Status(StatusCode::kIoError, "never connected; nothing to retry");
  }
  close();
  // Deterministic per-job backoff: every retrying client spreads out the
  // same way on every run, instead of a synchronized reconnect stampede.
  const auto backoff_ms = 5 + (req.id % 16) * 5;
  std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  Status s = connect(path);
  if (!s.ok()) return s;
  return submit(req, arrival);
}

Status Client::send_flush(std::int64_t arrival) {
  Json m = Json::object();
  m.set("type", "flush");
  if (arrival >= 0) m.set("arrival", static_cast<std::uint64_t>(arrival));
  return send_message(m);
}

Status Client::send_cancel(std::uint64_t id, std::int64_t arrival) {
  Json m = Json::object();
  m.set("type", "cancel");
  m.set("id", id);
  if (arrival >= 0) m.set("arrival", static_cast<std::uint64_t>(arrival));
  return send_message(m);
}

Status Client::send_session_open(const std::string& session,
                                 const std::string& kind, std::uint64_t count,
                                 std::uint64_t id, std::int64_t arrival) {
  Json m = Json::object();
  m.set("type", "session-open");
  m.set("id", id);
  m.set("session", session);
  m.set("kind", kind);
  m.set(kind == "pta" ? "vars" : "nodes", count);
  if (arrival >= 0) m.set("arrival", static_cast<std::uint64_t>(arrival));
  return send_message(m);
}

Status Client::send_session_update(const std::string& session,
                                   const Json& updates, std::uint64_t id,
                                   std::int64_t arrival) {
  Json m = Json::object();
  m.set("type", "session-update");
  m.set("id", id);
  m.set("session", session);
  m.set("updates", updates);
  if (arrival >= 0) m.set("arrival", static_cast<std::uint64_t>(arrival));
  return send_message(m);
}

Status Client::send_session_close(const std::string& session, std::uint64_t id,
                                  std::int64_t arrival) {
  Json m = Json::object();
  m.set("type", "session-close");
  m.set("id", id);
  m.set("session", session);
  if (arrival >= 0) m.set("arrival", static_cast<std::uint64_t>(arrival));
  return send_message(m);
}

Status Client::send_stats() {
  Json m = Json::object();
  m.set("type", "stats");
  return send_message(m);
}

Status Client::send_shutdown() {
  Json m = Json::object();
  m.set("type", "shutdown");
  return send_message(m);
}

Status Client::send_message(const Json& msg) {
  if (fd_ < 0) return Status(StatusCode::kIoError, "not connected");
  outbuf_ += encode_frame(msg);
  return pump(false);
}

Status Client::next_message(Json* out) {
  for (;;) {
    if (!inbox_.empty()) {
      *out = std::move(inbox_.front());
      inbox_.pop_front();
      return Status::Ok();
    }
    if (peer_closed_ || fd_ < 0) {
      return Status(StatusCode::kIoError, "connection closed");
    }
    const Status s = pump(true);
    if (!s.ok()) return s;
  }
}

Status Client::pump(bool wait_readable) {
  if (fd_ < 0) return Status(StatusCode::kIoError, "not connected");
  for (;;) {
    // Flush as much outbound as the kernel will take right now.
    while (!outbuf_.empty()) {
      const ssize_t w =
          ::send(fd_, outbuf_.data(), outbuf_.size(), MSG_NOSIGNAL);
      if (w >= 0) {
        outbuf_.erase(0, static_cast<std::size_t>(w));
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return io_error("send");
    }

    // Drain whatever the server has pushed at us.
    char buf[65536];
    for (;;) {
      const ssize_t r = ::read(fd_, buf, sizeof(buf));
      if (r > 0) {
        decoder_.feed(buf, static_cast<std::size_t>(r));
        continue;
      }
      if (r == 0) {
        peer_closed_ = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return io_error("read");
    }
    for (;;) {
      Json msg;
      bool have = false;
      const Status s = decoder_.poll(&msg, &have);
      if (!s.ok()) return s;
      if (!have) break;
      inbox_.push_back(std::move(msg));
    }

    const bool outbound_done = outbuf_.empty();
    const bool inbox_ready = !inbox_.empty();
    if ((outbound_done && !wait_readable) || inbox_ready) return Status::Ok();
    if (peer_closed_) {
      return wait_readable && !inbox_ready
                 ? Status(StatusCode::kIoError, "connection closed")
                 : Status::Ok();
    }

    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    if (!outbound_done) pfd.events |= POLLOUT;
    const int timeout = wait_readable ? recv_timeout_ms_ : -1;
    const int rv = ::poll(&pfd, 1, timeout);
    if (rv < 0 && errno != EINTR) return io_error("poll");
    if (rv == 0) {
      return Status(StatusCode::kTimeout,
                    "no server message within " +
                        std::to_string(recv_timeout_ms_) + " ms");
    }
  }
}

}  // namespace morph::serve
