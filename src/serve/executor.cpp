#include "serve/executor.hpp"

#include <chrono>
#include <optional>
#include <string>
#include <utility>

#include "dmr/delaunay.hpp"
#include "dmr/refine.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "gpu/device.hpp"
#include "mst/mst.hpp"
#include "pta/constraints.hpp"
#include "pta/solve.hpp"
#include "resilience/fault.hpp"
#include "sp/factor_graph.hpp"
#include "sp/survey.hpp"
#include "support/check.hpp"
#include "telemetry/trace.hpp"

namespace morph::serve {

using telemetry::Json;

std::uint64_t resolved_size2(const JobSpec& spec) {
  if (spec.size2 != 0) return spec.size2;
  switch (spec.kind) {
    case JobKind::kPta: return spec.size * 13 / 10;
    case JobKind::kMst: return spec.size * 2;
    default: return 0;
  }
}

double estimate_job_cycles(const JobSpec& spec) {
  const auto size = static_cast<double>(spec.size);
  switch (spec.kind) {
    case JobKind::kDmr:
      // Refinement roughly doubles the mesh; each round is a few launches
      // over the bad-triangle set.
      return 3.0e4 * size;
    case JobKind::kSp: {
      // One sweep touches every clause edge; m ~= hard_ratio(k) * n.
      const double sweeps =
          static_cast<double>(spec.sweeps) * spec.phases + 8.0;
      return 1.5e3 * size * sweeps;
    }
    case JobKind::kPta:
      return 4.0e3 * (size + static_cast<double>(resolved_size2(spec)));
    case JobKind::kMst:
      return 6.0e3 * (size + static_cast<double>(resolved_size2(spec)));
  }
  return 1.0e6;
}

namespace {

void capture_exec(const gpu::Device& dev, JobExecStats* out) {
  *out = JobExecStats::from_stats(dev.stats());
}

void run_dmr(const JobSpec& spec, gpu::Device& dev, JobOutcome* out) {
  dmr::Mesh mesh = dmr::generate_input_mesh(spec.size, spec.seed);
  dmr::RefineOptions opts;
  opts.validate_invariants = spec.validate;
  const dmr::RefineStats st = dmr::refine_gpu(mesh, dev, opts);
  out->outputs.set("initial_bad", st.initial_bad);
  out->outputs.set("processed", st.processed);
  out->outputs.set("aborted", st.aborted);
  out->outputs.set("rounds", st.rounds);
  out->outputs.set("final_triangles", st.final_triangles);
  if (spec.validate) {
    std::string why;
    if (!mesh.validate(&why)) {
      out->status = Status(StatusCode::kInvariantViolation,
                           "refined mesh invalid: " + why);
    }
  }
}

void run_sp(const JobSpec& spec, gpu::Device& dev, JobOutcome* out) {
  const auto n = static_cast<std::uint32_t>(spec.size);
  const auto m = static_cast<std::uint32_t>(sp::hard_ratio(spec.k) *
                                            static_cast<double>(n));
  const sp::Formula f = sp::random_ksat(n, m, spec.k, spec.seed);
  sp::SpOptions opts;
  opts.seed = spec.seed;
  opts.eps = 0.0;  // fixed sweep workload: deterministic modeled cost
  opts.max_sweeps = spec.sweeps;
  opts.max_phases = spec.phases;
  opts.walksat_flips = 1;
  opts.walksat_auto_budget = false;
  const sp::SpResult r = sp::solve_gpu(f, dev, opts);
  out->outputs.set("clauses", static_cast<std::uint64_t>(m));
  out->outputs.set("solved", r.solved);
  out->outputs.set("contradiction", r.contradiction);
  out->outputs.set("sweeps", r.sweeps);
  out->outputs.set("phases", r.phases);
  out->outputs.set("fixed_by_sp", r.fixed_by_sp);
  out->outputs.set("counted_work", r.counted_work);
  if (spec.validate && r.solved && !sp::check_assignment(f, r.assignment)) {
    out->status = Status(StatusCode::kInvariantViolation,
                         "sp assignment does not satisfy the formula");
  }
}

void run_pta(const JobSpec& spec, gpu::Device& dev, JobOutcome* out) {
  const pta::ConstraintSet cs = pta::synthetic_program(
      static_cast<std::uint32_t>(spec.size),
      static_cast<std::uint32_t>(resolved_size2(spec)), spec.seed);
  pta::PtaStats st;
  const pta::PtsSets pts = pta::solve_gpu(cs, dev, {}, &st);
  out->outputs.set("iterations", st.iterations);
  out->outputs.set("edges_added", st.edges_added);
  out->outputs.set("pts_total", st.pts_total);
  out->outputs.set("counted_work", st.counted_work);
  if (spec.validate && !pta::check_solution(cs, pts)) {
    out->status = Status(StatusCode::kInvariantViolation,
                         "points-to solution fails the soundness check");
  }
}

void run_mst(const JobSpec& spec, gpu::Device& dev, JobOutcome* out) {
  const auto n = static_cast<graph::Node>(spec.size);
  const auto g = graph::CsrGraph::from_undirected_edges(
      n, graph::gen_random_uniform(n, resolved_size2(spec), 1u << 16,
                                   spec.seed));
  const mst::MstResult r = mst::mst_gpu(g, dev);
  out->outputs.set("total_weight", r.total_weight);
  out->outputs.set("tree_edges", r.tree_edges);
  out->outputs.set("components", static_cast<std::uint64_t>(r.components));
  out->outputs.set("rounds", r.rounds);
  if (spec.validate && !mst::verify_forest(g, r)) {
    out->status = Status(StatusCode::kInvariantViolation,
                         "mst result is not a spanning forest of the input");
  }
}

}  // namespace

JobOutcome run_job(const JobRequest& req, const gpu::DeviceConfig& base) {
  JobOutcome out;

  std::optional<resilience::FaultPlan> plan;
  if (!req.faults.empty()) {
    resilience::FaultPlan parsed;
    const Status s =
        resilience::parse_fault_plan(req.faults, req.fault_seed, &parsed);
    if (!s.ok()) {
      out.status = s;
      return out;
    }
    plan = std::move(parsed);
  }

  std::optional<telemetry::TraceSink> sink;
  gpu::DeviceConfig cfg = base;
  // Per-job isolation: the server's sink/campaign/sanitizer never leak into
  // a job's device; each job arms exactly what it asked for.
  cfg.trace = nullptr;
  cfg.faults = nullptr;
  cfg.sanitize = nullptr;
  if (req.trace) {
    sink.emplace();
    cfg.trace = &*sink;
  }
  if (plan) cfg.faults = &*plan;

  gpu::Device dev(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    switch (req.spec.kind) {
      case JobKind::kDmr: run_dmr(req.spec, dev, &out); break;
      case JobKind::kSp: run_sp(req.spec, dev, &out); break;
      case JobKind::kPta: run_pta(req.spec, dev, &out); break;
      case JobKind::kMst: run_mst(req.spec, dev, &out); break;
    }
  } catch (const FaultError& e) {
    // Exhausted recovery ladder / watchdog give-up: the job fails alone.
    out.status = e.status();
  } catch (const CheckError& e) {
    // An invariant tripped inside the app. Contain it to this job — the
    // device is discarded either way, so nothing can poison the pool.
    out.status = Status(StatusCode::kInvariantViolation, e.what());
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  capture_exec(dev, &out.exec);
  if (sink) out.trace_events = sink->merged().size();
  return out;
}

QuarantinePool::QuarantinePool(std::uint32_t slots, std::uint32_t threshold)
    : threshold_(threshold),
      consecutive_faults_(slots, 0),
      flagged_(slots, false) {}

void QuarantinePool::record(std::uint32_t slot, bool ok) {
  if (threshold_ == 0 || slot >= consecutive_faults_.size()) return;
  if (ok) {
    consecutive_faults_[slot] = 0;
    return;
  }
  if (flagged_[slot]) return;  // already quarantined; don't double-count
  if (++consecutive_faults_[slot] >= threshold_) {
    flagged_[slot] = true;
    ++quarantined_;
  }
}

bool QuarantinePool::is_quarantined(std::uint32_t slot) const {
  return slot < flagged_.size() && flagged_[slot];
}

}  // namespace morph::serve
