// Client side of the morph job server protocol.
//
// The socket is nonblocking and every send pumps the connection both ways:
// outbound bytes drain as the kernel accepts them while inbound result
// frames are decoded into an ordered inbox. That way a client can keep
// submitting while the server streams results back — with a blocking socket
// both sides could fill their send buffers mid-burst and deadlock.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "serve/job.hpp"
#include "serve/protocol.hpp"
#include "support/status.hpp"
#include "telemetry/json.hpp"

namespace morph::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and performs the hello handshake (verifies the protocol
  /// version). kIoError / kBadRequest on failure.
  Status connect(const std::string& socket_path);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Bounds how long next_message() waits for the server before giving up
  /// with kTimeout. Negative (the default) waits forever. A timed-out
  /// connection is still usable — the caller decides between waiting more
  /// and resubmit_after_failure().
  void set_recv_timeout_ms(int ms) { recv_timeout_ms_ = ms; }

  /// One reconnect-and-resubmit attempt after a timeout or disconnect:
  /// closes the wedged connection, backs off deterministically (keyed by
  /// the job id, so a thundering herd of retrying clients spreads out the
  /// same way every run), reconnects to the same path, and resubmits `req`
  /// with its original arrival stamp. The server answers a stamp it already
  /// admitted idempotently, so retrying a job whose reply was merely lost
  /// in transit is safe (docs/SERVER.md, "Durability & operations").
  Status resubmit_after_failure(const JobRequest& req,
                                std::int64_t arrival = -1);

  /// Queues a submit frame and pumps. Results arriving meanwhile land in
  /// the inbox for next_message(). `arrival >= 0` stamps the frame with a
  /// global arrival sequence number: the server admits stamped frames in
  /// strictly increasing arrival order across ALL connections, which is
  /// what makes a multi-connection workload replayable (docs/SERVER.md).
  Status submit(const JobRequest& req, std::int64_t arrival = -1);
  Status send_flush(std::int64_t arrival = -1);
  /// Asks the server to cancel job `id`. The server answers "cancelled" with
  /// `caught` saying whether the job was still in an open batch (sealed jobs
  /// run to completion and their result arrives normally).
  Status send_cancel(std::uint64_t id, std::int64_t arrival = -1);
  Status send_stats();
  Status send_shutdown();

  /// Incremental recompute sessions (docs/SERVER.md, "Sessions"). Session
  /// frames MUST be stamped (`arrival >= 0`): the server journals them by
  /// stamp and rejects unstamped ones, because an unjournaled update would
  /// silently vanish from the replayed session history after a crash.
  /// `kind` is "mst" or "pta"; `count` is the node (mst) or variable (pta)
  /// count. The server answers "session-opened" with the pinned slot and
  /// the initial state digest.
  Status send_session_open(const std::string& session, const std::string& kind,
                           std::uint64_t count, std::uint64_t id,
                           std::int64_t arrival);
  /// One update batch. Rows are [op,u,v,w] for mst (op 1=insert, 0=delete)
  /// or [kind,dst,src] for pta (kind 0..3). Answered with "session-result"
  /// carrying the incremental outputs, exec-stats delta, and state digest.
  Status send_session_update(const std::string& session,
                             const telemetry::Json& updates, std::uint64_t id,
                             std::int64_t arrival);
  Status send_session_close(const std::string& session, std::uint64_t id,
                            std::int64_t arrival);

  /// Next server message (result / reject / error / stats / bye), in arrival
  /// order. Blocks until one is available; kIoError once the connection is
  /// gone and the inbox is empty; kTimeout when a receive timeout is set
  /// and the server stays silent past it.
  Status next_message(telemetry::Json* out);

  /// Messages already decoded and waiting.
  std::size_t inbox_size() const { return inbox_.size(); }

 private:
  Status send_message(const telemetry::Json& msg);
  /// Drains writable outbound bytes and readable inbound frames.
  /// `wait_readable` blocks until at least one inbound frame (or error).
  Status pump(bool wait_readable);

  int fd_ = -1;
  std::string path_;        ///< last connect target, for reconnects
  int recv_timeout_ms_ = -1;
  std::string outbuf_;
  FrameDecoder decoder_;
  std::deque<telemetry::Json> inbox_;
  bool peer_closed_ = false;
};

}  // namespace morph::serve
