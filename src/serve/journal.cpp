#include "serve/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace morph::serve {

namespace {

constexpr char kMagic[8] = {'M', 'W', 'A', 'L', 'J', 'R', 'N', '1'};

Status io_error(const std::string& what) {
  return Status(StatusCode::kIoError, what + ": " + std::strerror(errno));
}

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), table built on first use.
std::uint32_t crc32(const char* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void put_u32be(std::uint32_t v, std::string& out) {
  out.push_back(static_cast<char>(v >> 24));
  out.push_back(static_cast<char>(v >> 16));
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}

void put_u64be(std::uint64_t v, std::string& out) {
  put_u32be(static_cast<std::uint32_t>(v >> 32), out);
  put_u32be(static_cast<std::uint32_t>(v), out);
}

std::uint32_t get_u32be(const char* in) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[3]));
}

std::uint64_t get_u64be(const char* in) {
  return (static_cast<std::uint64_t>(get_u32be(in)) << 32) |
         static_cast<std::uint64_t>(get_u32be(in + 4));
}

Status write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return io_error("journal write");
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return Status::Ok();
}

}  // namespace

bool parse_fsync_policy(const std::string& s, JournalConfig* cfg) {
  if (s == "none") {
    cfg->fsync = JournalConfig::Fsync::kNone;
    return true;
  }
  if (s == "always") {
    cfg->fsync = JournalConfig::Fsync::kAlways;
    return true;
  }
  if (s.empty()) return false;
  std::uint64_t n = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (n == 0) return false;
  cfg->fsync = JournalConfig::Fsync::kInterval;
  cfg->fsync_interval = n;
  return true;
}

Status Journal::scan(const std::string& path, JournalScan* out) {
  *out = JournalScan{};
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::Ok();  // no journal yet: empty scan
    return io_error("journal open " + path);
  }

  std::string bytes;
  char buf[65536];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      const Status s = io_error("journal read " + path);
      ::close(fd);
      return s;
    }
    if (r == 0) break;
    bytes.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  out->file_bytes = bytes.size();

  if (bytes.size() < sizeof(kMagic)) {
    // Shorter than the magic: an empty or torn-at-birth journal.
    out->torn_tail = !bytes.empty();
    return Status::Ok();
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status(StatusCode::kIoError,
                  path + " is not a morph journal (bad magic)");
  }

  std::size_t pos = sizeof(kMagic);
  out->valid_bytes = pos;
  std::size_t last_checkpoint = 0;  // index into records, one past the 'K'
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {
      out->torn_tail = true;
      break;
    }
    const std::uint32_t len = get_u32be(bytes.data() + pos);
    const std::uint32_t crc = get_u32be(bytes.data() + pos + 4);
    if (len == 0 || bytes.size() - pos - 8 < len) {
      out->torn_tail = true;
      break;
    }
    const char* payload = bytes.data() + pos + 8;
    if (crc32(payload, len) != crc) {
      out->torn_tail = true;  // torn or bit-rotted: treat as end of log
      break;
    }
    JournalRecord rec;
    const char tag = payload[0];
    if (tag == 'A' && len >= 9) {
      rec.type = JournalRecord::Type::kAdmitted;
      rec.arrival = get_u64be(payload + 1);
      rec.frame.assign(payload + 9, len - 9);
    } else if (tag == 'S' && len >= 9) {
      rec.type = JournalRecord::Type::kSession;
      rec.arrival = get_u64be(payload + 1);
      rec.frame.assign(payload + 9, len - 9);
    } else if (tag == 'C' && len == 9) {
      rec.type = JournalRecord::Type::kCompleted;
      rec.arrival = get_u64be(payload + 1);
    } else if (tag == 'K' && len >= 1) {
      rec.type = JournalRecord::Type::kCheckpoint;
      rec.frame.assign(payload + 1, len - 1);
    } else {
      out->torn_tail = true;  // unknown/garbled payload: end of log
      break;
    }
    pos += 8 + len;
    out->valid_bytes = pos;
    if (rec.type == JournalRecord::Type::kCheckpoint) {
      last_checkpoint = out->records.size() + 1;
      out->checkpoint_state = rec.frame;
    }
    out->records.push_back(std::move(rec));
  }

  if (last_checkpoint > 0) {
    // Everything before the last checkpoint is complete and emitted; recovery
    // only cares about what came after it.
    out->records.erase(out->records.begin(),
                       out->records.begin() +
                           static_cast<std::ptrdiff_t>(last_checkpoint));
  }
  return Status::Ok();
}

Status Journal::open(const JournalConfig& cfg, std::uint64_t valid_bytes) {
  close();
  cfg_ = cfg;
  inject_ = cfg.faults != nullptr && !cfg.faults->empty();
  if (inject_) injector_ = resilience::FaultInjector(*cfg.faults);

  fd_ = ::open(cfg_.path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) return io_error("journal open " + cfg_.path);

  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    const Status s = io_error("journal fstat " + cfg_.path);
    close();
    return s;
  }
  if (st.st_size == 0) {
    const Status s = write_all(fd_, kMagic, sizeof(kMagic));
    if (!s.ok()) {
      close();
      return s;
    }
  } else {
    // Drop a torn tail, then position at the end of the valid prefix.
    const auto keep =
        static_cast<off_t>(valid_bytes == 0 ? sizeof(kMagic) : valid_bytes);
    if (keep < st.st_size && ::ftruncate(fd_, keep) != 0) {
      const Status s = io_error("journal truncate " + cfg_.path);
      close();
      return s;
    }
    if (::lseek(fd_, 0, SEEK_END) < 0) {
      const Status s = io_error("journal seek " + cfg_.path);
      close();
      return s;
    }
  }
  return sync();
}

Status Journal::append_record(const std::string& payload) {
  if (fd_ < 0) return Status(StatusCode::kIoError, "journal not open");
  if (failed_) {
    return Status(StatusCode::kIoError, "journal failed (torn write)");
  }
  std::string rec;
  rec.reserve(8 + payload.size());
  put_u32be(static_cast<std::uint32_t>(payload.size()), rec);
  put_u32be(crc32(payload.data(), payload.size()), rec);
  rec += payload;

  if (inject_ &&
      injector_.should_fire(resilience::FaultClass::kJournalTorn)) {
    // The deterministic crash-mid-append: half the record reaches the disk
    // and the journal is dead from here on, exactly what a SIGKILL between
    // write() calls leaves behind.
    const Status s = write_all(fd_, rec.data(), rec.size() / 2);
    failed_ = true;
    if (!s.ok()) return s;
    return Status(StatusCode::kIoError, "journal torn write (injected)");
  }

  const Status s = write_all(fd_, rec.data(), rec.size());
  if (!s.ok()) return s;
  ++appended_;
  ++since_sync_;
  if (cfg_.fsync == JournalConfig::Fsync::kAlways ||
      (cfg_.fsync == JournalConfig::Fsync::kInterval &&
       since_sync_ >= cfg_.fsync_interval)) {
    return sync();
  }
  return Status::Ok();
}

namespace {

std::string frame_payload(char tag, std::uint64_t arrival,
                          const std::string& frame) {
  std::string p;
  p.reserve(9 + frame.size());
  p.push_back(tag);
  put_u64be(arrival, p);
  p += frame;
  return p;
}

std::string record_payload(const JournalRecord& rec) {
  switch (rec.type) {
    case JournalRecord::Type::kAdmitted:
      return frame_payload('A', rec.arrival, rec.frame);
    case JournalRecord::Type::kSession:
      return frame_payload('S', rec.arrival, rec.frame);
    case JournalRecord::Type::kCompleted: {
      std::string p;
      p.push_back('C');
      put_u64be(rec.arrival, p);
      return p;
    }
    case JournalRecord::Type::kCheckpoint:
      return "K" + rec.frame;
  }
  return "K";  // unreachable
}

void encode_record(const std::string& payload, std::string& out) {
  put_u32be(static_cast<std::uint32_t>(payload.size()), out);
  put_u32be(crc32(payload.data(), payload.size()), out);
  out += payload;
}

}  // namespace

Status Journal::append_admitted(std::uint64_t arrival,
                                const std::string& frame) {
  return append_record(frame_payload('A', arrival, frame));
}

Status Journal::append_session(std::uint64_t arrival,
                               const std::string& frame) {
  return append_record(frame_payload('S', arrival, frame));
}

Status Journal::append_completed(std::uint64_t arrival) {
  std::string p;
  p.push_back('C');
  put_u64be(arrival, p);
  return append_record(p);
}

Status Journal::append_checkpoint() { return append_record("K"); }

Status Journal::compact(const std::string& state,
                        const std::vector<JournalRecord>& retained) {
  if (fd_ < 0) return Status(StatusCode::kIoError, "journal not open");
  if (failed_) {
    return Status(StatusCode::kIoError, "journal failed (torn write)");
  }
  std::string bytes(kMagic, sizeof(kMagic));
  encode_record("K" + state, bytes);  // leading checkpoint marks the compaction
  for (const JournalRecord& rec : retained)
    encode_record(record_payload(rec), bytes);

  const std::string tmp = cfg_.path + ".compact";
  const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tfd < 0) return io_error("journal compact open " + tmp);
  Status s = write_all(tfd, bytes.data(), bytes.size());
  // fsync before the rename regardless of policy: the rename must never
  // become visible ahead of the bytes it points at.
  if (s.ok() && ::fsync(tfd) != 0) s = io_error("journal compact fsync");
  ::close(tfd);
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), cfg_.path.c_str()) != 0) {
    const Status r = io_error("journal compact rename " + cfg_.path);
    ::unlink(tmp.c_str());
    return r;
  }
  // The old fd now points at the unlinked file; reopen the compacted one
  // for further appends.
  ::close(fd_);
  fd_ = ::open(cfg_.path.c_str(), O_RDWR, 0644);
  if (fd_ < 0) return io_error("journal reopen " + cfg_.path);
  if (::lseek(fd_, 0, SEEK_END) < 0) return io_error("journal seek");
  since_sync_ = 0;
  return sync();
}

Status Journal::truncate_all() {
  if (fd_ < 0) return Status(StatusCode::kIoError, "journal not open");
  if (::ftruncate(fd_, static_cast<off_t>(sizeof(kMagic))) != 0) {
    return io_error("journal truncate " + cfg_.path);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    return io_error("journal seek " + cfg_.path);
  }
  since_sync_ = 0;
  return sync();
}

Status Journal::sync() {
  if (fd_ < 0) return Status(StatusCode::kIoError, "journal not open");
  if (cfg_.fsync != JournalConfig::Fsync::kNone && ::fsync(fd_) != 0) {
    return io_error("journal fsync " + cfg_.path);
  }
  since_sync_ = 0;
  return Status::Ok();
}

void Journal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  failed_ = false;
  appended_ = 0;
  since_sync_ = 0;
}

}  // namespace morph::serve
