// Deterministic priority scheduler with admission control and batching.
//
// The scheduler is the serving layer's determinism anchor: every decision it
// makes — admit or reject, which jobs share a batch, the order batches
// dispatch in, and each job's modeled queue latency — is a pure function of
// the job *arrival sequence* (kinds, priorities, estimated costs, virtual
// arrival times, flush positions) plus the measured modeled cycles the
// executor feeds back. Nothing depends on wall-clock time, host workers, or
// the real-time interleaving of pool threads; batch composition and dispatch
// order do not even depend on the pool size. Replaying an arrival order
// therefore reproduces every scheduling decision byte for byte
// (docs/SERVER.md, "Determinism scope").
//
// Mechanics, all driven by the arrival sequence:
//
//  * Virtual time. Job i arrives at virtual cycle A_i: an explicitly
//    declared arrival offset, or A_{i-1} + default_gap_cycles. A_i is
//    monotone.
//  * Admission. A leaky bucket in virtual time: the backlog drains at
//    drain_rate cycles per virtual cycle (a pool-independent "reference
//    server" — pool size must not change admission decisions) and each
//    admitted job deposits its estimated cost. A job whose deposit would
//    push the backlog past queue_cap_cycles is rejected with
//    kAdmissionRejected, as is any single job estimated above
//    max_job_cycles.
//  * Batching. Small jobs (estimate <= small_job_cycles) of the same (kind,
//    priority) accumulate into an open batch; the batch seals when it
//    reaches batch_max jobs, when batch_linger further admissions pass
//    without filling it, or at a flush. Large jobs seal immediately as
//    singletons. Sealing order defines batch ids.
//  * Dispatch. A sealed batch becomes runnable immediately (real execution
//    order is free — results are order-independent); its *virtual*
//    placement is computed by a list-scheduling simulation over `pool`
//    slots: at each step the earliest-free slot takes the best
//    (priority, seal order) batch available at that virtual time. A batch
//    occupies its slot for dispatch_cycles + the sum of its jobs' measured
//    cycles — one dispatch overhead per batch is precisely the shared-launch
//    saving batching exists for.
//  * Emission. advance() walks the simulation as far as measured results
//    and arrival knowledge allow and returns jobs in virtual dispatch
//    order; the server streams results in exactly that order. A placement
//    beyond the latest seen arrival time is only final once a flush
//    guarantees no earlier-priority batch can still arrive.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "serve/job.hpp"
#include "support/status.hpp"

namespace morph::serve {

struct SchedulerConfig {
  std::uint32_t pool = 1;          ///< virtual device slots
  double queue_cap_cycles = 4e9;   ///< leaky-bucket admission cap
  double drain_rate = 1.0;         ///< backlog cycles drained per virtual cycle
  double max_job_cycles = 0.0;     ///< single-job estimate cap; 0 = unlimited
  std::uint32_t batch_max = 8;     ///< jobs per shared launch
  std::uint64_t batch_linger = 16; ///< admissions an open batch survives
  double small_job_cycles = 2e8;   ///< estimate at or below => batchable
  double dispatch_cycles = 20000.0;  ///< per-batch dispatch overhead
  double default_gap_cycles = 0.0;   ///< arrival spacing when undeclared
};

/// A sealed batch, ready for real execution. Jobs are listed in admission
/// order; the whole batch runs as one shared launch on one pool slot.
struct SealedBatch {
  std::uint64_t id = 0;        ///< seal order, dense from 0
  std::uint32_t priority = 0;  ///< dispatch priority (0 = most urgent)
  std::uint64_t seal_seq = 0;  ///< admission seq of the sealing event
  double seal_at = 0.0;        ///< virtual time the batch became runnable
  std::vector<std::uint64_t> jobs;  ///< admission seqs
};

/// Virtual placement of one job, emitted by advance() in dispatch order.
struct JobPlacement {
  std::uint64_t seq = 0;       ///< admission seq
  std::uint64_t batch = 0;     ///< SealedBatch::id
  std::uint32_t batch_size = 0;
  std::uint32_t slot = 0;      ///< pool slot in the virtual schedule
  double arrival_cycles = 0.0;
  double start_cycles = 0.0;   ///< virtual dispatch time of the batch
  double end_cycles = 0.0;     ///< virtual completion time of the batch
  double queue_cycles = 0.0;   ///< start - arrival
};

/// Single-threaded scheduling logic; the server serializes access. See the
/// file comment for the decision rules.
class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig cfg);

  struct Submitted {
    bool accepted = false;
    Status reject;            ///< set when !accepted
    std::uint64_t seq = 0;    ///< admission seq (valid when accepted)
    double arrival_cycles = 0.0;
  };

  /// Processes one arrival. `at_cycles < 0` means "use the default gap".
  /// Sealed batches produced by this arrival (the job's own batch filling
  /// up, or older batches timing out their linger) are appended to the
  /// runnable queue — collect them with take_runnable().
  ///
  /// `deadline_cycles > 0` is a virtual-time latency deadline: the job is
  /// turned away with kDeadlineExceeded when the admission backlog already
  /// implies a start later than arrival + deadline on the pool-independent
  /// reference server (backlog / drain_rate virtual cycles of queued work
  /// ahead of it). Like admission itself, the decision never looks at the
  /// pool, so it is identical at every pool size.
  Submitted submit(JobKind kind, std::uint32_t priority, double est_cycles,
                   double at_cycles = -1.0, double deadline_cycles = 0.0);

  /// Cancels an admitted job that is still in an *open* batch (not yet
  /// sealed). Returns true and forgets the job when it was caught in time;
  /// false when the job already sealed (execution may be underway — the
  /// result will be emitted normally). Determinism: sealing is a pure
  /// function of the arrival sequence, so whether a cancel at arrival
  /// position p catches job s is too.
  bool cancel(std::uint64_t seq);

  /// Seals every open batch and finalizes the epoch: all placements for
  /// batches sealed so far may be emitted even past the latest arrival
  /// time (no earlier arrival can compete with them any more).
  void flush();

  /// Drains batches that became runnable since the last call, in seal
  /// order. Real execution order is the caller's choice; the deterministic
  /// *virtual* order is what advance() computes.
  std::vector<SealedBatch> take_runnable();

  /// Feeds back the measured modeled cycles of a batch's jobs (same order
  /// as SealedBatch::jobs).
  void record_measured(std::uint64_t batch_id,
                       const std::vector<double>& job_cycles);

  /// Advances the virtual placement simulation as far as it can and
  /// returns newly placed jobs in virtual dispatch order.
  std::vector<JobPlacement> advance();

  /// Serializes the scheduler's residual state (virtual clock, admission
  /// counters, leaky-bucket deposits, slot ready times) into a byte-stable
  /// blob for a journal checkpoint. Only valid at *quiescence* — no admitted
  /// job awaiting seal, execution, or placement (MORPH_CHECKed): at that
  /// point this blob plus the post-checkpoint arrival suffix reproduces
  /// every later decision, which is what lets checkpoint compaction drop
  /// the completed journal prefix without breaking replay byte-identity.
  std::string checkpoint_blob() const;

  /// Restores a checkpoint_blob() snapshot into a freshly constructed
  /// scheduler. Returns false (leaving the scheduler fresh) on a malformed
  /// blob or a pool-size mismatch — an operator who resizes the pool across
  /// a restart opts out of cross-restart continuity.
  bool restore_blob(const std::string& blob);

  // --- introspection ---
  const SchedulerConfig& config() const { return cfg_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t batches_sealed() const { return next_batch_id_; }
  std::uint64_t placed() const { return placed_jobs_; }
  double backlog_cycles() const { return bucket_; }
  double latest_arrival() const { return last_at_; }
  std::uint64_t deadline_rejected() const { return deadline_rejected_; }
  std::uint64_t cancelled() const { return cancelled_; }

 private:
  struct JobEntry {
    JobKind kind;
    std::uint32_t priority;
    double est_cycles;
    double arrival_cycles;
  };
  struct OpenBatch {
    std::uint64_t first_seq = 0;  ///< admission seq that opened it
    std::vector<std::uint64_t> jobs;
  };
  struct PendingBatch {
    SealedBatch sealed;
    std::vector<double> measured;  ///< empty until record_measured
    bool has_measured = false;
  };

  void seal(JobKind kind, std::uint32_t priority, OpenBatch&& open);
  void seal_lingering();

  SchedulerConfig cfg_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t deadline_rejected_ = 0;
  std::uint64_t cancelled_ = 0;
  double last_at_ = 0.0;
  double bucket_ = 0.0;
  bool saw_arrival_ = false;
  /// Live leaky-bucket deposits in admission order: (seq, remaining
  /// cycles). bucket_ caches their sum. Drain consumes front-first, so a
  /// cancel can subtract exactly the cancelled job's *undrained* remainder —
  /// refunding the full estimate would eat into other live jobs' deposits
  /// and skew the backlog the deadline_model_ms admission check reads.
  std::deque<std::pair<std::uint64_t, double>> deposits_;

  std::map<std::uint64_t, JobEntry> jobs_;  ///< admitted, not yet placed
  /// Open batches keyed by (priority, kind) — the batching compatibility
  /// class. std::map keeps linger sweeps deterministic.
  std::map<std::pair<std::uint32_t, JobKind>, OpenBatch> open_;

  std::uint64_t next_batch_id_ = 0;
  std::vector<SealedBatch> runnable_;         ///< not yet taken by the server
  std::map<std::uint64_t, PendingBatch> pending_;  ///< sealed, not yet placed
  /// Batches with id < this were sealed before the last flush: their
  /// placements are final even beyond the latest arrival time.
  std::uint64_t flush_watermark_ = 0;

  std::vector<double> slot_ready_;  ///< virtual ready time per pool slot
  std::uint64_t placed_jobs_ = 0;
};

}  // namespace morph::serve
