#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/check.hpp"

namespace morph::serve {

using telemetry::Json;

namespace {

Status io_error(const std::string& what) {
  return Status(StatusCode::kIoError, what + ": " + std::strerror(errno));
}

Status write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a vanished peer must surface as kIoError, not SIGPIPE.
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return io_error("write");
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return Status::Ok();
}

Status read_all(int fd, char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::read(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return io_error("read");
    }
    if (r == 0) return Status(StatusCode::kIoError, "connection closed");
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return Status::Ok();
}

void put_u32be(std::uint32_t v, char out[4]) {
  out[0] = static_cast<char>(v >> 24);
  out[1] = static_cast<char>(v >> 16);
  out[2] = static_cast<char>(v >> 8);
  out[3] = static_cast<char>(v);
}

std::uint32_t get_u32be(const char in[4]) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[3]));
}

Status parse_payload(const std::string& text, Json* out) {
  try {
    *out = Json::parse(text);
  } catch (const CheckError& e) {
    return Status(StatusCode::kBadRequest,
                  std::string("malformed frame payload: ") + e.what());
  }
  if (!out->is_object()) {
    return Status(StatusCode::kBadRequest, "frame payload must be an object");
  }
  return Status::Ok();
}

}  // namespace

std::string encode_frame(const Json& msg) {
  const std::string payload = msg.dump();
  MORPH_CHECK_MSG(payload.size() <= kMaxFrameBytes, "frame too large");
  std::string out;
  out.resize(4);
  put_u32be(static_cast<std::uint32_t>(payload.size()), out.data());
  out += payload;
  return out;
}

Status write_frame(int fd, const Json& msg) {
  const std::string frame = encode_frame(msg);
  return write_all(fd, frame.data(), frame.size());
}

Status read_frame(int fd, Json* out) {
  char hdr[4];
  Status s = read_all(fd, hdr, 4);
  if (!s.ok()) return s;
  const std::uint32_t len = get_u32be(hdr);
  if (len > kMaxFrameBytes) {
    return Status(StatusCode::kBadRequest, "frame length exceeds limit");
  }
  std::string payload(len, '\0');
  if (!(s = read_all(fd, payload.data(), len)).ok()) return s;
  return parse_payload(payload, out);
}

Status FrameDecoder::poll(Json* out, bool* have) {
  *have = false;
  if (buf_.size() < 4) return Status::Ok();
  const std::uint32_t len = get_u32be(buf_.data());
  if (len > kMaxFrameBytes) {
    return Status(StatusCode::kBadRequest, "frame length exceeds limit");
  }
  if (buf_.size() < 4 + static_cast<std::size_t>(len)) return Status::Ok();
  const Status s = parse_payload(buf_.substr(4, len), out);
  buf_.erase(0, 4 + static_cast<std::size_t>(len));
  if (s.ok()) *have = true;
  return s;
}

Status listen_unix(const std::string& path, int* fd_out) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status(StatusCode::kIoError, "socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  // A socket file may be left behind by a crashed (SIGKILLed) server. Probe
  // it with a connect before unlinking: a live listener answers (address in
  // use — refuse to steal it), a dead one refuses the connection (stale —
  // safe to remove), a missing file means a clean start.
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe < 0) return io_error("socket");
  if (::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0) {
    ::close(probe);
    return Status(StatusCode::kIoError,
                  path + " already has a live server listening");
  }
  const int probe_errno = errno;
  ::close(probe);
  if (probe_errno == ECONNREFUSED) {
    ::unlink(path.c_str());  // confirmed stale: no listener behind the file
  } else if (probe_errno != ENOENT) {
    // Some other obstruction (a regular file, permissions, ...): let bind
    // report it rather than destroy something we don't understand.
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return io_error("socket");
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s = io_error("bind " + path);
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) < 0) {
    const Status s = io_error("listen " + path);
    ::close(fd);
    return s;
  }
  *fd_out = fd;
  return Status::Ok();
}

Status connect_unix(const std::string& path, int* fd_out) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status(StatusCode::kIoError, "socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return io_error("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s = io_error("connect " + path);
    ::close(fd);
    return s;
  }
  *fd_out = fd;
  return Status::Ok();
}

}  // namespace morph::serve
