// Job execution for the morph job server.
//
// Each job runs on a freshly constructed gpu::Device configured from the
// server's base DeviceConfig plus the job's own isolation state: its own
// TraceSink (when requested), its own parsed fault campaign, and its own
// app-level invariant gate. This is the pool-isolation contract: a job that
// faults, exhausts its recovery ladder, or fails validation produces a typed
// morph::Status outcome and leaves nothing behind — no shared device state,
// no shared worklists, no shared injector counters — so concurrent jobs on
// the same pool are byte-identical to solo runs.
//
// Results and modeled stats are a pure function of (JobSpec, DeviceConfig):
// inputs are generated from the spec's seed and the simulator's stats are
// bit-identical for any host_workers value, which is what lets the serving
// layer promise byte-identical replays across pool sizes.
#pragma once

#include <cstdint>
#include <vector>

#include "gpu/config.hpp"
#include "serve/job.hpp"

namespace morph::serve {

/// Executes one job to completion (or typed failure). Never throws: fault
/// exhaustion, invariant violations, and bad fault specs all come back as
/// JobOutcome::status.
JobOutcome run_job(const JobRequest& req, const gpu::DeviceConfig& base);

/// Deterministic a-priori cost estimate in modeled cycles, used by the
/// scheduler for admission control and small-job batching. Intentionally
/// coarse (a real admission controller cannot know true cost either); only
/// relative magnitude matters.
double estimate_job_cycles(const JobSpec& spec);

/// Effective secondary size: pta constraints (default 1.3x vars) and mst
/// undirected edges (default 2x nodes).
std::uint64_t resolved_size2(const JobSpec& spec);

/// Per-virtual-slot fault bookkeeping: a slot whose jobs fail `threshold`
/// times in a row is quarantined (flagged unhealthy in stats; jobs still
/// run — the pool is simulated, so quarantine is an observability signal,
/// not a placement constraint). Fed in *virtual dispatch order* by the
/// server as placements are emitted, never by racy worker threads, so the
/// quarantine set is a pure function of the arrival sequence and identical
/// at every pool size that yields the same placements (docs/SERVER.md).
class QuarantinePool {
 public:
  QuarantinePool() = default;
  QuarantinePool(std::uint32_t slots, std::uint32_t threshold);

  /// Records one job outcome on `slot` (in virtual dispatch order).
  void record(std::uint32_t slot, bool ok);

  std::uint32_t quarantined() const { return quarantined_; }
  bool is_quarantined(std::uint32_t slot) const;
  std::uint32_t threshold() const { return threshold_; }

 private:
  std::uint32_t threshold_ = 0;  ///< 0 disables quarantine
  std::uint32_t quarantined_ = 0;
  std::vector<std::uint32_t> consecutive_faults_;
  std::vector<bool> flagged_;
};

}  // namespace morph::serve
