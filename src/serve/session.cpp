#include "serve/session.hpp"

#include <cstdio>
#include <utility>
#include <vector>

namespace morph::serve {

using telemetry::Json;

namespace {

Status bad(const std::string& msg) {
  return Status(StatusCode::kBadRequest, msg);
}

/// Strict key whitelist, mirroring JobRequest::from_json: a typo in a
/// session frame must not silently change the workload.
Status check_keys(const Json& msg, std::initializer_list<const char*> allowed,
                  const char* what) {
  for (const auto& [key, value] : msg.items()) {
    (void)value;
    bool ok = false;
    for (const char* a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    if (!ok) return bad(std::string(what) + ": unknown key \"" + key + "\"");
  }
  return Status::Ok();
}

bool get_count(const Json& msg, const char* key, std::uint64_t* out) {
  const Json* v = msg.find(key);
  if (v == nullptr || !v->is_number()) return false;
  const std::int64_t n = v->as_int();
  if (n < 1 || static_cast<std::uint64_t>(n) > Session::kMaxElements) {
    return false;
  }
  *out = static_cast<std::uint64_t>(n);
  return true;
}

/// One positional update row: an array of exactly `width` non-negative
/// integers.
Status parse_row(const Json& row, std::size_t index, std::size_t width,
                 std::uint64_t* out) {
  if (!row.is_array() || row.size() != width) {
    return bad("session-update.updates[" + std::to_string(index) +
               "] must be an array of " + std::to_string(width) + " numbers");
  }
  for (std::size_t i = 0; i < width; ++i) {
    const Json& cell = row.at(i);
    if (!cell.is_number() || cell.as_int() < 0) {
      return bad("session-update.updates[" + std::to_string(index) +
                 "] entries must be non-negative numbers");
    }
    out[i] = static_cast<std::uint64_t>(cell.as_int());
  }
  return Status::Ok();
}

}  // namespace

Session::Session(std::string name, std::string kind, std::uint32_t slot,
                 const gpu::DeviceConfig& dev_cfg)
    : name_(std::move(name)),
      kind_(std::move(kind)),
      slot_(slot),
      dev_(dev_cfg) {}

Status Session::Open(const Json& msg, std::uint32_t slot,
                     const gpu::DeviceConfig& dev_cfg,
                     std::unique_ptr<Session>* out) {
  Status s = check_keys(
      msg, {"type", "id", "arrival", "session", "kind", "nodes", "vars"},
      "session-open");
  if (!s.ok()) return s;
  const Json* kind = msg.find("kind");
  if (kind == nullptr || !kind->is_string()) {
    return bad("session-open.kind must be \"mst\" or \"pta\"");
  }
  const std::string k = kind->as_string();
  std::uint64_t n = 0;
  if (k == "mst") {
    if (!get_count(msg, "nodes", &n)) {
      return bad("session-open.nodes must be a number in [1, " +
                 std::to_string(kMaxElements) + "]");
    }
  } else if (k == "pta") {
    if (!get_count(msg, "vars", &n)) {
      return bad("session-open.vars must be a number in [1, " +
                 std::to_string(kMaxElements) + "]");
    }
  } else {
    return bad("session-open.kind must be \"mst\" or \"pta\"");
  }
  const Json* name = msg.find("session");
  auto sess = std::unique_ptr<Session>(
      new Session(name->as_string(), k, slot, dev_cfg));
  if (k == "mst") {
    sess->mst_ = std::make_unique<mst::MstState>(mst::make_mst_state(
        static_cast<std::uint32_t>(n), {}, sess->dev_));
  } else {
    sess->pta_ = std::make_unique<pta::PtaState>(
        pta::make_pta_state(static_cast<std::uint32_t>(n)));
  }
  *out = std::move(sess);
  return Status::Ok();
}

Status Session::Update(const Json& msg, Json* reply) {
  Status s = check_keys(msg, {"type", "id", "arrival", "session", "updates"},
                        "session-update");
  if (!s.ok()) return s;
  const Json* updates = msg.find("updates");
  if (updates == nullptr || !updates->is_array() || updates->size() == 0) {
    return bad("session-update.updates must be a non-empty array");
  }

  // Parse and validate the whole batch before touching any state: a bad row
  // must not leave half a batch applied.
  std::vector<mst::EdgeUpdate> mst_batch;
  std::vector<pta::Constraint> pta_batch;
  if (mst_) {
    const std::uint64_t n = mst_->n;
    mst_batch.reserve(updates->size());
    for (std::size_t i = 0; i < updates->size(); ++i) {
      std::uint64_t row[4];
      s = parse_row(updates->at(i), i, 4, row);
      if (!s.ok()) return s;
      if (row[0] > 1) {
        return bad("session-update.updates[" + std::to_string(i) +
                   "][0] must be 1 (insert) or 0 (delete)");
      }
      if (row[1] >= n || row[2] >= n) {
        return bad("session-update.updates[" + std::to_string(i) +
                   "] endpoint out of range (nodes=" + std::to_string(n) +
                   ")");
      }
      if (row[3] > 0xFFFFFFFFull) {
        return bad("session-update.updates[" + std::to_string(i) +
                   "] weight does not fit 32 bits");
      }
      mst_batch.push_back(mst::EdgeUpdate{
          row[0] == 1, static_cast<graph::Node>(row[1]),
          static_cast<graph::Node>(row[2]), static_cast<graph::Weight>(row[3])});
    }
  } else {
    const std::uint64_t n = pta_->cs.num_vars;
    pta_batch.reserve(updates->size());
    for (std::size_t i = 0; i < updates->size(); ++i) {
      std::uint64_t row[3];
      s = parse_row(updates->at(i), i, 3, row);
      if (!s.ok()) return s;
      if (row[0] > 3) {
        return bad("session-update.updates[" + std::to_string(i) +
                   "][0] must be a constraint kind in 0..3");
      }
      if (row[1] >= n || row[2] >= n) {
        return bad("session-update.updates[" + std::to_string(i) +
                   "] variable out of range (vars=" + std::to_string(n) + ")");
      }
      pta_batch.push_back(pta::Constraint{
          static_cast<pta::ConstraintKind>(row[0]),
          static_cast<pta::Var>(row[1]), static_cast<pta::Var>(row[2])});
    }
  }

  const gpu::DeviceStats base = dev_.stats();
  Json outputs = Json::object();
  if (mst_) {
    const mst::MstResult res = mst::apply_updates(*mst_, mst_batch, dev_);
    outputs.set("total_weight", res.total_weight);
    outputs.set("tree_edges", res.tree_edges);
    outputs.set("components", static_cast<std::int64_t>(res.components));
    outputs.set("rounds", res.rounds);
    outputs.set("delta_edges", static_cast<std::uint64_t>(res.edges.size()));
    updates_ += mst_batch.size();
  } else {
    const pta::PtaDelta d = pta::apply_updates(*pta_, pta_batch, dev_);
    outputs.set("pts_total", d.pts_total);
    outputs.set("pts_added", d.pts_added);
    outputs.set("edges_added", d.edges_added);
    outputs.set("rounds", d.rounds);
    updates_ += pta_batch.size();
  }
  reply->set("outputs", outputs);
  reply->set("exec",
             JobExecStats::from_stats(dev_.stats().delta_since(base)).to_json());
  reply->set("digest", digest_hex());
  return Status::Ok();
}

std::string Session::digest_hex() const {
  const std::uint64_t d =
      mst_ ? mst::state_digest(*mst_) : pta::state_digest(*pta_);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(d));
  return std::string(buf);
}

}  // namespace morph::serve
