// Write-ahead journal for the morph job server (docs/SERVER.md,
// "Durability & operations").
//
// The serving layer is deterministic: the admitted arrival sequence fully
// determines admission decisions, batch composition, placement, and every
// per-job result. That makes crash recovery cheap and provable — persist the
// admitted frames, replay them after a restart, and the recovered replies
// must equal the uninterrupted run byte for byte. The journal is that
// persistence: an append-only file the server writes one record to *before*
// acting on each gate-admitted frame (WAL discipline), plus completion
// markers after a job's reply frame has been handed to the writer, so
// recovery knows which replies the old process already emitted.
//
// On-disk format (all integers big-endian):
//
//   file   := magic records*
//   magic  := "MWALJRN1"                      (8 bytes)
//   record := u32 payload_len | u32 crc32(payload) | payload
//   payload:
//     'A' u64 arrival  frame-json-bytes       admitted frame (submit/flush/
//                                             cancel), exactly as received
//     'S' u64 arrival  frame-json-bytes       admitted *session* frame
//                                             (session-open/-update/-close);
//                                             kept across compaction while
//                                             its session stays open, because
//                                             recovery re-executes the whole
//                                             session history to rebuild the
//                                             persistent device state
//     'C' u64 arrival                         completion: the reply for this
//                                             arrival reached the writer
//     'K' state-bytes*                        checkpoint: everything before
//                                             this record is complete AND
//                                             emitted; recovery skips it.
//                                             compact() writes it as the
//                                             first record of the rewritten
//                                             file, carrying the server's
//                                             opaque checkpoint state (gate
//                                             high-water mark + scheduler
//                                             snapshot) so replay of the
//                                             retained suffix continues the
//                                             pre-checkpoint epoch exactly
//
// A crash can tear the last record (short write); scan() tolerates exactly
// that — a record whose length prefix, payload, or checksum does not fully
// check out ends the scan and is reported as `torn_tail`, and opening the
// journal for append truncates the file back to the last valid byte. A torn
// record anywhere else is indistinguishable from a torn tail by construction:
// appends are sequential, so bytes after a torn record can only exist if the
// disk reordered writes across an fsync barrier, which the fsync policy is
// there to prevent.
//
// Fsync policy: kAlways fsyncs after every record (the durability the crash
// campaign asserts), kInterval every N records, kNone leaves flushing to the
// OS (fastest; a crash may lose the tail, which recovery tolerates but the
// byte-identity guarantee then only covers what reached the disk).
//
// Fault injection: a `journal` fault clause (resilience grammar) makes the
// Nth append write only half its record and then fail the journal — the
// deterministic stand-in for "the process died mid-append" that the
// torn-tail tests are built on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "resilience/fault.hpp"
#include "support/status.hpp"

namespace morph::serve {

struct JournalConfig {
  std::string path;
  enum class Fsync : std::uint8_t { kNone, kAlways, kInterval };
  Fsync fsync = Fsync::kAlways;
  std::uint64_t fsync_interval = 64;  ///< records per fsync under kInterval
  /// Completions between checkpoints. Each checkpoint compacts the journal
  /// (rewrite-and-rename keeping only the uncompleted suffix plus open
  /// sessions), bounding a long-lived server's journal. 0 disables.
  std::uint64_t checkpoint_every = 4096;
  /// Optional deterministic torn-write campaign (`journal` fault class).
  /// Not owned; may be nullptr.
  const resilience::FaultPlan* faults = nullptr;
};

/// Parses "none" | "always" | a positive record count (=> kInterval).
/// Returns false on anything else.
bool parse_fsync_policy(const std::string& s, JournalConfig* cfg);

struct JournalRecord {
  enum class Type : std::uint8_t {
    kAdmitted,
    kSession,
    kCompleted,
    kCheckpoint,
  };
  Type type = Type::kAdmitted;
  std::uint64_t arrival = 0;  ///< meaningless for kCheckpoint
  std::string frame;          ///< raw frame JSON (kAdmitted/kSession only)
};

/// Result of scanning a journal file.
struct JournalScan {
  std::vector<JournalRecord> records;  ///< records after the last checkpoint
  /// State bytes of the last checkpoint record (empty when the journal has
  /// no checkpoint, or a bare legacy 'K').
  std::string checkpoint_state;
  bool torn_tail = false;       ///< the file ended inside a record
  std::uint64_t valid_bytes = 0;  ///< file prefix covered by valid records
  std::uint64_t file_bytes = 0;
};

class Journal {
 public:
  Journal() = default;
  ~Journal() { close(); }
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Reads every valid record of the journal at `path`. A missing file is
  /// not an error (empty scan); a bad magic or unreadable file is kIoError.
  static Status scan(const std::string& path, JournalScan* out);

  /// Opens (creating if absent) the journal for appending. When the file
  /// already holds records, `valid_bytes` from a prior scan says where the
  /// valid prefix ends — anything beyond it (a torn tail) is truncated away.
  Status open(const JournalConfig& cfg, std::uint64_t valid_bytes = 0);

  bool is_open() const { return fd_ >= 0; }

  Status append_admitted(std::uint64_t arrival, const std::string& frame);
  Status append_session(std::uint64_t arrival, const std::string& frame);
  Status append_completed(std::uint64_t arrival);
  /// Appends a checkpoint record: every record before it is complete and
  /// its reply emitted. Recovery resumes after the last checkpoint.
  Status append_checkpoint();
  /// Checkpoint compaction: atomically rewrites the journal as
  /// magic | 'K'+state | `retained`, via a temp file, fsync, and rename — a
  /// crash on either side of the rename leaves a fully valid journal. The
  /// caller passes the opaque checkpoint state bytes (surfaced again by
  /// scan() as `checkpoint_state`) and the records recovery still needs
  /// (uncompleted frames plus open sessions' history, with their completion
  /// markers), in arrival order.
  Status compact(const std::string& state,
                 const std::vector<JournalRecord>& retained);
  /// Drain-time truncation: the queue is empty and every reply is out, so
  /// the whole history can be dropped. Resets the file to just the magic.
  Status truncate_all();

  /// Flushes pending bytes to disk regardless of policy.
  Status sync();

  void close();

  std::uint64_t records_appended() const { return appended_; }

 private:
  Status append_record(const std::string& payload);

  JournalConfig cfg_;
  int fd_ = -1;
  bool failed_ = false;  ///< a torn (injected) write wedged the journal
  std::uint64_t appended_ = 0;
  std::uint64_t since_sync_ = 0;
  resilience::FaultInjector injector_{resilience::FaultPlan{}};
  bool inject_ = false;
};

}  // namespace morph::serve
