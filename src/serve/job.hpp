// Job model of the morph job server (docs/SERVER.md).
//
// A job is one morph workload — refine a mesh (dmr), run a survey (sp),
// solve a constraint set (pta), contract a graph (mst) — described entirely
// by a small deterministic spec: kind, sizes, and a seed. Inputs are
// generated server-side from the spec (the repo's benches do the same), so
// a job's result and its modeled execution stats are a pure function of
// (spec, device configuration) — the property every serving-layer
// determinism gate rests on: replaying a job list must reproduce results
// byte for byte regardless of pool size, host workers, or real-time
// interleaving.
//
// Requests and results round-trip through the telemetry JSON model
// (telemetry/json.hpp), which prints numbers deterministically; the
// length-prefixed wire framing lives in serve/protocol.hpp.
#pragma once

#include <cstdint>
#include <string>

#include "gpu/stats.hpp"
#include "support/status.hpp"
#include "telemetry/json.hpp"

namespace morph::serve {

enum class JobKind : std::uint8_t {
  kDmr = 0,  ///< Delaunay mesh refinement (dmr::refine_gpu)
  kSp,       ///< survey propagation, fixed sweep workload (sp::solve_gpu)
  kPta,      ///< points-to constraint solving (pta::solve_gpu)
  kMst,      ///< Boruvka spanning-forest contraction (mst::mst_gpu)
};

inline constexpr std::size_t kNumJobKinds = 4;

const char* job_kind_name(JobKind k);
bool parse_job_kind(const std::string& s, JobKind* out);

/// Deterministic description of one workload. `size`/`size2` are
/// kind-specific (see the field comments); everything a job computes is a
/// function of this struct plus the server's device configuration.
struct JobSpec {
  JobKind kind = JobKind::kDmr;
  /// dmr: target triangles; sp: literals; pta: variables; mst: nodes.
  std::uint64_t size = 1000;
  /// pta: constraints (0 = 1.3x vars); mst: undirected edges (0 = 2x nodes).
  std::uint64_t size2 = 0;
  std::uint32_t k = 3;        ///< sp: clause width (3..6)
  std::uint32_t sweeps = 8;   ///< sp: survey sweeps per decimation phase
  std::uint32_t phases = 2;   ///< sp: decimation phases
  std::uint64_t seed = 1;     ///< input-generator seed
  /// Run the app-level invariant gate on the result (mesh validity /
  /// verify_forest / pta::check_solution / sp assignment check).
  bool validate = false;
  /// Optional latency deadline in modeled milliseconds (0 = none). Enforced
  /// by the scheduler in *virtual time* against the pool-independent
  /// reference server: a job whose admission backlog already implies a start
  /// past arrival + deadline is turned away with kDeadlineExceeded — the
  /// same decision at every pool size (docs/SERVER.md).
  double deadline_model_ms = 0.0;

  /// Stable one-line signature ("dmr/size=800/seed=3"); identical specs
  /// produce identical results, so the load test uses this to group replay
  /// cohorts when checking for pool poisoning.
  std::string signature() const;

  telemetry::Json to_json() const;
  /// Parses the wire "params" object. Unknown keys are rejected (typos in a
  /// job spec must not silently change the workload). Returns kBadRequest
  /// with a pointed message on any malformed field.
  static Status from_json(const telemetry::Json& doc, JobKind kind,
                          JobSpec* out);
};

/// One submission as it travels client -> server.
struct JobRequest {
  std::uint64_t id = 0;       ///< client-scoped id, echoed on every reply
  std::uint32_t priority = 3; ///< 0 = most urgent .. 7 = background
  JobSpec spec;
  std::string faults;         ///< per-job --faults spec ("" = none)
  std::uint64_t fault_seed = 1;
  bool trace = false;         ///< attach a per-job TraceSink

  telemetry::Json to_json() const;  ///< the full "submit" message body
  static Status from_json(const telemetry::Json& doc, JobRequest* out);
};

inline constexpr std::uint32_t kMaxPriority = 7;

/// Modeled execution statistics of one job: the DeviceStats of the device
/// the job ran on, integer-exact so serialized results are byte-comparable.
struct JobExecStats {
  std::uint64_t launches = 0;
  std::uint64_t barriers = 0;
  std::uint64_t total_work = 0;
  std::uint64_t warp_steps = 0;
  std::uint64_t atomics = 0;
  std::uint64_t global_accesses = 0;
  std::uint64_t device_mallocs = 0;
  std::uint64_t reallocs = 0;
  std::uint64_t bytes_allocated = 0;
  std::uint64_t bytes_copied = 0;
  std::uint64_t wl_local_ops = 0;
  std::uint64_t wl_contended_ops = 0;
  std::uint64_t wl_steals = 0;
  std::uint64_t wl_spills = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_recovered = 0;
  double modeled_cycles = 0.0;

  /// Lifts a DeviceStats (or a DeviceStats::delta_since difference, for
  /// session updates on a persistent device) into the wire shape.
  static JobExecStats from_stats(const gpu::DeviceStats& st);

  telemetry::Json to_json() const;
};

/// Outcome of executing one job (serve/executor.hpp). Everything here is
/// pool-size- and host-worker-independent; the serving-layer placement
/// (batch, slot, virtual queue latency) is attached separately by the
/// scheduler when the result is emitted.
struct JobOutcome {
  Status status;               ///< ok, or the typed failure that stopped it
  telemetry::Json outputs = telemetry::Json::object();  ///< kind-specific
  JobExecStats exec;
  std::uint64_t trace_events = 0;  ///< per-job TraceSink volume (if armed)
  double wall_seconds = 0.0;       ///< informational; never serialized into
                                   ///< determinism-gated artifacts

  bool ok() const { return status.ok(); }
};

}  // namespace morph::serve
