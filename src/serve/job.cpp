#include "serve/job.hpp"

#include <sstream>

#include "support/check.hpp"

namespace morph::serve {

using telemetry::Json;

const char* job_kind_name(JobKind k) {
  switch (k) {
    case JobKind::kDmr: return "dmr";
    case JobKind::kSp: return "sp";
    case JobKind::kPta: return "pta";
    case JobKind::kMst: return "mst";
  }
  return "unknown";
}

bool parse_job_kind(const std::string& s, JobKind* out) {
  if (s == "dmr") {
    *out = JobKind::kDmr;
  } else if (s == "sp") {
    *out = JobKind::kSp;
  } else if (s == "pta") {
    *out = JobKind::kPta;
  } else if (s == "mst") {
    *out = JobKind::kMst;
  } else {
    return false;
  }
  return true;
}

std::string JobSpec::signature() const {
  std::ostringstream os;
  os << job_kind_name(kind) << "/size=" << size;
  if (size2 != 0) os << "/size2=" << size2;
  if (kind == JobKind::kSp) {
    os << "/k=" << k << "/sweeps=" << sweeps << "/phases=" << phases;
  }
  os << "/seed=" << seed;
  if (validate) os << "/validate";
  if (deadline_model_ms > 0.0) os << "/deadline=" << deadline_model_ms;
  return os.str();
}

Json JobSpec::to_json() const {
  Json o = Json::object();
  o.set("size", size);
  if (size2 != 0) o.set("size2", size2);
  if (kind == JobKind::kSp) {
    o.set("k", static_cast<std::int64_t>(k));
    o.set("sweeps", static_cast<std::int64_t>(sweeps));
    o.set("phases", static_cast<std::int64_t>(phases));
  }
  o.set("seed", seed);
  if (validate) o.set("validate", true);
  if (deadline_model_ms > 0.0) o.set("deadline_model_ms", deadline_model_ms);
  return o;
}

namespace {

Status bad(const std::string& what) {
  return Status(StatusCode::kBadRequest, what);
}

Status take_u64(const Json& doc, const std::string& key, std::uint64_t dflt,
                std::uint64_t* out) {
  const Json* v = doc.find(key);
  if (v == nullptr) {
    *out = dflt;
    return Status::Ok();
  }
  if (!v->is_number() || v->as_double() < 0) {
    return bad("params." + key + " must be a non-negative integer");
  }
  *out = static_cast<std::uint64_t>(v->as_int());
  return Status::Ok();
}

}  // namespace

Status JobSpec::from_json(const Json& doc, JobKind kind_in, JobSpec* out) {
  if (!doc.is_object()) return bad("params must be an object");
  *out = JobSpec{};
  out->kind = kind_in;
  static const char* const kKnown[] = {
      "size",   "size2", "k",        "sweeps",
      "phases", "seed",  "validate", "deadline_model_ms"};
  for (const auto& [key, value] : doc.items()) {
    (void)value;
    bool known = false;
    for (const char* kk : kKnown) known = known || key == kk;
    if (!known) return bad("unknown params key \"" + key + "\"");
  }
  Status s;
  if (!(s = take_u64(doc, "size", out->size, &out->size)).ok()) return s;
  if (out->size == 0) return bad("params.size must be positive");
  if (!(s = take_u64(doc, "size2", 0, &out->size2)).ok()) return s;
  std::uint64_t v = 0;
  if (!(s = take_u64(doc, "k", out->k, &v)).ok()) return s;
  if (kind_in == JobKind::kSp && (v < 3 || v > 6)) {
    return bad("params.k must be in 3..6");
  }
  out->k = static_cast<std::uint32_t>(v);
  if (!(s = take_u64(doc, "sweeps", out->sweeps, &v)).ok()) return s;
  out->sweeps = static_cast<std::uint32_t>(v);
  if (!(s = take_u64(doc, "phases", out->phases, &v)).ok()) return s;
  out->phases = static_cast<std::uint32_t>(v);
  if (!(s = take_u64(doc, "seed", out->seed, &out->seed)).ok()) return s;
  if (const Json* b = doc.find("validate")) {
    if (b->type() != Json::Type::kBool) {
      return bad("params.validate must be a boolean");
    }
    out->validate = b->as_bool();
  }
  if (const Json* d = doc.find("deadline_model_ms")) {
    if (!d->is_number() || d->as_double() < 0.0) {
      return bad("params.deadline_model_ms must be a non-negative number");
    }
    out->deadline_model_ms = d->as_double();
  }
  return Status::Ok();
}

Json JobRequest::to_json() const {
  Json o = Json::object();
  o.set("type", "submit");
  o.set("id", id);
  o.set("kind", job_kind_name(spec.kind));
  o.set("priority", static_cast<std::int64_t>(priority));
  o.set("params", spec.to_json());
  if (!faults.empty()) {
    o.set("faults", faults);
    o.set("fault_seed", fault_seed);
  }
  if (trace) o.set("trace", true);
  return o;
}

Status JobRequest::from_json(const Json& doc, JobRequest* out) {
  if (!doc.is_object()) return bad("submit message must be an object");
  *out = JobRequest{};
  const Json* id = doc.find("id");
  if (id == nullptr || !id->is_number()) {
    return bad("submit.id must be a number");
  }
  out->id = static_cast<std::uint64_t>(id->as_int());
  const Json* kind = doc.find("kind");
  if (kind == nullptr || !kind->is_string() ||
      !parse_job_kind(kind->as_string(), &out->spec.kind)) {
    return bad("submit.kind must be one of dmr, sp, pta, mst");
  }
  if (const Json* p = doc.find("priority")) {
    if (!p->is_number() || p->as_double() < 0 ||
        p->as_int() > static_cast<std::int64_t>(kMaxPriority)) {
      return bad("submit.priority must be in 0..7");
    }
    out->priority = static_cast<std::uint32_t>(p->as_int());
  }
  const Json* params = doc.find("params");
  const Json empty = Json::object();
  Status s = JobSpec::from_json(params != nullptr ? *params : empty,
                                out->spec.kind, &out->spec);
  if (!s.ok()) return s;
  if (const Json* f = doc.find("faults")) {
    if (!f->is_string()) return bad("submit.faults must be a string");
    out->faults = f->as_string();
  }
  std::uint64_t fs = 1;
  if (!(s = take_u64(doc, "fault_seed", 1, &fs)).ok()) return s;
  out->fault_seed = fs;
  if (const Json* t = doc.find("trace")) {
    if (t->type() != Json::Type::kBool) {
      return bad("submit.trace must be a boolean");
    }
    out->trace = t->as_bool();
  }
  return Status::Ok();
}

JobExecStats JobExecStats::from_stats(const gpu::DeviceStats& st) {
  JobExecStats out;
  out.launches = st.launches;
  out.barriers = st.barriers;
  out.total_work = st.total_work;
  out.warp_steps = st.warp_steps;
  out.atomics = st.atomics;
  out.global_accesses = st.global_accesses;
  out.device_mallocs = st.device_mallocs;
  out.reallocs = st.reallocs;
  out.bytes_allocated = st.bytes_allocated;
  out.bytes_copied = st.bytes_copied;
  out.wl_local_ops = st.wl_local_ops;
  out.wl_contended_ops = st.wl_contended_ops;
  out.wl_steals = st.wl_steals;
  out.wl_spills = st.wl_spills;
  out.faults_injected = st.faults_injected;
  out.faults_recovered = st.faults_recovered;
  out.modeled_cycles = st.modeled_cycles;
  return out;
}

Json JobExecStats::to_json() const {
  Json o = Json::object();
  o.set("modeled_cycles", modeled_cycles);
  o.set("launches", launches);
  o.set("barriers", barriers);
  o.set("total_work", total_work);
  o.set("warp_steps", warp_steps);
  o.set("atomics", atomics);
  o.set("global_accesses", global_accesses);
  o.set("device_mallocs", device_mallocs);
  o.set("reallocs", reallocs);
  o.set("bytes_allocated", bytes_allocated);
  o.set("bytes_copied", bytes_copied);
  o.set("wl_local_ops", wl_local_ops);
  o.set("wl_contended_ops", wl_contended_ops);
  o.set("wl_steals", wl_steals);
  o.set("wl_spills", wl_spills);
  o.set("faults_injected", faults_injected);
  o.set("faults_recovered", faults_recovered);
  return o;
}

}  // namespace morph::serve
