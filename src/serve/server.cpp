#include "serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <set>
#include <utility>

#include "serve/protocol.hpp"
#include "support/check.hpp"

namespace morph::serve {

using telemetry::Json;

namespace {

// Big-endian u64 head of the checkpoint state blob (the arrival-gate
// high-water mark; the rest is the scheduler's own snapshot encoding).
void put_u64be(std::uint64_t v, std::string& out) {
  for (int i = 56; i >= 0; i -= 8) out.push_back(static_cast<char>(v >> i));
}

std::uint64_t get_u64be(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

bool is_session_type(const std::string& t) {
  return t == "session-open" || t == "session-update" || t == "session-close";
}

}  // namespace

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)), sched_(cfg_.sched) {
  if (cfg_.workers == 0) cfg_.workers = cfg_.sched.pool;
  quarantine_ = QuarantinePool(cfg_.sched.pool, cfg_.quarantine_threshold);
}

Server::~Server() {
  request_stop();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lk(readers_mu_);
    readers.swap(readers_);
  }
  for (auto& r : readers) {
    if (r.joinable()) r.join();
  }
  {
    std::lock_guard<std::mutex> lk(readers_mu_);
    for (auto& c : conns_) {
      if (c->fd >= 0) ::close(c->fd);
    }
    conns_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(cfg_.socket_path.c_str());
}

Status Server::start() {
  Status s = recover_from_journal();
  if (!s.ok()) return s;
  s = listen_unix(cfg_.socket_path, &listen_fd_);
  if (!s.ok()) return s;
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(cfg_.workers);
  for (std::uint32_t i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return Status::Ok();
}

void Server::wait() {
  std::unique_lock<std::mutex> lk(lifecycle_mu_);
  stopped_cv_.wait(lk, [this] { return stop_requested_; });
}

void Server::request_stop() {
  stopping_.store(true);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lk(readers_mu_);
    for (auto& c : conns_) {
      c->open.store(false);
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
      c->write_cv.notify_all();
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    work_cv_.notify_all();
    drain_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lk(order_mu_);
  }
  order_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lk(lifecycle_mu_);
    stop_requested_ = true;
  }
  stopped_cv_.notify_all();
}

bool Server::drain_stop() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) {
    return true;  // a drain is already underway
  }
  // Stop the front door; connected clients keep their sockets so queued
  // results can still reach them (new submits are rejected kUnavailable).
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);

  std::uint64_t before = 0;
  bool drained = true;
  {
    std::unique_lock<std::mutex> lk(mu_);
    before = results_emitted_;
    sched_.flush();
    enqueue_runnable_locked();
    work_cv_.notify_all();
    const auto done = [this] {
      return (exec_queue_.empty() && executing_ == 0) || stopping_.load();
    };
    if (cfg_.drain_deadline_ms > 0.0) {
      drained = drain_cv_.wait_for(
          lk,
          std::chrono::duration<double, std::milli>(cfg_.drain_deadline_ms),
          done);
    } else {
      drain_cv_.wait(lk, done);
    }
  }
  if (!drained) {
    // Past the deadline with work still queued: hard stop. The journal
    // keeps the unfinished tail, so the next start finishes the job.
    request_stop();
    return false;
  }
  emit_ready();
  {
    std::lock_guard<std::mutex> lk(mu_);
    drained_jobs_ = results_emitted_ - before;
  }
  // Push queued reply bytes onto the wire before teardown closes the fds.
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lk(readers_mu_);
    conns = conns_;
  }
  for (const auto& c : conns) {
    if (c->open.load()) flush_conn(c);
  }
  if (journal_enabled_) {
    // With sessions still open their state must survive the restart, so the
    // drain ends in a forced checkpoint (keeping the sessions' history)
    // instead of the usual truncation.
    bool keep_sessions;
    {
      std::lock_guard<std::mutex> jlk(journal_mu_);
      keep_sessions = !open_session_names_.empty();
    }
    if (keep_sessions) {
      std::lock_guard<std::mutex> emit_lk(emit_mu_);
      maybe_checkpoint_locked(true);
    } else {
      std::lock_guard<std::mutex> jlk(journal_mu_);
      (void)journal_.truncate_all();
      retained_.clear();
      completions_since_checkpoint_ = 0;
    }
  }
  request_stop();
  return true;
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or broken): stop accepting
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lk(readers_mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    conn->id = next_conn_id_++;
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { reader_loop(conn); });
    readers_.emplace_back([this, conn] { writer_loop(conn); });
  }
}

void Server::writer_loop(std::shared_ptr<Conn> conn) {
  for (;;) {
    std::string chunk;
    {
      std::unique_lock<std::mutex> lk(conn->write_mu);
      conn->write_cv.wait(lk, [&] {
        return !conn->outbuf.empty() || !conn->open.load();
      });
      if (conn->outbuf.empty()) return;  // closed and drained
      chunk.swap(conn->outbuf);
      conn->writing = true;
    }
    // Socket I/O happens with no lock held; a stalled client blocks only
    // its own writer. request_stop()'s shutdown(fd) unblocks a full pipe.
    const char* data = chunk.data();
    std::size_t n = chunk.size();
    while (n > 0) {
      const ssize_t w = ::send(conn->fd, data, n, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        conn->open.store(false);  // client went away; drop quietly
        break;
      }
      data += w;
      n -= static_cast<std::size_t>(w);
    }
    {
      std::lock_guard<std::mutex> lk(conn->write_mu);
      conn->writing = false;
    }
    conn->write_cv.notify_all();  // wake flush_conn waiters
  }
}

void Server::reader_loop(std::shared_ptr<Conn> conn) {
  while (!stopping_.load() && conn->open.load()) {
    Json msg;
    const Status s = read_frame(conn->fd, &msg);
    if (!s.ok()) {
      if (s.code() == StatusCode::kBadRequest) {
        // Framing survived; only the payload was garbage. Complain, go on.
        Json err = Json::object();
        err.set("type", "error");
        err.set("code", status_code_name(s.code()));
        err.set("message", s.message());
        send(conn, err);
        std::lock_guard<std::mutex> lk(mu_);
        ++bad_requests_;
        continue;
      }
      break;  // disconnect
    }
    const Json* arr = msg.find("arrival");
    if (arr != nullptr && arr->is_number()) {
      // Arrival gate (see server.hpp): block until this frame's turn in the
      // client-assigned global order. Cooperative — a client that skips a
      // number stalls its successors until stop.
      const auto n = static_cast<std::uint64_t>(arr->as_int());
      std::unique_lock<std::mutex> lk(order_mu_);
      order_cv_.wait(lk, [&] { return stopping_.load() || next_arrival_ >= n; });
      if (stopping_.load()) break;
      if (next_arrival_ > n) {
        // A stamp the gate already admitted: a client resubmitting after a
        // server crash (or a confused one — handle_replayed tells them
        // apart). Idempotent; the gate does not move.
        lk.unlock();
        handle_replayed(conn, msg, n);
        continue;
      }
      lk.unlock();
      // WAL discipline: the frame reaches the journal before anything acts
      // on it, so a crash at any later point can replay it.
      journal_admitted(n, msg);
      handle_message(conn, msg, n);
      lk.lock();
      ++next_arrival_;
      lk.unlock();
      order_cv_.notify_all();
      continue;
    }
    handle_message(conn, msg);
  }
  conn->open.store(false);
}

void Server::handle_message(const std::shared_ptr<Conn>& conn,
                            const Json& msg, std::uint64_t arrival) {
  const Json* type = msg.find("type");
  const std::string t =
      type != nullptr && type->is_string() ? type->as_string() : "";
  if (t == "submit") {
    handle_submit(conn, msg, arrival);
    return;
  }
  if (t == "cancel") {
    handle_cancel(conn, msg, arrival);
    return;
  }
  if (is_session_type(t)) {
    handle_session(conn, msg, arrival, t);
    return;
  }
  if (t == "hello") {
    Json r = Json::object();
    r.set("type", "hello");
    r.set("proto", kProtocolVersion);
    r.set("server", "morph-served");
    send(conn, r);
    return;
  }
  if (t == "flush") {
    {
      std::lock_guard<std::mutex> lk(mu_);
      sched_.flush();
      enqueue_runnable_locked();
      work_cv_.notify_all();
    }
    emit_ready();
    // Flush is idempotent at quiescence, but marking it completed lets
    // compaction drop the frame once its sealing effect is snapshotted.
    inline_completed(arrival);
    return;
  }
  if (t == "stats") {
    send(conn, stats_json());
    return;
  }
  if (t == "shutdown") {
    {
      std::unique_lock<std::mutex> lk(mu_);
      sched_.flush();
      enqueue_runnable_locked();
      work_cv_.notify_all();
      drain_cv_.wait(lk, [this] {
        return (exec_queue_.empty() && executing_ == 0) || stopping_.load();
      });
    }
    emit_ready();
    // Clean, drained shutdown: every reply is out, so the journal history
    // is dead weight — drop it and the next start recovers nothing. Open
    // sessions are the exception: their state must survive the restart, so
    // they force a final checkpoint instead.
    if (journal_enabled_) {
      bool keep_sessions;
      {
        std::lock_guard<std::mutex> jlk(journal_mu_);
        keep_sessions = !open_session_names_.empty();
      }
      if (keep_sessions) {
        std::lock_guard<std::mutex> emit_lk(emit_mu_);
        maybe_checkpoint_locked(true, arrival);
      } else {
        std::lock_guard<std::mutex> jlk(journal_mu_);
        (void)journal_.truncate_all();
        retained_.clear();
        completions_since_checkpoint_ = 0;
      }
    }
    Json bye = Json::object();
    bye.set("type", "bye");
    send(conn, bye);
    flush_conn(conn);  // the bye must reach the wire before teardown
    request_stop();
    return;
  }
  Json err = Json::object();
  err.set("type", "error");
  err.set("code", status_code_name(StatusCode::kBadRequest));
  err.set("message", "unknown message type \"" + t + "\"");
  reply(conn, arrival, err);
  std::lock_guard<std::mutex> lk(mu_);
  ++bad_requests_;
}

void Server::handle_submit(const std::shared_ptr<Conn>& conn,
                           const Json& msg, std::uint64_t arrival) {
  JobRequest req;
  const Status parsed = JobRequest::from_json(msg, &req);
  if (!parsed.ok()) {
    Json err = Json::object();
    err.set("type", "error");
    if (const Json* id = msg.find("id"); id != nullptr && id->is_number()) {
      err.set("id", static_cast<std::uint64_t>(id->as_int()));
    }
    err.set("code", status_code_name(parsed.code()));
    err.set("message", parsed.message());
    reply(conn, arrival, err);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++bad_requests_;
    }
    inline_completed(arrival);
    return;
  }
  if (draining_.load()) {
    // Graceful drain: nothing new gets in; the client should go elsewhere.
    Json rej = Json::object();
    rej.set("type", "reject");
    rej.set("id", req.id);
    rej.set("code", status_code_name(StatusCode::kUnavailable));
    rej.set("message", "server is draining");
    reply(conn, arrival, rej);
    inline_completed(arrival);
    return;
  }

  const double est = estimate_job_cycles(req.spec);
  // Deadlines are declared in modeled milliseconds; the scheduler thinks in
  // modeled cycles at the device's nominal clock.
  const double deadline_cycles =
      req.spec.deadline_model_ms > 0.0
          ? req.spec.deadline_model_ms * cfg_.device.clock_ghz * 1e6
          : 0.0;
  Scheduler::Submitted sub;
  {
    std::lock_guard<std::mutex> lk(mu_);
    sub = sched_.submit(req.spec.kind, req.priority, est, -1.0,
                        deadline_cycles);
    if (sub.accepted) {
      job_ctx_.emplace(sub.seq, JobCtx{conn, req, arrival});
      enqueue_runnable_locked();
      work_cv_.notify_all();
    }
  }
  if (!sub.accepted) {
    Json rej = Json::object();
    rej.set("type", "reject");
    rej.set("id", req.id);
    rej.set("code", status_code_name(sub.reject.code()));
    rej.set("message", sub.reject.message());
    reply(conn, arrival, rej);
    // A rejected submit is terminal: mark it completed so compaction drops
    // the frame instead of re-running the (already-snapshotted) rejection.
    inline_completed(arrival);
  }
}

void Server::handle_cancel(const std::shared_ptr<Conn>& conn, const Json& msg,
                           std::uint64_t arrival) {
  const Json* id = msg.find("id");
  if (id == nullptr || !id->is_number()) {
    Json err = Json::object();
    err.set("type", "error");
    err.set("code", status_code_name(StatusCode::kBadRequest));
    err.set("message", "cancel.id must be a number");
    reply(conn, arrival, err);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++bad_requests_;
    }
    inline_completed(arrival);
    return;
  }
  const auto target = static_cast<std::uint64_t>(id->as_int());
  bool caught = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Cancels ride the arrival gate and are journaled: whether one lands
    // before its job seals is part of the deterministic arrival sequence.
    for (auto it = job_ctx_.begin(); it != job_ctx_.end(); ++it) {
      if (it->second.req.id != target) continue;
      if (sched_.cancel(it->first)) {
        job_ctx_.erase(it);
        caught = true;
      }
      break;
    }
  }
  Json r = Json::object();
  r.set("type", "cancelled");
  r.set("id", target);
  r.set("caught", caught);  // false: sealed already, the result still comes
  reply(conn, arrival, r);
  inline_completed(arrival);
}

void Server::handle_session(const std::shared_ptr<Conn>& conn, const Json& msg,
                            std::uint64_t arrival, const std::string& t) {
  std::uint64_t id = 0;
  bool has_id = false;
  if (const Json* idj = msg.find("id"); idj != nullptr && idj->is_number()) {
    id = static_cast<std::uint64_t>(idj->as_int());
    has_id = true;
  }
  const auto error_frame = [&](StatusCode code, const std::string& m) {
    Json err = Json::object();
    err.set("type", "error");
    if (has_id) err.set("id", id);
    err.set("code", status_code_name(code));
    err.set("message", m);
    return err;
  };
  if (arrival == kNoArrival) {
    // An unstamped session frame would never reach the journal, so a crash
    // would silently drop it from the replayed session history; insist on
    // the gate.
    reply(conn, arrival,
          error_frame(StatusCode::kBadRequest,
                      t + " frames must carry an arrival stamp"));
    std::lock_guard<std::mutex> lk(mu_);
    ++bad_requests_;
    return;
  }

  // From here on the frame is journaled: every exit marks completion so
  // recovery can tell replied frames from interrupted ones.
  Json r;
  bool bad = false;
  const Json* sj = msg.find("session");
  const std::string sname =
      sj != nullptr && sj->is_string() ? sj->as_string() : "";
  if (sname.empty()) {
    r = error_frame(StatusCode::kBadRequest,
                    t + ".session must be a non-empty string");
    bad = true;
  } else if (draining_.load() && t != "session-close") {
    // Draining: no new sessions, no new work; closes still land so clients
    // can wind down cleanly.
    r = Json::object();
    r.set("type", "reject");
    if (has_id) r.set("id", id);
    r.set("code", status_code_name(StatusCode::kUnavailable));
    r.set("message", "server is draining");
  } else if (t == "session-open") {
    if (sessions_.count(sname) != 0) {
      r = error_frame(StatusCode::kBadRequest,
                      "session \"" + sname + "\" is already open");
      bad = true;
    } else {
      // The pinned slot is a pure function of the open frame's arrival
      // stamp, so it survives recovery — and compaction — unchanged.
      const auto slot = static_cast<std::uint32_t>(arrival % cfg_.sched.pool);
      std::unique_ptr<Session> sess;
      const Status s = Session::Open(msg, slot, cfg_.device, &sess);
      if (!s.ok()) {
        r = error_frame(s.code(), s.message());
        bad = true;
      } else {
        r = Json::object();
        r.set("type", "session-opened");
        if (has_id) r.set("id", id);
        r.set("session", sname);
        r.set("kind", sess->kind());
        r.set("slot", static_cast<std::int64_t>(slot));
        r.set("digest", sess->digest_hex());
        {
          std::lock_guard<std::mutex> lk(mu_);
          sessions_.emplace(sname, std::move(sess));
          ++sessions_opened_;
        }
        std::lock_guard<std::mutex> jlk(journal_mu_);
        open_session_names_.insert(sname);
      }
    }
  } else {
    Session* sess = nullptr;
    if (const auto it = sessions_.find(sname); it != sessions_.end()) {
      sess = it->second.get();
    }
    if (sess == nullptr) {
      r = error_frame(StatusCode::kBadRequest,
                      "unknown session \"" + sname + "\"");
      bad = true;
    } else if (t == "session-update") {
      r = Json::object();
      r.set("type", "session-result");
      if (has_id) r.set("id", id);
      r.set("session", sname);
      // Inline execution on the persistent device; the arrival gate is the
      // serialization, so no server lock is held across the launch.
      const Status s = sess->Update(msg, &r);
      if (!s.ok()) {
        r = error_frame(s.code(), s.message());
        bad = true;
      } else {
        std::lock_guard<std::mutex> lk(mu_);
        ++session_updates_;
      }
    } else {  // session-close
      r = Json::object();
      r.set("type", "session-closed");
      if (has_id) r.set("id", id);
      r.set("session", sname);
      r.set("updates", sess->updates_applied());
      r.set("digest", sess->digest_hex());
      {
        std::lock_guard<std::mutex> lk(mu_);
        sessions_.erase(sname);
      }
      // Dropping the name here lets journal_completed and the next
      // compaction retire this session's whole journaled history.
      std::lock_guard<std::mutex> jlk(journal_mu_);
      open_session_names_.erase(sname);
    }
  }
  reply(conn, arrival, r);
  if (bad) {
    std::lock_guard<std::mutex> lk(mu_);
    ++bad_requests_;
  }
  inline_completed(arrival);
}

Status Server::recover_from_journal() {
  if (cfg_.journal.path.empty()) return Status::Ok();
  JournalScan scan;
  Status s = Journal::scan(cfg_.journal.path, &scan);
  if (!s.ok()) return s;
  s = journal_.open(cfg_.journal, scan.valid_bytes);
  if (!s.ok()) return s;
  journal_enabled_ = true;
  if (scan.records.empty() && scan.checkpoint_state.empty()) {
    return Status::Ok();
  }

  // Replay. No serving thread exists yet, so this runs the normal admission
  // path single-threaded: every journaled frame goes back through
  // handle_message in its original order, with no connection attached —
  // replies land in replayed_replies_ for resubmitting clients to collect,
  // and re-admitted jobs execute once the workers spawn. Completed frames
  // are replayed too: their measured cycles feed the placement of
  // everything after them. A checkpoint's state bytes restore the epoch the
  // retained suffix was recorded in: the arrival-gate high-water mark plus
  // the scheduler snapshot taken at compaction quiescence.
  recoveries_ = 1;
  std::uint64_t gate_floor = 0;
  if (scan.checkpoint_state.size() >= 8) {
    gate_floor = get_u64be(scan.checkpoint_state.data());
    // A failed restore (e.g. the pool was resized across the restart) keeps
    // the fresh scheduler: continuity is forfeited, correctness is not.
    (void)sched_.restore_blob(scan.checkpoint_state.substr(8));
  }
  in_recovery_ = true;
  for (const JournalRecord& r : scan.records) {
    if (r.type == JournalRecord::Type::kCompleted) {
      recovery_completed_.insert(r.arrival);
    }
  }
  std::uint64_t max_arrival = 0;
  bool any = false;
  for (const JournalRecord& r : scan.records) {
    if (r.type == JournalRecord::Type::kCheckpoint) continue;
    max_arrival = any ? std::max(max_arrival, r.arrival) : r.arrival;
    any = true;
    if (r.type == JournalRecord::Type::kCompleted) continue;
    Json msg;
    try {
      msg = Json::parse(r.frame);
    } catch (const CheckError&) {
      continue;  // CRC passed but the payload is not JSON; skip defensively
    }
    const Json* type = msg.find("type");
    const std::string t =
        type != nullptr && type->is_string() ? type->as_string() : "";
    if (r.type == JournalRecord::Type::kSession) {
      if (!is_session_type(t)) continue;
      std::string sname;
      if (const Json* sj = msg.find("session");
          sj != nullptr && sj->is_string()) {
        sname = sj->as_string();
      }
      retained_.emplace(r.arrival,
                        RetainedRec{true, r.frame, std::move(sname),
                                    recovery_completed_.count(r.arrival) > 0});
      handle_message(nullptr, msg, r.arrival);
      continue;
    }
    // Lifecycle frames (hello/stats/shutdown) are conversational, never
    // journaled; tolerate them anyway in case of an old or hand-built log.
    if (t != "submit" && t != "flush" && t != "cancel") continue;
    if (recovery_completed_.count(r.arrival) == 0) {
      if (t == "submit") ++recovered_jobs_;
      retained_.emplace(r.arrival, RetainedRec{false, r.frame, "", false});
    }
    handle_message(nullptr, msg, r.arrival);
  }
  in_recovery_ = false;
  recovery_completed_.clear();
  recovered_sessions_ = sessions_.size();
  next_arrival_ =
      std::max(gate_floor, any ? max_arrival + 1 : std::uint64_t{0});
  return Status::Ok();
}

void Server::handle_replayed(const std::shared_ptr<Conn>& conn,
                             const Json& msg, std::uint64_t arrival) {
  const Json* type = msg.find("type");
  const std::string t =
      type != nullptr && type->is_string() ? type->as_string() : "";
  Json stored;
  bool have = false;
  bool pending = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto rit = replayed_replies_.find(arrival);
    if (rit != replayed_replies_.end()) {
      stored = rit->second;
      have = true;
    } else {
      // The replayed job is still in flight; adopt the resubmitting
      // connection so its result is delivered directly when placed.
      for (auto& [seq, ctx] : job_ctx_) {
        (void)seq;
        if (ctx.arrival != arrival || ctx.conn != nullptr) continue;
        ctx.conn = conn;
        pending = true;
        break;
      }
    }
  }
  if (have) {
    send(conn, stored);
    return;
  }
  if (pending) return;
  if (t == "flush" || t == "cancel") return;  // already applied: no-op
  Json err = Json::object();
  err.set("type", "error");
  err.set("code", status_code_name(StatusCode::kBadRequest));
  err.set("message",
          "arrival " + std::to_string(arrival) + " already admitted");
  send(conn, err);
  std::lock_guard<std::mutex> lk(mu_);
  ++bad_requests_;
}

void Server::reply(const std::shared_ptr<Conn>& conn, std::uint64_t arrival,
                   const Json& frame) {
  if (conn != nullptr) {
    send(conn, frame);
    return;
  }
  if (arrival == kNoArrival) return;
  std::lock_guard<std::mutex> lk(mu_);
  replayed_replies_.emplace(arrival, frame);
}

void Server::journal_admitted(std::uint64_t arrival, const Json& msg) {
  if (!journal_enabled_) return;
  const Json* type = msg.find("type");
  const std::string t =
      type != nullptr && type->is_string() ? type->as_string() : "";
  const bool session = is_session_type(t);
  std::string sname;
  if (session) {
    if (const Json* sj = msg.find("session");
        sj != nullptr && sj->is_string()) {
      sname = sj->as_string();
    }
  }
  // Only frames recovery replays are worth retaining across compaction;
  // stamped conversational frames (hello/stats) are journaled for the
  // arrival-sequence record but dropped at the first checkpoint.
  const bool replayable =
      session || t == "submit" || t == "flush" || t == "cancel";
  std::string frame = msg.dump();
  std::lock_guard<std::mutex> lk(journal_mu_);
  const Status s = session ? journal_.append_session(arrival, frame)
                           : journal_.append_admitted(arrival, frame);
  if (!s.ok()) {
    if (journal_errors_ == 0) {
      std::fprintf(stderr, "morph-served: journal append failed: %s\n",
                   s.message().c_str());
    }
    ++journal_errors_;
  }
  if (replayable) {
    retained_.emplace(arrival, RetainedRec{session, std::move(frame),
                                           std::move(sname), false});
  }
}

void Server::journal_completed(std::uint64_t arrival) {
  if (!journal_enabled_ || arrival == kNoArrival) return;
  std::lock_guard<std::mutex> lk(journal_mu_);
  const Status s = journal_.append_completed(arrival);
  if (!s.ok()) {
    if (journal_errors_ == 0) {
      std::fprintf(stderr, "morph-served: journal append failed: %s\n",
                   s.message().c_str());
    }
    ++journal_errors_;
  }
  // Compaction bookkeeping: a completed job frame is dead weight (its
  // scheduler effects live in the next checkpoint's snapshot); a completed
  // session frame stays while its session is open, because recovery
  // re-executes the whole history to rebuild the persistent state.
  const auto it = retained_.find(arrival);
  if (it != retained_.end()) {
    if (!it->second.session ||
        open_session_names_.count(it->second.session_name) == 0) {
      retained_.erase(it);
    } else {
      it->second.completed = true;
    }
  }
  ++completions_since_checkpoint_;
}

void Server::inline_completed(std::uint64_t arrival) {
  if (in_recovery_ && recovery_completed_.count(arrival) > 0) {
    return;  // the pre-crash process already marked it; replay was state-only
  }
  journal_completed(arrival);
  if (in_recovery_) return;
  std::lock_guard<std::mutex> emit_lk(emit_mu_);
  maybe_checkpoint_locked(false, arrival);
}

void Server::maybe_checkpoint_locked(bool force, std::uint64_t floor_hint) {
  if (!journal_enabled_ || in_recovery_) return;
  {
    std::lock_guard<std::mutex> jlk(journal_mu_);
    const std::uint64_t every = cfg_.journal.checkpoint_every;
    if (!force && (every == 0 || completions_since_checkpoint_ < every)) {
      return;
    }
  }
  // Snapshot only at quiescence: with no admitted job awaiting execution or
  // emission, the scheduler blob plus the frames still in retained_ (all
  // admitted at or after this instant, or part of an open session's
  // history) reproduces every later decision. Holding emit_mu_ keeps any
  // emission's "job erased from job_ctx_ / completion journaled" pair from
  // straddling the snapshot.
  std::string state;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!job_ctx_.empty() || !outcomes_.empty() || !exec_queue_.empty() ||
        executing_ != 0) {
      return;  // in-flight work: try again at a later completion
    }
    state = sched_.checkpoint_blob();
  }
  {
    std::lock_guard<std::mutex> olk(order_mu_);
    // The triggering frame is fully applied (its effects are in the blob),
    // but its reader may not have bumped next_arrival_ yet — snapshot the
    // gate as if it had, or the restart blocks waiting for a stamp the
    // pre-crash process already consumed.
    std::uint64_t floor = next_arrival_;
    if (floor_hint != kNoArrival && floor_hint + 1 > floor) {
      floor = floor_hint + 1;
    }
    std::string head;
    put_u64be(floor, head);
    state.insert(0, head);
  }
  std::lock_guard<std::mutex> jlk(journal_mu_);
  std::vector<JournalRecord> kept;
  kept.reserve(retained_.size());
  for (auto it = retained_.begin(); it != retained_.end();) {
    const RetainedRec& r = it->second;
    if (r.completed &&
        (!r.session || open_session_names_.count(r.session_name) == 0)) {
      it = retained_.erase(it);  // a retired (closed) session's history
      continue;
    }
    JournalRecord rec;
    rec.type = r.session ? JournalRecord::Type::kSession
                         : JournalRecord::Type::kAdmitted;
    rec.arrival = it->first;
    rec.frame = r.frame;
    kept.push_back(std::move(rec));
    if (r.completed) {
      JournalRecord done;
      done.type = JournalRecord::Type::kCompleted;
      done.arrival = it->first;
      kept.push_back(std::move(done));
    }
    ++it;
  }
  const Status s = journal_.compact(state, kept);
  if (!s.ok()) {
    if (journal_errors_ == 0) {
      std::fprintf(stderr, "morph-served: journal compaction failed: %s\n",
                   s.message().c_str());
    }
    ++journal_errors_;
    return;
  }
  completions_since_checkpoint_ = 0;
  ++compactions_;
}

Json Server::stats_json() {
  std::lock_guard<std::mutex> lk(mu_);
  Json o = Json::object();
  o.set("type", "stats");
  o.set("admitted", sched_.admitted());
  o.set("rejected", sched_.rejected());
  o.set("batches_sealed", sched_.batches_sealed());
  o.set("placed", sched_.placed());
  o.set("backlog_cycles", sched_.backlog_cycles());
  o.set("jobs_executed", jobs_executed_);
  o.set("results_emitted", results_emitted_);
  o.set("bad_requests", bad_requests_);
  o.set("deadline_exceeded", sched_.deadline_rejected());
  o.set("cancelled", sched_.cancelled());
  o.set("quarantined_devices",
        static_cast<std::int64_t>(quarantine_.quarantined()));
  o.set("recoveries", recoveries_);
  o.set("recovered_jobs", recovered_jobs_);
  o.set("drained_jobs", drained_jobs_);
  o.set("sessions_open", static_cast<std::uint64_t>(sessions_.size()));
  o.set("sessions_opened", sessions_opened_);
  o.set("session_updates", session_updates_);
  o.set("recovered_sessions", recovered_sessions_);
  o.set("pool", static_cast<std::int64_t>(cfg_.sched.pool));
  o.set("workers", static_cast<std::int64_t>(cfg_.workers));
  {
    std::lock_guard<std::mutex> jlk(journal_mu_);
    o.set("journal_records", journal_.records_appended());
    o.set("journal_errors", journal_errors_);
    o.set("compactions", compactions_);
  }
  return o;
}

void Server::enqueue_runnable_locked() {
  for (SealedBatch& b : sched_.take_runnable()) {
    const auto key = std::make_pair(b.priority, b.id);
    exec_queue_.emplace(key, std::move(b));
  }
}

void Server::worker_loop() {
  for (;;) {
    SealedBatch batch;
    std::vector<JobRequest> reqs;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] {
        return stopping_.load() || !exec_queue_.empty();
      });
      if (exec_queue_.empty()) return;  // stopping, queue drained
      auto it = exec_queue_.begin();
      batch = std::move(it->second);
      exec_queue_.erase(it);
      ++executing_;
      reqs.reserve(batch.jobs.size());
      for (const std::uint64_t seq : batch.jobs) {
        const auto cit = job_ctx_.find(seq);
        MORPH_CHECK(cit != job_ctx_.end());
        reqs.push_back(cit->second.req);
      }
    }

    // One shared launch: the batch's jobs run back to back on this pool
    // worker, each on a fresh, isolated device.
    std::vector<JobOutcome> outs;
    std::vector<double> measured;
    outs.reserve(reqs.size());
    measured.reserve(reqs.size());
    for (const JobRequest& r : reqs) {
      outs.push_back(run_job(r, cfg_.device));
      measured.push_back(outs.back().exec.modeled_cycles);
    }

    {
      std::lock_guard<std::mutex> lk(mu_);
      for (std::size_t i = 0; i < batch.jobs.size(); ++i) {
        outcomes_.emplace(batch.jobs[i], std::move(outs[i]));
      }
      jobs_executed_ += batch.jobs.size();
      sched_.record_measured(batch.id, measured);
      --executing_;
      drain_cv_.notify_all();
    }
    emit_ready();
  }
}

void Server::emit_ready() {
  // emit_mu_ before mu_: advancing the virtual schedule and writing the
  // resulting frames must be one atomic step, or two workers could emit out
  // of virtual dispatch order.
  std::lock_guard<std::mutex> emit_lk(emit_mu_);
  std::vector<Emission> emissions;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const JobPlacement& p : sched_.advance()) {
      const auto cit = job_ctx_.find(p.seq);
      const auto oit = outcomes_.find(p.seq);
      MORPH_CHECK(cit != job_ctx_.end());
      MORPH_CHECK(oit != outcomes_.end());
      const JobRequest& req = cit->second.req;
      const JobOutcome& out = oit->second;
      // Quarantine bookkeeping happens here — placements arrive in virtual
      // dispatch order, so the per-slot consecutive-fault streaks (and the
      // quarantine set) are as deterministic as the placements themselves.
      quarantine_.record(p.slot, out.ok());

      Json r = Json::object();
      r.set("type", "result");
      r.set("id", req.id);
      r.set("seq", p.seq);
      r.set("kind", job_kind_name(req.spec.kind));
      r.set("status", status_code_name(out.status.code()));
      if (!out.ok()) r.set("message", out.status.message());
      r.set("outputs", out.outputs);
      r.set("exec", out.exec.to_json());
      if (req.trace) r.set("trace_events", out.trace_events);
      Json sv = Json::object();
      sv.set("batch", p.batch);
      sv.set("batch_size", static_cast<std::int64_t>(p.batch_size));
      sv.set("slot", static_cast<std::int64_t>(p.slot));
      sv.set("arrival_cycles", p.arrival_cycles);
      sv.set("start_cycles", p.start_cycles);
      sv.set("end_cycles", p.end_cycles);
      sv.set("queue_cycles", p.queue_cycles);
      r.set("serve", sv);

      if (cit->second.conn == nullptr) {
        // Recovery replay owns this job: park the reply for the client's
        // resubmission instead of a wire that no longer exists.
        replayed_replies_.emplace(cit->second.arrival, r);
      }
      emissions.push_back(
          Emission{cit->second.conn, std::move(r), cit->second.arrival});
      job_ctx_.erase(cit);
      outcomes_.erase(oit);
      ++results_emitted_;
    }
  }
  std::uint64_t floor_hint = kNoArrival;
  for (const Emission& e : emissions) {
    if (e.conn != nullptr) send(e.conn, e.frame);
    // Completion marker only after the reply is handed to the writer (or
    // parked for resubmission): a crash before this line replays the job, a
    // crash after it replays too — 'C' only trims the recovered_jobs count,
    // never the replay itself.
    journal_completed(e.arrival);
    if (e.arrival != kNoArrival &&
        (floor_hint == kNoArrival || e.arrival > floor_hint)) {
      floor_hint = e.arrival;
    }
  }
  maybe_checkpoint_locked(false, floor_hint);
}

void Server::send(const std::shared_ptr<Conn>& conn, const Json& msg) {
  if (!conn->open.load()) return;
  {
    std::lock_guard<std::mutex> lk(conn->write_mu);
    conn->outbuf += encode_frame(msg);
  }
  conn->write_cv.notify_all();
}

void Server::flush_conn(const std::shared_ptr<Conn>& conn) {
  std::unique_lock<std::mutex> lk(conn->write_mu);
  conn->write_cv.wait(lk, [&] {
    return (conn->outbuf.empty() && !conn->writing) || !conn->open.load();
  });
}

}  // namespace morph::serve
