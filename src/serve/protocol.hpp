// Wire protocol of the morph job server (docs/SERVER.md, "Protocol").
//
// Transport: a local AF_UNIX stream socket. Framing: each message is one
// telemetry::Json document serialized compactly, prefixed by a 4-byte
// big-endian byte length. JSON keeps the protocol debuggable and reuses the
// repo's deterministic reader/writer; the length prefix keeps parsing
// trivial (no sniffing for document boundaries in a byte stream).
//
// Message types ride in a "type" field:
//   client -> server: "hello", "submit" (serve/job.hpp), "flush", "cancel",
//                     "stats", "shutdown"
//   server -> client: "hello", "result", "reject", "error", "cancelled",
//                     "stats", "bye"
//
// This header owns only framing and socket plumbing; message construction
// lives in serve/server.cpp and serve/client.cpp.
#pragma once

#include <cstdint>
#include <string>

#include "support/status.hpp"
#include "telemetry/json.hpp"

namespace morph::serve {

/// Upper bound on one frame's payload; a length prefix beyond this is
/// treated as a protocol error, not an allocation request.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Protocol revision, exchanged in "hello". Bump on incompatible changes.
inline constexpr std::int64_t kProtocolVersion = 1;

/// Writes one length-prefixed frame to a blocking fd. Retries EINTR and
/// short writes; kIoError on transport failure (including EPIPE).
Status write_frame(int fd, const telemetry::Json& msg);

/// Encodes a message into its on-the-wire bytes (prefix + payload). The
/// nonblocking client assembles frames itself so it can interleave partial
/// writes with draining inbound results.
std::string encode_frame(const telemetry::Json& msg);

/// Reads one frame from a blocking fd. kIoError on EOF or transport
/// failure, kBadRequest on oversized or unparseable payloads.
Status read_frame(int fd, telemetry::Json* out);

/// Incremental frame decoder for nonblocking reads: feed raw bytes, pop
/// complete messages. Used by the client's receive pump.
class FrameDecoder {
 public:
  void feed(const char* data, std::size_t n) { buf_.append(data, n); }

  /// Pops the next complete frame. Returns kOk with *out set, kIoError-free:
  /// an incomplete frame returns ok() == true with *have = false.
  Status poll(telemetry::Json* out, bool* have);

 private:
  std::string buf_;
};

/// Creates, binds, and listens on a unix socket. A leftover socket file at
/// `path` is probed with a connect first: a live listener makes this fail
/// with kIoError (never steal a running server's socket); a refused
/// connection marks the file stale — the corpse of a crashed server — and
/// it is unlinked. kIoError on failure.
Status listen_unix(const std::string& path, int* fd_out);

/// Connects to a listening unix socket. kIoError on failure.
Status connect_unix(const std::string& path, int* fd_out);

}  // namespace morph::serve
