// Incremental recompute sessions for the morph job server (docs/SERVER.md,
// "Sessions").
//
// A session is a named, long-lived unit of server state: a persistent
// gpu::Device plus incremental application state (mst::MstState or
// pta::PtaState) that survives across requests. Clients open a session once,
// then stream `session-update` batches — edge inserts/deletes for MST,
// new constraints for PTA — and each update resumes the incremental
// algorithm from the current state instead of recomputing from scratch, so
// the modeled cost scales with the size of the batch's touched region, not
// with the accumulated input.
//
// Execution model: session frames ride the arrival gate like every stamped
// frame, but they execute *inline* in arrival order rather than through the
// batching scheduler — the gate already serializes them, and a persistent
// state cannot be handed to racing pool workers. Each session is pinned to
// a virtual pool slot (`open arrival % pool`, an affinity/observability
// label reported in replies and stats). Because the inline execution is a
// pure function of the session's frame history and the incremental kernels
// are bit-deterministic across host workers and worklist modes, replaying a
// session's journaled history ('S' records) rebuilds its device stats and
// app state byte-identically — which is exactly how crash recovery restores
// open sessions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "gpu/config.hpp"
#include "gpu/device.hpp"
#include "mst/incremental.hpp"
#include "pta/incremental.hpp"
#include "serve/job.hpp"
#include "support/status.hpp"
#include "telemetry/json.hpp"

namespace morph::serve {

class Session {
 public:
  /// Hard cap on session-open nodes/vars; bounds the memory one client can
  /// pin on the server with a single frame.
  static constexpr std::uint64_t kMaxElements = 1u << 22;

  /// Parses and validates a `session-open` frame and builds the session
  /// (empty state over `nodes`/`vars` elements; updates carry the actual
  /// edges/constraints). Returns kBadRequest without touching `out` on a
  /// malformed frame.
  ///
  ///   {"type":"session-open","id":1,"arrival":0,"session":"g1",
  ///    "kind":"mst","nodes":4096}
  ///   {"type":"session-open","id":2,"arrival":1,"session":"p1",
  ///    "kind":"pta","vars":1024}
  static Status Open(const telemetry::Json& msg, std::uint32_t slot,
                     const gpu::DeviceConfig& dev_cfg,
                     std::unique_ptr<Session>* out);

  /// Applies one `session-update` frame's batch on the persistent device and
  /// fills `*reply` with the `session-result` fields: the post-batch state
  /// digest, kind-specific aggregates, and the request's exec-stat *delta*
  /// (DeviceStats::delta_since against the persistent device's accumulated
  /// stats). Update rows are positional arrays:
  ///
  ///   mst: "updates":[[op,u,v,w],...]       op 1 = insert, 0 = delete
  ///   pta: "updates":[[kind,dst,src],...]   kind 0 = p=&q, 1 = p=q,
  ///                                         2 = p=*q, 3 = *p=q
  ///
  /// kBadRequest on a malformed batch; the state is untouched in that case.
  Status Update(const telemetry::Json& msg, telemetry::Json* reply);

  const std::string& name() const { return name_; }
  const std::string& kind() const { return kind_; }
  std::uint32_t slot() const { return slot_; }
  std::uint64_t updates_applied() const { return updates_; }
  /// State digest as a fixed-width hex string (a full 64-bit FNV-1a value
  /// does not survive a JSON number round-trip).
  std::string digest_hex() const;

 private:
  Session(std::string name, std::string kind, std::uint32_t slot,
          const gpu::DeviceConfig& dev_cfg);

  std::string name_;
  std::string kind_;  ///< "mst" | "pta"
  std::uint32_t slot_ = 0;
  gpu::Device dev_;  ///< persistent: stats accumulate across updates
  std::unique_ptr<mst::MstState> mst_;
  std::unique_ptr<pta::PtaState> pta_;
  std::uint64_t updates_ = 0;  ///< update rows applied over the lifetime
};

}  // namespace morph::serve
