#include "serve/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <sstream>
#include <utility>

#include "support/check.hpp"

namespace morph::serve {

namespace {

// Big-endian u64 helpers for the checkpoint blob (doubles travel as
// bit-cast u64s so the round-trip is exact).
void put_u64(std::uint64_t v, std::string& out) {
  for (int i = 56; i >= 0; i -= 8) out.push_back(static_cast<char>(v >> i));
}

bool get_u64(const std::string& in, std::size_t& pos, std::uint64_t* out) {
  if (in.size() - pos < 8) return false;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(in[pos + i]);
  }
  pos += 8;
  *out = v;
  return true;
}

bool get_double(const std::string& in, std::size_t& pos, double* out) {
  std::uint64_t bits = 0;
  if (!get_u64(in, pos, &bits)) return false;
  *out = std::bit_cast<double>(bits);
  return true;
}

}  // namespace

Scheduler::Scheduler(SchedulerConfig cfg) : cfg_(cfg) {
  MORPH_CHECK(cfg_.pool > 0);
  MORPH_CHECK(cfg_.batch_max > 0);
  MORPH_CHECK(cfg_.drain_rate >= 0.0);
  slot_ready_.assign(cfg_.pool, 0.0);
}

void Scheduler::seal(JobKind kind, std::uint32_t priority, OpenBatch&& open) {
  (void)kind;
  SealedBatch b;
  b.id = next_batch_id_++;
  b.priority = priority;
  b.seal_seq = next_seq_ == 0 ? 0 : next_seq_ - 1;
  b.seal_at = last_at_;
  b.jobs = std::move(open.jobs);
  pending_.emplace(b.id, PendingBatch{b, {}, false});
  runnable_.push_back(std::move(b));
}

void Scheduler::seal_lingering() {
  // Admission events are the linger clock: an open batch that survived
  // batch_linger arrivals without filling up seals now. Map order keeps the
  // sweep deterministic.
  const std::uint64_t now = next_seq_ == 0 ? 0 : next_seq_ - 1;
  for (auto it = open_.begin(); it != open_.end();) {
    if (now - it->second.first_seq >= cfg_.batch_linger) {
      OpenBatch ob = std::move(it->second);
      const auto key = it->first;
      it = open_.erase(it);
      seal(key.second, key.first, std::move(ob));
    } else {
      ++it;
    }
  }
}

Scheduler::Submitted Scheduler::submit(JobKind kind, std::uint32_t priority,
                                       double est_cycles, double at_cycles,
                                       double deadline_cycles) {
  MORPH_CHECK(priority <= kMaxPriority);
  MORPH_CHECK(est_cycles >= 0.0);

  // Virtual arrival time: declared (clamped monotone) or default-gap.
  double at;
  if (at_cycles >= 0.0) {
    at = std::max(at_cycles, last_at_);
  } else if (saw_arrival_) {
    at = last_at_ + cfg_.default_gap_cycles;
  } else {
    at = 0.0;
  }
  // Drain the backlog for the elapsed virtual time, consuming deposits
  // front-first (admission order) so every job's undrained remainder stays
  // attributable — cancel() returns exactly that remainder. All quantities
  // are exact in double (integer arrivals and estimates), so the piecewise
  // subtraction equals the old single-subtraction drain bit for bit.
  double drain = (at - last_at_) * cfg_.drain_rate;
  while (drain > 0.0 && !deposits_.empty()) {
    auto& front = deposits_.front();
    const double d = std::min(front.second, drain);
    front.second -= d;
    bucket_ -= d;
    drain -= d;
    if (front.second <= 0.0) deposits_.pop_front();
  }
  if (deposits_.empty()) bucket_ = 0.0;
  last_at_ = at;
  saw_arrival_ = true;

  Submitted out;
  out.seq = next_seq_++;
  out.arrival_cycles = at;

  if (cfg_.max_job_cycles > 0.0 && est_cycles > cfg_.max_job_cycles) {
    std::ostringstream os;
    os << "estimated cost " << est_cycles << " cycles exceeds the per-job cap "
       << cfg_.max_job_cycles;
    out.reject = Status(StatusCode::kAdmissionRejected, os.str());
    ++rejected_;
    seal_lingering();
    return out;
  }
  if (bucket_ + est_cycles > cfg_.queue_cap_cycles) {
    std::ostringstream os;
    os << "queue backlog " << bucket_ << " + " << est_cycles
       << " cycles exceeds the admission cap " << cfg_.queue_cap_cycles;
    out.reject = Status(StatusCode::kAdmissionRejected, os.str());
    ++rejected_;
    seal_lingering();
    return out;
  }
  if (deadline_cycles > 0.0 && cfg_.drain_rate > 0.0 &&
      bucket_ / cfg_.drain_rate > deadline_cycles) {
    // The backlog ahead of this job already pushes its reference-server
    // start past arrival + deadline; admitting it would only burn cycles on
    // a result nobody wants. Pool-independent by construction: bucket_ and
    // drain_rate never see the pool.
    std::ostringstream os;
    os << "backlog implies a start " << bucket_ / cfg_.drain_rate
       << " virtual cycles after arrival, past the " << deadline_cycles
       << "-cycle deadline";
    out.reject = Status(StatusCode::kDeadlineExceeded, os.str());
    ++deadline_rejected_;
    seal_lingering();
    return out;
  }

  out.accepted = true;
  bucket_ += est_cycles;
  deposits_.emplace_back(out.seq, est_cycles);
  ++admitted_;
  jobs_.emplace(out.seq, JobEntry{kind, priority, est_cycles, at});

  if (est_cycles <= cfg_.small_job_cycles) {
    const auto key = std::make_pair(priority, kind);
    auto [it, fresh] = open_.try_emplace(key);
    if (fresh) it->second.first_seq = out.seq;
    it->second.jobs.push_back(out.seq);
    if (it->second.jobs.size() >= cfg_.batch_max) {
      OpenBatch ob = std::move(it->second);
      open_.erase(it);
      seal(kind, priority, std::move(ob));
    }
  } else {
    OpenBatch singleton;
    singleton.first_seq = out.seq;
    singleton.jobs.push_back(out.seq);
    seal(kind, priority, std::move(singleton));
  }

  seal_lingering();
  return out;
}

bool Scheduler::cancel(std::uint64_t seq) {
  for (auto it = open_.begin(); it != open_.end(); ++it) {
    auto& jobs = it->second.jobs;
    const auto jit = std::find(jobs.begin(), jobs.end(), seq);
    if (jit == jobs.end()) continue;
    jobs.erase(jit);
    if (jobs.empty()) open_.erase(it);
    const auto entry = jobs_.find(seq);
    MORPH_CHECK(entry != jobs_.end());
    // Give back what the cancelled job still holds in the bucket: only its
    // *undrained* remainder. Refunding the full estimate would also remove
    // cycles that other live jobs deposited (the drain since admission
    // already consumed part of this job's deposit), leaving the backlog —
    // and every later deadline_model_ms admission decision — skewed.
    for (auto dit = deposits_.begin(); dit != deposits_.end(); ++dit) {
      if (dit->first == seq) {
        bucket_ -= dit->second;
        deposits_.erase(dit);
        break;
      }
    }
    if (deposits_.empty()) bucket_ = 0.0;
    jobs_.erase(entry);
    ++cancelled_;
    return true;
  }
  return false;  // already sealed (or never admitted): too late to cancel
}

void Scheduler::flush() {
  for (auto it = open_.begin(); it != open_.end();) {
    OpenBatch ob = std::move(it->second);
    const auto key = it->first;
    it = open_.erase(it);
    seal(key.second, key.first, std::move(ob));
  }
  flush_watermark_ = next_batch_id_;
}

std::vector<SealedBatch> Scheduler::take_runnable() {
  std::vector<SealedBatch> out;
  out.swap(runnable_);
  return out;
}

void Scheduler::record_measured(std::uint64_t batch_id,
                                const std::vector<double>& job_cycles) {
  auto it = pending_.find(batch_id);
  MORPH_CHECK_MSG(it != pending_.end(),
                  "record_measured: unknown batch " << batch_id);
  MORPH_CHECK_MSG(job_cycles.size() == it->second.sealed.jobs.size(),
                  "record_measured: batch " << batch_id << " expects "
                                            << it->second.sealed.jobs.size()
                                            << " jobs");
  it->second.measured = job_cycles;
  it->second.has_measured = true;
}

std::vector<JobPlacement> Scheduler::advance() {
  std::vector<JobPlacement> out;
  while (!pending_.empty()) {
    // Earliest-free slot (ties: lowest index).
    std::uint32_t slot = 0;
    for (std::uint32_t s = 1; s < slot_ready_.size(); ++s) {
      if (slot_ready_[s] < slot_ready_[slot]) slot = s;
    }
    double t = slot_ready_[slot];

    // Batches runnable at t; if none, the dispatch waits for the earliest
    // seal (arrivals only move virtual time forward).
    double min_seal = std::numeric_limits<double>::infinity();
    bool any_at_t = false;
    for (const auto& [id, pb] : pending_) {
      min_seal = std::min(min_seal, pb.sealed.seal_at);
      any_at_t = any_at_t || pb.sealed.seal_at <= t;
    }
    if (!any_at_t) t = min_seal;

    // A dispatch at time t is only final if no future arrival can still
    // seal a competing batch at or before t. Future arrivals land at
    // >= latest_arrival(), so t strictly before it is safe; otherwise the
    // whole pending set must be inside the flushed epoch.
    if (t >= last_at_ && pending_.rbegin()->first >= flush_watermark_) {
      break;
    }

    // Best (priority, seal order) batch available at t.
    const PendingBatch* best = nullptr;
    for (const auto& [id, pb] : pending_) {
      (void)id;
      if (pb.sealed.seal_at > t) continue;
      if (best == nullptr || pb.sealed.priority < best->sealed.priority ||
          (pb.sealed.priority == best->sealed.priority &&
           pb.sealed.id < best->sealed.id)) {
        best = &pb;
      }
    }
    MORPH_CHECK(best != nullptr);
    if (!best->has_measured) break;  // execution has not caught up yet

    const SealedBatch& b = best->sealed;
    double cycles = cfg_.dispatch_cycles;
    for (double c : best->measured) cycles += c;
    const double start = t;
    const double end = start + cycles;
    slot_ready_[slot] = end;

    for (std::size_t i = 0; i < b.jobs.size(); ++i) {
      const auto jit = jobs_.find(b.jobs[i]);
      MORPH_CHECK(jit != jobs_.end());
      JobPlacement p;
      p.seq = b.jobs[i];
      p.batch = b.id;
      p.batch_size = static_cast<std::uint32_t>(b.jobs.size());
      p.slot = slot;
      p.arrival_cycles = jit->second.arrival_cycles;
      p.start_cycles = start;
      p.end_cycles = end;
      p.queue_cycles = start - jit->second.arrival_cycles;
      out.push_back(p);
      jobs_.erase(jit);
      ++placed_jobs_;
    }
    pending_.erase(b.id);
  }
  return out;
}

std::string Scheduler::checkpoint_blob() const {
  MORPH_CHECK_MSG(jobs_.empty() && open_.empty() && pending_.empty() &&
                      runnable_.empty(),
                  "scheduler checkpoint requires quiescence");
  std::string b;
  put_u64(next_seq_, b);
  put_u64(next_batch_id_, b);
  put_u64(flush_watermark_, b);
  put_u64(placed_jobs_, b);
  put_u64(admitted_, b);
  put_u64(rejected_, b);
  put_u64(deadline_rejected_, b);
  put_u64(cancelled_, b);
  put_u64(std::bit_cast<std::uint64_t>(last_at_), b);
  put_u64(std::bit_cast<std::uint64_t>(bucket_), b);
  put_u64(saw_arrival_ ? 1 : 0, b);
  put_u64(slot_ready_.size(), b);
  for (const double t : slot_ready_) {
    put_u64(std::bit_cast<std::uint64_t>(t), b);
  }
  put_u64(deposits_.size(), b);
  for (const auto& [seq, rem] : deposits_) {
    put_u64(seq, b);
    put_u64(std::bit_cast<std::uint64_t>(rem), b);
  }
  return b;
}

bool Scheduler::restore_blob(const std::string& blob) {
  std::size_t pos = 0;
  std::uint64_t next_seq = 0, next_batch = 0, watermark = 0, placed = 0;
  std::uint64_t admitted = 0, rejected = 0, deadline_rej = 0, cancelled = 0;
  double last_at = 0.0, bucket = 0.0;
  std::uint64_t saw = 0, nslots = 0;
  if (!get_u64(blob, pos, &next_seq) || !get_u64(blob, pos, &next_batch) ||
      !get_u64(blob, pos, &watermark) || !get_u64(blob, pos, &placed) ||
      !get_u64(blob, pos, &admitted) || !get_u64(blob, pos, &rejected) ||
      !get_u64(blob, pos, &deadline_rej) || !get_u64(blob, pos, &cancelled) ||
      !get_double(blob, pos, &last_at) || !get_double(blob, pos, &bucket) ||
      !get_u64(blob, pos, &saw) || !get_u64(blob, pos, &nslots)) {
    return false;
  }
  if (nslots != slot_ready_.size()) return false;  // pool resized: stay fresh
  std::vector<double> slots(nslots, 0.0);
  for (std::uint64_t i = 0; i < nslots; ++i) {
    if (!get_double(blob, pos, &slots[i])) return false;
  }
  std::uint64_t ndeposits = 0;
  if (!get_u64(blob, pos, &ndeposits)) return false;
  std::deque<std::pair<std::uint64_t, double>> deposits;
  for (std::uint64_t i = 0; i < ndeposits; ++i) {
    std::uint64_t seq = 0;
    double rem = 0.0;
    if (!get_u64(blob, pos, &seq) || !get_double(blob, pos, &rem)) {
      return false;
    }
    deposits.emplace_back(seq, rem);
  }
  if (pos != blob.size()) return false;

  next_seq_ = next_seq;
  next_batch_id_ = next_batch;
  flush_watermark_ = watermark;
  placed_jobs_ = placed;
  admitted_ = admitted;
  rejected_ = rejected;
  deadline_rejected_ = deadline_rej;
  cancelled_ = cancelled;
  last_at_ = last_at;
  bucket_ = bucket;
  saw_arrival_ = saw != 0;
  slot_ready_ = std::move(slots);
  deposits_ = std::move(deposits);
  return true;
}

}  // namespace morph::serve
