// The morph job server: a long-lived, multi-tenant serving loop.
//
// Threads:
//   * one acceptor, blocking on the unix listening socket;
//   * one reader per client connection, parsing frames and feeding the
//     scheduler;
//   * `workers` executor threads, each popping the best (priority, seal
//     order) sealed batch and running its jobs on fresh gpu::Device
//     instances (serve/executor.hpp) — the "pool".
//
// Determinism layering: real threads race freely (TSan-clean), but nothing
// they race on is observable. Job results come from isolated per-job
// devices; batch composition, dispatch order, and modeled serving stats come
// from the single-threaded Scheduler fed only by the arrival sequence; and
// results are emitted in the scheduler's virtual dispatch order, serialized
// by an emission lock. Replaying an arrival order therefore reproduces every
// reply byte for byte (wall-clock fields are never put on the wire).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gpu/config.hpp"
#include "serve/executor.hpp"
#include "serve/journal.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"
#include "support/status.hpp"

namespace morph::serve {

struct ServerConfig {
  std::string socket_path = "/tmp/morph-served.sock";
  SchedulerConfig sched;
  gpu::DeviceConfig device;      ///< base config; per-job state is re-armed
  std::uint32_t workers = 0;     ///< executor threads; 0 = one per pool slot
  /// Write-ahead journal (docs/SERVER.md, "Durability & operations").
  /// journal.path empty = no journal, no durability, no recovery.
  JournalConfig journal;
  /// Wall-clock bound on drain_stop(); past it the server hard-stops with
  /// work still queued. <= 0 waits forever.
  double drain_deadline_ms = 30000.0;
  /// Consecutive job faults on one virtual pool slot before that slot is
  /// flagged quarantined in stats. 0 disables.
  std::uint32_t quarantine_threshold = 3;
};

/// See the file comment. start() spawns the serving threads and returns;
/// wait() blocks until a client "shutdown" (drained) or request_stop().
class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Recovers from the journal (when configured), binds the socket, and
  /// spawns the serving threads. Recovery replays every journaled frame
  /// through the normal admission path before the socket opens, so the
  /// arrival sequence — and with it every scheduling decision — continues
  /// exactly where the crashed process left it.
  Status start();
  void wait();
  /// Signal-safe entry is the caller's job (write to a pipe, then call this
  /// from a normal thread). Stops accepting, drains nothing: queued batches
  /// finish, unfinished emissions are dropped.
  void request_stop();
  /// Graceful drain (SIGTERM): stop accepting work, seal and finish every
  /// admitted batch, emit all results, checkpoint the journal, then stop.
  /// Bounded by drain_deadline_ms — on timeout the server hard-stops and
  /// the journal keeps the unfinished tail for the next recovery. Returns
  /// false on that timeout path.
  bool drain_stop();

  const ServerConfig& config() const { return cfg_; }
  std::uint64_t recovered_jobs() const { return recovered_jobs_; }
  std::uint64_t drained_jobs() const { return drained_jobs_; }

 private:
  /// One client connection. Outbound frames are queued and flushed by a
  /// dedicated writer thread, so a slow or stalled client can never block
  /// emission (which is serialized server-wide to preserve the virtual
  /// dispatch order) for everyone else.
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::mutex write_mu;            ///< guards outbuf + drained signalling
    std::condition_variable write_cv;
    std::string outbuf;             ///< encoded frames awaiting the writer
    bool writing = false;           ///< writer is mid-chunk (for flush_conn)
    std::atomic<bool> open{true};
  };
  /// Sentinel arrival stamp for unstamped frames.
  static constexpr std::uint64_t kNoArrival = ~std::uint64_t{0};

  struct JobCtx {
    std::shared_ptr<Conn> conn;  ///< null while owned by recovery replay
    JobRequest req;
    std::uint64_t arrival = kNoArrival;  ///< stamp of the admitting frame
  };
  struct Emission {
    std::shared_ptr<Conn> conn;
    telemetry::Json frame;
    std::uint64_t arrival = kNoArrival;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Conn> conn);
  void writer_loop(std::shared_ptr<Conn> conn);
  void worker_loop();
  void handle_message(const std::shared_ptr<Conn>& conn,
                      const telemetry::Json& msg,
                      std::uint64_t arrival = kNoArrival);
  void handle_submit(const std::shared_ptr<Conn>& conn,
                     const telemetry::Json& msg, std::uint64_t arrival);
  void handle_cancel(const std::shared_ptr<Conn>& conn,
                     const telemetry::Json& msg, std::uint64_t arrival);
  /// session-open / session-update / session-close. Executed inline: the
  /// arrival gate already serializes stamped frames, and a session's
  /// persistent device must never be handed to racing pool workers
  /// (serve/session.hpp).
  void handle_session(const std::shared_ptr<Conn>& conn,
                      const telemetry::Json& msg, std::uint64_t arrival,
                      const std::string& type);
  /// A frame whose stamp the gate already admitted — a client resubmitting
  /// after a server crash. Answered idempotently: stored replayed reply,
  /// re-attachment to the still-running replayed job, or a silent no-op for
  /// re-applied flush/cancel.
  void handle_replayed(const std::shared_ptr<Conn>& conn,
                       const telemetry::Json& msg, std::uint64_t arrival);
  /// Replays the journal's surviving records through handle_message before
  /// any serving thread exists.
  Status recover_from_journal();
  /// send() when the frame has a live connection; otherwise (recovery
  /// replay) the frame is stored by arrival stamp for the client's
  /// resubmission to collect.
  void reply(const std::shared_ptr<Conn>& conn, std::uint64_t arrival,
             const telemetry::Json& frame);
  /// Best-effort journal append: a journal that stops accepting writes
  /// costs durability, not availability (counted in stats as
  /// journal_errors).
  void journal_admitted(std::uint64_t arrival, const telemetry::Json& msg);
  void journal_completed(std::uint64_t arrival);
  /// Completion marker for a frame answered inline — session frames, flush,
  /// cancel, and rejected submits, whose replies never pass through
  /// emit_ready. Like journal_completed, but suppressed for frames the
  /// pre-crash process already completed (recovery replay re-executes them
  /// for state only), and followed by a compaction check. Without this a
  /// flush or reject would be retained forever and re-applied on top of a
  /// checkpoint snapshot that already contains its effect.
  void inline_completed(std::uint64_t arrival);
  /// Checkpoint compaction (docs/SERVER.md, "Durability & operations"):
  /// once checkpoint_every completions have accumulated and the server is
  /// quiescent (no admitted job awaiting execution or emission), snapshots
  /// the arrival gate + scheduler into a 'K' record and rewrites the journal
  /// down to that record plus the frames recovery still needs — uncompleted
  /// frames and open sessions' history. `force` compacts regardless of the
  /// completion count (the graceful-drain path uses it to persist open
  /// sessions). `floor_hint` is the arrival of the frame whose completion
  /// triggered the checkpoint: completion can run inside handle_message,
  /// before the reader loop bumps next_arrival_, so the snapshotted gate
  /// floor must be raised to hint + 1 or a restart would wait forever for a
  /// stamp it already consumed. Caller must hold emit_mu_ and nothing else.
  void maybe_checkpoint_locked(bool force,
                               std::uint64_t floor_hint = kNoArrival);
  telemetry::Json stats_json();
  /// Runs the virtual placement as far as it goes and streams the newly
  /// final results, in virtual dispatch order. Callers must NOT hold
  /// emit_mu_ or mu_.
  void emit_ready();
  /// Queues a frame on the connection's outbound buffer (never blocks on
  /// the socket; the writer thread does the actual I/O).
  void send(const std::shared_ptr<Conn>& conn, const telemetry::Json& msg);
  /// Blocks until the connection's outbound buffer has drained (or the
  /// connection died) — used before acknowledged teardown ("bye").
  void flush_conn(const std::shared_ptr<Conn>& conn);
  void enqueue_runnable_locked();

  ServerConfig cfg_;
  int listen_fd_ = -1;

  std::mutex mu_;  ///< guards scheduler + queues + job maps + counters
  std::condition_variable work_cv_;   ///< batches queued / stopping
  std::condition_variable drain_cv_;  ///< a drain watcher (shutdown) waits
  Scheduler sched_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, SealedBatch> exec_queue_;
  std::map<std::uint64_t, JobCtx> job_ctx_;        ///< by admission seq
  std::map<std::uint64_t, JobOutcome> outcomes_;   ///< by admission seq
  std::uint32_t executing_ = 0;                    ///< batches in flight
  std::uint64_t jobs_executed_ = 0;
  std::uint64_t results_emitted_ = 0;
  std::uint64_t bad_requests_ = 0;
  std::uint64_t next_conn_id_ = 0;
  /// Replies produced while replaying the journal (reject, error, result)
  /// keyed by the admitting frame's arrival stamp; a resubmission with that
  /// stamp is answered from here, byte-identical to the no-crash reply.
  std::map<std::uint64_t, telemetry::Json> replayed_replies_;
  QuarantinePool quarantine_;
  std::uint64_t recoveries_ = 0;      ///< journal recoveries at start (0/1)
  std::uint64_t recovered_jobs_ = 0;  ///< incomplete jobs re-admitted
  std::uint64_t drained_jobs_ = 0;    ///< results emitted by drain_stop()

  /// Open sessions by name. Mutations happen only on the gate-serialized
  /// frame path (or single-threaded recovery); mu_ guards the map structure
  /// so stats_json can read counts concurrently. Session *execution* holds
  /// no server lock — the gate is the serialization.
  std::map<std::string, std::unique_ptr<Session>> sessions_;
  std::uint64_t sessions_opened_ = 0;
  std::uint64_t session_updates_ = 0;    ///< update frames applied
  std::uint64_t recovered_sessions_ = 0; ///< sessions rebuilt by recovery

  /// Journal state. Ordered after mu_ (journal_admitted is called with no
  /// lock held; journal_completed from emit_ready after mu_ released).
  std::mutex journal_mu_;
  Journal journal_;
  bool journal_enabled_ = false;
  std::uint64_t journal_errors_ = 0;

  /// Compaction bookkeeping (guarded by journal_mu_): every journaled frame
  /// recovery could still need. Completed 'A' entries drop immediately
  /// (their scheduler effects live in the next checkpoint's snapshot);
  /// completed 'S' entries stay while their session is open, because
  /// recovery re-executes the whole session history to rebuild state.
  struct RetainedRec {
    bool session = false;      ///< 'S' record (vs 'A')
    std::string frame;         ///< raw frame JSON
    std::string session_name;  ///< session records only
    bool completed = false;
  };
  std::map<std::uint64_t, RetainedRec> retained_;  ///< by arrival stamp
  std::set<std::string> open_session_names_;  ///< journal_mu_ mirror of sessions_
  std::uint64_t completions_since_checkpoint_ = 0;
  std::uint64_t compactions_ = 0;

  /// True while recover_from_journal replays; suppresses compaction and
  /// duplicate completion markers for frames in recovery_completed_.
  bool in_recovery_ = false;
  std::set<std::uint64_t> recovery_completed_;

  /// Serializes emission so results leave in virtual dispatch order even
  /// when several workers finish simultaneously. Ordered before mu_.
  std::mutex emit_mu_;

  /// The arrival gate: frames stamped with an "arrival" sequence number are
  /// admitted in strictly increasing stamp order across ALL connections.
  /// Per-connection reader threads otherwise race, which would make the
  /// arrival order — the input the whole determinism contract is
  /// conditioned on — depend on thread scheduling (a flush could even
  /// overtake submits still queued on sibling connections and strand them
  /// in open batches). Unstamped frames bypass the gate.
  std::mutex order_mu_;
  std::condition_variable order_cv_;
  std::uint64_t next_arrival_ = 0;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::mutex lifecycle_mu_;
  std::condition_variable stopped_cv_;
  bool stop_requested_ = false;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex readers_mu_;
  std::vector<std::thread> readers_;
  std::vector<std::shared_ptr<Conn>> conns_;
};

}  // namespace morph::serve
