// Plain-text table printer: benches use it to emit rows in the same shape as
// the paper's figures/tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace morph {

/// Accumulates rows of string cells and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row. Cells beyond the header width are dropped; missing cells
  /// are blank.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace morph
