// Morton (Z-order) encoding: the space-filling-curve key used by the mesh
// generators, the point-location insertion order, and the memory-layout
// scan. One definition; callers in graph/ and dmr/ share it.
#pragma once

#include <cstdint>

namespace morph {

/// Interleaves the low 32 bits of x and y (x in even positions).
inline std::uint64_t morton_interleave(std::uint32_t x, std::uint32_t y) {
  auto spread = [](std::uint64_t v) {
    v &= 0xffffffffULL;
    v = (v | (v << 16)) & 0x0000ffff0000ffffULL;
    v = (v | (v << 8)) & 0x00ff00ff00ff00ffULL;
    v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0fULL;
    v = (v | (v << 2)) & 0x3333333333333333ULL;
    v = (v | (v << 1)) & 0x5555555555555555ULL;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

/// Morton key of a point in the unit square (coordinates clamped to [0,1]).
inline std::uint64_t morton_unit(double x, double y) {
  auto scale = [](double v) {
    if (v < 0.0) v = 0.0;
    if (v > 1.0) v = 1.0;
    // Clamp to the top of the 30-bit grid: v == 1.0 would otherwise scale
    // to 1<<30 (bit 30 set), landing boundary points outside the key range
    // every interior point maps to and breaking their key-locality.
    const auto k = static_cast<std::uint32_t>(v * static_cast<double>(1u << 30));
    return k < (1u << 30) ? k : (1u << 30) - 1;
  };
  return morton_interleave(scale(x), scale(y));
}

}  // namespace morph
