// Typed status codes for recoverable failures.
//
// Capacity and allocation failures used to assert (MORPH_CHECK) and abort the
// run; the resilience subsystem needs something it can catch and act on
// instead. A Status is cheap to return from hot paths (one enum + an optional
// message that is only populated on failure); FaultError wraps a non-OK
// Status for the boundaries where failure must propagate as an exception
// (driver loops, CLI mains).
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace morph {

enum class StatusCode {
  kOk = 0,
  kArenaExhausted,      ///< DeviceHeap chunk arena at its budget
  kWorklistFull,        ///< global worklist capacity reached
  kCapacityExceeded,    ///< DeviceBuffer growth beyond its limit
  kLaunchFailed,        ///< transient kernel-launch failure (injected)
  kLivelock,            ///< conflict resolution made no progress
  kInvariantViolation,  ///< app-level invariant checker rejected the state
  kRetriesExhausted,    ///< a bounded-retry recovery ladder gave up
  kBadFaultSpec,        ///< --faults=<spec> did not parse
  kAdmissionRejected,   ///< job server admission control turned the job away
  kBadRequest,          ///< malformed protocol frame / job request
  kIoError,             ///< socket or file transport failure
  kTimeout,             ///< client-side receive deadline expired
  kDeadlineExceeded,    ///< job could not meet its virtual-time deadline
  kCancelled,           ///< job cancelled by the client before it sealed
  kUnavailable,         ///< server is draining and accepts no new work
};

inline const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kArenaExhausted: return "arena-exhausted";
    case StatusCode::kWorklistFull: return "worklist-full";
    case StatusCode::kCapacityExceeded: return "capacity-exceeded";
    case StatusCode::kLaunchFailed: return "launch-failed";
    case StatusCode::kLivelock: return "livelock";
    case StatusCode::kInvariantViolation: return "invariant-violation";
    case StatusCode::kRetriesExhausted: return "retries-exhausted";
    case StatusCode::kBadFaultSpec: return "bad-fault-spec";
    case StatusCode::kAdmissionRejected: return "admission-rejected";
    case StatusCode::kBadRequest: return "bad-request";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kUnavailable: return "unavailable";
  }
  return "unknown";
}

/// Result of an operation that may fail recoverably.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status{}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "arena-exhausted: chunk budget (8) reached" — or "ok".
  std::string to_string() const {
    if (ok()) return "ok";
    std::string s = status_code_name(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Thrown at recovery-ladder boundaries when a Status must stop the run
/// (exhausted retries, unparseable fault spec, watchdog give-up). Carries the
/// originating Status so tests and mains can branch on the code.
class FaultError : public std::runtime_error {
 public:
  explicit FaultError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  const Status& status() const { return status_; }
  StatusCode code() const { return status_.code(); }

 private:
  Status status_;
};

/// Throws FaultError if `s` is not OK; otherwise returns it unchanged.
inline const Status& throw_if_error(const Status& s) {
  if (!s.ok()) throw FaultError(s);
  return s;
}

}  // namespace morph
