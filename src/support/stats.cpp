#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/check.hpp"

namespace morph {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) {
    MORPH_CHECK_MSG(x > 0.0, "geomean requires positive values");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

}  // namespace morph
