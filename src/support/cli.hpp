// Minimal --key=value command-line parsing for benches and examples.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace morph {

/// Parses flags of the form --name=value (or bare --name, meaning "1").
/// Positional arguments are collected in order.
class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& dflt) const;
  std::int64_t get_int(const std::string& name, std::int64_t dflt) const;
  double get_double(const std::string& name, double dflt) const;
  bool get_bool(const std::string& name, bool dflt) const;

  const std::map<std::string, std::string>& flags() const { return flags_; }

 private:
  std::map<std::string, std::string> flags_;
};

/// Number of host worker threads drivers use when --host-workers is absent:
/// 0, the "auto" sentinel (one worker per hardware thread — see
/// gpu::DeviceConfig::host_workers). Block-parallel execution is the
/// standard fast path for every driver and bench harness.
std::uint32_t default_host_workers();

/// Reads --host-workers (defaulting to default_host_workers()) for plumbing
/// into gpu::DeviceConfig::host_workers. --host-workers=1 restores the
/// serial inline mode; modeled statistics are identical either way.
std::uint32_t host_workers_arg(const CliArgs& args);

}  // namespace morph
