// Minimal --key=value command-line parsing for benches and examples.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace morph {

/// Parses flags of the form --name=value (or bare --name, meaning "1").
/// Positional (non-flag) arguments are collected in order.
class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& dflt) const;
  std::int64_t get_int(const std::string& name, std::int64_t dflt) const;
  double get_double(const std::string& name, double dflt) const;
  bool get_bool(const std::string& name, bool dflt) const;

  /// Strict variant for size/scale flags: the flag must parse completely as
  /// an integer and be strictly positive. Returns nullopt on a malformed or
  /// non-positive value (and the default when the flag is absent).
  std::optional<std::int64_t> try_get_positive_int(const std::string& name,
                                                   std::int64_t dflt) const;

  /// try_get_positive_int, but a bad value prints a clear error to stderr
  /// and exits with status 2 — benches use this so `--scale=0` (which would
  /// divide workload sizes by zero) fails loudly instead of garbling sizes.
  std::int64_t get_positive_int(const std::string& name,
                                std::int64_t dflt) const;

  /// Warns on every parsed flag not in `known` (so typos like
  /// `--host-worker=4` don't silently no-op), suggesting the closest known
  /// flag when one is within small edit distance. Returns the number of
  /// unknown flags.
  std::size_t warn_unknown(const std::vector<std::string>& known,
                           std::ostream& err) const;

  const std::map<std::string, std::string>& flags() const { return flags_; }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Number of host worker threads drivers use when --host-workers is absent:
/// 0, the "auto" sentinel (one worker per hardware thread — see
/// gpu::DeviceConfig::host_workers). Block-parallel execution is the
/// standard fast path for every driver and bench harness.
std::uint32_t default_host_workers();

/// Reads --host-workers (defaulting to default_host_workers()) for plumbing
/// into gpu::DeviceConfig::host_workers. --host-workers=1 restores the
/// serial inline mode; modeled statistics are identical either way.
std::uint32_t host_workers_arg(const CliArgs& args);

}  // namespace morph
