// Deterministic, seedable random number generation.
//
// All workload generators in this library take an explicit seed so that every
// experiment is exactly reproducible. We use splitmix64 for seeding and
// xoshiro256** as the main generator (fast, high quality, no global state).
#pragma once

#include <cstdint>
#include <limits>

#include "support/check.hpp"

namespace morph {

/// splitmix64 step; used to expand a single seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234abcd) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    MORPH_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % bound;
    std::uint64_t x;
    do {
      x = (*this)();
    } while (x >= limit);
    return x % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    MORPH_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Derive an independent child generator (for per-thread streams).
  Rng split() {
    std::uint64_t s = (*this)();
    return Rng(s);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace morph
