#include "support/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>

namespace morph {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      flags_.insert_or_assign(std::move(arg), std::string("1"));
    } else {
      flags_.insert_or_assign(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& dflt) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? dflt : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t dflt) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? dflt : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double dflt) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool dflt) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return dflt;
  return it->second != "0" && it->second != "false";
}

std::optional<std::int64_t> CliArgs::try_get_positive_int(
    const std::string& name, std::int64_t dflt) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return dflt;
  const std::string& raw = it->second;
  if (raw.empty()) return std::nullopt;
  char* end = nullptr;
  const long long v = std::strtoll(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0') return std::nullopt;
  if (v <= 0) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::int64_t CliArgs::get_positive_int(const std::string& name,
                                       std::int64_t dflt) const {
  if (const auto v = try_get_positive_int(name, dflt)) return *v;
  std::cerr << "error: --" << name << "=" << get(name, "")
            << " is not a positive integer\n";
  std::exit(2);
}

namespace {

// Classic O(n*m) edit distance, plenty for flag-typo suggestions.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

std::size_t CliArgs::warn_unknown(const std::vector<std::string>& known,
                                  std::ostream& err) const {
  std::size_t unknown = 0;
  for (const auto& [flag, value] : flags_) {
    (void)value;
    if (std::find(known.begin(), known.end(), flag) != known.end()) continue;
    ++unknown;
    err << "warning: unknown flag --" << flag;
    std::size_t best = 3;  // suggest only within edit distance 2
    const std::string* suggestion = nullptr;
    for (const std::string& k : known) {
      const std::size_t d = edit_distance(flag, k);
      if (d < best) {
        best = d;
        suggestion = &k;
      }
    }
    if (suggestion) err << " (did you mean --" << *suggestion << "?)";
    err << "\n";
  }
  return unknown;
}

std::uint32_t default_host_workers() {
  return 0;  // auto: the Device resolves 0 to hardware_concurrency
}

std::uint32_t host_workers_arg(const CliArgs& args) {
  const std::int64_t v =
      args.get_int("host-workers", static_cast<std::int64_t>(default_host_workers()));
  return v < 0 ? 0u : static_cast<std::uint32_t>(v);
}

}  // namespace morph
