#include "support/cli.hpp"

#include <cstdlib>

namespace morph {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      flags_[arg] = "1";
    } else {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& dflt) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? dflt : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t dflt) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? dflt : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double dflt) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool dflt) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return dflt;
  return it->second != "0" && it->second != "false";
}

std::uint32_t default_host_workers() {
  return 0;  // auto: the Device resolves 0 to hardware_concurrency
}

std::uint32_t host_workers_arg(const CliArgs& args) {
  const std::int64_t v =
      args.get_int("host-workers", static_cast<std::int64_t>(default_host_workers()));
  return v < 0 ? 0u : static_cast<std::uint32_t>(v);
}

}  // namespace morph
