// Small statistics helpers used by benches and the adaptive controller.
#pragma once

#include <cstddef>
#include <span>

namespace morph {

double mean(std::span<const double> xs);
double geomean(std::span<const double> xs);
double stddev(std::span<const double> xs);
double median(std::span<const double> xs);

/// Online mean/max/min accumulator.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace morph
