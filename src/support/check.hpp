// Lightweight runtime checking used across the library.
//
// MORPH_CHECK is an always-on invariant check (it is not compiled out in
// release builds): morph algorithms are full of subtle concurrency and
// geometry invariants, and silent corruption is far more expensive than the
// branch. Violations throw morph::CheckError so tests can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace morph {

/// Thrown when a MORPH_CHECK invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "MORPH_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace morph

#define MORPH_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr))                                                       \
      ::morph::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define MORPH_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream morph_check_os;                               \
      morph_check_os << msg;                                           \
      ::morph::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                    morph_check_os.str());             \
    }                                                                  \
  } while (0)
