// Deterministic fault injection for the simulated GPU.
//
// A FaultPlan is a parsed --faults=<spec> campaign: a list of clauses, each
// naming a fault class and saying when (and how often, and with what
// probability) it fires. The plan is attached to gpu::DeviceConfig::faults;
// components with an injection point ask the device's FaultInjector
// `should_fire(cls)` once per *opportunity* (an allocation, a push, a launch,
// a barrier, a conflict round). Opportunities are counted per class, so a
// clause like `arena@3x2` fires on the 3rd and 4th arena-allocation
// opportunities — positions in program order, not wall-clock, which is what
// makes a campaign replay bit-identically. Probabilistic clauses (`~p`) draw
// from a seeded per-class PRNG keyed by (plan seed, class), so they are just
// as deterministic.
//
// Spec grammar (comma-separated clauses):
//
//   clause  := class [ '@' after ] [ 'x' count ] [ '~' prob ]
//   class   := arena | globalwl | localwl | launch | barrier | livelock
//            | journal
//
//   after   — 1-based opportunity index of the first firing (default 1)
//   count   — number of consecutive opportunities that fire (default 1)
//   prob    — firing probability per opportunity in (0,1] (default 1),
//             evaluated only inside the [after, after+count) window
//
// Example: `--faults=arena@3x2,launch@1,livelock@2x3`.
//
// The library deliberately depends only on morph_support: the gpu layer owns
// the injector instance and emits the telemetry fault/recovery events itself.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace morph::resilience {

/// The injectable failure classes (ISSUE 4 tentpole list).
enum class FaultClass : std::uint8_t {
  kArenaExhaust = 0,     ///< device-malloc arena exhaustion (DeviceHeap)
  kGlobalWlOverflow,     ///< global worklist push finds it full
  kLocalWlOverflow,      ///< per-thread local worklist overflows
  kLaunchFail,           ///< transient kernel-launch failure
  kBarrierStall,         ///< one intra-kernel global barrier stalls
  kLivelock,             ///< conflict resolution: repeated priority ties
  kJournalTorn,          ///< serve WAL append crashes mid-record (torn write)
};

inline constexpr std::size_t kNumFaultClasses = 7;

const char* fault_class_name(FaultClass cls);

/// One `class[@after][xcount][~prob]` clause.
struct FaultClause {
  FaultClass cls = FaultClass::kArenaExhaust;
  std::uint64_t after = 1;  ///< 1-based first firing opportunity
  std::uint64_t count = 1;  ///< consecutive firing opportunities
  double prob = 1.0;        ///< per-opportunity firing probability

  std::string to_string() const;
};

/// A full --faults campaign. Empty clauses == no injection (the device then
/// never constructs an injector, keeping the disabled path at one branch per
/// injection point).
struct FaultPlan {
  std::vector<FaultClause> clauses;
  std::uint64_t seed = 1;  ///< --fault-seed; keys the probabilistic clauses

  bool empty() const { return clauses.empty(); }
  std::string to_string() const;
};

/// Parses the spec grammar above. Returns kBadFaultSpec (with a pointed
/// message naming the offending clause) on any malformed input.
Status parse_fault_plan(const std::string& spec, std::uint64_t seed,
                        FaultPlan* out);

/// Runtime injection state for one device: per-class opportunity counters
/// plus the seeded PRNG streams. Opportunity counting is done under the
/// caller's serialization (the device pins execution to sequential block
/// order while a plan is armed), so the class is intentionally not
/// thread-safe.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  /// Counts one opportunity for `cls` and reports whether a clause fires on
  /// it. At most one firing is reported per opportunity.
  bool should_fire(FaultClass cls);

  /// Opportunities seen so far for `cls` (after the should_fire calls).
  std::uint64_t opportunities(FaultClass cls) const {
    return seen_[static_cast<std::size_t>(cls)];
  }
  /// Faults actually fired so far for `cls`.
  std::uint64_t fired(FaultClass cls) const {
    return fired_[static_cast<std::size_t>(cls)];
  }

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  std::array<std::uint64_t, kNumFaultClasses> seen_{};
  std::array<std::uint64_t, kNumFaultClasses> fired_{};
  std::array<std::uint64_t, kNumFaultClasses> rng_{};  ///< splitmix64 states
};

// --- CLI plumbing (bench harness + examples) -------------------------------

/// The flag names the fault CLI contributes ("faults", "fault-seed") — for
/// CliArgs::warn_unknown known-lists.
const std::vector<std::string>& fault_cli_flags();

/// Reads --faults / --fault-seed from parsed CLI flags. Returns an empty
/// optional when --faults is absent; exits with status 2 on a malformed spec
/// (mirroring CliArgs::get_positive_int's loud-failure convention).
std::optional<FaultPlan> fault_plan_from_args(
    const std::string& spec_or_empty, std::uint64_t seed);

}  // namespace morph::resilience
