#include "resilience/fault.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace morph::resilience {

namespace {

/// splitmix64 — tiny, seedable, and plenty for per-opportunity coin flips.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double uniform01(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

std::optional<FaultClass> class_from_name(const std::string& name) {
  if (name == "arena") return FaultClass::kArenaExhaust;
  if (name == "globalwl") return FaultClass::kGlobalWlOverflow;
  if (name == "localwl") return FaultClass::kLocalWlOverflow;
  if (name == "launch") return FaultClass::kLaunchFail;
  if (name == "barrier") return FaultClass::kBarrierStall;
  if (name == "livelock") return FaultClass::kLivelock;
  if (name == "journal") return FaultClass::kJournalTorn;
  return std::nullopt;
}

Status bad_spec(const std::string& clause, const std::string& why) {
  return Status(StatusCode::kBadFaultSpec,
                "clause '" + clause + "': " + why);
}

/// Parses a full non-negative integer; nullopt on any trailing garbage.
std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

const char* fault_class_name(FaultClass cls) {
  switch (cls) {
    case FaultClass::kArenaExhaust: return "arena";
    case FaultClass::kGlobalWlOverflow: return "globalwl";
    case FaultClass::kLocalWlOverflow: return "localwl";
    case FaultClass::kLaunchFail: return "launch";
    case FaultClass::kBarrierStall: return "barrier";
    case FaultClass::kLivelock: return "livelock";
    case FaultClass::kJournalTorn: return "journal";
  }
  return "unknown";
}

std::string FaultClause::to_string() const {
  std::ostringstream os;
  os << fault_class_name(cls);
  if (after != 1) os << '@' << after;
  if (count != 1) os << 'x' << count;
  if (prob != 1.0) os << '~' << prob;
  return os.str();
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    if (i) os << ',';
    os << clauses[i].to_string();
  }
  return os.str();
}

Status parse_fault_plan(const std::string& spec, std::uint64_t seed,
                        FaultPlan* out) {
  FaultPlan plan;
  plan.seed = seed;

  std::istringstream ss(spec);
  std::string clause;
  while (std::getline(ss, clause, ',')) {
    if (clause.empty()) return bad_spec(clause, "empty clause");

    FaultClause fc;
    std::string rest = clause;

    // ~prob suffix first (it may contain digits that would confuse the
    // @/x scans if peeled later).
    if (auto tilde = rest.find('~'); tilde != std::string::npos) {
      std::string p = rest.substr(tilde + 1);
      rest = rest.substr(0, tilde);
      char* end = nullptr;
      fc.prob = std::strtod(p.c_str(), &end);
      if (p.empty() || end != p.c_str() + p.size())
        return bad_spec(clause, "bad probability '" + p + "'");
      if (!(fc.prob > 0.0 && fc.prob <= 1.0))
        return bad_spec(clause, "probability must be in (0,1]");
    }
    if (auto x = rest.find('x'); x != std::string::npos) {
      std::string n = rest.substr(x + 1);
      rest = rest.substr(0, x);
      auto v = parse_u64(n);
      if (!v || *v == 0) return bad_spec(clause, "bad count '" + n + "'");
      fc.count = *v;
    }
    if (auto at = rest.find('@'); at != std::string::npos) {
      std::string n = rest.substr(at + 1);
      rest = rest.substr(0, at);
      auto v = parse_u64(n);
      if (!v || *v == 0)
        return bad_spec(clause, "bad opportunity index '" + n + "'");
      fc.after = *v;
    }

    auto cls = class_from_name(rest);
    if (!cls)
      return bad_spec(clause, "unknown fault class '" + rest +
                                  "' (expected arena|globalwl|localwl|"
                                  "launch|barrier|livelock|journal)");
    fc.cls = *cls;
    plan.clauses.push_back(fc);
  }

  if (plan.clauses.empty())
    return Status(StatusCode::kBadFaultSpec, "empty fault spec");
  *out = std::move(plan);
  return Status::Ok();
}

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {
  // Independent, deterministic PRNG stream per class: identical campaigns
  // replay identically regardless of which classes other clauses touch.
  for (std::size_t c = 0; c < kNumFaultClasses; ++c) {
    std::uint64_t s = plan_.seed;
    (void)splitmix64(s);
    rng_[c] = s + 0x632be59bd9b4e019ull * (c + 1);
  }
}

bool FaultInjector::should_fire(FaultClass cls) {
  const auto idx = static_cast<std::size_t>(cls);
  const std::uint64_t opportunity = ++seen_[idx];  // 1-based

  for (const FaultClause& fc : plan_.clauses) {
    if (fc.cls != cls) continue;
    if (opportunity < fc.after || opportunity >= fc.after + fc.count) continue;
    if (fc.prob < 1.0 && uniform01(rng_[idx]) >= fc.prob) continue;
    ++fired_[idx];
    return true;
  }
  return false;
}

const std::vector<std::string>& fault_cli_flags() {
  static const std::vector<std::string> kFlags = {"faults", "fault-seed"};
  return kFlags;
}

std::optional<FaultPlan> fault_plan_from_args(
    const std::string& spec_or_empty, std::uint64_t seed) {
  if (spec_or_empty.empty()) return std::nullopt;
  FaultPlan plan;
  Status s = parse_fault_plan(spec_or_empty, seed, &plan);
  if (!s.ok()) {
    std::fprintf(stderr, "error: --faults: %s\n", s.to_string().c_str());
    std::exit(2);
  }
  return plan;
}

}  // namespace morph::resilience
