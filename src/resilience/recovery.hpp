// Recovery policies for the graceful-degradation ladders.
//
// RetryPolicy bounds how often a recovery step (arena growth, launch retry)
// may be attempted and charges an exponentially growing modeled-cycle
// backoff, mirroring what a real driver would do with cudaDeviceSynchronize +
// host-side growth (the paper's Kernel-Host fallback, Sec. 6.2).
// LivelockWatchdog turns "no-progress round" observations from the 3-phase
// conflict protocol (paper Sec. 7.2: terminates only with high probability)
// into an escalation decision: retry, serialize priority arbitration, or
// give up loudly.
#pragma once

#include <cstdint>

#include "support/status.hpp"

namespace morph::resilience {

/// Bounded retry with exponential modeled-cycle backoff.
struct RetryPolicy {
  std::uint32_t max_retries = 3;
  double backoff_cycles = 1000.0;  ///< charged on the 1st retry
  double backoff_factor = 2.0;     ///< multiplier per subsequent retry

  /// Backoff charged for retry number `attempt` (1-based). 0.0 for attempt 0
  /// (the initial try is free).
  double backoff_for(std::uint32_t attempt) const {
    if (attempt == 0) return 0.0;
    double b = backoff_cycles;
    for (std::uint32_t i = 1; i < attempt; ++i) b *= backoff_factor;
    return b;
  }

  bool exhausted(std::uint32_t attempt) const { return attempt > max_retries; }
};

/// Tracks consecutive no-progress rounds of a conflict-resolution loop and
/// decides when to escalate. The defaults replicate the drivers' historical
/// behaviour (serialize on the first no-progress round), so arming a
/// watchdog with default thresholds does not change any fault-free run.
class LivelockWatchdog {
 public:
  enum class Action {
    kNone,      ///< progress was made (or below threshold): keep going
    kEscalate,  ///< serialize priority arbitration for the next round
    kGiveUp,    ///< hopeless: fail loudly with kLivelock
  };

  /// `escalate_after`: consecutive no-progress rounds tolerated before
  /// serializing. `give_up_after`: consecutive no-progress rounds (counting
  /// escalated rounds) before giving up; 0 means never give up.
  explicit LivelockWatchdog(std::uint32_t escalate_after = 1,
                            std::uint32_t give_up_after = 0)
      : escalate_after_(escalate_after), give_up_after_(give_up_after) {}

  /// Feed one round's outcome; returns what the driver should do next.
  Action observe(bool made_progress) {
    if (made_progress) {
      stalled_ = 0;
      return Action::kNone;
    }
    ++stalled_;
    if (give_up_after_ != 0 && stalled_ >= give_up_after_)
      return Action::kGiveUp;
    if (stalled_ >= escalate_after_) return Action::kEscalate;
    return Action::kNone;
  }

  std::uint32_t stalled_rounds() const { return stalled_; }

  /// The Status a driver should wrap in FaultError on kGiveUp.
  Status give_up_status(const char* where) const {
    return Status(StatusCode::kLivelock,
                  std::string(where) + ": no progress after " +
                      std::to_string(stalled_) + " rounds (watchdog limit)");
  }

 private:
  std::uint32_t escalate_after_;
  std::uint32_t give_up_after_;
  std::uint32_t stalled_ = 0;
};

}  // namespace morph::resilience
