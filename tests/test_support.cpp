// Unit tests for the support library (rng, stats, cli, table, checks,
// morton keys).
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/morton.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace morph {
namespace {

TEST(Check, PassesOnTrue) { EXPECT_NO_THROW(MORPH_CHECK(1 + 1 == 2)); }

TEST(Check, ThrowsCheckErrorOnFalse) {
  EXPECT_THROW(MORPH_CHECK(false), CheckError);
}

TEST(Check, MessageContainsExpressionAndLocation) {
  try {
    MORPH_CHECK_MSG(2 > 3, "custom context " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("custom context 42"), std::string::npos);
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextRangeInclusiveBounds) {
  Rng r(11);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo |= (v == -3);
    hi |= (v == 3);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliRoughlyMatchesP) {
  Rng r(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.next_bool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  // The child should not replay the parent's output.
  Rng a2(21);
  (void)a2();  // advance to where split consumed one draw
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child() == a2());
  EXPECT_LT(same, 4);
}

TEST(Rng, RejectsZeroBound) { EXPECT_THROW(Rng(1).next_below(0), CheckError); }

TEST(Stats, MeanBasic) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanEmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Stats, GeomeanBasic) {
  const double xs[] = {1.0, 4.0};
  EXPECT_DOUBLE_EQ(geomean(xs), 2.0);
}

TEST(Stats, GeomeanOfSpeedupsMatchesPaperStyle) {
  // Geometric mean like the paper's 9.3x PTA claim: order-insensitive.
  const double a[] = {2.0, 8.0};
  const double b[] = {8.0, 2.0};
  EXPECT_DOUBLE_EQ(geomean(a), geomean(b));
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const double xs[] = {1.0, 0.0};
  EXPECT_THROW(geomean(xs), CheckError);
}

TEST(Stats, StddevBasic) {
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), 2.138, 0.001);
}

TEST(Stats, MedianOddEven) {
  const double odd[] = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const double even[] = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, RunningStatsTracksMinMaxMeanSum) {
  RunningStats rs;
  for (double v : {3.0, -1.0, 5.0}) rs.add(v);
  EXPECT_EQ(rs.count(), 3u);
  EXPECT_DOUBLE_EQ(rs.min(), -1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 7.0);
  EXPECT_NEAR(rs.mean(), 7.0 / 3.0, 1e-12);
}

TEST(Cli, ParsesFlagsAndDefaults) {
  const char* argv[] = {"prog", "--n=42", "--name=mesh", "--verbose",
                        "--ratio=4.2"};
  CliArgs args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("n", 0), 42);
  EXPECT_EQ(args.get("name", ""), "mesh");
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 4.2);
  EXPECT_EQ(args.get_int("missing", -7), -7);
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, BoolFalseSpellings) {
  const char* argv[] = {"prog", "--a=0", "--b=false", "--c=1"};
  CliArgs args(4, const_cast<char**>(argv));
  EXPECT_FALSE(args.get_bool("a", true));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
}

TEST(Cli, CollectsPositionalArguments) {
  const char* argv[] = {"prog", "diff", "--threshold=0.05", "a.json",
                        "b.json"};
  CliArgs args(5, const_cast<char**>(argv));
  ASSERT_EQ(args.positional().size(), 3u);
  EXPECT_EQ(args.positional()[0], "diff");
  EXPECT_EQ(args.positional()[1], "a.json");
  EXPECT_DOUBLE_EQ(args.get_double("threshold", 0.0), 0.05);
}

TEST(Cli, PositiveIntAcceptsOnlyStrictlyPositiveIntegers) {
  const char* argv[] = {"prog",       "--ok=64",  "--zero=0", "--neg=-3",
                        "--junk=12x", "--empty=", "--word=ten"};
  CliArgs args(7, const_cast<char**>(argv));
  EXPECT_EQ(args.try_get_positive_int("ok", 1), 64);
  EXPECT_EQ(args.try_get_positive_int("absent", 7), 7);  // default passes
  EXPECT_EQ(args.try_get_positive_int("zero", 1), std::nullopt);
  EXPECT_EQ(args.try_get_positive_int("neg", 1), std::nullopt);
  EXPECT_EQ(args.try_get_positive_int("junk", 1), std::nullopt);
  EXPECT_EQ(args.try_get_positive_int("empty", 1), std::nullopt);
  EXPECT_EQ(args.try_get_positive_int("word", 1), std::nullopt);
}

TEST(Cli, WarnUnknownFlagsSuggestsClosestKnown) {
  const char* argv[] = {"prog", "--host-worker=4", "--scale=2",
                        "--completely-different"};
  CliArgs args(4, const_cast<char**>(argv));
  std::ostringstream err;
  const std::size_t n =
      args.warn_unknown({"host-workers", "scale", "json"}, err);
  EXPECT_EQ(n, 2u);
  const std::string out = err.str();
  EXPECT_NE(out.find("unknown flag --host-worker"), std::string::npos);
  EXPECT_NE(out.find("did you mean --host-workers?"), std::string::npos);
  // Nothing close to --completely-different: no suggestion offered.
  EXPECT_NE(out.find("unknown flag --completely-different"),
            std::string::npos);
  EXPECT_EQ(out.find("--completely-different (did you mean"),
            std::string::npos);
}

TEST(Cli, WarnUnknownIsQuietWhenAllFlagsKnown) {
  const char* argv[] = {"prog", "--scale=2"};
  CliArgs args(2, const_cast<char**>(argv));
  std::ostringstream err;
  EXPECT_EQ(args.warn_unknown({"scale"}, err), 0u);
  EXPECT_TRUE(err.str().empty());
}

TEST(Table, AlignsColumnsAndPadsRows) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Morton, InterleaveSpreadsBits) {
  EXPECT_EQ(morton_interleave(0, 0), 0u);
  EXPECT_EQ(morton_interleave(1, 0), 1u);   // x in even positions
  EXPECT_EQ(morton_interleave(0, 1), 2u);   // y in odd positions
  EXPECT_EQ(morton_interleave(3, 3), 15u);
  EXPECT_EQ(morton_interleave(0xffffffffu, 0),
            0x5555555555555555ULL);
}

TEST(Morton, BoundaryCoordinatesStayInsideTheKeyGrid) {
  // Regression: v == 1.0 used to scale to 1 << 30 (bit 30 set), so the
  // square's far corner and edges landed outside the 60-bit key range
  // every interior point maps to, breaking their key-locality in the
  // layout scan's sort.
  const std::uint32_t top = (1u << 30) - 1;
  EXPECT_EQ(morton_unit(1.0, 1.0), morton_interleave(top, top));
  EXPECT_EQ(morton_unit(1.0, 0.0), morton_interleave(top, 0));
  EXPECT_EQ(morton_unit(0.0, 1.0), morton_interleave(0, top));
  // Out-of-range inputs clamp to the same corner keys.
  EXPECT_EQ(morton_unit(2.0, -1.0), morton_unit(1.0, 0.0));
  // Every key fits the 60-bit grid, boundary included.
  for (double v : {0.0, 0.25, 0.5, 1.0 - 1e-12, 1.0}) {
    EXPECT_LT(morton_unit(v, 1.0 - v), 1ULL << 60);
  }
  // The corner is the maximum of the grid: no interior point exceeds it.
  EXPECT_GE(morton_unit(1.0, 1.0), morton_unit(1.0 - 1e-9, 1.0 - 1e-9));
}

}  // namespace
}  // namespace morph
