// Tests for Survey Propagation: formulas, the factor graph, the survey
// equations, decimation/unit propagation, WalkSAT, and the three drivers.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "sp/factor_graph.hpp"
#include "sp/survey.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/trace.hpp"

namespace morph::sp {
namespace {

TEST(Formula, RandomKsatShape) {
  auto f = random_ksat(100, 420, 3, 1);
  EXPECT_EQ(f.num_lits, 100u);
  EXPECT_EQ(f.k, 3u);
  EXPECT_EQ(f.num_clauses(), 420u);
  for (Clause c = 0; c < f.num_clauses(); ++c) {
    std::set<Lit> lits;
    for (std::uint32_t s = 0; s < 3; ++s) {
      EXPECT_LT(f.lit(c, s), 100u);
      lits.insert(f.lit(c, s));
    }
    EXPECT_EQ(lits.size(), 3u) << "duplicate literal in clause " << c;
  }
}

TEST(Formula, SignsRoughlyBalanced) {
  auto f = random_ksat(200, 1000, 3, 2);
  std::size_t neg = 0;
  for (auto n : f.negated) neg += n;
  const double frac = static_cast<double>(neg) / f.negated.size();
  EXPECT_NEAR(frac, 0.5, 0.05);
}

TEST(Formula, HardRatioTable) {
  EXPECT_DOUBLE_EQ(hard_ratio(3), 4.2);
  EXPECT_DOUBLE_EQ(hard_ratio(4), 9.9);
  EXPECT_DOUBLE_EQ(hard_ratio(5), 21.1);
  EXPECT_DOUBLE_EQ(hard_ratio(6), 43.4);
  EXPECT_THROW(hard_ratio(7), CheckError);
}

TEST(Formula, CheckAssignmentBasics) {
  // (x0 + x1)(~x0 + x1) with k=2.
  Formula f;
  f.num_lits = 2;
  f.k = 2;
  f.clause_lit = {0, 1, 0, 1};
  f.negated = {0, 0, 1, 0};
  EXPECT_TRUE(check_assignment(f, {0, 1}));
  EXPECT_TRUE(check_assignment(f, {1, 1}));
  EXPECT_FALSE(check_assignment(f, {1, 0}));
}

TEST(FactorGraph, LitToClauseCsrMatchesFormula) {
  auto f = random_ksat(50, 210, 3, 3);
  FactorGraph g(f);
  EXPECT_EQ(g.num_edges(), 630u);
  // Every edge appears exactly once in its literal's list.
  std::vector<int> hits(g.num_edges(), 0);
  for (Lit i = 0; i < f.num_lits; ++i) {
    for (std::uint32_t x = g.lit_off[i]; x < g.lit_off[i + 1]; ++x) {
      const std::uint32_t e = g.lit_edge[x];
      EXPECT_EQ(f.clause_lit[e], i);
      ++hits[e];
    }
  }
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(FactorGraph, FixLiteralKillsSatisfiedClauses) {
  // c0 = (x0 + x1 + x2), c1 = (~x0 + x1 + x2).
  Formula f;
  f.num_lits = 3;
  f.k = 3;
  f.clause_lit = {0, 1, 2, 0, 1, 2};
  f.negated = {0, 0, 0, 1, 0, 0};
  FactorGraph g(f);
  EXPECT_TRUE(g.fix_literal(0, true));
  EXPECT_FALSE(g.lit_alive[0]);
  EXPECT_EQ(g.assignment[0], 1);
  EXPECT_EQ(g.clause_alive[0], 0);  // satisfied, node deleted by marking
  EXPECT_EQ(g.clause_alive[1], 1);  // survives with one occurrence dead
  EXPECT_EQ(g.edge_alive[3], 0);
  EXPECT_EQ(g.alive_clauses(), 1u);
}

TEST(FactorGraph, FixLiteralDetectsContradiction) {
  // Single clause (x0) effectively: k=2 with a duplicate-free pair where
  // both occurrences die.
  Formula f;
  f.num_lits = 2;
  f.k = 2;
  f.clause_lit = {0, 1};
  f.negated = {0, 0};
  FactorGraph g(f);
  EXPECT_TRUE(g.fix_literal(0, false));   // clause now unit on x1
  EXPECT_FALSE(g.fix_literal(1, false));  // empties the clause
}

TEST(FactorGraph, PropagateUnitsChainsAndSatisfies) {
  // (x0 + x1)(~x1 + x2): fixing x0=false forces x1=true, killing c0 and
  // making c1 unit on x2... which then forces x2=true.
  Formula f;
  f.num_lits = 3;
  f.k = 2;
  f.clause_lit = {0, 1, 1, 2};
  f.negated = {0, 0, 1, 0};
  FactorGraph g(f);
  ASSERT_TRUE(g.fix_literal(0, false));
  ASSERT_TRUE(g.propagate_units());
  EXPECT_EQ(g.assignment[1], 1);
  EXPECT_EQ(g.assignment[2], 1);
  EXPECT_EQ(g.alive_clauses(), 0u);
}

TEST(FactorGraph, PropagateUnitsDetectsConflict) {
  // (x0 + x1)(x0 + ~x1): fix x0=false -> units x1 and ~x1.
  Formula f;
  f.num_lits = 2;
  f.k = 2;
  f.clause_lit = {0, 1, 0, 1};
  f.negated = {0, 0, 0, 1};
  FactorGraph g(f);
  ASSERT_TRUE(g.fix_literal(0, false));
  EXPECT_FALSE(g.propagate_units());
}

TEST(Surveys, UnitClauseSendsFullWarning) {
  // A clause with one alive literal must push eta -> 1 for that literal.
  Formula f;
  f.num_lits = 3;
  f.k = 3;
  f.clause_lit = {0, 1, 2};
  f.negated = {0, 0, 0};
  FactorGraph g(f);
  g.edge_alive[1] = 0;  // kill occurrences of x1 and x2
  g.edge_alive[2] = 0;
  std::uint64_t ops = 0;
  update_clause(g, 0, nullptr, &ops);
  // Empty product over the other slots, minus the saturation clamp that
  // keeps the cached-product division well-defined.
  EXPECT_NEAR(g.eta[0], 1.0, 1e-8);
  EXPECT_GT(ops, 0u);
}

TEST(Surveys, IsolatedLiteralsGiveZeroEta) {
  // Literals appearing in a single clause receive no warnings from
  // elsewhere, so the clause sends no warning either.
  Formula f;
  f.num_lits = 3;
  f.k = 3;
  f.clause_lit = {0, 1, 2};
  f.negated = {0, 0, 0};
  FactorGraph g(f);
  Rng rng(1);
  g.init_surveys(rng);
  update_clause(g, 0, nullptr, nullptr);
  for (int e = 0; e < 3; ++e) EXPECT_DOUBLE_EQ(g.eta[e], 0.0);
}

TEST(Surveys, EtasStayInUnitInterval) {
  auto f = random_ksat(300, 1260, 3, 4);
  FactorGraph g(f);
  Rng rng(2);
  g.init_surveys(rng);
  for (int sweep = 0; sweep < 10; ++sweep) {
    for (Clause c = 0; c < f.num_clauses(); ++c)
      update_clause(g, c, nullptr, nullptr);
  }
  for (double e : g.eta) {
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
}

TEST(Surveys, CachedAndUncachedAgreeAfterRefresh) {
  auto f = random_ksat(120, 500, 3, 5);
  FactorGraph g1(f), g2(f);
  Rng r1(7), r2(7);
  g1.init_surveys(r1);
  g2.init_surveys(r2);
  SurveyCache cache;
  cache.pos.assign(f.num_lits, 1.0);
  cache.neg.assign(f.num_lits, 1.0);
  // One synchronized sweep each: refresh cache first, then identical
  // update order. Within-sweep staleness differs, so compare right after
  // the first clause only.
  for (Lit i = 0; i < f.num_lits; ++i) refresh_cache_lit(g1, i, cache);
  update_clause(g1, 0, &cache, nullptr);
  update_clause(g2, 0, nullptr, nullptr);
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_NEAR(g1.eta[s], g2.eta[s], 1e-9);
  }
}

TEST(Surveys, BiasPointsTowardWarningClauses) {
  // x0 occurs positively in a unit-ish clause warning eta=1: bias must be
  // toward true.
  Formula f;
  f.num_lits = 4;
  f.k = 2;
  f.clause_lit = {0, 1, 0, 2};
  f.negated = {0, 0, 0, 0};
  FactorGraph g(f);
  g.eta[0] = 0.9;  // c0 warns x0 strongly (positive occurrence)
  g.eta[1] = 0.0;
  g.eta[2] = 0.0;
  g.eta[3] = 0.0;
  const Bias b = literal_bias(g, 0, nullptr);
  EXPECT_GT(b.magnitude, 0.5);
  EXPECT_TRUE(b.value);

  // Flip the sign of the occurrence: bias must point to false.
  g.formula = &f;  // (unchanged; clarity)
  Formula f2 = f;
  f2.negated = {1, 0, 0, 0};
  FactorGraph g2(f2);
  g2.eta[0] = 0.9;
  const Bias b2 = literal_bias(g2, 0, nullptr);
  EXPECT_GT(b2.magnitude, 0.5);
  EXPECT_FALSE(b2.value);
}

TEST(Walksat, SolvesEasyFormula) {
  auto f = random_ksat(500, 1500, 3, 8);  // ratio 3.0: easy
  FactorGraph g(f);
  SpOptions opts;
  Rng rng(3);
  const auto flips = walksat_residual(g, opts, rng);
  ASSERT_NE(flips, ~0ull);
  std::vector<std::uint8_t> a(f.num_lits);
  for (Lit i = 0; i < f.num_lits; ++i) a[i] = g.assignment[i] > 0;
  EXPECT_TRUE(check_assignment(f, a));
}

TEST(Walksat, EmptyResidualIsTrivial) {
  auto f = random_ksat(20, 10, 3, 9);
  FactorGraph g(f);
  for (Clause c = 0; c < f.num_clauses(); ++c) {
    g.clause_alive[c] = 0;
    for (std::uint32_t s = 0; s < 3; ++s) g.edge_alive[c * 3 + s] = 0;
  }
  SpOptions opts;
  Rng rng(4);
  EXPECT_EQ(walksat_residual(g, opts, rng), 0u);
}

class SolveSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolveSweep, SerialSolvesBelowThreshold) {
  const std::uint32_t n = 1200;
  auto f = random_ksat(n, static_cast<std::uint32_t>(3.8 * n), 3, GetParam());
  SpOptions opts;
  opts.seed = GetParam() + 100;
  const SpResult r = solve_serial(f, opts);
  ASSERT_TRUE(r.solved) << "ratio 3.8 should be reliably solvable";
  EXPECT_TRUE(check_assignment(f, r.assignment));
  EXPECT_GT(r.sweeps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolveSweep, ::testing::Values(1, 2, 3, 4));

TEST(Solve, GpuDriverMatchesSerialTrajectory) {
  const std::uint32_t n = 800;
  auto f = random_ksat(n, static_cast<std::uint32_t>(3.8 * n), 3, 10);
  SpOptions opts;
  opts.seed = 42;
  const SpResult rs = solve_serial(f, opts);
  gpu::Device dev;
  const SpResult rg = solve_gpu(f, dev, opts);
  // Same schedule, same seed, same update order: identical decimation.
  EXPECT_EQ(rs.fixed_by_sp, rg.fixed_by_sp);
  EXPECT_EQ(rs.phases, rg.phases);
  EXPECT_EQ(rs.solved, rg.solved);
  EXPECT_GT(rg.modeled_cycles, 0.0);
  EXPECT_GT(dev.stats().launches, 0u);
}

TEST(Solve, GpuDriverSolvesUnderBlockParallelExecution) {
  // Block-parallel host execution (the standard fast path). The sweep reads
  // cross-clause surveys through a pre-sweep snapshot (Jacobi), so the run
  // is race-free by access pattern and its trajectory matches the serial
  // cached reference exactly, at any worker count.
  const std::uint32_t n = 600;
  auto f = random_ksat(n, 3 * n, 3, 14);
  SpOptions opts;
  opts.seed = 21;
  gpu::Device dev(gpu::DeviceConfig{.host_workers = 4});
  const SpResult r = solve_gpu(f, dev, opts);
  ASSERT_TRUE(r.solved) << "ratio 3.0 should be reliably solvable";
  EXPECT_TRUE(check_assignment(f, r.assignment));
  EXPECT_GT(r.modeled_cycles, 0.0);
  const SpResult rs = solve_serial(f, opts);
  EXPECT_EQ(rs.sweeps, r.sweeps);
  EXPECT_EQ(rs.fixed_by_sp, r.fixed_by_sp);
  EXPECT_EQ(rs.assignment, r.assignment);
}

// --- cross-worker determinism: the byte-identity contract for fig9 ---

struct GpuRun {
  SpResult res;
  double dev_cycles = 0.0;
  std::uint64_t total_work = 0;
  std::string trace;  ///< Chrome-trace JSON of every simulated launch
};

GpuRun run_gpu(const Formula& f, gpu::WorklistMode mode,
               std::uint32_t host_workers, bool cached) {
  telemetry::TraceSink sink;
  gpu::DeviceConfig cfg;
  cfg.host_workers = host_workers;
  cfg.worklist_mode = mode;
  cfg.trace = &sink;
  gpu::Device dev(cfg);
  SpOptions opts;
  opts.seed = 17;
  opts.max_sweeps = 25;
  opts.max_phases = 3;
  opts.cache_products = cached;
  opts.walksat_flips = 200;
  opts.walksat_auto_budget = false;
  GpuRun out;
  out.res = solve_gpu(f, dev, opts);
  out.dev_cycles = dev.stats().modeled_cycles;
  out.total_work = dev.stats().total_work;
  out.trace = telemetry::chrome_trace_json(sink.merged(), {});
  return out;
}

void expect_identical(const GpuRun& a, const GpuRun& b) {
  EXPECT_EQ(a.res.solved, b.res.solved);
  EXPECT_EQ(a.res.sweeps, b.res.sweeps);
  EXPECT_EQ(a.res.phases, b.res.phases);
  EXPECT_EQ(a.res.fixed_by_sp, b.res.fixed_by_sp);
  EXPECT_EQ(a.res.walksat_flips_used, b.res.walksat_flips_used);
  EXPECT_EQ(a.res.counted_work, b.res.counted_work);
  EXPECT_EQ(a.res.assignment, b.res.assignment);
  EXPECT_EQ(a.res.modeled_cycles, b.res.modeled_cycles);  // bitwise
  EXPECT_EQ(a.dev_cycles, b.dev_cycles);
  EXPECT_EQ(a.total_work, b.total_work);
  EXPECT_EQ(a.trace, b.trace);  // byte-identical telemetry
}

class GpuDeterminism
    : public ::testing::TestWithParam<std::tuple<gpu::WorklistMode, bool>> {};

TEST_P(GpuDeterminism, ByteIdenticalAcrossHostWorkers) {
  // The determinism contract behind scripts/tier1.sh's fig9 gate: answers,
  // modeled stats, counted work, and the full telemetry trace are
  // byte-identical for 1 vs 8 host workers — snapshot (Jacobi) sweeps,
  // block-ordered max reduction, ownership-partitioned worklists.
  const auto [mode, cached] = GetParam();
  const std::uint32_t n = 500;
  auto f = random_ksat(n, static_cast<std::uint32_t>(3.8 * n), 3, 19);
  const GpuRun one = run_gpu(f, mode, 1, cached);
  const GpuRun eight = run_gpu(f, mode, 8, cached);
  expect_identical(one, eight);
  EXPECT_GT(one.res.sweeps, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndCache, GpuDeterminism,
    ::testing::Combine(::testing::Values(gpu::WorklistMode::kCentralized,
                                         gpu::WorklistMode::kSharded),
                       ::testing::Values(true, false)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ==
                                 gpu::WorklistMode::kSharded
                             ? "sharded"
                             : "centralized") +
             (std::get<1>(info.param) ? "Cached" : "Uncached");
    });

TEST(Solve, MulticoreScheduleIsDeterministic) {
  // Repeated runs must reproduce the schedule bit-for-bit: per-worker
  // max/ops accumulators reduced in worker-index order replaced the shared
  // running-max whose sync_op count depended on observation order.
  const std::uint32_t n = 500;
  auto f = random_ksat(n, static_cast<std::uint32_t>(3.8 * n), 3, 23);
  SpOptions opts;
  opts.seed = 29;
  opts.max_sweeps = 25;
  opts.max_phases = 3;
  opts.walksat_flips = 200;
  opts.walksat_auto_budget = false;
  cpu::ParallelRunner r1, r2;
  const SpResult a = solve_multicore(f, r1, opts);
  const SpResult b = solve_multicore(f, r2, opts);
  EXPECT_EQ(a.sweeps, b.sweeps);
  EXPECT_EQ(a.counted_work, b.counted_work);
  EXPECT_EQ(a.modeled_cycles, b.modeled_cycles);  // bitwise
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(r1.stats().sync_ops, r2.stats().sync_ops);
  EXPECT_EQ(r1.stats().modeled_cycles, r2.stats().modeled_cycles);
}

TEST(Solve, MulticoreSolvesAndChargesSync) {
  const std::uint32_t n = 800;
  auto f = random_ksat(n, static_cast<std::uint32_t>(3.8 * n), 3, 11);
  cpu::ParallelRunner runner;
  SpOptions opts;
  opts.seed = 13;
  const SpResult r = solve_multicore(f, runner, opts);
  EXPECT_TRUE(r.solved);
  EXPECT_TRUE(check_assignment(f, r.assignment));
  EXPECT_GT(runner.stats().rounds, 0u);
}

TEST(Solve, WorkBudgetTriggersOot) {
  const std::uint32_t n = 2000;
  auto f =
      random_ksat(n, static_cast<std::uint32_t>(hard_ratio(3) * n), 3, 12);
  SpOptions opts;
  opts.work_budget = 10000;  // absurdly small
  const SpResult r = solve_serial(f, opts);
  EXPECT_TRUE(r.out_of_time);
  EXPECT_FALSE(r.solved);
}

TEST(Solve, UncachedCostBlowsUpWithK) {
  // The Fig. 9 effect: without the edge cache, per-sweep cost grows with
  // K * degree; with it, linearly in edges.
  const std::uint32_t n = 300;
  SpOptions opts;
  opts.max_sweeps = 3;
  opts.max_phases = 1;
  opts.walksat_flips = 1;

  auto measure = [&](std::uint32_t k, bool cached) {
    auto f = random_ksat(
        n, static_cast<std::uint32_t>(hard_ratio(k) * n), k, 13);
    SpOptions o = opts;
    o.cache_products = cached;
    o.endgame_lits = n + 1;  // stop after the first phase
    return static_cast<double>(solve_serial(f, o).counted_work);
  };
  const double ratio3 = measure(3, false) / measure(3, true);
  const double ratio6 = measure(6, false) / measure(6, true);
  EXPECT_GT(ratio6, 2.0 * ratio3);
}

}  // namespace
}  // namespace morph::sp
