// Property-based and differential tests across modules: randomized inputs,
// brute-force oracles, and cross-driver agreement sweeps.
#include <gtest/gtest.h>

#include "dmr/delaunay.hpp"
#include "dmr/quality.hpp"
#include "dmr/refine.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"
#include "mst/mst.hpp"
#include "pta/cycle_elim.hpp"
#include "sp/cnf.hpp"
#include "sp/survey.hpp"
#include "support/rng.hpp"

namespace morph {
namespace {

// ---- SCC vs a brute-force reachability oracle ----

class SccFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SccFuzz, MatchesReachabilityOracle) {
  Rng rng(GetParam());
  const graph::Node n = 40;
  std::vector<graph::Edge> edges;
  const std::size_t m = 60 + rng.next_below(60);
  for (std::size_t i = 0; i < m; ++i) {
    edges.push_back({static_cast<graph::Node>(rng.next_below(n)),
                     static_cast<graph::Node>(rng.next_below(n)), 1});
  }
  auto g = graph::CsrGraph::from_edges(n, edges, false);
  const auto scc = graph::strongly_connected_components(g);

  // Floyd-Warshall reachability.
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (graph::Node u = 0; u < n; ++u) {
    reach[u][u] = true;
    for (graph::Node v : g.neighbors(u)) reach[u][v] = true;
  }
  for (graph::Node k = 0; k < n; ++k) {
    for (graph::Node i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (graph::Node j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = true;
      }
    }
  }
  for (graph::Node u = 0; u < n; ++u) {
    for (graph::Node v = 0; v < n; ++v) {
      const bool same = reach[u][v] && reach[v][u];
      EXPECT_EQ(scc.component[u] == scc.component[v], same)
          << "nodes " << u << " and " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SccFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- DMR across quality bounds and drivers ----

class AngleSweep
    : public ::testing::TestWithParam<std::tuple<double, std::string>> {};

TEST_P(AngleSweep, RefinementMeetsTheBoundAndPreservesGeometry) {
  const auto [angle, driver] = GetParam();
  dmr::Mesh m = dmr::generate_input_mesh(1200, 31);
  const double area = dmr::total_area(m);
  dmr::RefineOptions opts;
  opts.min_angle_deg = angle;
  if (driver == "serial") {
    dmr::refine_serial(m, opts);
  } else if (driver == "multicore") {
    cpu::ParallelRunner runner;
    dmr::refine_multicore(m, runner, opts);
  } else {
    gpu::Device dev;
    dmr::refine_gpu(m, dev, opts);
  }
  EXPECT_EQ(m.compute_all_bad(angle), 0u);
  EXPECT_NEAR(dmr::total_area(m), area, 1e-9);
  std::string why;
  EXPECT_TRUE(m.validate(&why)) << why;
  const dmr::QualityReport q = dmr::measure_quality(m);
  EXPECT_GE(q.min_angle_deg, angle - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    BoundsAndDrivers, AngleSweep,
    ::testing::Combine(::testing::Values(20.0, 25.0, 30.0),
                       ::testing::Values(std::string("serial"),
                                         std::string("multicore"),
                                         std::string("gpu"))));

TEST(DmrProperty, RefinementIsIdempotentPerDriver) {
  dmr::Mesh m = dmr::generate_input_mesh(800, 32);
  gpu::Device dev;
  dmr::refine_gpu(m, dev);
  const std::size_t tris = m.num_live();
  const dmr::RefineStats second = dmr::refine_gpu(m, dev);
  EXPECT_EQ(second.initial_bad, 0u);
  EXPECT_EQ(second.processed, 0u);
  EXPECT_EQ(m.num_live(), tris);
}

TEST(DmrProperty, PointCountOnlyGrows) {
  dmr::Mesh m = dmr::generate_input_mesh(600, 33);
  const std::size_t pts_before = m.num_points();
  dmr::refine_serial(m);
  EXPECT_GT(m.num_points(), pts_before);
  // Every added point is a circumcenter or segment midpoint inside the
  // closed unit square.
  for (dmr::Vtx v = static_cast<dmr::Vtx>(pts_before); v < m.num_points();
       ++v) {
    const dmr::Pt64 p = m.point(v);
    EXPECT_GE(p.x, -1e-9);
    EXPECT_LE(p.x, 1.0 + 1e-9);
    EXPECT_GE(p.y, -1e-9);
    EXPECT_LE(p.y, 1.0 + 1e-9);
  }
}

// ---- PTA differential fuzz across all solvers ----

class PtaFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PtaFuzz, AllSolversAgreeOnDenseLoadStorePrograms) {
  Rng rng(GetParam());
  // Heavier load/store mix than the default generator to stress dynamic
  // edge addition.
  pta::ConstraintSet cs;
  cs.num_vars = 120;
  const std::size_t ncons = 260;
  for (std::size_t i = 0; i < ncons; ++i) {
    pta::Constraint c{};
    c.dst = static_cast<pta::Var>(rng.next_below(cs.num_vars));
    c.src = static_cast<pta::Var>(rng.next_below(cs.num_vars));
    const double d = rng.next_double();
    c.kind = d < 0.25   ? pta::ConstraintKind::kAddressOf
             : d < 0.45 ? pta::ConstraintKind::kCopy
             : d < 0.75 ? pta::ConstraintKind::kLoad
                        : pta::ConstraintKind::kStore;
    cs.constraints.push_back(c);
  }
  const pta::PtsSets ser = pta::solve_serial(cs);
  gpu::Device d1, d2, d3;
  EXPECT_TRUE(pta::equal_pts(ser, pta::solve_gpu(cs, d1)));
  pta::PtaOptions push;
  push.push_based = true;
  EXPECT_TRUE(pta::equal_pts(ser, pta::solve_gpu(cs, d2, push)));
  EXPECT_TRUE(pta::equal_pts(ser, pta::solve_gpu_cycle_elim(cs, d3)));
  cpu::ParallelRunner runner;
  EXPECT_TRUE(pta::equal_pts(ser, pta::solve_multicore(cs, runner)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PtaFuzz,
                         ::testing::Values(10, 11, 12, 13, 14, 15, 16, 17,
                                           18, 19));

TEST(PtaProperty, SolutionIsAFixedPoint) {
  // Re-running any constraint on the final sets must change nothing.
  const pta::ConstraintSet cs = pta::synthetic_program(400, 600, 77);
  pta::PtsSets pts = pta::solve_serial(cs);
  auto super = [&](const std::vector<pta::Var>& a,
                   const std::vector<pta::Var>& b) {
    return std::includes(a.begin(), a.end(), b.begin(), b.end());
  };
  for (const pta::Constraint& c : cs.constraints) {
    switch (c.kind) {
      case pta::ConstraintKind::kAddressOf:
        EXPECT_TRUE(std::binary_search(pts[c.dst].begin(), pts[c.dst].end(),
                                       c.src));
        break;
      case pta::ConstraintKind::kCopy:
        EXPECT_TRUE(super(pts[c.dst], pts[c.src]));
        break;
      case pta::ConstraintKind::kLoad:
        for (pta::Var v : pts[c.src]) {
          EXPECT_TRUE(super(pts[c.dst], pts[v]));
        }
        break;
      case pta::ConstraintKind::kStore:
        for (pta::Var v : pts[c.dst]) {
          EXPECT_TRUE(super(pts[v], pts[c.src]));
        }
        break;
    }
  }
}

// ---- SP properties ----

TEST(SpProperty, PigeonholeContradictionIsDetected) {
  // PHP(2,1): two pigeons, one hole — UNSAT, expressible in K=2:
  // (p0) (p1) (~p0 + ~p1) as "p0 or p0"-style padding-free clauses needs
  // mixed lengths, so use: (p0 + p0') where p0' duplicates... instead use
  // K=2 UNSAT core: (a+b)(a+~b)(~a+b)(~a+~b).
  sp::Formula f;
  f.num_lits = 2;
  f.k = 2;
  f.clause_lit = {0, 1, 0, 1, 0, 1, 0, 1};
  f.negated = {0, 0, 0, 1, 1, 0, 1, 1};
  sp::SpOptions opts;
  opts.walksat_flips = 50000;
  opts.walksat_auto_budget = false;
  const sp::SpResult r = sp::solve_serial(f, opts);
  EXPECT_FALSE(r.solved);
}

TEST(SpProperty, SatisfiedResultAlwaysVerifies) {
  for (std::uint64_t seed : {41, 42, 43}) {
    auto f = sp::random_ksat(600, 2100, 3, seed);  // ratio 3.5
    const sp::SpResult r = sp::solve_serial(f, {.seed = seed});
    ASSERT_TRUE(r.solved);
    EXPECT_TRUE(sp::check_assignment(f, r.assignment));
  }
}

TEST(SpProperty, K4HardInstanceRunsAndReports) {
  const std::uint32_t n = 400;
  auto f = sp::random_ksat(
      n, static_cast<std::uint32_t>(sp::hard_ratio(4) * n), 4, 44);
  sp::SpOptions opts;
  opts.seed = 9;
  opts.max_sweeps = 50;
  const sp::SpResult r = sp::solve_serial(f, opts);
  EXPECT_GT(r.sweeps, 0u);
  if (r.solved) {
    EXPECT_TRUE(sp::check_assignment(f, r.assignment));
  }
}

TEST(SpProperty, CnfRoundTripPreservesSolverTrajectory) {
  auto f = sp::random_ksat(300, 1050, 3, 45);
  std::stringstream ss;
  sp::write_dimacs_cnf(f, ss);
  const sp::Formula back = sp::read_dimacs_cnf(ss);
  const sp::SpResult a = sp::solve_serial(f, {.seed = 7});
  const sp::SpResult b = sp::solve_serial(back, {.seed = 7});
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.sweeps, b.sweeps);
  EXPECT_EQ(a.fixed_by_sp, b.fixed_by_sp);
}

// ---- MST properties ----

class MstFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MstFuzz, RandomMultigraphsWithTies) {
  Rng rng(GetParam());
  // Small weights force heavy ties; allow parallel edges.
  const graph::Node n = 60;
  std::vector<graph::Edge> edges;
  for (int i = 0; i < 150; ++i) {
    const auto a = static_cast<graph::Node>(rng.next_below(n));
    const auto b = static_cast<graph::Node>(rng.next_below(n));
    if (a == b) continue;
    edges.push_back({a, b, static_cast<graph::Weight>(1 + rng.next_below(3))});
  }
  if (edges.empty()) return;
  auto g = graph::CsrGraph::from_undirected_edges(n, edges);
  const mst::MstResult kr = mst::mst_kruskal(g);
  gpu::Device dev;
  cpu::ParallelRunner r1, r2;
  const mst::MstResult gp = mst::mst_gpu(g, dev);
  const mst::MstResult em = mst::mst_edge_merge(g, r1);
  const mst::MstResult uf = mst::mst_union_find(g, r2);
  EXPECT_EQ(gp.total_weight, kr.total_weight);
  EXPECT_EQ(em.total_weight, kr.total_weight);
  EXPECT_EQ(uf.total_weight, kr.total_weight);
  EXPECT_TRUE(mst::verify_forest(g, gp));
  EXPECT_TRUE(mst::verify_forest(g, em));
  EXPECT_TRUE(mst::verify_forest(g, uf));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstFuzz,
                         ::testing::Values(51, 52, 53, 54, 55, 56, 57, 58,
                                           59, 60));

// ---- simulator determinism ----

TEST(Determinism, IdenticalRunsProduceIdenticalModeledCycles) {
  auto run = [] {
    dmr::Mesh m = dmr::generate_input_mesh(1500, 61);
    gpu::Device dev;
    dmr::refine_gpu(m, dev);
    return dev.stats().modeled_cycles;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Determinism, GeneratorsAreStableAcrossCalls) {
  const auto a = graph::gen_rmat(10, 2048, 99);
  const auto b = graph::gen_rmat(10, 2048, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
  }
  dmr::Mesh m1 = dmr::generate_input_mesh(1000, 5);
  dmr::Mesh m2 = dmr::generate_input_mesh(1000, 5);
  EXPECT_EQ(m1.num_live(), m2.num_live());
  EXPECT_EQ(m1.num_points(), m2.num_points());
}

}  // namespace
}  // namespace morph
