// Tests for points-to analysis: the constraint model, the paper's Fig. 5
// example, fixed-point agreement across all drivers, and the memory/
// propagation ablation knobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "pta/constraints.hpp"
#include "pta/solve.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/trace.hpp"

namespace morph::pta {
namespace {

// Variables for hand-built programs.
enum : Var { A, B, C, P, X, Y, kVars };

ConstraintSet fig5_program() {
  // The paper's Figure 5: a = &x; b = &y; p = &a; *p = b; c = a;
  ConstraintSet cs;
  cs.num_vars = kVars;
  cs.constraints = {
      {ConstraintKind::kAddressOf, A, X},
      {ConstraintKind::kAddressOf, B, Y},
      {ConstraintKind::kAddressOf, P, A},
      {ConstraintKind::kStore, P, B},
      {ConstraintKind::kCopy, C, A},
  };
  return cs;
}

TEST(Serial, Fig5FixedPointMatchesPaper) {
  const ConstraintSet cs = fig5_program();
  PtaStats st;
  const PtsSets pts = solve_serial(cs, &st);
  EXPECT_EQ(pts[A], (std::vector<Var>{X, Y}));
  EXPECT_EQ(pts[B], (std::vector<Var>{Y}));
  EXPECT_EQ(pts[P], (std::vector<Var>{A}));
  EXPECT_EQ(pts[C], (std::vector<Var>{X, Y}));
  EXPECT_TRUE(pts[X].empty());
  EXPECT_GT(st.iterations, 0u);
}

TEST(Serial, LoadConstraint) {
  // p = &a; a = &x; b = *p  =>  pts(b) = {x}.
  ConstraintSet cs;
  cs.num_vars = kVars;
  cs.constraints = {
      {ConstraintKind::kAddressOf, P, A},
      {ConstraintKind::kAddressOf, A, X},
      {ConstraintKind::kLoad, B, P},
  };
  const PtsSets pts = solve_serial(cs);
  EXPECT_EQ(pts[B], (std::vector<Var>{X}));
}

TEST(Serial, CopyChainPropagates) {
  ConstraintSet cs;
  cs.num_vars = 5;
  cs.constraints = {
      {ConstraintKind::kAddressOf, 0, 4},
      {ConstraintKind::kCopy, 1, 0},
      {ConstraintKind::kCopy, 2, 1},
      {ConstraintKind::kCopy, 3, 2},
  };
  const PtsSets pts = solve_serial(cs);
  for (Var v = 0; v < 4; ++v) EXPECT_EQ(pts[v], (std::vector<Var>{4}));
}

TEST(Serial, CyclicCopiesConverge) {
  ConstraintSet cs;
  cs.num_vars = 4;
  cs.constraints = {
      {ConstraintKind::kAddressOf, 0, 3},
      {ConstraintKind::kCopy, 1, 0},
      {ConstraintKind::kCopy, 2, 1},
      {ConstraintKind::kCopy, 0, 2},  // cycle 0 -> 1 -> 2 -> 0
  };
  const PtsSets pts = solve_serial(cs);
  EXPECT_EQ(pts[0], pts[1]);
  EXPECT_EQ(pts[1], pts[2]);
}

TEST(Serial, SelfReferenceIsStable) {
  ConstraintSet cs;
  cs.num_vars = 2;
  cs.constraints = {
      {ConstraintKind::kAddressOf, 0, 0},  // p = &p
      {ConstraintKind::kStore, 0, 0},      // *p = p
      {ConstraintKind::kLoad, 1, 0},       // q = *p
  };
  const PtsSets pts = solve_serial(cs);
  EXPECT_EQ(pts[0], (std::vector<Var>{0}));
  EXPECT_EQ(pts[1], (std::vector<Var>{0}));
}

TEST(Generator, ProducesRequestedShape) {
  const ConstraintSet cs = synthetic_program(500, 700, 3);
  EXPECT_EQ(cs.num_vars, 500u);
  EXPECT_EQ(cs.constraints.size(), 700u);
  std::size_t counts[4] = {};
  for (const Constraint& c : cs.constraints) {
    EXPECT_LT(c.dst, 500u);
    EXPECT_LT(c.src, 500u);
    ++counts[static_cast<int>(c.kind)];
  }
  // Every kind must be represented with the rough documented mix.
  EXPECT_NEAR(counts[0] / 700.0, 0.30, 0.08);
  EXPECT_NEAR(counts[1] / 700.0, 0.40, 0.08);
  EXPECT_GT(counts[2], 0u);
  EXPECT_GT(counts[3], 0u);
}

TEST(Generator, DeterministicInSeed) {
  const ConstraintSet a = synthetic_program(100, 200, 5);
  const ConstraintSet b = synthetic_program(100, 200, 5);
  ASSERT_EQ(a.constraints.size(), b.constraints.size());
  for (std::size_t i = 0; i < a.constraints.size(); ++i) {
    EXPECT_EQ(a.constraints[i].kind, b.constraints[i].kind);
    EXPECT_EQ(a.constraints[i].dst, b.constraints[i].dst);
    EXPECT_EQ(a.constraints[i].src, b.constraints[i].src);
  }
}

TEST(Generator, Spec2000TableMatchesPaper) {
  const auto& ws = spec2000_workloads();
  ASSERT_EQ(ws.size(), 6u);
  EXPECT_EQ(ws[0].name, "186.crafty");
  EXPECT_EQ(ws[0].vars, 6126u);
  EXPECT_EQ(ws[0].cons, 6768u);
  EXPECT_EQ(ws[5].name, "179.art");
  EXPECT_EQ(ws[5].vars, 586u);
  for (const auto& w : ws) {
    const ConstraintSet cs = spec_like(w);
    EXPECT_EQ(cs.num_vars, w.vars);
    EXPECT_EQ(cs.constraints.size(), w.cons);
  }
}

TEST(EqualPts, DetectsDifferences) {
  PtsSets a(2), b(2);
  a[0] = {1};
  b[0] = {1};
  EXPECT_TRUE(equal_pts(a, b));
  b[1] = {0};
  EXPECT_FALSE(equal_pts(a, b));
}

class SolverAgreement
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t,
                                                 std::uint64_t>> {};

TEST_P(SolverAgreement, AllDriversReachTheSameFixedPoint) {
  const auto [vars, cons, seed] = GetParam();
  const ConstraintSet cs = synthetic_program(vars, cons, seed);
  const PtsSets ser = solve_serial(cs);

  gpu::Device d_pull, d_push;
  PtaOptions pull;
  const PtsSets gp = solve_gpu(cs, d_pull, pull);
  EXPECT_TRUE(equal_pts(ser, gp)) << "pull-based GPU deviates";

  PtaOptions push;
  push.push_based = true;
  const PtsSets pp = solve_gpu(cs, d_push, push);
  EXPECT_TRUE(equal_pts(ser, pp)) << "push-based GPU deviates";

  cpu::ParallelRunner runner;
  const PtsSets mc = solve_multicore(cs, runner);
  EXPECT_TRUE(equal_pts(ser, mc)) << "multicore deviates";
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SolverAgreement,
    ::testing::Values(std::tuple{50u, 80u, 1ull}, std::tuple{200u, 300u, 2ull},
                      std::tuple{500u, 600u, 3ull},
                      std::tuple{1000u, 1200u, 4ull}));

class ChunkSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ChunkSweep, ChunkSizeDoesNotAffectTheFixedPoint) {
  const ConstraintSet cs = synthetic_program(400, 500, 9);
  const PtsSets ser = solve_serial(cs);
  gpu::Device dev;
  PtaOptions opts;
  opts.chunk_elems = GetParam();
  const PtsSets gp = solve_gpu(cs, dev, opts);
  EXPECT_TRUE(equal_pts(ser, gp));
  EXPECT_GT(dev.stats().device_mallocs, 0u) << "Kernel-Only strategy unused";
}

INSTANTIATE_TEST_SUITE_P(PaperRange, ChunkSweep,
                         ::testing::Values(16u, 64u, 512u, 1024u, 4096u));

TEST(Gpu, SmallerChunksMeanMoreMallocs) {
  const ConstraintSet cs = synthetic_program(600, 800, 10);
  gpu::Device d_small, d_large;
  PtaOptions small, large;
  small.chunk_elems = 16;
  large.chunk_elems = 4096;
  PtaStats st_small, st_large;
  solve_gpu(cs, d_small, small, &st_small);
  solve_gpu(cs, d_large, large, &st_large);
  EXPECT_GT(st_small.device_mallocs, st_large.device_mallocs);
}

TEST(Gpu, PullAvoidsAtomicsPushPaysThem) {
  const ConstraintSet cs = synthetic_program(600, 800, 11);
  gpu::Device d_pull, d_push;
  PtaOptions pull, push;
  push.push_based = true;
  solve_gpu(cs, d_pull, pull);
  solve_gpu(cs, d_push, push);
  EXPECT_GT(d_push.stats().atomics, 4 * d_pull.stats().atomics)
      << "push must pay synchronization the pull model avoids (Sec. 6.4)";
}

TEST(Gpu, DivergenceSortKnobKeepsSolution) {
  const ConstraintSet cs = synthetic_program(300, 400, 12);
  const PtsSets ser = solve_serial(cs);
  gpu::Device dev;
  PtaOptions opts;
  opts.divergence_sort = false;
  EXPECT_TRUE(equal_pts(ser, solve_gpu(cs, dev, opts)));
}

TEST(Gpu, BlockParallelExecutionReachesTheSameFixedPoint) {
  // Block-parallel host execution (the standard fast path). The pull phase
  // guards points-to set access with striped locks and the push phase routes
  // growth through the worklist, so both variants converge to the serial
  // fixed point under any interleaving (union is monotone).
  const ConstraintSet cs = synthetic_program(400, 500, 15);
  const PtsSets ser = solve_serial(cs);

  gpu::Device d_pull(gpu::DeviceConfig{.host_workers = 4});
  PtaOptions pull;
  EXPECT_TRUE(equal_pts(ser, solve_gpu(cs, d_pull, pull)))
      << "pull-based GPU deviates under host_workers=4";

  gpu::Device d_push(gpu::DeviceConfig{.host_workers = 4});
  PtaOptions push;
  push.push_based = true;
  EXPECT_TRUE(equal_pts(ser, solve_gpu(cs, d_push, push)))
      << "push-based GPU deviates under host_workers=4";
}

// One GPU PTA run plus everything the determinism gate compares byte-for-
// byte: the fixed point, the modeled stats, the device counters, and the
// rendered telemetry trace.
struct PtaRun {
  PtsSets pts;
  PtaStats st;
  double dev_cycles = 0.0;
  std::uint64_t total_work = 0;
  std::string trace;
};

PtaRun run_pta(const ConstraintSet& cs, gpu::WorklistMode mode,
               std::uint32_t workers, bool push) {
  telemetry::TraceSink sink;
  gpu::DeviceConfig cfg;
  cfg.host_workers = workers;
  cfg.worklist_mode = mode;
  cfg.trace = &sink;
  gpu::Device dev(cfg);
  PtaOptions opts;
  opts.push_based = push;
  PtaRun out;
  out.pts = solve_gpu(cs, dev, opts, &out.st);
  out.dev_cycles = dev.stats().modeled_cycles;
  out.total_work = dev.stats().total_work;
  out.trace = telemetry::chrome_trace_json(sink.merged(), {});
  return out;
}

void expect_identical(const PtaRun& a, const PtaRun& b) {
  EXPECT_TRUE(equal_pts(a.pts, b.pts));
  EXPECT_EQ(a.st.iterations, b.st.iterations);
  EXPECT_EQ(a.st.edges_added, b.st.edges_added);
  EXPECT_EQ(a.st.pts_total, b.st.pts_total);
  EXPECT_EQ(a.st.counted_work, b.st.counted_work);
  EXPECT_EQ(a.st.device_mallocs, b.st.device_mallocs);
  EXPECT_EQ(a.st.modeled_cycles, b.st.modeled_cycles);  // bitwise
  EXPECT_EQ(a.dev_cycles, b.dev_cycles);
  EXPECT_EQ(a.total_work, b.total_work);
  EXPECT_EQ(a.trace, b.trace);
}

// Every phase of the GPU driver now runs block-parallel under either
// worklist mode, and both propagation variants must stay byte-identical
// across host-worker counts: pending-buffer inserts with snapshot charging
// plus host-ordered commits make the schedule irrelevant.
class GpuDeterminism
    : public ::testing::TestWithParam<std::tuple<gpu::WorklistMode, bool>> {};

TEST_P(GpuDeterminism, ByteIdenticalAcrossHostWorkers) {
  const auto [mode, push] = GetParam();
  const ConstraintSet cs = synthetic_program(500, 700, 21);
  const PtaRun one = run_pta(cs, mode, 1, push);
  const PtaRun four = run_pta(cs, mode, 4, push);
  expect_identical(one, four);
  EXPECT_TRUE(equal_pts(one.pts, solve_serial(cs)));
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndVariants, GpuDeterminism,
    ::testing::Combine(::testing::Values(gpu::WorklistMode::kCentralized,
                                         gpu::WorklistMode::kSharded),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ==
                                 gpu::WorklistMode::kSharded
                             ? "sharded"
                             : "centralized") +
             (std::get<1>(info.param) ? "Push" : "Pull");
    });

TEST(Gpu, EdgeCountGrowsMonotonically) {
  const ConstraintSet cs = synthetic_program(400, 600, 13);
  gpu::Device dev;
  PtaStats st;
  solve_gpu(cs, dev, {}, &st);
  EXPECT_GT(st.edges_added, 0u);
  EXPECT_GT(st.iterations, 1u);
  EXPECT_GT(st.pts_total, 0u);
}

TEST(Stats, SerialReportsWork) {
  const ConstraintSet cs = synthetic_program(200, 300, 14);
  PtaStats st;
  solve_serial(cs, &st);
  EXPECT_GT(st.counted_work, 0u);
  EXPECT_GT(st.pts_total, 0u);
  EXPECT_GT(st.wall_seconds, 0.0);
}

}  // namespace
}  // namespace morph::pta
