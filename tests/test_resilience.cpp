// Tests for the resilience subsystem (ISSUE 4): typed statuses, the fault
// spec grammar, deterministic injection, the per-component recovery ladders,
// and the app-level fault matrix — every fault class has at least one
// recover-to-same-result path and one exhausted-retries loud failure.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "dmr/delaunay.hpp"
#include "dmr/refine.hpp"
#include "gpu/device.hpp"
#include "gpu/memory.hpp"
#include "gpu/worklist.hpp"
#include "graph/generators.hpp"
#include "mst/mst.hpp"
#include "pta/constraints.hpp"
#include "pta/solve.hpp"
#include "resilience/fault.hpp"
#include "resilience/recovery.hpp"
#include "sp/factor_graph.hpp"
#include "sp/survey.hpp"
#include "support/cli.hpp"
#include "support/status.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace morph;
using resilience::FaultClass;
using resilience::FaultInjector;
using resilience::FaultPlan;

FaultPlan plan_of(const std::string& spec, std::uint64_t seed = 1) {
  FaultPlan plan;
  const Status s = resilience::parse_fault_plan(spec, seed, &plan);
  EXPECT_TRUE(s.ok()) << s.to_string();
  return plan;
}

// --- typed statuses --------------------------------------------------------

TEST(Status, OkAndErrorBasics) {
  const Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);

  const Status err(StatusCode::kArenaExhausted, "out of chunks");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kArenaExhausted);
  EXPECT_NE(err.to_string().find("out of chunks"), std::string::npos);
  EXPECT_NE(err.to_string().find("arena-exhausted"), std::string::npos);
}

TEST(Status, ThrowIfErrorCarriesStatus) {
  EXPECT_NO_THROW(throw_if_error(Status::Ok()));
  try {
    throw_if_error(Status(StatusCode::kWorklistFull, "wl full"));
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.code(), StatusCode::kWorklistFull);
    EXPECT_NE(std::string(e.what()).find("wl full"), std::string::npos);
  }
}

// --- fault spec grammar ----------------------------------------------------

TEST(FaultSpec, ParsesFullGrammar) {
  const FaultPlan plan = plan_of("arena@3x2,launch,livelock@2x3~0.25", 42);
  ASSERT_EQ(plan.clauses.size(), 3u);
  EXPECT_EQ(plan.seed, 42u);

  EXPECT_EQ(plan.clauses[0].cls, FaultClass::kArenaExhaust);
  EXPECT_EQ(plan.clauses[0].after, 3u);
  EXPECT_EQ(plan.clauses[0].count, 2u);
  EXPECT_EQ(plan.clauses[0].prob, 1.0);

  EXPECT_EQ(plan.clauses[1].cls, FaultClass::kLaunchFail);
  EXPECT_EQ(plan.clauses[1].after, 1u);
  EXPECT_EQ(plan.clauses[1].count, 1u);

  EXPECT_EQ(plan.clauses[2].cls, FaultClass::kLivelock);
  EXPECT_EQ(plan.clauses[2].after, 2u);
  EXPECT_EQ(plan.clauses[2].count, 3u);
  EXPECT_DOUBLE_EQ(plan.clauses[2].prob, 0.25);

  EXPECT_EQ(plan.to_string(), "arena@3x2,launch,livelock@2x3~0.25");
}

TEST(FaultSpec, RejectsMalformedClauses) {
  FaultPlan plan;
  for (const char* spec :
       {"", "bogus", "arena@0", "arena@", "arenax0", "arena~0", "arena~1.5",
        "arena~zz", "arena,,launch", "arena@2x"}) {
    const Status s = resilience::parse_fault_plan(spec, 1, &plan);
    EXPECT_EQ(s.code(), StatusCode::kBadFaultSpec) << "spec: " << spec;
  }
}

// --- injector windows and determinism --------------------------------------

TEST(FaultInjector, FiresExactlyInsideWindow) {
  FaultInjector inj(plan_of("arena@3x2"));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(inj.should_fire(FaultClass::kArenaExhaust));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false, false}));
  EXPECT_EQ(inj.opportunities(FaultClass::kArenaExhaust), 6u);
  EXPECT_EQ(inj.fired(FaultClass::kArenaExhaust), 2u);
  // Other classes are untouched by an arena clause.
  EXPECT_FALSE(inj.should_fire(FaultClass::kLaunchFail));
  EXPECT_EQ(inj.fired(FaultClass::kLaunchFail), 0u);
}

TEST(FaultInjector, ProbabilisticClausesReplayWithSameSeed) {
  const FaultPlan plan = plan_of("launch@1x200~0.5", 7);
  FaultInjector a(plan), b(plan);
  std::uint64_t fired = 0;
  for (int i = 0; i < 200; ++i) {
    const bool fa = a.should_fire(FaultClass::kLaunchFail);
    const bool fb = b.should_fire(FaultClass::kLaunchFail);
    EXPECT_EQ(fa, fb) << "diverged at opportunity " << i;
    fired += fa ? 1u : 0u;
  }
  // A fair-ish coin over 200 draws: not all-or-nothing.
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, 200u);
}

// --- device: launch retry ladder -------------------------------------------

TEST(DeviceFaults, TransientLaunchFailureRecovers) {
  const FaultPlan plan = plan_of("launch@1x2");
  gpu::Device faulty(gpu::DeviceConfig{.host_workers = 1, .faults = &plan});
  gpu::Device clean(gpu::DeviceConfig{.host_workers = 1});

  const auto kernel = [](gpu::ThreadCtx& ctx) { ctx.work(3); };
  const gpu::KernelStats ks = faulty.launch({2, 32}, kernel);
  const gpu::KernelStats ref = clean.launch({2, 32}, kernel);

  EXPECT_EQ(faulty.stats().faults_injected, 2u);
  EXPECT_GE(faulty.stats().faults_recovered, 1u);
  EXPECT_EQ(ks.total_work, ref.total_work);
  // Two wasted launches + exponential backoff were charged to the device
  // timeline (the returned KernelStats cover the successful attempt only).
  EXPECT_GT(faulty.stats().modeled_cycles, clean.stats().modeled_cycles);
}

TEST(DeviceFaults, LaunchRetriesExhaustLoudly) {
  const FaultPlan plan = plan_of("launch@1x9");
  gpu::Device dev(gpu::DeviceConfig{.host_workers = 1, .faults = &plan});
  try {
    dev.launch({1, 32}, [](gpu::ThreadCtx& ctx) { ctx.work(1); });
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.code(), StatusCode::kRetriesExhausted);
    EXPECT_NE(std::string(e.what()).find("launch"), std::string::npos);
  }
  EXPECT_GT(dev.stats().faults_injected, 0u);
}

// --- device: barrier stalls ------------------------------------------------

TEST(DeviceFaults, BarrierStallChargedButResultUnchanged) {
  std::vector<std::uint64_t> out_clean(64, 0), out_faulty(64, 0);
  const auto make_phases = [](std::vector<std::uint64_t>& out) {
    return std::vector<gpu::KernelFn>{
        [&out](gpu::ThreadCtx& ctx) {
          ctx.work(1);
          out[ctx.tid()] = ctx.tid() + 1;
        },
        [&out](gpu::ThreadCtx& ctx) {
          ctx.work(1);
          out[ctx.tid()] *= 2;
        },
    };
  };

  gpu::Device clean(gpu::DeviceConfig{.host_workers = 1});
  const auto phases_clean = make_phases(out_clean);
  const gpu::KernelStats ref = clean.launch_phases(
      {2, 32}, std::span<const gpu::KernelFn>(phases_clean));

  const FaultPlan plan = plan_of("barrier@1");
  gpu::Device faulty(gpu::DeviceConfig{.host_workers = 1, .faults = &plan});
  const auto phases_faulty = make_phases(out_faulty);
  const gpu::KernelStats ks = faulty.launch_phases(
      {2, 32}, std::span<const gpu::KernelFn>(phases_faulty));

  EXPECT_EQ(out_clean, out_faulty);  // a stall delays, it does not corrupt
  EXPECT_EQ(faulty.stats().faults_injected, 1u);
  EXPECT_GE(faulty.stats().faults_recovered, 1u);
  EXPECT_GT(ks.modeled_cycles, ref.modeled_cycles);
}

TEST(DeviceFaults, BarrierStallBudgetDeclaresHang) {
  // Three phases -> two barrier opportunities per launch; both stall and the
  // budget of one makes the second stall fatal.
  const FaultPlan plan = plan_of("barrier@1x2");
  gpu::DeviceConfig cfg{.host_workers = 1, .faults = &plan};
  cfg.barrier_stall_budget = 1;
  gpu::Device dev(cfg);

  const std::vector<gpu::KernelFn> phases(
      3, [](gpu::ThreadCtx& ctx) { ctx.work(1); });
  try {
    dev.launch_phases({2, 32}, std::span<const gpu::KernelFn>(phases));
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.code(), StatusCode::kRetriesExhausted);
    EXPECT_NE(std::string(e.what()).find("barrier"), std::string::npos);
  }
}

// --- zero-overhead disabled path -------------------------------------------

TEST(DeviceFaults, ArmedButIdleCampaignIsBitIdentical) {
  const auto run = [](const FaultPlan* plan) {
    gpu::Device dev(gpu::DeviceConfig{.host_workers = 1, .faults = plan});
    const std::vector<gpu::KernelFn> phases{
        [](gpu::ThreadCtx& ctx) { ctx.work(5); ctx.atomic_op(); },
        [](gpu::ThreadCtx& ctx) { ctx.work(2); ctx.global_access(3); },
    };
    dev.launch_phases({4, 64}, std::span<const gpu::KernelFn>(phases));
    return dev.stats();
  };
  // A window that never opens: injection points are evaluated but no fault
  // fires, so every modeled statistic must match the unarmed run bit for bit.
  const FaultPlan idle = plan_of("arena@999999,launch@999999,barrier@999999");
  const gpu::DeviceStats armed = run(&idle);
  const gpu::DeviceStats clean = run(nullptr);
  EXPECT_EQ(armed.modeled_cycles, clean.modeled_cycles);
  EXPECT_EQ(armed.warp_steps, clean.warp_steps);
  EXPECT_EQ(armed.atomics, clean.atomics);
  EXPECT_EQ(armed.faults_injected, 0u);
  EXPECT_EQ(armed.faults_recovered, 0u);
}

// --- DeviceHeap arena ladder -----------------------------------------------

TEST(ArenaFaults, BudgetExhaustionAndHostGrowth) {
  gpu::Device dev(gpu::DeviceConfig{.host_workers = 1});
  gpu::DeviceHeap<int> heap(dev, 16);
  heap.set_max_chunks(2);

  std::span<int> a, b, c;
  EXPECT_TRUE(heap.try_alloc_chunk(&a).ok());
  EXPECT_TRUE(heap.try_alloc_chunk(&b).ok());
  EXPECT_EQ(heap.try_alloc_chunk(&c).code(), StatusCode::kArenaExhausted);

  // Kernel-Host degradation: the host raises the budget and the same
  // request succeeds.
  heap.grow_arena(1);
  EXPECT_TRUE(heap.try_alloc_chunk(&c).ok());
  EXPECT_EQ(heap.chunks_live(), 3u);

  // The throwing wrapper is the loud-failure path for ladder-less callers.
  EXPECT_THROW(heap.alloc_chunk(), FaultError);
}

TEST(ArenaFaults, InjectedExhaustionDeniesFreshChunks) {
  const FaultPlan plan = plan_of("arena@1");
  gpu::Device dev(gpu::DeviceConfig{.host_workers = 1, .faults = &plan});
  gpu::DeviceHeap<int> heap(dev, 16);  // no budget: only injection can deny

  std::span<int> chunk;
  EXPECT_EQ(heap.try_alloc_chunk(&chunk).code(), StatusCode::kArenaExhausted);
  EXPECT_EQ(dev.stats().faults_injected, 1u);
  EXPECT_TRUE(heap.try_alloc_chunk(&chunk).ok());  // window closed
}

// --- worklist overflow ladder ----------------------------------------------

TEST(WorklistFaults, GlobalOverflowTypedStatus) {
  gpu::Device dev(gpu::DeviceConfig{.host_workers = 1});
  gpu::ThreadCtx ctx;
  gpu::GlobalWorklist<int> wl(2);
  EXPECT_TRUE(wl.try_push(ctx, 1).ok());
  EXPECT_TRUE(wl.try_push(ctx, 2).ok());
  const Status full = wl.try_push(ctx, 3);
  EXPECT_EQ(full.code(), StatusCode::kWorklistFull);
  EXPECT_EQ(wl.size(), 2u);  // a failed push leaves the indices untouched
  EXPECT_THROW(throw_if_error(wl.try_push(ctx, 3)), FaultError);
}

TEST(WorklistFaults, InjectedGlobalOverflowFires) {
  const FaultPlan plan = plan_of("globalwl@2");
  gpu::Device dev(gpu::DeviceConfig{.host_workers = 1, .faults = &plan});
  gpu::ThreadCtx ctx;
  gpu::GlobalWorklist<int> wl(64, &dev);
  EXPECT_TRUE(wl.try_push(ctx, 1).ok());
  EXPECT_EQ(wl.try_push(ctx, 2).code(), StatusCode::kWorklistFull);
  EXPECT_TRUE(wl.try_push(ctx, 3).ok());
  EXPECT_EQ(dev.stats().faults_injected, 1u);
  EXPECT_EQ(wl.size(), 2u);
}

TEST(WorklistFaults, LocalOverflowSpillsToGlobal) {
  const FaultPlan plan = plan_of("localwl@2");
  gpu::Device dev(gpu::DeviceConfig{.host_workers = 1, .faults = &plan});
  gpu::ThreadCtx ctx;
  gpu::GlobalWorklist<int> global(64, &dev);
  gpu::LocalWorklist<int> local(1);
  local.set_spill_target(&global, &dev);

  EXPECT_TRUE(local.push(ctx, 1).ok());   // fits locally
  EXPECT_TRUE(local.push(ctx, 2).ok());   // injected overflow -> spilled
  EXPECT_TRUE(local.push(ctx, 3).ok());   // capacity overflow -> spilled
  EXPECT_EQ(local.spilled_to_global(), 2u);
  EXPECT_EQ(global.size(), 2u);
  EXPECT_EQ(dev.stats().faults_injected, 1u);
  EXPECT_GE(dev.stats().faults_recovered, 1u);
}

TEST(WorklistFaults, LocalOverflowWithoutSpillTargetIsLoud) {
  gpu::Device dev(gpu::DeviceConfig{.host_workers = 1});
  gpu::ThreadCtx ctx;
  gpu::LocalWorklist<int> local(1);
  EXPECT_TRUE(local.push(ctx, 1).ok());
  const Status s = local.push(ctx, 2);
  EXPECT_EQ(s.code(), StatusCode::kWorklistFull);
  EXPECT_THROW(throw_if_error(s), FaultError);
}

// --- app matrix: PTA (arena class) -----------------------------------------

TEST(AppFaults, PtaArenaInjectionRecoversToSameSolution) {
  const pta::ConstraintSet cs = pta::synthetic_program(150, 300, 7);

  gpu::Device clean(gpu::DeviceConfig{.host_workers = 1});
  const pta::PtsSets want = pta::solve_gpu(cs, clean);

  const FaultPlan plan = plan_of("arena@1x3");
  gpu::Device faulty(gpu::DeviceConfig{.host_workers = 1, .faults = &plan});
  const pta::PtsSets got = pta::solve_gpu(cs, faulty);

  EXPECT_TRUE(pta::equal_pts(want, got));
  EXPECT_TRUE(pta::check_solution(cs, got));
  EXPECT_EQ(faulty.stats().faults_injected, 3u);
  EXPECT_GE(faulty.stats().faults_recovered, 1u);
}

TEST(AppFaults, PtaBudgetedArenaDegradesToKernelHost) {
  // No injection at all: a genuinely tiny arena forces the Kernel-Host
  // ladder (host growth between launches) and the fixed point must match.
  const pta::ConstraintSet cs = pta::synthetic_program(150, 300, 7);

  gpu::Device clean(gpu::DeviceConfig{.host_workers = 1});
  const pta::PtsSets want = pta::solve_gpu(cs, clean);

  gpu::Device dev(gpu::DeviceConfig{.host_workers = 1});
  pta::PtaOptions opts;
  opts.chunk_elems = 16;
  opts.arena_max_chunks = 8;
  opts.arena_growth_chunks = 512;
  opts.arena_retry.max_retries = 8;
  pta::PtaStats stats;
  const pta::PtsSets got = pta::solve_gpu(cs, dev, opts, &stats);

  EXPECT_TRUE(pta::equal_pts(want, got));
  EXPECT_GT(dev.stats().host_allocs, 0u);  // grow_arena charged the host
}

TEST(AppFaults, PtaArenaRetriesExhaustLoudly) {
  const pta::ConstraintSet cs = pta::synthetic_program(100, 200, 3);
  // Every arena opportunity is denied, so growth can never win; the bounded
  // retry must give up instead of looping forever.
  const FaultPlan plan = plan_of("arena@1x1000000");
  gpu::Device dev(gpu::DeviceConfig{.host_workers = 1, .faults = &plan});
  pta::PtaOptions opts;
  opts.arena_retry.max_retries = 2;
  try {
    pta::solve_gpu(cs, dev, opts);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.code(), StatusCode::kRetriesExhausted);
  }
}

// --- app matrix: MST (launch class) ----------------------------------------

TEST(AppFaults, MstLaunchFailureRecoversToSameForest) {
  const auto edges = graph::gen_road_like(300, 2.4, 3);
  const auto g = graph::CsrGraph::from_undirected_edges(300, edges);
  const mst::MstResult ref = mst::mst_kruskal(g);

  gpu::Device clean(gpu::DeviceConfig{.host_workers = 1});
  const mst::MstResult want = mst::mst_gpu(g, clean);

  const FaultPlan plan = plan_of("launch@2x2");
  gpu::Device faulty(gpu::DeviceConfig{.host_workers = 1, .faults = &plan});
  const mst::MstResult got = mst::mst_gpu(g, faulty);

  EXPECT_EQ(got.total_weight, ref.total_weight);
  EXPECT_EQ(got.total_weight, want.total_weight);
  EXPECT_EQ(got.tree_edges, want.tree_edges);
  EXPECT_EQ(faulty.stats().faults_injected, 2u);
  EXPECT_GE(faulty.stats().faults_recovered, 1u);
  EXPECT_GT(faulty.stats().modeled_cycles, clean.stats().modeled_cycles);
}

TEST(AppFaults, MstLaunchRetriesExhaustLoudly) {
  const auto edges = graph::gen_road_like(200, 2.4, 3);
  const auto g = graph::CsrGraph::from_undirected_edges(200, edges);
  const FaultPlan plan = plan_of("launch@1x1000");
  gpu::DeviceConfig cfg{.host_workers = 1, .faults = &plan};
  cfg.launch_retry.max_retries = 2;
  gpu::Device dev(cfg);
  try {
    mst::mst_gpu(g, dev);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.code(), StatusCode::kRetriesExhausted);
  }
}

// --- app matrix: DMR (livelock + worklist classes) -------------------------

TEST(AppFaults, DmrLaunchFailureRecoversToIdenticalMesh) {
  dmr::Mesh base = dmr::generate_input_mesh(300, 1);
  dmr::RefineOptions opts;
  opts.adaptive = false;  // the adaptive launcher's state is per-launch
  opts.fixed_tpb = 128;

  dmr::Mesh clean_mesh = base;
  gpu::Device clean(gpu::DeviceConfig{.host_workers = 1});
  dmr::refine_gpu(clean_mesh, clean, opts);

  dmr::Mesh faulty_mesh = base;
  const FaultPlan plan = plan_of("launch@2x2");
  gpu::Device faulty(gpu::DeviceConfig{.host_workers = 1, .faults = &plan});
  const dmr::RefineStats st = dmr::refine_gpu(faulty_mesh, faulty, opts);

  // Launch retries replay the identical schedule: the refined mesh matches
  // the fault-free run exactly, only the modeled timeline moved.
  EXPECT_EQ(faulty_mesh.num_live(), clean_mesh.num_live());
  EXPECT_EQ(faulty_mesh.compute_all_bad(opts.min_angle_deg), 0u);
  std::string why;
  EXPECT_TRUE(faulty_mesh.validate(&why)) << why;
  EXPECT_EQ(faulty.stats().faults_injected, 2u);
  EXPECT_GT(st.rounds, 0u);
}

TEST(AppFaults, DmrLivelockEscalatesAndStaysValid) {
  dmr::Mesh m = dmr::generate_input_mesh(300, 1);
  dmr::RefineOptions opts;
  opts.adaptive = false;
  opts.fixed_tpb = 128;
  opts.watchdog_escalate_after = 1;
  opts.validate_invariants = true;  // checkpoint + gate each escalation

  const FaultPlan plan = plan_of("livelock@1x2");
  gpu::Device dev(gpu::DeviceConfig{.host_workers = 1, .faults = &plan});
  const dmr::RefineStats st = dmr::refine_gpu(m, dev, opts);

  EXPECT_GE(st.fallbacks, 1u);  // forced ties -> serialized arbitration
  EXPECT_EQ(m.compute_all_bad(opts.min_angle_deg), 0u);
  std::string why;
  EXPECT_TRUE(m.validate(&why)) << why;
  EXPECT_EQ(dev.stats().faults_injected, 2u);
  EXPECT_GE(dev.stats().faults_recovered, 1u);
}

TEST(AppFaults, DmrLivelockWatchdogGivesUpLoudly) {
  dmr::Mesh m = dmr::generate_input_mesh(300, 1);
  dmr::RefineOptions opts;
  opts.adaptive = false;
  opts.fixed_tpb = 128;
  opts.watchdog_give_up_after = 1;  // one no-progress round is fatal

  const FaultPlan plan = plan_of("livelock@1x50");
  gpu::Device dev(gpu::DeviceConfig{.host_workers = 1, .faults = &plan});
  try {
    dmr::refine_gpu(m, dev, opts);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.code(), StatusCode::kLivelock);
  }
}

TEST(AppFaults, DmrDataDrivenLocalSpillStillRefines) {
  dmr::Mesh m = dmr::generate_input_mesh(300, 1);
  dmr::RefineOptions opts;
  opts.adaptive = false;
  opts.fixed_tpb = 128;
  opts.local_queues = true;
  opts.local_queue_cap = 2;  // tiny: capacity spills on top of injected ones

  const FaultPlan plan = plan_of("localwl@1x8");
  gpu::Device dev(gpu::DeviceConfig{.host_workers = 1, .faults = &plan});
  dmr::refine_gpu_datadriven(m, dev, opts);

  EXPECT_EQ(m.compute_all_bad(opts.min_angle_deg), 0u);
  std::string why;
  EXPECT_TRUE(m.validate(&why)) << why;
  EXPECT_EQ(dev.stats().faults_injected, 8u);
  EXPECT_GE(dev.stats().faults_recovered, 1u);
}

TEST(AppFaults, DmrDataDrivenGlobalOverflowStillRefines) {
  dmr::Mesh m = dmr::generate_input_mesh(300, 1);
  dmr::RefineOptions opts;
  opts.adaptive = false;
  opts.fixed_tpb = 128;

  const FaultPlan plan = plan_of("globalwl@1x8");
  gpu::Device dev(gpu::DeviceConfig{.host_workers = 1, .faults = &plan});
  dmr::refine_gpu_datadriven(m, dev, opts);

  // Dropped pushes are re-discovered by the next sweep; the end state is
  // still a fully refined valid mesh.
  EXPECT_EQ(m.compute_all_bad(opts.min_angle_deg), 0u);
  std::string why;
  EXPECT_TRUE(m.validate(&why)) << why;
  EXPECT_EQ(dev.stats().faults_injected, 8u);
}

TEST(AppFaults, ShardedCampaignReplaysBitIdenticalAcrossHostWorkers) {
  // worklist_mode=sharded must not perturb a fault campaign: an armed
  // injector pins every phase sequential, and the sharded rebalance walks
  // shards in index order host-side, so the whole faulted run — injections,
  // recoveries, steal/spill counts, modeled timeline, refined mesh — is a
  // pure function of the campaign, not of --host-workers.
  const dmr::Mesh base = dmr::generate_input_mesh(300, 1);
  auto run = [&](std::uint32_t workers) {
    dmr::Mesh m = base;
    dmr::RefineOptions opts;
    opts.adaptive = false;
    opts.fixed_tpb = 128;
    // No globalwl clause: under sharded mode the centralized list is the
    // spill target of last resort, so a healthy run gives it no pushes for
    // the injector to fail.
    const FaultPlan plan = plan_of("launch@2x2,barrier@1");
    gpu::DeviceConfig cfg;
    cfg.host_workers = workers;
    cfg.worklist_mode = gpu::WorklistMode::kSharded;
    cfg.faults = &plan;
    gpu::Device dev(cfg);
    const dmr::RefineStats st = dmr::refine_gpu_datadriven(m, dev, opts);
    return std::tuple(m.num_live(), st.rounds, st.processed,
                      dev.stats().modeled_cycles,
                      dev.stats().faults_injected,
                      dev.stats().faults_recovered, dev.stats().wl_steals,
                      dev.stats().wl_spills, dev.stats().wl_local_ops,
                      dev.stats().wl_contended_ops);
  };
  const auto a = run(1);
  EXPECT_EQ(a, run(4));
  EXPECT_EQ(a, run(8));
  EXPECT_EQ(std::get<4>(a), 3u);  // both clauses fired
}

// --- app matrix: SP (launch class + consistency gate) ----------------------

TEST(AppFaults, SpLaunchFailureRecoversToSameAnswer) {
  const sp::Formula f = sp::random_ksat(200, 760, 3, 5);
  sp::SpOptions opts;
  opts.seed = 9;

  gpu::Device clean(gpu::DeviceConfig{.host_workers = 1});
  const sp::SpResult want = sp::solve_gpu(f, clean, opts);

  const FaultPlan plan = plan_of("launch@2x2");
  gpu::Device faulty(gpu::DeviceConfig{.host_workers = 1, .faults = &plan});
  const sp::SpResult got = sp::solve_gpu(f, faulty, opts);

  EXPECT_EQ(got.solved, want.solved);
  EXPECT_EQ(got.assignment, want.assignment);
  EXPECT_EQ(got.sweeps, want.sweeps);
  EXPECT_EQ(faulty.stats().faults_injected, 2u);
  // The armed run passed the factor-graph consistency gate, which records a
  // recovery event on top of the launch retries.
  EXPECT_GE(faulty.stats().faults_recovered, 2u);
}

TEST(AppFaults, SpLaunchRetriesExhaustLoudly) {
  const sp::Formula f = sp::random_ksat(200, 760, 3, 5);
  const FaultPlan plan = plan_of("launch@1x1000");
  gpu::DeviceConfig cfg{.host_workers = 1, .faults = &plan};
  cfg.launch_retry.max_retries = 2;
  gpu::Device dev(cfg);
  EXPECT_THROW(sp::solve_gpu(f, dev, {}), FaultError);
}

// --- faulted-trace determinism across host workers -------------------------

std::string serialize_trace(const std::vector<telemetry::TraceEvent>& evs) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto& e : evs) {
    os << static_cast<int>(e.kind) << ',' << e.device << ',' << e.launch
       << ',' << e.phase << ',' << e.block << ',' << e.track << ',' << e.seq
       << ',' << e.name << ',' << e.ts_cycles << ',' << e.dur_cycles << ','
       << e.work << ',' << e.warp_steps << ',' << e.atomics << ','
       << e.global_accesses << ',' << e.value << '\n';
  }
  return os.str();
}

TEST(TraceFaults, FaultedTraceIsByteIdenticalAcrossHostWorkers) {
  const auto edges = graph::gen_road_like(300, 2.4, 3);
  const auto g = graph::CsrGraph::from_undirected_edges(300, edges);
  const FaultPlan plan = plan_of("launch@2x2,barrier@1");

  const auto run = [&](std::uint32_t workers) {
    telemetry::TraceSink sink;
    gpu::Device dev(gpu::DeviceConfig{
        .host_workers = workers, .trace = &sink, .faults = &plan});
    mst::mst_gpu(g, dev);
    EXPECT_EQ(sink.dropped(), 0u);
    return serialize_trace(sink.merged());
  };

  const std::string hw1 = run(1);
  const std::string hw4 = run(4);
  EXPECT_GT(hw1.size(), 0u);
  EXPECT_NE(hw1.find("fault/launch"), std::string::npos);
  EXPECT_EQ(hw1, hw4);  // armed campaigns pin block order: bit-identical
}

// --- CLI plumbing ----------------------------------------------------------

TEST(FaultCli, FlagsAreKnownAndTyposSuggested) {
  const char* argv[] = {"prog", "--fault=arena@1", "--fault-seed=3"};
  CliArgs args(3, const_cast<char**>(argv));
  std::ostringstream err;
  const std::size_t unknown =
      args.warn_unknown(resilience::fault_cli_flags(), err);
  EXPECT_EQ(unknown, 1u);  // --fault-seed is known; --fault is a typo
  EXPECT_NE(err.str().find("--faults"), std::string::npos);  // did-you-mean
}

TEST(FaultCli, PlanFromArgsRoundTrips) {
  const auto plan = resilience::fault_plan_from_args("arena@3x2,launch", 17);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seed, 17u);
  EXPECT_EQ(plan->to_string(), "arena@3x2,launch");
  EXPECT_FALSE(resilience::fault_plan_from_args("", 1).has_value());
}

}  // namespace
