// Tests for the extensions beyond the paper's core: SCC-based cycle
// elimination for PTA, mesh quality metrics, Triangle-format mesh IO,
// Delaunay edge flipping, DIMACS CNF IO, and structural MST verification.
#include <gtest/gtest.h>

#include <sstream>

#include "dmr/delaunay.hpp"
#include "dmr/flip.hpp"
#include "dmr/mesh_io.hpp"
#include "dmr/quality.hpp"
#include "dmr/refine.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"
#include "mst/mst.hpp"
#include "pta/cycle_elim.hpp"
#include "sp/cnf.hpp"

namespace morph {
namespace {

// ---- SCC ----

TEST(Scc, ChainHasSingletonComponents) {
  const graph::Edge edges[] = {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}};
  auto g = graph::CsrGraph::from_edges(4, edges, false);
  const auto scc = graph::strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 4u);
}

TEST(Scc, CycleCollapses) {
  const graph::Edge edges[] = {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {2, 3, 1}};
  auto g = graph::CsrGraph::from_edges(4, edges, false);
  const auto scc = graph::strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
  EXPECT_NE(scc.component[3], scc.component[0]);
}

TEST(Scc, TwoIndependentCyclesAndBridge) {
  const graph::Edge edges[] = {{0, 1, 1}, {1, 0, 1}, {2, 3, 1},
                               {3, 2, 1}, {1, 2, 1}};
  auto g = graph::CsrGraph::from_edges(4, edges, false);
  const auto scc = graph::strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[2], scc.component[3]);
}

TEST(Scc, ReverseTopologicalNumbering) {
  // Tarjan emits components in reverse topological order: a component is
  // numbered before everything that can reach it.
  const graph::Edge edges[] = {{0, 1, 1}, {1, 2, 1}};
  auto g = graph::CsrGraph::from_edges(3, edges, false);
  const auto scc = graph::strongly_connected_components(g);
  EXPECT_LT(scc.component[2], scc.component[1]);
  EXPECT_LT(scc.component[1], scc.component[0]);
}

TEST(Scc, HandlesDeepChainIteratively) {
  // 100k-node path: a recursive Tarjan would overflow the stack.
  std::vector<graph::Edge> edges;
  const graph::Node n = 100000;
  for (graph::Node i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1, 1});
  auto g = graph::CsrGraph::from_edges(n, edges, false);
  EXPECT_EQ(graph::strongly_connected_components(g).num_components, n);
}

// ---- PTA cycle elimination ----

TEST(CycleElim, CollapsesCopyCycles) {
  pta::ConstraintSet cs;
  cs.num_vars = 4;
  cs.constraints = {
      {pta::ConstraintKind::kCopy, 1, 0},
      {pta::ConstraintKind::kCopy, 2, 1},
      {pta::ConstraintKind::kCopy, 0, 2},
      {pta::ConstraintKind::kAddressOf, 0, 3},
  };
  const pta::ReducedProgram r = pta::collapse_copy_cycles(cs);
  EXPECT_EQ(r.cycles_collapsed, 1u);
  EXPECT_EQ(r.rep[0], r.rep[1]);
  EXPECT_EQ(r.rep[1], r.rep[2]);
  EXPECT_EQ(r.rep[0], 0u);  // minimum member
  // Intra-cycle copies become vacuous and are dropped.
  std::size_t copies = 0;
  for (const auto& c : r.reduced.constraints) {
    copies += (c.kind == pta::ConstraintKind::kCopy) ? 1 : 0;
  }
  EXPECT_EQ(copies, 0u);
}

class CycleElimSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CycleElimSweep, SameFixedPointAsSerial) {
  const pta::ConstraintSet cs = pta::synthetic_program(800, 1100, GetParam());
  const pta::PtsSets ser = pta::solve_serial(cs);
  gpu::Device dev;
  std::uint32_t cycles = 0;
  const pta::PtsSets got = pta::solve_gpu_cycle_elim(cs, dev, {}, nullptr,
                                                     &cycles);
  EXPECT_TRUE(pta::equal_pts(ser, got));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CycleElimSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(CycleElim, ReducesModeledTimeWhenCyclesExist) {
  // A workload with a fat artificial copy cycle.
  pta::ConstraintSet cs = pta::synthetic_program(1000, 1200, 9);
  for (pta::Var v = 0; v < 50; ++v) {
    cs.constraints.push_back(
        {pta::ConstraintKind::kCopy, (v + 1) % 50, v});
  }
  gpu::Device d1, d2;
  pta::PtaStats s1, s2;
  std::uint32_t cycles = 0;
  const pta::PtsSets plain = pta::solve_gpu(cs, d1, {}, &s1);
  const pta::PtsSets ce = pta::solve_gpu_cycle_elim(cs, d2, {}, &s2, &cycles);
  EXPECT_TRUE(pta::equal_pts(plain, ce));
  EXPECT_GE(cycles, 1u);
  EXPECT_LT(s2.modeled_cycles, s1.modeled_cycles);
}

// ---- quality metrics ----

TEST(Quality, UnitSquareAreaIsInvariantUnderRefinement) {
  dmr::Mesh m = dmr::generate_input_mesh(2000, 3);
  EXPECT_NEAR(dmr::total_area(m), 1.0, 1e-9);
  dmr::refine_serial(m);
  EXPECT_NEAR(dmr::total_area(m), 1.0, 1e-9);
}

TEST(Quality, RefinementLiftsMinimumAngle) {
  dmr::Mesh m = dmr::generate_input_mesh(2000, 4);
  const dmr::QualityReport before = dmr::measure_quality(m);
  dmr::refine_serial(m);
  const dmr::QualityReport after = dmr::measure_quality(m);
  EXPECT_LT(before.min_angle_deg, 30.0);
  EXPECT_GE(after.min_angle_deg, 30.0 - 1e-9);
  EXPECT_GT(after.mean_min_angle_deg, before.mean_min_angle_deg);
  // All triangles now live in the [30,60] min-angle buckets.
  EXPECT_EQ(after.min_angle_histogram[0], 0u);
  EXPECT_EQ(after.min_angle_histogram[1], 0u);
  EXPECT_EQ(after.min_angle_histogram[2], 0u);
  EXPECT_EQ(after.triangles, m.num_live());
}

TEST(Quality, EmptyMesh) {
  dmr::Mesh m;
  const dmr::QualityReport q = dmr::measure_quality(m);
  EXPECT_EQ(q.triangles, 0u);
  EXPECT_EQ(q.total_area, 0.0);
}

// ---- Triangle-format IO ----

TEST(MeshIo, RoundTripPreservesStructure) {
  dmr::Mesh m = dmr::generate_input_mesh(500, 5);
  std::stringstream node, ele;
  dmr::write_triangle_format(m, node, ele);
  dmr::Mesh back = dmr::read_triangle_format(node, ele);
  EXPECT_EQ(back.num_live(), m.num_live());
  EXPECT_EQ(back.num_points(), m.num_points());
  std::string why;
  EXPECT_TRUE(back.validate(&why)) << why;
  EXPECT_TRUE(dmr::is_delaunay(back));
  EXPECT_NEAR(dmr::total_area(back), dmr::total_area(m), 1e-9);
  EXPECT_EQ(back.count_hull_edges(), m.count_hull_edges());
}

TEST(MeshIo, RoundTrippedMeshRefines) {
  dmr::Mesh m = dmr::generate_input_mesh(300, 6);
  std::stringstream node, ele;
  dmr::write_triangle_format(m, node, ele);
  dmr::Mesh back = dmr::read_triangle_format(node, ele);
  dmr::refine_serial(back);
  EXPECT_EQ(back.compute_all_bad(30.0), 0u);
}

TEST(MeshIo, RejectsNonManifoldInput) {
  // Three triangles sharing one edge.
  std::stringstream node("4 2 0 0\n1 0 0\n2 1 0\n3 0 1\n4 1 1\n");
  std::stringstream ele("3 3 0\n1 1 2 3\n2 1 2 4\n3 2 1 4\n");
  EXPECT_THROW(dmr::read_triangle_format(node, ele), CheckError);
}

TEST(MeshIo, RejectsBadHeaders) {
  std::stringstream node3d("3 3 0 0\n"), ele;
  EXPECT_THROW(dmr::read_triangle_format(node3d, ele), CheckError);
}

// ---- edge flipping ----

TEST(Flip, FlipEdgePreservesValidityAndArea) {
  dmr::Mesh m = dmr::generate_input_mesh(200, 7);
  const double area = dmr::total_area(m);
  const std::size_t flips = dmr::random_legal_flips(m, 50, 1);
  EXPECT_GT(flips, 10u);
  std::string why;
  EXPECT_TRUE(m.validate(&why)) << why;
  EXPECT_NEAR(dmr::total_area(m), area, 1e-9);
  EXPECT_FALSE(dmr::is_delaunay(m)) << "random flips should break Delaunay";
}

TEST(Flip, BoundaryEdgesAreNotFlippable) {
  dmr::Mesh m = dmr::triangulate_square({});
  // The square's two triangles share one interior diagonal; hull edges must
  // refuse.
  int flippable = 0;
  for (dmr::Tri t = 0; t < m.num_slots(); ++t) {
    for (int e = 0; e < 3; ++e) {
      dmr::Mesh copy = m;
      if (dmr::flip_edge(copy, t, e)) ++flippable;
    }
  }
  EXPECT_EQ(flippable, 2);  // the diagonal, from either side
}

TEST(Flip, SerialRestoresDelaunay) {
  dmr::Mesh m = dmr::generate_input_mesh(1000, 8);
  dmr::random_legal_flips(m, 400, 2);
  ASSERT_FALSE(dmr::is_delaunay(m));
  const dmr::FlipStats st = dmr::flip_serial(m);
  EXPECT_GT(st.flips, 0u);
  EXPECT_TRUE(dmr::is_delaunay(m));
  std::string why;
  EXPECT_TRUE(m.validate(&why)) << why;
}

class FlipGpuSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlipGpuSweep, GpuRestoresDelaunayWithThreePhaseConflicts) {
  dmr::Mesh m = dmr::generate_input_mesh(1500, GetParam());
  dmr::random_legal_flips(m, 600, GetParam() * 3 + 1);
  gpu::Device dev;
  const dmr::FlipStats st = dmr::flip_gpu(m, dev);
  EXPECT_TRUE(dmr::is_delaunay(m));
  std::string why;
  EXPECT_TRUE(m.validate(&why)) << why;
  EXPECT_GT(st.rounds, 0u);
  EXPECT_GT(dev.stats().barriers, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlipGpuSweep, ::testing::Values(11, 12, 13));

TEST(Flip, AlreadyDelaunayIsANoop) {
  dmr::Mesh m = dmr::generate_input_mesh(500, 14);
  const dmr::FlipStats st = dmr::flip_serial(m);
  EXPECT_EQ(st.flips, 0u);
}

// ---- CNF IO ----

TEST(Cnf, RoundTrip) {
  const sp::Formula f = sp::random_ksat(60, 250, 3, 15);
  std::stringstream ss;
  sp::write_dimacs_cnf(f, ss);
  const sp::Formula back = sp::read_dimacs_cnf(ss);
  EXPECT_EQ(back.num_lits, f.num_lits);
  EXPECT_EQ(back.k, f.k);
  EXPECT_EQ(back.clause_lit, f.clause_lit);
  EXPECT_EQ(back.negated, f.negated);
}

TEST(Cnf, ParsesCommentsAndNegation) {
  std::stringstream ss("c a comment\np cnf 3 2\n1 -2 3 0\n-1 2 -3 0\n");
  const sp::Formula f = sp::read_dimacs_cnf(ss);
  EXPECT_EQ(f.num_lits, 3u);
  EXPECT_EQ(f.k, 3u);
  EXPECT_EQ(f.num_clauses(), 2u);
  EXPECT_FALSE(f.neg(0, 0));
  EXPECT_TRUE(f.neg(0, 1));
  EXPECT_TRUE(f.neg(1, 0));
}

TEST(Cnf, RejectsMixedClauseLengths) {
  std::stringstream ss("p cnf 3 2\n1 2 3 0\n1 2 0\n");
  EXPECT_THROW(sp::read_dimacs_cnf(ss), CheckError);
}

TEST(Cnf, RejectsCountMismatch) {
  std::stringstream ss("p cnf 3 5\n1 2 3 0\n");
  EXPECT_THROW(sp::read_dimacs_cnf(ss), CheckError);
}

// ---- MST structural verification ----

TEST(VerifyForest, AcceptsAllVariants) {
  auto edges = graph::gen_random_uniform(500, 2500, 1000, 21);
  auto g = graph::CsrGraph::from_undirected_edges(500, edges);
  gpu::Device dev;
  cpu::ParallelRunner r1, r2;
  EXPECT_TRUE(mst::verify_forest(g, mst::mst_kruskal(g)));
  EXPECT_TRUE(mst::verify_forest(g, mst::mst_gpu(g, dev)));
  EXPECT_TRUE(mst::verify_forest(g, mst::mst_edge_merge(g, r1)));
  EXPECT_TRUE(mst::verify_forest(g, mst::mst_union_find(g, r2)));
}

TEST(VerifyForest, RejectsTamperedResults) {
  auto edges = graph::gen_grid2d(10, 50, 22);
  auto g = graph::CsrGraph::from_undirected_edges(100, edges);
  mst::MstResult r = mst::mst_kruskal(g);
  ASSERT_TRUE(mst::verify_forest(g, r));

  mst::MstResult wrong_weight = r;
  wrong_weight.total_weight += 1;
  EXPECT_FALSE(mst::verify_forest(g, wrong_weight));

  mst::MstResult phantom_edge = r;
  phantom_edge.edges.back() = {0, 99};  // not an edge of the grid
  EXPECT_FALSE(mst::verify_forest(g, phantom_edge));

  mst::MstResult cyclic = r;
  cyclic.edges.push_back(cyclic.edges.front());
  ++cyclic.tree_edges;
  EXPECT_FALSE(mst::verify_forest(g, cyclic));
}

}  // namespace
}  // namespace morph
