// Tests for MorphSan (analysis/sanitizer.hpp): spec parsing, one seeded bug
// per shadow-state machine transition (each hazard class gets at least two
// planted hazards, each detected with a diagnostic naming kernel, phase and
// address), clean-path runs of all four apps under --sanitize=all, and the
// byte-identity guarantee (modeled statistics are unchanged by attaching the
// checker).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/sanitizer.hpp"
#include "core/conflict.hpp"
#include "core/strategies.hpp"
#include "dmr/delaunay.hpp"
#include "dmr/refine.hpp"
#include "gpu/device.hpp"
#include "gpu/memory.hpp"
#include "gpu/worklist.hpp"
#include "graph/generators.hpp"
#include "mst/mst.hpp"
#include "pta/constraints.hpp"
#include "pta/solve.hpp"
#include "sp/factor_graph.hpp"
#include "sp/survey.hpp"
#include "telemetry/bench_report.hpp"

namespace morph::analysis {
namespace {

// --- spec parsing --------------------------------------------------------

TEST(SanitizeOptions, ParseAll) {
  SanitizeOptions o;
  ASSERT_TRUE(SanitizeOptions::parse("all", &o));
  EXPECT_TRUE(o.races && o.worklist && o.memory && o.barriers);
  EXPECT_EQ(o.to_string(), "all");
}

TEST(SanitizeOptions, ParseSubset) {
  SanitizeOptions o;
  ASSERT_TRUE(SanitizeOptions::parse("races,memory", &o));
  EXPECT_TRUE(o.races);
  EXPECT_FALSE(o.worklist);
  EXPECT_TRUE(o.memory);
  EXPECT_FALSE(o.barriers);
  EXPECT_EQ(o.to_string(), "races,memory");
  ASSERT_TRUE(SanitizeOptions::parse("worklist", &o));
  EXPECT_TRUE(o.worklist);
  EXPECT_FALSE(o.races);
}

TEST(SanitizeOptions, RejectsUnknownAndEmpty) {
  SanitizeOptions o = SanitizeOptions::all();
  EXPECT_FALSE(SanitizeOptions::parse("", &o));
  EXPECT_FALSE(SanitizeOptions::parse("races,bogus", &o));
  EXPECT_FALSE(SanitizeOptions::parse("races,,memory", &o));
  // A failed parse leaves the output untouched.
  EXPECT_TRUE(o.races && o.worklist && o.memory && o.barriers);
}

// --- helpers -------------------------------------------------------------

/// A device with `san` attached and one worker (the hazards planted below
/// are deliberate; single-worker keeps their detection order stable).
gpu::Device sanitized_device(Sanitizer& san) {
  gpu::DeviceConfig cfg;
  cfg.sanitize = &san;
  cfg.host_workers = 1;
  return gpu::Device(cfg);
}

bool has_kind(const Sanitizer& san, const std::string& kind) {
  for (const Finding& f : san.findings()) {
    if (f.kind == kind) return true;
  }
  return false;
}

const Finding* first_of_kind(const Sanitizer& san, const std::string& kind,
                             std::vector<Finding>& store) {
  store = san.findings();
  for (const Finding& f : store) {
    if (f.kind == kind) return &f;
  }
  return nullptr;
}

// --- seeded bugs: races --------------------------------------------------

TEST(SeededRaces, InterBlockWriteWriteDetected) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  std::uint64_t shared_word = 0;
  dev.launch({2, 1, "seeded.ww-race"}, [&](gpu::ThreadCtx& ctx) {
    // The planted bug: both blocks write the same word, not atomically, in
    // the same parallel phase — nothing orders them on a real GPU.
    ctx.san()->on_access(ctx.block(), &shared_word, sizeof(shared_word),
                         Sanitizer::Access::kWrite);
  });
  EXPECT_FALSE(san.clean());
  EXPECT_GE(san.finding_count(HazardClass::kRaces), 1u);
  std::vector<Finding> fs;
  const Finding* f = first_of_kind(san, "inter-block-race", fs);
  ASSERT_NE(f, nullptr);
  // The diagnostic names the kernel, the phase, and the address.
  EXPECT_EQ(f->kernel, "seeded.ww-race");
  EXPECT_EQ(f->phase, 0u);
  EXPECT_EQ(f->addr & ~std::uintptr_t{7},
            reinterpret_cast<std::uintptr_t>(&shared_word) &
                ~std::uintptr_t{7});
  const std::string msg = f->to_string();
  EXPECT_NE(msg.find("seeded.ww-race"), std::string::npos);
  EXPECT_NE(msg.find("phase 0"), std::string::npos);
  EXPECT_NE(msg.find("addr 0x"), std::string::npos);
}

TEST(SeededRaces, InterBlockReadWriteDetected) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  std::uint32_t cell = 0;
  dev.launch({2, 1, "seeded.rw-race"}, [&](gpu::ThreadCtx& ctx) {
    ctx.san()->on_access(ctx.block(), &cell, sizeof(cell),
                         ctx.block() == 0 ? Sanitizer::Access::kRead
                                          : Sanitizer::Access::kWrite);
  });
  EXPECT_TRUE(has_kind(san, "inter-block-race"));
}

TEST(SeededRaces, ReadsAndAtomicsAreNotRaces) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  std::uint64_t read_word = 0, atomic_word = 0, blockwise = 0;
  dev.launch({4, 2, "clean.accesses"}, [&](gpu::ThreadCtx& ctx) {
    ctx.san()->on_access(ctx.block(), &read_word, 8,
                         Sanitizer::Access::kRead);
    ctx.san()->on_access(ctx.block(), &atomic_word, 8,
                         Sanitizer::Access::kAtomic);
    if (ctx.block() == 1) {
      // Same-block writes are ordered by the simulator's serial block
      // execution (and by __syncthreads on a real GPU): not a race.
      ctx.san()->on_access(ctx.block(), &blockwise, 8,
                           Sanitizer::Access::kWrite);
    }
  });
  EXPECT_TRUE(san.clean()) << san.findings().front().to_string();
}

TEST(SeededRaces, AnnotatedRangeIsExempt) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  double cells[4] = {0, 0, 0, 0};
  san.annotate_racy(cells, sizeof(cells),
                    "relaxed accumulation; convergence tolerates staleness");
  dev.launch({2, 1, "clean.annotated"}, [&](gpu::ThreadCtx& ctx) {
    ctx.san()->on_access(ctx.block(), &cells[1], sizeof(double),
                         Sanitizer::Access::kWrite);
  });
  EXPECT_TRUE(san.clean());
}

TEST(SeededRaces, SequentialPhaseIsOrdered) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  std::uint64_t word = 0;
  const std::vector<gpu::Phase> phases = {
      {[&](gpu::ThreadCtx& ctx) {
         ctx.san()->on_access(ctx.block(), &word, 8,
                              Sanitizer::Access::kWrite);
       },
       /*sequential=*/true}};
  dev.launch_phases({2, 1, "clean.sequential"},
                    std::span<const gpu::Phase>(phases));
  EXPECT_TRUE(san.clean());
}

TEST(SeededRaces, UnguardedCavityWriteDetected) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  core::MarkTable marks(16);
  const std::uint32_t els[] = {3, 4, 5};
  dev.launch({1, 1, "seeded.unguarded"}, [&](gpu::ThreadCtx& ctx) {
    marks.race_mark(ctx, /*tid=*/7, els);
    ASSERT_TRUE(marks.priority_check(ctx, 7, els));  // activity 7 owns 3..5
    // The planted bug: the 2-phase-priority race — activity 2 commits the
    // cavity without owning it (it skipped the read-only final check).
    ctx.san()->on_guarded_write(&marks, ctx.block(), /*tid=*/2, els);
  });
  EXPECT_GE(san.finding_count(HazardClass::kRaces), 1u);
  EXPECT_TRUE(has_kind(san, "unguarded-write"));
}

TEST(SeededRaces, OverlappingOwnershipDetected) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  core::MarkTable marks(16);
  dev.launch({1, 1, "seeded.overlap"}, [&](gpu::ThreadCtx& ctx) {
    const std::uint32_t a[] = {8, 9};
    const std::uint32_t b[] = {9, 10};
    // The planted bug: two activities both believe they won overlapping
    // neighborhoods (element 9) in the same round.
    ctx.san()->on_ownership_granted(&marks, 4, a);
    ctx.san()->on_ownership_granted(&marks, 6, b);
  });
  EXPECT_TRUE(has_kind(san, "overlapping-ownership"));
  std::vector<Finding> fs;
  const Finding* f = first_of_kind(san, "overlapping-ownership", fs);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->addr, 9u);
  EXPECT_EQ(f->kernel, "seeded.overlap");
}

TEST(SeededRaces, ProtocolGrantsDoNotOverlapAcrossRounds) {
  // A released / reset grant is forgotten: the legitimate protocol never
  // trips the overlap check.
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  core::MarkTable marks(16);
  const std::uint32_t els[] = {1, 2};
  dev.launch({1, 1, "clean.rounds"}, [&](gpu::ThreadCtx& ctx) {
    marks.race_mark(ctx, 3, els);
    ASSERT_TRUE(marks.priority_check(ctx, 3, els));
  });
  marks.reset();  // round boundary
  dev.launch({1, 1, "clean.rounds"}, [&](gpu::ThreadCtx& ctx) {
    marks.race_mark(ctx, 5, els);
    ASSERT_TRUE(marks.priority_check(ctx, 5, els));
  });
  EXPECT_TRUE(san.clean());
}

// --- seeded bugs: worklist ----------------------------------------------

TEST(SeededWorklist, DoublePopDetected) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  gpu::GlobalWorklist<int> wl(8, &dev);
  dev.launch({1, 1, "seeded.double-pop"}, [&](gpu::ThreadCtx& ctx) {
    ASSERT_TRUE(wl.push(ctx, 42));
    ASSERT_TRUE(wl.pop(ctx).has_value());
    // The planted bug: a lost CAS lets two consumers claim the same index.
    ctx.san()->on_wl_pop(&wl, "global", ctx.block(), 0);
  });
  EXPECT_GE(san.finding_count(HazardClass::kWorklist), 1u);
  EXPECT_TRUE(has_kind(san, "double-pop"));
}

TEST(SeededWorklist, ClaimCollisionDetected) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  gpu::GlobalWorklist<int> wl(8, &dev);
  dev.launch({1, 1, "seeded.claim-collision"}, [&](gpu::ThreadCtx& ctx) {
    ASSERT_TRUE(wl.push(ctx, 1));  // slot 0: Claimed -> Published
    // The planted bug: an ABA'd tail CAS hands slot 0 to a second producer
    // while the first item still sits in it.
    ctx.san()->on_wl_claim(&wl, "global", ctx.block(), 0);
  });
  EXPECT_TRUE(has_kind(san, "slot-claim-collision"));
}

TEST(SeededWorklist, PopOfInFlightWriteDetected) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  gpu::GlobalWorklist<int> wl(8, &dev);
  dev.launch({1, 1, "seeded.pop-inflight"}, [&](gpu::ThreadCtx& ctx) {
    // The planted bug: a consumer bounded by tail_ instead of commit_ reads
    // slot 0 while the producer's item write is still in flight.
    ctx.san()->on_wl_claim(&wl, "global", ctx.block(), 0);
    ctx.san()->on_wl_pop(&wl, "global", ctx.block(), 0);
  });
  EXPECT_TRUE(has_kind(san, "pop-inflight-write"));
}

TEST(SeededWorklist, PopOfUnwrittenSlotAndPublishUnclaimedDetected) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  gpu::GlobalWorklist<int> wl(8, &dev);
  dev.launch({1, 1, "seeded.wl-protocol"}, [&](gpu::ThreadCtx& ctx) {
    ctx.san()->on_wl_pop(&wl, "global", ctx.block(), 5);   // never claimed
    ctx.san()->on_wl_publish(&wl, "global", 6);            // never claimed
  });
  EXPECT_TRUE(has_kind(san, "pop-unwritten"));
  EXPECT_TRUE(has_kind(san, "publish-unclaimed"));
}

TEST(SeededWorklist, CorrectProtocolIsClean) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  gpu::GlobalWorklist<int> wl(64, &dev);
  gpu::ShardedWorklist<int> swl(4, 16, &dev);
  dev.launch({4, 2, "clean.worklist"}, [&](gpu::ThreadCtx& ctx) {
    ASSERT_TRUE(wl.push(ctx, static_cast<int>(ctx.tid())));
    ASSERT_TRUE(swl.push(ctx, ctx.block() % 4, static_cast<int>(ctx.tid()))
                    .ok());
  });
  dev.launch({4, 2, "clean.worklist"}, [&](gpu::ThreadCtx& ctx) {
    (void)wl.pop(ctx);
    (void)swl.pop_owned(ctx, 4);
  });
  wl.reset();
  swl.reset();
  EXPECT_TRUE(san.clean()) << san.findings().front().to_string();
}

// --- seeded bugs: memory -------------------------------------------------

TEST(SeededMemory, HeapDoubleFreeDetected) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  gpu::DeviceHeap<int> heap(dev, 32);
  std::span<int> a = heap.alloc_chunk();
  std::span<int> b = heap.alloc_chunk();
  heap.free_chunk(a);
  heap.free_chunk(a);  // the planted bug (b keeps live_ > 0)
  (void)b;
  EXPECT_GE(san.finding_count(HazardClass::kMemory), 1u);
  EXPECT_TRUE(has_kind(san, "double-free"));
  std::vector<Finding> fs;
  const Finding* f = first_of_kind(san, "double-free", fs);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->addr, reinterpret_cast<std::uintptr_t>(a.data()));
}

TEST(SeededMemory, HeapUseAfterFreeDetected) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  gpu::DeviceHeap<int> heap(dev, 32);
  std::span<int> a = heap.alloc_chunk();
  heap.free_chunk(a);
  dev.launch({1, 1, "seeded.uaf"}, [&](gpu::ThreadCtx& ctx) {
    // The planted bug: a reader still following a stale next-chunk pointer.
    ctx.san()->on_access(ctx.block(), a.data() + 4, sizeof(int),
                         Sanitizer::Access::kRead);
  });
  EXPECT_TRUE(has_kind(san, "use-after-free"));
  // Reallocation revives the chunk: accesses are legal again.
  std::span<int> again = heap.alloc_chunk();
  ASSERT_EQ(again.data(), a.data());  // LIFO free list hands the chunk back
  san.reset();
  dev.launch({1, 1, "clean.realloc"}, [&](gpu::ThreadCtx& ctx) {
    ctx.san()->on_access(ctx.block(), a.data(), sizeof(int),
                         Sanitizer::Access::kRead);
  });
  EXPECT_TRUE(san.clean());
}

TEST(SeededMemory, RecyclerDoubleGiveDetected) {
  Sanitizer san;
  core::SlotRecycler rec(16);
  rec.set_sanitizer(&san);
  EXPECT_TRUE(rec.give(3));
  EXPECT_TRUE(rec.give(3));  // the planted bug: freed twice, never re-taken
  EXPECT_TRUE(has_kind(san, "double-recycle"));
}

TEST(SeededMemory, RecyclerWriteWhilePooledDetected) {
  Sanitizer san;
  core::SlotRecycler rec(16);
  rec.set_sanitizer(&san);
  EXPECT_TRUE(rec.give(4));
  san.on_slot_write(&rec, 4);  // the planted bug: mutating a pooled slot
  EXPECT_TRUE(has_kind(san, "use-after-recycle"));
  // give -> take -> write is the legal sequence.
  san.reset();
  ASSERT_EQ(rec.take().value(), 4u);
  san.on_slot_write(&rec, 4);
  EXPECT_TRUE(san.clean());
}

// --- seeded bugs: barriers ----------------------------------------------

TEST(SeededBarriers, DivergentBarrierIdsDetected) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  dev.launch({2, 2, "seeded.barrier-ids"}, [&](gpu::ThreadCtx& ctx) {
    // The planted bug: the blocks disagree on which barrier they reach.
    ctx.sync_block(ctx.block() == 0 ? 1 : 2);
  });
  EXPECT_GE(san.finding_count(HazardClass::kBarriers), 1u);
  std::vector<Finding> fs;
  const Finding* f = first_of_kind(san, "barrier-divergence", fs);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->kernel, "seeded.barrier-ids");
}

TEST(SeededBarriers, SkippedBarrierDetected) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  dev.launch({1, 4, "seeded.barrier-skip"}, [&](gpu::ThreadCtx& ctx) {
    ctx.sync_block(1);
    // The planted bug: an early-returning thread skips the second barrier
    // its block mates wait on — the classic intra-kernel hang.
    if (ctx.thread_in_block() != 3) ctx.sync_block(2);
  });
  EXPECT_TRUE(has_kind(san, "barrier-divergence"));
}

TEST(SeededBarriers, UniformBarriersAreClean) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  dev.launch({3, 4, "clean.barriers"}, [&](gpu::ThreadCtx& ctx) {
    ctx.sync_block(1);
    ctx.sync_block(2);
  });
  EXPECT_TRUE(san.clean());
}

// --- clean path: the four apps under --sanitize=all ----------------------

TEST(CleanApps, DmrRefineTopologyDrivenCleanAndStatsIdentical) {
  dmr::Mesh m_plain = dmr::generate_input_mesh(600, 11);
  dmr::Mesh m_san = dmr::generate_input_mesh(600, 11);
  dmr::RefineOptions opts;

  gpu::Device d_plain;
  const dmr::RefineStats st_plain = dmr::refine_gpu(m_plain, d_plain, opts);

  Sanitizer san;
  gpu::DeviceConfig cfg;
  cfg.sanitize = &san;
  gpu::Device d_san(cfg);
  const dmr::RefineStats st_san = dmr::refine_gpu(m_san, d_san, opts);

  EXPECT_TRUE(san.clean()) << san.findings().front().to_string();
  // The checker is pure shadow state: modeled results are bit-identical.
  EXPECT_EQ(st_plain.modeled_cycles, st_san.modeled_cycles);
  EXPECT_EQ(st_plain.rounds, st_san.rounds);
  EXPECT_EQ(st_plain.final_triangles, st_san.final_triangles);
  EXPECT_EQ(d_plain.stats().total_work, d_san.stats().total_work);
  EXPECT_EQ(d_plain.stats().atomics, d_san.stats().atomics);
  EXPECT_EQ(d_plain.stats().launches, d_san.stats().launches);
}

TEST(CleanApps, DmrRefineDataDrivenCleanBothWorklistModes) {
  for (const gpu::WorklistMode mode :
       {gpu::WorklistMode::kCentralized, gpu::WorklistMode::kSharded}) {
    dmr::Mesh m = dmr::generate_input_mesh(400, 13);
    Sanitizer san;
    gpu::DeviceConfig cfg;
    cfg.sanitize = &san;
    cfg.worklist_mode = mode;
    gpu::Device dev(cfg);
    const dmr::RefineStats st = dmr::refine_gpu_datadriven(m, dev);
    EXPECT_GT(st.processed, 0u);
    EXPECT_TRUE(san.clean())
        << gpu::worklist_mode_name(mode) << ": "
        << san.findings().front().to_string();
  }
}

TEST(CleanApps, DmrAblationSchemesClean) {
  // The locks and two-phase-race-check arms follow their protocols
  // faithfully; only the deliberately racy two-phase-priority arm is
  // excluded (its race is the finding the checker exists to make visible).
  for (const core::ConflictScheme scheme :
       {core::ConflictScheme::kLocks,
        core::ConflictScheme::kTwoPhaseRaceCheck}) {
    dmr::Mesh m = dmr::generate_input_mesh(300, 17);
    dmr::RefineOptions opts;
    opts.scheme = scheme;
    Sanitizer san;
    gpu::DeviceConfig cfg;
    cfg.sanitize = &san;
    gpu::Device dev(cfg);
    dmr::refine_gpu(m, dev, opts);
    EXPECT_TRUE(san.clean()) << san.findings().front().to_string();
  }
}

TEST(CleanApps, PtaSolveCleanAndStatsIdentical) {
  const pta::ConstraintSet cs = pta::synthetic_program(300, 450, 3);

  gpu::Device d_plain;
  const pta::PtsSets r_plain = pta::solve_gpu(cs, d_plain);

  Sanitizer san;
  gpu::DeviceConfig cfg;
  cfg.sanitize = &san;
  gpu::Device d_san(cfg);
  const pta::PtsSets r_san = pta::solve_gpu(cs, d_san);

  EXPECT_TRUE(san.clean()) << san.findings().front().to_string();
  EXPECT_TRUE(pta::equal_pts(r_plain, r_san));
  EXPECT_EQ(d_plain.stats().modeled_cycles, d_san.stats().modeled_cycles);
  EXPECT_EQ(d_plain.stats().device_mallocs, d_san.stats().device_mallocs);
  // The former "pta.pull-stale-reads" waiver is gone for good: propagation
  // reads a frozen round-start image and commits between launches, so PTA
  // registers no intentional-race notes at all.
  EXPECT_TRUE(san.intentional_notes().empty());
}

TEST(CleanApps, MstBoruvkaCleanAndStatsIdentical) {
  const auto edges = graph::gen_grid2d(24, 100, 5);
  const graph::CsrGraph g =
      graph::CsrGraph::from_undirected_edges(24 * 24, edges);

  gpu::Device d_plain;
  const mst::MstResult r_plain = mst::mst_gpu(g, d_plain);

  Sanitizer san;
  gpu::DeviceConfig cfg;
  cfg.sanitize = &san;
  gpu::Device d_san(cfg);
  const mst::MstResult r_san = mst::mst_gpu(g, d_san);

  EXPECT_TRUE(san.clean()) << san.findings().front().to_string();
  EXPECT_EQ(r_plain.total_weight, r_san.total_weight);
  EXPECT_EQ(r_plain.tree_edges, r_san.tree_edges);
  EXPECT_EQ(d_plain.stats().modeled_cycles, d_san.stats().modeled_cycles);
  // The one intentional-race note still load-bearing anywhere: Boruvka's
  // many-writer pointer-jumping convergence flag really is a one-way race
  // (only ever set to true within a launch, read after it returns), so the
  // waiver — unlike SP's and PTA's retired ones — must stay on record.
  ASSERT_FALSE(san.intentional_notes().empty());
  EXPECT_EQ(san.intentional_notes().front().first, "mst.jump-converged-flag");
}

TEST(CleanApps, SpSurveyCleanAndStatsIdentical) {
  const std::uint32_t n = 300;
  const sp::Formula f =
      sp::random_ksat(n, static_cast<std::uint32_t>(3.8 * n), 3, 7);
  sp::SpOptions opts;
  opts.seed = 7;

  gpu::Device d_plain;
  const sp::SpResult r_plain = sp::solve_gpu(f, d_plain, opts);

  Sanitizer san;
  gpu::DeviceConfig cfg;
  cfg.sanitize = &san;
  gpu::Device d_san(cfg);
  const sp::SpResult r_san = sp::solve_gpu(f, d_san, opts);

  EXPECT_TRUE(san.clean()) << san.findings().front().to_string();
  EXPECT_EQ(r_plain.solved, r_san.solved);
  EXPECT_EQ(r_plain.sweeps, r_san.sweeps);
  EXPECT_EQ(d_plain.stats().modeled_cycles, d_san.stats().modeled_cycles);
}

// --- reporting plumbing --------------------------------------------------

TEST(Reporting, CounterEmittedAndReportFormats) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  std::uint64_t w = 0;
  dev.launch({2, 1, "seeded.for-report"}, [&](gpu::ThreadCtx& ctx) {
    ctx.san()->on_access(ctx.block(), &w, 8, Sanitizer::Access::kWrite);
  });
  EXPECT_EQ(san.total_findings(),
            san.finding_count(HazardClass::kRaces) +
                san.finding_count(HazardClass::kWorklist) +
                san.finding_count(HazardClass::kMemory) +
                san.finding_count(HazardClass::kBarriers));
  std::ostringstream os;
  san.report(os);
  EXPECT_NE(os.str().find("inter-block-race"), std::string::npos);
  san.reset();
  EXPECT_TRUE(san.clean());
  std::ostringstream clean_os;
  san.report(clean_os);
  EXPECT_NE(clean_os.str().find("clean"), std::string::npos);
}

TEST(Reporting, BenchReportSanitizerSectionRoundTrips) {
  telemetry::BenchReport r;
  r.bench = "fig6_dmr_runtime";
  r.title = "t";
  r.add_row("row").metric("modeled_cycles", 10.0);
  // Disabled: serialization is byte-identical to a pre-sanitizer report.
  const std::string without = r.to_json_text();
  EXPECT_EQ(without.find("sanitizer"), std::string::npos);

  r.sanitizer.enabled = true;
  r.sanitizer.spec = "all";
  r.sanitizer.counts = {{"races", 1.0}, {"worklist", 0.0}};
  r.sanitizer.findings = {"[races] inter-block-race: ..."};
  r.sanitizer.suppressed = 0;
  const telemetry::BenchReport back =
      telemetry::BenchReport::parse(r.to_json_text());
  EXPECT_TRUE(back.sanitizer.enabled);
  EXPECT_EQ(back.sanitizer.spec, "all");
  ASSERT_EQ(back.sanitizer.counts.size(), 2u);
  EXPECT_EQ(back.sanitizer.counts[0].first, "races");
  EXPECT_EQ(back.sanitizer.counts[0].second, 1.0);
  ASSERT_EQ(back.sanitizer.findings.size(), 1u);

  const telemetry::BenchReport plain = telemetry::BenchReport::parse(without);
  EXPECT_FALSE(plain.sanitizer.enabled);
}

TEST(Reporting, FindingCapSuppressesButCounts) {
  Sanitizer san;
  gpu::Device dev = sanitized_device(san);
  std::vector<std::uint64_t> words(400);
  dev.launch({2, 1, "seeded.flood"}, [&](gpu::ThreadCtx& ctx) {
    for (std::uint64_t& w : words) {
      ctx.san()->on_access(ctx.block(), &w, 8, Sanitizer::Access::kWrite);
    }
  });
  EXPECT_EQ(san.finding_count(HazardClass::kRaces), 400u);
  EXPECT_EQ(san.findings().size(), 256u);  // retention cap
  EXPECT_EQ(san.suppressed(), 144u);
}

}  // namespace
}  // namespace morph::analysis
