// Unit tests for the SIMT execution-model simulator, device memory, and
// worklists.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <tuple>
#include <utility>
#include <vector>

#include "gpu/cpu_runner.hpp"
#include "gpu/device.hpp"
#include "gpu/memory.hpp"
#include "gpu/thread_pool.hpp"
#include "gpu/worklist.hpp"

namespace morph::gpu {
namespace {

TEST(Launch, EveryLogicalThreadRunsExactlyOnce) {
  Device dev;
  std::vector<int> hits(4 * 96, 0);
  dev.launch({4, 96}, [&](ThreadCtx& ctx) { ++hits[ctx.tid()]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Launch, ThreadIdsDecomposeIntoBlockAndLane) {
  Device dev;
  dev.launch({3, 64}, [&](ThreadCtx& ctx) {
    EXPECT_EQ(ctx.tid(), ctx.block() * 64 + ctx.thread_in_block());
    EXPECT_EQ(ctx.lane(), ctx.thread_in_block() % 32);
    EXPECT_EQ(ctx.grid_threads(), 192u);
    EXPECT_EQ(ctx.threads_per_block(), 64u);
  });
}

TEST(Launch, RejectsInvalidConfigs) {
  Device dev;
  auto noop = [](ThreadCtx&) {};
  EXPECT_THROW(dev.launch({0, 32}, noop), CheckError);
  EXPECT_THROW(dev.launch({1, 0}, noop), CheckError);
  EXPECT_THROW(dev.launch({1, 2048}, noop), CheckError);
}

TEST(Launch, CountsWorkPerThread) {
  Device dev;
  const KernelStats ks =
      dev.launch({2, 32}, [&](ThreadCtx& ctx) { ctx.work(3); });
  EXPECT_EQ(ks.logical_threads, 64u);
  EXPECT_EQ(ks.total_work, 192u);
  EXPECT_EQ(ks.max_thread_work, 3u);
  EXPECT_EQ(ks.warps, 2u);
  EXPECT_EQ(ks.warp_steps, 6u);  // 2 warps x max-lane 3
}

TEST(Launch, DivergencePenalizesImbalancedWarps) {
  Device dev;
  // One lane per warp does all the work: warp_steps = max over lanes.
  const KernelStats skewed = dev.launch({1, 64}, [&](ThreadCtx& ctx) {
    if (ctx.lane() == 0) ctx.work(32);
  });
  EXPECT_EQ(skewed.total_work, 64u);
  EXPECT_EQ(skewed.warp_steps, 64u);  // 2 warps x 32 steps
  EXPECT_DOUBLE_EQ(skewed.divergence(32), 32.0);

  const KernelStats uniform =
      dev.launch({1, 64}, [&](ThreadCtx& ctx) { ctx.work(1); });
  EXPECT_DOUBLE_EQ(uniform.divergence(32), 1.0);
  EXPECT_LT(uniform.modeled_cycles, skewed.modeled_cycles);
}

TEST(Launch, AtomicsCostMoreThanPlainWork) {
  Device dev;
  const KernelStats plain =
      dev.launch({2, 64}, [](ThreadCtx& ctx) { ctx.work(1); });
  const KernelStats atom =
      dev.launch({2, 64}, [](ThreadCtx& ctx) { ctx.atomic_op(); });
  EXPECT_GT(atom.modeled_cycles, plain.modeled_cycles);
  EXPECT_EQ(atom.atomics, 128u);
}

TEST(Launch, PhasesAreBulkSynchronous) {
  // No thread may enter phase 2 before all finish phase 1 — with the
  // simulator this is structural; verify by observing a full array write.
  Device dev;
  std::vector<int> stage(128, 0);
  std::atomic<bool> violated{false};
  const KernelFn phases[2] = {
      [&](ThreadCtx& ctx) { stage[ctx.tid()] = 1; },
      [&](ThreadCtx& ctx) {
        // Every element must already be in stage 1.
        for (std::size_t i = 0; i < stage.size(); ++i) {
          if (stage[i] < 1) violated.store(true);
        }
        stage[ctx.tid()] = 2;
      },
  };
  const KernelStats ks = dev.launch_phases({4, 32}, phases);
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(ks.phases, 2u);
}

TEST(Launch, BarrierCostOrderingMatchesPaper) {
  // Naive atomic barrier serializes every thread on one variable; the
  // hierarchical barrier only involves block representatives; Xiao-Feng
  // avoids atomics entirely (Sec. 7.3).
  Device dev;
  const LaunchConfig lc{50, 512};
  const double naive = dev.barrier_cycles(BarrierKind::kNaiveAtomic, lc);
  const double hier = dev.barrier_cycles(BarrierKind::kHierarchical, lc);
  const double lockfree = dev.barrier_cycles(BarrierKind::kLockFree, lc);
  EXPECT_GT(naive, 10.0 * hier);
  EXPECT_GT(hier, lockfree);
}

TEST(Launch, MultiPhaseChargesBarriers) {
  Device dev;
  const KernelFn one[1] = {[](ThreadCtx& ctx) { ctx.work(1); }};
  const KernelFn three[3] = {[](ThreadCtx& ctx) { ctx.work(1); },
                             [](ThreadCtx& ctx) { ctx.work(1); },
                             [](ThreadCtx& ctx) { ctx.work(1); }};
  const double t1 = dev.launch_phases({8, 128}, one).modeled_cycles;
  const double t3 =
      dev.launch_phases({8, 128}, three, BarrierKind::kNaiveAtomic)
          .modeled_cycles;
  EXPECT_GT(t3, 3.0 * t1 - t1);  // at least the extra compute plus barriers
  EXPECT_EQ(dev.stats().barriers, 2u);
}

TEST(Launch, ShuffledOrderStillRunsAllThreads) {
  DeviceConfig cfg;
  cfg.shuffle_threads = true;
  cfg.shuffle_seed = 99;
  Device dev(cfg);
  std::vector<int> hits(256, 0);
  dev.launch({2, 128}, [&](ThreadCtx& ctx) { ++hits[ctx.tid()]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 256);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Launch, HostWorkersProduceSameCoverage) {
  DeviceConfig cfg;
  cfg.host_workers = 4;
  Device dev(cfg);
  std::vector<std::atomic<int>> hits(1024);
  dev.launch({16, 64}, [&](ThreadCtx& ctx) {
    hits[ctx.tid()].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Launch, StatsBitIdenticalAcrossHostWorkers) {
  // The tentpole guarantee of block-parallel execution: per-block stats are
  // reduced in block order, so every KernelStats field — including the
  // floating-point modeled_cycles — is bit-identical for any worker count.
  auto run = [](std::uint32_t workers) {
    DeviceConfig cfg;
    cfg.host_workers = workers;
    Device dev(cfg);
    const Phase phases[2] = {
        {[](ThreadCtx& ctx) {
          ctx.work(ctx.tid() % 7 + 1);
          if (ctx.tid() % 3 == 0) ctx.atomic_op();
          if (ctx.tid() % 5 == 0) ctx.global_access();
        }, /*sequential=*/false},
        {[](ThreadCtx& ctx) { ctx.work(ctx.lane()); }, /*sequential=*/true},
    };
    return dev.launch_phases({13, 96}, std::span<const Phase>(phases));
  };
  const KernelStats a = run(1);
  for (std::uint32_t workers : {2u, 4u, 8u}) {
    const KernelStats b = run(workers);
    EXPECT_EQ(a.total_work, b.total_work);
    EXPECT_EQ(a.atomics, b.atomics);
    EXPECT_EQ(a.global_accesses, b.global_accesses);
    EXPECT_EQ(a.warp_steps, b.warp_steps);
    EXPECT_EQ(a.max_thread_work, b.max_thread_work);
    EXPECT_EQ(a.modeled_cycles, b.modeled_cycles);  // bitwise, not approx
  }
}

TEST(Launch, SequentialPhaseRunsBlocksInAscendingOrder) {
  // A Phase marked sequential executes its blocks on the launching thread
  // in ascending block order even when the device has many workers — the
  // hook host-serialized commit phases use for deterministic mutation.
  DeviceConfig cfg;
  cfg.host_workers = 8;
  Device dev(cfg);
  std::vector<std::uint32_t> order;
  const Phase phases[1] = {
      {[&](ThreadCtx& ctx) {
        if (ctx.thread_in_block() == 0) order.push_back(ctx.block());
      }, /*sequential=*/true},
  };
  dev.launch_phases({12, 32}, std::span<const Phase>(phases));
  ASSERT_EQ(order.size(), 12u);
  for (std::uint32_t b = 0; b < order.size(); ++b) EXPECT_EQ(order[b], b);
}

TEST(DeviceStats, AccumulatesAcrossLaunches) {
  Device dev;
  dev.launch({1, 32}, [](ThreadCtx& ctx) { ctx.work(2); });
  dev.launch({1, 32}, [](ThreadCtx& ctx) { ctx.work(3); });
  EXPECT_EQ(dev.stats().launches, 2u);
  EXPECT_EQ(dev.stats().total_work, 160u);
  dev.reset_stats();
  EXPECT_EQ(dev.stats().launches, 0u);
}

TEST(DeviceBuffer, GrowChargesReallocOnlyWhenCapacityExceeded) {
  Device dev;
  DeviceBuffer<int> buf(dev, 100);
  EXPECT_EQ(dev.stats().host_allocs, 1u);
  buf.grow(50);  // shrinking request: no-op
  EXPECT_EQ(dev.stats().reallocs, 0u);
  buf.grow(1000);
  EXPECT_EQ(dev.stats().reallocs, 1u);
  EXPECT_EQ(buf.size(), 1000u);
  const auto reallocs = dev.stats().reallocs;
  buf.grow(1100);  // slack from the previous growth should absorb this
  EXPECT_EQ(dev.stats().reallocs, reallocs);
}

TEST(DeviceBuffer, GrowClampsCapacityUnderTightSlack) {
  // Regression: slack < 1.0 used to shrink the reservation below the
  // request, so the subsequent resize reallocated again — uncharged.
  Device dev;
  DeviceBuffer<int> buf(dev);
  buf.grow(100, /*slack=*/0.5);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_GE(buf.capacity(), 100u);
  EXPECT_EQ(dev.stats().reallocs, 1u);
  // The realloc's device-to-device copy is charged with the old *logical*
  // size: growing from 100 live elements copies exactly those bytes.
  const auto copied_before = dev.stats().bytes_copied;
  buf.grow(200, /*slack=*/0.5);
  EXPECT_EQ(dev.stats().bytes_copied - copied_before, 100 * sizeof(int));
  EXPECT_EQ(buf.size(), 200u);
}

TEST(DeviceBuffer, TransferChargesCopyBytes) {
  Device dev;
  DeviceBuffer<std::uint64_t> buf(dev, 16);
  buf.transfer();
  EXPECT_EQ(dev.stats().bytes_copied, 16 * sizeof(std::uint64_t));
}

TEST(DeviceHeap, AllocFreeRecycles) {
  Device dev;
  DeviceHeap<int> heap(dev, 64);
  auto a = heap.alloc_chunk();
  auto b = heap.alloc_chunk();
  EXPECT_EQ(a.size(), 64u);
  EXPECT_EQ(dev.stats().device_mallocs, 2u);
  EXPECT_EQ(heap.chunks_live(), 2u);
  heap.free_chunk(a);
  EXPECT_EQ(heap.chunks_live(), 1u);
  auto c = heap.alloc_chunk();
  EXPECT_EQ(c.data(), a.data());               // recycled
  EXPECT_EQ(dev.stats().device_mallocs, 2u);   // no new malloc
  EXPECT_EQ(heap.chunks_recycled(), 1u);
  heap.free_chunk(b);
  heap.free_chunk(c);
}

TEST(DeviceHeap, RejectsForeignChunkSize) {
  Device dev;
  DeviceHeap<int> heap(dev, 8);
  int local[4] = {};
  EXPECT_THROW(heap.free_chunk(std::span<int>(local, 4)), CheckError);
}

TEST(LocalWorklist, FifoAndSpillCounting) {
  LocalWorklist<int> wl(3);
  EXPECT_TRUE(wl.push(1));
  EXPECT_TRUE(wl.push(2));
  EXPECT_TRUE(wl.push(3));
  EXPECT_FALSE(wl.push(4));
  EXPECT_EQ(wl.spills(), 1u);
  EXPECT_EQ(wl.pop().value(), 1);
  EXPECT_EQ(wl.pop().value(), 2);
  EXPECT_EQ(wl.size(), 1u);
  wl.clear();
  EXPECT_TRUE(wl.empty());
  EXPECT_FALSE(wl.pop().has_value());
}

TEST(GlobalWorklist, PushPopChargesAtomics) {
  Device dev;
  GlobalWorklist<int> wl(8);
  const KernelStats ks = dev.launch({1, 4}, [&](ThreadCtx& ctx) {
    wl.push(ctx, static_cast<int>(ctx.tid()));
  });
  EXPECT_EQ(ks.atomics, 4u);
  EXPECT_EQ(wl.size(), 4u);
  std::vector<int> seen;
  dev.launch({1, 4}, [&](ThreadCtx& ctx) {
    auto v = wl.pop(ctx);
    ASSERT_TRUE(v.has_value());
    seen.push_back(*v);
  });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3}));
}

TEST(GlobalWorklist, OverflowReportsFalse) {
  Device dev;
  GlobalWorklist<int> wl(2);
  int ok = 0;
  dev.launch({1, 4}, [&](ThreadCtx& ctx) { ok += wl.push(ctx, 1) ? 1 : 0; });
  EXPECT_EQ(ok, 2);
}

TEST(GlobalWorklist, EmptyPopThenPushRetainsItem) {
  // Regression: an empty pop used to advance the head index past the tail,
  // so items pushed afterwards were silently skipped.
  Device dev;
  GlobalWorklist<int> wl(4);
  ThreadCtx ctx;
  EXPECT_FALSE(wl.pop(ctx).has_value());
  EXPECT_FALSE(wl.pop(ctx).has_value());
  EXPECT_TRUE(wl.push(ctx, 42));
  EXPECT_EQ(wl.size(), 1u);
  const auto v = wl.pop(ctx);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(wl.size(), 0u);
}

TEST(GlobalWorklist, OverflowDoesNotClobberClaimedSlots) {
  // Regression: a failed push used to rewrite the tail index to capacity,
  // which could clobber slots other threads had already claimed.
  Device dev;
  GlobalWorklist<int> wl(3);
  ThreadCtx ctx;
  EXPECT_TRUE(wl.push(ctx, 1));
  EXPECT_TRUE(wl.push(ctx, 2));
  EXPECT_TRUE(wl.push(ctx, 3));
  EXPECT_FALSE(wl.push(ctx, 4));
  EXPECT_FALSE(wl.push(ctx, 5));
  std::vector<int> seen;
  while (auto v = wl.pop(ctx)) seen.push_back(*v);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(GlobalWorklist, ConcurrentStressLosesAndDuplicatesNothing) {
  // 8 host workers, 16 blocks: every thread pushes a unique batch and pops a
  // few items while other blocks are mid-push. Every pushed value must be
  // popped exactly once across the kernel pops and the final drain.
  constexpr std::uint32_t kBlocks = 16, kTpb = 32, kPerThread = 8;
  constexpr std::uint32_t T = kBlocks * kTpb;
  DeviceConfig cfg;
  cfg.host_workers = 8;
  Device dev(cfg);
  for (int round = 0; round < 3; ++round) {
    GlobalWorklist<std::uint32_t> wl(T * kPerThread);
    std::vector<std::vector<std::uint32_t>> got(T);
    dev.launch({kBlocks, kTpb}, [&](ThreadCtx& ctx) {
      const std::uint32_t t = ctx.tid();
      for (std::uint32_t k = 0; k < kPerThread; ++k) {
        ASSERT_TRUE(wl.push(ctx, t * kPerThread + k));
        if (k % 2 == 1) {
          if (auto v = wl.pop(ctx)) got[t].push_back(*v);
        }
      }
    });
    ThreadCtx drain_ctx;
    std::vector<std::uint32_t> all;
    while (auto v = wl.pop(drain_ctx)) all.push_back(*v);
    for (const auto& g : got) all.insert(all.end(), g.begin(), g.end());
    ASSERT_EQ(all.size(), static_cast<std::size_t>(T) * kPerThread);
    std::sort(all.begin(), all.end());
    for (std::uint32_t i = 0; i < T * kPerThread; ++i) {
      ASSERT_EQ(all[i], i) << "item lost or duplicated";
    }
  }
}

TEST(GlobalWorklist, ResetRestoresInvariant) {
  Device dev;
  GlobalWorklist<int> wl(2);
  ThreadCtx ctx;
  EXPECT_TRUE(wl.push(ctx, 7));
  EXPECT_TRUE(wl.push(ctx, 8));
  EXPECT_FALSE(wl.push(ctx, 9));
  wl.reset();
  EXPECT_EQ(wl.size(), 0u);
  EXPECT_FALSE(wl.pop(ctx).has_value());
  EXPECT_TRUE(wl.push(ctx, 10));
  EXPECT_EQ(wl.pop(ctx).value(), 10);
}

TEST(LocalWorklist, PushAfterPopsReusesCapacity) {
  // Regression: the capacity check used to count already-popped items, so a
  // worklist cycling through push/pop reported spurious spills.
  LocalWorklist<int> wl(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(wl.push(i)) << "spurious spill at " << i;
    EXPECT_EQ(wl.pop().value(), i);
  }
  EXPECT_EQ(wl.spills(), 0u);
  EXPECT_TRUE(wl.push(100));
  EXPECT_TRUE(wl.push(101));
  EXPECT_FALSE(wl.push(102));  // genuinely full: 2 live items
  EXPECT_EQ(wl.spills(), 1u);
}

TEST(ShardedWorklist, OwnedRangesPartitionTheShards) {
  ShardedWorklist<int> wl(8, 4);
  // blocks <= shards: the per-block ranges tile [0, shards) exactly once.
  for (std::uint32_t blocks : {1u, 3u, 5u, 8u}) {
    std::vector<int> owner(8, -1);
    for (std::uint32_t b = 0; b < blocks; ++b) {
      const auto r = wl.owned_range(b, blocks);
      for (std::size_t s = r.lo; s < r.hi; ++s) {
        EXPECT_EQ(owner[s], -1) << "shard " << s << " owned twice";
        owner[s] = static_cast<int>(b);
      }
    }
    for (std::size_t s = 0; s < 8; ++s) {
      EXPECT_NE(owner[s], -1) << "shard " << s << " unowned at " << blocks;
    }
  }
  // blocks > shards: the first `shards` blocks own one shard each, the
  // surplus own nothing but still get a home shard for their pushes.
  for (std::uint32_t b = 0; b < 8; ++b) {
    const auto r = wl.owned_range(b, 20);
    EXPECT_EQ(r.lo, b);
    EXPECT_EQ(r.hi, b + 1u);
  }
  EXPECT_TRUE(wl.owned_range(8, 20).empty());
  EXPECT_TRUE(wl.owned_range(19, 20).empty());
  EXPECT_EQ(wl.home_shard(19, 20), 19u % 8u);
}

TEST(ShardedWorklist, PushPopChargesLocalWorkNotAtomics) {
  Device dev;
  ShardedWorklist<int> wl(4, 8);
  const KernelStats ks = dev.launch({4, 2}, [&](ThreadCtx& ctx) {
    const std::size_t home = wl.home_shard(ctx.block(), 4);
    (void)wl.push(ctx, home, static_cast<int>(ctx.tid()));
  });
  EXPECT_EQ(ks.atomics, 0u);           // the whole point of sharding
  EXPECT_EQ(ks.wl_local_ops, 8u);
  EXPECT_EQ(ks.wl_contended_ops, 0u);
  EXPECT_EQ(wl.size(), 8u);
  std::vector<int> seen;
  dev.launch({4, 2}, [&](ThreadCtx& ctx) {
    if (auto v = wl.pop_owned(ctx, 4)) seen.push_back(*v);
  });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ShardedWorklist, SpillLadderRoundTripsThroughRebalance) {
  // A full ring falls through to the centralized list (counted as a spill);
  // the next rebalance drains it back into the emptiest ring.
  Device dev;
  GlobalWorklist<int> spill(16);
  ShardedWorklist<int> wl(2, 2, &dev, &spill);
  ThreadCtx ctx;
  ASSERT_TRUE(wl.push(ctx, 0, 1).ok());
  ASSERT_TRUE(wl.push(ctx, 0, 2).ok());
  ASSERT_TRUE(wl.push(ctx, 0, 3).ok());  // ring full -> spills
  EXPECT_EQ(wl.spills(), 1u);
  EXPECT_EQ(spill.size(), 1u);
  EXPECT_EQ(wl.size(), 2u);
  wl.rebalance();
  EXPECT_EQ(spill.size(), 0u);
  EXPECT_EQ(wl.size(), 3u);
  EXPECT_EQ(dev.stats().wl_spills, 1u);
  // Nothing lost: drain every shard.
  std::vector<int> all;
  for (std::size_t s = 0; s < wl.num_shards(); ++s) {
    while (auto v = wl.pop(ctx, s)) all.push_back(*v);
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<int>{1, 2, 3}));
}

TEST(ShardedWorklist, RebalanceFeedsStarvedShardsDeterministically) {
  // All work lands in shard 0; rebalance moves half of it to each starved
  // shard in index order. Same content in, same layout out — run it twice.
  auto layout = [] {
    ShardedWorklist<int> wl(4, 64);
    ThreadCtx ctx;
    for (int i = 0; i < 40; ++i) (void)wl.push(ctx, 0, i);
    wl.rebalance();
    std::vector<std::vector<int>> per_shard(4);
    for (std::size_t s = 0; s < 4; ++s) {
      for (std::size_t i = 0; i < wl.shard_size(s); ++i) {
        per_shard[s].push_back(wl.item(s, i));
      }
    }
    return std::pair(per_shard, wl.steals());
  };
  const auto [a, steals_a] = layout();
  const auto [b, steals_b] = layout();
  EXPECT_EQ(a, b);
  EXPECT_EQ(steals_a, steals_b);
  EXPECT_GT(steals_a, 0u);
  std::size_t total = 0;
  for (const auto& s : a) {
    EXPECT_FALSE(s.empty()) << "rebalance left a shard starved";
    total += s.size();
  }
  EXPECT_EQ(total, 40u);
}

TEST(ShardedWorklist, ConcurrentStressLosesAndDuplicatesNothing) {
  // 8 host workers: every block pushes unique values to its home shard,
  // pops from its owned shard, and steals from its right neighbor while
  // that neighbor is mid-push. The rings are MPMC (same claim-then-publish
  // protocol as GlobalWorklist), so every value must surface exactly once.
  constexpr std::uint32_t kBlocks = 8, kTpb = 16, kPerThread = 8;
  DeviceConfig cfg;
  cfg.host_workers = 8;
  Device dev(cfg);
  for (int round = 0; round < 3; ++round) {
    ShardedWorklist<std::uint32_t> wl(kBlocks, kTpb * kPerThread * 2);
    std::vector<std::vector<std::uint32_t>> got(kBlocks * kTpb);
    dev.launch({kBlocks, kTpb}, [&](ThreadCtx& ctx) {
      const std::uint32_t t = ctx.tid();
      const std::size_t home = wl.home_shard(ctx.block(), kBlocks);
      const std::size_t victim = (ctx.block() + 1) % kBlocks;
      for (std::uint32_t k = 0; k < kPerThread; ++k) {
        ASSERT_TRUE(wl.push(ctx, home, t * kPerThread + k).ok());
        if (k % 2 == 1) {
          if (auto v = wl.pop_owned(ctx, kBlocks)) got[t].push_back(*v);
        } else if (k % 4 == 0) {
          if (auto v = wl.steal(ctx, victim)) got[t].push_back(*v);
        }
      }
    });
    ThreadCtx drain;
    std::vector<std::uint32_t> all;
    for (std::size_t s = 0; s < wl.num_shards(); ++s) {
      while (auto v = wl.pop(drain, s)) all.push_back(*v);
    }
    for (const auto& g : got) all.insert(all.end(), g.begin(), g.end());
    ASSERT_EQ(all.size(),
              static_cast<std::size_t>(kBlocks) * kTpb * kPerThread);
    std::sort(all.begin(), all.end());
    for (std::uint32_t i = 0; i < kBlocks * kTpb * kPerThread; ++i) {
      ASSERT_EQ(all[i], i) << "item lost or duplicated";
    }
  }
}

TEST(ShardedWorklist, OwnedPopsAndRebalanceBitIdenticalAcrossWorkers) {
  // The sharded analogue of Launch.StatsBitIdenticalAcrossHostWorkers: a
  // round-based driver (parallel owned pops -> sequential requeue -> host
  // rebalance) must produce identical stats, steal counts and processing
  // order for any worker count.
  auto run = [](std::uint32_t workers) {
    DeviceConfig cfg;
    cfg.host_workers = workers;
    cfg.worklist_mode = WorklistMode::kSharded;
    Device dev(cfg);
    ShardedWorklist<std::uint32_t> wl(8, 512, &dev);
    ThreadCtx host;
    for (std::uint32_t i = 0; i < 300; ++i) {
      (void)wl.push(host, wl.partition_shard(i, 300), i);
    }
    std::vector<std::uint32_t> order;
    std::mutex order_mu;
    for (int round = 0; round < 4; ++round) {
      std::vector<std::vector<std::uint32_t>> requeue(8);
      const Phase phases[2] = {
          {[&](ThreadCtx& ctx) {
            if (ctx.thread_in_block() != 0) return;
            std::vector<std::uint32_t> mine;
            while (auto v = wl.pop_owned(ctx, 8)) mine.push_back(*v);
            // Blocks finish in any order; publication happens in the
            // sequential phase below, in block order.
            std::scoped_lock lock(order_mu);
            requeue[ctx.block()] = std::move(mine);
          }, /*sequential=*/false},
          {[&](ThreadCtx& ctx) {
            if (ctx.thread_in_block() != 0) return;
            for (std::uint32_t v : requeue[ctx.block()]) {
              order.push_back(v);
              if (v % 3 == 0 && round < 3) {  // some work respawns children
                (void)wl.push(ctx, wl.home_shard(ctx.block(), 8), v + 1000);
              }
            }
          }, /*sequential=*/true},
      };
      dev.launch_phases({8, 32}, std::span<const Phase>(phases));
      wl.rebalance();
    }
    return std::tuple(order, wl.steals(), dev.stats().modeled_cycles,
                      dev.stats().wl_local_ops, dev.stats().wl_steals);
  };
  const auto a = run(1);
  for (std::uint32_t workers : {2u, 4u, 8u}) {
    EXPECT_EQ(a, run(workers)) << "workers=" << workers;
  }
}

TEST(ThreadPool, InlineModeRunsAllTasks) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.run_all(100, [&](std::uint64_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelModeRunsAllTasksOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.run_all(1000, [&](std::uint64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 10; ++batch) {
    pool.run_all(50, [&](std::uint64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(CpuRunner, MakespanIsMaxWorkerWork) {
  cpu::ParallelRunner runner({.workers = 4});
  // 8 items, item i costs i+1: cyclic distribution puts {0,4},{1,5},{2,6},
  // {3,7} on workers 0..3 -> loads 6,8,10,12.
  const cpu::RoundStats rs =
      runner.round(8, [](cpu::WorkerCtx& ctx, std::uint64_t i) {
        ctx.work(i + 1);
      });
  EXPECT_EQ(rs.total_work, 36u);
  EXPECT_EQ(rs.max_worker_work, 12u);
}

TEST(CpuRunner, MoreWorkersReduceModeledTime) {
  cpu::ParallelRunner one({.workers = 1});
  cpu::ParallelRunner many({.workers = 48});
  auto body = [](cpu::WorkerCtx& ctx, std::uint64_t) { ctx.work(100); };
  const double t1 = one.round(480, body).modeled_cycles;
  const double t48 = many.round(480, body).modeled_cycles;
  // Perfect scaling would be 48x; the per-round overhead caps it lower.
  EXPECT_GT(t1, 25.0 * t48);
}

TEST(CpuRunner, SyncOpsChargeExtra) {
  cpu::ParallelRunner a({.workers = 8});
  cpu::ParallelRunner b({.workers = 8});
  const double plain =
      a.round(64, [](cpu::WorkerCtx& ctx, std::uint64_t) { ctx.work(1); })
          .modeled_cycles;
  const double synced =
      b.round(64, [](cpu::WorkerCtx& ctx, std::uint64_t) { ctx.sync_op(); })
          .modeled_cycles;
  EXPECT_GT(synced, plain);
}

TEST(CpuRunner, StatsAccumulate) {
  cpu::ParallelRunner runner({.workers = 2});
  runner.round(4, [](cpu::WorkerCtx& ctx, std::uint64_t) { ctx.work(1); });
  runner.round(4, [](cpu::WorkerCtx& ctx, std::uint64_t) { ctx.work(1); });
  EXPECT_EQ(runner.stats().rounds, 2u);
  EXPECT_EQ(runner.stats().total_work, 8u);
}

}  // namespace
}  // namespace morph::gpu
