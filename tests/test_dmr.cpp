// Tests for Delaunay mesh refinement: geometry predicates, the mesh
// structure, Bowyer-Watson triangulation, cavities, and the three
// refinement drivers (serial / multicore / GPU) across schemes and options.
#include <gtest/gtest.h>

#include "dmr/cavity.hpp"
#include "dmr/delaunay.hpp"
#include "dmr/geometry.hpp"
#include "dmr/mesh.hpp"
#include "dmr/refine.hpp"
#include "support/rng.hpp"

namespace morph::dmr {
namespace {

TEST(Geometry, OrientationSign) {
  const Pt64 a{0, 0}, b{1, 0}, c{0, 1};
  EXPECT_GT(orient2d(a, b, c), 0.0);  // CCW
  EXPECT_LT(orient2d(a, c, b), 0.0);  // CW
  EXPECT_DOUBLE_EQ(orient2d(a, b, Pt64{2, 0}), 0.0);  // collinear
}

TEST(Geometry, IncircleUnitTriangle) {
  const Pt64 a{0, 0}, b{1, 0}, c{0, 1};
  EXPECT_GT(incircle(a, b, c, Pt64{0.3, 0.3}), 0.0);   // inside
  EXPECT_LT(incircle(a, b, c, Pt64{2.0, 2.0}), 0.0);   // outside
  EXPECT_NEAR(incircle(a, b, c, Pt64{1.0, 1.0}), 0.0, 1e-12);  // on circle
}

TEST(Geometry, CircumcenterEquidistant) {
  const Pt64 a{0.1, 0.2}, b{0.9, 0.15}, c{0.4, 0.8};
  const Pt64 cc = circumcenter(a, b, c);
  const double ra = dist2(cc, a), rb = dist2(cc, b), rc = dist2(cc, c);
  EXPECT_NEAR(ra, rb, 1e-12);
  EXPECT_NEAR(ra, rc, 1e-12);
}

TEST(Geometry, AngleCosKnownValues) {
  const Pt64 a{0, 0}, b{1, 0}, c{0, 1};
  EXPECT_NEAR(angle_cos_at(a, b, c), 0.0, 1e-12);           // 90 degrees
  EXPECT_NEAR(angle_cos_at(b, a, c), std::sqrt(0.5), 1e-12);  // 45 degrees
}

TEST(Geometry, SmallAngleDetection) {
  // Sliver: apex angle far below 30 degrees.
  const Pt64 a{0, 0}, b{1, 0}, c{0.5, 0.02};
  EXPECT_TRUE(has_small_angle(a, b, c, cos_of_deg(30.0)));
  // Equilateral: all angles 60 degrees.
  const Pt64 e1{0, 0}, e2{1, 0}, e3{0.5, std::sqrt(3.0) / 2};
  EXPECT_FALSE(has_small_angle(e1, e2, e3, cos_of_deg(30.0)));
  EXPECT_TRUE(has_small_angle(e1, e2, e3, cos_of_deg(61.0)));
}

TEST(Geometry, DiametralCircle) {
  const Pt64 a{0, 0}, b{1, 0};
  EXPECT_TRUE(in_diametral_circle(a, b, Pt64{0.5, 0.2}));
  EXPECT_FALSE(in_diametral_circle(a, b, Pt64{0.5, 0.9}));
  EXPECT_FALSE(in_diametral_circle(a, b, Pt64{1.4, 0.0}));
}

TEST(Geometry, FloatPredicatesAgreeOnClearCases) {
  const Pt<float> a{0, 0}, b{1, 0}, c{0, 1};
  EXPECT_GT(incircle(a, b, c, Pt<float>{0.3f, 0.3f}), 0.0f);
  EXPECT_LT(incircle(a, b, c, Pt<float>{2.0f, 2.0f}), 0.0f);
}

TEST(Mesh, AddTriangleEnforcesCcw) {
  Mesh m;
  const Vtx a = m.add_point(0, 0), b = m.add_point(1, 0), c = m.add_point(0, 1);
  const Tri t = m.add_triangle(a, c, b);  // given CW; must be stored CCW
  const auto& v = m.verts(t);
  EXPECT_GT(orient2d(m.point(v[0]), m.point(v[1]), m.point(v[2])), 0.0);
}

TEST(Mesh, DegenerateTriangleRejected) {
  Mesh m;
  const Vtx a = m.add_point(0, 0), b = m.add_point(1, 1), c = m.add_point(2, 2);
  EXPECT_THROW(m.add_triangle(a, b, c), CheckError);
}

TEST(Mesh, EdgeIndexFindsSharedEdge) {
  Mesh m;
  const Vtx a = m.add_point(0, 0), b = m.add_point(1, 0), c = m.add_point(0, 1);
  const Tri t = m.add_triangle(a, b, c);
  const int e = m.edge_index(t, a, b);
  const auto [u, v] = m.edge_verts(t, e);
  EXPECT_EQ(std::minmax(u, v), std::minmax(a, b));
  EXPECT_THROW(m.edge_index(t, a, 99), CheckError);
}

TEST(Mesh, DeletionAndRecycleSlot) {
  Mesh m;
  const Vtx a = m.add_point(0, 0), b = m.add_point(1, 0), c = m.add_point(0, 1),
            d = m.add_point(1, 1);
  const Tri t = m.add_triangle(a, b, c);
  EXPECT_EQ(m.num_live(), 1u);
  m.mark_deleted(t);
  EXPECT_EQ(m.num_live(), 0u);
  EXPECT_THROW(m.mark_deleted(t), CheckError);  // double delete
  m.write_triangle(t, b, c, d);  // recycle the slot
  EXPECT_EQ(m.num_live(), 1u);
  EXPECT_FALSE(m.is_deleted(t));
}

TEST(Mesh, ValidateCatchesAsymmetricAdjacency) {
  Mesh m;
  const Vtx a = m.add_point(0, 0), b = m.add_point(1, 0), c = m.add_point(0, 1),
            d = m.add_point(1, 1);
  const Tri t0 = m.add_triangle(a, b, c);
  const Tri t1 = m.add_triangle(b, d, c);
  // Wire only one direction.
  m.set_neighbor(t0, m.edge_index(t0, b, c), t1);
  for (int e = 0; e < 3; ++e) {
    if (m.across(t0, e) == Mesh::kNone) m.set_neighbor(t0, e, Mesh::kBoundary);
    if (m.across(t1, e) == Mesh::kNone) m.set_neighbor(t1, e, Mesh::kBoundary);
  }
  std::string why;
  EXPECT_FALSE(m.validate(&why));
  EXPECT_NE(why.find("asymmetric"), std::string::npos);
}

TEST(Delaunay, TwoTriangleSquare) {
  Mesh m = triangulate_square({});
  EXPECT_EQ(m.num_live(), 2u);
  EXPECT_TRUE(m.validate());
  EXPECT_TRUE(is_delaunay(m));
  EXPECT_EQ(m.count_hull_edges(), 4u);
}

TEST(Delaunay, SinglePointMakesFan) {
  const Pt64 pts[] = {{0.5, 0.5}};
  Mesh m = triangulate_square(pts);
  // 4 corners + 1 interior: 2*5 - 2 - 4 = 4 triangles.
  EXPECT_EQ(m.num_live(), 4u);
  EXPECT_TRUE(m.validate());
  EXPECT_TRUE(is_delaunay(m));
}

TEST(Delaunay, RejectsPointOutsideSquare) {
  const Pt64 pts[] = {{1.5, 0.5}};
  EXPECT_THROW(triangulate_square(pts), CheckError);
}

class DelaunaySweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DelaunaySweep, RandomPointsYieldValidDelaunayMesh) {
  const auto [npts, seed] = GetParam();
  Rng rng(seed);
  std::vector<Pt64> pts;
  for (int i = 0; i < npts; ++i) {
    pts.push_back({0.01 + 0.98 * rng.next_double(),
                   0.01 + 0.98 * rng.next_double()});
  }
  Mesh m = triangulate_square(pts);
  std::string why;
  EXPECT_TRUE(m.validate(&why)) << why;
  EXPECT_TRUE(is_delaunay(m));
  // Euler: triangles = 2*points - 2 - hull_edges (all points are vertices;
  // hull is the square plus nothing else).
  EXPECT_EQ(m.num_live(), 2 * (npts + 4) - 2 - m.count_hull_edges());
}

INSTANTIATE_TEST_SUITE_P(Sizes, DelaunaySweep,
                         ::testing::Combine(::testing::Values(5, 50, 500,
                                                              2000),
                                            ::testing::Values(1, 2, 3)));

TEST(Delaunay, GeneratorHasRoughlyHalfBadTriangles) {
  Mesh m = generate_input_mesh(5000, 77);
  const double frac = static_cast<double>(m.compute_all_bad(30.0)) /
                      static_cast<double>(m.num_live());
  EXPECT_GT(frac, 0.30);
  EXPECT_LT(frac, 0.70);
}

TEST(Delaunay, LocateTriangleFindsContainer) {
  Mesh m = generate_input_mesh(500, 3);
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const Pt64 p{0.05 + 0.9 * rng.next_double(),
                 0.05 + 0.9 * rng.next_double()};
    const Tri t = locate_triangle(m, 0, p, nullptr);
    ASSERT_NE(t, Mesh::kNone);
    const auto& v = m.verts(t);
    EXPECT_GE(orient2d(m.point(v[0]), m.point(v[1]), p), 0.0);
    EXPECT_GE(orient2d(m.point(v[1]), m.point(v[2]), p), 0.0);
    EXPECT_GE(orient2d(m.point(v[2]), m.point(v[0]), p), 0.0);
  }
}

TEST(Cavity, InsertionCavityCoversCircumcircleContainment) {
  Mesh m = generate_input_mesh(300, 5);
  const Pt64 p{0.5, 0.5};
  const Tri at = locate_triangle(m, 0, p, nullptr);
  ASSERT_NE(at, Mesh::kNone);
  Cavity c = build_insertion_cavity(m, at, p);
  EXPECT_TRUE(c.ok);
  EXPECT_FALSE(c.tris.empty());
  EXPECT_GE(c.frontier.size(), c.tris.size() + 2);
  // Every cavity triangle's circumcircle contains p.
  for (Tri t : c.tris) {
    const auto& v = m.verts(t);
    EXPECT_GT(incircle(m.point(v[0]), m.point(v[1]), m.point(v[2]), p), 0.0);
  }
}

TEST(Cavity, RetriangulationKeepsMeshValidAndDelaunay) {
  Mesh m = generate_input_mesh(300, 6);
  const Pt64 p{0.37, 0.61};
  const Tri at = locate_triangle(m, 0, p, nullptr);
  Cavity c = build_insertion_cavity(m, at, p);
  const std::size_t before = m.num_live();
  retriangulate(m, c, cos_of_deg(30.0));
  EXPECT_EQ(m.num_live(), before - c.tris.size() + c.frontier.size());
  std::string why;
  EXPECT_TRUE(m.validate(&why)) << why;
  EXPECT_TRUE(is_delaunay(m));
}

TEST(Cavity, NeighborhoodIncludesOutsideRing) {
  Mesh m = generate_input_mesh(300, 7);
  m.compute_all_bad(30.0);
  Tri bad = Mesh::kNone;
  for (Tri t = 0; t < m.num_slots(); ++t) {
    if (!m.is_deleted(t) && m.is_bad(t)) {
      bad = t;
      break;
    }
  }
  ASSERT_NE(bad, Mesh::kNone);
  Cavity c = build_refinement_cavity(m, bad);
  ASSERT_TRUE(c.ok);
  const auto hood = c.neighborhood(m);
  for (Tri t : c.tris) {
    EXPECT_TRUE(std::binary_search(hood.begin(), hood.end(), t));
  }
  for (const FrontierEdge& f : c.frontier) {
    if (f.outside != Mesh::kBoundary) {
      EXPECT_TRUE(std::binary_search(hood.begin(), hood.end(), f.outside));
    }
  }
}

// ---- refinement drivers ----

void expect_refined(const Mesh& m, const char* what) {
  Mesh copy = m;
  EXPECT_EQ(copy.compute_all_bad(30.0), 0u) << what;
  std::string why;
  EXPECT_TRUE(copy.validate(&why)) << what << ": " << why;
}

TEST(RefineSerial, EliminatesAllBadTriangles) {
  Mesh m = generate_input_mesh(1500, 11);
  const RefineStats st = refine_serial(m);
  EXPECT_GT(st.initial_bad, 0u);
  EXPECT_GT(st.processed, st.initial_bad / 2);
  EXPECT_EQ(st.final_triangles, m.num_live());
  expect_refined(m, "serial");
  EXPECT_TRUE(is_delaunay(m)) << "Chew refinement preserves Delaunayhood";
}

TEST(RefineSerial, NoRecycleStillCorrect) {
  Mesh m = generate_input_mesh(800, 12);
  RefineOptions opts;
  opts.recycle = false;
  refine_serial(m, opts);
  expect_refined(m, "serial no-recycle");
}

TEST(RefineSerial, AlreadyGoodMeshIsNoop) {
  Mesh m = generate_input_mesh(800, 13);
  refine_serial(m);
  const std::size_t tris = m.num_live();
  const RefineStats st = refine_serial(m);
  EXPECT_EQ(st.initial_bad, 0u);
  EXPECT_EQ(st.processed, 0u);
  EXPECT_EQ(m.num_live(), tris);
}

TEST(RefineSerial, FloatPredicatesAlsoConverge) {
  Mesh m = generate_input_mesh(800, 14);
  RefineOptions opts;
  opts.use_float = true;
  refine_serial(m, opts);
  expect_refined(m, "serial float");
}

TEST(RefineMulticore, EliminatesAllBadTriangles) {
  Mesh m = generate_input_mesh(1500, 15);
  cpu::ParallelRunner runner;
  const RefineStats st = refine_multicore(m, runner);
  EXPECT_GT(st.rounds, 1u);
  expect_refined(m, "multicore");
  EXPECT_GT(st.modeled_cycles, 0.0);
}

TEST(RefineMulticore, AbortsAreRetriedNotLost) {
  Mesh m = generate_input_mesh(1000, 16);
  cpu::ParallelRunner runner({.workers = 48});
  const RefineStats st = refine_multicore(m, runner);
  EXPECT_GT(st.aborted, 0u) << "expected contention between cavities";
  expect_refined(m, "multicore aborts");
}

struct GpuCase {
  core::ConflictScheme scheme;
  bool adaptive;
  bool divergence_sort;
  bool layout_opt;
  bool recycle;
  bool use_float;
};

class RefineGpuSweep : public ::testing::TestWithParam<GpuCase> {};

TEST_P(RefineGpuSweep, EliminatesAllBadTriangles) {
  const GpuCase& pc = GetParam();
  Mesh m = generate_input_mesh(1200, 17);
  gpu::Device dev;
  RefineOptions opts;
  opts.scheme = pc.scheme;
  opts.adaptive = pc.adaptive;
  opts.divergence_sort = pc.divergence_sort;
  opts.layout_opt = pc.layout_opt;
  opts.recycle = pc.recycle;
  opts.use_float = pc.use_float;
  const RefineStats st = refine_gpu(m, dev, opts);
  EXPECT_GT(st.initial_bad, 0u);
  expect_refined(m, "gpu");
  EXPECT_GT(st.modeled_cycles, 0.0);
  EXPECT_GT(dev.stats().launches, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, RefineGpuSweep,
    ::testing::Values(
        GpuCase{core::ConflictScheme::kThreePhase, true, true, true, true,
                false},
        GpuCase{core::ConflictScheme::kThreePhase, false, false, false, false,
                false},
        GpuCase{core::ConflictScheme::kThreePhase, true, false, true, true,
                true},
        GpuCase{core::ConflictScheme::kTwoPhaseRaceCheck, true, true, true,
                true, false},
        GpuCase{core::ConflictScheme::kTwoPhasePriority, true, true, true,
                true, false},
        GpuCase{core::ConflictScheme::kLocks, true, true, true, true, false}));

TEST(RefineGpuDataDriven, EliminatesAllBadTriangles) {
  Mesh m = generate_input_mesh(1200, 23);
  gpu::Device dev;
  const RefineStats st = refine_gpu_datadriven(m, dev);
  EXPECT_GT(st.initial_bad, 0u);
  expect_refined(m, "gpu data-driven");
  EXPECT_TRUE(is_delaunay(m));
  EXPECT_GT(dev.stats().atomics, 1000u)
      << "the centralized worklist must pay atomics";
}

TEST(RefineGpuDataDriven, CostsMoreAtomicsThanTopologyDriven) {
  Mesh m1 = generate_input_mesh(2000, 24);
  Mesh m2 = m1;
  gpu::Device d1, d2;
  refine_gpu(m1, d1);
  refine_gpu_datadriven(m2, d2);
  EXPECT_GT(d2.stats().atomics, 10 * std::max<std::uint64_t>(
                                         d1.stats().atomics, 1));
}

TEST(RefineGpu, PreallocAvoidsReallocs) {
  Mesh m1 = generate_input_mesh(1000, 18);
  Mesh m2 = m1;
  gpu::Device d1, d2;
  RefineOptions opts;
  opts.prealloc = true;
  refine_gpu(m1, d1, opts);
  opts.prealloc = false;
  refine_gpu(m2, d2, opts);
  EXPECT_EQ(d1.stats().reallocs, 0u);
  EXPECT_GT(d2.stats().reallocs, 0u);
  EXPECT_GT(d1.stats().bytes_allocated, d2.stats().bytes_allocated);
}

TEST(RefineGpu, ThreePhaseAndSerialReachSameQuality) {
  Mesh base = generate_input_mesh(1000, 19);
  Mesh ms = base, mg = base;
  refine_serial(ms);
  gpu::Device dev;
  refine_gpu(mg, dev);
  // Different schedules produce different meshes, but both are fully
  // refined triangulations of the same point envelope.
  EXPECT_EQ(ms.compute_all_bad(30.0), 0u);
  EXPECT_EQ(mg.compute_all_bad(30.0), 0u);
  EXPECT_TRUE(is_delaunay(ms));
  EXPECT_TRUE(is_delaunay(mg));
}

TEST(RefineGpu, ModeledCyclesBitIdenticalAcrossHostWorkers) {
  // Block-parallel execution is the standard fast path; the contract is
  // that it changes nothing observable: same refined mesh, same processed
  // and aborted counts, and bit-identical modeled statistics. Race marks
  // resolve highest-id-wins and mesh mutation happens in a sequential
  // commit phase, so the winner set per round is interleaving-independent.
  const Mesh base = generate_input_mesh(1200, 25);
  auto run = [&](std::uint32_t workers, Mesh& m, RefineStats& st) {
    gpu::DeviceConfig cfg;
    cfg.host_workers = workers;
    gpu::Device dev(cfg);
    m = base;
    st = refine_gpu(m, dev, {});
    return dev.stats().modeled_cycles;
  };
  Mesh m1 = base, m4 = base;
  RefineStats s1, s4;
  const double c1 = run(1, m1, s1);
  const double c4 = run(4, m4, s4);
  EXPECT_EQ(c1, c4);  // bitwise, not approximate
  EXPECT_EQ(s1.modeled_cycles, s4.modeled_cycles);
  EXPECT_EQ(s1.rounds, s4.rounds);
  EXPECT_EQ(s1.processed, s4.processed);
  EXPECT_EQ(s1.aborted, s4.aborted);
  EXPECT_EQ(m1.num_live(), m4.num_live());
  expect_refined(m4, "gpu host_workers=4");
}

TEST(RefineGpuDataDriven, CorrectUnderBlockParallelExecution) {
  // The data-driven schedule depends on the worklist pop interleaving, so
  // it is not bit-deterministic across worker counts — but it must lose no
  // work and still fully refine the mesh.
  Mesh m = generate_input_mesh(1200, 26);
  gpu::DeviceConfig cfg;
  cfg.host_workers = 4;
  gpu::Device dev(cfg);
  const RefineStats st = refine_gpu_datadriven(m, dev);
  EXPECT_GT(st.initial_bad, 0u);
  expect_refined(m, "gpu data-driven host_workers=4");
  EXPECT_TRUE(is_delaunay(m));
}

TEST(RefineGpu, AbortRatioReportedUnderContention) {
  Mesh m = generate_input_mesh(2000, 20);
  gpu::Device dev;
  RefineOptions opts;
  const RefineStats st = refine_gpu(m, dev, opts);
  EXPECT_GT(st.aborted, 0u);
  EXPECT_GT(st.abort_ratio(), 0.0);
  EXPECT_LT(st.abort_ratio(), 1.0);
}

TEST(RefineGpu, StatsProcessedMatchesWorkDone) {
  Mesh m = generate_input_mesh(600, 21);
  gpu::Device dev;
  const RefineStats st = refine_gpu(m, dev);
  // Every processed cavity deletes at least one triangle and adds at least
  // three; final count must reflect that net growth.
  EXPECT_GT(st.final_triangles, st.initial_bad);
  EXPECT_GE(st.processed, st.initial_bad / 2);
}

TEST(Mesh, CompactAndReorderPreservesGeometry) {
  Mesh m = generate_input_mesh(800, 22);
  refine_serial(m);  // create deleted slots
  const std::size_t live = m.num_live();
  Mesh copy = m;
  const std::size_t slots = copy.compact_and_reorder();
  EXPECT_EQ(slots, live);
  EXPECT_EQ(copy.num_live(), live);
  std::string why;
  EXPECT_TRUE(copy.validate(&why)) << why;
  EXPECT_TRUE(is_delaunay(copy));
}

}  // namespace
}  // namespace morph::dmr
