// Unit tests for the graph substrate: CSR, generators, layout, union-find,
// DIMACS IO.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <sstream>

#include "support/rng.hpp"

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/layout.hpp"
#include "graph/union_find.hpp"

namespace morph::graph {
namespace {

TEST(Csr, DirectedBuildBasics) {
  const Edge edges[] = {{0, 1, 5}, {0, 2, 7}, {2, 1, 3}};
  auto g = CsrGraph::from_edges(3, edges);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_TRUE(g.validate());
  const auto nb = g.neighbors(0);
  EXPECT_EQ(std::set<Node>(nb.begin(), nb.end()), (std::set<Node>{1, 2}));
}

TEST(Csr, WeightsFollowEdges) {
  const Edge edges[] = {{0, 1, 5}, {1, 0, 9}};
  auto g = CsrGraph::from_edges(2, edges);
  EXPECT_EQ(g.edge_weight(g.row_begin(0)), 5u);
  EXPECT_EQ(g.edge_weight(g.row_begin(1)), 9u);
}

TEST(Csr, UndirectedStoresBothDirections) {
  const Edge edges[] = {{0, 1, 4}, {1, 2, 6}};
  auto g = CsrGraph::from_undirected_edges(3, edges);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.validate(/*require_symmetric=*/true));
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Csr, UndirectedRejectsSelfLoop) {
  const Edge edges[] = {{1, 1, 2}};
  EXPECT_THROW(CsrGraph::from_undirected_edges(2, edges), CheckError);
}

TEST(Csr, RejectsOutOfRangeEndpoint) {
  const Edge edges[] = {{0, 5, 1}};
  EXPECT_THROW(CsrGraph::from_edges(3, edges), CheckError);
}

TEST(Csr, AvgDegree) {
  const Edge edges[] = {{0, 1, 1}, {1, 2, 1}};
  auto g = CsrGraph::from_undirected_edges(4, edges);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 1.0);
}

TEST(Csr, PermutedPreservesStructure) {
  const Edge edges[] = {{0, 1, 4}, {1, 2, 6}, {0, 2, 8}};
  auto g = CsrGraph::from_undirected_edges(3, edges);
  const Node perm[] = {2, 0, 1};
  auto p = g.permuted(perm);
  EXPECT_EQ(p.num_edges(), g.num_edges());
  EXPECT_TRUE(p.validate(true));
  // Degree multiset is invariant.
  std::multiset<std::uint32_t> d1, d2;
  for (Node u = 0; u < 3; ++u) {
    d1.insert(g.degree(u));
    d2.insert(p.degree(u));
  }
  EXPECT_EQ(d1, d2);
  // Edge (0,1,w=4) becomes (2,0,w=4).
  bool found = false;
  for (EdgeId e = p.row_begin(2); e < p.row_end(2); ++e) {
    if (p.edge_dst(e) == 0 && p.edge_weight(e) == 4) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Generators, RandomUniformProducesExactCountNoDupes) {
  auto edges = gen_random_uniform(100, 300, 50, 7);
  EXPECT_EQ(edges.size(), 300u);
  std::set<std::pair<Node, Node>> seen;
  for (const Edge& e : edges) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_GE(e.weight, 1u);
    EXPECT_LE(e.weight, 50u);
    auto key = std::minmax(e.src, e.dst);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second)
        << "duplicate edge";
  }
}

TEST(Generators, RandomUniformDeterministicInSeed) {
  auto a = gen_random_uniform(50, 100, 10, 42);
  auto b = gen_random_uniform(50, 100, 10, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].weight, b[i].weight);
  }
}

TEST(Generators, RandomUniformRejectsOverfullGraph) {
  EXPECT_THROW(gen_random_uniform(4, 100, 10, 1), CheckError);
}

TEST(Generators, RmatSkewsDegrees) {
  auto edges = gen_rmat(10, 4096, 3);
  EXPECT_GT(edges.size(), 3500u);  // dedup may drop a few
  auto g = CsrGraph::from_undirected_edges(1024, edges);
  std::uint32_t dmax = 0;
  for (Node u = 0; u < g.num_nodes(); ++u) dmax = std::max(dmax, g.degree(u));
  // RMAT hubs should far exceed the mean degree (8).
  EXPECT_GT(dmax, 40u);
}

TEST(Generators, Grid2dHasLatticeEdgeCount) {
  auto edges = gen_grid2d(10, 100, 1);
  EXPECT_EQ(edges.size(), 2u * 10 * 9);
  auto g = CsrGraph::from_undirected_edges(100, edges);
  for (Node u = 0; u < 100; ++u) {
    EXPECT_GE(g.degree(u), 2u);
    EXPECT_LE(g.degree(u), 4u);
  }
}

TEST(Generators, RoadLikeIsConnectedAndSparse) {
  auto edges = gen_road_like(2000, 2.5, 11);
  auto g = CsrGraph::from_undirected_edges(2000, edges);
  EXPECT_NEAR(g.avg_degree(), 2.5, 0.8);
  UnionFind uf(2000);
  for (const Edge& e : edges) uf.unite(e.src, e.dst);
  EXPECT_EQ(uf.num_sets(), 1u) << "backbone must connect the graph";
}

TEST(Generators, MaxNodePlusOne) {
  std::vector<Edge> edges = {{3, 9, 1}, {1, 2, 1}};
  EXPECT_EQ(max_node_plus_one(edges), 10u);
}

TEST(Layout, BfsOrderIsAPermutation) {
  auto edges = gen_random_uniform(200, 500, 10, 3);
  auto g = CsrGraph::from_undirected_edges(200, edges);
  auto perm = bfs_order(g);
  std::vector<bool> seen(200, false);
  for (Node p : perm) {
    ASSERT_LT(p, 200u);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(Layout, BfsReorderImprovesLocalityOfShuffledGrid) {
  // Take a grid (good locality), shuffle node ids (bad locality), and
  // check the BFS scan recovers most of it — the Sec. 6.1 optimization.
  auto edges = gen_grid2d(30, 10, 5);
  Rng rng(17);
  std::vector<Node> shuffle(900);
  std::iota(shuffle.begin(), shuffle.end(), 0u);
  for (std::size_t i = shuffle.size(); i > 1; --i)
    std::swap(shuffle[i - 1], shuffle[rng.next_below(i)]);
  auto g = CsrGraph::from_undirected_edges(900, edges).permuted(shuffle);

  const double before = layout_cost(g);
  auto opt = g.permuted(bfs_order(g));
  const double after = layout_cost(opt);
  EXPECT_LT(after, before / 4.0);
  EXPECT_TRUE(opt.validate(true));
}

TEST(Layout, CoversDisconnectedComponents) {
  const Edge edges[] = {{0, 1, 1}, {2, 3, 1}};
  auto g = CsrGraph::from_undirected_edges(5, edges);  // node 4 isolated
  auto perm = bfs_order(g);
  std::set<Node> ids(perm.begin(), perm.end());
  EXPECT_EQ(ids.size(), 5u);
}

TEST(UnionFind, BasicUniteFind) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_EQ(uf.num_sets(), 4u);
  EXPECT_EQ(uf.set_size(1), 2u);
}

TEST(UnionFind, TransitiveMerges) {
  UnionFind uf(8);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 3);
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_EQ(uf.set_size(0), 4u);
}

TEST(UnionFind, OutOfRangeThrows) {
  UnionFind uf(3);
  EXPECT_THROW(uf.find(3), CheckError);
}

TEST(Io, DimacsRoundTrip) {
  auto edges = gen_random_uniform(50, 120, 30, 9);
  std::stringstream ss;
  write_dimacs(ss, 50, edges);
  Node n = 0;
  auto back = read_dimacs(ss, n);
  EXPECT_EQ(n, 50u);
  ASSERT_EQ(back.size(), edges.size());
  auto key = [](const Edge& e) {
    return std::tuple(std::min(e.src, e.dst), std::max(e.src, e.dst),
                      e.weight);
  };
  std::multiset<std::tuple<Node, Node, Weight>> a, b;
  for (const Edge& e : edges) a.insert(key(e));
  for (const Edge& e : back) b.insert(key(e));
  EXPECT_EQ(a, b);
}

TEST(Io, DimacsSkipsCommentsAndDupes) {
  std::stringstream ss("c comment\np sp 4 3\na 1 2 5\nc mid\na 2 1 5\na 3 4 7\n");
  Node n = 0;
  auto edges = read_dimacs(ss, n);
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(edges.size(), 2u);  // the reverse arc collapses
}

}  // namespace
}  // namespace morph::graph
