// Incremental-vs-scratch equivalence matrix (ISSUE 10): MST insert/delete
// batches and PTA constraint batches must land byte-identically on the
// from-scratch answer for the same final input, across --host-workers 1 vs 4
// and {centralized, sharded} worklist modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.hpp"
#include "mst/incremental.hpp"
#include "pta/incremental.hpp"
#include "support/rng.hpp"

namespace morph {
namespace {

using graph::CsrGraph;
using graph::Edge;
using graph::Node;

std::vector<gpu::DeviceConfig> config_matrix() {
  std::vector<gpu::DeviceConfig> out;
  for (const std::uint32_t hw : {1u, 4u})
    for (const gpu::WorklistMode wm :
         {gpu::WorklistMode::kCentralized, gpu::WorklistMode::kSharded}) {
      gpu::DeviceConfig cfg;
      cfg.host_workers = hw;
      cfg.worklist_mode = wm;
      out.push_back(cfg);
    }
  return out;
}

/// Scripted MST scenario: build from a base edge set, then apply insert and
/// delete batches. Returns the state digest after every batch.
struct MstScenario {
  std::vector<Edge> base;
  std::vector<std::vector<mst::EdgeUpdate>> batches;
  std::vector<Edge> final_edges;  ///< base after all updates
};

MstScenario make_mst_scenario() {
  MstScenario sc;
  const Node n = 4096;
  std::vector<Edge> all = graph::gen_clustered(n, 256, 4.0, 64, 7);
  // Hold out every 5th edge as later inserts; delete every 9th base edge.
  std::vector<Edge> held;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i % 5 == 0)
      held.push_back(all[i]);
    else
      sc.base.push_back(all[i]);
  }
  std::vector<mst::EdgeUpdate> batch;
  std::vector<Edge> current = sc.base;
  const auto flush = [&] {
    if (!batch.empty()) sc.batches.push_back(std::move(batch));
    batch.clear();
  };
  for (std::size_t i = 0; i < held.size(); ++i) {
    batch.push_back({true, held[i].src, held[i].dst, held[i].weight});
    current.push_back(held[i]);
    if (batch.size() == 64) flush();
  }
  flush();
  // Deletions: every 9th of the current edge list (hits forest and
  // non-forest edges alike).
  std::vector<Edge> kept;
  for (std::size_t i = 0; i < current.size(); ++i) {
    if (i % 9 == 0) {
      batch.push_back({false, current[i].src, current[i].dst,
                       current[i].weight});
      if (batch.size() == 64) flush();
    } else {
      kept.push_back(current[i]);
    }
  }
  flush();
  sc.final_edges = kept;
  return sc;
}

std::vector<std::uint64_t> run_mst_scenario(const MstScenario& sc,
                                            const gpu::DeviceConfig& cfg,
                                            mst::MstState* final_state) {
  gpu::Device dev(cfg);
  mst::MstState st = mst::make_mst_state(4096, sc.base, dev);
  std::vector<std::uint64_t> digests = {mst::state_digest(st)};
  for (const auto& b : sc.batches) {
    mst::apply_updates(st, b, dev);
    digests.push_back(mst::state_digest(st));
  }
  if (final_state) *final_state = std::move(st);
  return digests;
}

TEST(IncrementalMst, MatchesScratchAndIsWorkerInvariant) {
  const MstScenario sc = make_mst_scenario();
  std::vector<std::vector<std::uint64_t>> per_config;
  mst::MstState last;
  for (const auto& cfg : config_matrix())
    per_config.push_back(run_mst_scenario(sc, cfg, &last));
  for (std::size_t i = 1; i < per_config.size(); ++i)
    EXPECT_EQ(per_config[0], per_config[i]) << "config " << i;

  // From-scratch recompute of the final edge set must agree exactly.
  gpu::Device dev;
  const CsrGraph g = CsrGraph::from_undirected_edges(4096, sc.final_edges);
  const mst::MstResult scratch = mst::mst_gpu(g, dev);
  EXPECT_EQ(last.total_weight, scratch.total_weight);
  EXPECT_EQ(last.tree_edges, scratch.tree_edges);
  EXPECT_EQ(last.components, scratch.components);
  auto scratch_pairs = scratch.edges;
  for (auto& [u, v] : scratch_pairs)
    if (u > v) std::swap(u, v);
  std::sort(scratch_pairs.begin(), scratch_pairs.end());
  EXPECT_EQ(mst::forest_pairs(last), scratch_pairs);
}

TEST(IncrementalMst, EveryBatchMatchesScratch) {
  // Re-solve from scratch after *each* batch, not only at the end.
  const MstScenario sc = make_mst_scenario();
  gpu::Device dev;
  mst::MstState st = mst::make_mst_state(4096, sc.base, dev);
  std::vector<Edge> current = sc.base;
  for (const auto& b : sc.batches) {
    mst::apply_updates(st, b, dev);
    for (const mst::EdgeUpdate& u : b) {
      if (u.insert) {
        current.push_back({u.u, u.v, u.w});
      } else {
        const auto it = std::find_if(
            current.begin(), current.end(), [&](const Edge& e) {
              return ((e.src == u.u && e.dst == u.v) ||
                      (e.src == u.v && e.dst == u.u)) &&
                     e.weight == u.w;
            });
        ASSERT_NE(it, current.end());
        current.erase(it);
      }
    }
    gpu::Device sdev;
    const mst::MstResult scratch =
        mst::mst_gpu(CsrGraph::from_undirected_edges(4096, current), sdev);
    ASSERT_EQ(st.total_weight, scratch.total_weight);
    ASSERT_EQ(st.tree_edges, scratch.tree_edges);
    ASSERT_EQ(st.components, scratch.components);
  }
}

TEST(IncrementalMst, DeleteForestEdgeSplitsAndRepairs) {
  // Path 0-1-2 plus a heavier bypass 0-2: deleting forest edge (1,2) must
  // pull the bypass into the forest.
  const std::vector<Edge> base = {{0, 1, 1}, {1, 2, 2}, {0, 2, 10}};
  gpu::Device dev;
  mst::MstState st = mst::make_mst_state(3, base, dev);
  EXPECT_EQ(st.total_weight, 3u);
  EXPECT_EQ(st.components, 1u);
  const std::vector<mst::EdgeUpdate> del = {{false, 1, 2, 2}};
  const mst::MstResult r = mst::apply_updates(st, del, dev);
  EXPECT_EQ(r.total_weight, 11u);
  EXPECT_EQ(r.components, 1u);
  // Now delete the bypass too: the component splits.
  const std::vector<mst::EdgeUpdate> del2 = {{false, 0, 2, 10}};
  const mst::MstResult r2 = mst::apply_updates(st, del2, dev);
  EXPECT_EQ(r2.total_weight, 1u);
  EXPECT_EQ(r2.components, 2u);
  EXPECT_EQ(r2.tree_edges, 1u);
}

TEST(IncrementalMst, DeltaForestReportsNewEdges) {
  const std::vector<Edge> base = {{0, 1, 1}, {2, 3, 1}};
  gpu::Device dev;
  mst::MstState st = mst::make_mst_state(4, base, dev);
  const std::vector<mst::EdgeUpdate> ins = {{true, 1, 2, 5}};
  const mst::MstResult r = mst::apply_updates(st, ins, dev);
  // The touched region was rebuilt: both old forest edges re-chosen plus
  // the bridge.
  EXPECT_EQ(r.components, 1u);
  EXPECT_TRUE(std::find(r.edges.begin(), r.edges.end(),
                        std::make_pair(Node{1}, Node{2})) != r.edges.end());
}

TEST(IncrementalMst, NonForestDeleteKeepsForest) {
  const std::vector<Edge> base = {{0, 1, 1}, {1, 2, 2}, {0, 2, 10}};
  gpu::Device dev;
  mst::MstState st = mst::make_mst_state(3, base, dev);
  const std::uint64_t before = mst::state_digest(st);
  const std::vector<mst::EdgeUpdate> del = {{false, 0, 2, 10}};
  mst::apply_updates(st, del, dev);
  EXPECT_EQ(mst::state_digest(st), before);  // forest untouched
}

TEST(IncrementalPta, MatchesScratchAndIsWorkerInvariant) {
  const pta::ConstraintSet all = pta::synthetic_program(400, 1200, 11);
  std::vector<std::vector<std::uint64_t>> per_config;
  for (const auto& cfg : config_matrix()) {
    gpu::Device dev(cfg);
    pta::PtaState st = pta::make_pta_state(all.num_vars);
    std::vector<std::uint64_t> digests;
    for (std::size_t off = 0; off < all.constraints.size(); off += 100) {
      const std::size_t len =
          std::min<std::size_t>(100, all.constraints.size() - off);
      pta::apply_updates(
          st, std::span<const pta::Constraint>(&all.constraints[off], len),
          dev);
      digests.push_back(pta::state_digest(st));
    }
    per_config.push_back(std::move(digests));
  }
  for (std::size_t i = 1; i < per_config.size(); ++i)
    EXPECT_EQ(per_config[0], per_config[i]) << "config " << i;

  // The resumed fixed point equals a from-scratch solve of every prefix.
  gpu::Device dev;
  pta::PtaState st = pta::make_pta_state(all.num_vars);
  pta::ConstraintSet prefix;
  prefix.num_vars = all.num_vars;
  for (std::size_t off = 0; off < all.constraints.size(); off += 100) {
    const std::size_t len =
        std::min<std::size_t>(100, all.constraints.size() - off);
    pta::apply_updates(
        st, std::span<const pta::Constraint>(&all.constraints[off], len),
        dev);
    prefix.constraints.insert(prefix.constraints.end(),
                              all.constraints.begin() + off,
                              all.constraints.begin() + off + len);
    gpu::Device sdev;
    ASSERT_TRUE(pta::equal_pts(st.pts, pta::solve_gpu(prefix, sdev)));
    ASSERT_TRUE(pta::check_solution(prefix, st.pts));
  }
}

TEST(IncrementalPta, CostScalesWithBatchNotProgram) {
  // Resuming the fixed point with a small batch must be far cheaper than
  // the scratch solve of the accumulated program. Block-local constraints
  // keep the affected closure proportional to the batch (a Zipf-hot program
  // would legitimately touch a huge closure).
  const pta::ConstraintSet all = pta::clustered_program(20000, 64, 192, 3);
  gpu::Device dev;
  pta::PtaState st = pta::make_pta_state(all.num_vars);
  pta::apply_updates(st,
                     std::span<const pta::Constraint>(all.constraints.data(),
                                                      all.constraints.size() -
                                                          50),
                     dev);
  const pta::PtaDelta tail = pta::apply_updates(
      st,
      std::span<const pta::Constraint>(
          all.constraints.data() + all.constraints.size() - 50, 50),
      dev);
  gpu::Device sdev;
  pta::PtaStats stats;
  pta::solve_gpu(all, sdev, {}, &stats);
  EXPECT_LT(tail.modeled_cycles, stats.modeled_cycles / 10.0);
}

}  // namespace
}  // namespace morph
