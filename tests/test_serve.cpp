// Tests for the morph job server (src/serve): scheduler decision rules,
// admission control, batching compatibility, executor determinism and
// isolation, the wire protocol, and the end-to-end socket path.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gpu/config.hpp"
#include "gpu/device.hpp"
#include "gpu/stats.hpp"
#include "mst/incremental.hpp"
#include "pta/incremental.hpp"
#include "resilience/fault.hpp"
#include "serve/client.hpp"
#include "serve/executor.hpp"
#include "serve/job.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/report_diff.hpp"
#include "telemetry/trace.hpp"

namespace {

using morph::Status;
using morph::StatusCode;
using morph::serve::JobKind;
using morph::serve::JobOutcome;
using morph::serve::JobPlacement;
using morph::serve::JobRequest;
using morph::serve::JobSpec;
using morph::serve::Journal;
using morph::serve::JournalConfig;
using morph::serve::JournalRecord;
using morph::serve::JournalScan;
using morph::serve::Scheduler;
using morph::serve::SchedulerConfig;
using morph::serve::SealedBatch;
using morph::telemetry::Json;

// --- scheduler -------------------------------------------------------------

SchedulerConfig small_sched() {
  SchedulerConfig cfg;
  cfg.pool = 1;
  cfg.batch_max = 4;
  cfg.batch_linger = 100;
  cfg.dispatch_cycles = 10.0;
  return cfg;
}

/// Submits, seals (flush), records `cycles` for every batch, and returns all
/// placements — the standard drive-to-completion helper.
std::vector<JobPlacement> drain(Scheduler& s, double cycles = 100.0) {
  s.flush();
  std::vector<JobPlacement> out;
  for (const SealedBatch& b : s.take_runnable()) {
    s.record_measured(b.id, std::vector<double>(b.jobs.size(), cycles));
  }
  for (const JobPlacement& p : s.advance()) out.push_back(p);
  return out;
}

TEST(Scheduler, BatchesCompatibleSmallJobs) {
  Scheduler s(small_sched());
  // Same kind, same priority: one batch until batch_max.
  for (int i = 0; i < 4; ++i) {
    auto sub = s.submit(JobKind::kSp, 3, 100.0);
    ASSERT_TRUE(sub.accepted);
  }
  auto batches = s.take_runnable();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].jobs.size(), 4u);
  EXPECT_EQ(batches[0].priority, 3u);
}

TEST(Scheduler, DifferentKindOrPriorityNeverShareABatch) {
  Scheduler s(small_sched());
  s.submit(JobKind::kSp, 3, 100.0);
  s.submit(JobKind::kDmr, 3, 100.0);  // different kind
  s.submit(JobKind::kSp, 2, 100.0);   // different priority
  s.flush();
  const auto batches = s.take_runnable();
  ASSERT_EQ(batches.size(), 3u);
  for (const auto& b : batches) EXPECT_EQ(b.jobs.size(), 1u);
}

TEST(Scheduler, LargeJobSealsAsSingletonImmediately) {
  auto cfg = small_sched();
  cfg.small_job_cycles = 1000.0;
  Scheduler s(cfg);
  s.submit(JobKind::kMst, 3, 500.0);     // small: stays open
  s.submit(JobKind::kMst, 3, 5000.0);    // large: instant singleton
  auto batches = s.take_runnable();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].jobs.size(), 1u);
  EXPECT_EQ(batches[0].jobs[0], 1u);  // the large job, not the small one
}

TEST(Scheduler, LingerSealsAnAgingOpenBatch) {
  auto cfg = small_sched();
  cfg.batch_linger = 3;
  Scheduler s(cfg);
  s.submit(JobKind::kSp, 3, 100.0);       // seq 0 opens the batch
  s.submit(JobKind::kDmr, 3, 100.0);      // unrelated arrivals age it
  s.submit(JobKind::kDmr, 3, 100.0);
  EXPECT_EQ(s.take_runnable().size(), 0u);
  s.submit(JobKind::kDmr, 3, 100.0);      // seq 3: linger expires
  const auto batches = s.take_runnable();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].jobs, std::vector<std::uint64_t>{0});
}

TEST(Scheduler, RejectsJobsOverThePerJobCap) {
  auto cfg = small_sched();
  cfg.max_job_cycles = 1000.0;
  Scheduler s(cfg);
  EXPECT_TRUE(s.submit(JobKind::kSp, 3, 999.0).accepted);
  const auto sub = s.submit(JobKind::kSp, 3, 1001.0);
  EXPECT_FALSE(sub.accepted);
  EXPECT_EQ(sub.reject.code(), StatusCode::kAdmissionRejected);
  EXPECT_EQ(s.admitted(), 1u);
  EXPECT_EQ(s.rejected(), 1u);
}

TEST(Scheduler, LeakyBucketRejectsWhenFullAndReadmitsAfterDraining) {
  auto cfg = small_sched();
  cfg.queue_cap_cycles = 1000.0;
  cfg.drain_rate = 1.0;
  Scheduler s(cfg);
  EXPECT_TRUE(s.submit(JobKind::kSp, 3, 600.0, 0.0).accepted);
  EXPECT_TRUE(s.submit(JobKind::kSp, 3, 400.0, 0.0).accepted);
  // Bucket is at 1000: the next job at the same virtual time is turned away.
  const auto rej = s.submit(JobKind::kSp, 3, 1.0, 0.0);
  EXPECT_FALSE(rej.accepted);
  EXPECT_EQ(rej.reject.code(), StatusCode::kAdmissionRejected);
  // 500 virtual cycles later half the backlog has drained.
  EXPECT_TRUE(s.submit(JobKind::kSp, 3, 400.0, 500.0).accepted);
  EXPECT_FALSE(s.submit(JobKind::kSp, 3, 200.0, 500.0).accepted);
}

TEST(Scheduler, HigherPriorityBatchDispatchesFirst) {
  auto cfg = small_sched();
  cfg.batch_max = 2;
  Scheduler s(cfg);
  // Two background jobs, then two urgent ones; all runnable at flush time.
  s.submit(JobKind::kSp, 7, 100.0);
  s.submit(JobKind::kSp, 7, 100.0);
  s.submit(JobKind::kDmr, 0, 100.0);
  s.submit(JobKind::kDmr, 0, 100.0);
  const auto placements = drain(s);
  ASSERT_EQ(placements.size(), 4u);
  // Urgent (priority 0) jobs place before the background batch.
  EXPECT_EQ(placements[0].seq, 2u);
  EXPECT_EQ(placements[1].seq, 3u);
  EXPECT_EQ(placements[2].seq, 0u);
  EXPECT_EQ(placements[3].seq, 1u);
  EXPECT_LT(placements[0].start_cycles, placements[2].start_cycles);
}

TEST(Scheduler, PlacementStallsUntilMeasuredCyclesArrive) {
  Scheduler s(small_sched());
  s.submit(JobKind::kSp, 3, 100.0);
  s.flush();
  const auto batches = s.take_runnable();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_TRUE(s.advance().empty());  // no measurement yet
  s.record_measured(batches[0].id, {42.0});
  const auto placements = s.advance();
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_EQ(placements[0].queue_cycles, 0.0);
  EXPECT_EQ(placements[0].end_cycles,
            small_sched().dispatch_cycles + 42.0);
}

TEST(Scheduler, BatchCompositionIsPoolSizeIndependent) {
  std::string first_shape;
  for (std::uint32_t pool : {1u, 3u}) {
    auto cfg = small_sched();
    cfg.pool = pool;
    Scheduler s(cfg);
    for (int i = 0; i < 10; ++i) {
      s.submit(i % 2 == 0 ? JobKind::kSp : JobKind::kMst,
               static_cast<std::uint32_t>(i % 3), 100.0);
    }
    s.flush();
    std::string shape;
    for (const auto& b : s.take_runnable()) {
      shape += std::to_string(b.priority) + ":";
      for (auto j : b.jobs) shape += std::to_string(j) + ",";
      shape += ";";
    }
    if (pool == 1) {
      first_shape = shape;
    } else {
      EXPECT_EQ(shape, first_shape);
    }
  }
}

TEST(Scheduler, ReplayIsByteIdenticalAtFixedPool) {
  auto run = [] {
    auto cfg = small_sched();
    cfg.pool = 2;
    Scheduler s(cfg);
    for (int i = 0; i < 12; ++i) {
      s.submit(i % 2 == 0 ? JobKind::kSp : JobKind::kPta,
               static_cast<std::uint32_t>((i * 5) % 8), 100.0 + i);
    }
    std::string repr;
    for (const auto& p : drain(s, 77.0)) {
      repr += std::to_string(p.seq) + "/" + std::to_string(p.slot) + "/" +
              std::to_string(p.start_cycles) + ";";
    }
    return repr;
  };
  EXPECT_EQ(run(), run());
}

TEST(Scheduler, EmissionWaitsForFlushWhenArrivalsMayStillCompete) {
  Scheduler s(small_sched());
  const auto sub = s.submit(JobKind::kSp, 3, 100.0, 0.0);
  ASSERT_TRUE(sub.accepted);
  // Fill the batch so it seals without a flush.
  for (int i = 0; i < 3; ++i) s.submit(JobKind::kSp, 3, 100.0, 0.0);
  for (const auto& b : s.take_runnable()) {
    s.record_measured(b.id, std::vector<double>(b.jobs.size(), 10.0));
  }
  // Placement would be at t=0 == latest arrival: a competing higher-priority
  // batch could still arrive at 0, so nothing may be emitted yet.
  EXPECT_TRUE(s.advance().empty());
  s.flush();
  EXPECT_EQ(s.advance().size(), 4u);
}

TEST(Scheduler, DeadlineRejectsWhenBacklogOutrunsIt) {
  auto cfg = small_sched();
  cfg.queue_cap_cycles = 1e9;
  cfg.drain_rate = 1.0;
  Scheduler s(cfg);
  ASSERT_TRUE(s.submit(JobKind::kSp, 3, 500.0, 0.0).accepted);
  // 500 backlog cycles drain at 1 cycle/cycle: a 100-cycle deadline cannot
  // be met, and the refusal is typed (not a generic admission reject).
  const auto rej = s.submit(JobKind::kSp, 3, 10.0, 0.0, /*deadline=*/100.0);
  EXPECT_FALSE(rej.accepted);
  EXPECT_EQ(rej.reject.code(), StatusCode::kDeadlineExceeded);
  // A deadline the backlog fits inside is admitted, and no deadline at all
  // never triggers the check.
  EXPECT_TRUE(s.submit(JobKind::kSp, 3, 10.0, 0.0, 1000.0).accepted);
  EXPECT_TRUE(s.submit(JobKind::kSp, 3, 10.0, 0.0).accepted);
  EXPECT_EQ(s.deadline_rejected(), 1u);
  EXPECT_EQ(s.rejected(), 0u);  // deadline misses are counted separately
}

TEST(Scheduler, CancelCatchesOpenBatchesOnlyAndRefundsTheBucket) {
  auto cfg = small_sched();
  cfg.queue_cap_cycles = 1000.0;
  cfg.drain_rate = 1.0;
  Scheduler s(cfg);
  const auto a = s.submit(JobKind::kSp, 3, 900.0, 0.0);
  ASSERT_TRUE(a.accepted);
  EXPECT_TRUE(s.cancel(a.seq));
  EXPECT_EQ(s.cancelled(), 1u);
  // The refund releases the room the cancelled job was holding: another
  // 900-cycle job at the same virtual instant fits again.
  const auto b = s.submit(JobKind::kSp, 3, 900.0, 0.0);
  ASSERT_TRUE(b.accepted);
  // Only the live job places; the cancelled one is gone without a trace.
  const auto placements = drain(s);
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_EQ(placements[0].seq, b.seq);
  // A sealed job is past the point of no return.
  const auto c = s.submit(JobKind::kSp, 3, 10.0, 2000.0);
  ASSERT_TRUE(c.accepted);
  s.flush();
  EXPECT_FALSE(s.cancel(c.seq));
  EXPECT_EQ(s.cancelled(), 1u);
}

TEST(Scheduler, CancelAfterPartialDrainRefundsOnlyTheRemainder) {
  // Regression guard for the deposit-refund bug: cancelling a job whose
  // bucket deposit was already partially drained must refund only the
  // *undrained remainder*, not the full estimate — a full refund would also
  // remove cycles other live jobs deposited and let the bucket over-admit.
  auto cfg = small_sched();
  cfg.queue_cap_cycles = 1000.0;
  cfg.drain_rate = 1.0;
  Scheduler s(cfg);
  const auto a = s.submit(JobKind::kSp, 3, 600.0, 0.0);
  ASSERT_TRUE(a.accepted);
  // 300 virtual cycles later 300 of A's deposit has drained (FIFO): bucket
  // holds A's remainder 300 + B's 400 = 700.
  const auto b = s.submit(JobKind::kSp, 3, 400.0, 300.0);
  ASSERT_TRUE(b.accepted);
  EXPECT_TRUE(s.cancel(a.seq));
  // Correct refund: 700 - 300 = 400. The buggy full-estimate refund would
  // leave 100 and wrongly admit the 601-cycle probe below.
  EXPECT_FALSE(s.submit(JobKind::kSp, 3, 601.0, 300.0).accepted);
  EXPECT_TRUE(s.submit(JobKind::kSp, 3, 600.0, 300.0).accepted);
}

TEST(Scheduler, CheckpointBlobRoundTripsAtQuiescence) {
  auto cfg = small_sched();
  cfg.queue_cap_cycles = 10000.0;
  cfg.drain_rate = 1.0;
  Scheduler a(cfg);
  ASSERT_TRUE(a.submit(JobKind::kSp, 3, 100.0, 0.0).accepted);
  ASSERT_TRUE(a.submit(JobKind::kSp, 3, 100.0, 0.0).accepted);
  drain(a);  // place everything: quiescent, but counters + bucket are live
  const std::string blob = a.checkpoint_blob();

  Scheduler b(cfg);
  ASSERT_TRUE(b.restore_blob(blob));
  EXPECT_EQ(b.checkpoint_blob(), blob);
  // The restored scheduler continues the epoch: identical decisions and
  // placements for an identical suffix of submissions.
  auto drive = [](Scheduler& s) {
    std::string repr;
    auto sub = s.submit(JobKind::kDmr, 2, 150.0, 400.0);
    repr += sub.accepted ? "A" : "R";
    for (const JobPlacement& p : drain(s)) {
      repr += "|" + std::to_string(p.seq) + "," + std::to_string(p.batch) +
              "," + std::to_string(p.slot) + "," +
              std::to_string(p.start_cycles) + "," +
              std::to_string(p.end_cycles);
    }
    return repr;
  };
  Scheduler ref(cfg);
  ASSERT_TRUE(ref.submit(JobKind::kSp, 3, 100.0, 0.0).accepted);
  ASSERT_TRUE(ref.submit(JobKind::kSp, 3, 100.0, 0.0).accepted);
  drain(ref);
  EXPECT_EQ(drive(b), drive(ref));

  // A pool resize invalidates the snapshot instead of corrupting it.
  auto resized = cfg;
  resized.pool = 2;
  Scheduler c(resized);
  EXPECT_FALSE(c.restore_blob(blob));
  Scheduler d(cfg);
  EXPECT_FALSE(d.restore_blob(blob + "x"));  // trailing bytes
  EXPECT_FALSE(d.restore_blob("short"));
}

// --- executor --------------------------------------------------------------

JobRequest small_job(JobKind kind, std::uint64_t seed = 7) {
  JobRequest req;
  req.spec.kind = kind;
  req.spec.size = kind == JobKind::kDmr ? 60 : 80;
  req.spec.sweeps = 3;
  req.spec.phases = 1;
  req.spec.seed = seed;
  req.spec.validate = true;
  return req;
}

std::string outcome_repr(const JobOutcome& out) {
  return std::string(morph::status_code_name(out.status.code())) + "|" +
         out.outputs.dump() + "|" + out.exec.to_json().dump();
}

TEST(Executor, ResultsAreHostWorkerIndependent) {
  for (JobKind kind :
       {JobKind::kDmr, JobKind::kSp, JobKind::kPta, JobKind::kMst}) {
    morph::gpu::DeviceConfig hw1;
    hw1.host_workers = 1;
    morph::gpu::DeviceConfig hw4;
    hw4.host_workers = 4;
    const JobOutcome a = morph::serve::run_job(small_job(kind), hw1);
    const JobOutcome b = morph::serve::run_job(small_job(kind), hw4);
    EXPECT_TRUE(a.ok()) << outcome_repr(a);
    EXPECT_EQ(outcome_repr(a), outcome_repr(b))
        << "kind " << morph::serve::job_kind_name(kind);
  }
}

TEST(Executor, FaultedJobFailsAloneWithTypedStatus) {
  morph::gpu::DeviceConfig cfg;
  JobRequest faulted = small_job(JobKind::kMst);
  faulted.faults = "launch@1x64";  // exhausts the launch-retry ladder
  const JobOutcome bad = morph::serve::run_job(faulted, cfg);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status.code(), StatusCode::kRetriesExhausted);
  EXPECT_GT(bad.exec.faults_injected, 0u);

  // The identical spec without the campaign is untouched — and a run after
  // the faulted one is byte-identical to a run before it (fresh devices).
  const JobOutcome good = morph::serve::run_job(small_job(JobKind::kMst), cfg);
  EXPECT_TRUE(good.ok());
  const JobOutcome again = morph::serve::run_job(small_job(JobKind::kMst), cfg);
  EXPECT_EQ(outcome_repr(good), outcome_repr(again));
}

TEST(Executor, BadFaultSpecIsATypedPerJobFailure) {
  JobRequest req = small_job(JobKind::kSp);
  req.faults = "nonsense@@";
  const JobOutcome out = morph::serve::run_job(req, {});
  EXPECT_EQ(out.status.code(), StatusCode::kBadFaultSpec);
}

TEST(Executor, ServerBaseSinksNeverLeakIntoJobs) {
  morph::telemetry::TraceSink sink;
  morph::gpu::DeviceConfig cfg;
  cfg.trace = &sink;  // a server-wide sink a job must not inherit
  JobRequest req = small_job(JobKind::kSp);
  req.trace = false;
  const JobOutcome out = morph::serve::run_job(req, cfg);
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(sink.merged().size(), 0u);
  EXPECT_EQ(out.trace_events, 0u);

  req.trace = true;  // per-job sink, counted per job
  const JobOutcome traced = morph::serve::run_job(req, cfg);
  EXPECT_GT(traced.trace_events, 0u);
  EXPECT_EQ(sink.merged().size(), 0u);
}

TEST(Executor, QuarantinePoolFlagsRepeatOffendersOnce) {
  morph::serve::QuarantinePool q(2, 3);
  q.record(0, false);
  q.record(0, false);
  q.record(0, true);  // success resets the streak
  q.record(0, false);
  q.record(0, false);
  EXPECT_EQ(q.quarantined(), 0u);
  q.record(0, false);  // third consecutive fault
  EXPECT_EQ(q.quarantined(), 1u);
  EXPECT_TRUE(q.is_quarantined(0));
  EXPECT_FALSE(q.is_quarantined(1));
  q.record(0, false);  // an already-flagged slot is not counted again
  EXPECT_EQ(q.quarantined(), 1u);

  morph::serve::QuarantinePool off(2, 0);  // threshold 0 disables the policy
  for (int i = 0; i < 10; ++i) off.record(1, false);
  EXPECT_EQ(off.quarantined(), 0u);
}

// --- journal ---------------------------------------------------------------

std::string temp_journal(const std::string& tag) {
  return ::testing::TempDir() + "morph_wal_" + tag + "_" +
         std::to_string(::getpid()) + ".wal";
}

JournalConfig nosync_journal(const std::string& path) {
  JournalConfig cfg;
  cfg.path = path;
  cfg.fsync = JournalConfig::Fsync::kNone;  // tests tear files by hand
  return cfg;
}

TEST(Journal, FsyncPolicyParses) {
  JournalConfig cfg;
  EXPECT_TRUE(morph::serve::parse_fsync_policy("none", &cfg));
  EXPECT_EQ(cfg.fsync, JournalConfig::Fsync::kNone);
  EXPECT_TRUE(morph::serve::parse_fsync_policy("always", &cfg));
  EXPECT_EQ(cfg.fsync, JournalConfig::Fsync::kAlways);
  EXPECT_TRUE(morph::serve::parse_fsync_policy("16", &cfg));
  EXPECT_EQ(cfg.fsync, JournalConfig::Fsync::kInterval);
  EXPECT_EQ(cfg.fsync_interval, 16u);
  EXPECT_FALSE(morph::serve::parse_fsync_policy("", &cfg));
  EXPECT_FALSE(morph::serve::parse_fsync_policy("0", &cfg));
  EXPECT_FALSE(morph::serve::parse_fsync_policy("sometimes", &cfg));
}

TEST(Journal, RecordsRoundTripThroughScan) {
  const std::string path = temp_journal("rt");
  ::unlink(path.c_str());
  Journal j;
  ASSERT_TRUE(j.open(nosync_journal(path)).ok());
  ASSERT_TRUE(j.append_admitted(0, R"({"type":"submit","id":7})").ok());
  ASSERT_TRUE(j.append_admitted(1, R"({"type":"flush"})").ok());
  ASSERT_TRUE(j.append_completed(0).ok());
  EXPECT_EQ(j.records_appended(), 3u);
  j.close();

  JournalScan scan;
  ASSERT_TRUE(Journal::scan(path, &scan).ok());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, scan.file_bytes);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0].type, JournalRecord::Type::kAdmitted);
  EXPECT_EQ(scan.records[0].arrival, 0u);
  EXPECT_EQ(scan.records[0].frame, R"({"type":"submit","id":7})");
  EXPECT_EQ(scan.records[1].arrival, 1u);
  EXPECT_EQ(scan.records[2].type, JournalRecord::Type::kCompleted);
  EXPECT_EQ(scan.records[2].arrival, 0u);
  ::unlink(path.c_str());
}

TEST(Journal, CheckpointHidesEmittedHistory) {
  const std::string path = temp_journal("ckpt");
  ::unlink(path.c_str());
  Journal j;
  ASSERT_TRUE(j.open(nosync_journal(path)).ok());
  ASSERT_TRUE(j.append_admitted(0, R"({"type":"submit"})").ok());
  ASSERT_TRUE(j.append_completed(0).ok());
  ASSERT_TRUE(j.append_checkpoint().ok());
  ASSERT_TRUE(j.append_admitted(1, R"({"type":"submit","id":1})").ok());
  j.close();

  JournalScan scan;
  ASSERT_TRUE(Journal::scan(path, &scan).ok());
  EXPECT_FALSE(scan.torn_tail);
  // Recovery only sees what came after the checkpoint.
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].arrival, 1u);
  ::unlink(path.c_str());
}

TEST(Journal, TornTailEndsTheScanAndOpenTruncatesIt) {
  const std::string path = temp_journal("torn");
  ::unlink(path.c_str());
  Journal j;
  ASSERT_TRUE(j.open(nosync_journal(path)).ok());
  ASSERT_TRUE(j.append_admitted(0, R"({"type":"submit","id":0})").ok());
  ASSERT_TRUE(j.append_admitted(1, R"({"type":"submit","id":1})").ok());
  j.close();

  // Tear the last record the way a crash mid-write does: drop its tail.
  struct stat st {};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  ASSERT_EQ(::truncate(path.c_str(), st.st_size - 3), 0);

  JournalScan scan;
  ASSERT_TRUE(Journal::scan(path, &scan).ok());
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].arrival, 0u);
  EXPECT_LT(scan.valid_bytes, scan.file_bytes);

  // Reopening for append drops the torn bytes; the log stays usable.
  ASSERT_TRUE(j.open(nosync_journal(path), scan.valid_bytes).ok());
  ASSERT_TRUE(j.append_admitted(2, R"({"type":"flush"})").ok());
  j.close();
  ASSERT_TRUE(Journal::scan(path, &scan).ok());
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].arrival, 0u);
  EXPECT_EQ(scan.records[1].arrival, 2u);
  ::unlink(path.c_str());
}

TEST(Journal, InjectedTornWriteLooksLikeACrashMidAppend) {
  const std::string path = temp_journal("fault");
  ::unlink(path.c_str());
  morph::resilience::FaultPlan plan;
  ASSERT_TRUE(
      morph::resilience::parse_fault_plan("journal@2", 1, &plan).ok());
  JournalConfig cfg = nosync_journal(path);
  cfg.faults = &plan;
  Journal j;
  ASSERT_TRUE(j.open(cfg).ok());
  ASSERT_TRUE(j.append_admitted(0, R"({"type":"submit","id":0})").ok());
  // The second append writes half a record and wedges the journal — the
  // deterministic stand-in for dying between write() calls.
  EXPECT_EQ(j.append_admitted(1, R"({"type":"submit","id":1})").code(),
            StatusCode::kIoError);
  EXPECT_EQ(j.append_admitted(2, R"({"type":"flush"})").code(),
            StatusCode::kIoError);
  j.close();

  JournalScan scan;
  ASSERT_TRUE(Journal::scan(path, &scan).ok());
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 1u);
  // A clean reopen recovers exactly the pre-crash prefix.
  ASSERT_TRUE(j.open(nosync_journal(path), scan.valid_bytes).ok());
  ASSERT_TRUE(j.append_admitted(1, R"({"type":"submit","id":1})").ok());
  j.close();
  ASSERT_TRUE(Journal::scan(path, &scan).ok());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.records.size(), 2u);
  ::unlink(path.c_str());
}

TEST(Journal, TruncateAllResetsToMagicAndBadMagicIsLoud) {
  const std::string path = temp_journal("trunc");
  ::unlink(path.c_str());
  Journal j;
  ASSERT_TRUE(j.open(nosync_journal(path)).ok());
  ASSERT_TRUE(j.append_admitted(0, R"({"type":"submit"})").ok());
  ASSERT_TRUE(j.truncate_all().ok());
  ASSERT_TRUE(j.append_admitted(5, R"({"type":"flush"})").ok());
  j.close();
  JournalScan scan;
  ASSERT_TRUE(Journal::scan(path, &scan).ok());
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].arrival, 5u);

  // A file that is not a journal must not be silently treated as one.
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a journal", f);
  std::fclose(f);
  EXPECT_EQ(Journal::scan(path, &scan).code(), StatusCode::kIoError);
  ::unlink(path.c_str());
}

// --- job model / protocol --------------------------------------------------

TEST(JobModel, RequestRoundTripsThroughJson) {
  JobRequest req = small_job(JobKind::kPta, 11);
  req.id = 42;
  req.priority = 5;
  req.faults = "arena@2";
  req.fault_seed = 9;
  JobRequest back;
  ASSERT_TRUE(JobRequest::from_json(req.to_json(), &back).ok());
  EXPECT_EQ(back.id, 42u);
  EXPECT_EQ(back.priority, 5u);
  EXPECT_EQ(back.faults, "arena@2");
  EXPECT_EQ(back.fault_seed, 9u);
  EXPECT_EQ(back.spec.signature(), req.spec.signature());
}

TEST(JobModel, UnknownParamKeysAreRejected) {
  Json msg = small_job(JobKind::kSp).to_json();
  msg.set("id", std::uint64_t{1});
  Json params = msg.at("params");
  params.set("sizee", std::uint64_t{100});  // typo must not silently no-op
  msg.set("params", params);
  JobRequest out;
  const Status s = JobRequest::from_json(msg, &out);
  EXPECT_EQ(s.code(), StatusCode::kBadRequest);
}

TEST(JobModel, OutOfRangePriorityIsRejected) {
  Json msg = small_job(JobKind::kSp).to_json();
  msg.set("id", std::uint64_t{1});
  msg.set("priority", std::int64_t{8});
  JobRequest out;
  EXPECT_EQ(JobRequest::from_json(msg, &out).code(), StatusCode::kBadRequest);
}

TEST(Protocol, FrameDecoderReassemblesSplitFrames) {
  Json a = Json::object();
  a.set("type", "hello");
  Json b = Json::object();
  b.set("type", "stats");
  const std::string wire =
      morph::serve::encode_frame(a) + morph::serve::encode_frame(b);

  morph::serve::FrameDecoder dec;
  std::vector<std::string> seen;
  for (std::size_t i = 0; i < wire.size(); ++i) {  // worst case: byte by byte
    dec.feed(wire.data() + i, 1);
    Json msg;
    bool have = false;
    ASSERT_TRUE(dec.poll(&msg, &have).ok());
    if (have) seen.push_back(msg.at("type").as_string());
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"hello", "stats"}));
}

TEST(Protocol, OversizedFrameLengthIsAProtocolError) {
  morph::serve::FrameDecoder dec;
  const char hdr[4] = {0x7f, 0x7f, 0x7f, 0x7f};  // ~2 GB claimed length
  dec.feed(hdr, 4);
  Json msg;
  bool have = false;
  EXPECT_EQ(dec.poll(&msg, &have).code(), StatusCode::kBadRequest);
}

// Hand-builds a frame with an arbitrary (possibly lying) length prefix.
std::string raw_frame(std::uint32_t claimed_len, const std::string& payload) {
  std::string wire;
  wire.push_back(static_cast<char>(claimed_len >> 24));
  wire.push_back(static_cast<char>(claimed_len >> 16));
  wire.push_back(static_cast<char>(claimed_len >> 8));
  wire.push_back(static_cast<char>(claimed_len));
  wire += payload;
  return wire;
}

TEST(Protocol, TruncatedHeaderJustWaitsForMoreBytes) {
  morph::serve::FrameDecoder dec;
  dec.feed("\x00\x00\x00", 3);  // not even a full length prefix
  Json msg;
  bool have = true;
  ASSERT_TRUE(dec.poll(&msg, &have).ok());
  EXPECT_FALSE(have);
  // The missing byte plus a payload completes the frame normally.
  Json hello = Json::object();
  hello.set("type", "hello");
  const std::string rest = morph::serve::encode_frame(hello).substr(3);
  dec.feed(rest.data(), rest.size());
  ASSERT_TRUE(dec.poll(&msg, &have).ok());
  ASSERT_TRUE(have);
  EXPECT_EQ(msg.at("type").as_string(), "hello");
}

TEST(Protocol, GarbagePayloadIsTypedAndTheStreamAdvances) {
  // A frame whose length checks out but whose payload is not JSON must come
  // back kBadRequest — and must be consumed, so the next frame still parses.
  const std::string bad = "this is } not { json";
  Json good = Json::object();
  good.set("type", "stats");
  morph::serve::FrameDecoder dec;
  const std::string wire =
      raw_frame(static_cast<std::uint32_t>(bad.size()), bad) +
      morph::serve::encode_frame(good);
  dec.feed(wire.data(), wire.size());
  Json msg;
  bool have = true;
  EXPECT_EQ(dec.poll(&msg, &have).code(), StatusCode::kBadRequest);
  EXPECT_FALSE(have);
  ASSERT_TRUE(dec.poll(&msg, &have).ok());
  ASSERT_TRUE(have);
  EXPECT_EQ(msg.at("type").as_string(), "stats");

  // Valid JSON that is not an object is just as malformed.
  const std::string arr = "[1,2,3]";
  dec.feed(raw_frame(static_cast<std::uint32_t>(arr.size()), arr).data(),
           4 + arr.size());
  EXPECT_EQ(dec.poll(&msg, &have).code(), StatusCode::kBadRequest);
}

// --- bench report serve section -------------------------------------------

TEST(ServeReport, SectionRoundTripsAndStaysOptional) {
  morph::telemetry::BenchReport rep;
  rep.bench = "serve_loadtest";
  rep.add_row("loadtest").metric("jobs", 10);
  // Disabled: serialization is byte-identical to a serve-less report.
  EXPECT_EQ(rep.to_json().find("serve"), nullptr);

  rep.serve.enabled = true;
  rep.serve.metric("throughput_jobs_per_model_s", 123.5)
      .metric("queue_p99_model_ms", 4.5);
  const auto back =
      morph::telemetry::BenchReport::parse(rep.to_json_text());
  ASSERT_TRUE(back.serve.enabled);
  ASSERT_NE(back.serve.find("queue_p99_model_ms"), nullptr);
  EXPECT_EQ(*back.serve.find("queue_p99_model_ms"), 4.5);
  EXPECT_EQ(back.serve.metrics.size(), 2u);
}

TEST(ServeReport, DiffGatesQueueLatencyRegressions) {
  morph::telemetry::BenchReport base;
  base.serve.enabled = true;
  base.serve.metric("queue_p99_model_ms", 10.0).metric("rejected", 3.0);
  morph::telemetry::BenchReport cur = base;
  cur.serve.metrics.clear();
  cur.serve.metric("queue_p99_model_ms", 11.0).metric("rejected", 5.0);

  const auto res = morph::telemetry::diff_reports(base, cur);
  EXPECT_TRUE(res.regressed);  // +10% p99 breaches the default 2%
  bool saw_info_rejected = false;
  for (const auto& d : res.deltas) {
    if (d.metric == "rejected") saw_info_rejected = !d.gated;
  }
  EXPECT_TRUE(saw_info_rejected);

  // A serve section appearing/disappearing is structural.
  morph::telemetry::BenchReport plain;
  const auto res2 = morph::telemetry::diff_reports(plain, base);
  EXPECT_FALSE(res2.structural.empty());
}

TEST(ServeReport, MismatchedSchemaVersionFailsLoudly) {
  morph::telemetry::BenchReport rep;
  rep.bench = "x";
  Json doc = rep.to_json();
  doc.set("version", std::int64_t{999});
  try {
    morph::telemetry::BenchReport::from_json(doc);
    FAIL() << "expected CheckError";
  } catch (const morph::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported schema version"),
              std::string::npos);
  }
}

// --- end to end ------------------------------------------------------------

class ServeEndToEnd : public ::testing::Test {
 protected:
  std::string socket_path() {
    return ::testing::TempDir() + "morph_serve_e2e_" +
           std::to_string(::getpid()) + ".sock";
  }
};

TEST_F(ServeEndToEnd, MixedBatchMatchesDirectExecutionAndIsolatesFaults) {
  morph::serve::ServerConfig cfg;
  cfg.socket_path = socket_path();
  cfg.sched.pool = 2;
  cfg.sched.batch_max = 3;
  morph::serve::Server server(cfg);
  ASSERT_TRUE(server.start().ok());

  morph::serve::Client client;
  ASSERT_TRUE(client.connect(cfg.socket_path).ok());

  std::vector<JobRequest> reqs;
  for (std::uint64_t i = 0; i < 6; ++i) {
    JobRequest r = small_job(static_cast<JobKind>(i % 4), 3 + i % 2);
    r.id = i;
    r.priority = static_cast<std::uint32_t>(i % 3);
    if (i == 3) r.faults = "launch@1x64";  // one poisoning attempt
    reqs.push_back(r);
  }
  for (const auto& r : reqs) ASSERT_TRUE(client.submit(r).ok());
  ASSERT_TRUE(client.send_flush().ok());

  std::map<std::uint64_t, Json> results;
  while (results.size() < reqs.size()) {
    Json msg;
    ASSERT_TRUE(client.next_message(&msg).ok());
    ASSERT_EQ(msg.at("type").as_string(), "result") << msg.dump();
    results[static_cast<std::uint64_t>(msg.at("id").as_int())] = msg;
  }

  for (const auto& r : reqs) {
    const Json& res = results[r.id];
    // The served result must equal a direct one-shot run, byte for byte.
    const JobOutcome direct = morph::serve::run_job(r, cfg.device);
    EXPECT_EQ(res.at("status").as_string(),
              morph::status_code_name(direct.status.code()))
        << "job " << r.id;
    EXPECT_EQ(res.at("outputs").dump(), direct.outputs.dump());
    EXPECT_EQ(res.at("exec").dump(), direct.exec.to_json().dump());
    if (r.id == 3) {
      EXPECT_EQ(res.at("status").as_string(), "retries-exhausted");
    } else {
      EXPECT_EQ(res.at("status").as_string(), "ok") << res.dump();
    }
  }

  // Typed admission data survives on the stats endpoint.
  ASSERT_TRUE(client.send_stats().ok());
  Json stats;
  ASSERT_TRUE(client.next_message(&stats).ok());
  EXPECT_EQ(stats.at("type").as_string(), "stats");
  EXPECT_EQ(stats.at("admitted").as_int(), 6);
  EXPECT_EQ(stats.at("placed").as_int(), 6);

  ASSERT_TRUE(client.send_shutdown().ok());
  Json bye;
  ASSERT_TRUE(client.next_message(&bye).ok());
  EXPECT_EQ(bye.at("type").as_string(), "bye");
  server.wait();
}

TEST_F(ServeEndToEnd, ArrivalGateOrdersStampedFramesAcrossConnections) {
  morph::serve::ServerConfig cfg;
  cfg.socket_path = socket_path() + ".3";
  cfg.sched.batch_max = 2;
  morph::serve::Server server(cfg);
  ASSERT_TRUE(server.start().ok());

  morph::serve::Client a;
  morph::serve::Client b;
  ASSERT_TRUE(a.connect(cfg.socket_path).ok());
  ASSERT_TRUE(b.connect(cfg.socket_path).ok());

  // Send arrival 1 first, on a different connection than arrival 0: the
  // gate must hold it until 0 is admitted, so the admission sequence (and
  // with it the shared batch) comes out in stamp order regardless of which
  // reader thread got to run first.
  JobRequest r1 = small_job(JobKind::kDmr, 4);
  r1.id = 11;
  ASSERT_TRUE(a.submit(r1, /*arrival=*/1).ok());
  JobRequest r0 = small_job(JobKind::kDmr, 3);
  r0.id = 10;
  ASSERT_TRUE(b.submit(r0, /*arrival=*/0).ok());
  ASSERT_TRUE(a.send_flush(/*arrival=*/2).ok());

  Json res1;
  ASSERT_TRUE(a.next_message(&res1).ok());
  Json res0;
  ASSERT_TRUE(b.next_message(&res0).ok());
  ASSERT_EQ(res0.at("type").as_string(), "result") << res0.dump();
  ASSERT_EQ(res1.at("type").as_string(), "result") << res1.dump();
  EXPECT_EQ(res0.at("id").as_int(), 10);
  EXPECT_EQ(res1.at("id").as_int(), 11);
  // Stamp order decided admission order...
  EXPECT_EQ(res0.at("seq").as_int(), 0);
  EXPECT_EQ(res1.at("seq").as_int(), 1);
  // ...and both landed in the same (batch_max = 2) shared batch.
  EXPECT_EQ(res0.at("serve").at("batch").as_int(),
            res1.at("serve").at("batch").as_int());

  // A stamp that was already admitted is a typed protocol error.
  JobRequest dup = small_job(JobKind::kSp);
  dup.id = 12;
  ASSERT_TRUE(b.submit(dup, /*arrival=*/1).ok());
  Json err;
  ASSERT_TRUE(b.next_message(&err).ok());
  EXPECT_EQ(err.at("type").as_string(), "error");
  EXPECT_EQ(err.at("code").as_string(), "bad-request");

  server.request_stop();
}

TEST_F(ServeEndToEnd, AdmissionRejectsAndBadRequestsComeBackTyped) {
  morph::serve::ServerConfig cfg;
  cfg.socket_path = socket_path() + ".2";
  cfg.sched.queue_cap_cycles = 1.0;  // everything is over budget
  morph::serve::Server server(cfg);
  ASSERT_TRUE(server.start().ok());

  morph::serve::Client client;
  ASSERT_TRUE(client.connect(cfg.socket_path).ok());

  JobRequest r = small_job(JobKind::kSp);
  r.id = 1;
  ASSERT_TRUE(client.submit(r).ok());
  Json rej;
  ASSERT_TRUE(client.next_message(&rej).ok());
  EXPECT_EQ(rej.at("type").as_string(), "reject");
  EXPECT_EQ(rej.at("code").as_string(), "admission-rejected");
  EXPECT_EQ(rej.at("id").as_int(), 1);

  Json bad = Json::object();
  bad.set("type", "submit");
  bad.set("id", std::uint64_t{2});
  bad.set("kind", "quantum");  // not a job kind
  // Raw framing path: no client-side validation in the way.
  Json err;
  int raw_fd = -1;
  ASSERT_TRUE(morph::serve::connect_unix(cfg.socket_path, &raw_fd).ok());
  ASSERT_TRUE(morph::serve::write_frame(raw_fd, bad).ok());
  ASSERT_TRUE(morph::serve::read_frame(raw_fd, &err).ok());
  EXPECT_EQ(err.at("type").as_string(), "error");
  EXPECT_EQ(err.at("code").as_string(), "bad-request");
  ::close(raw_fd);

  server.request_stop();
}

TEST_F(ServeEndToEnd, MalformedFramesGetTypedErrorsAndNeverWedgeTheServer) {
  morph::serve::ServerConfig cfg;
  cfg.socket_path = socket_path() + ".adv";
  morph::serve::Server server(cfg);
  ASSERT_TRUE(server.start().ok());

  // Garbage JSON behind a correct length prefix: typed error, stream lives.
  int fd = -1;
  ASSERT_TRUE(morph::serve::connect_unix(cfg.socket_path, &fd).ok());
  const std::string garbage = "}{ definitely not json";
  const std::string wire =
      raw_frame(static_cast<std::uint32_t>(garbage.size()), garbage);
  ASSERT_EQ(::write(fd, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  Json err;
  ASSERT_TRUE(morph::serve::read_frame(fd, &err).ok());
  EXPECT_EQ(err.at("type").as_string(), "error");
  EXPECT_EQ(err.at("code").as_string(), "bad-request");
  ::close(fd);

  // A length prefix claiming ~4 GB: refused as a protocol error, not
  // treated as an allocation request.
  ASSERT_TRUE(morph::serve::connect_unix(cfg.socket_path, &fd).ok());
  const std::string huge = raw_frame(0xFFFFFFFFu, "");
  ASSERT_EQ(::write(fd, huge.data(), huge.size()),
            static_cast<ssize_t>(huge.size()));
  ASSERT_TRUE(morph::serve::read_frame(fd, &err).ok());
  EXPECT_EQ(err.at("type").as_string(), "error");
  EXPECT_EQ(err.at("code").as_string(), "bad-request");
  ::close(fd);

  // A client that dies mid-frame (header promised 100 bytes, 10 arrived).
  ASSERT_TRUE(morph::serve::connect_unix(cfg.socket_path, &fd).ok());
  const std::string partial = raw_frame(100, "0123456789");
  ASSERT_EQ(::write(fd, partial.data(), partial.size()),
            static_cast<ssize_t>(partial.size()));
  ::close(fd);

  // After all that abuse a well-behaved client still gets served.
  morph::serve::Client client;
  ASSERT_TRUE(client.connect(cfg.socket_path).ok());
  JobRequest r = small_job(JobKind::kSp);
  r.id = 1;
  ASSERT_TRUE(client.submit(r).ok());
  ASSERT_TRUE(client.send_flush().ok());
  Json res;
  ASSERT_TRUE(client.next_message(&res).ok());
  EXPECT_EQ(res.at("type").as_string(), "result");
  EXPECT_EQ(res.at("status").as_string(), "ok");
  server.request_stop();
}

TEST_F(ServeEndToEnd, StaleSocketFilesAreRecycledButLiveOnesAreNot) {
  const std::string path = socket_path() + ".stale";
  // Manufacture the corpse of a crashed server: a bound socket file whose
  // listener is gone.
  int dead = -1;
  ASSERT_TRUE(morph::serve::listen_unix(path, &dead).ok());
  ::close(dead);

  morph::serve::ServerConfig cfg;
  cfg.socket_path = path;
  morph::serve::Server server(cfg);
  ASSERT_TRUE(server.start().ok());  // probe says stale: unlink and rebind

  // With the server alive, the same probe refuses to steal the socket...
  int fd = -1;
  const Status busy = morph::serve::listen_unix(path, &fd);
  EXPECT_EQ(busy.code(), StatusCode::kIoError);
  EXPECT_NE(busy.message().find("live server"), std::string::npos);
  // ...and the running server is untouched by the attempt.
  morph::serve::Client client;
  EXPECT_TRUE(client.connect(path).ok());
  server.request_stop();
}

TEST_F(ServeEndToEnd, RecvTimeoutIsTypedAndTheConnectionSurvives) {
  morph::serve::ServerConfig cfg;
  cfg.socket_path = socket_path() + ".to";
  cfg.sched.batch_max = 8;       // nothing seals until the flush
  cfg.sched.batch_linger = 1000;
  morph::serve::Server server(cfg);
  ASSERT_TRUE(server.start().ok());

  morph::serve::Client client;
  ASSERT_TRUE(client.connect(cfg.socket_path).ok());
  JobRequest r = small_job(JobKind::kSp);
  r.id = 9;
  ASSERT_TRUE(client.submit(r).ok());

  client.set_recv_timeout_ms(50);
  Json msg;
  EXPECT_EQ(client.next_message(&msg).code(), StatusCode::kTimeout);

  // The timeout did not wreck the connection: flush and collect normally.
  client.set_recv_timeout_ms(30000);
  ASSERT_TRUE(client.send_flush().ok());
  ASSERT_TRUE(client.next_message(&msg).ok());
  EXPECT_EQ(msg.at("type").as_string(), "result");
  EXPECT_EQ(msg.at("id").as_int(), 9);
  server.request_stop();
}

TEST_F(ServeEndToEnd, DeadlineMissesAreRejectedUpFrontWithTypedCode) {
  morph::serve::ServerConfig cfg;
  cfg.socket_path = socket_path() + ".dl";
  cfg.sched.batch_max = 8;
  cfg.sched.batch_linger = 1000;
  morph::serve::Server server(cfg);
  ASSERT_TRUE(server.start().ok());

  morph::serve::Client client;
  ASSERT_TRUE(client.connect(cfg.socket_path).ok());
  // Job 0 loads the admission bucket; job 1 declares a deadline far below
  // the implied queueing delay and is turned away before doing any work.
  JobRequest fill = small_job(JobKind::kSp);
  fill.id = 0;
  ASSERT_TRUE(client.submit(fill).ok());
  JobRequest urgent = small_job(JobKind::kSp);
  urgent.id = 1;
  urgent.spec.deadline_model_ms = 1e-6;  // one virtual cycle at 1 GHz
  ASSERT_TRUE(client.submit(urgent).ok());

  Json rej;
  ASSERT_TRUE(client.next_message(&rej).ok());
  EXPECT_EQ(rej.at("type").as_string(), "reject");
  EXPECT_EQ(rej.at("code").as_string(), "deadline-exceeded");
  EXPECT_EQ(rej.at("id").as_int(), 1);

  ASSERT_TRUE(client.send_flush().ok());
  Json res;
  ASSERT_TRUE(client.next_message(&res).ok());
  EXPECT_EQ(res.at("type").as_string(), "result");
  EXPECT_EQ(res.at("id").as_int(), 0);

  ASSERT_TRUE(client.send_stats().ok());
  Json stats;
  ASSERT_TRUE(client.next_message(&stats).ok());
  EXPECT_EQ(stats.at("deadline_exceeded").as_int(), 1);
  server.request_stop();
}

TEST_F(ServeEndToEnd, CancelCatchesAJobStillInAnOpenBatch) {
  morph::serve::ServerConfig cfg;
  cfg.socket_path = socket_path() + ".cxl";
  cfg.sched.batch_max = 8;
  cfg.sched.batch_linger = 1000;
  morph::serve::Server server(cfg);
  ASSERT_TRUE(server.start().ok());

  morph::serve::Client client;
  ASSERT_TRUE(client.connect(cfg.socket_path).ok());
  JobRequest doomed = small_job(JobKind::kSp);
  doomed.id = 5;
  ASSERT_TRUE(client.submit(doomed).ok());
  ASSERT_TRUE(client.send_cancel(5).ok());
  Json cxl;
  ASSERT_TRUE(client.next_message(&cxl).ok());
  EXPECT_EQ(cxl.at("type").as_string(), "cancelled") << cxl.dump();
  EXPECT_EQ(cxl.at("id").as_int(), 5);
  EXPECT_TRUE(cxl.at("caught").as_bool());

  // Only the surviving job produces a result.
  JobRequest live = small_job(JobKind::kDmr);
  live.id = 6;
  ASSERT_TRUE(client.submit(live).ok());
  ASSERT_TRUE(client.send_flush().ok());
  Json res;
  ASSERT_TRUE(client.next_message(&res).ok());
  EXPECT_EQ(res.at("type").as_string(), "result") << res.dump();
  EXPECT_EQ(res.at("id").as_int(), 6);

  // Cancelling something unknown is answered, not ignored.
  ASSERT_TRUE(client.send_cancel(999).ok());
  ASSERT_TRUE(client.next_message(&cxl).ok());
  EXPECT_EQ(cxl.at("type").as_string(), "cancelled");
  EXPECT_FALSE(cxl.at("caught").as_bool());

  ASSERT_TRUE(client.send_stats().ok());
  Json stats;
  ASSERT_TRUE(client.next_message(&stats).ok());
  EXPECT_EQ(stats.at("cancelled").as_int(), 1);
  server.request_stop();
}

TEST_F(ServeEndToEnd, JournalRecoveryFinishesInterruptedWorkByteIdentically) {
  const std::string sock = socket_path() + ".jr";
  const std::string wal = ::testing::TempDir() + "morph_serve_recovery_" +
                          std::to_string(::getpid()) + ".wal";
  ::unlink(wal.c_str());
  morph::serve::ServerConfig cfg;
  cfg.socket_path = sock;
  cfg.journal.path = wal;
  cfg.sched.batch_max = 8;       // the batch stays open: no results before
  cfg.sched.batch_linger = 1000; // the "crash"
  JobRequest r0 = small_job(JobKind::kSp, 3);
  r0.id = 0;
  JobRequest r1 = small_job(JobKind::kDmr, 4);
  r1.id = 1;

  {
    morph::serve::Server crashed(cfg);
    ASSERT_TRUE(crashed.start().ok());
    morph::serve::Client c;
    ASSERT_TRUE(c.connect(sock).ok());
    ASSERT_TRUE(c.submit(r0, /*arrival=*/0).ok());
    ASSERT_TRUE(c.submit(r1, /*arrival=*/1).ok());
    // stats rides the same connection, so its answer proves both submits
    // were admitted — and therefore journaled — before the hard stop.
    ASSERT_TRUE(c.send_stats().ok());
    Json st;
    ASSERT_TRUE(c.next_message(&st).ok());
    ASSERT_EQ(st.at("admitted").as_int(), 2);
    crashed.request_stop();  // hard stop: no drain, no journal truncation
    crashed.wait();
  }

  morph::serve::Server revived(cfg);
  ASSERT_TRUE(revived.start().ok());
  EXPECT_EQ(revived.recovered_jobs(), 2u);

  // The client comes back the way a real one would: one job through the
  // reconnect-and-resubmit helper, one as a plain stamped resubmission.
  // Both stamps were already admitted, so they adopt the new connection
  // instead of admitting duplicates.
  morph::serve::Client c;
  ASSERT_TRUE(c.connect(sock).ok());
  ASSERT_TRUE(c.resubmit_after_failure(r0, /*arrival=*/0).ok());
  ASSERT_TRUE(c.submit(r1, /*arrival=*/1).ok());
  ASSERT_TRUE(c.send_flush(/*arrival=*/2).ok());

  std::map<std::uint64_t, Json> results;
  while (results.size() < 2) {
    Json msg;
    ASSERT_TRUE(c.next_message(&msg).ok());
    ASSERT_EQ(msg.at("type").as_string(), "result") << msg.dump();
    results[static_cast<std::uint64_t>(msg.at("id").as_int())] = msg;
  }
  // Byte-identical to an uninterrupted run: the journal replay reproduced
  // the exact admission sequence, so execution had nothing left to chance.
  for (const JobRequest& r : {r0, r1}) {
    const JobOutcome direct = morph::serve::run_job(r, cfg.device);
    const Json& res = results[r.id];
    EXPECT_EQ(res.at("status").as_string(),
              morph::status_code_name(direct.status.code()));
    EXPECT_EQ(res.at("outputs").dump(), direct.outputs.dump());
    EXPECT_EQ(res.at("exec").dump(), direct.exec.to_json().dump());
  }

  ASSERT_TRUE(c.send_stats().ok());
  Json stats;
  ASSERT_TRUE(c.next_message(&stats).ok());
  EXPECT_EQ(stats.at("recoveries").as_int(), 1);
  EXPECT_EQ(stats.at("recovered_jobs").as_int(), 2);
  revived.request_stop();
  ::unlink(wal.c_str());
}

TEST_F(ServeEndToEnd, DrainStopFinishesAdmittedJobsAndTruncatesTheJournal) {
  const std::string wal = ::testing::TempDir() + "morph_serve_drain_" +
                          std::to_string(::getpid()) + ".wal";
  ::unlink(wal.c_str());
  morph::serve::ServerConfig cfg;
  cfg.socket_path = socket_path() + ".drain";
  cfg.journal.path = wal;
  cfg.sched.batch_max = 8;       // nothing seals on its own: the drain must
  cfg.sched.batch_linger = 1000; // flush and finish these jobs itself
  morph::serve::Server server(cfg);
  ASSERT_TRUE(server.start().ok());

  morph::serve::Client client;
  ASSERT_TRUE(client.connect(cfg.socket_path).ok());
  for (std::uint64_t i = 0; i < 3; ++i) {
    JobRequest r = small_job(static_cast<JobKind>(i % 4), 3 + i);
    r.id = i;
    ASSERT_TRUE(client.submit(r).ok());
  }
  // Synchronize: once stats answers, all three are admitted, so the drain
  // below cannot race the reader and bounce them with kUnavailable.
  ASSERT_TRUE(client.send_stats().ok());
  Json st;
  ASSERT_TRUE(client.next_message(&st).ok());
  ASSERT_EQ(st.at("admitted").as_int(), 3);

  bool drained = false;
  std::thread op([&] { drained = server.drain_stop(); });
  std::map<std::uint64_t, Json> results;
  while (results.size() < 3) {
    Json msg;
    ASSERT_TRUE(client.next_message(&msg).ok());
    if (msg.at("type").as_string() != "result") continue;
    results[static_cast<std::uint64_t>(msg.at("id").as_int())] = msg;
  }
  op.join();
  EXPECT_TRUE(drained);
  EXPECT_EQ(server.drained_jobs(), 3u);
  server.wait();

  // The drain proved every admitted job done and every reply out, so the
  // journal was reset to just its magic header.
  struct stat wst {};
  ASSERT_EQ(::stat(wal.c_str(), &wst), 0);
  EXPECT_EQ(wst.st_size, 8);
  ::unlink(wal.c_str());
}

// --- incremental recompute sessions ----------------------------------------

std::string hex64(std::uint64_t d) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(d));
  return std::string(buf);
}

Json mst_row(std::int64_t op, std::int64_t u, std::int64_t v,
             std::int64_t w) {
  Json row = Json::array();
  row.push_back(Json(op));
  row.push_back(Json(u));
  row.push_back(Json(v));
  row.push_back(Json(w));
  return row;
}

TEST_F(ServeEndToEnd, SessionUpdatesMatchDirectIncrementalStateExactly) {
  morph::serve::ServerConfig cfg;
  cfg.socket_path = socket_path() + ".sess";
  morph::serve::Server server(cfg);
  ASSERT_TRUE(server.start().ok());
  morph::serve::Client c;
  ASSERT_TRUE(c.connect(cfg.socket_path).ok());

  // Session frames must ride the arrival gate: unstamped ones are refused
  // before they can silently miss the journal.
  ASSERT_TRUE(c.send_session_open("inc", "mst", 64, 1, /*arrival=*/-1).ok());
  Json msg;
  ASSERT_TRUE(c.next_message(&msg).ok());
  EXPECT_EQ(msg.at("type").as_string(), "error");
  EXPECT_EQ(msg.at("code").as_string(), "bad-request");

  // The local mirror runs the exact same call sequence on its own device:
  // every digest the server reports must match it bit for bit.
  morph::gpu::Device dev(cfg.device);
  morph::mst::MstState local = morph::mst::make_mst_state(64, {}, dev);

  ASSERT_TRUE(c.send_session_open("inc", "mst", 64, 2, /*arrival=*/0).ok());
  ASSERT_TRUE(c.next_message(&msg).ok());
  ASSERT_EQ(msg.at("type").as_string(), "session-opened") << msg.dump();
  EXPECT_EQ(msg.at("kind").as_string(), "mst");
  EXPECT_EQ(msg.at("digest").as_string(),
            hex64(morph::mst::state_digest(local)));

  // Updates to a session nobody opened are typed errors.
  Json upd = Json::array();
  upd.push_back(mst_row(1, 0, 1, 5));
  ASSERT_TRUE(c.send_session_update("ghost", upd, 3, /*arrival=*/1).ok());
  ASSERT_TRUE(c.next_message(&msg).ok());
  EXPECT_EQ(msg.at("type").as_string(), "error");

  // Two update batches; after each, outputs / exec stats / digest must be
  // byte-identical to the direct in-process incremental run.
  std::vector<std::vector<morph::mst::EdgeUpdate>> batches = {
      {{true, 0, 1, 5}, {true, 1, 2, 3}, {true, 2, 3, 9}, {true, 0, 3, 4}},
      {{false, 2, 3, 9}, {true, 5, 6, 2}},
  };
  std::int64_t arrival = 2;
  for (const auto& batch : batches) {
    Json rows = Json::array();
    for (const auto& e : batch) {
      rows.push_back(mst_row(e.insert ? 1 : 0, e.u, e.v,
                             static_cast<std::int64_t>(e.w)));
    }
    ASSERT_TRUE(c.send_session_update("inc", rows, 10, arrival++).ok());
    const morph::gpu::DeviceStats base = dev.stats();
    const morph::mst::MstResult direct =
        morph::mst::apply_updates(local, batch, dev);
    ASSERT_TRUE(c.next_message(&msg).ok());
    ASSERT_EQ(msg.at("type").as_string(), "session-result") << msg.dump();
    EXPECT_EQ(msg.at("outputs").at("total_weight").as_int(),
              static_cast<std::int64_t>(direct.total_weight));
    EXPECT_EQ(msg.at("outputs").at("tree_edges").as_int(),
              static_cast<std::int64_t>(direct.tree_edges));
    EXPECT_EQ(msg.at("outputs").at("components").as_int(),
              static_cast<std::int64_t>(direct.components));
    EXPECT_EQ(msg.at("exec").dump(),
              morph::serve::JobExecStats::from_stats(
                  dev.stats().delta_since(base))
                  .to_json()
                  .dump());
    EXPECT_EQ(msg.at("digest").as_string(),
              hex64(morph::mst::state_digest(local)));
  }

  // A malformed row rejects the whole batch atomically: the digest (and so
  // the state) is unchanged afterwards.
  Json bad_rows = Json::array();
  bad_rows.push_back(mst_row(1, 0, 1, 2));
  bad_rows.push_back(mst_row(7, 0, 1, 2));  // op 7: invalid
  ASSERT_TRUE(c.send_session_update("inc", bad_rows, 11, arrival++).ok());
  ASSERT_TRUE(c.next_message(&msg).ok());
  EXPECT_EQ(msg.at("type").as_string(), "error");

  // A pta session coexists, pinned to its own state.
  morph::pta::PtaState plocal = morph::pta::make_pta_state(32);
  ASSERT_TRUE(c.send_session_open("pts", "pta", 32, 12, arrival++).ok());
  ASSERT_TRUE(c.next_message(&msg).ok());
  ASSERT_EQ(msg.at("type").as_string(), "session-opened") << msg.dump();
  EXPECT_EQ(msg.at("digest").as_string(),
            hex64(morph::pta::state_digest(plocal)));
  const std::vector<morph::pta::Constraint> cons = {
      {morph::pta::ConstraintKind::kAddressOf, 1, 2},
      {morph::pta::ConstraintKind::kCopy, 3, 1},
      {morph::pta::ConstraintKind::kLoad, 4, 3},
      {morph::pta::ConstraintKind::kStore, 1, 4},
  };
  Json prows = Json::array();
  for (const auto& k : cons) {
    Json row = Json::array();
    row.push_back(Json(static_cast<std::int64_t>(k.kind)));
    row.push_back(Json(static_cast<std::int64_t>(k.dst)));
    row.push_back(Json(static_cast<std::int64_t>(k.src)));
    prows.push_back(row);
  }
  ASSERT_TRUE(c.send_session_update("pts", prows, 13, arrival++).ok());
  const morph::pta::PtaDelta pd =
      morph::pta::apply_updates(plocal, cons, dev);
  ASSERT_TRUE(c.next_message(&msg).ok());
  ASSERT_EQ(msg.at("type").as_string(), "session-result") << msg.dump();
  EXPECT_EQ(msg.at("outputs").at("pts_total").as_int(),
            static_cast<std::int64_t>(pd.pts_total));
  EXPECT_EQ(msg.at("digest").as_string(),
            hex64(morph::pta::state_digest(plocal)));

  // Close returns the cumulative accepted-update count and final digest.
  ASSERT_TRUE(c.send_session_close("inc", 14, arrival++).ok());
  ASSERT_TRUE(c.next_message(&msg).ok());
  ASSERT_EQ(msg.at("type").as_string(), "session-closed") << msg.dump();
  EXPECT_EQ(msg.at("updates").as_int(), 6);
  EXPECT_EQ(msg.at("digest").as_string(),
            hex64(morph::mst::state_digest(local)));
  // Closed means gone.
  ASSERT_TRUE(c.send_session_close("inc", 15, arrival++).ok());
  ASSERT_TRUE(c.next_message(&msg).ok());
  EXPECT_EQ(msg.at("type").as_string(), "error");

  ASSERT_TRUE(c.send_stats().ok());
  Json st;
  ASSERT_TRUE(c.next_message(&st).ok());
  EXPECT_EQ(st.at("sessions_opened").as_int(), 2);
  EXPECT_EQ(st.at("sessions_open").as_int(), 1);  // "pts" is still open
  EXPECT_EQ(st.at("session_updates").as_int(), 3);
  server.request_stop();
  server.wait();
}

TEST_F(ServeEndToEnd, SessionStateSurvivesACrashByteIdentically) {
  const std::string sock = socket_path() + ".sr";
  const std::string wal = ::testing::TempDir() + "morph_serve_sess_" +
                          std::to_string(::getpid()) + ".wal";
  ::unlink(wal.c_str());
  morph::serve::ServerConfig cfg;
  cfg.socket_path = sock;
  cfg.journal.path = wal;

  Json u1 = Json::array();
  u1.push_back(mst_row(1, 0, 1, 5));
  u1.push_back(mst_row(1, 1, 2, 3));
  u1.push_back(mst_row(1, 0, 2, 4));
  Json u2 = Json::array();
  u2.push_back(mst_row(0, 0, 1, 5));
  u2.push_back(mst_row(1, 3, 4, 7));

  Json r1;
  {
    morph::serve::Server crashed(cfg);
    ASSERT_TRUE(crashed.start().ok());
    morph::serve::Client c;
    ASSERT_TRUE(c.connect(sock).ok());
    ASSERT_TRUE(c.send_session_open("inc", "mst", 64, 0, /*arrival=*/0).ok());
    Json opened;
    ASSERT_TRUE(c.next_message(&opened).ok());
    ASSERT_EQ(opened.at("type").as_string(), "session-opened")
        << opened.dump();
    ASSERT_TRUE(c.send_session_update("inc", u1, 1, /*arrival=*/1).ok());
    ASSERT_TRUE(c.next_message(&r1).ok());
    ASSERT_EQ(r1.at("type").as_string(), "session-result") << r1.dump();
    crashed.request_stop();  // hard stop: the journal keeps the history
    crashed.wait();
  }

  morph::serve::Server revived(cfg);
  ASSERT_TRUE(revived.start().ok());
  morph::serve::Client c;
  ASSERT_TRUE(c.connect(sock).ok());

  // A client resubmitting the already-applied update gets the parked replay
  // reply, byte-identical to the one the crashed process sent.
  ASSERT_TRUE(c.send_session_update("inc", u1, 1, /*arrival=*/1).ok());
  Json replay;
  ASSERT_TRUE(c.next_message(&replay).ok());
  EXPECT_EQ(replay.dump(), r1.dump());

  // The recovered state continues exactly where the crash left it: the next
  // batch lands on the replayed state and matches the direct u1+u2 run.
  morph::gpu::Device dev(cfg.device);
  morph::mst::MstState local = morph::mst::make_mst_state(64, {}, dev);
  const std::vector<morph::mst::EdgeUpdate> b1 = {
      {true, 0, 1, 5}, {true, 1, 2, 3}, {true, 0, 2, 4}};
  const std::vector<morph::mst::EdgeUpdate> b2 = {{false, 0, 1, 5},
                                                  {true, 3, 4, 7}};
  (void)morph::mst::apply_updates(local, b1, dev);
  (void)morph::mst::apply_updates(local, b2, dev);

  ASSERT_TRUE(c.send_session_update("inc", u2, 2, /*arrival=*/2).ok());
  Json r2;
  ASSERT_TRUE(c.next_message(&r2).ok());
  ASSERT_EQ(r2.at("type").as_string(), "session-result") << r2.dump();
  EXPECT_EQ(r2.at("digest").as_string(),
            hex64(morph::mst::state_digest(local)));

  ASSERT_TRUE(c.send_stats().ok());
  Json st;
  ASSERT_TRUE(c.next_message(&st).ok());
  EXPECT_EQ(st.at("recoveries").as_int(), 1);
  EXPECT_EQ(st.at("recovered_sessions").as_int(), 1);

  ASSERT_TRUE(c.send_session_close("inc", 3, /*arrival=*/3).ok());
  Json closed;
  ASSERT_TRUE(c.next_message(&closed).ok());
  EXPECT_EQ(closed.at("type").as_string(), "session-closed") << closed.dump();
  revived.request_stop();
  revived.wait();
  ::unlink(wal.c_str());
}

TEST_F(ServeEndToEnd, CheckpointCompactionBoundsTheJournalAndContinuesExactly) {
  const std::string wal = ::testing::TempDir() + "morph_serve_compact_" +
                          std::to_string(::getpid()) + ".wal";
  ::unlink(wal.c_str());
  morph::serve::ServerConfig cfg;
  cfg.socket_path = socket_path() + ".cp";
  cfg.journal.path = wal;
  cfg.journal.checkpoint_every = 2;
  cfg.sched.batch_max = 2;
  // The reference server lives the same arrival sequence uninterrupted (no
  // journal: durability must not change a single reply byte).
  morph::serve::ServerConfig ref_cfg = cfg;
  ref_cfg.socket_path = socket_path() + ".cpref";
  ref_cfg.journal.path.clear();

  // Uniform kind/priority: every stamped pair seals at batch_max = 2. The
  // trailing stamped flush closes the epoch — without it the scheduler
  // (correctly) refuses to finalize the last batch's dispatch, since a
  // future arrival could still seal a competing batch.
  auto submit_all = [&](morph::serve::Client& c, std::int64_t lo,
                        std::int64_t hi, std::map<std::uint64_t, Json>* out) {
    const std::size_t before = out->size();
    for (std::int64_t i = lo; i < hi; ++i) {
      JobRequest r = small_job(JobKind::kSp, 3 + static_cast<std::uint64_t>(i));
      r.id = static_cast<std::uint64_t>(i);
      ASSERT_TRUE(c.submit(r, /*arrival=*/i).ok());
    }
    ASSERT_TRUE(c.send_flush(/*arrival=*/hi).ok());
    while (out->size() < before + static_cast<std::size_t>(hi - lo)) {
      Json msg;
      ASSERT_TRUE(c.next_message(&msg).ok());
      ASSERT_EQ(msg.at("type").as_string(), "result") << msg.dump();
      (*out)[static_cast<std::uint64_t>(msg.at("id").as_int())] = msg;
    }
  };

  std::map<std::uint64_t, Json> got;
  {
    morph::serve::Server first(cfg);
    ASSERT_TRUE(first.start().ok());
    morph::serve::Client c;
    ASSERT_TRUE(c.connect(cfg.socket_path).ok());
    submit_all(c, 0, 4, &got);  // two sealed pairs + flush: compaction fires
    // The compaction runs in the tail of the emit that delivered the last
    // result, so it can still be mid-rewrite when that result reaches us:
    // poll the counter briefly instead of racing it.
    std::int64_t compactions = 0;
    for (int attempt = 0; attempt < 100 && compactions == 0; ++attempt) {
      ASSERT_TRUE(c.send_stats().ok());
      Json st;
      ASSERT_TRUE(c.next_message(&st).ok());
      compactions = st.at("compactions").as_int();
      if (compactions == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    EXPECT_GE(compactions, 1);
    first.request_stop();  // hard stop: no truncation; only the checkpoint
    first.wait();
  }

  // The compacted journal is a bounded artifact — one checkpoint record —
  // not the full frame history.
  struct stat wst {};
  ASSERT_EQ(::stat(wal.c_str(), &wst), 0);
  EXPECT_LT(wst.st_size, 1024) << "journal not compacted";

  // Restart: nothing to re-execute, but the checkpoint must restore the
  // arrival gate and scheduler epoch so the NEXT jobs behave as if the
  // process had never died.
  morph::serve::Server revived(cfg);
  ASSERT_TRUE(revived.start().ok());
  EXPECT_EQ(revived.recovered_jobs(), 0u);
  morph::serve::Client c;
  ASSERT_TRUE(c.connect(cfg.socket_path).ok());
  submit_all(c, 5, 9, &got);  // arrival 4 was the pre-restart flush
  revived.request_stop();
  revived.wait();

  morph::serve::Server ref(ref_cfg);
  ASSERT_TRUE(ref.start().ok());
  morph::serve::Client rc;
  ASSERT_TRUE(rc.connect(ref_cfg.socket_path).ok());
  std::map<std::uint64_t, Json> want;
  submit_all(rc, 0, 4, &want);
  submit_all(rc, 5, 9, &want);
  ref.request_stop();
  ref.wait();

  ASSERT_EQ(got.size(), want.size());
  for (const auto& [id, frame] : want) {
    // Full-frame byte identity, serve section included: seqs, batches,
    // slots, and modeled latencies all continue across the checkpoint.
    EXPECT_EQ(got.at(id).dump(), frame.dump()) << "job " << id;
  }
  ::unlink(wal.c_str());
}

}  // namespace
