// Tests for the morph job server (src/serve): scheduler decision rules,
// admission control, batching compatibility, executor determinism and
// isolation, the wire protocol, and the end-to-end socket path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "gpu/config.hpp"
#include "serve/client.hpp"
#include "serve/executor.hpp"
#include "serve/job.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/report_diff.hpp"
#include "telemetry/trace.hpp"

namespace {

using morph::Status;
using morph::StatusCode;
using morph::serve::JobKind;
using morph::serve::JobOutcome;
using morph::serve::JobPlacement;
using morph::serve::JobRequest;
using morph::serve::JobSpec;
using morph::serve::Scheduler;
using morph::serve::SchedulerConfig;
using morph::serve::SealedBatch;
using morph::telemetry::Json;

// --- scheduler -------------------------------------------------------------

SchedulerConfig small_sched() {
  SchedulerConfig cfg;
  cfg.pool = 1;
  cfg.batch_max = 4;
  cfg.batch_linger = 100;
  cfg.dispatch_cycles = 10.0;
  return cfg;
}

/// Submits, seals (flush), records `cycles` for every batch, and returns all
/// placements — the standard drive-to-completion helper.
std::vector<JobPlacement> drain(Scheduler& s, double cycles = 100.0) {
  s.flush();
  std::vector<JobPlacement> out;
  for (const SealedBatch& b : s.take_runnable()) {
    s.record_measured(b.id, std::vector<double>(b.jobs.size(), cycles));
  }
  for (const JobPlacement& p : s.advance()) out.push_back(p);
  return out;
}

TEST(Scheduler, BatchesCompatibleSmallJobs) {
  Scheduler s(small_sched());
  // Same kind, same priority: one batch until batch_max.
  for (int i = 0; i < 4; ++i) {
    auto sub = s.submit(JobKind::kSp, 3, 100.0);
    ASSERT_TRUE(sub.accepted);
  }
  auto batches = s.take_runnable();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].jobs.size(), 4u);
  EXPECT_EQ(batches[0].priority, 3u);
}

TEST(Scheduler, DifferentKindOrPriorityNeverShareABatch) {
  Scheduler s(small_sched());
  s.submit(JobKind::kSp, 3, 100.0);
  s.submit(JobKind::kDmr, 3, 100.0);  // different kind
  s.submit(JobKind::kSp, 2, 100.0);   // different priority
  s.flush();
  const auto batches = s.take_runnable();
  ASSERT_EQ(batches.size(), 3u);
  for (const auto& b : batches) EXPECT_EQ(b.jobs.size(), 1u);
}

TEST(Scheduler, LargeJobSealsAsSingletonImmediately) {
  auto cfg = small_sched();
  cfg.small_job_cycles = 1000.0;
  Scheduler s(cfg);
  s.submit(JobKind::kMst, 3, 500.0);     // small: stays open
  s.submit(JobKind::kMst, 3, 5000.0);    // large: instant singleton
  auto batches = s.take_runnable();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].jobs.size(), 1u);
  EXPECT_EQ(batches[0].jobs[0], 1u);  // the large job, not the small one
}

TEST(Scheduler, LingerSealsAnAgingOpenBatch) {
  auto cfg = small_sched();
  cfg.batch_linger = 3;
  Scheduler s(cfg);
  s.submit(JobKind::kSp, 3, 100.0);       // seq 0 opens the batch
  s.submit(JobKind::kDmr, 3, 100.0);      // unrelated arrivals age it
  s.submit(JobKind::kDmr, 3, 100.0);
  EXPECT_EQ(s.take_runnable().size(), 0u);
  s.submit(JobKind::kDmr, 3, 100.0);      // seq 3: linger expires
  const auto batches = s.take_runnable();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].jobs, std::vector<std::uint64_t>{0});
}

TEST(Scheduler, RejectsJobsOverThePerJobCap) {
  auto cfg = small_sched();
  cfg.max_job_cycles = 1000.0;
  Scheduler s(cfg);
  EXPECT_TRUE(s.submit(JobKind::kSp, 3, 999.0).accepted);
  const auto sub = s.submit(JobKind::kSp, 3, 1001.0);
  EXPECT_FALSE(sub.accepted);
  EXPECT_EQ(sub.reject.code(), StatusCode::kAdmissionRejected);
  EXPECT_EQ(s.admitted(), 1u);
  EXPECT_EQ(s.rejected(), 1u);
}

TEST(Scheduler, LeakyBucketRejectsWhenFullAndReadmitsAfterDraining) {
  auto cfg = small_sched();
  cfg.queue_cap_cycles = 1000.0;
  cfg.drain_rate = 1.0;
  Scheduler s(cfg);
  EXPECT_TRUE(s.submit(JobKind::kSp, 3, 600.0, 0.0).accepted);
  EXPECT_TRUE(s.submit(JobKind::kSp, 3, 400.0, 0.0).accepted);
  // Bucket is at 1000: the next job at the same virtual time is turned away.
  const auto rej = s.submit(JobKind::kSp, 3, 1.0, 0.0);
  EXPECT_FALSE(rej.accepted);
  EXPECT_EQ(rej.reject.code(), StatusCode::kAdmissionRejected);
  // 500 virtual cycles later half the backlog has drained.
  EXPECT_TRUE(s.submit(JobKind::kSp, 3, 400.0, 500.0).accepted);
  EXPECT_FALSE(s.submit(JobKind::kSp, 3, 200.0, 500.0).accepted);
}

TEST(Scheduler, HigherPriorityBatchDispatchesFirst) {
  auto cfg = small_sched();
  cfg.batch_max = 2;
  Scheduler s(cfg);
  // Two background jobs, then two urgent ones; all runnable at flush time.
  s.submit(JobKind::kSp, 7, 100.0);
  s.submit(JobKind::kSp, 7, 100.0);
  s.submit(JobKind::kDmr, 0, 100.0);
  s.submit(JobKind::kDmr, 0, 100.0);
  const auto placements = drain(s);
  ASSERT_EQ(placements.size(), 4u);
  // Urgent (priority 0) jobs place before the background batch.
  EXPECT_EQ(placements[0].seq, 2u);
  EXPECT_EQ(placements[1].seq, 3u);
  EXPECT_EQ(placements[2].seq, 0u);
  EXPECT_EQ(placements[3].seq, 1u);
  EXPECT_LT(placements[0].start_cycles, placements[2].start_cycles);
}

TEST(Scheduler, PlacementStallsUntilMeasuredCyclesArrive) {
  Scheduler s(small_sched());
  s.submit(JobKind::kSp, 3, 100.0);
  s.flush();
  const auto batches = s.take_runnable();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_TRUE(s.advance().empty());  // no measurement yet
  s.record_measured(batches[0].id, {42.0});
  const auto placements = s.advance();
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_EQ(placements[0].queue_cycles, 0.0);
  EXPECT_EQ(placements[0].end_cycles,
            small_sched().dispatch_cycles + 42.0);
}

TEST(Scheduler, BatchCompositionIsPoolSizeIndependent) {
  std::string first_shape;
  for (std::uint32_t pool : {1u, 3u}) {
    auto cfg = small_sched();
    cfg.pool = pool;
    Scheduler s(cfg);
    for (int i = 0; i < 10; ++i) {
      s.submit(i % 2 == 0 ? JobKind::kSp : JobKind::kMst,
               static_cast<std::uint32_t>(i % 3), 100.0);
    }
    s.flush();
    std::string shape;
    for (const auto& b : s.take_runnable()) {
      shape += std::to_string(b.priority) + ":";
      for (auto j : b.jobs) shape += std::to_string(j) + ",";
      shape += ";";
    }
    if (pool == 1) {
      first_shape = shape;
    } else {
      EXPECT_EQ(shape, first_shape);
    }
  }
}

TEST(Scheduler, ReplayIsByteIdenticalAtFixedPool) {
  auto run = [] {
    auto cfg = small_sched();
    cfg.pool = 2;
    Scheduler s(cfg);
    for (int i = 0; i < 12; ++i) {
      s.submit(i % 2 == 0 ? JobKind::kSp : JobKind::kPta,
               static_cast<std::uint32_t>((i * 5) % 8), 100.0 + i);
    }
    std::string repr;
    for (const auto& p : drain(s, 77.0)) {
      repr += std::to_string(p.seq) + "/" + std::to_string(p.slot) + "/" +
              std::to_string(p.start_cycles) + ";";
    }
    return repr;
  };
  EXPECT_EQ(run(), run());
}

TEST(Scheduler, EmissionWaitsForFlushWhenArrivalsMayStillCompete) {
  Scheduler s(small_sched());
  const auto sub = s.submit(JobKind::kSp, 3, 100.0, 0.0);
  ASSERT_TRUE(sub.accepted);
  // Fill the batch so it seals without a flush.
  for (int i = 0; i < 3; ++i) s.submit(JobKind::kSp, 3, 100.0, 0.0);
  for (const auto& b : s.take_runnable()) {
    s.record_measured(b.id, std::vector<double>(b.jobs.size(), 10.0));
  }
  // Placement would be at t=0 == latest arrival: a competing higher-priority
  // batch could still arrive at 0, so nothing may be emitted yet.
  EXPECT_TRUE(s.advance().empty());
  s.flush();
  EXPECT_EQ(s.advance().size(), 4u);
}

// --- executor --------------------------------------------------------------

JobRequest small_job(JobKind kind, std::uint64_t seed = 7) {
  JobRequest req;
  req.spec.kind = kind;
  req.spec.size = kind == JobKind::kDmr ? 60 : 80;
  req.spec.sweeps = 3;
  req.spec.phases = 1;
  req.spec.seed = seed;
  req.spec.validate = true;
  return req;
}

std::string outcome_repr(const JobOutcome& out) {
  return std::string(morph::status_code_name(out.status.code())) + "|" +
         out.outputs.dump() + "|" + out.exec.to_json().dump();
}

TEST(Executor, ResultsAreHostWorkerIndependent) {
  for (JobKind kind :
       {JobKind::kDmr, JobKind::kSp, JobKind::kPta, JobKind::kMst}) {
    morph::gpu::DeviceConfig hw1;
    hw1.host_workers = 1;
    morph::gpu::DeviceConfig hw4;
    hw4.host_workers = 4;
    const JobOutcome a = morph::serve::run_job(small_job(kind), hw1);
    const JobOutcome b = morph::serve::run_job(small_job(kind), hw4);
    EXPECT_TRUE(a.ok()) << outcome_repr(a);
    EXPECT_EQ(outcome_repr(a), outcome_repr(b))
        << "kind " << morph::serve::job_kind_name(kind);
  }
}

TEST(Executor, FaultedJobFailsAloneWithTypedStatus) {
  morph::gpu::DeviceConfig cfg;
  JobRequest faulted = small_job(JobKind::kMst);
  faulted.faults = "launch@1x64";  // exhausts the launch-retry ladder
  const JobOutcome bad = morph::serve::run_job(faulted, cfg);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status.code(), StatusCode::kRetriesExhausted);
  EXPECT_GT(bad.exec.faults_injected, 0u);

  // The identical spec without the campaign is untouched — and a run after
  // the faulted one is byte-identical to a run before it (fresh devices).
  const JobOutcome good = morph::serve::run_job(small_job(JobKind::kMst), cfg);
  EXPECT_TRUE(good.ok());
  const JobOutcome again = morph::serve::run_job(small_job(JobKind::kMst), cfg);
  EXPECT_EQ(outcome_repr(good), outcome_repr(again));
}

TEST(Executor, BadFaultSpecIsATypedPerJobFailure) {
  JobRequest req = small_job(JobKind::kSp);
  req.faults = "nonsense@@";
  const JobOutcome out = morph::serve::run_job(req, {});
  EXPECT_EQ(out.status.code(), StatusCode::kBadFaultSpec);
}

TEST(Executor, ServerBaseSinksNeverLeakIntoJobs) {
  morph::telemetry::TraceSink sink;
  morph::gpu::DeviceConfig cfg;
  cfg.trace = &sink;  // a server-wide sink a job must not inherit
  JobRequest req = small_job(JobKind::kSp);
  req.trace = false;
  const JobOutcome out = morph::serve::run_job(req, cfg);
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(sink.merged().size(), 0u);
  EXPECT_EQ(out.trace_events, 0u);

  req.trace = true;  // per-job sink, counted per job
  const JobOutcome traced = morph::serve::run_job(req, cfg);
  EXPECT_GT(traced.trace_events, 0u);
  EXPECT_EQ(sink.merged().size(), 0u);
}

// --- job model / protocol --------------------------------------------------

TEST(JobModel, RequestRoundTripsThroughJson) {
  JobRequest req = small_job(JobKind::kPta, 11);
  req.id = 42;
  req.priority = 5;
  req.faults = "arena@2";
  req.fault_seed = 9;
  JobRequest back;
  ASSERT_TRUE(JobRequest::from_json(req.to_json(), &back).ok());
  EXPECT_EQ(back.id, 42u);
  EXPECT_EQ(back.priority, 5u);
  EXPECT_EQ(back.faults, "arena@2");
  EXPECT_EQ(back.fault_seed, 9u);
  EXPECT_EQ(back.spec.signature(), req.spec.signature());
}

TEST(JobModel, UnknownParamKeysAreRejected) {
  Json msg = small_job(JobKind::kSp).to_json();
  msg.set("id", std::uint64_t{1});
  Json params = msg.at("params");
  params.set("sizee", std::uint64_t{100});  // typo must not silently no-op
  msg.set("params", params);
  JobRequest out;
  const Status s = JobRequest::from_json(msg, &out);
  EXPECT_EQ(s.code(), StatusCode::kBadRequest);
}

TEST(JobModel, OutOfRangePriorityIsRejected) {
  Json msg = small_job(JobKind::kSp).to_json();
  msg.set("id", std::uint64_t{1});
  msg.set("priority", std::int64_t{8});
  JobRequest out;
  EXPECT_EQ(JobRequest::from_json(msg, &out).code(), StatusCode::kBadRequest);
}

TEST(Protocol, FrameDecoderReassemblesSplitFrames) {
  Json a = Json::object();
  a.set("type", "hello");
  Json b = Json::object();
  b.set("type", "stats");
  const std::string wire =
      morph::serve::encode_frame(a) + morph::serve::encode_frame(b);

  morph::serve::FrameDecoder dec;
  std::vector<std::string> seen;
  for (std::size_t i = 0; i < wire.size(); ++i) {  // worst case: byte by byte
    dec.feed(wire.data() + i, 1);
    Json msg;
    bool have = false;
    ASSERT_TRUE(dec.poll(&msg, &have).ok());
    if (have) seen.push_back(msg.at("type").as_string());
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"hello", "stats"}));
}

TEST(Protocol, OversizedFrameLengthIsAProtocolError) {
  morph::serve::FrameDecoder dec;
  const char hdr[4] = {0x7f, 0x7f, 0x7f, 0x7f};  // ~2 GB claimed length
  dec.feed(hdr, 4);
  Json msg;
  bool have = false;
  EXPECT_EQ(dec.poll(&msg, &have).code(), StatusCode::kBadRequest);
}

// --- bench report serve section -------------------------------------------

TEST(ServeReport, SectionRoundTripsAndStaysOptional) {
  morph::telemetry::BenchReport rep;
  rep.bench = "serve_loadtest";
  rep.add_row("loadtest").metric("jobs", 10);
  // Disabled: serialization is byte-identical to a serve-less report.
  EXPECT_EQ(rep.to_json().find("serve"), nullptr);

  rep.serve.enabled = true;
  rep.serve.metric("throughput_jobs_per_model_s", 123.5)
      .metric("queue_p99_model_ms", 4.5);
  const auto back =
      morph::telemetry::BenchReport::parse(rep.to_json_text());
  ASSERT_TRUE(back.serve.enabled);
  ASSERT_NE(back.serve.find("queue_p99_model_ms"), nullptr);
  EXPECT_EQ(*back.serve.find("queue_p99_model_ms"), 4.5);
  EXPECT_EQ(back.serve.metrics.size(), 2u);
}

TEST(ServeReport, DiffGatesQueueLatencyRegressions) {
  morph::telemetry::BenchReport base;
  base.serve.enabled = true;
  base.serve.metric("queue_p99_model_ms", 10.0).metric("rejected", 3.0);
  morph::telemetry::BenchReport cur = base;
  cur.serve.metrics.clear();
  cur.serve.metric("queue_p99_model_ms", 11.0).metric("rejected", 5.0);

  const auto res = morph::telemetry::diff_reports(base, cur);
  EXPECT_TRUE(res.regressed);  // +10% p99 breaches the default 2%
  bool saw_info_rejected = false;
  for (const auto& d : res.deltas) {
    if (d.metric == "rejected") saw_info_rejected = !d.gated;
  }
  EXPECT_TRUE(saw_info_rejected);

  // A serve section appearing/disappearing is structural.
  morph::telemetry::BenchReport plain;
  const auto res2 = morph::telemetry::diff_reports(plain, base);
  EXPECT_FALSE(res2.structural.empty());
}

TEST(ServeReport, MismatchedSchemaVersionFailsLoudly) {
  morph::telemetry::BenchReport rep;
  rep.bench = "x";
  Json doc = rep.to_json();
  doc.set("version", std::int64_t{999});
  try {
    morph::telemetry::BenchReport::from_json(doc);
    FAIL() << "expected CheckError";
  } catch (const morph::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported schema version"),
              std::string::npos);
  }
}

// --- end to end ------------------------------------------------------------

class ServeEndToEnd : public ::testing::Test {
 protected:
  std::string socket_path() {
    return ::testing::TempDir() + "morph_serve_e2e_" +
           std::to_string(::getpid()) + ".sock";
  }
};

TEST_F(ServeEndToEnd, MixedBatchMatchesDirectExecutionAndIsolatesFaults) {
  morph::serve::ServerConfig cfg;
  cfg.socket_path = socket_path();
  cfg.sched.pool = 2;
  cfg.sched.batch_max = 3;
  morph::serve::Server server(cfg);
  ASSERT_TRUE(server.start().ok());

  morph::serve::Client client;
  ASSERT_TRUE(client.connect(cfg.socket_path).ok());

  std::vector<JobRequest> reqs;
  for (std::uint64_t i = 0; i < 6; ++i) {
    JobRequest r = small_job(static_cast<JobKind>(i % 4), 3 + i % 2);
    r.id = i;
    r.priority = static_cast<std::uint32_t>(i % 3);
    if (i == 3) r.faults = "launch@1x64";  // one poisoning attempt
    reqs.push_back(r);
  }
  for (const auto& r : reqs) ASSERT_TRUE(client.submit(r).ok());
  ASSERT_TRUE(client.send_flush().ok());

  std::map<std::uint64_t, Json> results;
  while (results.size() < reqs.size()) {
    Json msg;
    ASSERT_TRUE(client.next_message(&msg).ok());
    ASSERT_EQ(msg.at("type").as_string(), "result") << msg.dump();
    results[static_cast<std::uint64_t>(msg.at("id").as_int())] = msg;
  }

  for (const auto& r : reqs) {
    const Json& res = results[r.id];
    // The served result must equal a direct one-shot run, byte for byte.
    const JobOutcome direct = morph::serve::run_job(r, cfg.device);
    EXPECT_EQ(res.at("status").as_string(),
              morph::status_code_name(direct.status.code()))
        << "job " << r.id;
    EXPECT_EQ(res.at("outputs").dump(), direct.outputs.dump());
    EXPECT_EQ(res.at("exec").dump(), direct.exec.to_json().dump());
    if (r.id == 3) {
      EXPECT_EQ(res.at("status").as_string(), "retries-exhausted");
    } else {
      EXPECT_EQ(res.at("status").as_string(), "ok") << res.dump();
    }
  }

  // Typed admission data survives on the stats endpoint.
  ASSERT_TRUE(client.send_stats().ok());
  Json stats;
  ASSERT_TRUE(client.next_message(&stats).ok());
  EXPECT_EQ(stats.at("type").as_string(), "stats");
  EXPECT_EQ(stats.at("admitted").as_int(), 6);
  EXPECT_EQ(stats.at("placed").as_int(), 6);

  ASSERT_TRUE(client.send_shutdown().ok());
  Json bye;
  ASSERT_TRUE(client.next_message(&bye).ok());
  EXPECT_EQ(bye.at("type").as_string(), "bye");
  server.wait();
}

TEST_F(ServeEndToEnd, ArrivalGateOrdersStampedFramesAcrossConnections) {
  morph::serve::ServerConfig cfg;
  cfg.socket_path = socket_path() + ".3";
  cfg.sched.batch_max = 2;
  morph::serve::Server server(cfg);
  ASSERT_TRUE(server.start().ok());

  morph::serve::Client a;
  morph::serve::Client b;
  ASSERT_TRUE(a.connect(cfg.socket_path).ok());
  ASSERT_TRUE(b.connect(cfg.socket_path).ok());

  // Send arrival 1 first, on a different connection than arrival 0: the
  // gate must hold it until 0 is admitted, so the admission sequence (and
  // with it the shared batch) comes out in stamp order regardless of which
  // reader thread got to run first.
  JobRequest r1 = small_job(JobKind::kDmr, 4);
  r1.id = 11;
  ASSERT_TRUE(a.submit(r1, /*arrival=*/1).ok());
  JobRequest r0 = small_job(JobKind::kDmr, 3);
  r0.id = 10;
  ASSERT_TRUE(b.submit(r0, /*arrival=*/0).ok());
  ASSERT_TRUE(a.send_flush(/*arrival=*/2).ok());

  Json res1;
  ASSERT_TRUE(a.next_message(&res1).ok());
  Json res0;
  ASSERT_TRUE(b.next_message(&res0).ok());
  ASSERT_EQ(res0.at("type").as_string(), "result") << res0.dump();
  ASSERT_EQ(res1.at("type").as_string(), "result") << res1.dump();
  EXPECT_EQ(res0.at("id").as_int(), 10);
  EXPECT_EQ(res1.at("id").as_int(), 11);
  // Stamp order decided admission order...
  EXPECT_EQ(res0.at("seq").as_int(), 0);
  EXPECT_EQ(res1.at("seq").as_int(), 1);
  // ...and both landed in the same (batch_max = 2) shared batch.
  EXPECT_EQ(res0.at("serve").at("batch").as_int(),
            res1.at("serve").at("batch").as_int());

  // A stamp that was already admitted is a typed protocol error.
  JobRequest dup = small_job(JobKind::kSp);
  dup.id = 12;
  ASSERT_TRUE(b.submit(dup, /*arrival=*/1).ok());
  Json err;
  ASSERT_TRUE(b.next_message(&err).ok());
  EXPECT_EQ(err.at("type").as_string(), "error");
  EXPECT_EQ(err.at("code").as_string(), "bad-request");

  server.request_stop();
}

TEST_F(ServeEndToEnd, AdmissionRejectsAndBadRequestsComeBackTyped) {
  morph::serve::ServerConfig cfg;
  cfg.socket_path = socket_path() + ".2";
  cfg.sched.queue_cap_cycles = 1.0;  // everything is over budget
  morph::serve::Server server(cfg);
  ASSERT_TRUE(server.start().ok());

  morph::serve::Client client;
  ASSERT_TRUE(client.connect(cfg.socket_path).ok());

  JobRequest r = small_job(JobKind::kSp);
  r.id = 1;
  ASSERT_TRUE(client.submit(r).ok());
  Json rej;
  ASSERT_TRUE(client.next_message(&rej).ok());
  EXPECT_EQ(rej.at("type").as_string(), "reject");
  EXPECT_EQ(rej.at("code").as_string(), "admission-rejected");
  EXPECT_EQ(rej.at("id").as_int(), 1);

  Json bad = Json::object();
  bad.set("type", "submit");
  bad.set("id", std::uint64_t{2});
  bad.set("kind", "quantum");  // not a job kind
  // Raw framing path: no client-side validation in the way.
  Json err;
  int raw_fd = -1;
  ASSERT_TRUE(morph::serve::connect_unix(cfg.socket_path, &raw_fd).ok());
  ASSERT_TRUE(morph::serve::write_frame(raw_fd, bad).ok());
  ASSERT_TRUE(morph::serve::read_frame(raw_fd, &err).ok());
  EXPECT_EQ(err.at("type").as_string(), "error");
  EXPECT_EQ(err.at("code").as_string(), "bad-request");
  ::close(raw_fd);

  server.request_stop();
}

}  // namespace
