// Unit tests for the generic morph machinery: the 3-phase conflict
// resolution protocol (including a reconstruction of the 2-phase race the
// paper describes), lock-based claiming, slot recycling, adaptive
// configuration, and divergence packing.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "support/rng.hpp"

#include "core/adaptive.hpp"
#include "core/conflict.hpp"
#include "core/divergence.hpp"
#include "core/strategies.hpp"

namespace morph::core {
namespace {

gpu::ThreadCtx dummy_ctx() { return {}; }

TEST(MarkTable, RaceLastWriterWins) {
  MarkTable marks(8);
  auto ctx = dummy_ctx();
  const std::uint32_t hood[] = {1, 2, 3};
  marks.race_mark(ctx, 10, hood);
  marks.race_mark(ctx, 20, hood);
  for (std::uint32_t e : hood) EXPECT_EQ(marks.owner(e), 20u);
  EXPECT_EQ(marks.owner(0), MarkTable::kNoOwner);
}

TEST(MarkTable, ExactCheckDetectsOverwrites) {
  MarkTable marks(8);
  auto ctx = dummy_ctx();
  const std::uint32_t a[] = {1, 2};
  const std::uint32_t b[] = {2, 3};
  marks.race_mark(ctx, 1, a);
  marks.race_mark(ctx, 2, b);
  EXPECT_FALSE(marks.exact_check(ctx, 1, a));  // lost element 2
  EXPECT_TRUE(marks.exact_check(ctx, 2, b));
}

TEST(MarkTable, PriorityCheckHigherIdWinsShared) {
  MarkTable marks(8);
  auto ctx = dummy_ctx();
  const std::uint32_t a[] = {1, 2};
  const std::uint32_t b[] = {2, 3};
  // Race phase: thread 5 then thread 9 mark; 9 holds the shared element.
  marks.race_mark(ctx, 5, a);
  marks.race_mark(ctx, 9, b);
  // Prioritycheck: 5 sees 9 on element 2 and backs off; 9 keeps all.
  EXPECT_FALSE(marks.priority_check(ctx, 5, a));
  EXPECT_TRUE(marks.priority_check(ctx, 9, b));
  EXPECT_TRUE(marks.final_check(ctx, 9, b));
}

TEST(MarkTable, PriorityCheckLowerMarkGetsOverwritten) {
  MarkTable marks(8);
  auto ctx = dummy_ctx();
  const std::uint32_t a[] = {1, 2};
  const std::uint32_t b[] = {2, 3};
  marks.race_mark(ctx, 9, b);
  marks.race_mark(ctx, 5, a);  // 5 wrote last on the shared element
  // 9 has priority: it re-marks element 2.
  EXPECT_TRUE(marks.priority_check(ctx, 9, b));
  EXPECT_EQ(marks.owner(2), 9u);
  // 5 discovers the loss only in the read-only check phase.
  EXPECT_FALSE(marks.final_check(ctx, 5, a));
}

TEST(MarkTable, TwoPhaseRaceFromPaperResolvedByMaxRace) {
  // Sec. 7.3's 2-phase anomaly: on real hardware the race phase's winner is
  // arbitrary, so a shared triangle can end up marked with the *lower* id
  // t_j; t_j prioritychecks first and passes, then t_i re-marks and also
  // passes — overlapping winners. This simulator resolves race-phase
  // contention deterministically highest-id-wins (the serial execution
  // order's outcome), so the anomalous post-race state is unreachable: the
  // shared element always holds t_i, t_j backs off in the prioritycheck,
  // and the winner set is identical under any host-thread interleaving.
  // The read-only third phase is kept (and benched) as the paper's fix for
  // hardware where the race is genuinely arbitrary.
  MarkTable marks(8);
  auto ctx = dummy_ctx();
  const std::uint32_t ti_hood[] = {1, 2};  // t_i = 9
  const std::uint32_t tj_hood[] = {2, 3};  // t_j = 4, shares element 2
  marks.race_mark(ctx, 9, ti_hood);
  marks.race_mark(ctx, 4, tj_hood);  // t_j races last but does not win
  EXPECT_EQ(marks.owner(2), 9u);
  // --- global barrier ---
  const bool tj_owns = marks.priority_check(ctx, 4, tj_hood);  // runs first
  const bool ti_owns = marks.priority_check(ctx, 9, ti_hood);
  EXPECT_FALSE(tj_owns);  // backs off: no overlapping winners
  EXPECT_TRUE(ti_owns);

  // The third phase agrees with the prioritycheck in either order.
  EXPECT_FALSE(marks.final_check(ctx, 4, tj_hood));
  EXPECT_TRUE(marks.final_check(ctx, 9, ti_hood));
}

TEST(MarkTable, ThreePhaseYieldsDisjointWinnersUnderContention) {
  // Property: after race + prioritycheck + check over many overlapping
  // neighborhoods, accepted neighborhoods are pairwise disjoint.
  constexpr std::uint32_t kThreads = 64, kElems = 96;
  MarkTable marks(kElems);
  auto ctx = dummy_ctx();
  Rng rng(5);
  std::vector<std::vector<std::uint32_t>> hoods(kThreads);
  for (auto& h : hoods) {
    std::set<std::uint32_t> s;
    while (s.size() < 5) s.insert(static_cast<std::uint32_t>(rng.next_below(kElems)));
    h.assign(s.begin(), s.end());
  }
  for (std::uint32_t t = 0; t < kThreads; ++t)
    marks.race_mark(ctx, t, hoods[t]);
  std::vector<bool> owns(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t)
    owns[t] = marks.priority_check(ctx, t, hoods[t]);
  std::vector<std::uint32_t> winner_of(kElems, MarkTable::kNoOwner);
  std::uint32_t winners = 0;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    if (!owns[t] || !marks.final_check(ctx, t, hoods[t])) continue;
    ++winners;
    for (std::uint32_t e : hoods[t]) {
      EXPECT_EQ(winner_of[e], MarkTable::kNoOwner)
          << "element " << e << " claimed twice";
      winner_of[e] = t;
    }
  }
  EXPECT_GT(winners, 0u);
}

TEST(MarkTable, ResetClearsOwnership) {
  MarkTable marks(4);
  auto ctx = dummy_ctx();
  const std::uint32_t hood[] = {0, 1, 2, 3};
  marks.race_mark(ctx, 7, hood);
  marks.reset();
  for (std::uint32_t e : hood) EXPECT_EQ(marks.owner(e), MarkTable::kNoOwner);
}

TEST(MarkTable, ResizePreservesNoOwnerDefault) {
  MarkTable marks(2);
  marks.resize(10);
  EXPECT_EQ(marks.size(), 10u);
  EXPECT_EQ(marks.owner(9), MarkTable::kNoOwner);
}

TEST(MarkTable, TryClaimAllOrNothing) {
  MarkTable marks(8);
  auto ctx = dummy_ctx();
  const std::uint32_t a[] = {1, 2, 3};
  const std::uint32_t b[] = {3, 4};
  EXPECT_TRUE(marks.try_claim(ctx, 1, a));
  EXPECT_FALSE(marks.try_claim(ctx, 2, b));  // 3 is held
  // The failed claim must not leave partial ownership on 4... it released.
  EXPECT_EQ(marks.owner(4), MarkTable::kNoOwner);
  marks.release(ctx, 1, a);
  EXPECT_TRUE(marks.try_claim(ctx, 2, b));
}

TEST(MarkTable, TryClaimChargesAtomics) {
  MarkTable marks(8);
  gpu::ThreadCtx ctx;
  const std::uint32_t a[] = {0, 1};
  marks.try_claim(ctx, 3, a);
  EXPECT_GE(ctx.counted_work(), 2u);
}

TEST(SlotRecycler, GiveTakeFifo) {
  SlotRecycler rec(16);
  EXPECT_FALSE(rec.take().has_value());
  EXPECT_TRUE(rec.give(42));
  EXPECT_TRUE(rec.give(43));
  EXPECT_EQ(rec.available(), 2u);
  EXPECT_EQ(rec.take().value(), 42u);
  EXPECT_EQ(rec.take().value(), 43u);
  EXPECT_FALSE(rec.take().has_value());
}

TEST(SlotRecycler, OverflowReportsFalse) {
  SlotRecycler rec(2);
  EXPECT_TRUE(rec.give(1));
  EXPECT_TRUE(rec.give(2));
  EXPECT_FALSE(rec.give(3));
}

TEST(SlotRecycler, ClearResets) {
  SlotRecycler rec(4);
  rec.give(1);
  rec.clear();
  EXPECT_EQ(rec.available(), 0u);
  EXPECT_FALSE(rec.take().has_value());
}

TEST(SlotRecycler, ConcurrentGiveTakeLosesNothing) {
  SlotRecycler rec(10000);
  std::vector<std::thread> givers;
  for (int t = 0; t < 4; ++t) {
    givers.emplace_back([&rec, t] {
      for (std::uint32_t i = 0; i < 1000; ++i)
        rec.give(static_cast<std::uint32_t>(t) * 1000 + i);
    });
  }
  for (auto& th : givers) th.join();
  std::set<std::uint32_t> got;
  while (auto v = rec.take()) got.insert(*v);
  EXPECT_EQ(got.size(), 4000u);
}

TEST(SlotRecycler, ConcurrentOverflowNeverReadsOutOfBounds) {
  // Regression: give() used to bump tail_ past capacity and fix it up
  // afterwards, so a concurrent take() could observe the transiently
  // inflated index and read slots_[capacity] — an OOB read TSan flags.
  // The CAS-bounded claim never publishes an index >= capacity; this test
  // hammers the full/overflow boundary under TSan to keep it that way.
  SlotRecycler rec(64);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> given{0}, taken{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < 20000; ++i) {
        if (rec.give(static_cast<std::uint32_t>(t) * 100000 + i)) {
          given.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (rec.take()) taken.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int t = 0; t < 4; ++t) workers[static_cast<std::size_t>(t)].join();
  stop.store(true);
  workers[4].join();
  workers[5].join();
  while (auto v = rec.take()) taken.fetch_add(1, std::memory_order_relaxed);
  EXPECT_EQ(given.load(), taken.load());
  EXPECT_EQ(rec.available(), 0u);
  // Still functional after saturation (no indices were corrupted).
  rec.clear();
  EXPECT_TRUE(rec.give(7));
  EXPECT_EQ(rec.take().value(), 7u);
}

TEST(Adaptive, DoublesThreadsPerBlockThenHolds) {
  gpu::DeviceConfig dev;
  AdaptiveLauncher launcher(64, 3, 12.0);
  EXPECT_EQ(launcher.next(dev).threads_per_block, 64u);
  EXPECT_EQ(launcher.next(dev).threads_per_block, 128u);
  EXPECT_EQ(launcher.next(dev).threads_per_block, 256u);
  EXPECT_EQ(launcher.next(dev).threads_per_block, 512u);
  EXPECT_EQ(launcher.next(dev).threads_per_block, 512u);  // holds
}

TEST(Adaptive, BlockCountFixedPerRun) {
  gpu::DeviceConfig dev;
  AdaptiveLauncher launcher(128, 3, 3.0);
  const auto first = launcher.next(dev);
  EXPECT_EQ(first.blocks, 3u * dev.num_sms);
  EXPECT_EQ(launcher.next(dev).blocks, first.blocks);
}

TEST(Adaptive, CapsAtMaxTpb) {
  gpu::DeviceConfig dev;
  AdaptiveLauncher launcher(512, 3, 3.0, 1024);
  launcher.next(dev);
  launcher.next(dev);
  EXPECT_EQ(launcher.next(dev).threads_per_block, 1024u);
}

TEST(Adaptive, FixedConfigHelper) {
  gpu::DeviceConfig dev;
  const auto lc = fixed_config(dev, 2.0, 96);
  EXPECT_EQ(lc.blocks, 28u);
  EXPECT_EQ(lc.threads_per_block, 96u);
}

TEST(Divergence, PackActiveMovesAndCounts) {
  std::vector<std::uint32_t> ids = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::uint32_t n =
      pack_active(ids, [](std::uint32_t v) { return v % 3 == 0; });
  EXPECT_EQ(n, 3u);
  EXPECT_EQ((std::vector<std::uint32_t>{0, 3, 6}),
            std::vector<std::uint32_t>(ids.begin(), ids.begin() + 3));
  // Stability: inactive keep relative order.
  EXPECT_EQ((std::vector<std::uint32_t>{1, 2, 4, 5, 7}),
            std::vector<std::uint32_t>(ids.begin() + 3, ids.end()));
}

TEST(Divergence, PackActiveAllOrNone) {
  std::vector<std::uint32_t> ids = {5, 6};
  EXPECT_EQ(pack_active(ids, [](std::uint32_t) { return true; }), 2u);
  EXPECT_EQ(pack_active(ids, [](std::uint32_t) { return false; }), 0u);
}

}  // namespace
}  // namespace morph::core
