// Cross-module integration tests: the four applications driven end-to-end
// on one simulated device, plus properties the paper's narrative depends on
// (parallelism profile shape, adaptive configuration interaction, device
// accounting across apps).
#include <gtest/gtest.h>

#include "dmr/cavity.hpp"
#include "gpu/memory.hpp"
#include "dmr/delaunay.hpp"
#include "dmr/refine.hpp"
#include "graph/generators.hpp"
#include "mst/mst.hpp"
#include "pta/solve.hpp"
#include "sp/survey.hpp"

namespace morph {
namespace {

TEST(Pipeline, AllFourAppsShareOneDevice) {
  gpu::Device dev;

  dmr::Mesh mesh = dmr::generate_input_mesh(600, 1);
  dmr::refine_gpu(mesh, dev);
  EXPECT_EQ(mesh.compute_all_bad(30.0), 0u);
  const auto launches_after_dmr = dev.stats().launches;

  auto f = sp::random_ksat(500, 1900, 3, 2);
  const sp::SpResult sr = sp::solve_gpu(f, dev, {.seed = 3});
  EXPECT_TRUE(sr.solved);
  EXPECT_GT(dev.stats().launches, launches_after_dmr);

  const pta::ConstraintSet cs = pta::synthetic_program(300, 400, 4);
  const pta::PtsSets pts = pta::solve_gpu(cs, dev);
  EXPECT_TRUE(pta::equal_pts(pts, pta::solve_serial(cs)));

  auto edges = graph::gen_random_uniform(500, 2000, 100, 5);
  auto g = graph::CsrGraph::from_undirected_edges(500, edges);
  const mst::MstResult mr = mst::mst_gpu(g, dev);
  EXPECT_EQ(mr.total_weight, mst::mst_kruskal(g).total_weight);

  // The device accumulated real cost from all four applications.
  EXPECT_GT(dev.stats().modeled_cycles, 0.0);
  EXPECT_GT(dev.stats().total_work, 0u);
  EXPECT_GT(dev.stats().device_mallocs, 0u);  // PTA's Kernel-Only chunks
}

TEST(ParallelismProfile, DmrRisesThenFalls) {
  // Fig. 2's shape: per-round processed cavities (a lower bound on the
  // available parallelism) grow from the start, peak, and decay to zero.
  dmr::Mesh m = dmr::generate_input_mesh(4000, 7);
  const double cb = dmr::cos_of_deg(30.0);
  m.compute_all_bad(30.0);

  // Greedy maximal set of independent cavities per round, applied in bulk —
  // the same quantity ParaMeter reports.
  std::vector<std::size_t> profile;
  for (int round = 0; round < 1000; ++round) {
    std::vector<dmr::Tri> bad;
    for (dmr::Tri t = 0; t < m.num_slots(); ++t) {
      if (!m.is_deleted(t) && m.is_bad(t)) bad.push_back(t);
    }
    if (bad.empty()) break;
    std::vector<std::uint8_t> taken(m.num_slots(), 0);
    std::size_t applied = 0;
    for (dmr::Tri t : bad) {
      if (m.is_deleted(t) || !m.is_bad(t)) continue;
      if (t < taken.size() && taken[t]) continue;
      dmr::Cavity c = dmr::build_refinement_cavity(m, t);
      const auto hood = c.neighborhood(m);
      bool free = true;
      for (dmr::Tri h : hood) {
        if (h < taken.size() && taken[h]) free = false;
      }
      if (!free) continue;
      for (dmr::Tri h : hood) {
        if (h < taken.size()) taken[h] = 1;
      }
      dmr::retriangulate(m, c, cb);
      ++applied;
    }
    profile.push_back(applied);
  }
  ASSERT_GE(profile.size(), 3u);
  const auto peak_it = std::max_element(profile.begin(), profile.end());
  EXPECT_GT(*peak_it, profile.front()) << "parallelism should grow first";
  EXPECT_EQ(profile.back() <= *peak_it, true);
  EXPECT_EQ(m.compute_all_bad(30.0), 0u);
}

TEST(Adaptive, GpuDmrBeatsFixedConfigurationOnModeledTime) {
  // Fig. 8 row 5: adaptive kernel configuration improves on the fixed one.
  // The effect needs a mesh large enough that the extra threads find work
  // (the paper's inputs are millions of triangles; 40k is the threshold at
  // which the crossover shows in the simulator).
  dmr::Mesh m1 = dmr::generate_input_mesh(40000, 9);
  dmr::Mesh m2 = m1;
  gpu::Device d1, d2;
  dmr::RefineOptions opts;
  opts.adaptive = true;
  dmr::refine_gpu(m1, d1, opts);
  opts.adaptive = false;
  dmr::refine_gpu(m2, d2, opts);
  EXPECT_LT(d1.stats().modeled_cycles, d2.stats().modeled_cycles);
}

TEST(Barriers, NaiveAtomicBarrierIsTheSlowestForDmr) {
  dmr::Mesh base = dmr::generate_input_mesh(1500, 10);
  auto run = [&](gpu::BarrierKind kind) {
    dmr::Mesh m = base;
    gpu::Device dev;
    dmr::RefineOptions opts;
    opts.barrier = kind;
    dmr::refine_gpu(m, dev, opts);
    EXPECT_EQ(m.compute_all_bad(30.0), 0u);
    return dev.stats().modeled_cycles;
  };
  const double naive = run(gpu::BarrierKind::kNaiveAtomic);
  const double hier = run(gpu::BarrierKind::kHierarchical);
  const double lockfree = run(gpu::BarrierKind::kLockFree);
  EXPECT_GT(naive, hier);
  EXPECT_GE(hier, lockfree * 0.999);
}

TEST(MulticoreScaling, DmrModeledTimeImprovesWithWorkers) {
  // The x-axis of Fig. 6: more CPU workers, lower modeled runtime.
  dmr::Mesh base = dmr::generate_input_mesh(2000, 11);
  double prev = 1e300;
  for (std::uint32_t workers : {1u, 8u, 48u}) {
    dmr::Mesh m = base;
    cpu::ParallelRunner runner({.workers = workers});
    dmr::refine_multicore(m, runner);
    EXPECT_EQ(m.compute_all_bad(30.0), 0u);
    EXPECT_LT(runner.stats().modeled_cycles, prev);
    prev = runner.stats().modeled_cycles;
  }
}

TEST(MemoryStrategies, HeapRecyclingAcrossApps) {
  // PTA allocates chunks; explicit deletion returns them; a second solve on
  // the same device recycles instead of growing the heap.
  gpu::Device dev;
  gpu::DeviceHeap<std::uint32_t> heap(dev, 256);
  std::vector<std::span<std::uint32_t>> chunks;
  for (int i = 0; i < 10; ++i) chunks.push_back(heap.alloc_chunk());
  for (auto& c : chunks) heap.free_chunk(c);
  const auto mallocs = dev.stats().device_mallocs;
  for (int i = 0; i < 10; ++i) heap.alloc_chunk();
  EXPECT_EQ(dev.stats().device_mallocs, mallocs);
  EXPECT_EQ(heap.chunks_recycled(), 10u);
}

TEST(Layout, ReorderReducesChargedGlobalAccessesPerCavity) {
  // Sec. 6.1: after the space-filling-curve reorder, a cavity's triangles
  // have nearby slot ids, so each cavity build charges fewer uncoalesced
  // accesses. Normalized per attempt because the layouts also change how
  // many cavities end up being attempted.
  dmr::Mesh m1 = dmr::generate_input_mesh(10000, 12);
  dmr::Mesh m2 = m1;
  gpu::Device d1, d2;
  dmr::RefineOptions opts;
  opts.layout_opt = true;
  const dmr::RefineStats s1 = dmr::refine_gpu(m1, d1, opts);
  opts.layout_opt = false;
  const dmr::RefineStats s2 = dmr::refine_gpu(m2, d2, opts);
  const double per_attempt_1 =
      static_cast<double>(d1.stats().global_accesses) /
      static_cast<double>(s1.processed + s1.aborted);
  const double per_attempt_2 =
      static_cast<double>(d2.stats().global_accesses) /
      static_cast<double>(s2.processed + s2.aborted);
  EXPECT_LT(per_attempt_1, per_attempt_2);
}

TEST(WorkEfficiency, DivergenceSortReducesWarpSteps) {
  dmr::Mesh m1 = dmr::generate_input_mesh(3000, 13);
  dmr::Mesh m2 = m1;
  gpu::Device d1, d2;
  dmr::RefineOptions opts;
  opts.divergence_sort = true;
  dmr::refine_gpu(m1, d1, opts);
  opts.divergence_sort = false;
  dmr::refine_gpu(m2, d2, opts);
  // Same algorithm; the sorted variant issues fewer warp steps per unit of
  // useful work.
  const double eff1 = static_cast<double>(d1.stats().warp_steps) /
                      static_cast<double>(d1.stats().total_work);
  const double eff2 = static_cast<double>(d2.stats().warp_steps) /
                      static_cast<double>(d2.stats().total_work);
  EXPECT_LT(eff1, eff2 * 1.05);
}

}  // namespace
}  // namespace morph
