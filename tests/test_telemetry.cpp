// Unit tests for the telemetry subsystem: JSON round-trips, trace-merge
// determinism across host worker counts, BenchReport schema, and the
// regression diff used by morph-report.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "gpu/device.hpp"
#include "support/check.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/json.hpp"
#include "telemetry/report_diff.hpp"
#include "telemetry/trace.hpp"

namespace morph::telemetry {
namespace {

// ---------------------------------------------------------------- JSON ----

TEST(Json, RoundTripsScalarsAndContainers) {
  Json doc = Json::object();
  doc.set("flag", Json(true));
  doc.set("count", Json(std::int64_t{42}));
  doc.set("pi", Json(3.141592653589793));
  doc.set("name", Json(std::string("mesh")));
  Json arr = Json::array();
  arr.push_back(Json(1.0));
  arr.push_back(Json(std::string("two")));
  doc.set("list", std::move(arr));

  const Json back = Json::parse(doc.dump());
  EXPECT_TRUE(back.at("flag").as_bool());
  EXPECT_EQ(back.at("count").as_int(), 42);
  EXPECT_DOUBLE_EQ(back.at("pi").as_double(), 3.141592653589793);
  EXPECT_EQ(back.at("name").as_string(), "mesh");
  EXPECT_EQ(back.at("list").size(), 2u);
  EXPECT_DOUBLE_EQ(back.at("list").at(0).as_double(), 1.0);
}

TEST(Json, PreservesInsertionOrderAndEscapes) {
  Json doc = Json::object();
  doc.set("z", Json(1.0));
  doc.set("a", Json(std::string("line\nbreak \"quoted\"")));
  const std::string text = doc.dump();
  EXPECT_LT(text.find("\"z\""), text.find("\"a\""));
  const Json back = Json::parse(text);
  EXPECT_EQ(back.at("a").as_string(), "line\nbreak \"quoted\"");
}

TEST(Json, NonAsciiBytesRoundTripThroughAsciiEscapes) {
  // Regression: the writer passed a plain (signed) char to snprintf's %x,
  // which sign-extended bytes >= 0x80 into "￿ffXX" garbage the parser
  // rejected. Every byte value must now survive a dump/parse round trip,
  // and the emitted JSON must stay plain ASCII.
  std::string all_bytes;
  for (int b = 1; b < 256; ++b) all_bytes += static_cast<char>(b);
  Json doc = Json::object();
  doc.set("bytes", Json(all_bytes));
  doc.set("utf8", Json(std::string("caf\xc3\xa9 \xe2\x9c\x93")));
  const std::string text = doc.dump();
  for (char c : text) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    EXPECT_LT(static_cast<unsigned char>(c), 0x80u);
  }
  const Json back = Json::parse(text);
  EXPECT_EQ(back.at("bytes").as_string(), all_bytes);
  EXPECT_EQ(back.at("utf8").as_string(), "caf\xc3\xa9 \xe2\x9c\x93");
}

TEST(Json, DoublesSurviveExactly) {
  // Shortest-round-trip printing must reproduce the bits.
  const double values[] = {0.1, 1.0 / 3.0, 1e-300, 123456789.123456789,
                           754151.436011905};
  for (double v : values) {
    Json doc = Json::array();
    doc.push_back(Json(v));
    const double got = Json::parse(doc.dump()).at(0).as_double();
    EXPECT_EQ(got, v);
  }
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), CheckError);
  EXPECT_THROW(Json::parse("[1,]"), CheckError);
  EXPECT_THROW(Json::parse("nope"), CheckError);
  EXPECT_THROW(Json::parse("{} trailing"), CheckError);
  EXPECT_THROW(Json::parse(""), CheckError);
}

TEST(Json, TypeMismatchThrows) {
  const Json doc = Json::parse("{\"n\": 3}");
  EXPECT_THROW(doc.at("n").as_string(), CheckError);
  EXPECT_THROW(doc.at("missing"), CheckError);
}

// --------------------------------------------------------------- traces ----

// A deterministic little multi-phase workload with skewed per-thread work.
gpu::KernelStats run_workload(gpu::Device& dev) {
  const gpu::KernelFn phases[3] = {
      [](gpu::ThreadCtx& ctx) { ctx.work(1 + ctx.tid() % 7); },
      [](gpu::ThreadCtx& ctx) {
        if (ctx.lane() < 4) ctx.atomic_op();
        ctx.global_access();
      },
      [](gpu::ThreadCtx& ctx) { ctx.work(ctx.block() % 3); },
  };
  return dev.launch_phases({16, 64}, phases);
}

TEST(Trace, DisabledSinkLeavesStatsBitIdentical) {
  gpu::DeviceConfig plain;
  plain.host_workers = 1;
  gpu::Device dev_plain(plain);
  const gpu::KernelStats a = run_workload(dev_plain);

  TraceSink sink;
  gpu::DeviceConfig traced = plain;
  traced.trace = &sink;
  gpu::Device dev_traced(traced);
  const gpu::KernelStats b = run_workload(dev_traced);

  EXPECT_EQ(a.modeled_cycles, b.modeled_cycles);  // bitwise, not approx
  EXPECT_EQ(a.warp_steps, b.warp_steps);
  EXPECT_EQ(a.atomics, b.atomics);
  EXPECT_FALSE(sink.merged().empty());
}

std::string traced_run(std::uint32_t host_workers, bool blocks) {
  TraceSink::Options opts;
  opts.block_spans = blocks;
  TraceSink sink(opts);
  gpu::DeviceConfig cfg;
  cfg.host_workers = host_workers;
  cfg.trace = &sink;
  gpu::Device dev(cfg);
  run_workload(dev);
  run_workload(dev);
  dev.note_counter("test.counter", 42.0);
  ChromeTraceOptions copts;
  copts.dropped_events = sink.dropped();
  return chrome_trace_json(sink.merged(), copts);
}

TEST(Trace, MergeIsByteIdenticalAcrossHostWorkers) {
  const std::string hw1 = traced_run(1, true);
  const std::string hw4 = traced_run(4, true);
  EXPECT_EQ(hw1, hw4);
}

TEST(Trace, ChromeExportIsValidJsonWithExpectedTracks) {
  const std::string text = traced_run(2, true);
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.at("otherData").at("schema").as_string(),
            "morph-chrome-trace");
  const Json& events = doc.at("traceEvents");
  EXPECT_GT(events.size(), 0u);
  bool saw_launch = false, saw_counter = false, saw_block = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    const std::string ph = e.at("ph").as_string();
    if (ph == "X" && e.at("tid").as_int() == 0 &&
        e.at("name").as_string().rfind("launch", 0) == 0) {
      saw_launch = true;
    }
    if (ph == "C") saw_counter = true;
    if (ph == "X" && e.at("tid").as_int() > 0) saw_block = true;
  }
  EXPECT_TRUE(saw_launch);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_block);
}

TEST(Trace, RingOverflowCountsDrops) {
  TraceSink::Options opts;
  opts.ring_capacity = 8;
  opts.block_spans = true;
  TraceSink sink(opts);
  gpu::DeviceConfig cfg;
  cfg.host_workers = 1;
  cfg.trace = &sink;
  gpu::Device dev(cfg);
  run_workload(dev);  // 16 blocks x 3 phases of block events alone
  EXPECT_GT(sink.dropped(), 0u);
  EXPECT_LE(sink.merged().size(), 2u * 8u);  // two rings, capped
}

TEST(Trace, EventOrderIsATotalOrderKey) {
  TraceEvent a, b;
  a.kind = b.kind = EventKind::kBlock;
  a.launch = b.launch = 3;
  a.block = 1;
  b.block = 2;
  EXPECT_TRUE(trace_event_order(a, b));
  EXPECT_FALSE(trace_event_order(b, a));
  b.block = 1;
  EXPECT_FALSE(trace_event_order(a, b));
  EXPECT_FALSE(trace_event_order(b, a));
}

// --------------------------------------------------------- bench report ----

BenchReport sample_report() {
  BenchReport rep;
  rep.bench = "fig_test";
  rep.title = "A test bench";
  rep.clock_ghz = 1.0;
  rep.args = {{"scale", "4"}, {"host-workers", "2"}};
  rep.add_row("row-a")
      .metric("modeled_cycles", 1000.5)
      .metric("atomics", 32.0)
      .metric("wall_seconds", 0.25);
  rep.add_row("row-b").metric("modeled_cycles", 2000.0);
  return rep;
}

TEST(BenchReportTest, RoundTripsThroughJsonText) {
  const BenchReport rep = sample_report();
  const BenchReport back = BenchReport::parse(rep.to_json_text());
  EXPECT_EQ(back.bench, rep.bench);
  EXPECT_EQ(back.title, rep.title);
  EXPECT_EQ(back.clock_ghz, rep.clock_ghz);
  EXPECT_EQ(back.args, rep.args);
  ASSERT_EQ(back.rows.size(), rep.rows.size());
  for (std::size_t i = 0; i < rep.rows.size(); ++i) {
    EXPECT_EQ(back.rows[i].name, rep.rows[i].name);
    EXPECT_EQ(back.rows[i].metrics, rep.rows[i].metrics);  // exact doubles
  }
}

TEST(BenchReportTest, RejectsWrongSchemaOrVersion) {
  Json doc = sample_report().to_json();
  doc.set("schema", Json(std::string("other-schema")));
  EXPECT_THROW(BenchReport::from_json(doc), CheckError);
  Json doc2 = sample_report().to_json();
  doc2.set("version", Json(std::int64_t{999}));
  EXPECT_THROW(BenchReport::from_json(doc2), CheckError);
}

TEST(BenchReportTest, MergePrefixesRowNames) {
  BenchReport a = sample_report();
  BenchReport b = sample_report();
  b.bench = "fig_other";
  const BenchReport merged = merge_reports({a, b}, "snapshot");
  EXPECT_EQ(merged.bench, "snapshot");
  ASSERT_EQ(merged.rows.size(), 4u);
  EXPECT_EQ(merged.rows[0].name, "fig_test/row-a");
  EXPECT_EQ(merged.rows[2].name, "fig_other/row-a");
}

// ------------------------------------------------------------------ diff ----

TEST(Diff, IdenticalReportsAreClean) {
  const BenchReport rep = sample_report();
  const DiffResult res = diff_reports(rep, rep);
  EXPECT_TRUE(res.clean());
  EXPECT_EQ(res.exit_code(), 0);
  EXPECT_TRUE(res.deltas.empty());
}

TEST(Diff, RegressionBeyondThresholdFails) {
  const BenchReport base = sample_report();
  BenchReport cur = sample_report();
  cur.rows[0].metric("modeled_cycles", 1000.5 * 1.10);  // +10% > 2% default
  const DiffResult res = diff_reports(base, cur);
  EXPECT_TRUE(res.regressed);
  EXPECT_EQ(res.exit_code(), 1);
  ASSERT_EQ(res.deltas.size(), 1u);
  EXPECT_EQ(res.deltas[0].metric, "modeled_cycles");
  EXPECT_TRUE(res.deltas[0].regression);
}

TEST(Diff, ThresholdOverridesAllowTheRegression) {
  const BenchReport base = sample_report();
  BenchReport cur = sample_report();
  cur.rows[0].metric("modeled_cycles", 1000.5 * 1.10);

  DiffThresholds loose;
  loose.default_rel = 0.2;
  EXPECT_EQ(diff_reports(base, cur, loose).exit_code(), 0);

  DiffThresholds per;
  per.per_metric = {{"modeled_cycles", 0.15}};
  EXPECT_EQ(diff_reports(base, cur, per).exit_code(), 0);
  // The override is per-metric: a different gated metric still uses 2%.
  cur.rows[0].metric("atomics", 32.0 * 1.10);
  EXPECT_EQ(diff_reports(base, cur, per).exit_code(), 1);
}

TEST(Diff, ImprovementsNeverFail) {
  const BenchReport base = sample_report();
  BenchReport cur = sample_report();
  cur.rows[0].metric("modeled_cycles", 500.0);  // -50%
  const DiffResult res = diff_reports(base, cur);
  EXPECT_TRUE(res.clean());
  ASSERT_EQ(res.deltas.size(), 1u);
  EXPECT_FALSE(res.deltas[0].regression);
}

TEST(Diff, WallClockIsInformationalOnly) {
  const BenchReport base = sample_report();
  BenchReport cur = sample_report();
  cur.rows[0].metric("wall_seconds", 100.0);  // wildly slower, not gated
  const DiffResult res = diff_reports(base, cur);
  EXPECT_TRUE(res.clean());
  ASSERT_EQ(res.deltas.size(), 1u);
  EXPECT_FALSE(res.deltas[0].gated);
}

TEST(Diff, ZeroBaselineGatesOnAbsoluteThresholdNotInfPercent) {
  // Regression guard: a gated metric whose baseline is exactly 0 used to
  // produce rel_change = +inf and trip the *relative* gate no matter how
  // small the increase; the gate must fall back to the absolute threshold.
  BenchReport base = sample_report();
  base.rows[0].metric("atomics", 0.0);
  BenchReport cur = sample_report();
  cur.rows[0].metric("atomics", 3.0);

  // Default absolute threshold is 0: growth from zero still fails, but via
  // the absolute gate (health counters must never grow silently).
  const DiffResult strict = diff_reports(base, cur);
  EXPECT_TRUE(strict.regressed);
  ASSERT_EQ(strict.deltas.size(), 1u);
  EXPECT_EQ(strict.deltas[0].metric, "atomics");
  EXPECT_TRUE(std::isinf(strict.deltas[0].rel_change));

  // An absolute allowance admits the step where no finite relative
  // threshold ever could.
  DiffThresholds abs_ok;
  abs_ok.default_abs = 3.0;
  EXPECT_EQ(diff_reports(base, cur, abs_ok).exit_code(), 0);
  DiffThresholds abs_tight;
  abs_tight.default_abs = 2.0;
  EXPECT_EQ(diff_reports(base, cur, abs_tight).exit_code(), 1);

  // Per-metric absolute overrides win over the default.
  DiffThresholds per;
  per.per_metric_abs = {{"atomics", 5.0}};
  EXPECT_EQ(diff_reports(base, cur, per).exit_code(), 0);

  // A zero-baseline *improvement* (0 -> negative) never fails.
  BenchReport down = sample_report();
  down.rows[0].metric("atomics", -1.0);
  EXPECT_FALSE(diff_reports(base, down).regressed);
}

TEST(Diff, StructuralChangesAreFlagged) {
  const BenchReport base = sample_report();
  BenchReport cur = sample_report();
  cur.rows.pop_back();                       // row-b missing
  cur.add_row("row-new").metric("x", 1.0);   // new row
  const DiffResult res = diff_reports(base, cur);
  EXPECT_FALSE(res.structural.empty());
  EXPECT_EQ(res.exit_code(), 1);

  BenchReport other = sample_report();
  other.bench = "renamed";
  EXPECT_FALSE(diff_reports(base, other).structural.empty());
}

}  // namespace
}  // namespace morph::telemetry
