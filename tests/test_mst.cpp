// Tests for the Boruvka MST variants: agreement with Kruskal across graph
// families, forests on disconnected inputs, ties, and the cost asymmetries
// behind Fig. 11.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mst/mst.hpp"

namespace morph::mst {
namespace {

using graph::CsrGraph;
using graph::Edge;
using graph::Node;

CsrGraph tiny_known_graph() {
  // MST weight = 1 + 2 + 3 = 6 (edges (0,1),(1,2),(2,3)).
  const Edge edges[] = {
      {0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {0, 2, 5}, {1, 3, 8},
  };
  return CsrGraph::from_undirected_edges(4, edges);
}

TEST(Kruskal, TinyKnownGraph) {
  const MstResult r = mst_kruskal(tiny_known_graph());
  EXPECT_EQ(r.total_weight, 6u);
  EXPECT_EQ(r.tree_edges, 3u);
  EXPECT_EQ(r.components, 1u);
}

TEST(GpuBoruvka, TinyKnownGraph) {
  gpu::Device dev;
  const MstResult r = mst_gpu(tiny_known_graph(), dev);
  EXPECT_EQ(r.total_weight, 6u);
  EXPECT_EQ(r.tree_edges, 3u);
  EXPECT_EQ(r.components, 1u);
  EXPECT_GT(r.rounds, 0u);
}

TEST(GpuBoruvka, EmptyAndSingletonGraphs) {
  gpu::Device dev;
  const CsrGraph empty;
  EXPECT_EQ(mst_gpu(empty, dev).tree_edges, 0u);
  const CsrGraph lone = CsrGraph::from_edges(1, {});
  const MstResult r = mst_gpu(lone, dev);
  EXPECT_EQ(r.tree_edges, 0u);
  EXPECT_EQ(r.components, 1u);
}

TEST(GpuBoruvka, DisconnectedGraphYieldsForest) {
  const Edge edges[] = {{0, 1, 4}, {2, 3, 7}};
  auto g = CsrGraph::from_undirected_edges(5, edges);  // node 4 isolated
  gpu::Device dev;
  const MstResult r = mst_gpu(g, dev);
  EXPECT_EQ(r.total_weight, 11u);
  EXPECT_EQ(r.tree_edges, 2u);
  EXPECT_EQ(r.components, 3u);
  EXPECT_EQ(mst_kruskal(g).components, 3u);
}

TEST(AllVariants, UniformWeightsStillFormSpanningTree) {
  // Every edge weight equal: tie-breaking must avoid livelock and produce
  // n-1 edges.
  auto edges = graph::gen_grid2d(12, 1, 1);
  for (auto& e : edges) e.weight = 7;
  auto g = CsrGraph::from_undirected_edges(144, edges);
  gpu::Device dev;
  cpu::ParallelRunner r1, r2;
  const auto kr = mst_kruskal(g);
  EXPECT_EQ(kr.tree_edges, 143u);
  EXPECT_EQ(mst_gpu(g, dev).total_weight, kr.total_weight);
  EXPECT_EQ(mst_edge_merge(g, r1).total_weight, kr.total_weight);
  EXPECT_EQ(mst_union_find(g, r2).total_weight, kr.total_weight);
}

struct GraphCase {
  std::string name;
  std::vector<Edge> edges;
  Node n;
};

GraphCase make_case(const std::string& kind, std::uint64_t seed) {
  if (kind == "grid") {
    return {kind, graph::gen_grid2d(40, 100, seed), 1600};
  }
  if (kind == "random") {
    return {kind, graph::gen_random_uniform(1500, 6000, 1000, seed), 1500};
  }
  if (kind == "rmat") {
    return {kind, graph::gen_rmat(11, 16384, seed), 2048};
  }
  return {"road", graph::gen_road_like(1500, 2.5, seed), 1500};
}

class MstAgreement
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(MstAgreement, AllVariantsMatchKruskalWeight) {
  const auto [kind, seed] = GetParam();
  const GraphCase gc = make_case(kind, seed);
  auto g = CsrGraph::from_undirected_edges(gc.n, gc.edges);
  ASSERT_TRUE(g.validate(true));

  const MstResult kr = mst_kruskal(g);
  gpu::Device dev;
  const MstResult gp = mst_gpu(g, dev);
  cpu::ParallelRunner r1, r2;
  const MstResult em = mst_edge_merge(g, r1);
  const MstResult uf = mst_union_find(g, r2);

  EXPECT_EQ(gp.total_weight, kr.total_weight);
  EXPECT_EQ(em.total_weight, kr.total_weight);
  EXPECT_EQ(uf.total_weight, kr.total_weight);
  EXPECT_EQ(gp.tree_edges, kr.tree_edges);
  EXPECT_EQ(em.tree_edges, kr.tree_edges);
  EXPECT_EQ(uf.tree_edges, kr.tree_edges);
  EXPECT_EQ(gp.components, kr.components);
  EXPECT_EQ(em.components, kr.components);
  EXPECT_EQ(uf.components, kr.components);
}

INSTANTIATE_TEST_SUITE_P(
    Families, MstAgreement,
    ::testing::Combine(::testing::Values("grid", "random", "rmat", "road"),
                       ::testing::Values(1ull, 2ull, 3ull)));

TEST(GpuBoruvka, BlockParallelExecutionMatchesKruskal) {
  // Block-parallel host execution (the standard fast path): the partner
  // resolution is deterministic under any interleaving, so results and
  // modeled stats match the serial inline mode exactly.
  const GraphCase gc = make_case("random", 7);
  auto g = CsrGraph::from_undirected_edges(gc.n, gc.edges);
  const MstResult kr = mst_kruskal(g);
  gpu::Device d1;
  gpu::Device d4(gpu::DeviceConfig{.host_workers = 4});
  const MstResult r1 = mst_gpu(g, d1);
  const MstResult r4 = mst_gpu(g, d4);
  EXPECT_EQ(r4.total_weight, kr.total_weight);
  EXPECT_EQ(r4.tree_edges, kr.tree_edges);
  EXPECT_EQ(r4.rounds, r1.rounds);
  EXPECT_EQ(r4.modeled_cycles, r1.modeled_cycles);  // bitwise
}

TEST(CostShape, GpuBeatsEdgeMergeOnDenseLosesOnSparse) {
  // The Fig. 11 crossover, at reduced scale: on a dense random graph the
  // edge-merging baseline degrades relative to the component-based GPU
  // algorithm; on a sparse road-like graph the CPU baseline wins.
  auto dense_edges = graph::gen_random_uniform(2000, 40000, 1000, 5);
  auto dense = CsrGraph::from_undirected_edges(2000, dense_edges);
  auto sparse_edges = graph::gen_road_like(2000, 2.4, 5);
  auto sparse = CsrGraph::from_undirected_edges(2000, sparse_edges);

  gpu::Device d1, d2;
  cpu::ParallelRunner r1, r2;
  const double gpu_dense = mst_gpu(dense, d1).modeled_cycles;
  const double em_dense = mst_edge_merge(dense, r1).modeled_cycles;
  const double gpu_sparse = mst_gpu(sparse, d2).modeled_cycles;
  const double em_sparse = mst_edge_merge(sparse, r2).modeled_cycles;

  const double dense_ratio = em_dense / gpu_dense;
  const double sparse_ratio = em_sparse / gpu_sparse;
  EXPECT_GT(dense_ratio, 2.0 * sparse_ratio)
      << "edge merging must degrade with density";
  EXPECT_LT(sparse_ratio, 1.0) << "CPU baseline should win on sparse inputs";
}

TEST(CostShape, UnionFindRewriteBeatsEdgeMergeOnDense) {
  auto edges = graph::gen_rmat(12, 32768, 6);
  auto g = CsrGraph::from_undirected_edges(4096, edges);
  cpu::ParallelRunner r1, r2;
  const double em = mst_edge_merge(g, r1).modeled_cycles;
  const double uf = mst_union_find(g, r2).modeled_cycles;
  EXPECT_LT(uf, em) << "the Galois 2.1.5 rewrite must win (Fig. 11)";
}

TEST(GpuBoruvka, RoundsAreLogarithmic) {
  auto edges = graph::gen_random_uniform(4096, 16384, 100, 7);
  auto g = CsrGraph::from_undirected_edges(4096, edges);
  gpu::Device dev;
  const MstResult r = mst_gpu(g, dev);
  EXPECT_LE(r.rounds, 16u) << "components at least halve per round";
}

TEST(GpuBoruvka, ParallelEdgesAndTriangles) {
  // Parallel edges of different weight between the same pair.
  const Edge edges[] = {{0, 1, 9}, {0, 1, 2}, {1, 2, 4}, {0, 2, 4}};
  auto g = CsrGraph::from_undirected_edges(3, edges);
  gpu::Device dev;
  const MstResult r = mst_gpu(g, dev);
  EXPECT_EQ(r.total_weight, mst_kruskal(g).total_weight);
  EXPECT_EQ(r.total_weight, 6u);
}

}  // namespace
}  // namespace morph::mst
